package wire

import "fmt"

// Class is a message's quality-of-service class — the coarse "what kind
// of traffic is this" annotation the queue policies act on when a
// channel is overloaded. The zero value is ClassReliable, so messages
// that never mention QoS keep today's semantics.
type Class uint8

// The QoS classes. The set is deliberately small (goal-oriented
// transport filtering distinguishes exactly these regimes): control
// traffic must survive overload, reliable traffic is the default
// at-most-once stream, telemetry is value-of-update state where a newer
// reading supersedes an older one.
const (
	// ClassReliable is the default: ordinary at-most-once messages.
	ClassReliable Class = iota
	// ClassControl marks protocol/control traffic (handshakes, acks,
	// membership) that should be shed last.
	ClassControl
	// ClassTelemetry marks value-of-update state (sensor readings,
	// state-sync deltas) where freshness beats completeness.
	ClassTelemetry

	// NumClasses sizes per-class accounting arrays.
	NumClasses = 3
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassReliable:
		return "reliable"
	case ClassControl:
		return "control"
	case ClassTelemetry:
		return "telemetry"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Valid reports whether c is a declared class.
func (c Class) Valid() bool { return c < NumClasses }

// QoS is the compact per-message annotation carried from the header
// through the codec stage into the transport's pending entry. The zero
// value means "no annotation" and encodes to exactly the pre-QoS wire
// format, so old and new peers interoperate.
type QoS struct {
	// Class selects the traffic class (default ClassReliable).
	Class Class
	// Key is the optional application key for latest-value-wins
	// coalescing: while queued, a newer update for the same key replaces
	// an older one. Empty means "never coalesce this message".
	Key string
	// Deadline is the optional absolute expiry in Unix nanoseconds
	// (0 = none). Under the deadline-expiry policy a message still
	// queued past its deadline is dropped instead of written.
	Deadline int64
}

// IsZero reports whether q carries no annotation at all.
func (q QoS) IsZero() bool { return q == QoS{} }
