// Package wire declares the transport-protocol enumeration shared by the
// middleware core and the socket layer. It is a leaf package so that both
// can import it without cycles.
package wire

import "fmt"

// Transport selects the network protocol a message travels over. It is
// carried in every message header, giving per-message protocol control —
// the paper's central API idea.
type Transport int

// Supported transports. DATA is the pseudo-protocol of §IV: an adaptive
// interceptor rewrites it to TCP or UDT per message at runtime.
const (
	UDP Transport = iota + 1
	TCP
	UDT
	DATA
)

// String implements fmt.Stringer.
func (t Transport) String() string {
	switch t {
	case UDP:
		return "UDP"
	case TCP:
		return "TCP"
	case UDT:
		return "UDT"
	case DATA:
		return "DATA"
	default:
		return fmt.Sprintf("Transport(%d)", int(t))
	}
}

// Valid reports whether t is one of the declared transports.
func (t Transport) Valid() bool {
	return t >= UDP && t <= DATA
}

// Wire reports whether t is a concrete wire protocol (resolvable without
// the DATA interceptor).
func (t Transport) Wire() bool {
	return t == UDP || t == TCP || t == UDT
}
