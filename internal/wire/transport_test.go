package wire

import (
	"fmt"
	"testing"
)

func TestTransportString(t *testing.T) {
	cases := []struct {
		tr   Transport
		want string
	}{
		{UDP, "UDP"},
		{TCP, "TCP"},
		{UDT, "UDT"},
		{DATA, "DATA"},
		{Transport(0), "Transport(0)"},
		{Transport(5), "Transport(5)"},
		{Transport(-1), "Transport(-1)"},
	}
	for _, c := range cases {
		if got := c.tr.String(); got != c.want {
			t.Errorf("Transport(%d).String() = %q, want %q", int(c.tr), got, c.want)
		}
		// The enum is carried in message headers and surfaces in logs via
		// %v; both must agree with String.
		if got := fmt.Sprintf("%v", c.tr); got != c.want {
			t.Errorf("Sprintf(%%v, Transport(%d)) = %q, want %q", int(c.tr), got, c.want)
		}
	}
}

// TestTransportStringRoundTrip pins the name/value association both ways
// for every declared transport: each name is unique and maps back to the
// value it came from.
func TestTransportStringRoundTrip(t *testing.T) {
	declared := []Transport{UDP, TCP, UDT, DATA}
	byName := make(map[string]Transport, len(declared))
	for _, tr := range declared {
		name := tr.String()
		if prev, dup := byName[name]; dup {
			t.Fatalf("transports %d and %d share the name %q", int(prev), int(tr), name)
		}
		byName[name] = tr
	}
	for name, tr := range byName {
		if got := tr.String(); got != name {
			t.Errorf("round trip for %q: got %q", name, got)
		}
	}
}

func TestTransportValidAndWire(t *testing.T) {
	cases := []struct {
		tr    Transport
		valid bool
		wire  bool
	}{
		{UDP, true, true},
		{TCP, true, true},
		{UDT, true, true},
		// DATA is the adaptive pseudo-protocol: a legal header value, but
		// not resolvable to a socket without the interceptor.
		{DATA, true, false},
		{Transport(0), false, false},
		{Transport(5), false, false},
		{Transport(-1), false, false},
	}
	for _, c := range cases {
		if got := c.tr.Valid(); got != c.valid {
			t.Errorf("Transport(%d).Valid() = %v, want %v", int(c.tr), got, c.valid)
		}
		if got := c.tr.Wire(); got != c.wire {
			t.Errorf("Transport(%d).Wire() = %v, want %v", int(c.tr), got, c.wire)
		}
	}
}
