package bufpool

import (
	"sync"
	"testing"
)

func TestGetLengthAndCapacity(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{0, 1 << minShift},
		{1, 1 << minShift},
		{512, 512},
		{513, 1024},
		{64 << 10, 64 << 10},
		{(64 << 10) + 1, 128 << 10},
		{1 << maxShift, 1 << maxShift},
	}
	for _, c := range cases {
		b := Get(c.n)
		if len(b) != c.n {
			t.Errorf("Get(%d): len = %d", c.n, len(b))
		}
		if cap(b) != c.wantCap {
			t.Errorf("Get(%d): cap = %d, want %d", c.n, cap(b), c.wantCap)
		}
		Put(b)
	}
}

func TestOversizedBypassesPool(t *testing.T) {
	n := (1 << maxShift) + 1
	b := Get(n)
	if len(b) != n {
		t.Fatalf("len = %d", len(b))
	}
	Put(b) // must not panic; silently dropped
}

func TestReuseWithinClass(t *testing.T) {
	// A buffer Put back should be handed out again for a same-class Get.
	// sync.Pool may drop entries under GC pressure, so retry a few times
	// rather than asserting a single round trip.
	reused := false
	for i := 0; i < 100 && !reused; i++ {
		b := Get(1000)
		b[0] = 0x42
		Put(b)
		c := Get(900)
		reused = &c[:1][0] == &b[:1][0]
		Put(c)
	}
	if !reused {
		t.Error("no buffer reuse observed in 100 rounds")
	}
}

func TestPutForeignSlice(t *testing.T) {
	// Odd-capacity slices from plain make are accepted into the class
	// that fits below their capacity, and must still satisfy Gets.
	Put(make([]byte, 700)) // cap 700 -> class 512
	b := Get(512)
	if cap(b) < 512 {
		t.Fatalf("cap = %d", cap(b))
	}
	Put(b)
	Put(make([]byte, 10)) // below the smallest class: dropped, no panic
}

func TestLeakAccounting(t *testing.T) {
	SetDebug(true)
	defer SetDebug(false)
	ResetStats()
	var bufs [][]byte
	for i := 0; i < 10; i++ {
		bufs = append(bufs, Get(1024))
	}
	bb := GetBuffer()
	if got := Outstanding(); got != 11 {
		t.Fatalf("Outstanding = %d, want 11", got)
	}
	for _, b := range bufs {
		Put(b)
	}
	PutBuffer(bb)
	if got := Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d, want 0 after full cycle", got)
	}
}

func TestPoisonOnPut(t *testing.T) {
	SetDebug(true)
	defer SetDebug(false)
	b := Get(64)
	for i := range b {
		b[i] = 1
	}
	saved := b
	Put(b)
	for i, v := range saved {
		if v != 0xA5 {
			t.Fatalf("byte %d = %#x, want poison 0xA5", i, v)
		}
	}
}

func TestBufferRoundTrip(t *testing.T) {
	bb := GetBuffer()
	bb.WriteString("hello")
	PutBuffer(bb)
	bb2 := GetBuffer()
	if bb2.Len() != 0 {
		t.Fatalf("recycled buffer not reset: %d bytes", bb2.Len())
	}
	PutBuffer(bb2)
}

func TestConcurrentGetPut(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				n := (seed*31+i*17)%(128<<10) + 1
				b := Get(n)
				if len(b) != n {
					t.Errorf("len = %d, want %d", len(b), n)
					Put(b)
					return
				}
				b[0], b[n-1] = 1, 2
				Put(b)
			}
		}(g)
	}
	wg.Wait()
}

// classAccountFor digs the accounting slot for a class size out of a
// snapshot (0 = unpooled).
func classAccountFor(t *testing.T, a Accounting, size int) ClassAccount {
	t.Helper()
	for _, c := range a.Classes {
		if c.Size == size {
			return c
		}
	}
	t.Fatalf("no accounting slot for class size %d", size)
	return ClassAccount{}
}

func TestAccountPerClassDeltas(t *testing.T) {
	before := Account()
	held := [][]byte{Get(1024), Get(1024), Get(4096)}
	oversize := Get((1 << maxShift) + 1)
	bb := GetBuffer()

	mid := Account()
	if d := mid.Outstanding - before.Outstanding; d != 5 {
		t.Fatalf("outstanding delta = %d, want 5", d)
	}
	if d := classAccountFor(t, mid, 1024).Outstanding - classAccountFor(t, before, 1024).Outstanding; d != 2 {
		t.Fatalf("1 KiB class delta = %d, want 2", d)
	}
	if d := classAccountFor(t, mid, 4096).Outstanding - classAccountFor(t, before, 4096).Outstanding; d != 1 {
		t.Fatalf("4 KiB class delta = %d, want 1", d)
	}
	if d := classAccountFor(t, mid, 0).Outstanding - classAccountFor(t, before, 0).Outstanding; d != 1 {
		t.Fatalf("unpooled delta = %d, want 1", d)
	}
	if d := mid.Buffers.Outstanding - before.Buffers.Outstanding; d != 1 {
		t.Fatalf("bytes.Buffer delta = %d, want 1", d)
	}

	for _, b := range held {
		Put(b)
	}
	Put(oversize)
	PutBuffer(bb)
	after := Account()
	if d := after.Outstanding - before.Outstanding; d != 0 {
		t.Fatalf("outstanding delta after full cycle = %d, want 0", d)
	}
}

// TestAccountWithoutDebugMode pins the satellite requirement: accounting
// works with debug mode off (the soak harness never enables poisoning).
func TestAccountWithoutDebugMode(t *testing.T) {
	SetDebug(false)
	before := Account()
	b := Get(2048)
	if d := Account().Outstanding - before.Outstanding; d != 1 {
		t.Fatalf("delta with debug off = %d, want 1", d)
	}
	Put(b)
	if d := Account().Outstanding - before.Outstanding; d != 0 {
		t.Fatalf("delta after Put = %d, want 0", d)
	}
}

func TestAccountConcurrent(t *testing.T) {
	before := Account()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b := Get((seed*13+i*7)%(32<<10) + 1)
				Put(b)
			}
		}(g)
	}
	wg.Wait()
	if d := Account().Outstanding - before.Outstanding; d != 0 {
		t.Fatalf("outstanding delta after balanced concurrent cycles = %d, want 0", d)
	}
}

func BenchmarkGetPut(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := Get(64 << 10)
		Put(buf)
	}
}
