package bufpool

import (
	"sync"
	"testing"
)

func TestGetLengthAndCapacity(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{0, 1 << minShift},
		{1, 1 << minShift},
		{512, 512},
		{513, 1024},
		{64 << 10, 64 << 10},
		{(64 << 10) + 1, 128 << 10},
		{1 << maxShift, 1 << maxShift},
	}
	for _, c := range cases {
		b := Get(c.n)
		if len(b) != c.n {
			t.Errorf("Get(%d): len = %d", c.n, len(b))
		}
		if cap(b) != c.wantCap {
			t.Errorf("Get(%d): cap = %d, want %d", c.n, cap(b), c.wantCap)
		}
		Put(b)
	}
}

func TestOversizedBypassesPool(t *testing.T) {
	n := (1 << maxShift) + 1
	b := Get(n)
	if len(b) != n {
		t.Fatalf("len = %d", len(b))
	}
	Put(b) // must not panic; silently dropped
}

func TestReuseWithinClass(t *testing.T) {
	// A buffer Put back should be handed out again for a same-class Get.
	// sync.Pool may drop entries under GC pressure, so retry a few times
	// rather than asserting a single round trip.
	reused := false
	for i := 0; i < 100 && !reused; i++ {
		b := Get(1000)
		b[0] = 0x42
		Put(b)
		c := Get(900)
		reused = &c[:1][0] == &b[:1][0]
		Put(c)
	}
	if !reused {
		t.Error("no buffer reuse observed in 100 rounds")
	}
}

func TestPutForeignSlice(t *testing.T) {
	// Odd-capacity slices from plain make are accepted into the class
	// that fits below their capacity, and must still satisfy Gets.
	Put(make([]byte, 700)) // cap 700 -> class 512
	b := Get(512)
	if cap(b) < 512 {
		t.Fatalf("cap = %d", cap(b))
	}
	Put(b)
	Put(make([]byte, 10)) // below the smallest class: dropped, no panic
}

func TestLeakAccounting(t *testing.T) {
	SetDebug(true)
	defer SetDebug(false)
	ResetStats()
	var bufs [][]byte
	for i := 0; i < 10; i++ {
		bufs = append(bufs, Get(1024))
	}
	bb := GetBuffer()
	if got := Outstanding(); got != 11 {
		t.Fatalf("Outstanding = %d, want 11", got)
	}
	for _, b := range bufs {
		Put(b)
	}
	PutBuffer(bb)
	if got := Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d, want 0 after full cycle", got)
	}
}

func TestPoisonOnPut(t *testing.T) {
	SetDebug(true)
	defer SetDebug(false)
	b := Get(64)
	for i := range b {
		b[i] = 1
	}
	saved := b
	Put(b)
	for i, v := range saved {
		if v != 0xA5 {
			t.Fatalf("byte %d = %#x, want poison 0xA5", i, v)
		}
	}
}

func TestBufferRoundTrip(t *testing.T) {
	bb := GetBuffer()
	bb.WriteString("hello")
	PutBuffer(bb)
	bb2 := GetBuffer()
	if bb2.Len() != 0 {
		t.Fatalf("recycled buffer not reset: %d bytes", bb2.Len())
	}
	PutBuffer(bb2)
}

func TestConcurrentGetPut(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				n := (seed*31+i*17)%(128<<10) + 1
				b := Get(n)
				if len(b) != n {
					t.Errorf("len = %d, want %d", len(b), n)
					Put(b)
					return
				}
				b[0], b[n-1] = 1, 2
				Put(b)
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkGetPut(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := Get(64 << 10)
		Put(buf)
	}
}
