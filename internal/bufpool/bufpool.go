// Package bufpool is the middleware's size-classed buffer allocator — the
// role Netty's pooled ByteBuf allocator plays for the JVM implementation
// (§II-B of the paper). Every layer of the wire hot path (codec framing,
// transport readers and writers, core encode/decode) draws its scratch and
// payload buffers from here so that a steady-state message flow performs no
// heap allocation per message.
//
// # Ownership
//
// Get hands out a buffer; whoever holds it last calls Put. Returning a
// buffer is always optional — a dropped buffer is simply garbage collected
// — but the hot path is only allocation-free when buffers cycle. The wire
// path's contract is documented in DESIGN.md ("Hot path and buffer
// ownership"): the transport owns outgoing payloads from Send until the
// write outcome is decided, and inbound buffers are owned by the OnMessage
// consumer, which returns them after decoding.
//
// # Leak checking
//
// Tests can call SetDebug(true) to track the number of outstanding
// buffers (Gets minus Puts) and to poison returned buffers, catching both
// leaks and use-after-Put bugs. See Outstanding.
//
// Independent of debug mode, the pool keeps always-on per-size-class
// accounting (one uncontended atomic add per Get/Put): Account returns a
// snapshot of gets, puts, and outstanding buffers by class, which is what
// the soak harness's zero-leak invariant and the stats registry's bufpool
// gauges read. See Account.
package bufpool

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// Size classes are powers of two from 1<<minShift to 1<<maxShift bytes.
// Requests above the largest class fall through to plain make and are not
// pooled; the frame limit (codec.DefaultMaxFrame, 1 MiB) fits the top
// class exactly.
const (
	minShift = 9  // 512 B
	maxShift = 20 // 1 MiB
)

// pools[i] holds buffers with cap >= 1<<(minShift+i). Entries are *[]byte
// (not []byte) so that Put does not heap-allocate an interface box per
// call; the boxes themselves cycle through boxPool.
var pools [maxShift - minShift + 1]sync.Pool

// boxPool recycles the *[]byte boxes used to move slices in and out of
// pools without per-call allocation.
var boxPool = sync.Pool{New: func() interface{} { return new([]byte) }}

var (
	debug       atomic.Bool
	outstanding atomic.Int64
)

// numClasses is the count of pooled size classes; accounting keeps one
// extra slot (index numClasses) for unpooled traffic — requests above the
// top class, which Get satisfies with plain make and Put drops.
const numClasses = maxShift - minShift + 1

// Always-on accounting: gets and puts per size class, plus the pooled
// bytes.Buffer pair. Get charges the class the request routes to; Put
// charges the class the returned capacity files under — for a buffer
// whose capacity never changed between Get and Put these agree, so
// per-class outstanding counts are exact on the wire hot path. A buffer
// regrown by append between Get and Put may settle its Put against a
// different class; the per-class numbers drift by the same amount in
// opposite directions while the total stays balanced (one Put per Get).
var (
	classGets  [numClasses + 1]atomic.Uint64
	classPuts  [numClasses + 1]atomic.Uint64
	bufferGets atomic.Uint64
	bufferPuts atomic.Uint64
)

// accountIndex maps a classFor/putClassFor result onto an accounting
// slot: pooled classes keep their index, everything else files under the
// unpooled slot.
func accountIndex(c int) int {
	if c < 0 || c >= numClasses {
		return numClasses
	}
	return c
}

// classFor returns the smallest size class whose buffers hold n bytes, or
// -1 when n is too large to pool.
func classFor(n int) int {
	if n > 1<<maxShift {
		return -1
	}
	c := 0
	for n > 1<<(minShift+c) {
		c++
	}
	return c
}

// putClassFor returns the largest size class whose buffers fit within cap
// c, or -1 when c is below the smallest class. A buffer stored in class i
// is guaranteed to satisfy any Get routed to class i.
func putClassFor(c int) int {
	if c < 1<<minShift {
		return -1
	}
	for i := maxShift - minShift; i >= 0; i-- {
		if c >= 1<<(minShift+i) {
			return i
		}
	}
	return -1
}

// Get returns a buffer of length n. Its capacity is at least n and usually
// the enclosing size class. The buffer's contents are unspecified — callers
// must overwrite before reading. Buffers above the largest size class are
// freshly allocated and will be dropped by Put.
func Get(n int) []byte {
	if debug.Load() {
		outstanding.Add(1)
	}
	c := classFor(n)
	classGets[accountIndex(c)].Add(1)
	if c < 0 {
		return make([]byte, n)
	}
	if v := pools[c].Get(); v != nil {
		bp := v.(*[]byte)
		b := *bp
		*bp = nil
		boxPool.Put(bp)
		return b[:n]
	}
	return make([]byte, n, 1<<(minShift+c))
}

// Put returns a buffer obtained from Get (or any other slice the caller
// owns outright) to the pool. The caller must not use b afterwards.
// Undersized and oversized buffers are silently dropped.
func Put(b []byte) {
	if debug.Load() {
		outstanding.Add(-1)
		poison(b)
	}
	c := putClassFor(cap(b))
	classPuts[accountIndex(c)].Add(1)
	if c < 0 {
		return
	}
	b = b[:0]
	bp := boxPool.Get().(*[]byte)
	*bp = b
	pools[c].Put(bp)
}

// poison overwrites a returned buffer so use-after-Put reads surface as
// corrupted data in debug runs.
func poison(b []byte) {
	b = b[:cap(b)]
	for i := range b {
		b[i] = 0xA5
	}
}

// --- pooled bytes.Buffer ----------------------------------------------------

// maxPooledBuffer bounds the capacity of recycled bytes.Buffers, so one
// huge message cannot pin a huge buffer forever.
const maxPooledBuffer = 1 << maxShift

var bufferPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

// GetBuffer returns an empty *bytes.Buffer from the pool.
func GetBuffer() *bytes.Buffer {
	if debug.Load() {
		outstanding.Add(1)
	}
	bufferGets.Add(1)
	return bufferPool.Get().(*bytes.Buffer)
}

// PutBuffer returns a buffer obtained from GetBuffer. The caller must not
// retain b or any slice previously returned by b.Bytes().
func PutBuffer(b *bytes.Buffer) {
	if debug.Load() {
		outstanding.Add(-1)
	}
	bufferPuts.Add(1)
	if b.Cap() > maxPooledBuffer {
		return
	}
	b.Reset()
	bufferPool.Put(b)
}

// --- leak checking ----------------------------------------------------------

// SetDebug toggles leak accounting and buffer poisoning. Tests enable it,
// run a closed Get/Put cycle, and assert Outstanding returns to its
// starting value. Production code leaves it off (the accounting is cheap
// but the poisoning is not).
func SetDebug(on bool) { debug.Store(on) }

// Outstanding reports Gets minus Puts recorded while debug mode was on.
// Only meaningful for code paths that return every buffer.
func Outstanding() int64 { return outstanding.Load() }

// ResetStats zeroes the outstanding counter (call before a leak-checked
// test section).
func ResetStats() { outstanding.Store(0) }

// --- always-on accounting ---------------------------------------------------

// ClassAccount is one size class's slice of the accounting snapshot.
type ClassAccount struct {
	// Size is the class capacity in bytes; 0 marks the unpooled slot
	// (requests above the top class).
	Size int
	// Gets and Puts are cumulative since process start.
	Gets, Puts uint64
	// Outstanding is Gets − Puts: buffers drawn and not yet returned.
	Outstanding int64
}

// Accounting is a point-in-time snapshot of the pool's buffer flow.
// Because the counters are read class by class without a global lock, a
// snapshot taken while the pool is hot can be skewed by in-flight
// operations; totals are exact once the traffic that drew the buffers has
// quiesced, which is when leak checks read them.
type Accounting struct {
	// Classes lists the pooled size classes in ascending size order,
	// followed by the unpooled slot (Size 0).
	Classes []ClassAccount
	// Buffers tracks the pooled bytes.Buffer pair (GetBuffer/PutBuffer).
	Buffers ClassAccount
	// Outstanding is the total across every class and the Buffers slot.
	Outstanding int64
}

// Account returns the current accounting snapshot. Unlike Outstanding it
// needs no debug mode: the per-class counters are always on, costing one
// uncontended atomic add per Get/Put. The soak harness diffs two
// snapshots around a run to assert zero leaked buffers; the stats
// registry exports the totals as gauges.
func Account() Accounting {
	a := Accounting{Classes: make([]ClassAccount, numClasses+1)}
	for i := 0; i <= numClasses; i++ {
		gets, puts := classGets[i].Load(), classPuts[i].Load()
		size := 0
		if i < numClasses {
			size = 1 << (minShift + i)
		}
		a.Classes[i] = ClassAccount{
			Size: size, Gets: gets, Puts: puts,
			Outstanding: int64(gets) - int64(puts),
		}
		a.Outstanding += int64(gets) - int64(puts)
	}
	bg, bp := bufferGets.Load(), bufferPuts.Load()
	a.Buffers = ClassAccount{Gets: bg, Puts: bp, Outstanding: int64(bg) - int64(bp)}
	a.Outstanding += a.Buffers.Outstanding
	return a
}
