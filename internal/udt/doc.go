// Package udt is a from-scratch userspace implementation of UDT — the
// UDP-based Data Transfer protocol (Gu & Grossman, Computer Networks 2007)
// — providing reliable, ordered byte streams over UDP sockets with
// rate-based congestion control.
//
// The paper's JVM implementation used Netty's UDT transport (the Barchart
// native library); Go has no UDT implementation, so this package builds
// the protocol itself using only net.UDPConn. It implements the parts of
// UDT that give it its characteristic behaviour on high
// bandwidth-delay-product paths:
//
//   - selective retransmission driven by NAKs: the receiver reports loss
//     ranges immediately on gap detection, and the sender retransmits
//     from its loss list with priority;
//   - periodic cumulative ACKs (every 10 ms SYN interval) rather than
//     per-packet ACKs;
//   - DAIMD rate control: the sending rate grows additively every SYN
//     interval and decreases multiplicatively (×8/9) on NAK — decoupling
//     throughput from RTT, which is precisely why UDT holds its rate on
//     long fat paths where TCP's window/RTT coupling collapses;
//   - window-based flow control with the receiver advertising its buffer
//     space in every ACK (the paper tuned these buffers from 12 MB to
//     100 MB for high-BDP links; they are configurable here);
//   - connection handshake and shutdown control packets.
//
// Simplifications relative to the UDT4 specification, documented for
// honesty: no ACK2 (RTT is not needed by the simplified rate controller),
// no bandwidth-estimation packet pairs (the additive increase is a fixed
// per-SYN step), timestamps are omitted from the packet header, and a
// single UDT connection runs per UDP address pair on the listener side.
//
// Conn implements net.Conn, so the transport layer can treat TCP and UDT
// streams uniformly.
package udt
