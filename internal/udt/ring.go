package udt

// Sequence-indexed packet storage for the send and receive windows, and a
// sorted interval list for the sender's loss bookkeeping.
//
// Both windows are bounded (MaxFlowWindow packets in flight on the send
// side, RcvBuffer packets buffered on the receive side), so a ring of
// power-of-two capacity ≥ the window gives every live sequence number a
// distinct slot at seq&mask: O(1) lookup with no hashing and no per-entry
// map churn, valid across uint32 wraparound because the low bits of seq
// keep cycling through the ring.

// pktRing maps sequence numbers to packet payloads for a window of at most
// cap(slots) consecutive (mod 2³²) sequence numbers. Callers enforce the
// window bound before storing; the ring itself only masks.
//
// Stored payloads are pooled buffers: storeOwned takes ownership, take and
// drain hand it back. A nil slot means "absent" — payloads are never nil
// (bufpool.Get returns non-nil even for length 0).
type pktRing struct {
	slots [][]byte
	mask  uint32
	n     int
}

// newPktRing sizes the ring for a window of `window` packets.
func newPktRing(window int) *pktRing {
	size := 1
	for size < window {
		size <<= 1
	}
	return &pktRing{slots: make([][]byte, size), mask: uint32(size - 1)}
}

// get returns the payload stored for seq, or nil.
func (r *pktRing) get(seq uint32) []byte { return r.slots[seq&r.mask] }

// storeOwned records buf as seq's payload, taking ownership of buf. It
// reports false (and does not take ownership) when the slot is already
// occupied — a duplicate arrival.
func (r *pktRing) storeOwned(seq uint32, buf []byte) bool {
	i := seq & r.mask
	if r.slots[i] != nil {
		return false
	}
	r.slots[i] = buf
	r.n++
	return true
}

// take removes and returns seq's payload (nil if absent); ownership moves
// back to the caller.
func (r *pktRing) take(seq uint32) []byte {
	i := seq & r.mask
	b := r.slots[i]
	if b != nil {
		r.slots[i] = nil
		r.n--
	}
	return b
}

// len reports the number of stored payloads.
func (r *pktRing) len() int { return r.n }

// drain removes every stored payload, invoking release on each. Used at
// connection teardown to recycle pooled buffers.
func (r *pktRing) drain(release func([]byte)) {
	for i, b := range r.slots {
		if b != nil {
			r.slots[i] = nil
			release(b)
		}
	}
	r.n = 0
}

// lossRanges is the sender's loss list: a sorted, disjoint list of
// inclusive sequence ranges scheduled for retransmission. All entries live
// within one flow window of each other, so seqLess gives a consistent
// total order even across uint32 wraparound. Replaces the old []uint32
// list whose duplicate check was a linear scan per NAKed sequence.
type lossRanges struct {
	r []nakRange
}

// empty reports whether anything is scheduled.
func (l *lossRanges) empty() bool { return len(l.r) == 0 }

// insert merges the inclusive range [from,to] into the list, coalescing
// with overlapping or adjacent entries.
func (l *lossRanges) insert(from, to uint32) {
	if seqLess(to, from) {
		return
	}
	// Find the first entry ending at or after from-1 (adjacency merges).
	i := 0
	for i < len(l.r) && seqLess(l.r[i].to, from-1) {
		i++
	}
	// Entries from i onward may overlap/adjoin [from,to]; coalesce them.
	j := i
	for j < len(l.r) && seqLeq(l.r[j].from, to+1) {
		if seqLess(l.r[j].from, from) {
			from = l.r[j].from
		}
		if seqLess(to, l.r[j].to) {
			to = l.r[j].to
		}
		j++
	}
	if i == j {
		l.r = append(l.r, nakRange{})
		copy(l.r[i+1:], l.r[i:])
		l.r[i] = nakRange{from: from, to: to}
		return
	}
	l.r[i] = nakRange{from: from, to: to}
	l.r = append(l.r[:i+1], l.r[j:]...)
}

// popFirst removes and returns the lowest scheduled sequence number.
func (l *lossRanges) popFirst() (uint32, bool) {
	if len(l.r) == 0 {
		return 0, false
	}
	seq := l.r[0].from
	if l.r[0].from == l.r[0].to {
		copy(l.r, l.r[1:])
		l.r = l.r[:len(l.r)-1]
	} else {
		l.r[0].from++
	}
	return seq, true
}

// pruneBelow drops every scheduled sequence number before seq (they have
// been cumulatively acknowledged).
func (l *lossRanges) pruneBelow(seq uint32) {
	i := 0
	for i < len(l.r) && seqLess(l.r[i].to, seq) {
		i++
	}
	if i > 0 {
		l.r = l.r[:copy(l.r, l.r[i:])]
	}
	if len(l.r) > 0 && seqLess(l.r[0].from, seq) {
		l.r[0].from = seq
	}
}

// clear empties the list, keeping capacity.
func (l *lossRanges) clear() { l.r = l.r[:0] }
