package udt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
)

// synInterval is UDT's fixed 10 ms control cadence: ACKs are emitted and
// the sending rate re-evaluated once per interval.
const synInterval = 10 * time.Millisecond

// Config tunes a UDT connection. The zero value gets sensible defaults;
// the paper's experiments raised buffer sizes from 12 MB to 100 MB for
// high-BDP links, which corresponds to MaxFlowWindow/RcvBuffer here.
type Config struct {
	// MaxFlowWindow bounds unacknowledged packets in flight (default
	// 8192 ≈ 11 MB of payload).
	MaxFlowWindow int
	// RcvBuffer bounds buffered packets on the receive side; also the
	// window advertised to the peer (default 8192).
	RcvBuffer int
	// SndQueue bounds bytes accepted by Write but not yet transmitted
	// (default 8 MB); full queues apply backpressure.
	SndQueue int
	// InitialRate is the starting send rate in bytes/second (default
	// 1 MB/s).
	InitialRate float64
	// MaxRate caps the send rate in bytes/second; 0 means unlimited.
	MaxRate float64
	// Increase is the additive rate increase in bytes/second applied per
	// SYN interval with loss-free feedback (default 256 KB).
	Increase float64
	// HandshakeTimeout bounds connection establishment (default 5 s).
	HandshakeTimeout time.Duration
	// LingerTimeout bounds how long Close waits for unsent data to drain
	// (default 10 s).
	LingerTimeout time.Duration
	// LossInjector, when set, is consulted per outgoing data packet; a
	// true result drops the packet before the socket. Test hook for
	// exercising NAK/retransmission machinery deterministically.
	LossInjector func() bool
	// PeerDeathEXPs is how many consecutive EXP-timer expirations
	// without any ACK progress declare the peer unreachable: blocked
	// Read/Write calls fail with ErrPeerDead and every pooled buffer the
	// connection owns is released (default 20 ≈ 2 s of silence with data
	// in flight; negative disables detection).
	PeerDeathEXPs int
}

func (c Config) withDefaults() Config {
	if c.MaxFlowWindow <= 0 {
		c.MaxFlowWindow = 8192
	}
	if c.RcvBuffer <= 0 {
		c.RcvBuffer = 8192
	}
	if c.SndQueue <= 0 {
		c.SndQueue = 8 << 20
	}
	if c.InitialRate <= 0 {
		c.InitialRate = 1 << 20
	}
	if c.Increase <= 0 {
		c.Increase = 256 << 10
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.LingerTimeout <= 0 {
		c.LingerTimeout = 10 * time.Second
	}
	if c.PeerDeathEXPs == 0 {
		c.PeerDeathEXPs = 20
	}
	return c
}

// minRate is the floor of the DAIMD controller in bytes/second.
const minRate = 128 << 10

// Errors returned by Conn operations.
var (
	// ErrClosed reports use of a closed connection.
	ErrClosed = errors.New("udt: connection closed")
	// ErrPeerDead reports a peer declared unreachable by the EXP timer
	// (Config.PeerDeathEXPs expirations with zero ACK progress).
	ErrPeerDead = errors.New("udt: peer unreachable")
	// ErrTimeout reports an expired deadline; it satisfies net.Error.
	ErrTimeout = timeoutError{}
)

type timeoutError struct{}

func (timeoutError) Error() string   { return "udt: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// maxIdleSegCap bounds the capacity retained by a fully-drained receive
// segment queue, so one burst does not pin memory forever.
const maxIdleSegCap = 1024

// Conn is a reliable, ordered byte stream over UDP implementing net.Conn.
//
// Buffer ownership (DESIGN.md §10): every payload byte queued for sending
// or buffered for delivery lives in a bufpool buffer. Write copies caller
// bytes into pooled chunks; the chunk is owned by sndQueue, then by the
// sndUnacked ring, and returns to the pool when the cumulative ACK passes
// it (or at teardown). On the receive side handleData copies the datagram
// payload into a pooled buffer owned by the rcvOOO ring, drainContiguous
// moves it to the in-order segment queue, and Read recycles each segment
// once the application has consumed it.
type Conn struct {
	udp        *net.UDPConn
	raddr      netip.AddrPort
	ownsSocket bool
	onClose    func() // mux unregistration
	cfg        Config

	// mmsg batches data-packet sends with sendmmsg where available; nil
	// means one syscall per packet. Only the sender goroutine touches it
	// after start.
	mmsg *mmsgSender

	mu        sync.Mutex
	readCond  *sync.Cond
	writeCond *sync.Cond

	// Sender state. sndUnacked holds in-flight pooled payloads indexed by
	// sequence number; loss is the sorted retransmission schedule.
	sndQueue      [][]byte
	sndQueueBytes int
	sndUnacked    *pktRing
	loss          lossRanges
	sndNextSeq    uint32
	sndFirstUnack uint32
	peerWindow    int
	rate          float64
	// slowStart mirrors UDT's start-up phase: the rate doubles on each
	// loss-free ACK until the first loss event (NAK or EXP), then the
	// controller switches to DAIMD's additive increase.
	slowStart bool

	// Receiver state. rcvOOO holds out-of-order pooled payloads; in-order
	// segments queue in rcvSegs[rcvSegHead:] with rcvSegOff bytes of the
	// head segment already consumed by Read.
	rcvNextSeq uint32
	rcvLargest uint32 // next seq never seen (upper frontier)
	rcvOOO     *pktRing
	rcvSegs    [][]byte
	rcvSegHead int
	rcvSegOff  int
	lastAcked  uint32

	// Lifecycle.
	established   bool
	establishedCh chan struct{}
	closed        bool
	// dead marks a peer declared unreachable by the EXP timer; set with
	// the buffers already released, so no path may repool after it.
	dead       bool
	peerClosed bool
	done       chan struct{}
	wg         sync.WaitGroup

	readDeadline  time.Time
	writeDeadline time.Time

	// kick wakes the pacing loop when new data is queued.
	kick chan struct{}

	// Stats (atomic access not needed: guarded by mu).
	statRetransmits int
	statNaksSent    int
}

var _ net.Conn = (*Conn)(nil)

func newConn(udp *net.UDPConn, raddr netip.AddrPort, ownsSocket bool, cfg Config) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{
		udp:           udp,
		raddr:         raddr,
		ownsSocket:    ownsSocket,
		cfg:           cfg,
		sndUnacked:    newPktRing(cfg.MaxFlowWindow),
		rcvOOO:        newPktRing(cfg.RcvBuffer),
		peerWindow:    cfg.MaxFlowWindow,
		rate:          cfg.InitialRate,
		slowStart:     true,
		establishedCh: make(chan struct{}),
		done:          make(chan struct{}),
		kick:          make(chan struct{}, 1),
	}
	c.readCond = sync.NewCond(&c.mu)
	c.writeCond = sync.NewCond(&c.mu)
	return c
}

// start launches the sender and ACK loops once the handshake completed.
func (c *Conn) start() {
	c.mmsg = newMmsgSender(c.udp, c.raddr, c.ownsSocket)
	c.wg.Add(2)
	go c.senderLoop()
	go c.ackLoop()
}

// --- net.Conn surface ---------------------------------------------------------

// Read implements net.Conn: it returns buffered in-order bytes, blocking
// until data arrives, the peer shuts down (io.EOF) or the read deadline
// expires. Consumed segments return to bufpool.
func (c *Conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.rcvSegHead == len(c.rcvSegs) {
		if c.closed {
			return 0, ErrClosed
		}
		if c.dead {
			return 0, ErrPeerDead
		}
		if c.peerClosed {
			return 0, io.EOF
		}
		if !c.readDeadline.IsZero() && !time.Now().Before(c.readDeadline) {
			return 0, ErrTimeout
		}
		c.waitRead()
	}
	n := 0
	for n < len(b) && c.rcvSegHead < len(c.rcvSegs) {
		seg := c.rcvSegs[c.rcvSegHead]
		k := copy(b[n:], seg[c.rcvSegOff:])
		n += k
		c.rcvSegOff += k
		if c.rcvSegOff == len(seg) {
			c.rcvSegs[c.rcvSegHead] = nil
			c.rcvSegHead++
			c.rcvSegOff = 0
			bufpool.Put(seg)
		}
	}
	if c.rcvSegHead == len(c.rcvSegs) && cap(c.rcvSegs) > maxIdleSegCap {
		c.rcvSegs, c.rcvSegHead = nil, 0
	}
	return n, nil
}

// waitRead blocks on readCond, arranging a wake-up at the deadline.
func (c *Conn) waitRead() {
	var t *time.Timer
	if !c.readDeadline.IsZero() {
		t = time.AfterFunc(time.Until(c.readDeadline), c.readCond.Broadcast)
	}
	c.readCond.Wait()
	if t != nil {
		t.Stop()
	}
}

// pushSeg appends an in-order pooled segment for Read. Caller holds mu.
func (c *Conn) pushSeg(p []byte) {
	if c.rcvSegHead == len(c.rcvSegs) {
		// Fully drained: reuse the array from the start.
		c.rcvSegs = c.rcvSegs[:0]
		c.rcvSegHead = 0
	}
	c.rcvSegs = append(c.rcvSegs, p)
}

// segCount is the number of undelivered segments. Caller holds mu.
func (c *Conn) segCount() int { return len(c.rcvSegs) - c.rcvSegHead }

// Write implements net.Conn: it splits b into MSS-sized packets, copies
// each into a pooled buffer and queues them for paced transmission,
// blocking while the send queue is full. The whole call takes the lock
// once (plus once per backpressure stall), not once per chunk.
func (c *Conn) Write(b []byte) (int, error) {
	total := 0
	c.mu.Lock()
	for len(b) > 0 {
		for c.sndQueueBytes >= c.cfg.SndQueue {
			if c.dead {
				c.mu.Unlock()
				return total, ErrPeerDead
			}
			if c.closed || c.peerClosed {
				c.mu.Unlock()
				return total, ErrClosed
			}
			if !c.writeDeadline.IsZero() && !time.Now().Before(c.writeDeadline) {
				c.mu.Unlock()
				return total, ErrTimeout
			}
			c.waitWrite()
		}
		if c.dead {
			c.mu.Unlock()
			return total, ErrPeerDead
		}
		if c.closed || c.peerClosed {
			c.mu.Unlock()
			return total, ErrClosed
		}
		chunk := b
		if len(chunk) > mssPayload {
			chunk = chunk[:mssPayload]
		}
		dup := bufpool.Get(len(chunk))
		copy(dup, chunk)
		c.sndQueue = append(c.sndQueue, dup)
		c.sndQueueBytes += len(dup)
		total += len(chunk)
		b = b[len(chunk):]
	}
	c.mu.Unlock()
	if total > 0 {
		c.kickSender()
	}
	return total, nil
}

func (c *Conn) waitWrite() {
	var t *time.Timer
	if !c.writeDeadline.IsZero() {
		t = time.AfterFunc(time.Until(c.writeDeadline), c.writeCond.Broadcast)
	}
	c.writeCond.Wait()
	if t != nil {
		t.Stop()
	}
}

func (c *Conn) kickSender() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Close implements net.Conn: it lingers until queued data drains (bounded
// by LingerTimeout), notifies the peer, recycles every pooled buffer the
// connection still owns and releases resources.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	// Linger: wait for the sender to flush queue and retransmissions.
	deadline := time.Now().Add(c.cfg.LingerTimeout)
	for !c.peerClosed && (len(c.sndQueue) > 0 || c.sndUnacked.len() > 0) && time.Now().Before(deadline) {
		t := time.AfterFunc(50*time.Millisecond, c.writeCond.Broadcast)
		c.writeCond.Wait()
		t.Stop()
	}
	c.closed = true
	c.releaseBuffersLocked()
	c.mu.Unlock()

	for i := 0; i < 3; i++ {
		c.send([]byte{ctlShutdown})
	}
	close(c.done)
	c.readCond.Broadcast()
	c.writeCond.Broadcast()
	if c.onClose != nil {
		c.onClose()
	}
	if c.ownsSocket {
		c.udp.Close()
	}
	c.wg.Wait()
	return nil
}

// releaseBuffersLocked returns every pooled buffer the connection owns —
// unsent queue, in-flight window, out-of-order window and undelivered
// segments — to bufpool. Caller holds mu with c.closed or c.dead already
// set, so no other path will touch these buffers again.
func (c *Conn) releaseBuffersLocked() {
	for i, p := range c.sndQueue {
		if p != nil {
			bufpool.Put(p)
			c.sndQueue[i] = nil
		}
	}
	c.sndQueue = nil
	c.sndQueueBytes = 0
	c.sndUnacked.drain(bufpool.Put)
	c.rcvOOO.drain(bufpool.Put)
	for i := c.rcvSegHead; i < len(c.rcvSegs); i++ {
		bufpool.Put(c.rcvSegs[i])
		c.rcvSegs[i] = nil
	}
	c.rcvSegs, c.rcvSegHead, c.rcvSegOff = nil, 0, 0
	c.loss.clear()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.udp.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return net.UDPAddrFromAddrPort(c.raddr) }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	return c.SetWriteDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	c.readCond.Broadcast()
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	c.writeCond.Broadcast()
	return nil
}

// Stats reports retransmission and NAK counters, for tests and metrics.
func (c *Conn) Stats() (retransmits, naksSent int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statRetransmits, c.statNaksSent
}

// Rate reports the current DAIMD send rate in bytes/second.
func (c *Conn) Rate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rate
}

// --- sender --------------------------------------------------------------------

// maxBurstPackets bounds the packets encoded per lock acquisition and
// flushed per sendmmsg batch.
const maxBurstPackets = 32

// sendBatch is the sender's reusable burst scratch: packets are encoded
// back-to-back into slab under the connection lock, then flushed outside
// it. Copying into the slab under mu is what makes pooling safe — the
// moment the lock drops, an ACK may recycle the in-flight payload.
type sendBatch struct {
	slab []byte
	ends []int    // ends[i] = offset past packet i in slab
	pkts [][]byte // per-flush packet views (loss-injected drops filtered)
}

// senderLoop paces data packets: each SYN interval grants a byte budget of
// rate·interval, spent on loss-list retransmissions first and then fresh
// data, respecting the peer's flow window. Packets go out in bursts of up
// to maxBurstPackets per lock acquisition and (on Linux) per syscall.
func (c *Conn) senderLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(synInterval)
	defer ticker.Stop()
	var batch sendBatch

	c.mu.Lock()
	budget := c.rate * synInterval.Seconds()
	c.mu.Unlock()
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
			c.mu.Lock()
			budget = c.rate * synInterval.Seconds()
			c.mu.Unlock()
		case <-c.kick:
			// Spend any remaining budget immediately; fresh budget
			// arrives with the next tick.
		}
		for budget > 0 {
			n := c.sendBurst(&batch, budget)
			if n == 0 {
				break
			}
			budget -= float64(n)
		}
	}
}

// sendBurst encodes up to maxBurstPackets packets (retransmissions first)
// into the batch slab under one lock acquisition, flushes them and reports
// the bytes consumed; 0 means nothing was sendable.
func (c *Conn) sendBurst(batch *sendBatch, budget float64) int {
	batch.slab = batch.slab[:0]
	batch.ends = batch.ends[:0]
	burstBytes := 0
	queuedFresh := false
	c.mu.Lock()
	if c.closed || c.dead {
		c.mu.Unlock()
		return 0
	}
	for len(batch.ends) < maxBurstPackets && float64(burstBytes) < budget {
		var payload []byte
		var seq uint32
		for {
			s, ok := c.loss.popFirst()
			if !ok {
				break
			}
			// Within [sndFirstUnack, sndNextSeq) every slot is live
			// (cumulative ACKs prune the loss list), so a hit is always
			// the right packet; a miss means it was ACKed since the NAK.
			if p := c.sndUnacked.get(s); p != nil {
				seq, payload = s, p
				break
			}
		}
		if payload != nil {
			c.statRetransmits++
		} else {
			inflight := int(int32(c.sndNextSeq - c.sndFirstUnack))
			window := c.peerWindow
			if window > c.cfg.MaxFlowWindow {
				window = c.cfg.MaxFlowWindow
			}
			if len(c.sndQueue) == 0 || inflight >= window {
				break
			}
			payload = c.sndQueue[0]
			c.sndQueue[0] = nil
			c.sndQueue = c.sndQueue[1:]
			c.sndQueueBytes -= len(payload)
			seq = c.sndNextSeq
			c.sndNextSeq++
			c.sndUnacked.storeOwned(seq, payload)
			queuedFresh = true
		}
		batch.slab = append(batch.slab, pktData)
		batch.slab = binary.BigEndian.AppendUint32(batch.slab, seq)
		batch.slab = append(batch.slab, payload...)
		batch.ends = append(batch.ends, len(batch.slab))
		burstBytes += dataHeaderLen + len(payload)
	}
	if queuedFresh {
		c.writeCond.Broadcast()
	}
	c.mu.Unlock()
	if len(batch.ends) == 0 {
		return 0
	}
	c.flushBatch(batch)
	return burstBytes
}

// flushBatch transmits an encoded burst: the loss injector is consulted per
// packet outside the lock (a hook touching the connection must not
// deadlock), survivors go out via one sendmmsg where available, otherwise
// as sequential writes.
func (c *Conn) flushBatch(batch *sendBatch) {
	batch.pkts = batch.pkts[:0]
	start := 0
	for _, end := range batch.ends {
		pkt := batch.slab[start:end]
		start = end
		if c.cfg.LossInjector != nil && c.cfg.LossInjector() {
			continue
		}
		batch.pkts = append(batch.pkts, pkt)
	}
	if len(batch.pkts) == 0 {
		return
	}
	if c.mmsg != nil && len(batch.pkts) > 1 {
		if c.mmsg.send(batch.pkts) {
			return
		}
		// Batching unavailable on this socket: fall back for good.
		c.mmsg = nil
	}
	for _, p := range batch.pkts {
		c.send(p)
	}
}

// send writes a raw packet to the peer; errors are ignored (UDP is
// best-effort and reliability lives above).
func (c *Conn) send(b []byte) {
	if c.ownsSocket {
		_, _ = c.udp.Write(b)
		return
	}
	_, _ = c.udp.WriteToUDPAddrPort(b, c.raddr)
}

// --- receiver / control --------------------------------------------------------

// expTicks is how many SYN intervals without ACK progress trigger the EXP
// timer: all unacknowledged packets go back on the loss list. This covers
// tail loss, which gap-driven NAKs cannot detect (no later packet ever
// arrives to reveal the gap).
const expTicks = 10

// ackLoop emits a cumulative ACK every SYN interval, re-NAKs stale gaps so
// lost NAKs cannot stall the stream, and runs the sender's EXP timer.
func (c *Conn) ackLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(synInterval)
	defer ticker.Stop()
	staleTicks := 0
	expCounter := 0
	expEvents := 0
	lastUnack := uint32(0)
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
		}
		c.mu.Lock()
		ackSeq := c.rcvNextSeq
		window := c.advertisedWindow()
		needAck := ackSeq != c.lastAcked || c.rcvOOO.len() > 0
		c.lastAcked = ackSeq
		var ranges []nakRange
		if c.rcvOOO.len() > 0 {
			staleTicks++
			if staleTicks >= 4 {
				ranges = c.missingRanges()
				staleTicks = 0
			}
		} else {
			staleTicks = 0
		}
		if len(ranges) > 0 {
			c.statNaksSent++
		}

		// EXP timer: no ACK progress while data is in flight.
		kick := false
		died := false
		if c.sndUnacked.len() > 0 {
			if c.sndFirstUnack == lastUnack {
				expCounter++
			} else {
				expCounter = 0
				expEvents = 0
			}
			if expCounter >= expTicks && c.loss.empty() {
				expEvents++
				if c.cfg.PeerDeathEXPs > 0 && expEvents >= c.cfg.PeerDeathEXPs {
					// The peer stayed silent through PeerDeathEXPs full
					// retransmission rounds: declare it dead, fail blocked
					// I/O promptly and release every station buffer now
					// rather than at some eventual Close.
					c.dead = true
					c.releaseBuffersLocked()
					died = true
				} else {
					// Cumulative ACKs mean everything in
					// [sndFirstUnack, sndNextSeq) is still in flight:
					// reschedule it as one range.
					c.loss.insert(c.sndFirstUnack, c.sndNextSeq-1)
					c.slowStart = false
					c.rate = c.rate * 8 / 9
					if c.rate < minRate {
						c.rate = minRate
					}
					kick = true
				}
				expCounter = 0
			}
		} else {
			expCounter = 0
			expEvents = 0
		}
		lastUnack = c.sndFirstUnack
		c.mu.Unlock()

		if died {
			c.readCond.Broadcast()
			c.writeCond.Broadcast()
			continue // stay on duty for ACK/shutdown bookkeeping until Close
		}
		if needAck {
			c.send(encodeAck(ackSeq, uint32(window)))
		}
		if len(ranges) > 0 {
			c.send(encodeNak(ranges))
		}
		if kick {
			c.kickSender()
		}
	}
}

// advertisedWindow is the receive buffer space in packets. Caller holds mu.
func (c *Conn) advertisedWindow() int {
	used := c.rcvOOO.len() + c.segCount()
	w := c.cfg.RcvBuffer - used
	if w < 1 {
		w = 1
	}
	return w
}

// missingRanges lists the gaps between rcvNextSeq and the receive
// frontier. Caller holds mu.
func (c *Conn) missingRanges() []nakRange {
	var ranges []nakRange
	var cur *nakRange
	for seq := c.rcvNextSeq; seqLess(seq, c.rcvLargest); seq++ {
		if c.rcvOOO.get(seq) != nil {
			cur = nil
			continue
		}
		if cur == nil {
			ranges = append(ranges, nakRange{from: seq, to: seq})
			cur = &ranges[len(ranges)-1]
		} else {
			cur.to = seq
		}
	}
	return ranges
}

// handlePacket processes one raw datagram for this connection. Called from
// the owning mux's read loop; b is only valid for the duration of the
// call.
func (c *Conn) handlePacket(b []byte) {
	if len(b) == 0 {
		return
	}
	switch {
	case b[0] == pktData:
		c.handleData(b)
	case b[0] == ctlAck:
		c.handleAck(b)
	case b[0] == ctlNak:
		c.handleNak(b)
	case b[0] == ctlShutdown:
		c.handleShutdown()
	case b[0] == ctlHsAck:
		c.handleHsAck(b)
	case b[0] == ctlHandshake:
		// Peer retransmitted its handshake: re-acknowledge.
		c.mu.Lock()
		seq := c.sndNextSeq
		window := uint32(c.advertisedWindow())
		c.mu.Unlock()
		c.send(encodeHandshake(ctlHsAck, seq, window))
	case b[0] == ctlKeepalive:
		// Nothing to do.
	default:
		// Unknown packet: drop.
	}
}

func (c *Conn) handleData(b []byte) {
	seq, payload, err := decodeData(b)
	if err != nil || len(payload) == 0 {
		return
	}
	var gap nakRange
	hasGap := false
	c.mu.Lock()
	switch {
	case c.closed || c.dead:
		// Teardown already recycled the receive buffers; drop.
	case seqLess(seq, c.rcvNextSeq):
		// Duplicate of already-delivered data; the periodic ACK covers it.
	case int(int32(seq-c.rcvNextSeq)) >= c.cfg.RcvBuffer:
		// Beyond our buffer: drop; flow control should prevent this.
	default:
		// rcvLargest is the upper frontier: the lowest seq never seen.
		// Arrivals beyond it leave a gap [rcvLargest, seq-1] that is
		// NAKed immediately (UDT's fast loss report).
		if seqLess(c.rcvLargest, seq) {
			g := nakRange{from: c.rcvLargest, to: seq - 1}
			if seqLeq(g.from, g.to) {
				gap, hasGap = g, true
			}
		}
		if seqLeq(c.rcvLargest, seq) {
			c.rcvLargest = seq + 1
		}
		if c.rcvOOO.get(seq) == nil {
			buf := bufpool.Get(len(payload))
			copy(buf, payload)
			c.rcvOOO.storeOwned(seq, buf)
			c.drainContiguous()
		}
		if hasGap {
			c.statNaksSent++
		}
	}
	c.mu.Unlock()
	if hasGap {
		c.send(encodeNak([]nakRange{gap}))
	}
}

// drainContiguous moves in-order packets from the out-of-order ring onto
// the read segment queue (no copying — the pooled buffer itself moves).
// Caller holds mu.
func (c *Conn) drainContiguous() {
	moved := false
	for {
		p := c.rcvOOO.take(c.rcvNextSeq)
		if p == nil {
			break
		}
		c.pushSeg(p)
		c.rcvNextSeq++
		moved = true
	}
	if seqLess(c.rcvLargest, c.rcvNextSeq) {
		c.rcvLargest = c.rcvNextSeq
	}
	if moved {
		c.readCond.Broadcast()
	}
}

func (c *Conn) handleAck(b []byte) {
	ackSeq, window, err := decodeAck(b)
	if err != nil {
		return
	}
	c.mu.Lock()
	if c.dead {
		// A late ACK cannot resurrect the connection; the windows are
		// already drained.
		c.mu.Unlock()
		return
	}
	// Clamp to what was actually sent: a corrupt or hostile ACK beyond
	// sndNextSeq must not walk the ring (alias risk) nor spin the loop.
	if seqLess(c.sndNextSeq, ackSeq) {
		ackSeq = c.sndNextSeq
	}
	if seqLess(c.sndFirstUnack, ackSeq) {
		for seq := c.sndFirstUnack; seqLess(seq, ackSeq); seq++ {
			if p := c.sndUnacked.take(seq); p != nil {
				bufpool.Put(p)
			}
		}
		c.sndFirstUnack = ackSeq
		c.loss.pruneBelow(ackSeq)
		// Loss-free progress: double during slow start (UDT's start-up
		// phase), DAIMD additive increase afterwards.
		if c.slowStart {
			c.rate *= 2
		} else {
			c.rate += c.cfg.Increase
		}
		if c.cfg.MaxRate > 0 && c.rate > c.cfg.MaxRate {
			c.rate = c.cfg.MaxRate
		}
		c.writeCond.Broadcast()
	}
	c.peerWindow = int(window)
	c.mu.Unlock()
	c.kickSender()
}

func (c *Conn) handleNak(b []byte) {
	ranges, err := decodeNak(b)
	if err != nil {
		return
	}
	c.mu.Lock()
	for _, r := range ranges {
		from, to := r.from, r.to
		// Clip to the in-flight window so hostile ranges cannot alias
		// ring slots outside [sndFirstUnack, sndNextSeq).
		if seqLess(from, c.sndFirstUnack) {
			from = c.sndFirstUnack
		}
		if seqLeq(c.sndNextSeq, to) {
			to = c.sndNextSeq - 1
		}
		if seqLess(to, from) {
			continue
		}
		c.loss.insert(from, to)
	}
	// First loss ends slow start; DAIMD multiplicative decrease.
	c.slowStart = false
	c.rate = c.rate * 8 / 9
	if c.rate < minRate {
		c.rate = minRate
	}
	c.mu.Unlock()
	c.kickSender()
}

func (c *Conn) handleShutdown() {
	c.mu.Lock()
	c.peerClosed = true
	c.mu.Unlock()
	c.readCond.Broadcast()
	c.writeCond.Broadcast()
}

func (c *Conn) handleHsAck(b []byte) {
	initialSeq, window, err := decodeHandshake(b)
	if err != nil {
		return
	}
	c.mu.Lock()
	if !c.established {
		c.established = true
		c.rcvNextSeq = initialSeq
		c.rcvLargest = initialSeq
		c.peerWindow = int(window)
		close(c.establishedCh)
	}
	c.mu.Unlock()
}

// completeAccept initialises receiver state on the listener side from the
// client's handshake.
func (c *Conn) completeAccept(clientSeq uint32, window uint32) {
	c.mu.Lock()
	if !c.established {
		c.established = true
		c.rcvNextSeq = clientSeq
		c.rcvLargest = clientSeq
		c.peerWindow = int(window)
		close(c.establishedCh)
	}
	c.mu.Unlock()
}

var errHandshakeTimeout = fmt.Errorf("udt: handshake timed out")
