package udt

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// synInterval is UDT's fixed 10 ms control cadence: ACKs are emitted and
// the sending rate re-evaluated once per interval.
const synInterval = 10 * time.Millisecond

// Config tunes a UDT connection. The zero value gets sensible defaults;
// the paper's experiments raised buffer sizes from 12 MB to 100 MB for
// high-BDP links, which corresponds to MaxFlowWindow/RcvBuffer here.
type Config struct {
	// MaxFlowWindow bounds unacknowledged packets in flight (default
	// 8192 ≈ 11 MB of payload).
	MaxFlowWindow int
	// RcvBuffer bounds buffered packets on the receive side; also the
	// window advertised to the peer (default 8192).
	RcvBuffer int
	// SndQueue bounds bytes accepted by Write but not yet transmitted
	// (default 8 MB); full queues apply backpressure.
	SndQueue int
	// InitialRate is the starting send rate in bytes/second (default
	// 1 MB/s).
	InitialRate float64
	// MaxRate caps the send rate in bytes/second; 0 means unlimited.
	MaxRate float64
	// Increase is the additive rate increase in bytes/second applied per
	// SYN interval with loss-free feedback (default 256 KB).
	Increase float64
	// HandshakeTimeout bounds connection establishment (default 5 s).
	HandshakeTimeout time.Duration
	// LingerTimeout bounds how long Close waits for unsent data to drain
	// (default 10 s).
	LingerTimeout time.Duration
	// LossInjector, when set, is consulted per outgoing data packet; a
	// true result drops the packet before the socket. Test hook for
	// exercising NAK/retransmission machinery deterministically.
	LossInjector func() bool
}

func (c Config) withDefaults() Config {
	if c.MaxFlowWindow <= 0 {
		c.MaxFlowWindow = 8192
	}
	if c.RcvBuffer <= 0 {
		c.RcvBuffer = 8192
	}
	if c.SndQueue <= 0 {
		c.SndQueue = 8 << 20
	}
	if c.InitialRate <= 0 {
		c.InitialRate = 1 << 20
	}
	if c.Increase <= 0 {
		c.Increase = 256 << 10
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.LingerTimeout <= 0 {
		c.LingerTimeout = 10 * time.Second
	}
	return c
}

// minRate is the floor of the DAIMD controller in bytes/second.
const minRate = 128 << 10

// Errors returned by Conn operations.
var (
	// ErrClosed reports use of a closed connection.
	ErrClosed = errors.New("udt: connection closed")
	// ErrTimeout reports an expired deadline; it satisfies net.Error.
	ErrTimeout = timeoutError{}
)

type timeoutError struct{}

func (timeoutError) Error() string   { return "udt: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// Conn is a reliable, ordered byte stream over UDP implementing net.Conn.
type Conn struct {
	udp        *net.UDPConn
	raddr      *net.UDPAddr
	ownsSocket bool
	onClose    func() // mux unregistration
	cfg        Config

	mu        sync.Mutex
	readCond  *sync.Cond
	writeCond *sync.Cond

	// Sender state.
	sndQueue      [][]byte
	sndQueueBytes int
	sndUnacked    map[uint32][]byte
	lossList      []uint32
	sndNextSeq    uint32
	sndFirstUnack uint32
	peerWindow    int
	rate          float64

	// Receiver state.
	rcvNextSeq uint32
	rcvLargest uint32 // next seq never seen (upper frontier)
	rcvOOO     map[uint32][]byte
	readBuf    []byte
	lastAcked  uint32

	// Lifecycle.
	established   bool
	establishedCh chan struct{}
	closed        bool
	peerClosed    bool
	done          chan struct{}
	wg            sync.WaitGroup

	readDeadline  time.Time
	writeDeadline time.Time

	// kick wakes the pacing loop when new data is queued.
	kick chan struct{}

	// Stats (atomic access not needed: guarded by mu).
	statRetransmits int
	statNaksSent    int
}

var _ net.Conn = (*Conn)(nil)

func newConn(udp *net.UDPConn, raddr *net.UDPAddr, ownsSocket bool, cfg Config) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{
		udp:           udp,
		raddr:         raddr,
		ownsSocket:    ownsSocket,
		cfg:           cfg,
		sndUnacked:    make(map[uint32][]byte),
		rcvOOO:        make(map[uint32][]byte),
		peerWindow:    cfg.MaxFlowWindow,
		rate:          cfg.InitialRate,
		establishedCh: make(chan struct{}),
		done:          make(chan struct{}),
		kick:          make(chan struct{}, 1),
	}
	c.readCond = sync.NewCond(&c.mu)
	c.writeCond = sync.NewCond(&c.mu)
	return c
}

// start launches the sender and ACK loops once the handshake completed.
func (c *Conn) start() {
	c.wg.Add(2)
	go c.senderLoop()
	go c.ackLoop()
}

// --- net.Conn surface ---------------------------------------------------------

// Read implements net.Conn: it returns buffered in-order bytes, blocking
// until data arrives, the peer shuts down (io.EOF) or the read deadline
// expires.
func (c *Conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.readBuf) == 0 {
		if c.closed {
			return 0, ErrClosed
		}
		if c.peerClosed {
			return 0, io.EOF
		}
		if !c.readDeadline.IsZero() && !time.Now().Before(c.readDeadline) {
			return 0, ErrTimeout
		}
		c.waitRead()
	}
	n := copy(b, c.readBuf)
	c.readBuf = c.readBuf[n:]
	if len(c.readBuf) == 0 {
		c.readBuf = nil // release the backing array
	}
	return n, nil
}

// waitRead blocks on readCond, arranging a wake-up at the deadline.
func (c *Conn) waitRead() {
	var t *time.Timer
	if !c.readDeadline.IsZero() {
		t = time.AfterFunc(time.Until(c.readDeadline), c.readCond.Broadcast)
	}
	c.readCond.Wait()
	if t != nil {
		t.Stop()
	}
}

// Write implements net.Conn: it splits b into MSS-sized packets and queues
// them for paced transmission, blocking while the send queue is full.
func (c *Conn) Write(b []byte) (int, error) {
	total := 0
	for len(b) > 0 {
		chunk := b
		if len(chunk) > mssPayload {
			chunk = chunk[:mssPayload]
		}
		if err := c.queueChunk(chunk); err != nil {
			return total, err
		}
		total += len(chunk)
		b = b[len(chunk):]
	}
	c.kickSender()
	return total, nil
}

func (c *Conn) queueChunk(chunk []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.sndQueueBytes >= c.cfg.SndQueue {
		if c.closed || c.peerClosed {
			return ErrClosed
		}
		if !c.writeDeadline.IsZero() && !time.Now().Before(c.writeDeadline) {
			return ErrTimeout
		}
		c.waitWrite()
	}
	if c.closed || c.peerClosed {
		return ErrClosed
	}
	dup := make([]byte, len(chunk))
	copy(dup, chunk)
	c.sndQueue = append(c.sndQueue, dup)
	c.sndQueueBytes += len(dup)
	return nil
}

func (c *Conn) waitWrite() {
	var t *time.Timer
	if !c.writeDeadline.IsZero() {
		t = time.AfterFunc(time.Until(c.writeDeadline), c.writeCond.Broadcast)
	}
	c.writeCond.Wait()
	if t != nil {
		t.Stop()
	}
}

func (c *Conn) kickSender() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Close implements net.Conn: it lingers until queued data drains (bounded
// by LingerTimeout), notifies the peer and releases resources.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	// Linger: wait for the sender to flush queue and retransmissions.
	deadline := time.Now().Add(c.cfg.LingerTimeout)
	for !c.peerClosed && (len(c.sndQueue) > 0 || len(c.sndUnacked) > 0) && time.Now().Before(deadline) {
		t := time.AfterFunc(50*time.Millisecond, c.writeCond.Broadcast)
		c.writeCond.Wait()
		t.Stop()
	}
	c.closed = true
	c.mu.Unlock()

	for i := 0; i < 3; i++ {
		c.send([]byte{ctlShutdown})
	}
	close(c.done)
	c.readCond.Broadcast()
	c.writeCond.Broadcast()
	if c.onClose != nil {
		c.onClose()
	}
	if c.ownsSocket {
		c.udp.Close()
	}
	c.wg.Wait()
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.udp.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.raddr }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	return c.SetWriteDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	c.readCond.Broadcast()
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	c.writeCond.Broadcast()
	return nil
}

// Stats reports retransmission and NAK counters, for tests and metrics.
func (c *Conn) Stats() (retransmits, naksSent int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statRetransmits, c.statNaksSent
}

// Rate reports the current DAIMD send rate in bytes/second.
func (c *Conn) Rate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rate
}

// --- sender --------------------------------------------------------------------

// senderLoop paces data packets: each SYN interval grants a byte budget of
// rate·interval, spent on loss-list retransmissions first and then fresh
// data, respecting the peer's flow window.
func (c *Conn) senderLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(synInterval)
	defer ticker.Stop()
	buf := make([]byte, 0, dataHeaderLen+mssPayload)

	var budget float64
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
			c.mu.Lock()
			budget = c.rate * synInterval.Seconds()
			c.mu.Unlock()
		case <-c.kick:
			// Spend any remaining budget immediately; fresh budget
			// arrives with the next tick.
		}
		for budget > 0 {
			sent, n := c.sendOne(buf)
			if !sent {
				break
			}
			budget -= float64(n)
		}
	}
}

// sendOne transmits a single packet (retransmission first) and reports the
// bytes consumed.
func (c *Conn) sendOne(buf []byte) (bool, int) {
	c.mu.Lock()
	var seq uint32
	var payload []byte
	retransmit := false
	for len(c.lossList) > 0 {
		seq = c.lossList[0]
		c.lossList = c.lossList[1:]
		if p, ok := c.sndUnacked[seq]; ok {
			payload = p
			retransmit = true
			break
		}
		// Already acknowledged since the NAK; skip.
	}
	if payload == nil {
		inflight := int(int32(c.sndNextSeq - c.sndFirstUnack))
		window := c.peerWindow
		if window > c.cfg.MaxFlowWindow {
			window = c.cfg.MaxFlowWindow
		}
		if len(c.sndQueue) == 0 || inflight >= window {
			c.mu.Unlock()
			return false, 0
		}
		payload = c.sndQueue[0]
		c.sndQueue[0] = nil
		c.sndQueue = c.sndQueue[1:]
		c.sndQueueBytes -= len(payload)
		seq = c.sndNextSeq
		c.sndNextSeq++
		c.sndUnacked[seq] = payload
		c.writeCond.Broadcast()
	} else {
		c.statRetransmits++
	}
	c.mu.Unlock()
	// cfg is immutable after construction, so the injector can run after
	// the unlock; calling a caller-supplied hook under c.mu could deadlock
	// if the hook touches the connection.
	drop := c.cfg.LossInjector != nil && c.cfg.LossInjector()

	n := dataHeaderLen + len(payload)
	if !drop {
		c.send(encodeData(buf, seq, payload))
	}
	_ = retransmit
	return true, n
}

// send writes a raw packet to the peer; errors are ignored (UDP is
// best-effort and reliability lives above).
func (c *Conn) send(b []byte) {
	if c.ownsSocket {
		_, _ = c.udp.Write(b)
		return
	}
	_, _ = c.udp.WriteToUDP(b, c.raddr)
}

// --- receiver / control --------------------------------------------------------

// expTicks is how many SYN intervals without ACK progress trigger the EXP
// timer: all unacknowledged packets go back on the loss list. This covers
// tail loss, which gap-driven NAKs cannot detect (no later packet ever
// arrives to reveal the gap).
const expTicks = 10

// ackLoop emits a cumulative ACK every SYN interval, re-NAKs stale gaps so
// lost NAKs cannot stall the stream, and runs the sender's EXP timer.
func (c *Conn) ackLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(synInterval)
	defer ticker.Stop()
	staleTicks := 0
	expCounter := 0
	lastUnack := uint32(0)
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
		}
		c.mu.Lock()
		ackSeq := c.rcvNextSeq
		window := c.advertisedWindow()
		needAck := ackSeq != c.lastAcked || len(c.rcvOOO) > 0
		c.lastAcked = ackSeq
		var ranges []nakRange
		if len(c.rcvOOO) > 0 {
			staleTicks++
			if staleTicks >= 4 {
				ranges = c.missingRanges()
				staleTicks = 0
			}
		} else {
			staleTicks = 0
		}
		if len(ranges) > 0 {
			c.statNaksSent++
		}

		// EXP timer: no ACK progress while data is in flight.
		kick := false
		if len(c.sndUnacked) > 0 {
			if c.sndFirstUnack == lastUnack {
				expCounter++
			} else {
				expCounter = 0
			}
			if expCounter >= expTicks && len(c.lossList) == 0 {
				c.lossList = c.unackedSeqs()
				c.rate = c.rate * 8 / 9
				if c.rate < minRate {
					c.rate = minRate
				}
				expCounter = 0
				kick = true
			}
		} else {
			expCounter = 0
		}
		lastUnack = c.sndFirstUnack
		c.mu.Unlock()

		if needAck {
			c.send(encodeAck(ackSeq, uint32(window)))
		}
		if len(ranges) > 0 {
			c.send(encodeNak(ranges))
		}
		if kick {
			c.kickSender()
		}
	}
}

// unackedSeqs lists in-flight sequence numbers in send order. Caller
// holds mu.
func (c *Conn) unackedSeqs() []uint32 {
	seqs := make([]uint32, 0, len(c.sndUnacked))
	for seq := c.sndFirstUnack; seqLess(seq, c.sndNextSeq); seq++ {
		if _, ok := c.sndUnacked[seq]; ok {
			seqs = append(seqs, seq)
		}
	}
	return seqs
}

// advertisedWindow is the receive buffer space in packets. Caller holds mu.
func (c *Conn) advertisedWindow() int {
	used := len(c.rcvOOO) + len(c.readBuf)/mssPayload
	w := c.cfg.RcvBuffer - used
	if w < 1 {
		w = 1
	}
	return w
}

// missingRanges lists the gaps between rcvNextSeq and the receive
// frontier. Caller holds mu.
func (c *Conn) missingRanges() []nakRange {
	var ranges []nakRange
	var cur *nakRange
	for seq := c.rcvNextSeq; seqLess(seq, c.rcvLargest); seq++ {
		if _, ok := c.rcvOOO[seq]; ok {
			cur = nil
			continue
		}
		if cur == nil {
			ranges = append(ranges, nakRange{from: seq, to: seq})
			cur = &ranges[len(ranges)-1]
		} else {
			cur.to = seq
		}
	}
	return ranges
}

// handlePacket processes one raw datagram for this connection. Called from
// the owning mux's read loop; b is only valid for the duration of the
// call.
func (c *Conn) handlePacket(b []byte) {
	if len(b) == 0 {
		return
	}
	switch {
	case b[0] == pktData:
		c.handleData(b)
	case b[0] == ctlAck:
		c.handleAck(b)
	case b[0] == ctlNak:
		c.handleNak(b)
	case b[0] == ctlShutdown:
		c.handleShutdown()
	case b[0] == ctlHsAck:
		c.handleHsAck(b)
	case b[0] == ctlHandshake:
		// Peer retransmitted its handshake: re-acknowledge.
		c.mu.Lock()
		seq := c.sndNextSeq
		window := uint32(c.advertisedWindow())
		c.mu.Unlock()
		c.send(encodeHandshake(ctlHsAck, seq, window))
	case b[0] == ctlKeepalive:
		// Nothing to do.
	default:
		// Unknown packet: drop.
	}
}

func (c *Conn) handleData(b []byte) {
	seq, payload, err := decodeData(b)
	if err != nil {
		return
	}
	var gap *nakRange
	c.mu.Lock()
	switch {
	case seqLess(seq, c.rcvNextSeq):
		// Duplicate of already-delivered data; the periodic ACK covers it.
	case int(int32(seq-c.rcvNextSeq)) >= c.cfg.RcvBuffer:
		// Beyond our buffer: drop; flow control should prevent this.
	default:
		// rcvLargest is the upper frontier: the lowest seq never seen.
		// Arrivals beyond it leave a gap [rcvLargest, seq-1] that is
		// NAKed immediately (UDT's fast loss report).
		if seqLess(c.rcvLargest, seq) {
			g := nakRange{from: c.rcvLargest, to: seq - 1}
			if seqLeq(g.from, g.to) {
				gap = &g
			}
		}
		if seqLeq(c.rcvLargest, seq) {
			c.rcvLargest = seq + 1
		}
		if _, dup := c.rcvOOO[seq]; !dup {
			buf := make([]byte, len(payload))
			copy(buf, payload)
			c.rcvOOO[seq] = buf
			c.drainContiguous()
		}
	}
	if gap != nil {
		c.statNaksSent++
	}
	c.mu.Unlock()
	if gap != nil {
		c.send(encodeNak([]nakRange{*gap}))
	}
}

// drainContiguous moves in-order packets from the out-of-order buffer into
// the read buffer. Caller holds mu.
func (c *Conn) drainContiguous() {
	moved := false
	for {
		p, ok := c.rcvOOO[c.rcvNextSeq]
		if !ok {
			break
		}
		delete(c.rcvOOO, c.rcvNextSeq)
		c.readBuf = append(c.readBuf, p...)
		c.rcvNextSeq++
		moved = true
	}
	if seqLess(c.rcvLargest, c.rcvNextSeq) {
		c.rcvLargest = c.rcvNextSeq
	}
	if moved {
		c.readCond.Broadcast()
	}
}

func (c *Conn) handleAck(b []byte) {
	ackSeq, window, err := decodeAck(b)
	if err != nil {
		return
	}
	c.mu.Lock()
	if seqLess(c.sndFirstUnack, ackSeq) || ackSeq == c.sndNextSeq {
		for seq := c.sndFirstUnack; seqLess(seq, ackSeq); seq++ {
			delete(c.sndUnacked, seq)
		}
		c.sndFirstUnack = ackSeq
		// DAIMD additive increase on progress.
		c.rate += c.cfg.Increase
		if c.cfg.MaxRate > 0 && c.rate > c.cfg.MaxRate {
			c.rate = c.cfg.MaxRate
		}
		c.writeCond.Broadcast()
	}
	c.peerWindow = int(window)
	c.mu.Unlock()
	c.kickSender()
}

func (c *Conn) handleNak(b []byte) {
	ranges, err := decodeNak(b)
	if err != nil {
		return
	}
	c.mu.Lock()
	for _, r := range ranges {
		for seq := r.from; seqLeq(seq, r.to); seq++ {
			if _, ok := c.sndUnacked[seq]; ok && !c.inLossList(seq) {
				c.lossList = append(c.lossList, seq)
			}
		}
	}
	// DAIMD multiplicative decrease.
	c.rate = c.rate * 8 / 9
	if c.rate < minRate {
		c.rate = minRate
	}
	c.mu.Unlock()
	c.kickSender()
}

// inLossList reports whether seq is already scheduled for retransmission.
// Caller holds mu. Loss lists are short (one NAK's worth), so linear scan
// suffices.
func (c *Conn) inLossList(seq uint32) bool {
	for _, s := range c.lossList {
		if s == seq {
			return true
		}
	}
	return false
}

func (c *Conn) handleShutdown() {
	c.mu.Lock()
	c.peerClosed = true
	c.mu.Unlock()
	c.readCond.Broadcast()
	c.writeCond.Broadcast()
}

func (c *Conn) handleHsAck(b []byte) {
	initialSeq, window, err := decodeHandshake(b)
	if err != nil {
		return
	}
	c.mu.Lock()
	if !c.established {
		c.established = true
		c.rcvNextSeq = initialSeq
		c.rcvLargest = initialSeq
		c.peerWindow = int(window)
		close(c.establishedCh)
	}
	c.mu.Unlock()
}

// completeAccept initialises receiver state on the listener side from the
// client's handshake.
func (c *Conn) completeAccept(clientSeq uint32, window uint32) {
	c.mu.Lock()
	if !c.established {
		c.established = true
		c.rcvNextSeq = clientSeq
		c.rcvLargest = clientSeq
		c.peerWindow = int(window)
		close(c.establishedCh)
	}
	c.mu.Unlock()
}

var errHandshakeTimeout = fmt.Errorf("udt: handshake timed out")
