//go:build linux && (amd64 || arm64)

package udt

// sendmmsg/recvmmsg batching over the raw file descriptor: one syscall
// moves up to a whole burst of datagrams. Implemented with
// syscall.Syscall6 against the stdlib syscall numbers (no external
// dependencies) through net.UDPConn's RawConn, so the runtime poller keeps
// working: the raw calls use MSG_DONTWAIT and return false from the
// RawConn callback on EAGAIN, which parks the goroutine until the socket
// is ready again.
//
// The mmsghdr layout below (msghdr + 32-bit msg_len + 4 bytes padding to
// the 8-byte boundary) is only correct where msghdr is the 56-byte 64-bit
// layout — hence the amd64/arm64 build constraint; other platforms take
// the sequential fallback in batch_fallback.go.

import (
	"encoding/binary"
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors struct mmsghdr from <sys/socket.h> on 64-bit Linux.
type mmsghdr struct {
	hdr    syscall.Msghdr
	msgLen uint32
	_      [4]byte
}

// rawSockaddrLen is the size of sockaddr_in6, the larger of the two
// address families we speak; sockaddr_in is 16 bytes.
const rawSockaddrLen = 28

// rawSockaddr renders raddr as the kernel sockaddr bytes appropriate for
// udp's address family (a dual-stack AF_INET6 socket needs v4 peers in
// v4-mapped form). Returns nil when no valid encoding exists.
func rawSockaddr(udp *net.UDPConn, raddr netip.AddrPort) []byte {
	la, _ := udp.LocalAddr().(*net.UDPAddr)
	v4sock := la != nil && la.IP.To4() != nil
	addr := raddr.Addr().Unmap()
	if v4sock {
		if !addr.Is4() {
			return nil
		}
		b := make([]byte, 16) // sockaddr_in
		binary.NativeEndian.PutUint16(b[0:2], uint16(syscall.AF_INET))
		binary.BigEndian.PutUint16(b[2:4], raddr.Port())
		a4 := addr.As4()
		copy(b[4:8], a4[:])
		return b
	}
	b := make([]byte, rawSockaddrLen) // sockaddr_in6
	binary.NativeEndian.PutUint16(b[0:2], uint16(syscall.AF_INET6))
	binary.BigEndian.PutUint16(b[2:4], raddr.Port())
	a16 := raddr.Addr().As16() // IPv4 comes out v4-mapped
	copy(b[8:24], a16[:])
	return b
}

// parseRawSockaddr decodes a kernel sockaddr into a netip.AddrPort
// (invalid when the family is unknown). v4-mapped addresses are unmapped
// so both read paths produce identical mux keys.
func parseRawSockaddr(b []byte) netip.AddrPort {
	if len(b) < 8 {
		return netip.AddrPort{}
	}
	family := binary.NativeEndian.Uint16(b[0:2])
	port := binary.BigEndian.Uint16(b[2:4])
	switch family {
	case syscall.AF_INET:
		var a [4]byte
		copy(a[:], b[4:8])
		return netip.AddrPortFrom(netip.AddrFrom4(a), port)
	case syscall.AF_INET6:
		if len(b) < 24 {
			return netip.AddrPort{}
		}
		var a [16]byte
		copy(a[:], b[8:24])
		return netip.AddrPortFrom(netip.AddrFrom16(a).Unmap(), port)
	}
	return netip.AddrPort{}
}

// mmsgSender flushes a burst of encoded packets with one sendmmsg per
// call. Used only by the connection's sender goroutine, so the scratch
// arrays need no locking.
type mmsgSender struct {
	rc   syscall.RawConn
	name []byte // peer sockaddr for unconnected sockets; nil when connected
	hdrs [maxBurstPackets]mmsghdr
	iovs [maxBurstPackets]syscall.Iovec
}

// newMmsgSender returns a batched sender for udp→raddr, or nil when
// batching is disabled or the descriptor is unavailable (callers then
// write sequentially).
func newMmsgSender(udp *net.UDPConn, raddr netip.AddrPort, connected bool) *mmsgSender {
	if batchingDisabled.Load() {
		return nil
	}
	rc, err := udp.SyscallConn()
	if err != nil {
		return nil
	}
	s := &mmsgSender{rc: rc}
	if !connected {
		s.name = rawSockaddr(udp, raddr)
		if s.name == nil {
			return nil
		}
	}
	return s
}

// send transmits pkts in sendmmsg batches. It reports false when batching
// failed and the caller should fall back to sequential writes; true means
// the burst was handled (including the socket-closed case, where dropping
// the tail matches best-effort UDP semantics).
func (s *mmsgSender) send(pkts [][]byte) bool {
	sent := 0
	for sent < len(pkts) {
		batch := pkts[sent:]
		if len(batch) > len(s.hdrs) {
			batch = batch[:len(s.hdrs)]
		}
		for i, p := range batch {
			s.iovs[i] = syscall.Iovec{Base: &p[0], Len: uint64(len(p))}
			h := &s.hdrs[i].hdr
			*h = syscall.Msghdr{Iov: &s.iovs[i], Iovlen: 1}
			if s.name != nil {
				h.Name = &s.name[0]
				h.Namelen = uint32(len(s.name))
			}
		}
		var n int
		failed := false
		err := s.rc.Write(func(fd uintptr) bool {
			for {
				nn, _, errno := syscall.Syscall6(sysSendmmsg, fd,
					uintptr(unsafe.Pointer(&s.hdrs[0])), uintptr(len(batch)),
					syscall.MSG_DONTWAIT, 0, 0)
				switch errno {
				case 0:
					n = int(nn)
					return true
				case syscall.EAGAIN:
					return false // park until writable
				case syscall.EINTR:
					continue
				default:
					failed = true
					return true
				}
			}
		})
		if err != nil {
			return true // socket closed: drop the tail, like best-effort send
		}
		if failed || n == 0 {
			return false
		}
		sent += n
	}
	return true
}

// batchReadSize is the datagrams drained per recvmmsg call.
const batchReadSize = 16

// batchReader drains bursts of datagrams with one recvmmsg per call.
type batchReader struct {
	rc          syscall.RawConn
	hdrs        [batchReadSize]mmsghdr
	iovs        [batchReadSize]syscall.Iovec
	bufs        [batchReadSize][]byte
	names       [batchReadSize][]byte
	unsupported bool
}

// newBatchReader returns a batched reader for udp, or nil when batching is
// disabled or the descriptor is unavailable.
func newBatchReader(udp *net.UDPConn) *batchReader {
	if batchingDisabled.Load() {
		return nil
	}
	rc, err := udp.SyscallConn()
	if err != nil {
		return nil
	}
	r := &batchReader{rc: rc}
	for i := range r.hdrs {
		r.bufs[i] = make([]byte, maxDatagram)
		r.names[i] = make([]byte, rawSockaddrLen)
		r.iovs[i] = syscall.Iovec{Base: &r.bufs[i][0], Len: maxDatagram}
		r.hdrs[i].hdr = syscall.Msghdr{
			Name:    &r.names[i][0],
			Namelen: rawSockaddrLen,
			Iov:     &r.iovs[i],
			Iovlen:  1,
		}
	}
	return r
}

// read blocks until at least one datagram arrives and reports how many
// were drained; payload(i)/addr(i) expose each. A nil error with 0
// packets is a transient socket error (e.g. ICMP-derived ECONNREFUSED on
// a connected socket) — callers just loop. errBatchUnsupported means the
// kernel lacks recvmmsg and the caller must switch to single reads; any
// other error is fatal (socket closed).
func (r *batchReader) read() (int, error) {
	if r.unsupported {
		return 0, errBatchUnsupported
	}
	for i := range r.hdrs {
		r.hdrs[i].hdr.Namelen = rawSockaddrLen // kernel shrinks it per packet
	}
	var n int
	var transient bool
	err := r.rc.Read(func(fd uintptr) bool {
		for {
			nn, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&r.hdrs[0])), uintptr(len(r.hdrs)),
				syscall.MSG_DONTWAIT, 0, 0)
			switch errno {
			case 0:
				n = int(nn)
				return true
			case syscall.EAGAIN:
				return false // park until readable
			case syscall.EINTR:
				continue
			case syscall.ENOSYS:
				r.unsupported = true
				return true
			default:
				transient = true
				return true
			}
		}
	})
	if err != nil {
		return 0, err // socket closed
	}
	if r.unsupported {
		return 0, errBatchUnsupported
	}
	if transient {
		return 0, nil
	}
	return n, nil
}

// payload returns the bytes of the i-th drained datagram; valid until the
// next read call.
func (r *batchReader) payload(i int) []byte { return r.bufs[i][:r.hdrs[i].msgLen] }

// addr returns the source address of the i-th drained datagram.
func (r *batchReader) addr(i int) netip.AddrPort {
	return parseRawSockaddr(r.names[i][:r.hdrs[i].hdr.Namelen])
}
