package udt

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"time"
)

// maxDatagram bounds received datagram size; larger packets are truncated
// by the kernel anyway for our MTU-sized sends.
const maxDatagram = 2048

// Listener accepts UDT connections on a UDP port, demultiplexing datagrams
// to per-peer connections. It implements net.Listener.
type Listener struct {
	udp *net.UDPConn
	cfg Config

	mu       sync.Mutex
	conns    map[netip.AddrPort]*Conn
	acceptCh chan *Conn
	closed   bool
	done     chan struct{}
	wg       sync.WaitGroup
}

var _ net.Listener = (*Listener)(nil)

// Listen starts a UDT listener on the given UDP address ("host:port").
func Listen(addr string, cfg Config) (*Listener, error) {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udt: resolve %q: %w", addr, err)
	}
	sock, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, fmt.Errorf("udt: listen %q: %w", addr, err)
	}
	tuneSocket(sock)
	l := &Listener{
		udp:      sock,
		cfg:      cfg.withDefaults(),
		conns:    make(map[netip.AddrPort]*Conn),
		acceptCh: make(chan *Conn, 16),
		done:     make(chan struct{}),
	}
	l.wg.Add(1)
	go l.readLoop()
	return l, nil
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.acceptCh:
		return c, nil
	case <-l.done:
		return nil, ErrListenerClosed
	}
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.udp.LocalAddr() }

// Close implements net.Listener: it stops accepting and closes every
// connection.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	conns := make([]*Conn, 0, len(l.conns))
	for _, c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()

	close(l.done)
	l.udp.Close()
	for _, c := range conns {
		c.Close()
	}
	l.wg.Wait()
	return nil
}

// readLoop pulls datagrams off the socket and dispatches them. Where the
// platform supports it, recvmmsg drains a whole burst per syscall; the
// portable path reads one datagram per ReadMsgUDPAddrPort call (which,
// unlike ReadFromUDP, does not allocate a *net.UDPAddr per packet).
func (l *Listener) readLoop() {
	defer l.wg.Done()
	if br := newBatchReader(l.udp); br != nil {
		for {
			n, err := br.read()
			for i := 0; i < n; i++ {
				l.dispatch(br.payload(i), br.addr(i))
			}
			if err == nil {
				continue
			}
			if errors.Is(err, errBatchUnsupported) {
				break // fall through to the portable loop
			}
			return // socket closed
		}
	}
	buf := make([]byte, maxDatagram)
	for {
		n, _, _, addr, err := l.udp.ReadMsgUDPAddrPort(buf, nil)
		if err != nil {
			return // socket closed
		}
		if n == 0 {
			continue
		}
		l.dispatch(buf[:n], addr)
	}
}

// dispatch routes one datagram. Established-connection traffic takes the
// lock only for the map lookup; handshake decoding and connection
// construction happen outside it so a malformed or slow handshake cannot
// serialize dispatch for everyone else. Accept hand-off never blocks: when
// the backlog is full the handshake is shed and the client's retry ticker
// tries again, instead of the old behaviour of stalling the whole read
// loop (and with it every established connection on the socket).
func (l *Listener) dispatch(b []byte, raddr netip.AddrPort) {
	if len(b) == 0 {
		return
	}
	raddr = unmapAddrPort(raddr) // v4-mapped and plain v4 must hit the same key
	l.mu.Lock()
	conn, ok := l.conns[raddr]
	closed := l.closed
	l.mu.Unlock()
	if ok {
		conn.handlePacket(b)
		return
	}
	if b[0] != ctlHandshake || closed {
		return // stray packet for an unknown peer
	}
	clientSeq, window, err := decodeHandshake(b)
	if err != nil {
		return
	}
	if len(l.acceptCh) == cap(l.acceptCh) {
		return // backlog full: shed before constructing anything
	}
	conn = newConn(l.udp, raddr, false, l.cfg)
	conn.sndNextSeq = randomInitialSeq()
	conn.sndFirstUnack = conn.sndNextSeq
	conn.lastAcked = clientSeq
	conn.onClose = func() { l.forget(raddr) }
	conn.completeAccept(clientSeq, window)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	if existing, ok := l.conns[raddr]; ok {
		// Lost a race with a handshake retransmit: keep the first conn.
		l.mu.Unlock()
		existing.handlePacket(b)
		return
	}
	l.conns[raddr] = conn
	l.mu.Unlock()

	conn.send(encodeHandshake(ctlHsAck, conn.sndNextSeq, uint32(conn.cfg.RcvBuffer)))
	conn.start()
	select {
	case l.acceptCh <- conn:
	default:
		// Backlog filled between the shed check and here: drop the conn
		// rather than block the read loop.
		conn.Close()
	}
}

func (l *Listener) forget(key netip.AddrPort) {
	l.mu.Lock()
	delete(l.conns, key)
	l.mu.Unlock()
}

// Dial connects to a UDT listener at addr ("host:port").
func Dial(addr string, cfg Config) (*Conn, error) {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udt: resolve %q: %w", addr, err)
	}
	sock, err := net.DialUDP("udp", nil, uaddr)
	if err != nil {
		return nil, fmt.Errorf("udt: dial %q: %w", addr, err)
	}
	tuneSocket(sock)
	conn := newConn(sock, unmapAddrPort(uaddr.AddrPort()), true, cfg)
	conn.sndNextSeq = randomInitialSeq()
	conn.sndFirstUnack = conn.sndNextSeq

	// The client-side read loop lives until the socket closes (on
	// conn.Close, or below on handshake failure). A connected UDP socket
	// surfaces ICMP port-unreachable as ECONNREFUSED when our handshake
	// raced the peer's bind; that is transient — the handshake retries.
	// Only a closed socket ends the loop. It joins conn.wg so Close, which
	// closes the socket before waiting, reaps it — without this the loop
	// outlived every Dial'd connection until process exit.
	conn.wg.Add(1)
	go func() {
		defer conn.wg.Done()
		if br := newBatchReader(sock); br != nil {
			for {
				n, err := br.read()
				for i := 0; i < n; i++ {
					conn.handlePacket(br.payload(i))
				}
				if err == nil {
					continue
				}
				if errors.Is(err, errBatchUnsupported) {
					break // fall through to the portable loop
				}
				return
			}
		}
		buf := make([]byte, maxDatagram)
		for {
			n, _, _, _, err := sock.ReadMsgUDPAddrPort(buf, nil)
			if n > 0 {
				conn.handlePacket(buf[:n])
			}
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					return
				}
				continue
			}
		}
	}()

	// Handshake with retry: resend on a ticker until the peer's response
	// closes establishedCh or the overall timer fires. Both waits park on
	// channels — no clock polling.
	hs := encodeHandshake(ctlHandshake, conn.sndNextSeq, uint32(conn.cfg.RcvBuffer))
	timeout := time.NewTimer(conn.cfg.HandshakeTimeout)
	defer timeout.Stop()
	retry := time.NewTicker(100 * time.Millisecond)
	defer retry.Stop()
	established := false
	conn.send(hs)
	for !established {
		select {
		case <-conn.establishedCh:
			established = true
		case <-retry.C:
			conn.send(hs)
		case <-timeout.C:
			sock.Close()
			return nil, errHandshakeTimeout
		}
	}
	conn.start()
	return conn, nil
}

// seqRng feeds randomInitialSeq from a locally seeded source instead of
// the global math/rand state, so kmlint's simdet scope can later extend
// over this package without flagging shared-RNG nondeterminism.
var seqRng = struct {
	mu sync.Mutex
	r  *rand.Rand
}{r: rand.New(rand.NewSource(time.Now().UnixNano()))}

// randomInitialSeq avoids colliding sequence spaces between connections.
func randomInitialSeq() uint32 {
	seqRng.mu.Lock()
	defer seqRng.mu.Unlock()
	return seqRng.r.Uint32() >> 1 // keep distance from wraparound in tests
}

// unmapAddrPort strips any v4-in-v6 mapping so the same peer always
// produces the same mux key regardless of which read path saw it.
func unmapAddrPort(ap netip.AddrPort) netip.AddrPort {
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}

// ErrListenerClosed reports Accept on a closed listener.
var ErrListenerClosed = errors.New("udt: listener closed")

// tuneSocket enlarges kernel buffers: UDT bursts many datagrams per SYN
// interval and small default buffers drop tails of bursts. Mirrors the
// paper's tuning of UDT buffer sizes for high-BDP links; best-effort
// (the kernel may clamp to its rmem/wmem limits).
func tuneSocket(sock *net.UDPConn) {
	const want = 8 << 20
	_ = sock.SetReadBuffer(want)
	_ = sock.SetWriteBuffer(want)
}
