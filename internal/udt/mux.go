package udt

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// maxDatagram bounds received datagram size; larger packets are truncated
// by the kernel anyway for our MTU-sized sends.
const maxDatagram = 2048

// Listener accepts UDT connections on a UDP port, demultiplexing datagrams
// to per-peer connections. It implements net.Listener.
type Listener struct {
	udp *net.UDPConn
	cfg Config

	mu       sync.Mutex
	conns    map[string]*Conn
	acceptCh chan *Conn
	closed   bool
	done     chan struct{}
	wg       sync.WaitGroup
}

var _ net.Listener = (*Listener)(nil)

// Listen starts a UDT listener on the given UDP address ("host:port").
func Listen(addr string, cfg Config) (*Listener, error) {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udt: resolve %q: %w", addr, err)
	}
	sock, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, fmt.Errorf("udt: listen %q: %w", addr, err)
	}
	tuneSocket(sock)
	l := &Listener{
		udp:      sock,
		cfg:      cfg.withDefaults(),
		conns:    make(map[string]*Conn),
		acceptCh: make(chan *Conn, 16),
		done:     make(chan struct{}),
	}
	l.wg.Add(1)
	go l.readLoop()
	return l, nil
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.acceptCh:
		return c, nil
	case <-l.done:
		return nil, ErrListenerClosed
	}
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.udp.LocalAddr() }

// Close implements net.Listener: it stops accepting and closes every
// connection.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	conns := make([]*Conn, 0, len(l.conns))
	for _, c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()

	close(l.done)
	l.udp.Close()
	for _, c := range conns {
		c.Close()
	}
	l.wg.Wait()
	return nil
}

func (l *Listener) readLoop() {
	defer l.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, raddr, err := l.udp.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if n == 0 {
			continue
		}
		l.dispatch(buf[:n], raddr)
	}
}

func (l *Listener) dispatch(b []byte, raddr *net.UDPAddr) {
	key := raddr.String()
	l.mu.Lock()
	conn, ok := l.conns[key]
	if !ok {
		if b[0] != ctlHandshake || l.closed {
			l.mu.Unlock()
			return // stray packet for an unknown peer
		}
		clientSeq, window, err := decodeHandshake(b)
		if err != nil {
			l.mu.Unlock()
			return
		}
		conn = newConn(l.udp, raddr, false, l.cfg)
		conn.sndNextSeq = randomInitialSeq()
		conn.sndFirstUnack = conn.sndNextSeq
		conn.lastAcked = clientSeq
		conn.onClose = func() { l.forget(key) }
		conn.completeAccept(clientSeq, window)
		l.conns[key] = conn
		l.mu.Unlock()

		conn.send(encodeHandshake(ctlHsAck, conn.sndNextSeq, uint32(conn.cfg.RcvBuffer)))
		conn.start()
		select {
		case l.acceptCh <- conn:
		case <-l.done:
			conn.Close()
		}
		return
	}
	l.mu.Unlock()
	conn.handlePacket(b)
}

func (l *Listener) forget(key string) {
	l.mu.Lock()
	delete(l.conns, key)
	l.mu.Unlock()
}

// Dial connects to a UDT listener at addr ("host:port").
func Dial(addr string, cfg Config) (*Conn, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udt: resolve %q: %w", addr, err)
	}
	sock, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("udt: dial %q: %w", addr, err)
	}
	tuneSocket(sock)
	conn := newConn(sock, raddr, true, cfg)
	conn.sndNextSeq = randomInitialSeq()
	conn.sndFirstUnack = conn.sndNextSeq

	// The client-side read loop lives until the socket closes (on
	// conn.Close, or below on handshake failure).
	go func() {
		buf := make([]byte, maxDatagram)
		for {
			n, err := sock.Read(buf)
			if n > 0 {
				conn.handlePacket(buf[:n])
			}
			if err != nil {
				// A connected UDP socket surfaces ICMP port-unreachable
				// as ECONNREFUSED when our handshake raced the peer's
				// bind; that is transient — the handshake retries. Only
				// a closed socket ends the loop.
				if errors.Is(err, net.ErrClosed) {
					return
				}
				continue
			}
		}
	}()

	// Handshake with retry: resend on a ticker until the peer's response
	// closes establishedCh or the overall timer fires. Both waits park on
	// channels — no clock polling.
	hs := encodeHandshake(ctlHandshake, conn.sndNextSeq, uint32(conn.cfg.RcvBuffer))
	timeout := time.NewTimer(conn.cfg.HandshakeTimeout)
	defer timeout.Stop()
	retry := time.NewTicker(100 * time.Millisecond)
	defer retry.Stop()
	established := false
	conn.send(hs)
	for !established {
		select {
		case <-conn.establishedCh:
			established = true
		case <-retry.C:
			conn.send(hs)
		case <-timeout.C:
			sock.Close()
			return nil, errHandshakeTimeout
		}
	}
	conn.start()
	return conn, nil
}

// randomInitialSeq avoids colliding sequence spaces between connections.
func randomInitialSeq() uint32 {
	return rand.Uint32() >> 1 // keep distance from wraparound in tests
}

// ErrListenerClosed reports Accept on a closed listener.
var ErrListenerClosed = errors.New("udt: listener closed")

// tuneSocket enlarges kernel buffers: UDT bursts many datagrams per SYN
// interval and small default buffers drop tails of bursts. Mirrors the
// paper's tuning of UDT buffer sizes for high-BDP links; best-effort
// (the kernel may clamp to its rmem/wmem limits).
func tuneSocket(sock *net.UDPConn) {
	const want = 8 << 20
	_ = sock.SetReadBuffer(want)
	_ = sock.SetWriteBuffer(want)
}
