package udt

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
)

func TestZeroLengthWrite(t *testing.T) {
	client, _, cleanup := pair(t, Config{})
	defer cleanup()
	n, err := client.Write(nil)
	if n != 0 || err != nil {
		t.Fatalf("Write(nil) = %d, %v", n, err)
	}
}

func TestDoubleCloseAndReadAfterClose(t *testing.T) {
	client, server, cleanup := pair(t, Config{})
	defer cleanup()
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal("second Close errored")
	}
	buf := make([]byte, 8)
	if _, err := client.Read(buf); err != ErrClosed {
		t.Fatalf("Read after Close = %v, want ErrClosed", err)
	}
	if _, err := client.Write([]byte("x")); err != ErrClosed {
		t.Fatalf("Write after Close = %v, want ErrClosed", err)
	}
	_ = server
}

func TestWriteDeadlineOnFullQueue(t *testing.T) {
	// A tiny send queue plus a tiny rate fills quickly; writes must then
	// time out rather than hang.
	client, _, cleanup := pair(t, Config{
		SndQueue:    4 << 10,
		InitialRate: minRate,
		MaxRate:     minRate,
	})
	defer cleanup()
	client.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
	big := make([]byte, 1<<20)
	_, err := client.Write(big)
	if err != ErrTimeout {
		t.Fatalf("Write on a full queue = %v, want ErrTimeout", err)
	}
}

func TestBidirectionalSimultaneousTransfer(t *testing.T) {
	client, server, cleanup := pair(t, Config{})
	defer cleanup()

	const size = 1 << 20
	up := make([]byte, size)
	down := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(up)
	rand.New(rand.NewSource(2)).Read(down)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); client.Write(up) }()
	go func() { defer wg.Done(); server.Write(down) }()

	gotUp := make([]byte, size)
	gotDown := make([]byte, size)
	var rg sync.WaitGroup
	rg.Add(2)
	var errUp, errDown error
	go func() {
		defer rg.Done()
		server.SetReadDeadline(time.Now().Add(60 * time.Second))
		_, errUp = io.ReadFull(server, gotUp)
	}()
	go func() {
		defer rg.Done()
		client.SetReadDeadline(time.Now().Add(60 * time.Second))
		_, errDown = io.ReadFull(client, gotDown)
	}()
	wg.Wait()
	rg.Wait()
	if errUp != nil || errDown != nil {
		t.Fatalf("reads failed: %v / %v", errUp, errDown)
	}
	if !bytes.Equal(gotUp, up) || !bytes.Equal(gotDown, down) {
		t.Fatal("bidirectional streams corrupted each other")
	}
}

func TestHeavyBidirectionalLoss(t *testing.T) {
	// 10% loss in both directions (data AND control packets are all
	// subject to the injector on the data path; ACK/NAK losses are
	// covered by the EXP timer): integrity must survive.
	rng := rand.New(rand.NewSource(4))
	var mu sync.Mutex
	cfg := Config{
		LossInjector: func() bool {
			mu.Lock()
			defer mu.Unlock()
			return rng.Float64() < 0.10
		},
	}
	transferAndVerify(t, cfg, 512<<10)
}

func TestListenerCloseFailsActiveConns(t *testing.T) {
	l, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan *Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c.(*Conn)
		}
	}()
	client, err := Dial(l.Addr().String(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted

	l.Close()
	// The server-side conn was closed by the listener; reads on it fail.
	buf := make([]byte, 8)
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := server.Read(buf); err == nil {
		t.Fatal("read on a closed listener's conn succeeded")
	}
}

func TestStatsAccessors(t *testing.T) {
	client, _, cleanup := pair(t, Config{})
	defer cleanup()
	if r, n := client.Stats(); r != 0 || n != 0 {
		t.Fatalf("fresh conn stats = %d, %d", r, n)
	}
	if client.Rate() <= 0 {
		t.Fatal("rate not positive")
	}
}

// TestPeerDeathFailsIOAndReleasesBuffers blackholes every data packet
// mid-stream: after PeerDeathEXPs consecutive EXP expirations with zero
// ACK progress the peer is declared dead — a blocked Read fails with
// ErrPeerDead without any deadline, Write fails likewise, and every
// pooled station buffer (send queue and in-flight window) is back in
// the pool immediately, not at some eventual Close.
func TestPeerDeathFailsIOAndReleasesBuffers(t *testing.T) {
	bufpool.ResetStats()
	bufpool.SetDebug(true)
	defer bufpool.SetDebug(false)

	var blackhole atomic.Bool
	cfg := Config{
		PeerDeathEXPs: 2, // two silent retransmission rounds suffice here
		LossInjector:  func() bool { return blackhole.Load() },
	}
	client, server, cleanup := pair(t, cfg)
	defer cleanup()

	// Healthy exchange first: ACK progress must keep the death counter
	// at zero.
	if _, err := client.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	server.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}

	// The peer "vanishes": every outgoing data packet — fresh or
	// retransmitted — is dropped before the socket, so the in-flight
	// window can never be acknowledged again.
	blackhole.Store(true)
	if _, err := client.Write(make([]byte, 256<<10)); err != nil {
		t.Fatalf("write into the send queue: %v", err)
	}

	// This Read blocks with no deadline; only the EXP timer's death
	// verdict can release it.
	if _, err := client.Read(buf); err != ErrPeerDead {
		t.Fatalf("Read during peer death = %v, want ErrPeerDead", err)
	}
	if _, err := client.Write([]byte("x")); err != ErrPeerDead {
		t.Fatalf("Write after peer death = %v, want ErrPeerDead", err)
	}

	// Death released every pooled buffer the pair owned.
	if n := bufpool.Outstanding(); n != 0 {
		t.Fatalf("%d pooled buffer(s) outstanding after peer death", n)
	}
}

func TestFlowControlStallsWhenReceiverStopsReading(t *testing.T) {
	// A receiver that never reads advertises a shrinking window; the
	// sender must stall rather than overrun the receive buffer. We use a
	// tiny receive buffer so the limit is reached quickly.
	client, server, cleanup := pair(t, Config{
		RcvBuffer:   64, // packets
		InitialRate: 50 << 20,
		MaxRate:     50 << 20,
	})
	defer cleanup()

	// Push far more than the receive window without reading.
	go client.Write(make([]byte, 4<<20))
	time.Sleep(500 * time.Millisecond)

	client.mu.Lock()
	inflight := int(int32(client.sndNextSeq - client.sndFirstUnack))
	client.mu.Unlock()
	// Allow slack for packets in flight when the window snapshot was
	// taken, but the sender must not run away unbounded.
	if inflight > 3*64 {
		t.Fatalf("sender has %d packets in flight against a 64-packet window", inflight)
	}

	// Draining the receiver must release the stall and deliver all data.
	buf := make([]byte, 64<<10)
	total := 0
	server.SetReadDeadline(time.Now().Add(30 * time.Second))
	for total < 4<<20 {
		n, err := server.Read(buf)
		if err != nil {
			t.Fatalf("read after drain: %v (got %d bytes)", err, total)
		}
		total += n
	}
}
