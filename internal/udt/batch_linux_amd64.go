//go:build linux && amd64

package udt

// sendmmsg postdates the stdlib syscall table freeze, so both numbers are
// spelled out here (from arch/x86/entry/syscalls/syscall_64.tbl).
const (
	sysSendmmsg uintptr = 307
	sysRecvmmsg uintptr = 299
)
