package udt

import (
	"bytes"
	"crypto/sha256"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// --- packet codecs -------------------------------------------------------------

func TestDataPacketRoundTrip(t *testing.T) {
	buf := make([]byte, 0, dataHeaderLen+mssPayload)
	payload := []byte("hello udt")
	pkt := encodeData(buf, 42, payload)
	seq, got, err := decodeData(pkt)
	if err != nil || seq != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("decodeData = %d, %q, %v", seq, got, err)
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	pkt := encodeHandshake(ctlHandshake, 7, 8192)
	seq, win, err := decodeHandshake(pkt)
	if err != nil || seq != 7 || win != 8192 {
		t.Fatalf("decodeHandshake = %d, %d, %v", seq, win, err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	pkt := encodeAck(99, 512)
	seq, win, err := decodeAck(pkt)
	if err != nil || seq != 99 || win != 512 {
		t.Fatalf("decodeAck = %d, %d, %v", seq, win, err)
	}
}

func TestNakRoundTrip(t *testing.T) {
	in := []nakRange{{from: 5, to: 9}, {from: 20, to: 20}}
	got, err := decodeNak(encodeNak(in))
	if err != nil || len(got) != 2 || got[0] != in[0] || got[1] != in[1] {
		t.Fatalf("decodeNak = %v, %v", got, err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	if _, _, err := decodeData([]byte{0}); err == nil {
		t.Error("short data packet accepted")
	}
	if _, _, err := decodeHandshake([]byte{ctlHandshake, 1}); err == nil {
		t.Error("short handshake accepted")
	}
	if _, _, err := decodeAck([]byte{ctlAck}); err == nil {
		t.Error("short ack accepted")
	}
	if _, err := decodeNak([]byte{ctlNak, 0, 2, 1}); err == nil {
		t.Error("truncated nak accepted")
	}
	inverted := encodeNak([]nakRange{{from: 9, to: 5}})
	if _, err := decodeNak(inverted); err == nil {
		t.Error("inverted nak range accepted")
	}
}

func TestSeqCompare(t *testing.T) {
	tests := []struct {
		a, b      uint32
		less, leq bool
	}{
		{1, 2, true, true},
		{2, 1, false, false},
		{5, 5, false, true},
		{^uint32(0), 0, true, true}, // wraparound
	}
	for _, tt := range tests {
		if seqLess(tt.a, tt.b) != tt.less {
			t.Errorf("seqLess(%d,%d) != %v", tt.a, tt.b, tt.less)
		}
		if seqLeq(tt.a, tt.b) != tt.leq {
			t.Errorf("seqLeq(%d,%d) != %v", tt.a, tt.b, tt.leq)
		}
	}
}

// --- end-to-end ----------------------------------------------------------------

// pair establishes a client/server connection over loopback.
func pair(t *testing.T, cfg Config) (client *Conn, server net.Conn, cleanup func()) {
	t.Helper()
	l, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	errs := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			errs <- err
			return
		}
		accepted <- c
	}()
	client, err = Dial(l.Addr().String(), cfg)
	if err != nil {
		l.Close()
		t.Fatal(err)
	}
	select {
	case server = <-accepted:
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
	}
	return client, server, func() {
		client.Close()
		server.Close()
		l.Close()
	}
}

func TestEchoSmallMessage(t *testing.T) {
	client, server, cleanup := pair(t, Config{})
	defer cleanup()

	msg := []byte("ping over udt")
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	server.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("server received %q", buf)
	}

	// And the reverse direction.
	if _, err := server.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	reply := make([]byte, 4)
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(client, reply); err != nil {
		t.Fatal(err)
	}
	if string(reply) != "pong" {
		t.Fatalf("client received %q", reply)
	}
}

// transferAndVerify streams size random bytes client→server and checks
// integrity by hash.
func transferAndVerify(t *testing.T, cfg Config, size int) {
	t.Helper()
	client, server, cleanup := pair(t, cfg)
	defer cleanup()

	data := make([]byte, size)
	rand.New(rand.NewSource(7)).Read(data)
	wantSum := sha256.Sum256(data)

	var wg sync.WaitGroup
	wg.Add(1)
	var writeErr error
	go func() {
		defer wg.Done()
		_, writeErr = client.Write(data)
	}()

	h := sha256.New()
	server.SetReadDeadline(time.Now().Add(60 * time.Second))
	got, err := io.CopyN(h, server, int64(size))
	if err != nil {
		t.Fatalf("read %d of %d bytes: %v", got, size, err)
	}
	wg.Wait()
	if writeErr != nil {
		t.Fatalf("write: %v", writeErr)
	}
	var gotSum [32]byte
	copy(gotSum[:], h.Sum(nil))
	if gotSum != wantSum {
		t.Fatal("transferred data corrupted")
	}
}

func TestBulkTransferClean(t *testing.T) {
	transferAndVerify(t, Config{MaxRate: 200 << 20}, 4<<20)
}

func TestBulkTransferWithLoss(t *testing.T) {
	// 2% injected loss exercises NAK + retransmission heavily while the
	// stream must still arrive intact and in order.
	rng := rand.New(rand.NewSource(99))
	var mu sync.Mutex
	cfg := Config{
		LossInjector: func() bool {
			mu.Lock()
			defer mu.Unlock()
			return rng.Float64() < 0.02
		},
	}
	transferAndVerify(t, cfg, 2<<20)
}

func TestLossTriggersNaksAndRetransmits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var mu sync.Mutex
	cfg := Config{
		LossInjector: func() bool {
			mu.Lock()
			defer mu.Unlock()
			return rng.Float64() < 0.05
		},
	}
	client, server, cleanup := pair(t, cfg)
	defer cleanup()

	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(5)).Read(data)
	go client.Write(data)
	buf := make([]byte, len(data))
	server.SetReadDeadline(time.Now().Add(60 * time.Second))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	retransmits, _ := client.Stats()
	if retransmits == 0 {
		t.Fatal("5% loss produced zero retransmissions")
	}
	_, naks := server.(*Conn).Stats()
	if naks == 0 {
		t.Fatal("5% loss produced zero NAKs at the receiver")
	}
}

func TestRateIncreasesUnderCleanTransfer(t *testing.T) {
	client, server, cleanup := pair(t, Config{InitialRate: 1 << 20})
	defer cleanup()
	before := client.Rate()
	data := make([]byte, 2<<20)
	go client.Write(data)
	buf := make([]byte, len(data))
	server.SetReadDeadline(time.Now().Add(30 * time.Second))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if after := client.Rate(); after <= before {
		t.Fatalf("DAIMD rate did not grow: %v → %v", before, after)
	}
}

func TestMaxRateRespected(t *testing.T) {
	client, server, cleanup := pair(t, Config{InitialRate: 1 << 20, MaxRate: 2 << 20})
	defer cleanup()
	data := make([]byte, 1<<20)
	go client.Write(data)
	buf := make([]byte, len(data))
	server.SetReadDeadline(time.Now().Add(30 * time.Second))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if r := client.Rate(); r > 2<<20 {
		t.Fatalf("rate %v exceeds MaxRate", r)
	}
}

func TestCloseDeliversEOFAfterDrain(t *testing.T) {
	client, server, cleanup := pair(t, Config{})
	defer cleanup()
	msg := []byte("last words")
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	client.Close()

	server.SetReadDeadline(time.Now().Add(10 * time.Second))
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q before EOF, want %q", got, msg)
	}
}

func TestWriteAfterPeerClose(t *testing.T) {
	client, server, cleanup := pair(t, Config{})
	defer cleanup()
	client.Close()
	time.Sleep(100 * time.Millisecond) // let the shutdown packet land
	if _, err := server.Write(bytes.Repeat([]byte("x"), 1<<20)); err == nil {
		// A small write may still be buffered; a large one must
		// eventually fail once the queue fills with no drain. Either an
		// immediate error or ErrClosed here is acceptable; total silence
		// is not, but Write into a dead peer with space left succeeds by
		// design (fire and forget below the middleware).
		t.Log("write into closed peer buffered silently (acceptable)")
	}
}

func TestReadDeadline(t *testing.T) {
	client, _, cleanup := pair(t, Config{})
	defer cleanup()
	client.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 10)
	_, err := client.Read(buf)
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Fatalf("Read error = %v, want timeout net.Error", err)
	}
}

func TestDialTimeout(t *testing.T) {
	// Dial a port nobody listens on: handshake must time out.
	start := time.Now()
	_, err := Dial("127.0.0.1:1", Config{HandshakeTimeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("Dial succeeded against a dead port")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("handshake timeout not honoured")
	}
}

func TestListenerRejectsBadAddress(t *testing.T) {
	if _, err := Listen("999.1.1.1:0", Config{}); err == nil {
		t.Fatal("Listen accepted an invalid address")
	}
	if _, err := Dial("999.1.1.1:0", Config{}); err == nil {
		t.Fatal("Dial accepted an invalid address")
	}
}

func TestMultipleConnectionsOneListener(t *testing.T) {
	l, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const n = 4
	serverGot := make(chan string, n)
	go func() {
		for i := 0; i < n; i++ {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 64)
				c.SetReadDeadline(time.Now().Add(10 * time.Second))
				k, err := c.Read(buf)
				if err == nil {
					serverGot <- string(buf[:k])
				}
			}(c)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(l.Addr().String(), Config{})
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			defer c.Close()
			c.Write([]byte{byte('a' + i)})
			time.Sleep(200 * time.Millisecond) // let it flush before close
		}(i)
	}
	wg.Wait()

	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		select {
		case s := <-serverGot:
			seen[s] = true
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d messages arrived", len(seen), n)
		}
	}
	if len(seen) != n {
		t.Fatalf("distinct messages = %d, want %d", len(seen), n)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	l, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	l.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Accept returned nil after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Accept did not unblock on Close")
	}
}

func TestConnAddrs(t *testing.T) {
	client, server, cleanup := pair(t, Config{})
	defer cleanup()
	if client.LocalAddr() == nil || client.RemoteAddr() == nil {
		t.Fatal("client addrs nil")
	}
	if server.LocalAddr() == nil || server.RemoteAddr() == nil {
		t.Fatal("server addrs nil")
	}
	if client.RemoteAddr().String() != server.LocalAddr().String() {
		// The server's local addr is the listening socket; the client's
		// remote addr points at it.
		t.Fatalf("addr mismatch: %v vs %v", client.RemoteAddr(), server.LocalAddr())
	}
}

func TestPropertyStreamIntegrity(t *testing.T) {
	if testing.Short() {
		t.Skip("network property test")
	}
	// Arbitrary write sizes with injected loss always yield the exact
	// byte stream.
	cfgRng := rand.New(rand.NewSource(1))
	var mu sync.Mutex
	cfg := Config{LossInjector: func() bool {
		mu.Lock()
		defer mu.Unlock()
		return cfgRng.Float64() < 0.01
	}}
	client, server, cleanup := pair(t, cfg)
	defer cleanup()

	f := func(chunks [][]byte) bool {
		if len(chunks) > 16 {
			chunks = chunks[:16]
		}
		var want []byte
		for _, ch := range chunks {
			if len(ch) > 8192 {
				ch = ch[:8192]
			}
			want = append(want, ch...)
			if _, err := client.Write(ch); err != nil {
				return false
			}
		}
		if len(want) == 0 {
			return true
		}
		got := make([]byte, len(want))
		server.SetReadDeadline(time.Now().Add(30 * time.Second))
		if _, err := io.ReadFull(server, got); err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
