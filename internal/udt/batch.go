package udt

import (
	"errors"
	"os"
	"sync/atomic"
)

// Syscall batching (sendmmsg/recvmmsg) is a Linux/64-bit fast path; every
// use site has a portable sequential fallback so the package builds and
// behaves identically everywhere. Batching can be force-disabled — even on
// Linux — by setting KM_UDT_NOBATCH in the environment, which routes all
// traffic through the fallback path (used in CI to test it on Linux too).
var batchingDisabled atomic.Bool

func init() {
	if os.Getenv("KM_UDT_NOBATCH") != "" {
		batchingDisabled.Store(true)
	}
}

// errBatchUnsupported reports that batched reads are unavailable on this
// platform or socket; callers fall back to single-datagram reads.
var errBatchUnsupported = errors.New("udt: batched socket I/O unsupported")
