package udt

import (
	"io"
	"net"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
)

// newLoopConn builds a Conn around a real (but idle) UDP socket for
// driving the packet handlers directly — no handshake, no background
// goroutines. Control packets it emits land in the socket's own receive
// buffer and are never read.
func newLoopConn(t *testing.T, cfg Config) *Conn {
	t.Helper()
	sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sock.Close() })
	c := newConn(sock, sock.LocalAddr().(*net.UDPAddr).AddrPort(), false, cfg)
	t.Cleanup(func() {
		c.mu.Lock()
		c.closed = true
		c.releaseBuffersLocked()
		c.mu.Unlock()
	})
	return c
}

// TestReceiveWindowAcrossWraparound replays an out-of-order arrival
// pattern whose sequence numbers cross ^uint32(0): the ring index math and
// the gap NAK arithmetic must behave exactly as they do mid-space.
func TestReceiveWindowAcrossWraparound(t *testing.T) {
	c := newLoopConn(t, Config{})
	start := ^uint32(0) - 1 // two packets before the wrap
	c.rcvNextSeq, c.rcvLargest = start, start

	var scratch []byte
	// Arrive out of order: start+2 (which is 0 after the wrap) first.
	c.handleData(encodeData(scratch, start+2, []byte("cc")))
	c.mu.Lock()
	if c.rcvOOO.len() != 1 || c.segCount() != 0 {
		t.Fatalf("after gap arrival: ooo=%d segs=%d", c.rcvOOO.len(), c.segCount())
	}
	gaps := c.missingRanges()
	c.mu.Unlock()
	if len(gaps) != 1 || gaps[0] != (nakRange{from: start, to: start + 1}) {
		t.Fatalf("missingRanges = %v, want [{%d %d}]", gaps, start, start+1)
	}

	c.handleData(encodeData(scratch, start, []byte("aa")))
	c.handleData(encodeData(scratch, start+1, []byte("bb")))
	c.mu.Lock()
	if c.rcvNextSeq != start+3 || c.rcvOOO.len() != 0 || c.segCount() != 3 {
		t.Fatalf("after fill: next=%d ooo=%d segs=%d", c.rcvNextSeq, c.rcvOOO.len(), c.segCount())
	}
	c.mu.Unlock()
	if start+3 != 1 {
		t.Fatalf("test setup: start+3 = %d, expected to wrap to 1", start+3)
	}

	got := make([]byte, 6)
	c.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "aabbcc" {
		t.Fatalf("read %q, want \"aabbcc\"", got)
	}
}

// TestSendWindowAcrossWraparound drives sendBurst, a NAK and a cumulative
// ACK through sequence numbers crossing ^uint32(0).
func TestSendWindowAcrossWraparound(t *testing.T) {
	c := newLoopConn(t, Config{})
	start := ^uint32(0) - 1
	c.sndNextSeq, c.sndFirstUnack = start, start

	c.mu.Lock()
	for i := 0; i < 4; i++ {
		b := bufpool.Get(3)
		copy(b, []byte{byte(i), byte(i), byte(i)})
		c.sndQueue = append(c.sndQueue, b)
		c.sndQueueBytes += len(b)
	}
	c.mu.Unlock()

	var batch sendBatch
	if n := c.sendBurst(&batch, 1<<20); n != 4*(dataHeaderLen+3) {
		t.Fatalf("sendBurst consumed %d bytes, want %d", n, 4*(dataHeaderLen+3))
	}
	c.mu.Lock()
	if c.sndNextSeq != start+4 || c.sndUnacked.len() != 4 {
		t.Fatalf("after burst: next=%d unacked=%d", c.sndNextSeq, c.sndUnacked.len())
	}
	c.mu.Unlock()

	// NAK a range spanning the wrap; it must land on the loss list intact.
	c.handleNak(encodeNak([]nakRange{{from: start, to: start + 2}}))
	c.mu.Lock()
	if len(c.loss.r) != 1 || c.loss.r[0] != (nakRange{from: start, to: start + 2}) {
		t.Fatalf("loss after NAK: %v", c.loss.r)
	}
	c.mu.Unlock()

	// Cumulative ACK past the wrap (start+3 == 1) releases three packets
	// and prunes the loss list.
	c.handleAck(encodeAck(start+3, 100))
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sndFirstUnack != start+3 || c.sndUnacked.len() != 1 || !c.loss.empty() {
		t.Fatalf("after ACK: firstUnack=%d unacked=%d loss=%v",
			c.sndFirstUnack, c.sndUnacked.len(), c.loss.r)
	}
	if c.peerWindow != 100 {
		t.Fatalf("peerWindow = %d, want 100", c.peerWindow)
	}
}

// TestHostileAckAndNakClamped feeds control packets for sequence numbers
// that were never sent: they must neither release foreign ring slots nor
// schedule bogus retransmissions.
func TestHostileAckAndNakClamped(t *testing.T) {
	c := newLoopConn(t, Config{})
	c.sndNextSeq, c.sndFirstUnack = 100, 100
	c.mu.Lock()
	b := bufpool.Get(3)
	c.sndQueue = append(c.sndQueue, b)
	c.sndQueueBytes += 3
	c.mu.Unlock()
	var batch sendBatch
	c.sendBurst(&batch, 1<<20) // seq 100 now in flight

	// ACK far beyond anything sent: clamps to sndNextSeq (101).
	c.handleAck(encodeAck(1<<30, 10))
	c.mu.Lock()
	if c.sndFirstUnack != 101 || c.sndUnacked.len() != 0 {
		t.Fatalf("hostile ACK: firstUnack=%d unacked=%d", c.sndFirstUnack, c.sndUnacked.len())
	}
	c.mu.Unlock()

	// NAK entirely outside the (now empty) flight window: dropped.
	c.handleNak(encodeNak([]nakRange{{from: 500, to: 600}}))
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.loss.empty() {
		t.Fatalf("hostile NAK scheduled: %v", c.loss.r)
	}
}

// TestMissingRangesMergesGaps checks the gap scan over a sparse
// out-of-order window: adjacent missing sequences coalesce into one NAK
// range, present ones split them.
func TestMissingRangesMergesGaps(t *testing.T) {
	c := newLoopConn(t, Config{})
	base := uint32(100)
	c.rcvNextSeq, c.rcvLargest = base, base
	payload := []byte("x")
	var scratch []byte
	for _, seq := range []uint32{102, 103, 106} {
		c.handleData(encodeData(scratch, seq, payload))
	}
	c.mu.Lock()
	got := c.missingRanges()
	c.mu.Unlock()
	want := []nakRange{{from: 100, to: 101}, {from: 104, to: 105}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("missingRanges = %v, want %v", got, want)
	}
}

// TestFullAcceptBacklogDoesNotStallDispatch is the regression test for the
// listener head-of-line block: with the accept backlog full, a new
// handshake is shed instead of wedging the read loop, so established
// connections keep flowing.
func TestFullAcceptBacklogDoesNotStallDispatch(t *testing.T) {
	l, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	addr := l.Addr().String()

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := Dial(addr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var server net.Conn
	select {
	case server = <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
	}
	defer server.Close()

	// Fill the accept backlog with connections nobody accepts.
	extras := make([]*Conn, 0, cap(l.acceptCh))
	defer func() {
		for _, c := range extras {
			c.Close()
		}
	}()
	for i := 0; i < cap(l.acceptCh); i++ {
		c, err := Dial(addr, Config{})
		if err != nil {
			t.Fatalf("backlog dial %d: %v", i, err)
		}
		extras = append(extras, c)
	}

	// One more handshake arrives with the backlog full; it must be shed
	// (this dial times out) without blocking the listener's read loop.
	overflow := make(chan struct{})
	go func() {
		defer close(overflow)
		if c, err := Dial(addr, Config{HandshakeTimeout: 300 * time.Millisecond}); err == nil {
			c.Close()
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the shed handshake hit dispatch

	// The established connection must still move data promptly. Before
	// the fix, dispatch was parked on acceptCh and this read timed out.
	msg := []byte("still alive")
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	server.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("established conn stalled with full accept backlog: %v", err)
	}
	if string(buf) != string(msg) {
		t.Fatalf("got %q", buf)
	}
	<-overflow
}

// TestBulkTransferBatchingDisabled forces the sequential fallback path
// (what non-Linux platforms always run) and verifies a full transfer.
func TestBulkTransferBatchingDisabled(t *testing.T) {
	prev := batchingDisabled.Load()
	batchingDisabled.Store(true)
	defer batchingDisabled.Store(prev)
	transferAndVerify(t, Config{MaxRate: 100 << 20}, 2<<20)
}

// TestTransferReleasesPooledBuffers runs a transfer under bufpool's leak
// accounting: once both ends are closed, every pooled buffer the UDT path
// touched must have been recycled.
func TestTransferReleasesPooledBuffers(t *testing.T) {
	bufpool.SetDebug(true)
	defer bufpool.SetDebug(false)
	bufpool.ResetStats()
	transferAndVerify(t, Config{MaxRate: 100 << 20}, 1<<20)
	if n := bufpool.Outstanding(); n != 0 {
		t.Fatalf("%d pooled buffers still outstanding after transfer+close", n)
	}
}
