//go:build !linux || (!amd64 && !arm64)

package udt

// Portable stubs: platforms without sendmmsg/recvmmsg batching (or without
// the 64-bit mmsghdr layout batch_linux.go assumes) construct no batchers,
// so every use site takes its sequential path.

import (
	"net"
	"net/netip"
)

type mmsgSender struct{}

func newMmsgSender(*net.UDPConn, netip.AddrPort, bool) *mmsgSender { return nil }

func (*mmsgSender) send([][]byte) bool { return false }

type batchReader struct{}

func newBatchReader(*net.UDPConn) *batchReader { return nil }

func (*batchReader) read() (int, error) { return 0, errBatchUnsupported }

func (*batchReader) payload(int) []byte { return nil }

func (*batchReader) addr(int) netip.AddrPort { return netip.AddrPort{} }
