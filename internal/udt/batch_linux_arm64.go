//go:build linux && arm64

package udt

// sendmmsg postdates the stdlib syscall table freeze, so both numbers are
// spelled out here (from include/uapi/asm-generic/unistd.h).
const (
	sysSendmmsg uintptr = 269
	sysRecvmmsg uintptr = 243
)
