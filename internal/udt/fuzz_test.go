package udt

import (
	"testing"
	"testing/quick"
)

// TestPropertyHandlePacketNeverPanics feeds arbitrary datagrams into a
// live connection's packet handler — hostile or corrupt traffic must be
// dropped, never crash the transport.
func TestPropertyHandlePacketNeverPanics(t *testing.T) {
	client, _, cleanup := pair(t, Config{})
	defer cleanup()
	f := func(b []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("handlePacket panicked on %v: %v", b, r)
				ok = false
			}
		}()
		client.handlePacket(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDecodersNeverPanic covers the packet codecs directly.
func TestPropertyDecodersNeverPanic(t *testing.T) {
	f := func(b []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("decoder panicked on %v: %v", b, r)
				ok = false
			}
		}()
		_, _, _ = decodeData(b)
		_, _, _ = decodeHandshake(b)
		_, _, _ = decodeAck(b)
		_, _ = decodeNak(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
