package udt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Packet types. Data packets start with a zero byte; control packets set
// the high bit and carry the control type in the low bits.
const (
	pktData byte = 0x00

	ctlFlag      byte = 0x80
	ctlHandshake byte = ctlFlag | 0x01
	ctlHsAck     byte = ctlFlag | 0x02
	ctlAck       byte = ctlFlag | 0x03
	ctlNak       byte = ctlFlag | 0x04
	ctlShutdown  byte = ctlFlag | 0x05
	ctlKeepalive byte = ctlFlag | 0x06
)

// mssPayload is the data payload carried per packet: conservative for a
// 1500-byte MTU after IP/UDP/UDT headers.
const mssPayload = 1400

// dataHeaderLen is [type:1][seq:4].
const dataHeaderLen = 5

// errMalformed reports an undecodable packet; such packets are dropped.
var errMalformed = errors.New("udt: malformed packet")

// nakRange is an inclusive range of lost sequence numbers.
type nakRange struct {
	from, to uint32
}

// seqLess compares sequence numbers with wraparound.
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

// seqLeq is seqLess or equal.
func seqLeq(a, b uint32) bool { return int32(a-b) <= 0 }

// encodeData renders a data packet into buf and returns the slice.
func encodeData(buf []byte, seq uint32, payload []byte) []byte {
	buf = buf[:0]
	buf = append(buf, pktData)
	buf = binary.BigEndian.AppendUint32(buf, seq)
	buf = append(buf, payload...)
	return buf
}

// decodeData parses a data packet.
func decodeData(b []byte) (seq uint32, payload []byte, err error) {
	if len(b) < dataHeaderLen {
		return 0, nil, errMalformed
	}
	return binary.BigEndian.Uint32(b[1:5]), b[5:], nil
}

// encodeHandshake renders a handshake or handshake-ack packet carrying the
// sender's initial sequence number and its flow-window size in packets.
func encodeHandshake(typ byte, initialSeq uint32, window uint32) []byte {
	b := make([]byte, 0, 9)
	b = append(b, typ)
	b = binary.BigEndian.AppendUint32(b, initialSeq)
	b = binary.BigEndian.AppendUint32(b, window)
	return b
}

func decodeHandshake(b []byte) (initialSeq, window uint32, err error) {
	if len(b) < 9 {
		return 0, 0, errMalformed
	}
	return binary.BigEndian.Uint32(b[1:5]), binary.BigEndian.Uint32(b[5:9]), nil
}

// encodeAck renders a cumulative ACK: everything before ackSeq has been
// received; window is the receiver's available buffer in packets.
func encodeAck(ackSeq uint32, window uint32) []byte {
	b := make([]byte, 0, 9)
	b = append(b, ctlAck)
	b = binary.BigEndian.AppendUint32(b, ackSeq)
	b = binary.BigEndian.AppendUint32(b, window)
	return b
}

func decodeAck(b []byte) (ackSeq, window uint32, err error) {
	if len(b) < 9 {
		return 0, 0, errMalformed
	}
	return binary.BigEndian.Uint32(b[1:5]), binary.BigEndian.Uint32(b[5:9]), nil
}

// encodeNak renders a NAK carrying loss ranges (inclusive).
func encodeNak(ranges []nakRange) []byte {
	b := make([]byte, 0, 3+8*len(ranges))
	b = append(b, ctlNak)
	b = binary.BigEndian.AppendUint16(b, uint16(len(ranges)))
	for _, r := range ranges {
		b = binary.BigEndian.AppendUint32(b, r.from)
		b = binary.BigEndian.AppendUint32(b, r.to)
	}
	return b
}

func decodeNak(b []byte) ([]nakRange, error) {
	if len(b) < 3 {
		return nil, errMalformed
	}
	n := int(binary.BigEndian.Uint16(b[1:3]))
	if len(b) < 3+8*n {
		return nil, errMalformed
	}
	ranges := make([]nakRange, n)
	for i := 0; i < n; i++ {
		off := 3 + 8*i
		ranges[i] = nakRange{
			from: binary.BigEndian.Uint32(b[off : off+4]),
			to:   binary.BigEndian.Uint32(b[off+4 : off+8]),
		}
		if seqLess(ranges[i].to, ranges[i].from) {
			return nil, fmt.Errorf("%w: inverted NAK range", errMalformed)
		}
	}
	return ranges, nil
}
