package udt

import (
	"testing"
)

func TestPktRingStoreTakeAcrossWraparound(t *testing.T) {
	r := newPktRing(5) // rounds up to 8 slots
	if len(r.slots) != 8 || r.mask != 7 {
		t.Fatalf("newPktRing(5) = %d slots mask %d, want 8 slots mask 7", len(r.slots), r.mask)
	}
	base := ^uint32(0) - 3 // window straddles the uint32 wrap
	for i := uint32(0); i < 8; i++ {
		buf := []byte{byte(i)}
		if !r.storeOwned(base+i, buf) {
			t.Fatalf("storeOwned(%d) refused an empty slot", base+i)
		}
	}
	if r.len() != 8 {
		t.Fatalf("len = %d, want 8", r.len())
	}
	if r.storeOwned(base, []byte{99}) {
		t.Fatal("storeOwned accepted an occupied slot")
	}
	for i := uint32(0); i < 8; i++ {
		if got := r.get(base + i); got == nil || got[0] != byte(i) {
			t.Fatalf("get(%d) = %v, want [%d]", base+i, got, i)
		}
	}
	for i := uint32(0); i < 8; i++ {
		if got := r.take(base + i); got == nil || got[0] != byte(i) {
			t.Fatalf("take(%d) = %v, want [%d]", base+i, got, i)
		}
		if got := r.take(base + i); got != nil {
			t.Fatalf("second take(%d) = %v, want nil", base+i, got)
		}
	}
	if r.len() != 0 {
		t.Fatalf("len after drain = %d, want 0", r.len())
	}
}

func TestPktRingDrainReleasesEverything(t *testing.T) {
	r := newPktRing(4)
	for i := uint32(0); i < 4; i++ {
		r.storeOwned(1000+i, []byte{byte(i)})
	}
	var released int
	r.drain(func([]byte) { released++ })
	if released != 4 || r.len() != 0 {
		t.Fatalf("drain released %d (len %d), want 4 (len 0)", released, r.len())
	}
}

func TestLossRangesInsertCoalesces(t *testing.T) {
	var l lossRanges
	l.insert(10, 12)
	l.insert(20, 22)
	if len(l.r) != 2 {
		t.Fatalf("disjoint inserts: %v", l.r)
	}
	l.insert(13, 15) // adjacent to [10,12]: must merge
	if len(l.r) != 2 || l.r[0] != (nakRange{from: 10, to: 15}) {
		t.Fatalf("adjacent merge: %v", l.r)
	}
	l.insert(14, 21) // bridges both entries
	if len(l.r) != 1 || l.r[0] != (nakRange{from: 10, to: 22}) {
		t.Fatalf("bridging merge: %v", l.r)
	}
	l.insert(5, 7) // new first entry
	if len(l.r) != 2 || l.r[0] != (nakRange{from: 5, to: 7}) {
		t.Fatalf("prepend: %v", l.r)
	}
	l.insert(6, 6) // fully contained: no change
	if len(l.r) != 2 || l.r[0] != (nakRange{from: 5, to: 7}) {
		t.Fatalf("contained insert changed list: %v", l.r)
	}
}

func TestLossRangesPopFirstOrdered(t *testing.T) {
	var l lossRanges
	l.insert(30, 31)
	l.insert(10, 11)
	want := []uint32{10, 11, 30, 31}
	for _, w := range want {
		got, ok := l.popFirst()
		if !ok || got != w {
			t.Fatalf("popFirst = %d,%v want %d,true", got, ok, w)
		}
	}
	if _, ok := l.popFirst(); ok || !l.empty() {
		t.Fatal("list should be empty")
	}
}

func TestLossRangesAcrossWraparound(t *testing.T) {
	var l lossRanges
	hi := ^uint32(0) - 1 // 0xfffffffe
	l.insert(hi, hi+3)   // spans fffffffe..1
	l.insert(hi-2, hi-2)
	if len(l.r) != 2 {
		t.Fatalf("after wrap inserts: %v", l.r)
	}
	if got, _ := l.popFirst(); got != hi-2 {
		t.Fatalf("first pop = %d, want %d", got, hi-2)
	}
	// Pop the wrapping range in sequence order: fffffffe, ffffffff, 0, 1.
	for _, w := range []uint32{hi, hi + 1, 0, 1} {
		got, ok := l.popFirst()
		if !ok || got != w {
			t.Fatalf("popFirst = %d,%v want %d,true", got, ok, w)
		}
	}
	if !l.empty() {
		t.Fatalf("leftover: %v", l.r)
	}
}

func TestLossRangesPruneBelowAcrossWraparound(t *testing.T) {
	var l lossRanges
	hi := ^uint32(0) - 1
	l.insert(hi, hi+3) // fffffffe..1
	l.insert(5, 6)
	l.pruneBelow(0) // cumulative ACK of everything before the wrap
	if len(l.r) != 2 || l.r[0] != (nakRange{from: 0, to: 1}) {
		t.Fatalf("pruneBelow(0): %v", l.r)
	}
	l.pruneBelow(6)
	if len(l.r) != 1 || l.r[0] != (nakRange{from: 6, to: 6}) {
		t.Fatalf("pruneBelow(6): %v", l.r)
	}
	l.pruneBelow(7)
	if !l.empty() {
		t.Fatalf("pruneBelow(7): %v", l.r)
	}
}
