package netsim

import (
	"math/rand"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/clock"
)

// Sim owns virtual time and the random source for one simulation run.
// All state mutation happens on the goroutine driving RunFor/RunUntil, so
// callbacks need no locking.
type Sim struct {
	clk   *clock.Virtual
	rng   *rand.Rand
	epoch time.Time
}

// NewSim creates a simulator seeded for reproducibility.
func NewSim(seed int64) *Sim {
	clk := clock.NewVirtual()
	return &Sim{
		clk:   clk,
		rng:   rand.New(rand.NewSource(seed)),
		epoch: clk.Now(),
	}
}

// Clock exposes the virtual clock, e.g. to inject into middleware logic.
func (s *Sim) Clock() *clock.Virtual { return s.clk }

// Rand returns the simulation's random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Now returns the current virtual instant.
func (s *Sim) Now() time.Time { return s.clk.Now() }

// Elapsed returns virtual time since the simulation began.
func (s *Sim) Elapsed() time.Duration { return s.clk.Now().Sub(s.epoch) }

// Schedule runs f after virtual delay d.
func (s *Sim) Schedule(d time.Duration, f func()) clock.Timer {
	return s.clk.AfterFunc(d, f)
}

// RunFor advances virtual time by d, executing all due events in order.
func (s *Sim) RunFor(d time.Duration) { s.clk.Advance(d) }

// RunUntil advances virtual time until cond holds or the event queue runs
// dry or maxTime elapses. It reports whether cond became true.
func (s *Sim) RunUntil(cond func() bool, maxTime time.Duration) bool {
	deadline := s.clk.Now().Add(maxTime)
	for !cond() {
		next, ok := s.clk.NextDeadline()
		if !ok || next.After(deadline) {
			return cond()
		}
		s.clk.AdvanceTo(next)
	}
	return true
}

// Drain runs events until the queue is empty or maxTime elapses.
func (s *Sim) Drain(maxTime time.Duration) {
	deadline := s.clk.Now().Add(maxTime)
	for {
		next, ok := s.clk.NextDeadline()
		if !ok || next.After(deadline) {
			return
		}
		s.clk.AdvanceTo(next)
	}
}
