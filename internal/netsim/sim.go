package netsim

import (
	"math/rand"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/clock"
)

// Sim owns virtual time and the random source for one simulation run.
// All state mutation happens on the goroutine driving RunFor/RunUntil, so
// callbacks need no locking.
type Sim struct {
	clk   clock.SimClock
	rng   *rand.Rand
	epoch time.Time

	msgFree []*Message // recycled Messages; see AcquireMessage
}

// NewSim creates a simulator seeded for reproducibility, on the
// wheel-backed event core.
func NewSim(seed int64) *Sim {
	return NewSimWithClock(seed, clock.NewVirtual())
}

// NewSimWithClock creates a simulator on an explicit event core — the
// heap-backed clock.NewVirtualHeap for the campaign A/B baseline, or an
// already-positioned clock shared with other harness pieces. Both cores
// fire in identical (deadline, id) order, so a seeded run produces the
// same event trace on either.
func NewSimWithClock(seed int64, clk clock.SimClock) *Sim {
	return &Sim{
		clk:   clk,
		rng:   rand.New(rand.NewSource(seed)),
		epoch: clk.Now(),
	}
}

// Clock exposes the virtual clock, e.g. to inject into middleware logic.
func (s *Sim) Clock() clock.SimClock { return s.clk }

// Rand returns the simulation's random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Now returns the current virtual instant.
func (s *Sim) Now() time.Time { return s.clk.Now() }

// NowNanos returns the current virtual instant in nanoseconds since the
// Unix epoch without taking the clock lock — the form hot event callbacks
// use for per-event timestamps. See clock.SimClock.NowNanos.
func (s *Sim) NowNanos() int64 { return s.clk.NowNanos() }

// Elapsed returns virtual time since the simulation began.
func (s *Sim) Elapsed() time.Duration { return s.clk.Now().Sub(s.epoch) }

// Schedule runs f after virtual delay d and returns a cancellation
// handle.
func (s *Sim) Schedule(d time.Duration, f func()) clock.Timer {
	return s.clk.AfterFunc(d, f)
}

// Post runs f after virtual delay d with no cancellation handle — the
// allocation-free hot path for events that always run (transmission
// completions, deliveries). See clock.SimClock.
func (s *Sim) Post(d time.Duration, f func()) { s.clk.Post(d, f) }

// PostArg is Post for a callback taking one argument, letting callers
// reuse a single func value across millions of events.
func (s *Sim) PostArg(d time.Duration, f func(any), arg any) { s.clk.PostArg(d, f, arg) }

// RunFor advances virtual time by d, executing all due events in order.
func (s *Sim) RunFor(d time.Duration) { s.clk.Advance(d) }

// RunUntil advances virtual time until cond holds or the event queue runs
// dry or maxTime elapses. It reports whether cond became true.
func (s *Sim) RunUntil(cond func() bool, maxTime time.Duration) bool {
	deadline := s.clk.Now().Add(maxTime)
	for !cond() {
		next, ok := s.clk.NextDeadline()
		if !ok || next.After(deadline) {
			return cond()
		}
		s.clk.AdvanceTo(next)
	}
	return true
}

// Drain runs events until the queue is empty or maxTime elapses.
func (s *Sim) Drain(maxTime time.Duration) {
	deadline := s.clk.Now().Add(maxTime)
	for {
		next, ok := s.clk.NextDeadline()
		if !ok || next.After(deadline) {
			return
		}
		s.clk.AdvanceTo(next)
	}
}

// AcquireMessage returns a zeroed Message from the simulation's free
// list, allocating only when the list is empty. Campaign workloads cycle
// every payload through Acquire/Release so steady-state traffic performs
// no per-message allocation; tests and small experiments may keep
// building Messages directly — the pool is an optimisation, not a
// contract.
//
// Like the rest of Sim, the free list is confined to the simulation
// goroutine.
func (s *Sim) AcquireMessage() *Message {
	if k := len(s.msgFree); k > 0 {
		m := s.msgFree[k-1]
		s.msgFree[k-1] = nil
		s.msgFree = s.msgFree[:k-1]
		*m = Message{}
		return m
	}
	return &Message{}
}

// ReleaseMessage returns a Message obtained from AcquireMessage to the
// free list. The caller must not use m afterwards.
func (s *Sim) ReleaseMessage(m *Message) {
	s.msgFree = append(s.msgFree, m)
}
