package netsim

import "time"

// Byte-rate units for calibration constants.
const (
	KBps float64 = 1 << 10
	MBps float64 = 1 << 20
)

// The four experimental setups of §V-A (figure 7), calibrated to the
// operating points the paper reports: TCP disk-limited locally and within
// the VPC, collapsing on transcontinental paths; UDT pinned near Amazon's
// ~10 MB/s UDP policer on every real network and buffer-limited on
// loopback.
var (
	// SetupLocal copies disk-to-disk on one node over loopback.
	SetupLocal = PathConfig{
		Name:           "Local",
		RTT:            100 * time.Microsecond,
		LinkRate:       1500 * MBps,
		LossRate:       0,
		UDPPolicerRate: 0,
		DiskRate:       110 * MBps,
		AppRate:        150 * MBps,
		UDTMaxRate:     30 * MBps,
	}
	// SetupEUVPC pairs two instances within one datacentre (Ireland).
	SetupEUVPC = PathConfig{
		Name:           "EU-VPC",
		RTT:            3 * time.Millisecond,
		LinkRate:       125 * MBps,
		LossRate:       1e-6,
		UDPPolicerRate: 10 * MBps,
		DiskRate:       110 * MBps,
		AppRate:        150 * MBps,
	}
	// SetupEU2US pairs Ireland with North California (~155 ms RTT).
	SetupEU2US = PathConfig{
		Name:           "EU2US",
		RTT:            155 * time.Millisecond,
		LinkRate:       125 * MBps,
		LossRate:       1e-4,
		UDPPolicerRate: 10 * MBps,
		DiskRate:       110 * MBps,
		AppRate:        150 * MBps,
	}
	// SetupEU2AU pairs Ireland with Sydney (~320 ms RTT).
	SetupEU2AU = PathConfig{
		Name:           "EU2AU",
		RTT:            320 * time.Millisecond,
		LinkRate:       125 * MBps,
		LossRate:       1e-4,
		UDPPolicerRate: 10 * MBps,
		DiskRate:       110 * MBps,
		AppRate:        150 * MBps,
	}
	// SetupLearner is the environment of §IV's learner figures: a
	// 100 MB/s link with 10 ms one-way delay where TCP is strong, so the
	// optimal ratio is r ≈ −1 (pure TCP).
	SetupLearner = PathConfig{
		Name:           "Learner",
		RTT:            20 * time.Millisecond,
		LinkRate:       100 * MBps,
		LossRate:       0,
		UDPPolicerRate: 10 * MBps,
		AppRate:        150 * MBps,
	}
)

// Setups returns the paper's four geographic setups in figure order.
func Setups() []PathConfig {
	return []PathConfig{SetupLocal, SetupEUVPC, SetupEU2US, SetupEU2AU}
}
