package netsim

import (
	"fmt"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/clock"
	"github.com/kompics/kompicsmessaging-go/internal/vnet"
)

// campaign.go drives large-scale simulation campaigns: up to 10⁶ logical
// endpoints (vnodes) multiplexed onto up to ~10³ simulated hosts joined by
// a gossip, star, or tree host graph. Each endpoint runs an exponential
// send process (optionally with a flash-crowd window), a self-rearming
// heartbeat timer, optional per-peer failure detectors (DetectorFanout
// fixed-period timers each), and a per-message retransmission timeout
// armed at send and checked against delivery when it expires — the
// workload profile that puts 10⁵⁻⁶ timers in flight concurrently and that
// the timer-wheel event core exists for.
//
// Everything here is deterministic: one seeded rand source, events fired
// in (deadline, id) order, and a rolling FNV-1a hash over every event so
// two runs (including one on the wheel clock and one on the heap clock)
// can be checked for byte-identical behaviour by comparing a single
// uint64.

// CampaignConfig parameterises a campaign. Zero values select defaults
// (see withDefaults); Endpoints is rounded down to a multiple of Hosts so
// the id-mod-H vnode placement is uniform.
type CampaignConfig struct {
	// Endpoints is the number of logical endpoints (vnodes).
	Endpoints int
	// Hosts is the number of simulated hosts they are multiplexed onto.
	Hosts int
	// Topology is the host graph: "gossip", "star", or "tree".
	Topology string
	// Degree is the gossip out-degree (forward circulant offsets 1..Degree).
	Degree int
	// Fanout is the tree fanout.
	Fanout int
	// MsgSize is the payload size of every data message.
	MsgSize int
	// Phase is the virtual duration of one RunPhase call.
	Phase time.Duration
	// Seed seeds the single random source.
	Seed int64
	// Clock selects the event core: "wheel" (default) or "heap" (the
	// binary-heap baseline the A/B benchmark compares against).
	Clock string
	// Arrival shapes the per-endpoint send process.
	Arrival ArrivalConfig
	// Churn shapes endpoint membership churn.
	Churn ChurnConfig
	// HeartbeatInterval is each endpoint's failure-detector tick period.
	HeartbeatInterval time.Duration
	// RetransTimeout is the per-message retransmission timeout, armed at
	// origin send. When it expires the message is checked: if it was not
	// delivered, a timeout is counted (not resent, so event totals stay
	// deterministic). Either way the expiry recycles the message, so the
	// timeout window also bounds the message pool's working set.
	RetransTimeout time.Duration
	// DetectorFanout gives each endpoint that many per-peer failure
	// detectors: fixed-period timers that evaluate the monitored peer's
	// liveness from locally held state (the φ-accrual pattern — evaluation
	// needs no message). 0 disables. This is the workload's pure-timer
	// load: with fanout k, k×Endpoints detector timers are concurrently
	// live, which is what pushes campaigns into the 10⁵⁻⁶ resident-timer
	// regime the wheel is built for.
	DetectorFanout int
	// DetectorInterval is the detector evaluation period (default 500ms
	// when DetectorFanout > 0).
	DetectorInterval time.Duration
	// RecordTrace additionally keeps a textual per-event trace (bounded;
	// for small-scale tests only).
	RecordTrace bool
}

func (cfg CampaignConfig) withDefaults() CampaignConfig {
	if cfg.Hosts < 2 {
		cfg.Hosts = 2
	}
	if cfg.Endpoints <= 0 {
		cfg.Endpoints = 10000
	}
	if cfg.Endpoints < cfg.Hosts {
		cfg.Endpoints = cfg.Hosts
	}
	cfg.Endpoints -= cfg.Endpoints % cfg.Hosts
	if cfg.Topology == "" {
		cfg.Topology = "gossip"
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 8
	}
	if cfg.Degree > cfg.Hosts-1 {
		cfg.Degree = cfg.Hosts - 1
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 4
	}
	if cfg.MsgSize <= 0 {
		cfg.MsgSize = 256
	}
	if cfg.Phase <= 0 {
		cfg.Phase = 10 * time.Second
	}
	if cfg.Clock == "" {
		cfg.Clock = "wheel"
	}
	if cfg.Arrival.MeanInterval <= 0 {
		cfg.Arrival.MeanInterval = time.Second
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 5 * time.Second
	}
	if cfg.RetransTimeout <= 0 {
		cfg.RetransTimeout = 2 * time.Second
	}
	if cfg.DetectorFanout < 0 {
		cfg.DetectorFanout = 0
	}
	if cfg.DetectorFanout > cfg.Endpoints-1 {
		cfg.DetectorFanout = cfg.Endpoints - 1
	}
	if cfg.DetectorFanout > 0 && cfg.DetectorInterval <= 0 {
		cfg.DetectorInterval = 500 * time.Millisecond
	}
	return cfg
}

// CampaignResult reports one phase of a campaign. Counter fields are
// deltas over the phase; TraceHash, PendingAtEnd, and LiveTimerHWM are the
// campaign-lifetime values at phase end.
type CampaignResult struct {
	// Events is the number of timer callbacks the event core fired.
	Events uint64
	// Sends counts origin sends; Delivered counts final deliveries
	// (including to down endpoints); ForwardHops counts intermediate
	// relays in star/tree topologies; LocalReflects counts intra-host
	// deliveries that bypassed the wire.
	Sends, Delivered, ForwardHops, LocalReflects uint64
	// Timeouts counts retransmission timers that expired before delivery.
	Timeouts uint64
	// HeartbeatTicks and ChurnFlips count those processes' events.
	HeartbeatTicks, ChurnFlips uint64
	// DetectorTicks counts per-peer failure-detector evaluations;
	// Suspicions counts evaluations that found the monitored peer down.
	DetectorTicks, Suspicions uint64
	// DeliveredDown counts deliveries that fell through to the dead-letter
	// handler because the destination vnode was unbound (churned down).
	DeliveredDown uint64
	// PendingAtEnd is the live timer count when the phase ended.
	PendingAtEnd int
	// LiveTimerHWM is the campaign's live-timer high-water mark.
	LiveTimerHWM int
	// TraceHash is the rolling FNV-1a hash over every event so far.
	TraceHash uint64
	// VirtualDuration is the phase length in virtual time.
	VirtualDuration time.Duration
}

// endpoint is one logical vnode's state.
type endpoint struct {
	id   uint64
	sent uint32
	recv uint32
	up   bool
}

// detector is one endpoint's failure detector for one monitored peer. Its
// timer rides PostArg with a pointer into the campaign's detector slab as
// the argument, so the steady detector load allocates nothing. The fields
// are uint32 deliberately: detectors fire in essentially random slab
// order, so at fanout×10⁵⁻⁶ entries every byte of the struct is a byte of
// cache-miss bandwidth on the campaign's hottest event path.
type detector struct {
	owner uint32
	peer  uint32
}

// Campaign is an instantiated workload ready to run in phases.
type Campaign struct {
	cfg     CampaignConfig
	sim     *Sim
	topo    *topology
	muxes   []*vnet.DenseHostMux
	eps     []endpoint
	dets    []detector
	upBits  []uint64 // endpoint liveness bitset; see onDetector
	epochNS int64

	// Shared event callbacks, bound once: the steady-state event cycle
	// creates no closures.
	sendEvt    func(any)
	hbEvt      func(any)
	detEvt     func(any)
	recvEvt    func(uint64, any)
	deadLetter func(uint64, any)
	churnEvt   func()
	timeoutEvt func(any)

	nextMsgID uint64

	sends, delivered, forwards, reflects uint64
	timeouts, hbTicks, churnFlips, down  uint64
	detTicks, suspects                   uint64

	traceHash uint64
	trace     []string
}

const campaignTraceCap = 1 << 17

// NewCampaign builds the topology, binds every vnode into its host's mux,
// and primes the arrival, heartbeat, and churn processes. Virtual time
// does not move until RunPhase.
func NewCampaign(cfg CampaignConfig) *Campaign {
	cfg = cfg.withDefaults()
	var clk clock.SimClock
	switch cfg.Clock {
	case "wheel":
		clk = clock.NewVirtual()
	case "heap":
		clk = clock.NewVirtualHeap()
	default:
		panic(fmt.Sprintf("netsim: unknown campaign clock %q", cfg.Clock))
	}
	c := &Campaign{
		cfg:       cfg,
		sim:       NewSimWithClock(cfg.Seed, clk),
		traceHash: fnvOffset,
	}
	c.epochNS = c.sim.epoch.UnixNano()
	var kind topoKind
	switch cfg.Topology {
	case "gossip":
		kind = topoGossip
	case "star":
		kind = topoStar
	case "tree":
		kind = topoTree
	default:
		panic(fmt.Sprintf("netsim: unknown campaign topology %q", cfg.Topology))
	}
	c.topo = buildTopology(c.sim, kind, cfg.Hosts, cfg.Degree, cfg.Fanout)

	c.sendEvt = c.onSendTick
	c.hbEvt = c.onHeartbeat
	c.detEvt = c.onDetector
	c.churnEvt = c.onChurn
	c.timeoutEvt = c.onTimeout
	c.recvEvt = func(v uint64, _ any) { c.eps[v].recv++ }
	c.deadLetter = func(uint64, any) { c.down++ }

	// Vnode ids are assigned round-robin across hosts (host = id mod H),
	// so id/H is a perfect dense slot index within each host's mux.
	hosts := uint64(cfg.Hosts)
	slotOf := func(v uint64) int { return int(v / hosts) }
	c.muxes = make([]*vnet.DenseHostMux, cfg.Hosts)
	for h := range c.muxes {
		c.muxes[h] = vnet.NewDenseHostMux(cfg.Endpoints/cfg.Hosts, slotOf, c.deadLetter)
	}
	c.eps = make([]endpoint, cfg.Endpoints)
	c.upBits = make([]uint64, (cfg.Endpoints+63)/64)
	for i := range c.eps {
		c.eps[i] = endpoint{id: uint64(i), up: true}
		c.upBits[i>>6] |= 1 << (uint(i) & 63)
		c.muxes[i%cfg.Hosts].Bind(uint64(i), c.recvEvt)
	}

	c.topo.eachLane(func(conn *Conn, d Dir, recvHost int) {
		conn.OnDeliver(d, func(m *Message) { c.arrive(recvHost, m) })
	})

	rng := c.sim.Rand()
	for i := range c.eps {
		c.sim.PostArg(c.cfg.Arrival.nextInterval(rng, 0), c.sendEvt, &c.eps[i])
		c.sim.PostArg(time.Duration(rng.Int63n(int64(cfg.HeartbeatInterval))), c.hbEvt, &c.eps[i])
	}
	if f := cfg.DetectorFanout; f > 0 {
		// Each endpoint monitors f peers: its forward ring neighbours under
		// gossip (the peers it actually exchanges traffic with), otherwise f
		// random distinct peers. One staggered fixed-period timer each.
		total := uint64(cfg.Endpoints)
		c.dets = make([]detector, 0, cfg.Endpoints*f)
		for i := range c.eps {
			for j := 0; j < f; j++ {
				var peer uint64
				if kind == topoGossip {
					peer = (uint64(i) + uint64(j) + 1) % total
				} else {
					peer = (uint64(i) + 1 + uint64(rng.Intn(cfg.Endpoints-1))) % total
				}
				c.dets = append(c.dets, detector{owner: uint32(i), peer: uint32(peer)})
				d := &c.dets[len(c.dets)-1]
				c.sim.PostArg(time.Duration(rng.Int63n(int64(cfg.DetectorInterval))), c.detEvt, d)
			}
		}
	}
	if cfg.Churn.MeanFlipInterval > 0 {
		c.sim.Post(cfg.Churn.nextFlip(rng), c.churnEvt)
	}
	return c
}

// Config returns the effective configuration after defaulting.
func (c *Campaign) Config() CampaignConfig { return c.cfg }

// Sim exposes the underlying simulator (tests and harnesses).
func (c *Campaign) Sim() *Sim { return c.sim }

// Trace returns the recorded textual trace (RecordTrace only).
func (c *Campaign) Trace() []string { return c.trace }

// RunPhase advances virtual time by one configured Phase, firing every due
// event, and returns that phase's results. Phases are cumulative: state,
// pools, and the trace hash carry over, which is exactly what the flat-RSS
// acceptance check leans on — a second phase must not grow the footprint
// the first phase established.
func (c *Campaign) RunPhase() CampaignResult {
	clk := c.sim.Clock()
	e0, s0, d0 := clk.FiredTimers(), c.sends, c.delivered
	f0, r0, t0 := c.forwards, c.reflects, c.timeouts
	h0, c0, dn0 := c.hbTicks, c.churnFlips, c.down
	dt0, su0 := c.detTicks, c.suspects
	clk.AdvanceTo(c.sim.Now().Add(c.cfg.Phase))
	return CampaignResult{
		Events:          clk.FiredTimers() - e0,
		Sends:           c.sends - s0,
		Delivered:       c.delivered - d0,
		ForwardHops:     c.forwards - f0,
		LocalReflects:   c.reflects - r0,
		Timeouts:        c.timeouts - t0,
		HeartbeatTicks:  c.hbTicks - h0,
		ChurnFlips:      c.churnFlips - c0,
		DetectorTicks:   c.detTicks - dt0,
		Suspicions:      c.suspects - su0,
		DeliveredDown:   c.down - dn0,
		PendingAtEnd:    clk.PendingTimers(),
		LiveTimerHWM:    clk.HighWaterTimers(),
		TraceHash:       c.traceHash,
		VirtualDuration: c.cfg.Phase,
	}
}

// Event codes for the trace hash.
const (
	evSend = iota + 1
	evDeliver
	evTimeout
	evChurn
	evHeartbeat
	evForward
	evReflect
	evProbe
)

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// mark folds one event into the rolling trace hash (and the textual trace
// when recording). Hashing (instant, code, a, b) for every event makes the
// hash a full behavioural fingerprint: any divergence in event order,
// timing, or payload between two runs changes it. The fold is FNV-1a
// widened to whole 64-bit words — one xor-multiply per word instead of
// per byte, because this runs a few times per simulated event.
func (c *Campaign) mark(nowNS int64, code, a, b uint64) {
	h := c.traceHash
	h = (h ^ uint64(nowNS)) * fnvPrime
	h = (h ^ code) * fnvPrime
	h = (h ^ a) * fnvPrime
	h = (h ^ b) * fnvPrime
	c.traceHash = h
	if c.cfg.RecordTrace && len(c.trace) < campaignTraceCap {
		c.trace = append(c.trace, fmt.Sprintf("%d c%d a%d b%d", nowNS, code, a, b))
	}
}

// msgDelivered is the sentinel finalDeliver leaves in Message.Meta so the
// retransmission expiry can tell delivered messages from lost ones.
var msgDelivered any = new(byte)

// onSendTick fires on an endpoint's arrival process: send if up, then
// rearm. Down endpoints keep ticking without sending, so churn changes
// traffic but never the timer population.
func (c *Campaign) onSendTick(arg any) {
	ep := arg.(*endpoint)
	nowNS := c.sim.clk.NowNanos()
	if ep.up {
		c.send(ep, nowNS)
	}
	c.sim.PostArg(c.cfg.Arrival.nextInterval(c.sim.rng, time.Duration(nowNS-c.epochNS)), c.sendEvt, ep)
}

// send originates one data message from ep to a topology-dependent
// destination vnode.
func (c *Campaign) send(ep *endpoint, nowNS int64) {
	hosts := uint64(c.cfg.Hosts)
	total := uint64(len(c.eps))
	var dst uint64
	var conn *Conn
	var dir Dir
	srcHost := int(ep.id % hosts)
	if c.topo.kind == topoGossip {
		// Gossip to one of the k forward ring neighbours; the matching
		// host edge exists by construction (endpoints ≡ id mod H).
		j := c.sim.rng.Intn(c.cfg.Degree)
		dst = (ep.id + uint64(j) + 1) % total
		conn, dir = c.topo.conns[srcHost*c.cfg.Degree+j], AtoB
	} else {
		// Pub/sub style: a uniformly random other endpoint, routed via
		// the hub (star) or hop-by-hop (tree).
		dst = (ep.id + 1 + uint64(c.sim.rng.Intn(len(c.eps)-1))) % total
	}
	m := c.sim.AcquireMessage()
	c.nextMsgID++
	m.ID = c.nextMsgID
	m.Size = c.cfg.MsgSize
	m.Kind = DataKind
	m.SrcVNode = ep.id
	m.DstVNode = dst
	ep.sent++
	c.sends++
	c.mark(nowNS, evSend, ep.id, dst)

	// The expiry event owns the message's release, so it is armed for
	// every send — including local reflections, which can never time out.
	c.sim.PostArg(c.cfg.RetransTimeout, c.timeoutEvt, m)

	dstHost := int(dst % hosts)
	if dstHost == srcHost {
		// Intra-host vnode traffic reflects locally, without touching the
		// wire (§III-B).
		c.reflects++
		c.mark(nowNS, evReflect, m.ID, dst)
		m.DeliveredAt = time.Unix(0, nowNS).UTC()
		c.finalDeliver(dstHost, m)
		return
	}
	if conn == nil {
		conn, dir, _ = c.topo.next(srcHost, dstHost)
	}
	conn.Send(dir, m)
}

// arrive handles a wire delivery at recvHost: final-deliver or relay. The
// lane stamped m.DeliveredAt with the current instant just before calling.
func (c *Campaign) arrive(recvHost int, m *Message) {
	dstHost := int(m.DstVNode % uint64(c.cfg.Hosts))
	if dstHost == recvHost {
		c.finalDeliver(dstHost, m)
		return
	}
	c.forwards++
	c.mark(m.DeliveredAt.UnixNano(), evForward, m.ID, uint64(recvHost))
	conn, dir, _ := c.topo.next(recvHost, dstHost)
	conn.Send(dir, m)
}

// finalDeliver dispatches the message through the destination host's vnode
// mux and marks it delivered for its pending retransmission expiry (which
// recycles it).
func (c *Campaign) finalDeliver(dstHost int, m *Message) {
	c.delivered++
	c.mark(m.DeliveredAt.UnixNano(), evDeliver, m.ID, m.DstVNode)
	c.muxes[dstHost].Dispatch(m.DstVNode, m)
	m.Meta = msgDelivered
}

// onTimeout is a message's retransmission expiry: count it if the message
// never arrived, then recycle the message either way.
func (c *Campaign) onTimeout(arg any) {
	m := arg.(*Message)
	if m.Meta != msgDelivered {
		c.timeouts++
		c.mark(c.sim.clk.NowNanos(), evTimeout, m.ID, m.DstVNode)
	}
	c.sim.ReleaseMessage(m)
}

// onHeartbeat is an endpoint's liveness-advertisement tick: count and
// rearm.
func (c *Campaign) onHeartbeat(arg any) {
	ep := arg.(*endpoint)
	c.hbTicks++
	c.mark(c.sim.clk.NowNanos(), evHeartbeat, ep.id, 0)
	c.sim.PostArg(c.cfg.HeartbeatInterval, c.hbEvt, ep)
}

// onDetector is one per-peer failure-detector evaluation: read the
// monitored peer's liveness from local state (φ-accrual style — no message
// is exchanged to evaluate), count a suspicion if it is down, and rearm
// the fixed-period timer. With DetectorFanout k this is the campaign's
// dominant event class — k timers per endpoint, resident the whole run.
func (c *Campaign) onDetector(arg any) {
	d := arg.(*detector)
	c.detTicks++
	// Liveness comes from the upBits bitset, not the endpoint structs:
	// detectors probe random peers, and the bitset keeps the entire
	// liveness map L1-resident where the endpoint array would take a
	// cache miss per evaluation.
	peer := uint64(d.peer)
	var suspect uint64
	if c.upBits[peer>>6]>>(peer&63)&1 == 0 {
		c.suspects++
		suspect = 1
	}
	c.mark(c.sim.clk.NowNanos(), evProbe, uint64(d.owner), peer<<1|suspect)
	c.sim.PostArg(c.cfg.DetectorInterval, c.detEvt, d)
}

// onChurn flips one random endpoint between up and down, rebinding or
// unbinding it from its host mux, then rearms.
func (c *Campaign) onChurn() {
	idx := c.sim.rng.Intn(len(c.eps))
	ep := &c.eps[idx]
	mux := c.muxes[idx%c.cfg.Hosts]
	if ep.up {
		ep.up = false
		c.upBits[idx>>6] &^= 1 << (uint(idx) & 63)
		mux.Unbind(ep.id)
	} else {
		ep.up = true
		c.upBits[idx>>6] |= 1 << (uint(idx) & 63)
		mux.Bind(ep.id, c.recvEvt)
	}
	c.churnFlips++
	c.mark(c.sim.clk.NowNanos(), evChurn, ep.id, uint64(idx))
	c.sim.Post(c.cfg.Churn.nextFlip(c.sim.rng), c.churnEvt)
}
