package netsim

import (
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
)

// keepQueued keeps a lane's backlog topped up indefinitely.
func keepQueued(conn *Conn, chunk int) {
	var top func()
	top = func() {
		for conn.QueuedMessages(AtoB) < 64 {
			conn.Send(AtoB, &Message{Size: chunk, Kind: DataKind})
		}
	}
	conn.OnSent(AtoB, func(*Message) { top() })
	top()
}

// TestUDTUnfairToTCPOnConstrainedLink reproduces the well-known UDT
// property that motivates the paper's warnings: on a shared bottleneck,
// DAIMD's gentle ×8/9 decrease outcompetes TCP's AIMD halving, so UDT
// keeps most of the link.
func TestUDTUnfairToTCPOnConstrainedLink(t *testing.T) {
	cfg := PathConfig{
		Name:     "contested",
		RTT:      40 * time.Millisecond,
		LinkRate: 12 * MBps,
		LossRate: 5e-5,
	}
	sim := NewSim(21)
	path := sim.NewPath(cfg)
	tcp := path.NewConn(core.TCP)
	udt := path.NewConn(core.UDT)
	keepQueued(tcp, 64<<10)
	keepQueued(udt, 64<<10)

	sim.RunFor(60 * time.Second)
	warmTCP := tcp.Stats(AtoB).BytesDelivered
	warmUDT := udt.Stats(AtoB).BytesDelivered
	sim.RunFor(60 * time.Second)
	tcpRate := float64(tcp.Stats(AtoB).BytesDelivered-warmTCP) / 60
	udtRate := float64(udt.Stats(AtoB).BytesDelivered-warmUDT) / 60

	if udtRate < 1.2*tcpRate {
		t.Fatalf("UDT (%.2f MB/s) did not outcompete TCP (%.2f MB/s) on a shared bottleneck",
			udtRate/MBps, tcpRate/MBps)
	}
	total := tcpRate + udtRate
	if total > 1.2*cfg.LinkRate {
		t.Fatalf("combined rate %.2f MB/s exceeds the %.0f MB/s link", total/MBps, cfg.LinkRate/MBps)
	}
}

// TestPolicerSaturationTwoUDTFlows: each UDT flow is individually policed
// (the per-lane approximation documented in PathConfig); two flows on a
// wide link therefore get ~policer each, and the link cap still binds the
// aggregate.
func TestPolicerSaturationTwoUDTFlows(t *testing.T) {
	cfg := SetupEU2US // 10 MB/s policer, 125 MB/s link
	sim := NewSim(22)
	path := sim.NewPath(cfg)
	u1 := path.NewConn(core.UDT)
	u2 := path.NewConn(core.UDT)
	keepQueued(u1, 64<<10)
	keepQueued(u2, 64<<10)

	sim.RunFor(30 * time.Second)
	r1 := float64(u1.Stats(AtoB).BytesDelivered) / 30
	r2 := float64(u2.Stats(AtoB).BytesDelivered) / 30
	for i, r := range []float64{r1, r2} {
		if r > 11*MBps {
			t.Fatalf("flow %d rate %.2f MB/s exceeds the policer", i, r/MBps)
		}
		if r < 6*MBps {
			t.Fatalf("flow %d rate %.2f MB/s far below the policer on an idle link", i, r/MBps)
		}
	}
}

// TestControlPriorityNotImplemented documents a deliberate property: the
// simulator's lanes are strict FIFO — a control message entering a busy
// lane waits for everything ahead of it. (The middleware's remedy is
// separate per-protocol channels plus the DATA interceptor's short socket
// queues; there is no in-lane priority, matching TCP reality.)
func TestControlPriorityNotImplemented(t *testing.T) {
	sim := NewSim(23)
	path := sim.NewPath(SetupEU2US)
	conn := path.NewConn(core.TCP)
	for i := 0; i < 32; i++ {
		conn.Send(AtoB, &Message{Size: 65 << 10, Kind: DataKind})
	}
	var controlAt time.Duration
	conn.OnDeliver(AtoB, func(m *Message) {
		if m.Kind == ControlKind && controlAt == 0 {
			controlAt = sim.Elapsed()
		}
	})
	conn.Send(AtoB, &Message{Size: 100, Kind: ControlKind})
	sim.RunUntil(func() bool { return controlAt > 0 }, time.Hour)
	// 32 × 65 kB at early-TCP rates takes far longer than the bare RTT.
	if controlAt < SetupEU2US.RTT {
		t.Fatalf("control message overtook queued data (%v)", controlAt)
	}
}
