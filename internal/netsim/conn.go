package netsim

import (
	"fmt"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
)

// MsgKind tags simulated messages for statistics.
type MsgKind int

// Message kinds.
const (
	DataKind MsgKind = iota + 1
	ControlKind
)

// Message is the unit of simulated transmission. Size is the payload in
// bytes; framing overhead is added internally.
type Message struct {
	// ID is a caller-chosen identifier.
	ID uint64
	// Size is the payload size in bytes.
	Size int
	// Kind tags the message for statistics.
	Kind MsgKind
	// SrcVNode and DstVNode identify logical endpoints when the message
	// travels between virtual nodes multiplexed onto the simulated hosts
	// (see internal/vnet.HostMux). Zero when unused.
	SrcVNode uint64
	DstVNode uint64
	// EnqueuedAt and DeliveredAt are stamped by the simulator.
	EnqueuedAt  time.Time
	DeliveredAt time.Time
	// Meta carries arbitrary caller context.
	Meta interface{}
}

// frameOverhead approximates per-message header bytes on the wire.
const frameOverhead = 40

// LaneStats aggregates one direction of a connection.
type LaneStats struct {
	// MsgsDelivered and BytesDelivered count payload arriving at the far
	// end.
	MsgsDelivered  int
	BytesDelivered int64
	// MsgsDropped and BytesDropped count at-most-once losses (UDP only).
	MsgsDropped  int
	BytesDropped int64
	// LossEvents counts sampled segment-loss events.
	LossEvents int
}

// Conn is a duplex protocol connection over a Path. Each direction has an
// independent FIFO send lane and congestion state, like a real socket.
type Conn struct {
	path   *Path
	proto  core.Transport
	lanes  [2]*lane
	closed bool
}

// ConnOption configures a connection.
type ConnOption func(*Conn)

// WithDiskBound marks the connection's flows as disk-bound, applying the
// path's DiskRate cap (used by the file-transfer workload).
func WithDiskBound() ConnOption {
	return func(c *Conn) {
		for _, l := range c.lanes {
			l.diskBound = true
		}
	}
}

// NewConn opens a connection with the given wire protocol on the path.
func (p *Path) NewConn(proto core.Transport, opts ...ConnOption) *Conn {
	if !proto.Wire() {
		panic(fmt.Sprintf("netsim: NewConn requires a wire protocol, got %v", proto))
	}
	c := &Conn{path: p, proto: proto}
	for d := AtoB; d <= BtoA; d++ {
		l := &lane{
			conn:  c,
			dir:   d,
			model: newModel(proto, p.modelRTT()),
		}
		// Bind the two event callbacks once per lane. Every transmission
		// reuses these func values through Post/PostArg, so the per-message
		// hot path creates no closures at all.
		l.sentEvt = l.sent
		l.deliverEvt = l.deliver
		c.lanes[d] = l
		p.register(l)
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

func newModel(proto core.Transport, rtt time.Duration) protoModel {
	switch proto {
	case core.TCP:
		return newTCPModel(rtt)
	case core.UDT:
		return newUDTModel()
	case core.UDP:
		return udpModel{}
	default:
		panic(fmt.Sprintf("netsim: no model for %v", proto))
	}
}

// Proto returns the connection's wire protocol.
func (c *Conn) Proto() core.Transport { return c.proto }

// Path returns the path the connection runs over.
func (c *Conn) Path() *Path { return c.path }

// OnDeliver installs the receive callback for messages travelling in
// direction d. The callback runs on the simulation goroutine.
func (c *Conn) OnDeliver(d Dir, fn func(*Message)) { c.lanes[d].onDeliver = fn }

// OnSent installs a callback fired when a message finishes local
// transmission in direction d (the socket-write completion the middleware
// sees, used for sender-side flow control).
func (c *Conn) OnSent(d Dir, fn func(*Message)) { c.lanes[d].onSent = fn }

// OnDrop installs a callback for messages lost in direction d (unreliable
// transports only).
func (c *Conn) OnDrop(d Dir, fn func(*Message)) { c.lanes[d].onDrop = fn }

// Send enqueues m for transmission in direction d. Delivery is
// asynchronous; at-most-once transports may drop the message.
func (c *Conn) Send(d Dir, m *Message) {
	if c.closed {
		return
	}
	l := c.lanes[d]
	m.EnqueuedAt = time.Unix(0, c.path.sim.NowNanos()).UTC()
	l.queue.push(m)
	l.queuedBytes += m.Size
	l.maybeStart()
}

// QueuedBytes reports payload bytes waiting (not yet transmitting) in
// direction d.
func (c *Conn) QueuedBytes(d Dir) int { return c.lanes[d].queuedBytes }

// QueuedMessages reports messages waiting in direction d.
func (c *Conn) QueuedMessages(d Dir) int { return c.lanes[d].queue.len() }

// InFlight reports whether a message is currently transmitting in
// direction d.
func (c *Conn) InFlight(d Dir) bool { return c.lanes[d].busy }

// CurrentRate reports the protocol model's demanded rate in bytes/second
// for direction d (before link sharing).
func (c *Conn) CurrentRate(d Dir) float64 { return c.lanes[d].model.demand() }

// Stats returns a copy of the lane statistics for direction d.
func (c *Conn) Stats(d Dir) LaneStats { return c.lanes[d].stats }

// Close removes the connection from the path and discards queued traffic.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, l := range c.lanes {
		c.path.unregister(l)
		l.queue.reset()
		l.queuedBytes = 0
	}
}

// lane is one direction of a Conn: a FIFO queue serviced at the rate the
// protocol model and link sharing allow.
type lane struct {
	conn      *Conn
	dir       Dir
	model     protoModel
	diskBound bool

	queue       msgRing
	queuedBytes int
	busy        bool

	// At most one message transmits at a time (busy gates maybeStart), so
	// the sent event reads its subject from the lane instead of a closure.
	// Deliveries overlap — a message propagates while the next transmits —
	// so those ride through PostArg's timer-node argument. sentEvt and
	// deliverEvt are bound once in NewConn; the per-message hot path
	// allocates neither closures nor timer nodes (wheel clock, warm pool).
	inflight        *Message
	inflightDropped bool
	sentEvt         func()
	deliverEvt      func(any)

	stats LaneStats

	onDeliver func(*Message)
	onSent    func(*Message)
	onDrop    func(*Message)
}

// active reports whether the lane competes for link capacity.
func (l *lane) active() bool { return l.busy || l.queue.len() > 0 }

// cappedDemand is the model's demand clipped by every cap that applies to
// this lane: the UDP policer for UDP-carried protocols, the UDT internal
// buffer bound, the disk bound for disk-bound flows, and the middleware
// serialisation bound.
func (l *lane) cappedDemand() float64 {
	return l.clipToCaps(l.model.demand())
}

// staticCap is the rate bound imposed by the environment alone, ignoring
// the protocol's current state. Rate-based models ramp towards it.
func (l *lane) staticCap() float64 {
	return l.clipToCaps(l.conn.path.cfg.LinkRate)
}

func (l *lane) clipToCaps(d float64) float64 {
	cfg := l.conn.path.cfg
	clip := func(bound float64) {
		if bound > 0 && d > bound {
			d = bound
		}
	}
	if l.model.policed() {
		clip(cfg.UDPPolicerRate)
	}
	if l.conn.proto == core.UDT {
		clip(cfg.UDTMaxRate)
	}
	if l.diskBound {
		clip(cfg.DiskRate)
	}
	clip(cfg.AppRate)
	clip(cfg.LinkRate)
	return d
}

// maybeStart begins transmitting the head-of-line message if the lane is
// idle.
func (l *lane) maybeStart() {
	if l.busy || l.conn.closed || l.queue.len() == 0 {
		return
	}
	m := l.queue.pop()
	l.queuedBytes -= m.Size
	l.busy = true

	path := l.conn.path
	sim := path.sim

	rate := path.shareLink(l)
	if rate <= 0 {
		rate = udtMinRate // defensive floor; demand is never zero in practice
	}
	wireBytes := float64(m.Size + frameOverhead)
	segs := int((wireBytes + mss - 1) / mss)
	if segs < 1 {
		segs = 1
	}
	losses := sampleBinomial(sim.rng, segs, path.cfg.LossRate)
	if losses > 0 {
		l.stats.LossEvents++
	}
	// Retransmissions extend the transmission of reliable protocols.
	if l.model.reliable() && losses > 0 {
		wireBytes += float64(losses) * mss
	}
	txTime := time.Duration(wireBytes / rate * float64(time.Second))
	if txTime < time.Nanosecond {
		txTime = time.Nanosecond
	}
	l.model.onTransmit(segs, losses, txTime, l.staticCap())

	l.inflight = m
	l.inflightDropped = !l.model.reliable() && losses > 0
	sim.Post(txTime, l.sentEvt)
}

// sent is the transmission-complete event for the lane's inflight message.
// Inflight state is captured before onSent runs: the callback may Send,
// re-entering maybeStart and restocking the lane.
func (l *lane) sent() {
	m, dropped := l.inflight, l.inflightDropped
	l.inflight = nil
	l.busy = false
	if l.onSent != nil {
		l.onSent(m)
	}
	if dropped {
		l.stats.MsgsDropped++
		l.stats.BytesDropped += int64(m.Size)
		if l.onDrop != nil {
			l.onDrop(m)
		}
	} else {
		sim := l.conn.path.sim
		sim.PostArg(l.conn.path.propagationDelay(), l.deliverEvt, m)
	}
	l.maybeStart()
}

// deliver is the far-end arrival event; the message travels through the
// timer node's argument because several may be propagating at once.
func (l *lane) deliver(arg any) {
	m := arg.(*Message)
	sim := l.conn.path.sim
	m.DeliveredAt = time.Unix(0, sim.NowNanos()).UTC()
	l.stats.MsgsDelivered++
	l.stats.BytesDelivered += int64(m.Size)
	if l.onDeliver != nil {
		l.onDeliver(m)
	}
}

// sampleBinomial draws the number of lost segments out of n with
// per-segment probability p.
func sampleBinomial(rng interface{ Float64() float64 }, n int, p float64) int {
	if p <= 0 {
		return 0
	}
	lost := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			lost++
		}
	}
	return lost
}

// DeliverCallback returns the currently installed delivery callback for
// direction d (nil if none). Harness code uses it to chain additional
// observers without disturbing existing accounting.
func (c *Conn) DeliverCallback(d Dir) func(*Message) { return c.lanes[d].onDeliver }
