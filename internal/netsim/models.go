package netsim

import (
	"math"
	"time"
)

// mss is the segment size used for loss sampling and window math.
const mss = 1460.0

// protoModel is the per-lane congestion/rate model of one transport.
type protoModel interface {
	// demand returns the rate in bytes/second the protocol would use if
	// the link were unconstrained.
	demand() float64
	// onTransmit updates protocol state after transmitting a message of
	// segs segments, of which losses were lost, over txTime. rateCap is
	// the lane's static rate bound (policer, buffers, disk, link) —
	// independent of the model's own current rate — so rate-based models
	// can ramp towards it.
	onTransmit(segs, losses int, txTime time.Duration, rateCap float64)
	// reliable reports whether lost segments are retransmitted (messages
	// are never dropped, merely slowed).
	reliable() bool
	// policed reports whether the UDP policer applies.
	policed() bool
}

// --- TCP ---------------------------------------------------------------------

// tcpModel is a byte-granular slow-start/AIMD window model. Rate is
// cwnd/RTT; congestion avoidance adds MSS²/cwnd per acknowledged segment
// (one MSS per RTT), and any loss in a message halves the window once
// (one loss event per delivery round). For steady loss probability p this
// reproduces the Mathis throughput MSS/RTT·√(3/2p), which is the mechanism
// behind the paper's TCP collapse on long paths.
type tcpModel struct {
	rtt       time.Duration
	cwnd      float64 // bytes
	ssthresh  float64 // bytes
	maxWindow float64 // send/receive buffer bound, bytes
}

const (
	tcpInitialWindowSegs = 10
	tcpMinWindowSegs     = 2
	// tcpDefaultMaxWindow models Linux autotuned buffers on the paper's
	// instances.
	tcpDefaultMaxWindow = 8 << 20
)

func newTCPModel(rtt time.Duration) *tcpModel {
	return &tcpModel{
		rtt:       rtt,
		cwnd:      tcpInitialWindowSegs * mss,
		ssthresh:  1 << 20,
		maxWindow: tcpDefaultMaxWindow,
	}
}

var _ protoModel = (*tcpModel)(nil)

func (m *tcpModel) demand() float64 {
	return m.cwnd / m.rtt.Seconds()
}

func (m *tcpModel) onTransmit(segs, losses int, _ time.Duration, _ float64) {
	if losses > 0 {
		m.ssthresh = math.Max(m.cwnd/2, tcpMinWindowSegs*mss)
		m.cwnd = m.ssthresh
		return
	}
	acked := float64(segs) * mss
	if m.cwnd < m.ssthresh {
		m.cwnd += acked // slow start: one MSS per ACK
	} else {
		m.cwnd += acked * mss / m.cwnd // congestion avoidance
	}
	if m.cwnd > m.maxWindow {
		m.cwnd = m.maxWindow
	}
}

func (m *tcpModel) reliable() bool { return true }
func (m *tcpModel) policed() bool  { return false }

// --- UDT ---------------------------------------------------------------------

// udtModel is a DAIMD rate-based model: the sending rate ramps towards the
// effective cap with a fixed acceleration and decreases multiplicatively
// by 1/9 on loss (UDT's NAK response). Because the decrease is gentle and
// the increase is delay-independent, UDT holds its rate on long fat paths
// where TCP collapses — at the price of being clamped by the UDP policer.
type udtModel struct {
	rate float64 // bytes/s
	ramp float64 // bytes/s per second
}

const (
	udtInitialRate = 1 << 20 // 1 MB/s
	udtMinRate     = 64 << 10
	// udtDefaultRamp reaches the 10 MB/s policer in well under a second,
	// leaving only the short "ramp up time" the paper reports for DATA.
	udtDefaultRamp = 20 << 20
)

func newUDTModel() *udtModel {
	return &udtModel{rate: udtInitialRate, ramp: udtDefaultRamp}
}

var _ protoModel = (*udtModel)(nil)

func (m *udtModel) demand() float64 { return m.rate }

func (m *udtModel) onTransmit(_, losses int, txTime time.Duration, rateCap float64) {
	if losses > 0 {
		m.rate = math.Max(m.rate*8/9, udtMinRate)
		return
	}
	m.rate += m.ramp * txTime.Seconds()
	// Probe slightly beyond the cap so the policer keeps the flow honest,
	// but do not run away unboundedly.
	limit := rateCap * 1.05
	if rateCap > 0 && m.rate > limit {
		m.rate = limit
	}
}

func (m *udtModel) reliable() bool { return true }
func (m *udtModel) policed() bool  { return true }

// --- UDP ---------------------------------------------------------------------

// udpModel sends as fast as the effective cap allows with no congestion
// control and no retransmission: any segment loss drops the whole message
// (at-most-once semantics).
type udpModel struct{}

var _ protoModel = udpModel{}

func (udpModel) demand() float64 { return math.MaxFloat64 }

func (udpModel) onTransmit(int, int, time.Duration, float64) {}

func (udpModel) reliable() bool { return false }
func (udpModel) policed() bool  { return true }
