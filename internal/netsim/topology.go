package netsim

import (
	"fmt"

	"github.com/kompics/kompicsmessaging-go/internal/core"
)

// topology.go builds the host-level connection graphs campaigns run over.
// Hosts are numbered 0..H-1; logical endpoints (vnodes) are assigned to
// hosts by id mod H, so with E a multiple of H every host carries E/H
// vnodes. Each host-graph edge gets its own Path — with a DC profile drawn
// round-robin from the paper's four geographic setups — and one duplex TCP
// Conn.

type topoKind int

const (
	topoGossip topoKind = iota // k-regular circulant: h → h+1 .. h+k (mod H)
	topoStar                   // hub host 0, spokes 1..H-1; two-hop via hub
	topoTree                   // rooted at 0, parent(h) = (h-1)/fanout
)

type topology struct {
	kind   topoKind
	hosts  int
	degree int // gossip: forward offsets 1..degree
	fanout int // tree
	// conns layout:
	//   gossip: conns[h*degree+j] joins h (A) to (h+j+1) mod hosts (B)
	//   star:   conns[h-1] joins hub 0 (A) to spoke h (B), h >= 1
	//   tree:   conns[h-1] joins parent(h) (A) to h (B), h >= 1
	conns []*Conn
}

func buildTopology(sim *Sim, kind topoKind, hosts, degree, fanout int) *topology {
	t := &topology{kind: kind, hosts: hosts, degree: degree, fanout: fanout}
	profiles := Setups()
	edge := 0
	newConn := func(pick int) *Conn {
		p := sim.NewPath(profiles[pick%len(profiles)])
		return p.NewConn(core.TCP)
	}
	switch kind {
	case topoGossip:
		t.conns = make([]*Conn, hosts*degree)
		for h := 0; h < hosts; h++ {
			for j := 0; j < degree; j++ {
				t.conns[h*degree+j] = newConn(edge)
				edge++
			}
		}
	case topoStar, topoTree:
		t.conns = make([]*Conn, hosts-1)
		for h := 1; h < hosts; h++ {
			t.conns[h-1] = newConn(edge)
			edge++
		}
	default:
		panic(fmt.Sprintf("netsim: unknown topology kind %d", kind))
	}
	return t
}

// parent returns a tree host's parent.
func (t *topology) parent(h int) int { return (h - 1) / t.fanout }

// next returns the connection, direction, and receiving host for the next
// hop from host `from` toward host `to`. from != to; gossip callers route
// only to adjacent hosts (the offset they drew).
func (t *topology) next(from, to int) (*Conn, Dir, int) {
	switch t.kind {
	case topoGossip:
		off := to - from
		if off < 0 {
			off += t.hosts
		}
		if off < 1 || off > t.degree {
			panic(fmt.Sprintf("netsim: gossip hop %d->%d is not an edge", from, to))
		}
		return t.conns[from*t.degree+off-1], AtoB, to
	case topoStar:
		if from == 0 {
			return t.conns[to-1], AtoB, to
		}
		return t.conns[from-1], BtoA, 0
	case topoTree:
		// Ancestor indices strictly decrease toward the root, so walking
		// `to` upward either lands on `from` (descend to that child) or
		// passes it (ascend to parent).
		c := to
		for c > from {
			p := t.parent(c)
			if p == from {
				return t.conns[c-1], AtoB, c
			}
			c = p
		}
		return t.conns[from-1], BtoA, t.parent(from)
	default:
		panic("netsim: unknown topology kind")
	}
}

// eachLane calls fn for every (conn, dir, receiving host) lane endpoint in
// the topology, used to install delivery callbacks.
func (t *topology) eachLane(fn func(c *Conn, d Dir, recvHost int)) {
	switch t.kind {
	case topoGossip:
		for h := 0; h < t.hosts; h++ {
			for j := 0; j < t.degree; j++ {
				c := t.conns[h*t.degree+j]
				fn(c, AtoB, (h+j+1)%t.hosts)
				fn(c, BtoA, h)
			}
		}
	case topoStar:
		for h := 1; h < t.hosts; h++ {
			fn(t.conns[h-1], AtoB, h)
			fn(t.conns[h-1], BtoA, 0)
		}
	case topoTree:
		for h := 1; h < t.hosts; h++ {
			fn(t.conns[h-1], AtoB, h)
			fn(t.conns[h-1], BtoA, t.parent(h))
		}
	}
}
