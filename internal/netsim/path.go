package netsim

import (
	"fmt"
	"time"
)

// PathConfig describes one network path between two hosts, calibrated to
// the paper's four experimental setups.
type PathConfig struct {
	// Name labels the setup (e.g. "EU2US").
	Name string
	// RTT is the base round-trip propagation time.
	RTT time.Duration
	// LinkRate is the per-direction link capacity in bytes/second.
	LinkRate float64
	// LossRate is the independent per-segment loss probability.
	LossRate float64
	// UDPPolicerRate caps UDP-carried traffic (UDT and raw UDP) per lane,
	// in bytes/second; 0 disables the policer. Models Amazon's ~10 MB/s
	// UDP rate limit.
	UDPPolicerRate float64
	// DiskRate caps disk-bound flows in bytes/second; 0 disables. Models
	// the SSD bound that dominates the Local setup.
	DiskRate float64
	// AppRate caps any single flow at the middleware's serialisation
	// throughput in bytes/second; 0 disables. The paper measured
	// ~150 MB/s memory-to-memory.
	AppRate float64
	// UDTMaxRate caps UDT flows in bytes/second independent of the
	// policer; 0 disables. Models UDT's internal queue/buffer bound
	// observed on loopback.
	UDTMaxRate float64
}

// Validate reports configuration errors.
func (c PathConfig) Validate() error {
	if c.RTT < 0 {
		return fmt.Errorf("netsim: path %q: negative RTT", c.Name)
	}
	if c.LinkRate <= 0 {
		return fmt.Errorf("netsim: path %q: LinkRate must be positive", c.Name)
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("netsim: path %q: LossRate must be in [0,1)", c.Name)
	}
	return nil
}

// Dir selects one direction of a duplex path.
type Dir int

// Path directions: AtoB is the "forward" direction (sender to receiver in
// the transfer experiments).
const (
	AtoB Dir = iota
	BtoA
)

// Reverse returns the opposite direction.
func (d Dir) Reverse() Dir {
	if d == AtoB {
		return BtoA
	}
	return AtoB
}

// String implements fmt.Stringer.
func (d Dir) String() string {
	if d == AtoB {
		return "A→B"
	}
	return "B→A"
}

// Path is a duplex network path between two hosts. Connections are created
// on a path and share its per-direction link capacity.
type Path struct {
	sim *Sim
	cfg PathConfig

	lanes [2][]*lane // active lanes per direction, for capacity sharing
}

// NewPath creates a path from cfg; invalid configurations panic, as they
// are experiment-definition bugs.
func (s *Sim) NewPath(cfg PathConfig) *Path {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Path{sim: s, cfg: cfg}
}

// Config returns the path's configuration.
func (p *Path) Config() PathConfig { return p.cfg }

// SetConfig changes the path's properties mid-simulation — RTT, loss,
// rate caps — modelling changing network conditions (route flaps,
// congestion onset, policer changes). Existing connections keep their
// protocol state and experience the new environment from the next
// transmission on; invalid configurations panic like NewPath.
func (p *Path) SetConfig(cfg PathConfig) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p.cfg = cfg
}

// modelRTT returns the RTT used for window/rate math, with a floor so that
// loopback (RTT ≈ 0) does not yield unbounded window-based rates.
func (p *Path) modelRTT() time.Duration {
	const floor = 100 * time.Microsecond
	if p.cfg.RTT < floor {
		return floor
	}
	return p.cfg.RTT
}

// propagationDelay is the one-way latency.
func (p *Path) propagationDelay() time.Duration { return p.cfg.RTT / 2 }

func (p *Path) register(l *lane) {
	p.lanes[l.dir] = append(p.lanes[l.dir], l)
}

func (p *Path) unregister(l *lane) {
	ls := p.lanes[l.dir]
	for i, x := range ls {
		if x == l {
			p.lanes[l.dir] = append(ls[:i], ls[i+1:]...)
			return
		}
	}
}

// shareLink returns the capacity share available to lane l: the
// direction's LinkRate is split proportionally to capped demand among
// active lanes, and disk-bound lanes additionally share the DiskRate
// (there is one disk, however many connections read from it).
func (p *Path) shareLink(l *lane) float64 {
	demand := l.cappedDemand()
	if demand <= 0 {
		return 0
	}
	total := 0.0
	diskTotal := 0.0
	for _, x := range p.lanes[l.dir] {
		if x == l || x.active() {
			d := x.cappedDemand()
			total += d
			if x.diskBound {
				diskTotal += d
			}
		}
	}
	if total > p.cfg.LinkRate {
		demand *= p.cfg.LinkRate / total
		diskTotal *= p.cfg.LinkRate / total
	}
	if l.diskBound && p.cfg.DiskRate > 0 && diskTotal > p.cfg.DiskRate {
		demand *= p.cfg.DiskRate / diskTotal
	}
	return demand
}
