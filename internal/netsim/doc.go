// Package netsim is a deterministic discrete-event network simulator that
// stands in for the paper's Amazon EC2 testbed (§V-A, figure 7).
//
// The original evaluation ran pairs of c3.2xlarge instances in four
// geographic setups — Local (loopback), EU-VPC (same datacentre, ~3 ms
// RTT), EU2US (Ireland↔N. California, ~155 ms) and EU2AU (Ireland↔Sydney,
// ~320 ms) — and observed three dominant mechanisms:
//
//   - TCP throughput collapses on high bandwidth-delay-product paths with
//     non-zero loss (AIMD: rate ≈ MSS/RTT · √(3/2p), Mathis et al.);
//   - Amazon rate-limits UDP traffic to roughly 10 MB/s, which caps UDT
//     (and raw UDP) consistently across all real-network setups;
//   - latency-sensitive control messages queue behind bulk data when both
//     share a transport connection.
//
// netsim models exactly these mechanisms: paths with propagation delay,
// per-direction link rates, per-segment random loss, a UDP policer, and
// disk/serialisation rate caps; connections with FIFO send lanes; and
// per-protocol congestion models (TCP slow-start/AIMD, UDT DAIMD rate
// control, raw UDP). Messages — not packets — are the unit of event
// processing, with loss sampled per 1460-byte segment, which keeps a
// 395 MB transfer cheap to simulate while reproducing AIMD dynamics.
//
// Time is virtual (clock.Virtual), so a 120-second learner experiment runs
// in milliseconds and is bit-for-bit reproducible for a given seed.
package netsim
