package netsim

// msgRing is a FIFO of *Message backed by a power-of-two circular buffer.
// It replaces the `queue = queue[1:]` slice idiom the lanes used to use,
// which pinned the backing array's consumed prefix (the popped slots stay
// reachable from the slice header, so delivered messages could not be
// collected or recycled until the whole array was abandoned) and forced a
// fresh allocation every time append caught up with the advancing offset.
// The ring reuses its slots forever; steady-state push/pop performs no
// allocation at any queue depth the lane has already seen.
type msgRing struct {
	buf  []*Message
	head int
	n    int
}

// push appends m at the tail, growing the buffer when full.
func (r *msgRing) push(m *Message) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = m
	r.n++
}

// pop removes and returns the head message, or nil when empty. The vacated
// slot is cleared so the ring never keeps a popped message alive.
func (r *msgRing) pop() *Message {
	if r.n == 0 {
		return nil
	}
	m := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return m
}

// len reports the number of queued messages.
func (r *msgRing) len() int { return r.n }

// reset discards all queued messages and clears their slots.
func (r *msgRing) reset() {
	for i := range r.buf {
		r.buf[i] = nil
	}
	r.head, r.n = 0, 0
}

func (r *msgRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 16
	}
	next := make([]*Message, size)
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = next, 0
}
