package netsim

import (
	"testing"
	"time"
)

// smallCampaign is the shared small-scale config for determinism tests:
// every process enabled (flash crowd, churn, heartbeats, retransmission
// timeouts) over every topology.
func smallCampaign(topo string, clk string) CampaignConfig {
	return CampaignConfig{
		Endpoints: 600,
		Hosts:     30,
		Topology:  topo,
		Degree:    5,
		Fanout:    3,
		MsgSize:   512,
		Phase:     3 * time.Second,
		Seed:      42,
		Clock:     clk,
		Arrival: ArrivalConfig{
			MeanInterval: 400 * time.Millisecond,
			FlashAt:      time.Second,
			FlashLen:     500 * time.Millisecond,
			FlashFactor:  6,
		},
		Churn:             ChurnConfig{MeanFlipInterval: 50 * time.Millisecond},
		HeartbeatInterval: time.Second,
		RetransTimeout:    1500 * time.Millisecond,
		RecordTrace:       true,
	}
}

// TestCampaignDeterministicAcrossClocks is the end-to-end determinism
// property: the same seeded campaign must produce byte-identical event
// traces — and therefore identical hashes and counters — whether the
// event core is the timer wheel or the binary-heap oracle.
func TestCampaignDeterministicAcrossClocks(t *testing.T) {
	for _, topo := range []string{"gossip", "star", "tree"} {
		wheel := NewCampaign(smallCampaign(topo, "wheel"))
		heap := NewCampaign(smallCampaign(topo, "heap"))
		rw := wheel.RunPhase()
		rh := heap.RunPhase()
		tw, th := wheel.Trace(), heap.Trace()
		if len(tw) != len(th) {
			t.Fatalf("%s: trace lengths differ: wheel %d vs heap %d", topo, len(tw), len(th))
		}
		for i := range tw {
			if tw[i] != th[i] {
				t.Fatalf("%s: traces diverge at event %d:\n  wheel: %s\n  heap:  %s", topo, i, tw[i], th[i])
			}
		}
		if rw != rh {
			t.Fatalf("%s: results differ:\nwheel: %+v\nheap:  %+v", topo, rw, rh)
		}
		if rw.TraceHash == 0 || rw.Sends == 0 || rw.Delivered == 0 {
			t.Fatalf("%s: degenerate campaign: %+v", topo, rw)
		}
	}
}

// TestCampaignDetectorDeterminism extends the cross-clock property to the
// failure-detector process: with per-peer detectors enabled — the
// dominant pure-timer event class at campaign scale — the seeded run must
// still produce identical traces, detector tick counts, and suspicion
// counts on both event cores. Pure cross-core equality, no goldens: the
// detector totals only need to agree and be non-degenerate.
func TestCampaignDetectorDeterminism(t *testing.T) {
	for _, topo := range []string{"gossip", "star"} {
		mk := func(clk string) CampaignConfig {
			cfg := smallCampaign(topo, clk)
			cfg.DetectorFanout = 4
			cfg.DetectorInterval = 200 * time.Millisecond
			return cfg
		}
		wheel := NewCampaign(mk("wheel"))
		heap := NewCampaign(mk("heap"))
		for phase := 1; phase <= 2; phase++ {
			rw := wheel.RunPhase()
			rh := heap.RunPhase()
			if rw != rh {
				t.Fatalf("%s phase %d: results differ:\nwheel: %+v\nheap:  %+v", topo, phase, rw, rh)
			}
			if rw.DetectorTicks == 0 {
				t.Fatalf("%s phase %d: detectors enabled but no detector ticks: %+v", topo, phase, rw)
			}
			// Churn is on, so some probes must observe a down peer.
			if rw.Suspicions == 0 {
				t.Fatalf("%s phase %d: churn active but no suspicions: %+v", topo, phase, rw)
			}
			if rw.Suspicions >= rw.DetectorTicks {
				t.Fatalf("%s phase %d: suspicions %d should be a minority of %d ticks", topo, phase, rw.Suspicions, rw.DetectorTicks)
			}
		}
	}
}

// TestCampaignSeedSensitivity guards against the hash being insensitive:
// different seeds must produce different traces.
func TestCampaignSeedSensitivity(t *testing.T) {
	a := smallCampaign("gossip", "wheel")
	b := a
	b.Seed = 43
	ra := NewCampaign(a).RunPhase()
	rb := NewCampaign(b).RunPhase()
	if ra.TraceHash == rb.TraceHash {
		t.Fatalf("different seeds produced identical trace hashes %#x", ra.TraceHash)
	}
}

// TestCampaignChurnFlashRegression pins exact event counts for a seeded
// churn + flash-crowd campaign. Any change to event ordering, arrival
// draws, routing, or the clock's firing rule shows up here as a count
// drift before it could silently skew benchmark results.
func TestCampaignChurnFlashRegression(t *testing.T) {
	c := NewCampaign(smallCampaign("tree", "wheel"))
	r1 := c.RunPhase()
	r2 := c.RunPhase()
	// Golden values captured from the seeded run; see the determinism test
	// for why these are stable across both event cores.
	assertEq := func(name string, got, want uint64) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	assertEq("phase1.Sends", r1.Sends, 6212)
	assertEq("phase1.Delivered", r1.Delivered, 5960)
	assertEq("phase1.ChurnFlips", r1.ChurnFlips, 63)
	assertEq("phase1.HeartbeatTicks", r1.HeartbeatTicks, 1800)
	assertEq("phase2.Sends", r2.Sends, 3939)
	assertEq("phase2.Delivered", r2.Delivered, 3952)
	if r1.LocalReflects == 0 || r1.ForwardHops == 0 {
		t.Errorf("tree campaign should reflect locally and forward: %+v", r1)
	}
	// The flash window sits inside phase 1 only: phase 1 must out-send a
	// flash-free phase 2 noticeably.
	if r1.Sends <= r2.Sends {
		t.Errorf("flash-crowd phase sent %d <= steady phase %d", r1.Sends, r2.Sends)
	}
}

// TestCampaignChurnDeadLetters checks the churn ↔ mux integration: with
// aggressive churn, some deliveries must land on unbound vnodes and be
// counted as dead-lettered, and flipped-down endpoints must stop sending.
func TestCampaignChurnDeadLetters(t *testing.T) {
	cfg := smallCampaign("gossip", "wheel")
	cfg.Churn.MeanFlipInterval = 5 * time.Millisecond
	cfg.RecordTrace = false
	r := NewCampaign(cfg).RunPhase()
	if r.ChurnFlips == 0 {
		t.Fatal("no churn flips")
	}
	if r.DeliveredDown == 0 {
		t.Fatalf("no dead-lettered deliveries despite %d churn flips", r.ChurnFlips)
	}
	if r.DeliveredDown >= r.Delivered {
		t.Fatalf("dead-letters %d should be a minority of deliveries %d", r.DeliveredDown, r.Delivered)
	}
}

// TestCampaignTimeoutsStopOnDelivery checks the retransmission-timer
// contract: on loss-free fast paths nearly every timeout is cancelled by
// its delivery, so expiries stay rare.
func TestCampaignTimeoutsStopOnDelivery(t *testing.T) {
	cfg := smallCampaign("gossip", "wheel")
	cfg.Churn = ChurnConfig{}
	r := NewCampaign(cfg).RunPhase()
	if r.Timeouts > r.Sends/10 {
		t.Fatalf("timeouts %d out of %d sends — retransmission timers are not being stopped", r.Timeouts, r.Sends)
	}
}

func TestMsgRing(t *testing.T) {
	var r msgRing
	if r.pop() != nil || r.len() != 0 {
		t.Fatal("empty ring misbehaves")
	}
	mk := func(id uint64) *Message { return &Message{ID: id} }
	// Interleave pushes and pops across several wraps and one growth.
	next, want := uint64(0), uint64(0)
	for round := 0; round < 100; round++ {
		for i := 0; i < 7; i++ {
			r.push(mk(next))
			next++
		}
		for i := 0; i < 5; i++ {
			m := r.pop()
			if m == nil || m.ID != want {
				t.Fatalf("pop = %v, want ID %d", m, want)
			}
			want++
		}
	}
	if r.len() != int(next-want) {
		t.Fatalf("len = %d, want %d", r.len(), next-want)
	}
	for m := r.pop(); m != nil; m = r.pop() {
		if m.ID != want {
			t.Fatalf("drain pop ID = %d, want %d", m.ID, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d messages, want %d", want, next)
	}
	r.push(mk(1))
	r.reset()
	if r.len() != 0 || r.pop() != nil {
		t.Fatal("reset did not empty the ring")
	}
	for i := range r.buf {
		if r.buf[i] != nil {
			t.Fatalf("reset left slot %d populated", i)
		}
	}
}
