package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
)

const chunkSize = 65 << 10 // the paper's 65 kB serialisation buffers

// transferRate pushes total bytes through a fresh connection and returns
// the achieved throughput in bytes/second.
func transferRate(t *testing.T, seed int64, cfg PathConfig, proto core.Transport, total int) float64 {
	t.Helper()
	sim := NewSim(seed)
	path := sim.NewPath(cfg)
	conn := path.NewConn(proto, WithDiskBound())
	var delivered int64
	conn.OnDeliver(AtoB, func(m *Message) { delivered += int64(m.Size) })
	var dropped int64
	conn.OnDrop(AtoB, func(m *Message) { dropped += int64(m.Size) })

	for sent := 0; sent < total; sent += chunkSize {
		size := chunkSize
		if total-sent < size {
			size = total - sent
		}
		conn.Send(AtoB, &Message{Size: size, Kind: DataKind})
	}
	done := func() bool { return delivered+dropped >= int64(total) }
	if !sim.RunUntil(done, 24*time.Hour) {
		t.Fatalf("%s/%v: transfer did not finish (delivered %d of %d)",
			cfg.Name, proto, delivered, total)
	}
	return float64(delivered) / sim.Elapsed().Seconds()
}

func TestSetupsValid(t *testing.T) {
	for _, cfg := range append(Setups(), SetupLearner) {
		if err := cfg.Validate(); err != nil {
			t.Errorf("setup %s invalid: %v", cfg.Name, err)
		}
	}
	if len(Setups()) != 4 {
		t.Fatalf("Setups() returned %d entries, want 4", len(Setups()))
	}
}

func TestPathConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  PathConfig
		ok   bool
	}{
		{"valid", PathConfig{Name: "x", LinkRate: 1}, true},
		{"negative rtt", PathConfig{Name: "x", RTT: -1, LinkRate: 1}, false},
		{"zero link", PathConfig{Name: "x"}, false},
		{"loss 1", PathConfig{Name: "x", LinkRate: 1, LossRate: 1}, false},
		{"loss negative", PathConfig{Name: "x", LinkRate: 1, LossRate: -0.1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err == nil) != tt.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestNewPathPanicsOnInvalidConfig(t *testing.T) {
	sim := NewSim(1)
	defer func() {
		if recover() == nil {
			t.Fatal("NewPath accepted an invalid config")
		}
	}()
	sim.NewPath(PathConfig{Name: "bad"})
}

func TestNewConnRejectsNonWireProtocol(t *testing.T) {
	sim := NewSim(1)
	path := sim.NewPath(SetupEUVPC)
	defer func() {
		if recover() == nil {
			t.Fatal("NewConn accepted DATA")
		}
	}()
	path.NewConn(core.DATA)
}

// --- calibration: figure 9 operating points ---------------------------------

func TestTCPDiskLimitedLocally(t *testing.T) {
	rate := transferRate(t, 1, SetupLocal, core.TCP, 100<<20)
	if rate < 90*MBps || rate > 115*MBps {
		t.Fatalf("local TCP rate = %.1f MB/s, want ≈110 (disk-limited)", rate/MBps)
	}
}

func TestTCPFastInVPC(t *testing.T) {
	rate := transferRate(t, 1, SetupEUVPC, core.TCP, 100<<20)
	if rate < 80*MBps || rate > 115*MBps {
		t.Fatalf("VPC TCP rate = %.1f MB/s, want ≈100-110", rate/MBps)
	}
}

func TestTCPCollapsesTranscontinental(t *testing.T) {
	// Mathis: MSS/RTT·√(3/2p) ≈ 1.2 MB/s at 155 ms with p=1e-4.
	rate := transferRate(t, 1, SetupEU2US, core.TCP, 30<<20)
	if rate < 0.3*MBps || rate > 4*MBps {
		t.Fatalf("EU2US TCP rate = %.2f MB/s, want ≈1 (AIMD collapse)", rate/MBps)
	}
	rateAU := transferRate(t, 1, SetupEU2AU, core.TCP, 15<<20)
	if rateAU >= rate {
		t.Fatalf("EU2AU TCP (%.2f MB/s) not slower than EU2US (%.2f MB/s)",
			rateAU/MBps, rate/MBps)
	}
}

func TestUDTPinnedAtPolicerOnRealNetworks(t *testing.T) {
	for _, cfg := range []PathConfig{SetupEUVPC, SetupEU2US, SetupEU2AU} {
		rate := transferRate(t, 1, cfg, core.UDT, 60<<20)
		if rate < 7*MBps || rate > 11*MBps {
			t.Fatalf("%s UDT rate = %.2f MB/s, want ≈10 (policer)", cfg.Name, rate/MBps)
		}
	}
}

func TestUDTBufferLimitedLocally(t *testing.T) {
	rate := transferRate(t, 1, SetupLocal, core.UDT, 200<<20)
	if rate < 24*MBps || rate > 32*MBps {
		t.Fatalf("local UDT rate = %.2f MB/s, want ≈30 (buffer bound)", rate/MBps)
	}
}

func TestUDTBeatsTCPOnLongPaths(t *testing.T) {
	tcp := transferRate(t, 1, SetupEU2AU, core.TCP, 15<<20)
	udt := transferRate(t, 1, SetupEU2AU, core.UDT, 60<<20)
	if udt < 5*tcp {
		t.Fatalf("EU2AU: UDT (%.2f MB/s) not ≫ TCP (%.2f MB/s); paper reports ~an order of magnitude",
			udt/MBps, tcp/MBps)
	}
}

func TestTCPBeatsUDTInVPC(t *testing.T) {
	tcp := transferRate(t, 1, SetupEUVPC, core.TCP, 100<<20)
	udt := transferRate(t, 1, SetupEUVPC, core.UDT, 60<<20)
	if tcp < 5*udt {
		t.Fatalf("VPC: TCP (%.2f MB/s) not ≫ UDT (%.2f MB/s)", tcp/MBps, udt/MBps)
	}
}

// --- UDP ---------------------------------------------------------------------

func TestUDPDropsOnLoss(t *testing.T) {
	cfg := SetupEU2US
	cfg.LossRate = 0.05 // aggressive loss to make drops certain
	sim := NewSim(7)
	path := sim.NewPath(cfg)
	conn := path.NewConn(core.UDP)
	var delivered, dropped int
	conn.OnDeliver(AtoB, func(*Message) { delivered++ })
	conn.OnDrop(AtoB, func(*Message) { dropped++ })
	const n = 200
	for i := 0; i < n; i++ {
		conn.Send(AtoB, &Message{Size: chunkSize, Kind: DataKind})
	}
	sim.RunUntil(func() bool { return delivered+dropped == n }, time.Hour)
	if delivered+dropped != n {
		t.Fatalf("accounted %d messages, want %d", delivered+dropped, n)
	}
	if dropped == 0 {
		t.Fatal("no UDP drops despite 5% segment loss on 45-segment messages")
	}
	st := conn.Stats(AtoB)
	if st.MsgsDropped != dropped || st.MsgsDelivered != delivered {
		t.Fatalf("stats %+v inconsistent with callbacks (%d/%d)", st, delivered, dropped)
	}
}

func TestUDPCappedByPolicer(t *testing.T) {
	rate := transferRate(t, 3, SetupEUVPC, core.UDP, 40<<20)
	if rate > 11*MBps {
		t.Fatalf("UDP rate = %.2f MB/s exceeds the 10 MB/s policer", rate/MBps)
	}
}

// --- latency -------------------------------------------------------------------

// pingRTT measures request/response round trips on a dedicated connection,
// optionally with bulk data occupying the same connection's forward lane.
func pingRTT(t *testing.T, cfg PathConfig, withData bool) time.Duration {
	t.Helper()
	sim := NewSim(11)
	path := sim.NewPath(cfg)
	conn := path.NewConn(core.TCP)

	if withData {
		// Keep ~8 MB of bulk data queued ahead of pings, mimicking the
		// asynchronous file-transfer sender's outstanding window, and let
		// TCP reach AIMD steady state before measuring.
		var refill func()
		refill = func() {
			for conn.QueuedBytes(AtoB) < 8<<20 {
				conn.Send(AtoB, &Message{Size: chunkSize, Kind: DataKind})
			}
			sim.Schedule(10*time.Millisecond, refill)
		}
		refill()
		sim.RunFor(60 * time.Second)
	}

	const pings = 20
	var rtts []time.Duration
	var sentAt time.Time
	conn.OnDeliver(BtoA, func(m *Message) {
		rtts = append(rtts, sim.Now().Sub(sentAt))
		if len(rtts) < pings {
			sendPing(sim, conn, &sentAt)
		}
	})
	conn.OnDeliver(AtoB, func(m *Message) {
		if m.Kind == ControlKind {
			conn.Send(BtoA, &Message{Size: 100, Kind: ControlKind})
		}
	})
	sendPing(sim, conn, &sentAt)
	if !sim.RunUntil(func() bool { return len(rtts) == pings }, time.Hour) {
		t.Fatalf("only %d pings completed", len(rtts))
	}
	var sum time.Duration
	for _, r := range rtts {
		sum += r
	}
	return sum / pings
}

func sendPing(sim *Sim, conn *Conn, sentAt *time.Time) {
	*sentAt = sim.Now()
	conn.Send(AtoB, &Message{Size: 100, Kind: ControlKind})
}

func TestPingRTTMatchesBaseRTTWhenIdle(t *testing.T) {
	got := pingRTT(t, SetupEU2US, false)
	want := SetupEU2US.RTT
	if got < want || got > want+20*time.Millisecond {
		t.Fatalf("idle ping RTT = %v, want ≈%v", got, want)
	}
}

func TestPingRTTInflatedBehindBulkData(t *testing.T) {
	idle := pingRTT(t, SetupEU2US, false)
	busy := pingRTT(t, SetupEU2US, true)
	// The paper reports control latency rising by ~2 orders of magnitude
	// when data shares the TCP connection.
	if busy < 10*idle {
		t.Fatalf("busy ping RTT %v not ≫ idle %v", busy, idle)
	}
}

func TestPingRTTBarelyAffectedOnSeparateConnection(t *testing.T) {
	// Data on its own UDT connection: pings on the TCP connection should
	// stay near base RTT (the two protocols do not interfere much).
	sim := NewSim(13)
	path := sim.NewPath(SetupEU2US)
	pingConn := path.NewConn(core.TCP)
	dataConn := path.NewConn(core.UDT)

	var refill func()
	refill = func() {
		for dataConn.QueuedBytes(AtoB) < 2<<20 {
			dataConn.Send(AtoB, &Message{Size: chunkSize, Kind: DataKind})
		}
		sim.Schedule(10*time.Millisecond, refill)
	}
	refill()

	var rtts []time.Duration
	var sentAt time.Time
	pingConn.OnDeliver(BtoA, func(*Message) {
		rtts = append(rtts, sim.Now().Sub(sentAt))
		if len(rtts) < 20 {
			sentAt = sim.Now()
			pingConn.Send(AtoB, &Message{Size: 100, Kind: ControlKind})
		}
	})
	pingConn.OnDeliver(AtoB, func(*Message) {
		pingConn.Send(BtoA, &Message{Size: 100, Kind: ControlKind})
	})
	sentAt = sim.Now()
	pingConn.Send(AtoB, &Message{Size: 100, Kind: ControlKind})
	if !sim.RunUntil(func() bool { return len(rtts) == 20 }, time.Hour) {
		t.Fatal("pings did not complete")
	}
	var sum time.Duration
	for _, r := range rtts {
		sum += r
	}
	avg := sum / time.Duration(len(rtts))
	if avg > 2*SetupEU2US.RTT {
		t.Fatalf("ping RTT with parallel UDT data = %v, want < 2×%v", avg, SetupEU2US.RTT)
	}
}

// --- sharing, ordering, determinism -------------------------------------------

func TestLinkSharingBetweenFlows(t *testing.T) {
	// Two TCP flows on a clean constrained link should share it roughly
	// evenly and not exceed capacity.
	cfg := PathConfig{
		Name:     "shared",
		RTT:      10 * time.Millisecond,
		LinkRate: 20 * MBps,
	}
	sim := NewSim(5)
	path := sim.NewPath(cfg)
	c1 := path.NewConn(core.TCP)
	c2 := path.NewConn(core.TCP)
	var d1, d2 int64
	c1.OnDeliver(AtoB, func(m *Message) { d1 += int64(m.Size) })
	c2.OnDeliver(AtoB, func(m *Message) { d2 += int64(m.Size) })
	const total = 40 << 20
	for sent := 0; sent < total; sent += chunkSize {
		c1.Send(AtoB, &Message{Size: chunkSize})
		c2.Send(AtoB, &Message{Size: chunkSize})
	}
	sim.RunUntil(func() bool { return d1+d2 >= 2*total }, time.Hour)
	elapsed := sim.Elapsed().Seconds()
	aggregate := float64(d1+d2) / elapsed
	if aggregate > 1.15*cfg.LinkRate {
		t.Fatalf("aggregate rate %.1f MB/s exceeds link %.1f MB/s", aggregate/MBps, cfg.LinkRate/MBps)
	}
	ratio := float64(d1) / float64(d2)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("flow split %0.2f severely unfair", ratio)
	}
}

func TestFIFODeliveryOrder(t *testing.T) {
	sim := NewSim(9)
	path := sim.NewPath(SetupEUVPC)
	conn := path.NewConn(core.TCP)
	var got []uint64
	conn.OnDeliver(AtoB, func(m *Message) { got = append(got, m.ID) })
	const n = 100
	for i := 0; i < n; i++ {
		conn.Send(AtoB, &Message{ID: uint64(i), Size: 1000})
	}
	sim.RunUntil(func() bool { return len(got) == n }, time.Hour)
	for i, id := range got {
		if id != uint64(i) {
			t.Fatalf("delivery %d has ID %d; FIFO violated", i, id)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	r1 := transferRate(t, 42, SetupEU2US, core.TCP, 10<<20)
	r2 := transferRate(t, 42, SetupEU2US, core.TCP, 10<<20)
	if r1 != r2 {
		t.Fatalf("same seed gave different rates: %v vs %v", r1, r2)
	}
	r3 := transferRate(t, 43, SetupEU2US, core.TCP, 10<<20)
	if r1 == r3 {
		t.Log("different seeds gave identical rates (possible but unlikely)")
	}
}

func TestConnCloseStopsTraffic(t *testing.T) {
	sim := NewSim(1)
	path := sim.NewPath(SetupEUVPC)
	conn := path.NewConn(core.TCP)
	var delivered int
	conn.OnDeliver(AtoB, func(*Message) { delivered++ })
	conn.Send(AtoB, &Message{Size: 1000})
	conn.Close()
	conn.Close() // idempotent
	conn.Send(AtoB, &Message{Size: 1000})
	sim.Drain(time.Minute)
	// The first message may complete its in-flight transmission; nothing
	// queued after Close may be delivered.
	if delivered > 1 {
		t.Fatalf("delivered %d messages after close", delivered)
	}
	if conn.QueuedBytes(AtoB) != 0 {
		t.Fatal("queue not cleared on close")
	}
}

func TestMessageTimestamps(t *testing.T) {
	sim := NewSim(1)
	path := sim.NewPath(SetupEU2US)
	conn := path.NewConn(core.TCP)
	var m *Message
	conn.OnDeliver(AtoB, func(d *Message) { m = d })
	conn.Send(AtoB, &Message{Size: 1000})
	sim.RunUntil(func() bool { return m != nil }, time.Hour)
	if !m.DeliveredAt.After(m.EnqueuedAt) {
		t.Fatalf("DeliveredAt %v not after EnqueuedAt %v", m.DeliveredAt, m.EnqueuedAt)
	}
	if lat := m.DeliveredAt.Sub(m.EnqueuedAt); lat < SetupEU2US.RTT/2 {
		t.Fatalf("one-way latency %v below propagation delay", lat)
	}
}

func TestDirHelpers(t *testing.T) {
	if AtoB.Reverse() != BtoA || BtoA.Reverse() != AtoB {
		t.Fatal("Dir.Reverse broken")
	}
	if AtoB.String() == "" || BtoA.String() == "" {
		t.Fatal("Dir.String empty")
	}
}

func TestPropertyReliableConservation(t *testing.T) {
	// Every byte sent over a reliable protocol is delivered exactly once,
	// for arbitrary message size mixes.
	f := func(sizes []uint16, seed int64) bool {
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		sim := NewSim(seed)
		path := sim.NewPath(SetupEU2US)
		conn := path.NewConn(core.UDT)
		var delivered int64
		var count int
		conn.OnDeliver(AtoB, func(m *Message) { delivered += int64(m.Size); count++ })
		var sent int64
		for _, s := range sizes {
			size := int(s)%chunkSize + 1
			sent += int64(size)
			conn.Send(AtoB, &Message{Size: size})
		}
		sim.RunUntil(func() bool { return delivered >= sent }, 24*time.Hour)
		return delivered == sent && count == len(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSimScheduleAndElapsed(t *testing.T) {
	sim := NewSim(1)
	fired := false
	sim.Schedule(5*time.Second, func() { fired = true })
	sim.RunFor(10 * time.Second)
	if !fired {
		t.Fatal("scheduled event did not fire")
	}
	if sim.Elapsed() != 10*time.Second {
		t.Fatalf("Elapsed() = %v, want 10s", sim.Elapsed())
	}
	if sim.Rand() == nil || sim.Clock() == nil {
		t.Fatal("accessors returned nil")
	}
}
