package netsim

import (
	"math/rand"
	"time"
)

// ArrivalConfig shapes each endpoint's send process as a Poisson stream:
// inter-send gaps are exponential with the given mean. A flash crowd can
// be layered on top — inside the window [FlashAt, FlashAt+FlashLen) from
// campaign start, the mean interval is divided by FlashFactor, multiplying
// the aggregate arrival rate the way a thundering-herd event does.
type ArrivalConfig struct {
	// MeanInterval is the mean virtual time between sends per endpoint.
	MeanInterval time.Duration
	// FlashAt is the offset from campaign start at which the flash crowd
	// begins; FlashLen is its duration. FlashLen <= 0 disables the flash.
	FlashAt  time.Duration
	FlashLen time.Duration
	// FlashFactor multiplies the send rate inside the flash window.
	// Values <= 1 disable the flash.
	FlashFactor float64
}

// flashing reports whether the flash window covers the elapsed instant.
func (a ArrivalConfig) flashing(elapsed time.Duration) bool {
	return a.FlashLen > 0 && a.FlashFactor > 1 &&
		elapsed >= a.FlashAt && elapsed < a.FlashAt+a.FlashLen
}

// nextInterval draws the next inter-send gap at the given elapsed time.
// Draws are clamped to 8× the mean so one unlucky tail draw cannot idle an
// endpoint for a whole phase.
func (a ArrivalConfig) nextInterval(rng *rand.Rand, elapsed time.Duration) time.Duration {
	mean := float64(a.MeanInterval)
	if a.flashing(elapsed) {
		mean /= a.FlashFactor
	}
	d := time.Duration(rng.ExpFloat64() * mean)
	if max := time.Duration(8 * mean); d > max {
		d = max
	}
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}

// ChurnConfig drives endpoint membership churn: at exponential intervals
// with the given mean, one uniformly random endpoint flips between up and
// down. Down endpoints keep their arrival timers (they skip sends but stay
// scheduled, like a crashed process whose peers keep probing it) and are
// unbound from their host's vnode mux, so traffic addressed to them falls
// through to the mux's dead-letter handler.
type ChurnConfig struct {
	// MeanFlipInterval is the mean virtual time between flips across the
	// whole campaign. Zero disables churn.
	MeanFlipInterval time.Duration
}

// nextFlip draws the gap until the next churn flip.
func (c ChurnConfig) nextFlip(rng *rand.Rand) time.Duration {
	d := time.Duration(rng.ExpFloat64() * float64(c.MeanFlipInterval))
	if max := 8 * c.MeanFlipInterval; d > max {
		d = max
	}
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}
