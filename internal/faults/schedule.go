package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/clock"
	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// This file is the declarative layer above the Injector: a Schedule
// describes fault campaigns — rolling outages across a peer set, write
// stalls, datagram blackhole windows, flash-reconnect storms — and a
// Runner plans them into a deterministic arm/remove timeline and executes
// it over an injectable clock.Clock.
//
// Determinism is the design center. All randomness (jitter) is drawn at
// plan time from a PRNG seeded by the caller, in a fixed traversal order,
// so the same (schedule, seed) pair always yields the same plan. The
// runtime event log records plan-assigned sequence numbers and offsets,
// never clock readings, so two runs of the same seeded schedule — virtual
// clock or wall clock, regardless of timer interleaving — produce
// byte-identical FormatEvents output. That property is what lets the soak
// harness diff event logs across runs as a reproducibility gate.

// Target names a peer for the event log and lists the destination
// addresses its fault rules match against (a peer reachable over TCP and
// UDT has one dest per listener).
type Target struct {
	Name  string
	Dests []string
}

// Phase is one campaign within a schedule. Implementations plan
// themselves into arm/remove actions; they never touch the injector or
// the clock directly.
type Phase interface {
	// planPhase emits this phase's actions. rng is the schedule's seeded
	// PRNG; implementations must draw from it in a deterministic order.
	planPhase(rng *rand.Rand, p *planner)
}

// RollingOutage takes each target fully down in turn — dials refused,
// stream writes reset, datagrams dropped — holding each outage for
// OutageLen before restoring it and (after Gap) felling the next peer.
// Jitter > 0 shifts each peer's outage start by a seeded random offset in
// [0, Jitter).
type RollingOutage struct {
	Targets   []Target
	Start     time.Duration // offset of the first outage
	OutageLen time.Duration // how long each peer stays down
	Gap       time.Duration // pause between one recovery and the next outage
	Jitter    time.Duration // per-peer start jitter, drawn from the seed
	Rounds    int           // how many passes over the peer set; 0 means 1
}

func (ph RollingOutage) planPhase(rng *rand.Rand, p *planner) {
	rounds := ph.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	at := ph.Start
	for round := 0; round < rounds; round++ {
		for _, tgt := range ph.Targets {
			start := at + jitter(rng, ph.Jitter)
			for _, dest := range tgt.Dests {
				for _, spec := range []Spec{
					{Op: OpDial, Action: Refuse, Dest: dest},
					{Op: OpWrite, Action: Reset, Dest: dest},
					{Op: OpDatagram, Action: Drop, Dest: dest},
				} {
					p.window("rolling-outage", tgt.Name, spec, start, start+ph.OutageLen)
				}
			}
			at = start + ph.OutageLen + ph.Gap
		}
	}
}

// StallWindow parks every stream write towards the targets for Len; the
// window's close releases the stalled writers (the writes then proceed),
// modelling a peer that freezes without dropping its connections.
type StallWindow struct {
	Targets []Target
	Start   time.Duration
	Len     time.Duration
	Jitter  time.Duration
}

func (ph StallWindow) planPhase(rng *rand.Rand, p *planner) {
	for _, tgt := range ph.Targets {
		start := ph.Start + jitter(rng, ph.Jitter)
		for _, dest := range tgt.Dests {
			p.window("stall", tgt.Name, Spec{Op: OpWrite, Action: Stall, Dest: dest},
				start, start+ph.Len)
		}
	}
}

// BlackholeWindow silently drops datagrams towards the targets for Len —
// the classic lossy-network window the UDT reliability layer must ride
// through. Proto narrows the drop to one datagram protocol (0 = all).
type BlackholeWindow struct {
	Targets []Target
	Proto   wire.Transport
	Start   time.Duration
	Len     time.Duration
	Jitter  time.Duration
	// P, when in (0,1), drops probabilistically instead of totally.
	P float64
}

func (ph BlackholeWindow) planPhase(rng *rand.Rand, p *planner) {
	for _, tgt := range ph.Targets {
		start := ph.Start + jitter(rng, ph.Jitter)
		for _, dest := range tgt.Dests {
			p.window("blackhole", tgt.Name,
				Spec{Op: OpDatagram, Action: Drop, Proto: ph.Proto, Dest: dest, P: ph.P},
				start, start+ph.Len)
		}
	}
}

// ReconnectStorm fires Pulses one-shot connection resets at each target,
// Gap apart — the flash-reconnect pattern where a channel bounces
// repeatedly and supervision must re-establish it every time without
// leaking state. Each pulse is a Count-1 Reset rule; the rule is removed
// at the end of its window whether or not a write consumed it.
type ReconnectStorm struct {
	Targets []Target
	Start   time.Duration
	Pulses  int
	Gap     time.Duration
	Jitter  time.Duration
}

func (ph ReconnectStorm) planPhase(rng *rand.Rand, p *planner) {
	pulses := ph.Pulses
	if pulses <= 0 {
		pulses = 1
	}
	for _, tgt := range ph.Targets {
		at := ph.Start + jitter(rng, ph.Jitter)
		for pulse := 0; pulse < pulses; pulse++ {
			for _, dest := range tgt.Dests {
				p.window("reconnect-storm", tgt.Name,
					Spec{Op: OpWrite, Action: Reset, Dest: dest, Count: 1},
					at, at+ph.Gap)
			}
			at += ph.Gap
		}
	}
}

// Schedule is an ordered list of phases. Phases may overlap in time; the
// order only fixes the planning (and therefore jitter-draw) sequence.
type Schedule struct {
	Name   string
	Phases []Phase
}

// NewSchedule returns an empty named schedule.
func NewSchedule(name string) *Schedule { return &Schedule{Name: name} }

// Add appends a phase and returns the schedule for chaining.
func (s *Schedule) Add(ph Phase) *Schedule {
	s.Phases = append(s.Phases, ph)
	return s
}

// EventKind says what the runner did with a rule.
type EventKind int

const (
	// EventArm records a rule being installed into the injector.
	EventArm EventKind = iota + 1
	// EventRemove records a rule being removed (window closed).
	EventRemove
)

func (k EventKind) String() string {
	switch k {
	case EventArm:
		return "arm"
	case EventRemove:
		return "remove"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of the runner's log. Everything in it is assigned at
// plan time — Seq in plan order, At as an offset from schedule start —
// so the log's content is a pure function of (schedule, seed).
type Event struct {
	Seq    int
	At     time.Duration
	Kind   EventKind
	Phase  string
	Target string
	Spec   Spec
}

// String renders one event in the stable format goldens assert on.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s seq=%03d at=%-8s phase=%-16s target=%-8s op=%s action=%s",
		e.Kind, e.Seq, e.At, e.Phase, e.Target, opName(e.Spec.Op), actionName(e.Spec.Action))
	if e.Spec.Dest != "" {
		fmt.Fprintf(&b, " dest=%s", e.Spec.Dest)
	}
	if e.Spec.Proto != 0 {
		fmt.Fprintf(&b, " proto=%v", e.Spec.Proto)
	}
	if e.Spec.P > 0 {
		fmt.Fprintf(&b, " p=%g", e.Spec.P)
	}
	if e.Spec.Count > 0 {
		fmt.Fprintf(&b, " count=%d", e.Spec.Count)
	}
	return b.String()
}

func opName(op Op) string {
	switch op {
	case OpDial:
		return "dial"
	case OpWrite:
		return "write"
	case OpDatagram:
		return "datagram"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

func actionName(a Action) string {
	switch a {
	case Refuse:
		return "refuse"
	case Reset:
		return "reset"
	case Stall:
		return "stall"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// FormatEvents renders events one per line — the golden-log and
// plan-diff format.
func FormatEvents(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// action is one planned injector operation.
type action struct {
	ev     Event
	armSeq int // for removes: the Seq of the arm this clears
}

// planner accumulates actions during phase planning.
type planner struct {
	actions []action
	nextSeq int
}

// window emits the arm/remove pair for one rule's lifetime.
func (p *planner) window(phase, target string, spec Spec, from, to time.Duration) {
	armSeq := p.nextSeq
	p.actions = append(p.actions, action{ev: Event{
		Seq: armSeq, At: from, Kind: EventArm,
		Phase: phase, Target: target, Spec: spec,
	}})
	p.nextSeq++
	p.actions = append(p.actions, action{ev: Event{
		Seq: p.nextSeq, At: to, Kind: EventRemove,
		Phase: phase, Target: target, Spec: spec,
	}, armSeq: armSeq})
	p.nextSeq++
}

// jitter draws a uniform duration in [0, max); zero max draws nothing,
// keeping the PRNG stream identical whether or not a phase uses jitter.
func jitter(rng *rand.Rand, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(max)))
}

// Runner executes a planned schedule against an Injector over a Clock.
// Construct with NewRunner (which does all the planning), then Start. A
// Runner is single-use.
type Runner struct {
	inj  *Injector
	clk  clock.Clock
	plan []action

	mu        sync.Mutex
	started   bool
	stopped   bool
	timers    []clock.Timer
	ruleIDs   map[int]RuleID // arm Seq -> installed rule
	events    []Event
	remaining int
	done      chan struct{}
}

// NewRunner plans the schedule with jitter drawn from seed and returns a
// runner ready to Start. Planning happens entirely here: after NewRunner
// the timeline is fixed, and Plan can render it without running anything.
func NewRunner(s *Schedule, inj *Injector, clk clock.Clock, seed int64) *Runner {
	p := &planner{}
	rng := rand.New(rand.NewSource(seed))
	for _, ph := range s.Phases {
		ph.planPhase(rng, p)
	}
	// Execution order is chronological; Seq breaks ties so simultaneous
	// actions run in plan order on every clock implementation.
	sort.SliceStable(p.actions, func(i, j int) bool {
		if p.actions[i].ev.At != p.actions[j].ev.At {
			return p.actions[i].ev.At < p.actions[j].ev.At
		}
		return p.actions[i].ev.Seq < p.actions[j].ev.Seq
	})
	return &Runner{
		inj: inj, clk: clk, plan: p.actions,
		ruleIDs:   make(map[int]RuleID),
		remaining: len(p.actions),
		done:      make(chan struct{}),
	}
}

// Plan returns the full planned timeline in execution order, before or
// after running. kmsoak's -print-plan and the determinism tests diff
// FormatEvents(Plan()) across seeds.
func (r *Runner) Plan() []Event {
	out := make([]Event, len(r.plan))
	for i, a := range r.plan {
		out[i] = a.ev
	}
	return out
}

// Horizon returns the offset of the last planned action — the minimum
// run duration that lets the schedule complete.
func (r *Runner) Horizon() time.Duration {
	if len(r.plan) == 0 {
		return 0
	}
	return r.plan[len(r.plan)-1].ev.At
}

// Start arms one timer per planned action. Offsets are measured from the
// moment Start is called.
func (r *Runner) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return
	}
	r.started = true
	if len(r.plan) == 0 {
		close(r.done)
		return
	}
	for i := range r.plan {
		a := r.plan[i]
		r.timers = append(r.timers, r.clk.AfterFunc(a.ev.At, func() { r.fire(a) }))
	}
}

// fire executes one action: install or remove the rule, log the event.
func (r *Runner) fire(a action) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return
	}
	switch a.ev.Kind {
	case EventArm:
		r.ruleIDs[a.ev.Seq] = r.inj.Add(a.ev.Spec)
	case EventRemove:
		if id, ok := r.ruleIDs[a.armSeq]; ok {
			r.inj.Remove(id)
			delete(r.ruleIDs, a.armSeq)
		}
	}
	r.events = append(r.events, a.ev)
	r.remaining--
	if r.remaining == 0 {
		close(r.done)
	}
}

// Done is closed once every planned action has executed.
func (r *Runner) Done() <-chan struct{} { return r.done }

// Stop cancels pending timers and removes every rule the runner still
// has armed, releasing any writers stalled on them. Safe to call at any
// point, including after completion.
func (r *Runner) Stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return
	}
	r.stopped = true
	for _, t := range r.timers {
		t.Stop()
	}
	for seq, id := range r.ruleIDs {
		r.inj.Remove(id)
		delete(r.ruleIDs, seq)
	}
	if r.remaining > 0 {
		r.remaining = 0
		close(r.done)
	}
}

// Events returns the executed log in chronological (At, Seq) order. On a
// completed run it equals Plan(); after an early Stop it is the executed
// prefix. Content never depends on clock readings, so identical seeds
// give identical logs.
func (r *Runner) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
