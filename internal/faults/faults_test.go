package faults

import (
	"errors"
	"runtime"
	"testing"

	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

func TestRefuseDialMatchesAndExhausts(t *testing.T) {
	inj := New(1)
	id := inj.Add(Spec{Op: OpDial, Action: Refuse, Proto: wire.TCP, Count: 2})

	if err := inj.Dial(wire.UDP, "a:1"); err != nil {
		t.Fatalf("UDP dial should not match a TCP rule: %v", err)
	}
	for n := 0; n < 2; n++ {
		if err := inj.Dial(wire.TCP, "a:1"); !errors.Is(err, ErrDialRefused) {
			t.Fatalf("dial %d: got %v, want ErrDialRefused", n, err)
		}
	}
	if err := inj.Dial(wire.TCP, "a:1"); err != nil {
		t.Fatalf("rule should be exhausted after 2 hits: %v", err)
	}
	if got := inj.Hits(id); got != 2 {
		t.Fatalf("Hits = %d, want 2", got)
	}
}

func TestDestFilter(t *testing.T) {
	inj := New(1)
	inj.Add(Spec{Op: OpDial, Action: Refuse, Dest: "b:2"})
	if err := inj.Dial(wire.TCP, "a:1"); err != nil {
		t.Fatalf("wrong dest matched: %v", err)
	}
	if err := inj.Dial(wire.TCP, "b:2"); !errors.Is(err, ErrDialRefused) {
		t.Fatalf("got %v, want ErrDialRefused", err)
	}
}

func TestResetWrite(t *testing.T) {
	inj := New(1)
	inj.Add(Spec{Op: OpWrite, Action: Reset})
	if err := inj.Write(wire.TCP, "a:1"); !errors.Is(err, ErrConnReset) {
		t.Fatalf("got %v, want ErrConnReset", err)
	}
}

func TestStallReleasedByRemoveAndClose(t *testing.T) {
	inj := New(1)
	id := inj.Add(Spec{Op: OpWrite, Action: Stall})
	done := make(chan error, 1)
	go func() { done <- inj.Write(wire.TCP, "a:1") }()
	// The writer is parked on the rule; removing it lets the write
	// proceed. (No way to observe "parked" without time — rely on the
	// channel semantics: Remove closes released, the goroutine returns.)
	for inj.Hits(id) == 0 {
		runtime.Gosched() // until the writer has charged its hit, i.e. is parked
	}
	inj.Remove(id)
	if err := <-done; err != nil {
		t.Fatalf("write released by Remove should succeed: %v", err)
	}

	inj.Add(Spec{Op: OpWrite, Action: Stall})
	go func() { done <- inj.Write(wire.TCP, "a:1") }()
	inj.Close()
	if err := <-done; err != nil && !errors.Is(err, ErrInjectorClosed) {
		t.Fatalf("write released by Close: got %v, want ErrInjectorClosed or nil", err)
	}
	if err := inj.Dial(wire.TCP, "a:1"); err != nil {
		t.Fatalf("closed injector must not match: %v", err)
	}
}

func TestDropDatagramProbabilisticIsSeeded(t *testing.T) {
	run := func(seed int64) []bool {
		inj := New(seed)
		inj.Add(Spec{Op: OpDatagram, Action: Drop, P: 0.5})
		out := make([]bool, 64)
		for n := range out {
			out[n] = inj.DropDatagram(wire.UDP, "a:1")
		}
		return out
	}
	a, b := run(7), run(7)
	drops := 0
	for n := range a {
		if a[n] != b[n] {
			t.Fatalf("same seed diverged at roll %d", n)
		}
		if a[n] {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("P=0.5 produced %d/%d drops; expected a mix", drops, len(a))
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if err := inj.Dial(wire.TCP, "a:1"); err != nil {
		t.Fatal(err)
	}
	if err := inj.Write(wire.TCP, "a:1"); err != nil {
		t.Fatal(err)
	}
	if inj.DropDatagram(wire.UDP, "a:1") {
		t.Fatal("nil injector dropped a datagram")
	}
}
