package faults

import (
	"strings"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/clock"
	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

func twoPeers() []Target {
	return []Target{
		{Name: "peer-a", Dests: []string{"127.0.0.1:9001"}},
		{Name: "peer-b", Dests: []string{"127.0.0.1:9002"}},
	}
}

// TestRollingOutagePhaseBoundaries drives a jitter-free rolling outage on
// a virtual clock and checks the injector's rule set flips at exactly the
// planned phase boundaries.
func TestRollingOutagePhaseBoundaries(t *testing.T) {
	inj := New(1)
	vc := clock.NewVirtual()
	s := NewSchedule("boundaries").Add(RollingOutage{
		Targets:   twoPeers(),
		Start:     10 * time.Millisecond,
		OutageLen: 20 * time.Millisecond,
		Gap:       5 * time.Millisecond,
	})
	r := NewRunner(s, inj, vc, 0)
	r.Start()

	dialDown := func(dest string) bool {
		return inj.Dial(wire.TCP, dest) == ErrDialRefused
	}
	a, b := "127.0.0.1:9001", "127.0.0.1:9002"

	if dialDown(a) || dialDown(b) {
		t.Fatal("outage active before schedule start")
	}
	vc.Advance(10 * time.Millisecond) // t=10ms: peer-a down
	if !dialDown(a) {
		t.Fatal("peer-a not down at its outage start")
	}
	if dialDown(b) {
		t.Fatal("peer-b down during peer-a's window")
	}
	if !inj.DropDatagram(wire.UDT, a) {
		t.Fatal("peer-a datagrams not dropped during outage")
	}
	vc.Advance(20 * time.Millisecond) // t=30ms: peer-a restored, gap
	if dialDown(a) {
		t.Fatal("peer-a still down after its window closed")
	}
	if dialDown(b) {
		t.Fatal("peer-b down during the gap")
	}
	vc.Advance(5 * time.Millisecond) // t=35ms: peer-b down
	if !dialDown(b) {
		t.Fatal("peer-b not down at its outage start")
	}
	vc.Advance(20 * time.Millisecond) // t=55ms: all clear, schedule done
	if dialDown(a) || dialDown(b) {
		t.Fatal("outage persists past the schedule horizon")
	}
	select {
	case <-r.Done():
	default:
		t.Fatal("runner not done after the horizon")
	}
	if got, want := r.Horizon(), 55*time.Millisecond; got != want {
		t.Fatalf("Horizon = %v, want %v", got, want)
	}
}

// TestDeterminismAcrossSeeds pins the reproducibility contract: the same
// seed yields a byte-identical plan and executed log; a different seed
// moves the jittered offsets.
func TestDeterminismAcrossSeeds(t *testing.T) {
	build := func() *Schedule {
		return NewSchedule("det").
			Add(RollingOutage{
				Targets: twoPeers(), Start: 5 * time.Millisecond,
				OutageLen: 10 * time.Millisecond, Gap: 2 * time.Millisecond,
				Jitter: 4 * time.Millisecond, Rounds: 2,
			}).
			Add(BlackholeWindow{
				Targets: twoPeers()[:1], Proto: wire.UDT,
				Start: 8 * time.Millisecond, Len: 6 * time.Millisecond,
				Jitter: 3 * time.Millisecond, P: 0.5,
			}).
			Add(ReconnectStorm{
				Targets: twoPeers()[1:], Start: 20 * time.Millisecond,
				Pulses: 3, Gap: 4 * time.Millisecond, Jitter: 2 * time.Millisecond,
			})
	}
	run := func(seed int64) (plan, log string) {
		inj := New(1)
		vc := clock.NewVirtual()
		r := NewRunner(build(), inj, vc, seed)
		plan = FormatEvents(r.Plan())
		r.Start()
		vc.Advance(r.Horizon() + time.Millisecond)
		select {
		case <-r.Done():
		default:
			t.Fatal("runner did not finish within its horizon")
		}
		return plan, FormatEvents(r.Events())
	}
	p1, l1 := run(42)
	p2, l2 := run(42)
	p3, _ := run(43)
	if p1 != p2 {
		t.Errorf("same seed, different plans:\n%s\nvs\n%s", p1, p2)
	}
	if l1 != l2 {
		t.Errorf("same seed, different logs:\n%s\nvs\n%s", l1, l2)
	}
	if l1 != p1 {
		t.Errorf("completed log differs from plan:\n%s\nvs\n%s", l1, p1)
	}
	if p1 == p3 {
		t.Error("different seeds produced identical jittered plans")
	}
}

// TestEventLogGolden pins the exact log format for a small jitter-free
// schedule — the format kmsoak prints and CI diffs.
func TestEventLogGolden(t *testing.T) {
	inj := New(1)
	vc := clock.NewVirtual()
	s := NewSchedule("golden").Add(StallWindow{
		Targets: []Target{{Name: "peer-a", Dests: []string{"10.0.0.1:4000"}}},
		Start:   2 * time.Millisecond,
		Len:     3 * time.Millisecond,
	})
	r := NewRunner(s, inj, vc, 7)
	r.Start()
	vc.Advance(5 * time.Millisecond)
	got := FormatEvents(r.Events())
	want := strings.Join([]string{
		"arm      seq=000 at=2ms      phase=stall            target=peer-a   op=write action=stall dest=10.0.0.1:4000",
		"remove   seq=001 at=5ms      phase=stall            target=peer-a   op=write action=stall dest=10.0.0.1:4000",
		"",
	}, "\n")
	if got != want {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestStallWindowReleasesWriters checks the remove side of a stall window
// actually unblocks a parked writer.
func TestStallWindowReleasesWriters(t *testing.T) {
	inj := New(1)
	vc := clock.NewVirtual()
	dest := "127.0.0.1:7000"
	s := NewSchedule("stall").Add(StallWindow{
		Targets: []Target{{Name: "p", Dests: []string{dest}}},
		Start:   0, Len: 10 * time.Millisecond,
	})
	r := NewRunner(s, inj, vc, 0)
	r.Start()
	vc.Advance(0) // arm the stall
	done := make(chan error, 1)
	go func() { done <- inj.Write(wire.TCP, dest) }()
	select {
	case err := <-done:
		t.Fatalf("write not stalled (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	vc.Advance(10 * time.Millisecond) // window closes, rule removed
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released write failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write still stalled after window close")
	}
}

// TestReconnectStormPulses checks each pulse resets exactly one write.
func TestReconnectStormPulses(t *testing.T) {
	inj := New(1)
	vc := clock.NewVirtual()
	dest := "127.0.0.1:7100"
	s := NewSchedule("storm").Add(ReconnectStorm{
		Targets: []Target{{Name: "p", Dests: []string{dest}}},
		Start:   0, Pulses: 3, Gap: 5 * time.Millisecond,
	})
	r := NewRunner(s, inj, vc, 0)
	r.Start()
	resets := 0
	for i := 0; i < 3; i++ {
		vc.Advance(0)
		if inj.Write(wire.TCP, dest) == ErrConnReset {
			resets++
		}
		if inj.Write(wire.TCP, dest) == ErrConnReset {
			t.Fatalf("pulse %d fired twice (Count=1 not honoured)", i)
		}
		vc.Advance(5 * time.Millisecond)
	}
	if resets != 3 {
		t.Fatalf("resets = %d, want 3", resets)
	}
}

// TestStopCleansUp checks Stop removes armed rules and releases writers
// mid-schedule.
func TestStopCleansUp(t *testing.T) {
	inj := New(1)
	vc := clock.NewVirtual()
	dest := "127.0.0.1:7200"
	s := NewSchedule("stop").Add(RollingOutage{
		Targets:   []Target{{Name: "p", Dests: []string{dest}}},
		Start:     0,
		OutageLen: time.Hour, // never ends on its own
	})
	r := NewRunner(s, inj, vc, 0)
	r.Start()
	vc.Advance(0)
	if inj.Dial(wire.TCP, dest) != ErrDialRefused {
		t.Fatal("outage not armed")
	}
	r.Stop()
	if err := inj.Dial(wire.TCP, dest); err != nil {
		t.Fatalf("rule survived Stop: %v", err)
	}
	select {
	case <-r.Done():
	default:
		t.Fatal("Done not closed by Stop")
	}
	if got := len(r.Events()); got != 3 {
		t.Fatalf("executed events = %d, want 3 (the three arms)", got)
	}
}
