// Package faults provides deterministic, programmable fault injection
// for the wire layer. Tests install an Injector into transport.Config
// (and, through it, into the UDT mux datagram path) and script failures
// — refused dials, reset connections, stalled writes, blackholed
// datagrams — instead of killing real listeners and sleeping.
//
// Rules are matched in insertion order against (operation, protocol,
// destination); a rule may be one-shot (Count=1), bounded (Count=n), or
// probabilistic (P in (0,1), rolled on a PRNG seeded at construction so
// runs replay exactly). The package is part of the simdet deterministic
// cone: it never reads wall-clock time and never touches the network
// itself — stalls release on rule removal, not on timers.
package faults

import (
	"errors"
	"math/rand"
	"net"
	"sync"

	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// Errors returned by injected faults. Transport surfaces them through
// the normal notify path, so tests can assert on the exact failure.
var (
	// ErrDialRefused is returned by Dial when a Refuse rule matches.
	ErrDialRefused = errors.New("faults: dial refused")
	// ErrConnReset is returned by Write when a Reset rule matches; the
	// wrapped connection is closed so the failure is indistinguishable
	// from a real peer reset.
	ErrConnReset = errors.New("faults: connection reset")
	// ErrInjectorClosed is returned to writers released from a stall by
	// Close (as opposed to Remove/Clear, which let the write proceed).
	ErrInjectorClosed = errors.New("faults: injector closed")
)

// Op selects which transport operation a rule intercepts.
type Op int

const (
	// OpDial intercepts outgoing dial/handshake attempts.
	OpDial Op = iota + 1
	// OpWrite intercepts writes on established stream connections.
	OpWrite
	// OpDatagram intercepts individual outgoing datagrams (UDP frames,
	// UDT data packets).
	OpDatagram
)

// Action is what a matching rule does to the operation.
type Action int

const (
	// Refuse fails a dial with ErrDialRefused.
	Refuse Action = iota + 1
	// Reset fails a write with ErrConnReset and closes the connection.
	Reset
	// Stall blocks a write until the rule is removed (write proceeds)
	// or the injector is closed (write fails with ErrInjectorClosed).
	Stall
	// Drop silently discards a datagram ("blackhole").
	Drop
)

// Spec describes one fault rule. Zero values widen the match: Proto 0
// matches any protocol, empty Dest matches any destination, P 0 (or 1)
// fires on every match, Count 0 never exhausts.
type Spec struct {
	Op     Op
	Action Action
	Proto  wire.Transport // 0 = any protocol
	Dest   string         // "" = any destination
	P      float64        // trigger probability; 0 means always
	Count  int            // max times the rule fires; 0 = unlimited
}

// RuleID identifies an installed rule for Remove/Hits.
type RuleID uint64

type rule struct {
	id   RuleID
	spec Spec
	hits int
	// released is closed when the rule is removed; stalled writers wait
	// on it. closedInjector distinguishes Close (fail the write) from
	// Remove/Clear (let it proceed).
	released chan struct{}
}

// Injector holds the active rule set. All methods are safe for
// concurrent use; the zero value is not valid — use New.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	nextID RuleID
	rules  []*rule
	closed bool
}

// New returns an empty injector whose probabilistic rolls are driven by
// a private PRNG seeded with seed, so a given rule script replays the
// same fault sequence every run.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), nextID: 1}
}

// Add installs a rule and returns its id. Rules are consulted in
// insertion order; the first live match wins.
func (i *Injector) Add(s Spec) RuleID {
	i.mu.Lock()
	defer i.mu.Unlock()
	id := i.nextID
	i.nextID++
	i.rules = append(i.rules, &rule{id: id, spec: s, released: make(chan struct{})})
	return id
}

// Remove deletes a rule, releasing any writer stalled on it.
func (i *Injector) Remove(id RuleID) {
	i.mu.Lock()
	defer i.mu.Unlock()
	for idx, r := range i.rules {
		if r.id == id {
			close(r.released)
			i.rules = append(i.rules[:idx], i.rules[idx+1:]...)
			return
		}
	}
}

// Clear deletes every rule, releasing all stalled writers.
func (i *Injector) Clear() {
	i.mu.Lock()
	defer i.mu.Unlock()
	for _, r := range i.rules {
		close(r.released)
	}
	i.rules = nil
}

// Close clears the rule set and marks the injector closed; writers
// stalled at the time fail with ErrInjectorClosed, and no rule matches
// afterwards.
func (i *Injector) Close() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.closed = true
	for _, r := range i.rules {
		close(r.released)
	}
	i.rules = nil
}

// Hits reports how many times the rule has fired (0 if unknown).
func (i *Injector) Hits(id RuleID) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	for _, r := range i.rules {
		if r.id == id {
			return r.hits
		}
	}
	return 0
}

// match finds the first live rule for (op, proto, dest), rolls its
// probability, and charges a hit. Exhausted rules are skipped but left
// in place so Hits keeps reporting their final count.
func (i *Injector) match(op Op, proto wire.Transport, dest string) *rule {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.closed {
		return nil
	}
	for _, r := range i.rules {
		s := r.spec
		if s.Op != op {
			continue
		}
		if s.Proto != 0 && s.Proto != proto {
			continue
		}
		if s.Dest != "" && s.Dest != dest {
			continue
		}
		if s.Count > 0 && r.hits >= s.Count {
			continue
		}
		if s.P > 0 && s.P < 1 && i.rng.Float64() >= s.P {
			continue
		}
		r.hits++
		return r
	}
	return nil
}

// Dial is the transport dial seam: a matching Refuse rule fails the
// attempt with ErrDialRefused.
func (i *Injector) Dial(proto wire.Transport, dest string) error {
	if i == nil {
		return nil
	}
	if r := i.match(OpDial, proto, dest); r != nil && r.spec.Action == Refuse {
		return ErrDialRefused
	}
	return nil
}

// Write is the stream-write seam. Reset fails immediately; Stall parks
// the caller until the rule is removed (nil) or the injector is closed
// (ErrInjectorClosed).
func (i *Injector) Write(proto wire.Transport, dest string) error {
	if i == nil {
		return nil
	}
	r := i.match(OpWrite, proto, dest)
	if r == nil {
		return nil
	}
	switch r.spec.Action {
	case Reset:
		return ErrConnReset
	case Stall:
		<-r.released
		i.mu.Lock()
		closed := i.closed
		i.mu.Unlock()
		if closed {
			return ErrInjectorClosed
		}
	}
	return nil
}

// DropDatagram is the datagram seam: true means the packet should
// vanish on the wire.
func (i *Injector) DropDatagram(proto wire.Transport, dest string) bool {
	if i == nil {
		return false
	}
	r := i.match(OpDatagram, proto, dest)
	return r != nil && r.spec.Action == Drop
}

// WrapConn installs the injector's write seam on an established stream
// connection. A Reset rule closes the underlying connection and fails
// the write; a Stall rule blocks it until released. Read-side traffic
// is untouched.
func (i *Injector) WrapConn(conn net.Conn, proto wire.Transport, dest string) net.Conn {
	if i == nil {
		return conn
	}
	return &faultConn{Conn: conn, inj: i, proto: proto, dest: dest}
}

type faultConn struct {
	net.Conn
	inj   *Injector
	proto wire.Transport
	dest  string
}

func (f *faultConn) Write(b []byte) (int, error) {
	if err := f.inj.Write(f.proto, f.dest); err != nil {
		f.Conn.Close()
		return 0, err
	}
	return f.Conn.Write(b)
}
