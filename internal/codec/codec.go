// Package codec is the serialisation substrate of the middleware: a
// registry of message serialisers keyed by a compact wire identifier, a
// small binary primitive layer, length-prefixed framing for stream
// transports, and a pluggable compression stage.
//
// It mirrors the role Netty's codec pipeline plays for the JVM
// implementation (§V-A of the paper): every network message is encoded as
//
//	[uvarint serialiser id][serialiser-specific payload]
//
// optionally wrapped by a compressor, and on stream transports wrapped in a
// 32-bit big-endian length frame.
package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sync"
)

// SerializerID identifies a serialiser on the wire.
type SerializerID uint16

// Serializer converts values of one or more registered Go types to and
// from bytes. Implementations must be safe for concurrent use.
type Serializer interface {
	// ID returns the serialiser's wire identifier.
	ID() SerializerID
	// Serialize appends the wire form of v to w.
	Serialize(w io.Writer, v interface{}) error
	// Deserialize reconstructs a value from r.
	Deserialize(r io.Reader) (interface{}, error)
}

// Registry maps wire identifiers and Go types to serialisers. The zero
// value is ready to use. Registration is expected at setup time; lookups
// are safe for concurrent use with registrations.
type Registry struct {
	mu      sync.RWMutex
	byID    map[SerializerID]Serializer
	byType  map[reflect.Type]Serializer
	nameMap map[string]SerializerID
}

// Errors returned by the registry and the encode/decode helpers.
var (
	ErrDuplicateID      = errors.New("codec: serializer id already registered")
	ErrDuplicateType    = errors.New("codec: type already bound to a serializer")
	ErrUnknownType      = errors.New("codec: no serializer registered for type")
	ErrUnknownID        = errors.New("codec: no serializer registered for id")
	ErrFrameTooLarge    = errors.New("codec: frame exceeds maximum size")
	ErrInvalidFrame     = errors.New("codec: invalid frame")
	ErrValueOutOfBounds = errors.New("codec: length prefix out of bounds")
)

// Register binds a serialiser and the Go types it handles. Passing a type
// twice or reusing an ID is a setup bug and returns an error.
func (r *Registry) Register(s Serializer, prototypes ...interface{}) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byID == nil {
		r.byID = make(map[SerializerID]Serializer)
		r.byType = make(map[reflect.Type]Serializer)
	}
	if existing, ok := r.byID[s.ID()]; ok && existing != s {
		return fmt.Errorf("%w: %d", ErrDuplicateID, s.ID())
	}
	r.byID[s.ID()] = s
	for _, p := range prototypes {
		t := reflect.TypeOf(p)
		if t == nil {
			return errors.New("codec: cannot register untyped nil prototype")
		}
		if _, ok := r.byType[t]; ok {
			return fmt.Errorf("%w: %v", ErrDuplicateType, t)
		}
		r.byType[t] = s
	}
	return nil
}

// MustRegister is Register that panics on error, for wiring code.
func (r *Registry) MustRegister(s Serializer, prototypes ...interface{}) {
	if err := r.Register(s, prototypes...); err != nil {
		panic(err)
	}
}

// ByID looks a serialiser up by wire identifier.
func (r *Registry) ByID(id SerializerID) (Serializer, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byID[id]
	return s, ok
}

// ByValue looks a serialiser up for a concrete value.
func (r *Registry) ByValue(v interface{}) (Serializer, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byType[reflect.TypeOf(v)]
	return s, ok
}

// Encode writes [uvarint id][payload] for v using its registered
// serialiser.
func (r *Registry) Encode(w io.Writer, v interface{}) error {
	s, ok := r.ByValue(v)
	if !ok {
		return fmt.Errorf("%w: %T", ErrUnknownType, v)
	}
	if err := WriteUvarint(w, uint64(s.ID())); err != nil {
		return err
	}
	return s.Serialize(w, v)
}

// Decode reads a value previously written by Encode.
func (r *Registry) Decode(rd io.Reader) (interface{}, error) {
	id, err := ReadUvarint(rd)
	if err != nil {
		return nil, err
	}
	if id > uint64(^SerializerID(0)) {
		return nil, fmt.Errorf("%w: serializer id %d", ErrValueOutOfBounds, id)
	}
	s, ok := r.ByID(SerializerID(id))
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownID, id)
	}
	return s.Deserialize(rd)
}

// --- binary primitives ------------------------------------------------------
//
// The primitives below stage their wire bytes in small stack arrays. Those
// arrays must never be passed across an io.Writer/io.Reader interface call:
// escape analysis is not flow-sensitive, so a single interface use would
// heap-allocate the array on *every* call, including the hot encode/decode
// path that only ever sees *bytes.Buffer and *bytes.Reader. writeSmall and
// readSmall keep the concrete cases allocation-free and confine the
// unavoidable heap copy to the generic io.Writer/io.Reader branch.

// writeSmall writes a short primitive encoding. p is only ever handed to
// concrete methods that do not retain it, so the caller's stack buffer does
// not escape; the generic branch copies into a fresh array whose heap
// allocation is only reached for non-buffer writers.
func writeSmall(w io.Writer, p []byte) error {
	if bb, ok := w.(*bytes.Buffer); ok {
		bb.Write(p)
		return nil
	}
	var a [binary.MaxVarintLen64]byte
	n := copy(a[:], p)
	_, err := w.Write(a[:n])
	return err
}

// readSmall fills p exactly, with io.ReadFull's error convention: io.EOF on
// a clean end before any byte, io.ErrUnexpectedEOF on a partial fill. The
// concrete cases read directly so p never escapes.
func readSmall(r io.Reader, p []byte) error {
	switch cr := r.(type) {
	case *bytes.Reader:
		n, _ := cr.Read(p)
		return fullReadErr(n, len(p))
	case *bytes.Buffer:
		n, _ := cr.Read(p)
		return fullReadErr(n, len(p))
	}
	a, err := readSmallSlow(r, len(p))
	copy(p, a[:])
	return err
}

// fullReadErr maps a single concrete Read's count to io.ReadFull semantics.
// Valid because bytes.Reader and bytes.Buffer return min(len(p), remaining)
// in one call: a short count can only mean the stream ended.
func fullReadErr(n, want int) error {
	switch {
	case n == want:
		return nil
	case n == 0:
		return io.EOF
	default:
		return io.ErrUnexpectedEOF
	}
}

// readSmallSlow services readSmall's generic branch. Its array escapes
// through the interface call, but the allocation happens only when this
// function — not the fast path — actually runs.
func readSmallSlow(r io.Reader, n int) ([8]byte, error) {
	var a [8]byte
	_, err := io.ReadFull(r, a[:n])
	return a, err
}

// WriteUvarint writes v in unsigned varint encoding.
func WriteUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return writeSmall(w, buf[:n])
}

// ReadUvarint reads an unsigned varint.
func ReadUvarint(r io.Reader) (uint64, error) {
	br, ok := r.(io.ByteReader)
	if ok {
		return binary.ReadUvarint(br)
	}
	return binary.ReadUvarint(singleByteReader{r})
}

type singleByteReader struct{ r io.Reader }

func (s singleByteReader) ReadByte() (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(s.r, b[:])
	return b[0], err
}

// WriteVarint writes v in signed (zig-zag) varint encoding.
func WriteVarint(w io.Writer, v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	return writeSmall(w, buf[:n])
}

// ReadVarint reads a signed varint.
func ReadVarint(r io.Reader) (int64, error) {
	u, err := ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v, nil
}

// WriteUint16 writes a big-endian uint16.
func WriteUint16(w io.Writer, v uint16) error {
	var buf [2]byte
	binary.BigEndian.PutUint16(buf[:], v)
	return writeSmall(w, buf[:])
}

// ReadUint16 reads a big-endian uint16.
func ReadUint16(r io.Reader) (uint16, error) {
	var buf [2]byte
	if err := readSmall(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(buf[:]), nil
}

// WriteUint32 writes a big-endian uint32.
func WriteUint32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], v)
	return writeSmall(w, buf[:])
}

// ReadUint32 reads a big-endian uint32.
func ReadUint32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if err := readSmall(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(buf[:]), nil
}

// WriteUint64 writes a big-endian uint64.
func WriteUint64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return writeSmall(w, buf[:])
}

// ReadUint64 reads a big-endian uint64.
func ReadUint64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if err := readSmall(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(buf[:]), nil
}

// WriteBool writes a single 0/1 byte.
func WriteBool(w io.Writer, v bool) error {
	b := [1]byte{0}
	if v {
		b[0] = 1
	}
	return writeSmall(w, b[:])
}

// ReadBool reads a single 0/1 byte; any nonzero value is true.
func ReadBool(r io.Reader) (bool, error) {
	var b [1]byte
	if err := readSmall(r, b[:]); err != nil {
		return false, err
	}
	return b[0] != 0, nil
}

// maxChunk bounds length prefixes read from the wire, protecting against
// hostile or corrupt frames.
const maxChunk = 1 << 30

// WriteBytes writes a uvarint length prefix followed by b.
func WriteBytes(w io.Writer, b []byte) error {
	if err := WriteUvarint(w, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// ReadBytes reads a length-prefixed byte slice.
func ReadBytes(r io.Reader) ([]byte, error) {
	n, err := ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxChunk {
		return nil, fmt.Errorf("%w: %d bytes", ErrValueOutOfBounds, n)
	}
	b := make([]byte, int(n))
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// WriteString writes a length-prefixed UTF-8 string.
func WriteString(w io.Writer, s string) error {
	if err := WriteUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// ReadString reads a length-prefixed UTF-8 string.
func ReadString(r io.Reader) (string, error) {
	b, err := ReadBytes(r)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
