package codec

import (
	"bytes"
	"io"
	"testing"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
)

// TestReadFrameTruncatedHeader pins the stream-end error mapping: a clean
// end between frames is io.EOF, any truncation — mid-header or mid-payload
// — is io.ErrUnexpectedEOF.
func TestReadFrameTruncatedHeader(t *testing.T) {
	var full bytes.Buffer
	if err := WriteFrame(&full, []byte("payload"), 0); err != nil {
		t.Fatal(err)
	}
	frame := full.Bytes()
	for cut := 0; cut < len(frame); cut++ {
		_, err := ReadFrame(bytes.NewReader(frame[:cut]), 0)
		want := io.ErrUnexpectedEOF
		if cut == 0 {
			want = io.EOF // clean end before any header byte
		}
		if err != want {
			t.Errorf("cut at %d bytes: err = %v, want %v", cut, err, want)
		}
	}
}

// TestReadFramePooledOwnership verifies the documented contract: the
// returned buffer came from bufpool and a full read/Put cycle leaks
// nothing, including on truncated-payload errors (ReadFrame reclaims the
// buffer itself then).
func TestReadFramePooledOwnership(t *testing.T) {
	bufpool.SetDebug(true)
	defer bufpool.SetDebug(false)
	bufpool.ResetStats()

	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		if err := WriteFrame(&buf, bytes.Repeat([]byte{byte(i)}, 1024), 0); err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		bufpool.Put(payload)
	}
	// Truncated payload: ReadFrame must not leak its pooled buffer.
	buf.Reset()
	if err := WriteFrame(&buf, make([]byte, 1024), 0); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadFrame(bytes.NewReader(trunc), 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated payload: err = %v", err)
	}
	if n := bufpool.Outstanding(); n != 0 {
		t.Fatalf("leaked %d pooled buffers through ReadFrame", n)
	}
}

func TestWriteFrameVectored(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("vectored payload")
	n, err := WriteFrameVectored(&buf, payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(payload) {
		t.Fatalf("n = %d, want %d", n, len(payload))
	}
	got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip = %q", got)
	}
	bufpool.Put(got)
	if _, err := WriteFrameVectored(&buf, make([]byte, 100), 10); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestAppendFrame(t *testing.T) {
	var packed []byte
	payloads := [][]byte{[]byte("one"), {}, []byte("three")}
	for _, p := range payloads {
		packed = AppendFrame(packed, p)
	}
	r := bytes.NewReader(packed)
	for i, want := range payloads {
		got, err := ReadFrame(r, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
		bufpool.Put(got)
	}
	if _, err := ReadFrame(r, 0); err != io.EOF {
		t.Fatalf("trailing data: %v", err)
	}
}
