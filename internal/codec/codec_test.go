package codec

import (
	"bytes"
	"compress/flate"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"
)

// --- primitives -------------------------------------------------------------

func TestUvarintRoundTrip(t *testing.T) {
	values := []uint64{0, 1, 127, 128, 300, 1 << 20, math.MaxUint64}
	for _, v := range values {
		var buf bytes.Buffer
		if err := WriteUvarint(&buf, v); err != nil {
			t.Fatalf("WriteUvarint(%d): %v", v, err)
		}
		got, err := ReadUvarint(&buf)
		if err != nil {
			t.Fatalf("ReadUvarint(%d): %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip %d → %d", v, got)
		}
	}
}

func TestVarintRoundTrip(t *testing.T) {
	values := []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64}
	for _, v := range values {
		var buf bytes.Buffer
		if err := WriteVarint(&buf, v); err != nil {
			t.Fatalf("WriteVarint(%d): %v", v, err)
		}
		got, err := ReadVarint(&buf)
		if err != nil {
			t.Fatalf("ReadVarint(%d): %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip %d → %d", v, got)
		}
	}
}

func TestFixedWidthRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteUint16(&buf, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	if err := WriteUint32(&buf, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if err := WriteUint64(&buf, 0x0123456789ABCDEF); err != nil {
		t.Fatal(err)
	}
	if err := WriteBool(&buf, true); err != nil {
		t.Fatal(err)
	}
	if err := WriteBool(&buf, false); err != nil {
		t.Fatal(err)
	}

	if v, err := ReadUint16(&buf); err != nil || v != 0xBEEF {
		t.Fatalf("ReadUint16 = %x, %v", v, err)
	}
	if v, err := ReadUint32(&buf); err != nil || v != 0xDEADBEEF {
		t.Fatalf("ReadUint32 = %x, %v", v, err)
	}
	if v, err := ReadUint64(&buf); err != nil || v != 0x0123456789ABCDEF {
		t.Fatalf("ReadUint64 = %x, %v", v, err)
	}
	if v, err := ReadBool(&buf); err != nil || v != true {
		t.Fatalf("ReadBool = %v, %v", v, err)
	}
	if v, err := ReadBool(&buf); err != nil || v != false {
		t.Fatalf("ReadBool = %v, %v", v, err)
	}
}

func TestReadTruncated(t *testing.T) {
	tests := []struct {
		name string
		read func(io.Reader) error
	}{
		{"uint16", func(r io.Reader) error { _, err := ReadUint16(r); return err }},
		{"uint32", func(r io.Reader) error { _, err := ReadUint32(r); return err }},
		{"uint64", func(r io.Reader) error { _, err := ReadUint64(r); return err }},
		{"bool", func(r io.Reader) error { _, err := ReadBool(r); return err }},
		{"bytes", func(r io.Reader) error { _, err := ReadBytes(r); return err }},
		{"string", func(r io.Reader) error { _, err := ReadString(r); return err }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.read(bytes.NewReader(nil)); err == nil {
				t.Fatal("reading from empty source succeeded")
			}
		})
	}
}

func TestBytesAndStringRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 0, 255}
	if err := WriteBytes(&buf, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteString(&buf, "héllo"); err != nil {
		t.Fatal(err)
	}
	if err := WriteBytes(&buf, nil); err != nil {
		t.Fatal(err)
	}

	b, err := ReadBytes(&buf)
	if err != nil || !bytes.Equal(b, payload) {
		t.Fatalf("ReadBytes = %v, %v", b, err)
	}
	s, err := ReadString(&buf)
	if err != nil || s != "héllo" {
		t.Fatalf("ReadString = %q, %v", s, err)
	}
	b, err = ReadBytes(&buf)
	if err != nil || len(b) != 0 {
		t.Fatalf("ReadBytes(empty) = %v, %v", b, err)
	}
}

func TestReadBytesRejectsHugeLength(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteUvarint(&buf, uint64(maxChunk)+1); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBytes(&buf); !errors.Is(err, ErrValueOutOfBounds) {
		t.Fatalf("err = %v, want ErrValueOutOfBounds", err)
	}
}

func TestPropertyPrimitiveRoundTrips(t *testing.T) {
	f := func(u uint64, i int64, b []byte, s string) bool {
		var buf bytes.Buffer
		if WriteUvarint(&buf, u) != nil || WriteVarint(&buf, i) != nil ||
			WriteBytes(&buf, b) != nil || WriteString(&buf, s) != nil {
			return false
		}
		gu, err := ReadUvarint(&buf)
		if err != nil || gu != u {
			return false
		}
		gi, err := ReadVarint(&buf)
		if err != nil || gi != i {
			return false
		}
		gb, err := ReadBytes(&buf)
		if err != nil || !bytes.Equal(gb, b) {
			return false
		}
		gs, err := ReadString(&buf)
		return err == nil && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- registry ----------------------------------------------------------------

type testMsg struct {
	A uint32
	B string
}

type testMsgSerializer struct{}

func (testMsgSerializer) ID() SerializerID { return 7 }

func (testMsgSerializer) Serialize(w io.Writer, v interface{}) error {
	m := v.(testMsg)
	if err := WriteUint32(w, m.A); err != nil {
		return err
	}
	return WriteString(w, m.B)
}

func (testMsgSerializer) Deserialize(r io.Reader) (interface{}, error) {
	a, err := ReadUint32(r)
	if err != nil {
		return nil, err
	}
	b, err := ReadString(r)
	if err != nil {
		return nil, err
	}
	return testMsg{A: a, B: b}, nil
}

type otherSerializer struct{ id SerializerID }

func (s otherSerializer) ID() SerializerID { return s.id }
func (s otherSerializer) Serialize(io.Writer, interface{}) error {
	return nil
}
func (s otherSerializer) Deserialize(io.Reader) (interface{}, error) {
	return nil, nil
}

func TestRegistryEncodeDecode(t *testing.T) {
	var reg Registry
	reg.MustRegister(testMsgSerializer{}, testMsg{})

	var buf bytes.Buffer
	in := testMsg{A: 42, B: "hello"}
	if err := reg.Encode(&buf, in); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out, err := reg.Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out != in {
		t.Fatalf("round trip %+v → %+v", in, out)
	}
}

func TestRegistryDuplicateID(t *testing.T) {
	var reg Registry
	reg.MustRegister(testMsgSerializer{}, testMsg{})
	err := reg.Register(otherSerializer{id: 7})
	if !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("err = %v, want ErrDuplicateID", err)
	}
}

func TestRegistryDuplicateType(t *testing.T) {
	var reg Registry
	reg.MustRegister(testMsgSerializer{}, testMsg{})
	err := reg.Register(otherSerializer{id: 9}, testMsg{})
	if !errors.Is(err, ErrDuplicateType) {
		t.Fatalf("err = %v, want ErrDuplicateType", err)
	}
}

func TestRegistryReregisterSameSerializerNewTypes(t *testing.T) {
	var reg Registry
	s := testMsgSerializer{}
	reg.MustRegister(s, testMsg{})
	if err := reg.Register(s); err != nil {
		t.Fatalf("re-registering the same serializer errored: %v", err)
	}
}

func TestRegistryNilPrototype(t *testing.T) {
	var reg Registry
	if err := reg.Register(testMsgSerializer{}, nil); err == nil {
		t.Fatal("registering untyped nil prototype succeeded")
	}
}

func TestRegistryUnknownType(t *testing.T) {
	var reg Registry
	var buf bytes.Buffer
	if err := reg.Encode(&buf, 42); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v, want ErrUnknownType", err)
	}
}

func TestRegistryUnknownID(t *testing.T) {
	var reg Registry
	var buf bytes.Buffer
	if err := WriteUvarint(&buf, 99); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Decode(&buf); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("err = %v, want ErrUnknownID", err)
	}
}

func TestRegistryDecodeHugeID(t *testing.T) {
	var reg Registry
	var buf bytes.Buffer
	if err := WriteUvarint(&buf, 1<<40); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Decode(&buf); !errors.Is(err, ErrValueOutOfBounds) {
		t.Fatalf("err = %v, want ErrValueOutOfBounds", err)
	}
}

func TestMustRegisterPanics(t *testing.T) {
	var reg Registry
	reg.MustRegister(testMsgSerializer{}, testMsg{})
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister on duplicate must panic")
		}
	}()
	reg.MustRegister(otherSerializer{id: 7})
}

// --- framing -----------------------------------------------------------------

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{0xAB}, 65536)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p, 0); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(p), err)
		}
	}
	for _, p := range payloads {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame mismatch: %d bytes vs %d", len(got), len(p))
		}
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("trailing read err = %v, want io.EOF", err)
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFrame(&buf, make([]byte, 100), 10)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, 10); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFramePartial(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello world"), 0); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(trunc), 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
	// Truncated header as well.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0}), 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("header err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestPropertyFrameRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		for _, p := range payloads {
			if len(p) > DefaultMaxFrame {
				p = p[:DefaultMaxFrame]
			}
			if WriteFrame(&buf, p, 0) != nil {
				return false
			}
		}
		for _, p := range payloads {
			if len(p) > DefaultMaxFrame {
				p = p[:DefaultMaxFrame]
			}
			got, err := ReadFrame(&buf, 0)
			if err != nil || !bytes.Equal(got, p) {
				return false
			}
		}
		_, err := ReadFrame(&buf, 0)
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- compression ---------------------------------------------------------------

func TestNoopCompressor(t *testing.T) {
	var c Noop
	in := []byte("data")
	out, err := c.Compress(in)
	if err != nil || !bytes.Equal(out, in) {
		t.Fatalf("Compress = %v, %v", out, err)
	}
	out, err = c.Decompress(in)
	if err != nil || !bytes.Equal(out, in) {
		t.Fatalf("Decompress = %v, %v", out, err)
	}
	if c.Name() != "noop" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestFlateRoundTrip(t *testing.T) {
	c := NewFlate(flate.BestSpeed)
	if c.Name() != "flate" {
		t.Fatalf("Name = %q", c.Name())
	}
	in := bytes.Repeat([]byte("compressible text "), 1000)
	packed, err := c.Compress(in)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	if len(packed) >= len(in) {
		t.Fatalf("compressible input did not shrink: %d → %d", len(in), len(packed))
	}
	out, err := c.Decompress(packed)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(out, in) {
		t.Fatal("flate round trip mismatch")
	}
}

func TestFlateInvalidLevelFallsBack(t *testing.T) {
	c := NewFlate(1000)
	in := []byte("x")
	packed, err := c.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(packed)
	if err != nil || !bytes.Equal(out, in) {
		t.Fatalf("round trip with fallback level failed: %v", err)
	}
}

func TestFlateDecompressGarbage(t *testing.T) {
	c := NewFlate(flate.DefaultCompression)
	if _, err := c.Decompress([]byte{0xFF, 0x00, 0x12}); err == nil {
		t.Fatal("decompressing garbage succeeded")
	}
}

func TestFlatePooledWritersAreReusable(t *testing.T) {
	c := NewFlate(flate.BestSpeed)
	in := bytes.Repeat([]byte("abc"), 500)
	for i := 0; i < 10; i++ {
		packed, err := c.Compress(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decompress(packed)
		if err != nil || !bytes.Equal(out, in) {
			t.Fatalf("iteration %d: round trip failed: %v", i, err)
		}
	}
}

func TestPropertyFlateRoundTrip(t *testing.T) {
	c := NewFlate(flate.BestSpeed)
	f := func(in []byte) bool {
		packed, err := c.Compress(in)
		if err != nil {
			return false
		}
		out, err := c.Decompress(packed)
		return err == nil && bytes.Equal(out, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
