package codec

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestPropertyDecodeNeverPanicsOnGarbage feeds arbitrary bytes through
// every wire-facing decoder: errors are fine, panics are not. The
// middleware decodes traffic from the network, so this is a security
// property, not just robustness.
func TestPropertyDecodeNeverPanicsOnGarbage(t *testing.T) {
	var reg Registry
	reg.MustRegister(testMsgSerializer{}, testMsg{})
	f := func(b []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("decoder panicked on %v: %v", b, r)
				ok = false
			}
		}()
		_, _ = reg.Decode(bytes.NewReader(b))
		_, _ = ReadFrame(bytes.NewReader(b), 0)
		_, _ = ReadBytes(bytes.NewReader(b))
		_, _ = ReadString(bytes.NewReader(b))
		_, _ = ReadUvarint(bytes.NewReader(b))
		_, _ = ReadVarint(bytes.NewReader(b))
		c := NewFlate(-1)
		_, _ = c.Decompress(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
