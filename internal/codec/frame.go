package codec

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
)

// DefaultMaxFrame is the default upper bound on a single frame's payload.
// The paper's implementation used 65 kB Netty serialisation buffers; we
// allow some headroom for headers and compression expansion.
const DefaultMaxFrame = 1 << 20

// FrameHeaderLen is the size of the length prefix on stream transports,
// exported so write-coalescing callers can size batch buffers exactly.
const FrameHeaderLen = 4

// frameHeaderLen is kept as the internal alias.
const frameHeaderLen = FrameHeaderLen

// AppendFrame appends one length-prefixed frame (header + payload) to dst
// and returns the extended slice. It performs no size validation — callers
// batching pre-validated messages (transport.Send checks against MaxFrame)
// use it to pack several frames into one pooled buffer for a single
// vectored or coalesced write.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// WriteFrame writes payload prefixed by its 32-bit big-endian length.
func WriteFrame(w io.Writer, payload []byte, maxFrame int) error {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, len(payload), maxFrame)
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// WriteFrameVectored writes one frame as a single vectored write: header
// and payload go out in one writev(2) when w supports it (net.Conn
// implementations do), avoiding both the second syscall and copying the
// payload into a staging buffer. On writers without vectored support,
// net.Buffers falls back to sequential writes, making this equivalent to
// WriteFrame. It reports the number of bytes consumed from payload (the
// header does not count), which on a short write tells the caller how much
// of the payload reached the socket.
func WriteFrameVectored(w io.Writer, payload []byte, maxFrame int) (int, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(payload) > maxFrame {
		return 0, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, len(payload), maxFrame)
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	bufs := net.Buffers{hdr[:], payload}
	n, err := bufs.WriteTo(w)
	n -= frameHeaderLen
	if n < 0 {
		n = 0
	}
	return int(n), err
}

// ReadFrame reads one length-prefixed frame into a buffer drawn from
// bufpool. io.EOF is returned unchanged when the stream ends cleanly
// between frames; a stream that ends mid-header or mid-payload yields
// io.ErrUnexpectedEOF.
//
// Ownership: the returned buffer belongs to the caller, who should return
// it with bufpool.Put once the payload has been consumed (dropping it is
// safe but costs an allocation on a later read).
func ReadFrame(r io.Reader, maxFrame int) ([]byte, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [frameHeaderLen]byte
	if err := readSmall(r, hdr[:]); err != nil {
		// readSmall already distinguishes the two stream-end cases:
		// io.EOF for a clean end before any header byte, and
		// io.ErrUnexpectedEOF for a truncated header. Pass both through.
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(maxFrame) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	payload := bufpool.Get(int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		bufpool.Put(payload)
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}
