package codec

import (
	"encoding/binary"
	"fmt"
	"io"
)

// DefaultMaxFrame is the default upper bound on a single frame's payload.
// The paper's implementation used 65 kB Netty serialisation buffers; we
// allow some headroom for headers and compression expansion.
const DefaultMaxFrame = 1 << 20

// frameHeaderLen is the size of the length prefix on stream transports.
const frameHeaderLen = 4

// WriteFrame writes payload prefixed by its 32-bit big-endian length.
func WriteFrame(w io.Writer, payload []byte, maxFrame int) error {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, len(payload), maxFrame)
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame. io.EOF is returned unchanged
// when the stream ends cleanly between frames; a partial frame yields
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, maxFrame int) ([]byte, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, err
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(maxFrame) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}
