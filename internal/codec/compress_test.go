package codec

// Tests for the pooled compression stage: reader/writer pool reuse under
// concurrency, the append-style compression path, and buffer hygiene.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
)

// TestFlateDecompressConcurrent hammers one Flate from many goroutines to
// verify the pooled decompress readers (and encoders) are not shared
// between in-flight calls. Run with -race to catch pool misuse.
func TestFlateDecompressConcurrent(t *testing.T) {
	c := NewFlate(-1)
	// Distinct, compressible inputs per goroutine so cross-talk between
	// pooled readers would corrupt an output visibly.
	inputs := make([][]byte, 8)
	packed := make([][]byte, len(inputs))
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte(fmt.Sprintf("payload-%d|", i)), 500)
		var err error
		packed[i], err = c.Compress(inputs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < len(inputs); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				out, err := c.Decompress(packed[g])
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !bytes.Equal(out, inputs[g]) {
					t.Errorf("goroutine %d: corrupted round trip", g)
					return
				}
				bufpool.Put(out)
			}
		}(g)
	}
	wg.Wait()
}

// TestFlateCompressConcurrent does the same for the pooled encoder path,
// interleaving Compress and Decompress.
func TestFlateCompressConcurrent(t *testing.T) {
	c := NewFlate(-1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := bytes.Repeat([]byte{byte('a' + g)}, 4096)
			for i := 0; i < 200; i++ {
				packed, err := c.Compress(in)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				out, err := c.Decompress(packed)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !bytes.Equal(out, in) {
					t.Errorf("goroutine %d: corrupted round trip", g)
					return
				}
				bufpool.Put(out)
			}
		}(g)
	}
	wg.Wait()
}

// TestFlateDecompressReaderReuse verifies sequential Decompress calls
// recycle the pooled reader and still produce independent results.
func TestFlateDecompressReaderReuse(t *testing.T) {
	c := NewFlate(-1)
	for i := 0; i < 50; i++ {
		in := bytes.Repeat([]byte{byte(i)}, 100+i)
		packed, err := c.Compress(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decompress(packed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("round %d: corrupted round trip", i)
		}
		bufpool.Put(out)
	}
}

// TestAppendCompressPlacesBytesInDst verifies the hot-path contract: the
// compressed form lands directly after whatever dst already holds, so a
// flag byte needs no prepend copy.
func TestAppendCompressPlacesBytesInDst(t *testing.T) {
	c := NewFlate(-1)
	in := bytes.Repeat([]byte("abc"), 1000)
	dst := make([]byte, 1, 4096)
	dst[0] = 0xFE
	out, err := c.AppendCompress(dst, in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xFE {
		t.Fatalf("prefix byte clobbered: %#x", out[0])
	}
	if &out[0] != &dst[0] {
		t.Fatal("compressed output did not reuse dst's backing array")
	}
	round, err := c.Decompress(out[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(round, in) {
		t.Fatal("corrupted round trip through AppendCompress")
	}
}

// TestAppendCompressGrowsDst checks the incompressible case where the
// output cannot fit dst's capacity and must reallocate like append.
func TestAppendCompressGrowsDst(t *testing.T) {
	c := NewFlate(-1)
	in := make([]byte, 32<<10)
	rand.New(rand.NewSource(7)).Read(in) // incompressible
	out, err := c.AppendCompress(make([]byte, 0, 8), in)
	if err != nil {
		t.Fatal(err)
	}
	round, err := c.Decompress(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(round, in) {
		t.Fatal("corrupted round trip after dst growth")
	}
}
