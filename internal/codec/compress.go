package codec

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
)

// Compressor transforms payload bytes. The middleware's channel pipeline
// applies one to every serialised message, mirroring the Snappy handler in
// the paper's Netty pipeline. DEFLATE stands in for Snappy here (stdlib
// only); the paper's experiments used incompressible data precisely so that
// the choice of compressor would not matter.
type Compressor interface {
	// Name identifies the compressor for diagnostics.
	Name() string
	// Compress returns the compressed form of src.
	Compress(src []byte) ([]byte, error)
	// Decompress reverses Compress. The result may alias src (Noop does
	// this); callers recycling buffers must account for aliasing.
	Decompress(src []byte) ([]byte, error)
}

// AppendCompressor is an optional Compressor extension for the
// zero-allocation hot path: the compressed bytes are appended directly to
// dst, letting callers place them after a header in a pooled buffer
// without a second copy.
type AppendCompressor interface {
	// AppendCompress appends the compressed form of src to dst and
	// returns the extended slice (reallocating like append when dst lacks
	// capacity).
	AppendCompress(dst, src []byte) ([]byte, error)
}

// Noop is a pass-through Compressor. The zero value is ready to use.
type Noop struct{}

var _ Compressor = Noop{}

// Name implements Compressor.
func (Noop) Name() string { return "noop" }

// Compress implements Compressor.
func (Noop) Compress(src []byte) ([]byte, error) { return src, nil }

// Decompress implements Compressor.
func (Noop) Decompress(src []byte) ([]byte, error) { return src, nil }

// Flate is a DEFLATE Compressor. Both directions run allocation-free at
// steady state: compression pools its flate.Writers (heavyweight: ~64 kB
// of window state each) behind a reusable slice sink, and decompression
// pools its flate.Readers symmetrically via flate.Resetter.
type Flate struct {
	level int
	enc   sync.Pool // *flateEncoder
	dec   sync.Pool // *flateDecoder
}

var _ Compressor = (*Flate)(nil)
var _ AppendCompressor = (*Flate)(nil)

// flateEncoder pairs a pooled flate.Writer with the slice sink it writes
// to, so a Compress call recycles both as one unit.
type flateEncoder struct {
	sink sliceWriter
	fw   *flate.Writer
}

// sliceWriter appends to a caller-owned slice; the hot path's alternative
// to a bytes.Buffer whose backing array could not be handed back.
type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// flateDecoder pairs a pooled flate reader with the bytes.Reader it
// decompresses from.
type flateDecoder struct {
	src bytes.Reader
	fr  io.ReadCloser // always implements flate.Resetter
}

// NewFlate creates a DEFLATE compressor. Levels follow compress/flate;
// out-of-range values fall back to flate.DefaultCompression.
func NewFlate(level int) *Flate {
	if level < flate.HuffmanOnly || level > flate.BestCompression {
		level = flate.DefaultCompression
	}
	return &Flate{level: level}
}

// Name implements Compressor.
func (f *Flate) Name() string { return "flate" }

// Compress implements Compressor.
func (f *Flate) Compress(src []byte) ([]byte, error) {
	dst := make([]byte, 0, len(src)/2+64)
	return f.AppendCompress(dst, src)
}

// AppendCompress implements AppendCompressor.
func (f *Flate) AppendCompress(dst, src []byte) ([]byte, error) {
	e, _ := f.enc.Get().(*flateEncoder)
	if e == nil {
		e = &flateEncoder{}
		e.fw, _ = flate.NewWriter(&e.sink, f.level)
	}
	e.sink.b = dst
	e.fw.Reset(&e.sink)
	if _, err := e.fw.Write(src); err != nil {
		return nil, fmt.Errorf("codec: flate compress: %w", err)
	}
	if err := e.fw.Close(); err != nil {
		return nil, fmt.Errorf("codec: flate close: %w", err)
	}
	out := e.sink.b
	e.sink.b = nil
	f.enc.Put(e)
	return out, nil
}

// Decompress implements Compressor. The returned slice is drawn from
// bufpool; the caller owns it and may recycle it with bufpool.Put.
func (f *Flate) Decompress(src []byte) ([]byte, error) {
	d, _ := f.dec.Get().(*flateDecoder)
	if d == nil {
		d = &flateDecoder{fr: flate.NewReader(nil)}
	}
	d.src.Reset(src)
	if err := d.fr.(flate.Resetter).Reset(&d.src, nil); err != nil {
		return nil, fmt.Errorf("codec: flate reset: %w", err)
	}
	scratch := bufpool.GetBuffer()
	_, err := scratch.ReadFrom(io.LimitReader(d.fr, maxChunk+1))
	d.src.Reset(nil)
	f.dec.Put(d)
	if err != nil {
		bufpool.PutBuffer(scratch)
		return nil, fmt.Errorf("codec: flate decompress: %w", err)
	}
	if scratch.Len() > maxChunk {
		bufpool.PutBuffer(scratch)
		return nil, fmt.Errorf("%w: decompressed payload", ErrValueOutOfBounds)
	}
	out := bufpool.Get(scratch.Len())
	copy(out, scratch.Bytes())
	bufpool.PutBuffer(scratch)
	return out, nil
}
