package codec

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Compressor transforms payload bytes. The middleware's channel pipeline
// applies one to every serialised message, mirroring the Snappy handler in
// the paper's Netty pipeline. DEFLATE stands in for Snappy here (stdlib
// only); the paper's experiments used incompressible data precisely so that
// the choice of compressor would not matter.
type Compressor interface {
	// Name identifies the compressor for diagnostics.
	Name() string
	// Compress returns the compressed form of src.
	Compress(src []byte) ([]byte, error)
	// Decompress reverses Compress.
	Decompress(src []byte) ([]byte, error)
}

// Noop is a pass-through Compressor. The zero value is ready to use.
type Noop struct{}

var _ Compressor = Noop{}

// Name implements Compressor.
func (Noop) Name() string { return "noop" }

// Compress implements Compressor.
func (Noop) Compress(src []byte) ([]byte, error) { return src, nil }

// Decompress implements Compressor.
func (Noop) Decompress(src []byte) ([]byte, error) { return src, nil }

// Flate is a DEFLATE Compressor with pooled encoders.
type Flate struct {
	level int
	pool  sync.Pool
}

var _ Compressor = (*Flate)(nil)

// NewFlate creates a DEFLATE compressor. Levels follow compress/flate;
// out-of-range values fall back to flate.DefaultCompression.
func NewFlate(level int) *Flate {
	if level < flate.HuffmanOnly || level > flate.BestCompression {
		level = flate.DefaultCompression
	}
	return &Flate{level: level}
}

// Name implements Compressor.
func (f *Flate) Name() string { return "flate" }

// Compress implements Compressor.
func (f *Flate) Compress(src []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(len(src)/2 + 64)
	fw, _ := f.writer(&buf)
	if _, err := fw.Write(src); err != nil {
		return nil, fmt.Errorf("codec: flate compress: %w", err)
	}
	if err := fw.Close(); err != nil {
		return nil, fmt.Errorf("codec: flate close: %w", err)
	}
	f.pool.Put(fw)
	return buf.Bytes(), nil
}

func (f *Flate) writer(w io.Writer) (*flate.Writer, error) {
	if fw, ok := f.pool.Get().(*flate.Writer); ok {
		fw.Reset(w)
		return fw, nil
	}
	return flate.NewWriter(w, f.level)
}

// Decompress implements Compressor.
func (f *Flate) Decompress(src []byte) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(src))
	defer fr.Close()
	out, err := io.ReadAll(io.LimitReader(fr, maxChunk+1))
	if err != nil {
		return nil, fmt.Errorf("codec: flate decompress: %w", err)
	}
	if len(out) > maxChunk {
		return nil, fmt.Errorf("%w: decompressed payload", ErrValueOutOfBounds)
	}
	return out, nil
}
