// Package rl implements the online reinforcement-learning machinery of
// §II-C and §IV-C of the paper: an on-policy Sarsa(λ) control loop
// (figure 3, after Sutton & Barto) with replacing eligibility traces, an
// ε-greedy policy with linear decay, and three interchangeable value
// estimators over discrete state/action spaces:
//
//   - Matrix: a plain Q(s,a) table. Converges slowly because every cell
//     must be visited before greedy decisions are possible (figure 4).
//   - Model: collapses Q(s,a) into V(s) using a known environment model
//     M(s,a)→s′, shrinking the space to explore (figure 5).
//   - Approx: like Model, but fills unvisited entries of V by fitting a
//     quadratic to the values seen so far — exploiting the assumption
//     that the reward over the protocol-ratio space is unimodal and
//     roughly quadratic (figure 6). Learned values always win over
//     approximated ones.
//
// The package is domain-agnostic; the data package binds it to the
// protocol-ratio space.
package rl
