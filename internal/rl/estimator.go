package rl

import "fmt"

// State indexes the discrete state space [0, States).
type State int

// Action indexes the discrete action space [0, Actions).
type Action int

// Model maps a state-action pair to the successor state. The transport
// learner's model is M(s,a) = clamp(s+Δa) over the ratio grid.
type Model func(State, Action) State

// Estimator is a value-function backend for Sarsa(λ). Implementations own
// both value storage and eligibility traces.
type Estimator interface {
	// Value returns the estimate for (s, a) and whether any estimate —
	// learned or approximated — is available. Policies treat unavailable
	// values as "make a random decision".
	Value(s State, a Action) (float64, bool)
	// Learned returns the estimate only if it is backed by actual
	// observations. The TD update bootstraps exclusively on learned
	// values: the paper's approximation "fills the gaps" for greedy
	// decisions but never feeds back into the estimator itself.
	Learned(s State, a Action) (float64, bool)
	// Visit sets the replacing trace for (s, a) to one and clears the
	// traces of sibling actions, per figure 3 lines 8–11.
	Visit(s State, a Action)
	// Apply adds step·e to every eligible entry, where step = α·δ.
	Apply(step float64)
	// Decay multiplies all eligibility traces by γλ.
	Decay(gl float64)
	// Reset clears values and traces.
	Reset()
}

// traceEpsilon prunes negligible eligibility to keep updates cheap.
const traceEpsilon = 1e-6

// --- Matrix -------------------------------------------------------------------

// Matrix is the default Q(s,a) table estimator of §IV-C3.
type Matrix struct {
	states, actions int
	q               []float64
	known           []bool
	e               []float64
}

var _ Estimator = (*Matrix)(nil)

// NewMatrix creates a table estimator over states×actions.
func NewMatrix(states, actions int) *Matrix {
	if states <= 0 || actions <= 0 {
		panic(fmt.Sprintf("rl: invalid space %d×%d", states, actions))
	}
	n := states * actions
	return &Matrix{
		states:  states,
		actions: actions,
		q:       make([]float64, n),
		known:   make([]bool, n),
		e:       make([]float64, n),
	}
}

func (m *Matrix) idx(s State, a Action) int { return int(s)*m.actions + int(a) }

// Value implements Estimator.
func (m *Matrix) Value(s State, a Action) (float64, bool) {
	i := m.idx(s, a)
	return m.q[i], m.known[i]
}

// Learned implements Estimator; for a table, identical to Value.
func (m *Matrix) Learned(s State, a Action) (float64, bool) { return m.Value(s, a) }

// Visit implements Estimator (replacing trace).
func (m *Matrix) Visit(s State, a Action) {
	base := int(s) * m.actions
	for ai := 0; ai < m.actions; ai++ {
		m.e[base+ai] = 0
	}
	m.e[m.idx(s, a)] = 1
}

// Apply implements Estimator.
func (m *Matrix) Apply(step float64) {
	for i, e := range m.e {
		if e > traceEpsilon {
			m.q[i] += step * e
			m.known[i] = true
		}
	}
}

// Decay implements Estimator.
func (m *Matrix) Decay(gl float64) {
	for i := range m.e {
		m.e[i] *= gl
	}
}

// Reset implements Estimator.
func (m *Matrix) Reset() {
	for i := range m.q {
		m.q[i], m.known[i], m.e[i] = 0, false, 0
	}
}

// KnownCount reports how many state-action cells hold learned values —
// the exploration-coverage metric behind figure 4's analysis.
func (m *Matrix) KnownCount() int {
	n := 0
	for _, k := range m.known {
		if k {
			n++
		}
	}
	return n
}

// --- ModelBased ----------------------------------------------------------------

// ModelBased collapses Q(s,a) into V(s) via a known transition model
// (§IV-C4): Q(s,a) = V(M(s,a)).
type ModelBased struct {
	states int
	model  Model
	v      []float64
	known  []bool
	e      []float64
}

var _ Estimator = (*ModelBased)(nil)

// NewModelBased creates a state-value estimator over states entries.
func NewModelBased(states int, model Model) *ModelBased {
	if states <= 0 {
		panic(fmt.Sprintf("rl: invalid state space %d", states))
	}
	if model == nil {
		panic("rl: ModelBased requires a model")
	}
	return &ModelBased{
		states: states,
		model:  model,
		v:      make([]float64, states),
		known:  make([]bool, states),
		e:      make([]float64, states),
	}
}

// Value implements Estimator.
func (m *ModelBased) Value(s State, a Action) (float64, bool) {
	sp := m.model(s, a)
	return m.v[sp], m.known[sp]
}

// Learned implements Estimator; identical to Value for the model-based
// backend.
func (m *ModelBased) Learned(s State, a Action) (float64, bool) { return m.Value(s, a) }

// Visit implements Estimator: eligibility attaches to the successor state
// whose value the visit informs.
func (m *ModelBased) Visit(s State, a Action) {
	m.e[m.model(s, a)] = 1
}

// Apply implements Estimator.
func (m *ModelBased) Apply(step float64) {
	for i, e := range m.e {
		if e > traceEpsilon {
			m.v[i] += step * e
			m.known[i] = true
		}
	}
}

// Decay implements Estimator.
func (m *ModelBased) Decay(gl float64) {
	for i := range m.e {
		m.e[i] *= gl
	}
}

// Reset implements Estimator.
func (m *ModelBased) Reset() {
	for i := range m.v {
		m.v[i], m.known[i], m.e[i] = 0, false, 0
	}
}

// V returns the learned state value and whether it is backed by data.
func (m *ModelBased) V(s State) (float64, bool) { return m.v[s], m.known[s] }

// KnownCount reports how many states hold learned values.
func (m *ModelBased) KnownCount() int {
	n := 0
	for _, k := range m.known {
		if k {
			n++
		}
	}
	return n
}

// --- Approx ---------------------------------------------------------------------

// Approx extends ModelBased with quadratic value-function approximation
// (§IV-C5): whenever at least two states hold learned values, unknown
// states are extrapolated by a least-squares polynomial over the state
// index. Learned values always take precedence over approximated ones.
type Approx struct {
	ModelBased
}

var _ Estimator = (*Approx)(nil)

// NewApprox creates an approximating estimator.
func NewApprox(states int, model Model) *Approx {
	return &Approx{ModelBased: *NewModelBased(states, model)}
}

// Learned implements Estimator: only genuinely observed values qualify;
// extrapolations are for the policy, never for TD targets.
func (m *Approx) Learned(s State, a Action) (float64, bool) {
	return m.ModelBased.Value(s, a)
}

// Value implements Estimator: a learned value if available, otherwise the
// quadratic extrapolation when at least two learned points exist.
func (m *Approx) Value(s State, a Action) (float64, bool) {
	sp := m.model(s, a)
	if m.known[sp] {
		return m.v[sp], true
	}
	coeffs, ok := m.fit()
	if !ok {
		return 0, false
	}
	return evalPoly(coeffs, float64(sp)), true
}

// fit computes the least-squares polynomial (degree ≤ 2, limited by the
// number of learned points) over the known entries of V.
func (m *Approx) fit() ([]float64, bool) {
	var xs, ys []float64
	for i, k := range m.known {
		if k {
			xs = append(xs, float64(i))
			ys = append(ys, m.v[i])
		}
	}
	if len(xs) < 2 {
		return nil, false
	}
	if len(xs) > 2 {
		coeffs, err := PolyFit(xs, ys, 2)
		// §IV-C5 assumes "the shape of a quadratic function with a
		// single maximum": a parabola opening upwards violates the
		// assumption, so fall back to the linear trend instead of
		// extrapolating a spurious minimum.
		if err == nil && coeffs[2] <= 0 {
			return coeffs, true
		}
	}
	coeffs, err := PolyFit(xs, ys, 1)
	if err != nil {
		return nil, false
	}
	return coeffs, true
}
