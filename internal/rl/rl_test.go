package rl

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// --- PolyFit -----------------------------------------------------------------

func TestPolyFitRecoversQuadratic(t *testing.T) {
	// y = 3 - 2x + 0.5x²
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 - 2*x + 0.5*x*x
	}
	c, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, -2, 0.5}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-9 {
			t.Fatalf("coeff[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestPolyFitRecoversLine(t *testing.T) {
	c, err := PolyFit([]float64{1, 3}, []float64{5, 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]-3) > 1e-9 || math.Abs(c[1]-2) > 1e-9 {
		t.Fatalf("coeffs = %v, want [3 2]", c)
	}
}

func TestPolyFitLeastSquaresAveragesNoise(t *testing.T) {
	// Overdetermined constant fit: coefficients minimise squared error.
	c, err := PolyFit([]float64{0, 1, 2, 3}, []float64{1, 3, 1, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]-2) > 1e-9 {
		t.Fatalf("constant fit = %v, want 2", c[0])
	}
}

func TestPolyFitErrors(t *testing.T) {
	tests := []struct {
		name   string
		xs, ys []float64
		degree int
	}{
		{"negative degree", []float64{1}, []float64{1}, -1},
		{"length mismatch", []float64{1, 2}, []float64{1}, 1},
		{"too few samples", []float64{1, 2}, []float64{1, 2}, 2},
		{"singular", []float64{2, 2, 2}, []float64{1, 2, 3}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := PolyFit(tt.xs, tt.ys, tt.degree); err == nil {
				t.Fatal("PolyFit succeeded, want error")
			}
		})
	}
}

func TestPropertyPolyFitInterpolatesExactDegree(t *testing.T) {
	// For any quadratic sampled at ≥3 distinct points, the fit reproduces
	// the samples.
	f := func(a, b, c int8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := []float64{0, 1, 2, 3 + rng.Float64()}
		poly := func(x float64) float64 {
			return float64(a) + float64(b)*x + float64(c)*x*x
		}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = poly(x)
		}
		coeffs, err := PolyFit(xs, ys, 2)
		if err != nil {
			return false
		}
		for _, x := range xs {
			if math.Abs(evalPoly(coeffs, x)-poly(x)) > 1e-6*(1+math.Abs(poly(x))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- estimators --------------------------------------------------------------

func clampModel(states int) Model {
	return func(s State, a Action) State {
		// actions are Δ ∈ {-2,-1,0,1,2}
		sp := int(s) + int(a) - 2
		if sp < 0 {
			sp = 0
		}
		if sp >= states {
			sp = states - 1
		}
		return State(sp)
	}
}

func TestMatrixUnknownUntilApplied(t *testing.T) {
	m := NewMatrix(3, 2)
	if _, ok := m.Value(0, 0); ok {
		t.Fatal("fresh matrix reports known value")
	}
	m.Visit(0, 0)
	m.Apply(0.5)
	v, ok := m.Value(0, 0)
	if !ok || v != 0.5 {
		t.Fatalf("Value = %v,%v; want 0.5,true", v, ok)
	}
	if m.KnownCount() != 1 {
		t.Fatalf("KnownCount = %d, want 1", m.KnownCount())
	}
}

func TestMatrixReplacingTraceClearsSiblings(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Visit(0, 1)
	m.Visit(0, 2) // must clear the trace of (0,1)
	m.Apply(1.0)
	if v, ok := m.Value(0, 2); !ok || v != 1 {
		t.Fatalf("visited cell = %v,%v", v, ok)
	}
	if _, ok := m.Value(0, 1); ok {
		t.Fatal("sibling trace not cleared by replacing trace")
	}
}

func TestMatrixDecayAccumulatesAcrossStates(t *testing.T) {
	m := NewMatrix(3, 1)
	m.Visit(0, 0)
	m.Decay(0.5)
	m.Visit(1, 0)
	m.Apply(1.0)
	v0, _ := m.Value(0, 0)
	v1, _ := m.Value(1, 0)
	if math.Abs(v0-0.5) > 1e-12 || math.Abs(v1-1.0) > 1e-12 {
		t.Fatalf("eligibility-weighted updates = %v, %v; want 0.5, 1.0", v0, v1)
	}
}

func TestMatrixReset(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Visit(1, 1)
	m.Apply(2)
	m.Reset()
	if _, ok := m.Value(1, 1); ok || m.KnownCount() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestNewMatrixPanicsOnBadSpace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0×0 space")
		}
	}()
	NewMatrix(0, 0)
}

func TestModelBasedSharesValuesAcrossActions(t *testing.T) {
	// Two different (s,a) pairs mapping to the same successor share one
	// learned value — the whole point of collapsing Q into V.
	mb := NewModelBased(11, clampModel(11))
	mb.Visit(5, 3) // successor 6
	mb.Apply(1.0)
	v1, ok1 := mb.Value(5, 3) // M(5,Δ+1)=6
	v2, ok2 := mb.Value(7, 1) // M(7,Δ-1)=6
	if !ok1 || !ok2 || v1 != v2 || v1 != 1.0 {
		t.Fatalf("values across actions = (%v,%v) (%v,%v); want shared 1.0", v1, ok1, v2, ok2)
	}
	if mb.KnownCount() != 1 {
		t.Fatalf("KnownCount = %d, want 1", mb.KnownCount())
	}
	if v, ok := mb.V(6); !ok || v != 1.0 {
		t.Fatalf("V(6) = %v,%v", v, ok)
	}
}

func TestModelBasedClampsAtEdges(t *testing.T) {
	mb := NewModelBased(11, clampModel(11))
	mb.Visit(0, 0) // Δ-2 from state 0 clamps to 0
	mb.Apply(1.0)
	if v, ok := mb.Value(0, 0); !ok || v != 1 {
		t.Fatalf("clamped edge value = %v,%v", v, ok)
	}
}

func TestNewModelBasedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil model")
		}
	}()
	NewModelBased(5, nil)
}

func TestApproxPrefersLearnedValues(t *testing.T) {
	a := NewApprox(11, clampModel(11))
	a.Visit(2, 2) // state 2
	a.Apply(5.0)
	a.Decay(0)    // clear the trace so the next update is isolated
	a.Visit(4, 2) // state 4
	a.Apply(1.0)
	// State 3 unknown: linear fit through (2,5),(4,1) gives 3 at x=3.
	v, ok := a.Value(3, 2)
	if !ok || math.Abs(v-3) > 1e-9 {
		t.Fatalf("approximated value = %v,%v; want 3", v, ok)
	}
	// Learned state keeps its exact value.
	v, ok = a.Value(2, 2)
	if !ok || v != 5 {
		t.Fatalf("learned value = %v,%v; want 5", v, ok)
	}
}

func TestApproxUnavailableWithFewerThanTwoPoints(t *testing.T) {
	a := NewApprox(11, clampModel(11))
	if _, ok := a.Value(3, 2); ok {
		t.Fatal("approximation available with zero points")
	}
	a.Visit(2, 2)
	a.Apply(5)
	if _, ok := a.Value(3, 2); ok {
		t.Fatal("approximation available with one point")
	}
}

func TestApproxQuadraticExtrapolation(t *testing.T) {
	a := NewApprox(11, clampModel(11))
	// Plant three points of y = -(x-5)² + 10.
	for _, s := range []State{3, 5, 7} {
		a.Visit(s, 2)
		a.Apply(-(float64(s)-5)*(float64(s)-5) + 10)
		a.Decay(0) // clear trace so next Apply affects only the next visit
	}
	v, ok := a.Value(9, 2) // unknown state 9: expect ≈ -(9-5)²+10 = -6
	if !ok || math.Abs(v-(-6)) > 1e-6 {
		t.Fatalf("quadratic extrapolation = %v,%v; want -6", v, ok)
	}
}

// --- policy -------------------------------------------------------------------

func TestEpsilonGreedyDecayFloor(t *testing.T) {
	p := NewEpsilonGreedy(0.5, 0.1, 0.2, rand.New(rand.NewSource(1)))
	p.DecayStep()
	p.DecayStep()
	p.DecayStep()
	if p.Epsilon() != 0.1 {
		t.Fatalf("epsilon = %v, want floor 0.1", p.Epsilon())
	}
}

func TestEpsilonGreedyExploitsArgmax(t *testing.T) {
	m := NewMatrix(1, 3)
	for a, v := range []float64{1, 10, 2} {
		m.Visit(0, Action(a))
		m.Apply(v)
		m.Decay(0)
	}
	p := NewEpsilonGreedy(0, 0, 0, rand.New(rand.NewSource(1)))
	for i := 0; i < 20; i++ {
		if a := p.Select(0, 3, m); a != 1 {
			t.Fatalf("greedy selected %d, want 1", a)
		}
	}
}

func TestEpsilonGreedyRandomWhileAnyActionUnknown(t *testing.T) {
	// §IV-C3: greedy decisions require full coverage of the candidate
	// actions; a single uninitialised cell forces a random decision.
	m := NewMatrix(1, 3)
	m.Visit(0, 1)
	m.Apply(100)
	p := NewEpsilonGreedy(0, 0, 0, rand.New(rand.NewSource(5)))
	seen := map[Action]bool{}
	for i := 0; i < 300; i++ {
		seen[p.Select(0, 3, m)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("partially-known state explored %d of 3 actions", len(seen))
	}
}

func TestEpsilonGreedyRandomWhenUninitialised(t *testing.T) {
	m := NewMatrix(1, 4)
	p := NewEpsilonGreedy(0, 0, 0, rand.New(rand.NewSource(7)))
	seen := map[Action]bool{}
	for i := 0; i < 200; i++ {
		seen[p.Select(0, 4, m)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("uninitialised selection covered %d of 4 actions", len(seen))
	}
}

func TestEpsilonGreedyExploresAtFullEpsilon(t *testing.T) {
	m := NewMatrix(1, 4)
	m.Visit(0, 1)
	m.Apply(100)
	p := NewEpsilonGreedy(1, 1, 0, rand.New(rand.NewSource(3)))
	seen := map[Action]bool{}
	for i := 0; i < 200; i++ {
		seen[p.Select(0, 4, m)] = true
	}
	if len(seen) != 4 {
		t.Fatal("ε=1 policy failed to explore all actions")
	}
}

func TestNewEpsilonGreedyNilRandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil rng")
		}
	}()
	NewEpsilonGreedy(1, 0, 0, nil)
}

// --- Sarsa integration ---------------------------------------------------------

// ratioEnv mimics the transport-ratio environment of the learner figures:
// 11 states (UDT fraction f = s/10), 5 actions (Δ ∈ -2..2). The reward is
// the throughput of a pattern-interleaved stream throttled by its slower
// lane, R(f) = min(tcp/(1−f), udt/f) with tcp ≫ udt — unimodal with the
// optimum at the TCP edge (state 0), exactly the environment of figures
// 4–6 where TCP dominates.
type ratioEnv struct {
	states int
	peak   float64
}

func (e ratioEnv) reward(s State) float64 {
	const tcp, udt = 100.0, 10.0
	f := float64(s) / float64(e.states-1)
	switch {
	case f <= 0:
		return tcp
	case f >= 1:
		return udt
	default:
		return math.Min(tcp/(1-f), udt/f)
	}
}

// runLearner drives a Sarsa learner in the environment for steps episodes
// and returns the fraction of the final quarter spent within one state of
// the peak.
func runLearner(t *testing.T, est Estimator, steps int, seed int64) float64 {
	t.Helper()
	env := ratioEnv{states: 11, peak: 0}
	model := clampModel(env.states)
	l, err := NewSarsa(Config{
		States: env.states, Actions: 5,
		Alpha: 0.5, Gamma: 0.5, Lambda: 0.85,
		EpsMax: 0.3, EpsMin: 0.05, EpsDecay: 0.01,
		Estimator: est,
		Rand:      rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := State(5) // start at the 50-50 mix, as the paper's learner does
	a := l.Start(s)
	nearPeak := 0
	tail := steps / 4
	for i := 0; i < steps; i++ {
		s = model(s, a)
		a = l.Step(env.reward(s), s)
		if i >= steps-tail && math.Abs(float64(s)-env.peak) <= 1 {
			nearPeak++
		}
	}
	return float64(nearPeak) / float64(tail)
}

func TestSarsaModelBasedConverges(t *testing.T) {
	frac := runLearner(t, NewModelBased(11, clampModel(11)), 400, 1)
	if frac < 0.6 {
		t.Fatalf("model-based learner near peak %.0f%% of tail, want ≥60%%", frac*100)
	}
}

func TestSarsaApproxConvergesFastInMajorityOfRuns(t *testing.T) {
	// The approximating backend converges within very few episodes in
	// most runs but — as the paper concedes for DATA — shows higher
	// variance: a misleading early fit occasionally delays convergence.
	// Require a clear majority of seeds to converge within 120 episodes.
	converged := 0
	for seed := int64(1); seed <= 7; seed++ {
		if runLearner(t, NewApprox(11, clampModel(11)), 120, seed) >= 0.6 {
			converged++
		}
	}
	if converged < 5 {
		t.Fatalf("approx learner converged in %d/7 runs, want ≥5", converged)
	}
}

// episodesToReachPeak runs a learner until it first enters the peak state
// (or maxSteps) and returns the episode count.
func episodesToReachPeak(t *testing.T, est Estimator, maxSteps int, seed int64) int {
	t.Helper()
	env := ratioEnv{states: 11, peak: 0}
	model := clampModel(env.states)
	l, err := NewSarsa(Config{
		States: env.states, Actions: 5,
		Alpha: 0.5, Gamma: 0.5, Lambda: 0.85,
		EpsMax: 0.3, EpsMin: 0.05, EpsDecay: 0.01,
		Estimator: est,
		Rand:      rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := State(5) // start at the 50-50 mix, as the paper's learner does
	a := l.Start(s)
	for i := 0; i < maxSteps; i++ {
		s = model(s, a)
		if s <= 1 { // within one grid step of the optimum
			return i + 1
		}
		a = l.Step(env.reward(s), s)
	}
	return maxSteps
}

func TestSarsaBackendConvergenceSpeedOrdering(t *testing.T) {
	// Figures 4–6: the approximating backend reaches the optimum fastest
	// because it acts greedily after two samples; the matrix backend is
	// slowest because greedy decisions need full per-state action
	// coverage. Averaged over seeds to avoid flakiness.
	// Medians over seeds: the approximating backend occasionally stalls
	// on a misleading early fit (its variance is a documented drawback),
	// so the central tendency is the meaningful comparison.
	const maxSteps = 400
	median := func(mk func() Estimator) float64 {
		var xs []float64
		for seed := int64(1); seed <= 11; seed++ {
			xs = append(xs, float64(episodesToReachPeak(t, mk(), maxSteps, seed)))
		}
		sort.Float64s(xs)
		return xs[len(xs)/2]
	}
	matrix := median(func() Estimator { return NewMatrix(11, 5) })
	model := median(func() Estimator { return NewModelBased(11, clampModel(11)) })
	approx := median(func() Estimator { return NewApprox(11, clampModel(11)) })
	t.Logf("median episodes to reach peak: matrix=%.0f model=%.0f approx=%.0f",
		matrix, model, approx)
	if approx > model {
		t.Fatalf("approx (%.0f episodes) slower than model (%.0f)", approx, model)
	}
	if model > matrix {
		t.Fatalf("model (%.0f episodes) slower than matrix (%.0f)", model, matrix)
	}
}

func TestSarsaStepBeforeStart(t *testing.T) {
	l, err := NewSarsa(Config{
		States: 3, Actions: 2, Alpha: 0.1, Gamma: 0.5, Lambda: 0.5,
		EpsMax: 0.1, EpsMin: 0.1,
		Estimator: NewMatrix(3, 2),
		Rand:      rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	a := l.Step(1.0, 0) // must behave like Start
	if a < 0 || a >= 2 {
		t.Fatalf("action %d out of range", a)
	}
	if l.Steps() != 0 {
		t.Fatal("implicit Start counted as a learning step")
	}
	l.Step(1.0, 1)
	if l.Steps() != 1 {
		t.Fatalf("Steps() = %d, want 1", l.Steps())
	}
	if l.Epsilon() != 0.1 {
		t.Fatalf("Epsilon() = %v", l.Epsilon())
	}
	if l.Estimator() == nil {
		t.Fatal("Estimator() nil")
	}
}

func TestConfigValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	est := NewMatrix(2, 2)
	base := Config{States: 2, Actions: 2, Gamma: 0.5, Lambda: 0.5, EpsMax: 0.5, EpsMin: 0.1, Estimator: est, Rand: rng}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero states", func(c *Config) { c.States = 0 }},
		{"nil estimator", func(c *Config) { c.Estimator = nil }},
		{"nil rand", func(c *Config) { c.Rand = nil }},
		{"gamma range", func(c *Config) { c.Gamma = 1.5 }},
		{"lambda range", func(c *Config) { c.Lambda = -0.1 }},
		{"eps order", func(c *Config) { c.EpsMax, c.EpsMin = 0.1, 0.5 }},
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base config invalid: %v", err)
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("Validate passed, want error")
			}
			if _, err := NewSarsa(cfg); err == nil {
				t.Fatal("NewSarsa accepted invalid config")
			}
		})
	}
}
