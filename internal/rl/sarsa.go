package rl

import (
	"errors"
	"fmt"
	"math/rand"
)

// EpsilonGreedy balances exploration and exploitation: with probability ε
// it picks a uniformly random action, otherwise the best-valued one.
// Following the paper (and simulated annealing), ε starts high and decays
// linearly to a floor, one step per learning episode.
type EpsilonGreedy struct {
	eps, min, decay float64
	rng             *rand.Rand
}

// NewEpsilonGreedy creates the policy with ε starting at max, decaying by
// step per episode down to min.
func NewEpsilonGreedy(max, min, step float64, rng *rand.Rand) *EpsilonGreedy {
	if rng == nil {
		panic("rl: EpsilonGreedy requires a random source")
	}
	return &EpsilonGreedy{eps: max, min: min, decay: step, rng: rng}
}

// Epsilon returns the current exploration probability.
func (p *EpsilonGreedy) Epsilon() float64 { return p.eps }

// DecayStep lowers ε by one decay step, clamped at the floor.
func (p *EpsilonGreedy) DecayStep() {
	p.eps -= p.decay
	if p.eps < p.min {
		p.eps = p.min
	}
}

// Select picks an action in state s: explore with probability ε; exploit
// the highest estimate otherwise. Greedy decisions require every candidate
// action's value to be available — "it makes a random decision if the
// value is uninitialised" (§IV-C3). This forced exploration of uncovered
// cells is exactly why the 55-cell matrix backend converges so slowly
// (figure 4) while value approximation, which makes all values available
// after two samples, acts greedily almost immediately (figure 6). Ties
// break uniformly at random.
func (p *EpsilonGreedy) Select(s State, actions int, est Estimator) Action {
	if p.rng.Float64() < p.eps {
		return Action(p.rng.Intn(actions))
	}
	best := make([]Action, 0, actions)
	bestV := 0.0
	for a := 0; a < actions; a++ {
		v, ok := est.Value(s, Action(a))
		if !ok {
			return Action(p.rng.Intn(actions))
		}
		switch {
		case len(best) == 0 || v > bestV:
			best = append(best[:0], Action(a))
			bestV = v
		case v == bestV:
			best = append(best, Action(a))
		}
	}
	if len(best) == 0 {
		return Action(p.rng.Intn(actions))
	}
	return best[p.rng.Intn(len(best))]
}

// Config parameterises a Sarsa(λ) learner. The defaults mirror the
// paper's figure 4 run where a zero value is ambiguous.
type Config struct {
	// States and Actions size the discrete spaces.
	States, Actions int
	// Alpha is the step size for value updates.
	Alpha float64
	// Gamma discounts the successor state-action value.
	Gamma float64
	// Lambda controls eligibility decay (0 = one-step TD, 1 = Monte
	// Carlo).
	Lambda float64
	// EpsMax, EpsMin and EpsDecay parameterise the ε-greedy policy.
	EpsMax, EpsMin, EpsDecay float64
	// Estimator is the value backend; required.
	Estimator Estimator
	// Rand is the exploration source; required for determinism.
	Rand *rand.Rand
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.States <= 0 || c.Actions <= 0:
		return fmt.Errorf("rl: invalid space %d×%d", c.States, c.Actions)
	case c.Estimator == nil:
		return errors.New("rl: Config.Estimator is required")
	case c.Rand == nil:
		return errors.New("rl: Config.Rand is required")
	case c.Gamma < 0 || c.Gamma > 1:
		return fmt.Errorf("rl: gamma %v out of [0,1]", c.Gamma)
	case c.Lambda < 0 || c.Lambda > 1:
		return fmt.Errorf("rl: lambda %v out of [0,1]", c.Lambda)
	case c.EpsMax < c.EpsMin:
		return fmt.Errorf("rl: εmax %v below εmin %v", c.EpsMax, c.EpsMin)
	}
	return nil
}

// Sarsa is the on-policy Sarsa(λ) control loop of figure 3. Drive it with
// Start once and then Step per learning episode; each Step consumes the
// reward observed for the previous action and returns the next one.
type Sarsa struct {
	cfg    Config
	policy *EpsilonGreedy

	s       State
	a       Action
	started bool
	steps   int
}

// NewSarsa builds a learner from cfg.
func NewSarsa(cfg Config) (*Sarsa, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Sarsa{
		cfg:    cfg,
		policy: NewEpsilonGreedy(cfg.EpsMax, cfg.EpsMin, cfg.EpsDecay, cfg.Rand),
	}, nil
}

// Start initialises the episode at s0 and returns the first action.
func (l *Sarsa) Start(s0 State) Action {
	l.s = s0
	l.a = l.policy.Select(s0, l.cfg.Actions, l.cfg.Estimator)
	l.started = true
	return l.a
}

// Step observes the reward r for the last action, which moved the
// environment to state sPrime, performs the Sarsa(λ) update, and returns
// the next action to take.
func (l *Sarsa) Step(r float64, sPrime State) Action {
	if !l.started {
		return l.Start(sPrime)
	}
	est := l.cfg.Estimator
	aPrime := l.policy.Select(sPrime, l.cfg.Actions, est)

	// TD targets bootstrap on learned values only; an unexplored
	// successor contributes zero rather than a possibly wild
	// extrapolation (approximations guide the policy, not the values).
	qNext, _ := est.Learned(sPrime, aPrime)
	q, known := est.Learned(l.s, l.a)
	delta := r + l.cfg.Gamma*qNext - q

	// First-visit updates take the full TD target (effective α = 1) so a
	// freshly initialised estimate lands on the same scale as estimates
	// that have converged through repeated visits; with α < 1 a first
	// sample would start at half scale and lose greedy comparisons against
	// well-visited states for many episodes.
	step := l.cfg.Alpha * delta
	if !known {
		step = delta
	}
	est.Visit(l.s, l.a)                   // e(s,a) ← 1, siblings cleared
	est.Apply(step)                       // Q ← Q + αδe
	est.Decay(l.cfg.Gamma * l.cfg.Lambda) // e ← γλe

	l.s, l.a = sPrime, aPrime
	l.policy.DecayStep()
	l.steps++
	return aPrime
}

// Epsilon exposes the current exploration rate.
func (l *Sarsa) Epsilon() float64 { return l.policy.Epsilon() }

// Steps reports how many learning updates have been applied.
func (l *Sarsa) Steps() int { return l.steps }

// Estimator returns the value backend, e.g. for instrumentation.
func (l *Sarsa) Estimator() Estimator { return l.cfg.Estimator }
