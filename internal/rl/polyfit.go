package rl

import (
	"errors"
	"math"
)

// ErrSingular is returned when the least-squares system has no unique
// solution (e.g. all sample points share one x).
var ErrSingular = errors.New("rl: singular least-squares system")

// PolyFit computes least-squares polynomial coefficients c of the given
// degree such that y ≈ c[0] + c[1]x + … + c[degree]x^degree, by solving
// the normal equations with Gaussian elimination. Suited to the tiny
// systems used here (degree ≤ 2 over ≤ a few dozen points).
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if degree < 0 {
		return nil, errors.New("rl: negative polynomial degree")
	}
	if len(xs) != len(ys) {
		return nil, errors.New("rl: mismatched sample lengths")
	}
	if len(xs) < degree+1 {
		return nil, errors.New("rl: not enough samples for degree")
	}
	n := degree + 1

	// Normal equations: (XᵀX) c = Xᵀy with X the Vandermonde matrix.
	ata := make([][]float64, n)
	aty := make([]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n)
	}
	for k, x := range xs {
		pow := make([]float64, n)
		p := 1.0
		for i := 0; i < n; i++ {
			pow[i] = p
			p *= x
		}
		for i := 0; i < n; i++ {
			aty[i] += pow[i] * ys[k]
			for j := 0; j < n; j++ {
				ata[i][j] += pow[i] * pow[j]
			}
		}
	}
	return solveLinear(ata, aty)
}

// solveLinear solves Ax=b in place with partial pivoting.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// evalPoly evaluates the coefficient vector at x (Horner).
func evalPoly(c []float64, x float64) float64 {
	v := 0.0
	for i := len(c) - 1; i >= 0; i-- {
		v = v*x + c[i]
	}
	return v
}
