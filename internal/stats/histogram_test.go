package stats

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestHistIndexRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose range contains it: the
	// bucket's upper edge is >= v, and the previous bucket's upper edge
	// is < v.
	values := []int64{0, 1, 31, 32, 33, 63, 64, 65, 100, 1000, 4095, 4096,
		1 << 20, (1 << 20) + 1, 1<<40 + 12345, 1<<62 + 999, 1<<63 - 1}
	for _, v := range values {
		idx := histIndex(v)
		if idx < 0 || idx >= histBucketCount {
			t.Fatalf("histIndex(%d) = %d out of range", v, idx)
		}
		if upper := histValue(idx); upper < v {
			t.Errorf("histValue(histIndex(%d)) = %d < value", v, upper)
		}
		if idx > 0 {
			if prev := histValue(idx - 1); prev >= v {
				t.Errorf("value %d: previous bucket edge %d >= value", v, prev)
			}
		}
	}
}

func TestHistIndexExactBelowSubBuckets(t *testing.T) {
	for v := int64(0); v < 1<<histSubBits; v++ {
		if got := histValue(histIndex(v)); got != v {
			t.Fatalf("small value %d mapped to bucket edge %d, want exact", v, got)
		}
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	for _, v := range []int64{5, 10, 0, 100, 7} {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	if s.Sum != 122 {
		t.Errorf("Sum = %d, want 122", s.Sum)
	}
	if s.Min != 0 {
		t.Errorf("Min = %d, want 0", s.Min)
	}
	if s.Max != 100 {
		t.Errorf("Max = %d, want 100", s.Max)
	}
	if mean := s.Mean(); mean != 122.0/5 {
		t.Errorf("Mean = %v, want %v", mean, 122.0/5)
	}
}

func TestHistogramMinWithoutZero(t *testing.T) {
	// The negated-min encoding must distinguish "no samples" from "min is
	// zero" — and report a real nonzero min when zero never occurred.
	var h Histogram
	s := h.Snapshot()
	if s.Min != 0 || s.Max != 0 || s.Count != 0 {
		t.Fatalf("empty snapshot: %+v", s)
	}
	h.Record(42)
	h.Record(17)
	if s := h.Snapshot(); s.Min != 17 {
		t.Errorf("Min = %d, want 17", s.Min)
	}
}

func TestQuantileAccuracy(t *testing.T) {
	// Against a stored-sample baseline the histogram quantile must stay
	// within one sub-bucket (≈3% relative) of the true order statistic.
	rng := rand.New(rand.NewSource(9))
	var h Histogram
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform-ish spread: exercise many exponents.
		v := int64(1) << uint(rng.Intn(24))
		v += rng.Int63n(v + 1)
		h.Record(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		exact := samples[int(q*float64(len(samples)-1))]
		got := s.Quantile(q)
		// Upper-edge buckets: the estimate may exceed the exact order
		// statistic by one bucket width but never undershoot below the
		// bucket containing it.
		lo := exact - exact>>histSubBits - 1
		hi := exact + exact>>(histSubBits-1) + 1
		if got < lo || got > hi {
			t.Errorf("q=%v: got %d, exact %d (allowed [%d,%d])", q, got, exact, lo, hi)
		}
	}
	if s.Quantile(1) > s.Max {
		t.Errorf("Quantile(1) = %d exceeds observed max %d", s.Quantile(1), s.Max)
	}
}

func TestQuantileSingleValue(t *testing.T) {
	var h Histogram
	h.Record(777)
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if got := h.Quantile(q); got != 777 {
			t.Errorf("Quantile(%v) = %d, want 777 (clamped to max)", q, got)
		}
	}
}

func TestRecordNegativeClamps(t *testing.T) {
	var h Histogram
	h.Record(-5)
	s := h.Snapshot()
	if s.Min != 0 || s.Max != 0 || s.Count != 1 {
		t.Fatalf("negative record: %+v", s)
	}
}

// TestHistogramConcurrent is the -race hot-path test from the satellite:
// concurrent Record against concurrent Snapshot, then exact totals after
// the recording quiesces.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				_ = s.Quantile(0.99)
			}
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.Record(rng.Int63n(1 << 20))
			}
		}(int64(g))
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("Count = %d, want %d", s.Count, goroutines*perG)
	}
	var bucketSum uint64
	for _, c := range s.counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Record(v)
			v = (v*1664525 + 1013904223) & (1<<30 - 1)
		}
	})
}
