// Runtime metrics: the live counterpart of this package's offline sample
// math. A Registry holds lock-cheap named counters, gauges, and
// log-bucketed histograms, and exports one JSON snapshot of everything —
// via expvar, an http.Handler, or a plain writer. The transport layer's
// per-shard counters (queue depths, inbound frames), bufpool's accounting
// and the status-event stream all land here, which is what gives the soak
// harness (cmd/kmsoak) a live view of a run instead of a post-mortem.
//
// Everything is goroutine-safe. The hot-path types (Counter, Gauge,
// Histogram) are single atomics once obtained; the registry lock is only
// taken on first registration and on snapshot.
package stats

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load reads the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load reads the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry is a named collection of metrics with get-or-create
// registration, so independently started subsystems (and component
// restarts) can share one registry without coordination: the first
// Counter("x") creates it, every later call returns the same counter.
type Registry struct {
	mu        sync.RWMutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	gaugeFns  map[string]func() int64
	hists     map[string]*Histogram
	published bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers (or replaces) a gauge computed at snapshot time —
// the fit for values that already live elsewhere as cheap reads, like a
// shard registry's queue depth or bufpool's outstanding count. fn must be
// goroutine-safe; it is called outside the registry lock.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.gaugeFns[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistogramExport is a histogram's JSON shape: the summary plus the
// standard percentile ladder, so a scrape needs no bucket math.
type HistogramExport struct {
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
}

// export renders a snapshot's percentile ladder.
func export(s HistogramSnapshot) HistogramExport {
	return HistogramExport{
		Count: s.Count, Sum: s.Sum, Min: s.Min, Max: s.Max, Mean: s.Mean(),
		P50: s.Quantile(0.50), P90: s.Quantile(0.90),
		P99: s.Quantile(0.99), P999: s.Quantile(0.999),
	}
}

// Snapshot renders every metric into a flat name → value map: counters as
// uint64, gauges (stored and computed) as int64, histograms as
// HistogramExport. Gauge functions run outside the registry lock.
func (r *Registry) Snapshot() map[string]interface{} {
	r.mu.RLock()
	out := make(map[string]interface{},
		len(r.counters)+len(r.gauges)+len(r.gaugeFns)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	for name, g := range r.gauges {
		out[name] = g.Load()
	}
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for name, fn := range r.gaugeFns {
		fns[name] = fn
	}
	for name, h := range r.hists {
		out[name] = export(h.Snapshot())
	}
	r.mu.RUnlock()
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}

// WriteJSON writes the snapshot as one JSON object with sorted keys
// (deterministic output — encoding/json sorts map keys, pinned here by
// test so a golden diff of two scrapes stays meaningful).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText writes the snapshot as sorted "name value" lines — the
// human-facing form kmsoak prints at checkpoints.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var err error
		switch v := snap[name].(type) {
		case HistogramExport:
			_, err = fmt.Fprintf(w,
				"%s count=%d mean=%.1f min=%d p50=%d p90=%d p99=%d p999=%d max=%d\n",
				name, v.Count, v.Mean, v.Min, v.P50, v.P90, v.P99, v.P999, v.Max)
		default:
			_, err = fmt.Fprintf(w, "%s %v\n", name, v)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the JSON snapshot — mount it
// wherever the process already has an HTTP listener. The registry itself
// never opens a socket (it lives in the deterministic simulation cone;
// cmd/kmsoak owns the listener).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// PublishExpvar publishes the registry under the given expvar name, so
// the standard /debug/vars endpoint carries the full snapshot. Safe to
// call once per registry; a second call (component restart) is a no-op,
// and a name already taken in the process-global expvar table is left
// alone rather than panicking.
func (r *Registry) PublishExpvar(name string) {
	r.mu.Lock()
	already := r.published
	r.published = true
	r.mu.Unlock()
	if already || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} { return r.Snapshot() }))
}
