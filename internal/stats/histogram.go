package stats

import (
	"math/bits"
	"sync/atomic"
)

// Histogram is a concurrent, HDR-style log-bucketed histogram: values are
// filed into buckets whose width grows with magnitude, so p50/p99/p99.9
// come out of a fixed 16 KiB footprint without storing samples — the
// property a soak run recording millions of latencies needs. Record is
// one atomic add on a bucket plus a handful of atomic updates for the
// summary fields; there is no lock anywhere, so the transport and status
// paths can feed it directly.
//
// Precision: each power of two is split into 2^histSubBits sub-buckets,
// bounding the relative quantile error at 1/2^histSubBits (≈3% with 5
// sub-bucket bits) — the same mantissa/exponent scheme HdrHistogram uses.
// Values below 2^histSubBits are exact (their own bucket each).
//
// The zero value is ready to use. Negative values are clamped to zero
// (durations are never negative; a clamp beats a panic in a hot path).
type Histogram struct {
	counts [histBucketCount]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
	min    atomic.Int64 // stored negated so zero-value means "unset"
}

const (
	// histSubBits is the sub-bucket resolution: 2^5 = 32 sub-buckets per
	// power of two, ≈3% worst-case relative error.
	histSubBits = 5
	histSubMask = (1 << histSubBits) - 1
	// histBucketCount covers the full non-negative int64 range: values
	// below 2^histSubBits map to their own bucket, every higher power of
	// two contributes 2^histSubBits sub-buckets.
	histBucketCount = (64 - histSubBits + 1) << histSubBits
)

// histIndex maps a non-negative value onto its bucket.
func histIndex(v int64) int {
	u := uint64(v)
	if u < 1<<histSubBits {
		return int(u)
	}
	e := bits.Len64(u) - 1 // position of the top bit, ≥ histSubBits
	sub := int((u >> (uint(e) - histSubBits)) & histSubMask)
	return ((e - histSubBits + 1) << histSubBits) | sub
}

// histValue returns the representative (upper-edge) value of a bucket, so
// quantile estimates err on the conservative side.
func histValue(idx int) int64 {
	if idx < 1<<histSubBits {
		return int64(idx)
	}
	e := uint(idx>>histSubBits) + histSubBits - 1
	sub := uint64(idx&histSubMask) | (1 << histSubBits)
	// Upper edge of the bucket: next sub-bucket boundary minus one.
	return int64((sub+1)<<(e-histSubBits)) - 1
}

// Record files one observation.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if (cur != 0 && -cur <= v) || h.min.CompareAndSwap(cur, -v-1) {
			break
		}
	}
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistogramSnapshot is a point-in-time copy of a histogram, safe to
// query while the live histogram keeps recording. Snapshots taken during
// concurrent recording are not a single atomic cut — counts may be ahead
// of or behind the summary fields by in-flight observations — which is
// fine for monitoring and exact once recording has quiesced.
type HistogramSnapshot struct {
	counts [histBucketCount]uint64
	// Count and Sum aggregate every recorded observation.
	Count uint64
	Sum   int64
	// Min and Max are the observed extremes (both 0 when empty).
	Min, Max int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	if negMin := h.min.Load(); negMin != 0 {
		s.Min = -negMin - 1
	}
	for i := range h.counts {
		s.counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile returns the value at the q-quantile (0 ≤ q ≤ 1) as the upper
// edge of the bucket holding that rank — within one bucket width (≈3%) of
// the true order statistic. Zero for an empty snapshot.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is 1-based: the smallest value sits at rank 1.
	rank := uint64(q*float64(s.Count-1)) + 1
	var seen uint64
	for i := range s.counts {
		seen += s.counts[i]
		if seen >= rank {
			v := histValue(i)
			if v > s.Max {
				// The top bucket's upper edge can overshoot the true
				// maximum; never report beyond an observed value.
				v = s.Max
			}
			return v
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of recorded values (0 when empty).
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile is a convenience one-shot: snapshot, then query.
func (h *Histogram) Quantile(q float64) int64 {
	s := h.Snapshot()
	return s.Quantile(q)
}
