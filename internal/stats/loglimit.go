package stats

import (
	"sync"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/clock"
)

// LogLimiter is a token bucket for log lines: Burst immediate emissions,
// refilled at RefillPerSec. Denied emissions are counted and the count is
// handed back with the next allowed one, so a flood (a dead peer failing
// every message, a flash crowd coalescing thousands of updates) shows up
// as one line per burst with its magnitude preserved instead of a
// log-swamping line per event.
//
// Time comes from an injectable clock.Clock — the same clock the
// transport's backoff and the simulator use — so rate-limited logging
// stays deterministic under virtual time. Safe for concurrent use.
type LogLimiter struct {
	clk    clock.Clock
	burst  float64
	refill float64 // tokens per second

	// mu guards the bucket state: tokens and last, plus suppressed, the
	// count of denied logs since the last allowed one.
	mu         sync.Mutex
	tokens     float64
	last       time.Time
	suppressed int
}

// NewLogLimiter builds a limiter allowing burst immediate lines refilled
// at refillPerSec.
func NewLogLimiter(clk clock.Clock, burst int, refillPerSec float64) *LogLimiter {
	return &LogLimiter{
		clk:    clk,
		burst:  float64(burst),
		refill: refillPerSec,
		tokens: float64(burst),
		last:   clk.Now(),
	}
}

// Allow reports whether a log line may be emitted, and — when it may —
// how many lines were suppressed since the previous allowed one.
func (l *LogLimiter) Allow() (ok bool, suppressed int) {
	now := l.clk.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if dt := now.Sub(l.last); dt > 0 {
		l.tokens = min(l.burst, l.tokens+dt.Seconds()*l.refill)
	}
	l.last = now
	if l.tokens < 1 {
		l.suppressed++
		return false, 0
	}
	l.tokens--
	suppressed = l.suppressed
	l.suppressed = 0
	return true, suppressed
}
