package stats

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("msgs")
	c1.Add(3)
	if c2 := r.Counter("msgs"); c2 != c1 || c2.Load() != 3 {
		t.Fatalf("second Counter(msgs) did not return the same counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if r.Gauge("depth").Load() != 5 {
		t.Fatalf("gauge = %d, want 5", r.Gauge("depth").Load())
	}
	h := r.Histogram("rtt")
	h.Record(10)
	if r.Histogram("rtt").Count() != 1 {
		t.Fatal("second Histogram(rtt) is a different histogram")
	}
}

func TestSnapshotShapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("sent").Add(11)
	r.Gauge("queue").Set(-4)
	r.GaugeFunc("outstanding", func() int64 { return 42 })
	r.Histogram("lat").Record(100)
	snap := r.Snapshot()
	if v, ok := snap["sent"].(uint64); !ok || v != 11 {
		t.Errorf("sent = %v", snap["sent"])
	}
	if v, ok := snap["queue"].(int64); !ok || v != -4 {
		t.Errorf("queue = %v", snap["queue"])
	}
	if v, ok := snap["outstanding"].(int64); !ok || v != 42 {
		t.Errorf("outstanding = %v", snap["outstanding"])
	}
	he, ok := snap["lat"].(HistogramExport)
	if !ok || he.Count != 1 || he.P99 != 100 {
		t.Errorf("lat = %+v", snap["lat"])
	}
}

func TestHandlerServesJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Inc()
	r.Histogram("lat").Record(250)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var got map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if got["reqs"] != float64(1) {
		t.Errorf("reqs = %v", got["reqs"])
	}
	lat, ok := got["lat"].(map[string]interface{})
	if !ok || lat["p99"] != float64(250) {
		t.Errorf("lat = %v", got["lat"])
	}
}

func TestWriteTextSortedDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("c").Set(3)
	var sb1, sb2 strings.Builder
	if err := r.WriteText(&sb1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb1.String() != sb2.String() {
		t.Fatalf("WriteText not deterministic:\n%s\nvs\n%s", sb1.String(), sb2.String())
	}
	lines := strings.Split(strings.TrimSpace(sb1.String()), "\n")
	want := []string{"a 1", "b 2", "c 3"}
	for i, w := range want {
		if lines[i] != w {
			t.Fatalf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	// Double publish on the same registry, and a second registry under the
	// same name, must both be no-ops instead of expvar panics.
	r.PublishExpvar("stats_test_metrics")
	r.PublishExpvar("stats_test_metrics")
	NewRegistry().PublishExpvar("stats_test_metrics")
}

// TestCountersConcurrent is the -race counter hot-path test: concurrent
// Add/Set/Record against Snapshot, exact totals once writers are done.
func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 8, 4000
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Get-or-create raced across goroutines on purpose.
				r.Counter("ops").Inc()
				r.Gauge("depth").Add(1)
				r.Gauge("depth").Add(-1)
				r.Histogram("lat").Record(id*100 + int64(i%50))
			}
		}(int64(g))
	}
	wg.Wait()
	close(stop)
	reader.Wait()
	if got := r.Counter("ops").Load(); got != goroutines*perG {
		t.Errorf("ops = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("depth").Load(); got != 0 {
		t.Errorf("depth = %d, want 0", got)
	}
	if got := r.Histogram("lat").Count(); got != goroutines*perG {
		t.Errorf("lat count = %d, want %d", got, goroutines*perG)
	}
}
