// Package stats provides the sample statistics used by the evaluation
// (§V): sample mean with 95% confidence intervals, the relative-standard-
// error stopping rule ("at least 10 runs, more until the RSE dropped below
// 10% of the sample mean"), and percentile boxes for the selection-ratio
// distributions of figure 1.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Variance returns the unbiased sample variance.
func (s *Sample) Variance() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(len(s.xs)))
}

// RSE returns the relative standard error (standard error over mean).
// Returns +Inf for a zero mean with nonzero spread.
func (s *Sample) RSE() float64 {
	m := s.Mean()
	se := s.StdErr()
	if se == 0 {
		return 0
	}
	if m == 0 {
		return math.Inf(1)
	}
	return math.Abs(se / m)
}

// tTable holds two-sided 95% critical values of Student's t for small
// degrees of freedom; beyond the table the normal value applies.
var tTable = []float64{
	// df: 1 .. 30
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCritical95 returns the two-sided 95% t value for df degrees of freedom.
func tCritical95(df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if df <= len(tTable) {
		return tTable[df-1]
	}
	return 1.960
}

// CI95 returns the half-width of the 95% confidence interval for the mean
// (Student's t). Zero for samples with fewer than two observations.
func (s *Sample) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	return tCritical95(n-1) * s.StdErr()
}

// MeetsRSETarget implements the paper's stopping rule: at least minRuns
// observations and RSE below target.
func (s *Sample) MeetsRSETarget(minRuns int, target float64) bool {
	return s.N() >= minRuns && s.RSE() < target
}

// String summarises the sample as "mean ± ci (n=..)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.CI95(), s.N())
}

// Box is a five-number summary plus mean, as in figure 1's distribution
// plots.
type Box struct {
	Min, P25, Median, P75, Max, Mean float64
	N                                int
}

// NewBox computes a Box over xs (which it copies and sorts).
func NewBox(xs []float64) Box {
	if len(xs) == 0 {
		return Box{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	return Box{
		Min:    sorted[0],
		P25:    percentileSorted(sorted, 0.25),
		Median: percentileSorted(sorted, 0.50),
		P75:    percentileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   sum / float64(len(sorted)),
		N:      len(sorted),
	}
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
