package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.N() != 0 || s.CI95() != 0 || s.RSE() != 0 {
		t.Fatal("empty sample not all-zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !approx(s.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", s.Mean())
	}
	// Known population: sample stddev = sqrt(32/7).
	if !approx(s.StdDev(), math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", s.StdDev())
	}
	if !approx(s.StdErr(), s.StdDev()/math.Sqrt(8), 1e-12) {
		t.Fatalf("StdErr = %v", s.StdErr())
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestConstantSample(t *testing.T) {
	var s Sample
	for i := 0; i < 5; i++ {
		s.Add(42)
	}
	if s.Variance() != 0 || s.CI95() != 0 || s.RSE() != 0 {
		t.Fatal("constant sample has spread")
	}
}

func TestRSEZeroMean(t *testing.T) {
	var s Sample
	s.Add(-1)
	s.Add(1)
	if !math.IsInf(s.RSE(), 1) {
		t.Fatalf("RSE with zero mean = %v, want +Inf", s.RSE())
	}
}

func TestCI95UsesTDistribution(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	// n=2 → df=1 → t=12.706; stderr = stddev/sqrt(2) = sqrt(2)/sqrt(2) = 1.
	if !approx(s.CI95(), 12.706, 1e-9) {
		t.Fatalf("CI95 = %v, want 12.706", s.CI95())
	}
	// Large sample converges to z=1.96.
	var big Sample
	for i := 0; i < 100; i++ {
		big.Add(float64(i % 2))
	}
	want := 1.96 * big.StdErr()
	if !approx(big.CI95(), want, 1e-9) {
		t.Fatalf("large-sample CI95 = %v, want %v", big.CI95(), want)
	}
}

func TestMeetsRSETarget(t *testing.T) {
	var s Sample
	for i := 0; i < 9; i++ {
		s.Add(100)
	}
	if s.MeetsRSETarget(10, 0.1) {
		t.Fatal("met target with fewer than minRuns")
	}
	s.Add(100)
	if !s.MeetsRSETarget(10, 0.1) {
		t.Fatal("constant sample with 10 runs does not meet target")
	}
	var noisy Sample
	noisy.Add(1)
	noisy.Add(1000)
	for i := 0; i < 8; i++ {
		noisy.Add(float64(1 + i*200))
	}
	if noisy.MeetsRSETarget(10, 0.1) {
		t.Fatalf("wildly noisy sample (RSE %.2f) met 10%% target", noisy.RSE())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !approx(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%.2f) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile not 0")
	}
}

func TestNewBox(t *testing.T) {
	b := NewBox([]float64{5, 1, 3, 2, 4})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Mean != 3 || b.N != 5 {
		t.Fatalf("box = %+v", b)
	}
	if b.P25 != 2 || b.P75 != 4 {
		t.Fatalf("quartiles = %v, %v", b.P25, b.P75)
	}
	empty := NewBox(nil)
	if empty.N != 0 {
		t.Fatal("empty box has N > 0")
	}
}

func TestNewBoxDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	NewBox(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("NewBox sorted the caller's slice")
	}
}

func TestPropertyBoxInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			// Bound magnitudes so the mean cannot overflow.
			if !math.IsNaN(x) && math.Abs(x) < 1e15 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		b := NewBox(clean)
		return b.Min <= b.P25 && b.P25 <= b.Median &&
			b.Median <= b.P75 && b.P75 <= b.Max &&
			b.Min <= b.Mean && b.Mean <= b.Max &&
			b.N == len(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCIShrinksWithN(t *testing.T) {
	// For a fixed-spread sample, more observations must not widen the CI.
	f := func(seed uint8) bool {
		var small, large Sample
		for i := 0; i < 5; i++ {
			small.Add(float64(i%2) + float64(seed))
		}
		for i := 0; i < 50; i++ {
			large.Add(float64(i%2) + float64(seed))
		}
		return large.CI95() <= small.CI95()+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
