package transport

// Fan-out benchmark for the send path: N receiver endpoints on real
// loopback TCP sockets, GOMAXPROCS sender goroutines pushing messages
// round-robin through ONE sender endpoint. This is the workload the
// sharded registry targets — many peers behind a single endpoint (§II-B)
// with concurrent producers — so it measures registry/queue contention,
// not socket bandwidth (payloads are small). Run via
//
//	make bench-shard
//
// which records GOMAXPROCS 1, 4 and NumCPU sections into BENCH_shard.json.
// The procs=N sub-name keeps the three -cpu runs distinct after benchjson
// trims the -GOMAXPROCS suffix.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// fanoutWindow bounds in-flight messages per sender goroutine so the
// benchmark exercises steady-state throughput instead of filling
// MaxPendingPerPeer and measuring ErrQueueFull.
const fanoutWindow = 64

const fanoutPayload = 256

func benchFanoutSend(b *testing.B, peers int) {
	b.Helper()
	var received atomic.Int64
	target := int64(b.N)
	done := make(chan struct{}, 1)
	dests := make([]string, peers)
	for i := 0; i < peers; i++ {
		recv, err := NewEndpoint(Config{
			ListenAddr: "127.0.0.1:0",
			Protocols:  []wire.Transport{wire.TCP},
			OnMessage: func(_ From, payload []byte) {
				bufpool.Put(payload)
				if received.Add(1) == target {
					select {
					case done <- struct{}{}:
					default:
					}
				}
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := recv.Start(); err != nil {
			b.Fatal(err)
		}
		defer recv.Close()
		dests[i] = recv.Addr(wire.TCP)
	}

	send, err := NewEndpoint(Config{
		ListenAddr: "127.0.0.1:0",
		Protocols:  []wire.Transport{wire.TCP},
		OnMessage:  func(From, []byte) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := send.Start(); err != nil {
		b.Fatal(err)
	}
	defer send.Close()

	var wg sync.WaitGroup
	var errs atomic.Int64
	var nextWorker atomic.Int64
	b.SetBytes(fanoutPayload)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Spread workers across peers so every peer sees traffic even
		// when GOMAXPROCS < peers.
		i := int(nextWorker.Add(1))
		sem := make(chan struct{}, fanoutWindow)
		for pb.Next() {
			sem <- struct{}{}
			wg.Add(1)
			payload := bufpool.Get(fanoutPayload)
			send.Send(wire.TCP, dests[i%peers], payload, func(err error) {
				if err != nil {
					errs.Add(1)
				}
				wg.Done()
				<-sem
			})
			i++
		}
	})
	wg.Wait() // every notify fired
	if errs.Load() > 0 {
		b.Fatalf("%d sends failed", errs.Load())
	}
	<-done // every payload received
	b.StopTimer()
}

// fanoutProcs returns the deduplicated GOMAXPROCS levels the scaling table
// records: 1, 4 and NumCPU.
func fanoutProcs() []int {
	out := []int{1}
	for _, p := range []int{4, runtime.NumCPU()} {
		if p > out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// BenchmarkFanoutSend measures msgs/sec (1 op = 1 message) through one
// endpoint to N loopback TCP peers with concurrent producers. GOMAXPROCS
// is set per sub-benchmark (instead of -cpu) so each level keeps a
// distinct name in BENCH_shard.json.
func BenchmarkFanoutSend(b *testing.B) {
	for _, peers := range []int{1, 16} {
		for _, procs := range fanoutProcs() {
			b.Run(fmt.Sprintf("peers=%d/procs=%d", peers, procs), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				benchFanoutSend(b, peers)
			})
		}
	}
}
