package transport

import (
	"fmt"

	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// Overload policy layer. PR 4's bounded per-peer queue had exactly one
// behaviour at MaxPendingPerPeer: fail the newest send with ErrQueueFull.
// That is arrival-order shedding — precisely backwards for value-of-update
// workloads (goal-oriented transport filtering: freshness beats
// completeness). The queue is therefore parameterised by a QueuePolicy:
// the channel keeps owning the storage (queue []outMsg under c.mu, so the
// drain/close/fallback paths and their invariants are untouched), and the
// policy decides what happens at the admission and dequeue edges.
//
// Contract, shared by every implementation:
//
//   - Push and Expire are called with the channel mutex held and must not
//     block, call notify, or touch bufpool. Messages they displace are
//     *returned*, never released inline — release runs a user callback
//     and a pool Put, which must happen outside the lock. The returned
//     dropped slice is scratch owned by the PendingQueue: the caller
//     consumes it before the next call under the same lock.
//   - Per-(peer, class) FIFO is preserved: a policy may remove queued
//     messages or replace one in place, but never reorders survivors.
//   - Exactly-once accounting: every message either survives to the
//     batch writer or comes back exactly once as dropped (and is then
//     released with a typed *ErrDropped through notify, charged to the
//     endpoint's per-class drop counters).

// DropReason says why a queue policy dropped a message.
type DropReason uint8

const (
	// DropQueueFull is queue pressure: the pending queue was at
	// MaxPendingPerPeer and the policy shed this message (the rejected
	// newest, or the evicted oldest under DropOldest).
	DropQueueFull DropReason = iota + 1
	// DropCoalesced is latest-value-wins shedding: a newer update for
	// the same application key replaced this queued one.
	DropCoalesced
	// DropExpired is deadline shedding: the message was still queued
	// past its QoS deadline.
	DropExpired

	// numDropReasons sizes per-reason accounting arrays.
	numDropReasons = 3
)

// String implements fmt.Stringer.
func (r DropReason) String() string {
	switch r {
	case DropQueueFull:
		return "queue-full"
	case DropCoalesced:
		return "coalesced"
	case DropExpired:
		return "expired"
	default:
		return fmt.Sprintf("DropReason(%d)", uint8(r))
	}
}

// ErrDropped is the typed error every policy drop reports through notify,
// so at-most-once accounting upstream (the DATA interceptor, the codec
// stage, application notify handlers) can tell a policy shed from a wire
// failure and react per reason.
type ErrDropped struct {
	// Reason says why the message was shed.
	Reason DropReason
	// Class is the dropped message's QoS class.
	Class wire.Class
	// Proto and Dest identify the channel that shed it.
	Proto wire.Transport
	Dest  string
	// Limit is the channel's MaxPendingPerPeer bound.
	Limit int
}

// Error implements error.
func (e *ErrDropped) Error() string {
	switch e.Reason {
	case DropCoalesced:
		return fmt.Sprintf("transport: %s message dropped (newer update coalesced over it): %v to %s",
			e.Class, e.Proto, e.Dest)
	case DropExpired:
		return fmt.Sprintf("transport: %s message dropped (deadline expired): %v to %s",
			e.Class, e.Proto, e.Dest)
	default:
		return fmt.Sprintf("%v: %v: %d pending to %s", ErrQueueFull, e.Proto, e.Limit, e.Dest)
	}
}

// Unwrap ties queue-pressure drops into the pre-policy error contract:
// errors.Is(err, ErrQueueFull) keeps reporting overflow whether the
// policy rejected the newest or evicted the oldest. Coalesced and expired
// drops are not queue pressure and unwrap to nothing.
func (e *ErrDropped) Unwrap() error {
	if e.Reason == DropQueueFull {
		return ErrQueueFull
	}
	return nil
}

// dropped pairs a displaced message with why it was displaced.
type dropped struct {
	msg    outMsg
	reason DropReason
}

// PendingQueue is one channel's policy state. The channel owns the queue
// slice; the policy owns any index it keeps over it (positions are stable
// between Drained calls because only Push mutates the slice while
// messages are pending). All methods run under the channel mutex.
type PendingQueue interface {
	// Push admits m into q, returning the updated slice, any messages it
	// displaced (scratch; consume before the next call), and whether m
	// was handled. ok=false means m was rejected at the limit and the
	// caller charges it as DropQueueFull; a policy shedding m for any
	// other reason returns it through displaced instead (e.g. a message
	// whose deadline already passed arrives born dead).
	Push(q []outMsg, m outMsg, now int64) (nq []outMsg, displaced []dropped, ok bool)
	// Expire filters q at dequeue time, returning survivors (order
	// preserved) and the expired tail-latency casualties. Policies
	// without deadlines return q unchanged.
	Expire(q []outMsg, now int64) (nq []outMsg, expired []dropped)
	// Drained tells the policy the channel emptied the queue (batch
	// drain, close, or fallback handoff), invalidating any positional
	// index.
	Drained()
}

// QueuePolicy names an overload policy and builds its per-channel state.
// Configure with Config.QueuePolicy; the default is RejectNewest, which
// is behaviour-identical to the pre-policy fail-fast queue.
type QueuePolicy interface {
	// Name is the policy's stable CLI/report name.
	Name() string
	// NewQueue builds per-channel state for a queue bounded at limit.
	NewQueue(limit int) PendingQueue
	// NeedsTime reports whether Push/Expire consult the clock; the
	// channel skips the Clock.Now read per operation when false, keeping
	// the default policy's hot path clock-free.
	NeedsTime() bool
}

// The built-in policies.
var (
	// RejectNewest fails the arriving send at the limit — the original
	// fail-fast behaviour and the default.
	RejectNewest QueuePolicy = rejectNewestPolicy{}
	// DropOldest evicts the head of the queue at the limit and admits
	// the arrival: bounded staleness, newest data survives.
	DropOldest QueuePolicy = dropOldestPolicy{}
	// LatestValueWins coalesces per QoS key: a newer update for the same
	// (class, key) replaces the queued one in place, so under overload
	// each key's freshest value is what reaches the wire. Messages
	// without a key never coalesce; at the limit an uncoalescible
	// arrival is rejected like RejectNewest.
	LatestValueWins QueuePolicy = latestValueWinsPolicy{}
	// DeadlineExpiry drops messages whose QoS deadline passed while they
	// queued — lazily at dequeue (including the first drain after a
	// reconnect, so an outage's backlog sheds its stale tail) and as a
	// sweep before rejecting at the limit.
	DeadlineExpiry QueuePolicy = deadlineExpiryPolicy{}
)

// Policies lists the built-in queue policies.
func Policies() []QueuePolicy {
	return []QueuePolicy{RejectNewest, DropOldest, LatestValueWins, DeadlineExpiry}
}

// PolicyByName resolves a policy by its CLI name.
func PolicyByName(name string) (QueuePolicy, error) {
	for _, p := range Policies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("transport: unknown queue policy %q (have reject, drop-oldest, latest-value, deadline)", name)
}

// --- RejectNewest ------------------------------------------------------------

type rejectNewestPolicy struct{}

func (rejectNewestPolicy) Name() string    { return "reject" }
func (rejectNewestPolicy) NeedsTime() bool { return false }
func (rejectNewestPolicy) NewQueue(limit int) PendingQueue {
	return &rejectQueue{limit: limit}
}

type rejectQueue struct{ limit int }

func (p *rejectQueue) Push(q []outMsg, m outMsg, _ int64) ([]outMsg, []dropped, bool) {
	if len(q) >= p.limit {
		return q, nil, false
	}
	return append(q, m), nil, true
}

func (p *rejectQueue) Expire(q []outMsg, _ int64) ([]outMsg, []dropped) { return q, nil }
func (p *rejectQueue) Drained()                                         {}

// --- DropOldest --------------------------------------------------------------

type dropOldestPolicy struct{}

func (dropOldestPolicy) Name() string    { return "drop-oldest" }
func (dropOldestPolicy) NeedsTime() bool { return false }
func (dropOldestPolicy) NewQueue(limit int) PendingQueue {
	return &dropOldestQueue{limit: limit}
}

type dropOldestQueue struct {
	limit   int
	scratch []dropped
}

func (p *dropOldestQueue) Push(q []outMsg, m outMsg, _ int64) ([]outMsg, []dropped, bool) {
	p.scratch = p.scratch[:0]
	if len(q) >= p.limit {
		// Evict the head: one memmove per overloaded push keeps the
		// storage a plain slice (the drain, close and stats paths read it
		// as-is); the cost is confined to the saturated channel.
		p.scratch = append(p.scratch, dropped{msg: q[0], reason: DropQueueFull})
		copy(q, q[1:])
		q[len(q)-1] = m
		return q, p.scratch, true
	}
	return append(q, m), nil, true
}

func (p *dropOldestQueue) Expire(q []outMsg, _ int64) ([]outMsg, []dropped) { return q, nil }
func (p *dropOldestQueue) Drained()                                         {}

// --- LatestValueWins ---------------------------------------------------------

type latestValueWinsPolicy struct{}

func (latestValueWinsPolicy) Name() string    { return "latest-value" }
func (latestValueWinsPolicy) NeedsTime() bool { return false }
func (latestValueWinsPolicy) NewQueue(limit int) PendingQueue {
	return &latestValueQueue{limit: limit}
}

// coalesceKey scopes coalescing to (class, key): replacing a queued
// telemetry update with a later control message sharing its key would
// teleport the control message to the telemetry message's queue position,
// breaking per-(peer, class) FIFO.
type coalesceKey struct {
	class wire.Class
	key   string
}

type latestValueQueue struct {
	limit int
	// idx maps a live coalesce key to its position in the channel queue.
	// Positions are stable between Drained calls: Push either appends or
	// replaces in place, never shifts.
	idx     map[coalesceKey]int
	scratch []dropped
}

func (p *latestValueQueue) Push(q []outMsg, m outMsg, _ int64) ([]outMsg, []dropped, bool) {
	if m.qos.Key != "" {
		k := coalesceKey{class: m.qos.Class, key: m.qos.Key}
		if i, hit := p.idx[k]; hit {
			// In-place replacement keeps the stale update's queue position,
			// so distinct keys (and every other class) never reorder.
			p.scratch = append(p.scratch[:0], dropped{msg: q[i], reason: DropCoalesced})
			q[i] = m
			return q, p.scratch, true
		}
	}
	if len(q) >= p.limit {
		return q, nil, false
	}
	if m.qos.Key != "" {
		if p.idx == nil {
			p.idx = make(map[coalesceKey]int)
		}
		p.idx[coalesceKey{class: m.qos.Class, key: m.qos.Key}] = len(q)
	}
	return append(q, m), nil, true
}

func (p *latestValueQueue) Expire(q []outMsg, _ int64) ([]outMsg, []dropped) { return q, nil }

func (p *latestValueQueue) Drained() {
	// The queue emptied; every position the index held is gone. clear()
	// keeps the map's buckets warm for the next burst.
	clear(p.idx)
}

// --- DeadlineExpiry ----------------------------------------------------------

type deadlineExpiryPolicy struct{}

func (deadlineExpiryPolicy) Name() string    { return "deadline" }
func (deadlineExpiryPolicy) NeedsTime() bool { return true }
func (deadlineExpiryPolicy) NewQueue(limit int) PendingQueue {
	return &deadlineQueue{limit: limit}
}

type deadlineQueue struct {
	limit   int
	scratch []dropped
}

// expired reports whether m's deadline passed by now (0 = no deadline).
func expired(m outMsg, now int64) bool {
	return m.qos.Deadline != 0 && m.qos.Deadline <= now
}

func (p *deadlineQueue) Push(q []outMsg, m outMsg, now int64) ([]outMsg, []dropped, bool) {
	if len(q) >= p.limit {
		// At the bound, reclaim expired slots before rejecting: a queue
		// full of stale updates should not refuse fresh ones.
		q, p.scratch = sweepExpired(q, now, p.scratch[:0])
		if len(q) >= p.limit {
			return q, p.scratch, false
		}
	} else {
		p.scratch = p.scratch[:0]
	}
	if expired(m, now) {
		// Born dead (deadline already past at enqueue): shed immediately
		// rather than spending a queue slot on it. Returned through
		// displaced — not ok=false — so it is charged as DropExpired
		// rather than queue pressure.
		p.scratch = append(p.scratch, dropped{msg: m, reason: DropExpired})
		return q, p.scratch, true
	}
	return append(q, m), p.scratch, true
}

func (p *deadlineQueue) Expire(q []outMsg, now int64) ([]outMsg, []dropped) {
	q, p.scratch = sweepExpired(q, now, p.scratch[:0])
	return q, p.scratch
}

func (p *deadlineQueue) Drained() {}

// sweepExpired filters q in place, order preserved, appending casualties
// to out. Vacated tail slots are zeroed so payload/notify refs do not pin.
func sweepExpired(q []outMsg, now int64, out []dropped) ([]outMsg, []dropped) {
	w := 0
	for _, m := range q {
		if expired(m, now) {
			out = append(out, dropped{msg: m, reason: DropExpired})
			continue
		}
		q[w] = m
		w++
	}
	for i := w; i < len(q); i++ {
		q[i] = outMsg{}
	}
	return q[:w], out
}
