package transport

import (
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// The outgoing registry is lock-striped: channels for different peers live
// in different shards, so dial, send-enqueue, supervision transitions and
// teardown for different destinations never contend on one mutex — the
// multi-loop design Netty reaches with its EventLoopGroup, applied to the
// per-(protocol, destination) channel table. One shard holds the channel
// map, the UDT→TCP fallback table entries, and the redial-jitter PRNG for
// the peers that hash into it.

// sendShard is one stripe of the endpoint's outgoing registry. The mutex
// guards every field declared after it; Close quiesces shards in index
// order so shutdown stays deterministic.
type sendShard struct {
	mu       sync.Mutex //kmlint:guarded
	channels map[chanKey]*outChannel
	// fallbacks reroutes UDT destinations whose dial attempts were
	// exhausted to their TCP equivalent (port un-shifted by
	// UDTPortOffset) for the life of the endpoint. An entry lives in the
	// shard of its UDT (proto, dest) key; the TCP channel it points at
	// hashes independently.
	fallbacks map[string]string
	closed    bool
	// rng drives redial jitter for this shard's channels; seeded from
	// Config.BackoffSeed plus the shard index so supervision schedules
	// replay run to run without a global PRNG lock.
	rng *rand.Rand
}

// newSendShards builds the endpoint's stripes: N = max(8, GOMAXPROCS)
// rounded up to a power of two, so the hash masks instead of dividing.
func newSendShards(seed int64) []*sendShard {
	n := shardCount(runtime.GOMAXPROCS(0))
	shards := make([]*sendShard, n)
	for i := range shards {
		shards[i] = &sendShard{
			channels:  make(map[chanKey]*outChannel),
			fallbacks: make(map[string]string),
			rng:       rand.New(rand.NewSource(seed + int64(i))),
		}
	}
	return shards
}

// shardCount rounds max(8, procs) up to a power of two.
func shardCount(procs int) int {
	n := max(8, procs)
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// shardIndex hashes a (proto, peer-or-dest) key with FNV-1a; both the
// outgoing and the inbound registries mask it down to their stripe
// counts.
func shardIndex(proto wire.Transport, key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	h = (h ^ uint32(proto)) * prime32
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * prime32
	}
	return h
}

// shardFor hashes (proto, dest) onto a stripe with FNV-1a.
func (e *Endpoint) shardFor(proto wire.Transport, dest string) *sendShard {
	return e.shards[shardIndex(proto, dest)&uint32(len(e.shards)-1)]
}

// jitter draws from the shard's seeded PRNG.
func (s *sendShard) jitter(n time.Duration) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.rng.Int63n(int64(n)))
}

// numChannels counts registered outgoing channels across all shards.
func (e *Endpoint) numChannels() int {
	n := 0
	for _, s := range e.shards {
		s.mu.Lock()
		n += len(s.channels)
		s.mu.Unlock()
	}
	return n
}

// QueueTotals summarises the outgoing registry at one instant: how many
// channels are registered, how many messages sit queued across them, and
// the deepest single queue — the numbers the soak harness's
// bounded-queue invariant and the stats registry's gauges read.
type QueueTotals struct {
	Channels int
	Queued   int
	MaxDepth int
	// Drops sums the endpoint's queue-policy drops across all classes —
	// the coarse overload signal; DropStats has the per-class split.
	Drops PolicyDrops
}

// PolicyDrops counts queue-policy drops by reason. Counters are
// cumulative over the endpoint's life.
type PolicyDrops struct {
	// Full counts queue-pressure drops (rejected newest or evicted
	// oldest at MaxPendingPerPeer).
	Full uint64
	// Coalesced counts latest-value-wins replacements.
	Coalesced uint64
	// Expired counts deadline expiries.
	Expired uint64
}

// Total sums all reasons.
func (d PolicyDrops) Total() uint64 { return d.Full + d.Coalesced + d.Expired }

// DropTotals is the endpoint's queue-policy drop accounting, split per
// QoS class.
type DropTotals struct {
	PerClass [wire.NumClasses]PolicyDrops
}

// Sum collapses the per-class split.
func (t DropTotals) Sum() PolicyDrops {
	var s PolicyDrops
	for _, d := range t.PerClass {
		s.Full += d.Full
		s.Coalesced += d.Coalesced
		s.Expired += d.Expired
	}
	return s
}

// DropStats snapshots the endpoint's per-(class, reason) drop counters.
// Every increment corresponds to exactly one notify with *ErrDropped.
func (e *Endpoint) DropStats() DropTotals {
	var t DropTotals
	for c := 0; c < wire.NumClasses; c++ {
		t.PerClass[c] = PolicyDrops{
			Full:      e.dropCounts[c][DropQueueFull-1].Load(),
			Coalesced: e.dropCounts[c][DropCoalesced-1].Load(),
			Expired:   e.dropCounts[c][DropExpired-1].Load(),
		}
	}
	return t
}

// QueueStats walks the outgoing registry and sums queue depths. To keep
// the lock-order discipline (never nest a shard mutex and a channel
// mutex), each stripe's channel pointers are collected under the shard
// lock and the queues are measured after it is released; the result is a
// consistent-enough monitoring snapshot, not an atomic cut.
func (e *Endpoint) QueueStats() QueueTotals {
	var chans []*outChannel
	for _, s := range e.shards {
		s.mu.Lock()
		for _, c := range s.channels {
			chans = append(chans, c)
		}
		s.mu.Unlock()
	}
	t := QueueTotals{Channels: len(chans), Drops: e.DropStats().Sum()}
	for _, c := range chans {
		c.mu.Lock()
		depth := len(c.queue)
		c.mu.Unlock()
		t.Queued += depth
		if depth > t.MaxDepth {
			t.MaxDepth = depth
		}
	}
	return t
}

// findChannel returns the registered channel for (proto, dest), or nil.
func (e *Endpoint) findChannel(proto wire.Transport, dest string) *outChannel {
	s := e.shardFor(proto, dest)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.channels[chanKey{proto: proto, dest: dest}]
}
