package transport

// Fan-in benchmark for the receive path: M sender endpoints on real
// loopback TCP sockets all pushing messages at ONE receiver endpoint.
// This is the mirror image of BenchmarkFanoutSend — where fan-out
// measures contention on the outgoing registry, fan-in measures the
// inbound half: accept, per-connection read loops, the inbound
// registry, and delivery into OnMessage (payloads are small, so socket
// bandwidth is not the limit). Run via
//
//	make bench-fanin
//
// which records GOMAXPROCS 1, 4 and NumCPU sections into
// BENCH_fanin.json. The procs=N sub-name keeps the three runs distinct
// after benchjson trims the -GOMAXPROCS suffix.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

func benchFaninReceive(b *testing.B, peers int) {
	b.Helper()
	var received atomic.Int64
	target := int64(b.N)
	done := make(chan struct{}, 1)
	recv, err := NewEndpoint(Config{
		ListenAddr: "127.0.0.1:0",
		Protocols:  []wire.Transport{wire.TCP},
		OnMessage: func(_ From, payload []byte) {
			bufpool.Put(payload)
			if received.Add(1) == target {
				select {
				case done <- struct{}{}:
				default:
				}
			}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := recv.Start(); err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	dest := recv.Addr(wire.TCP)

	senders := make([]*Endpoint, peers)
	for i := range senders {
		send, err := NewEndpoint(Config{
			ListenAddr: "127.0.0.1:0",
			Protocols:  []wire.Transport{wire.TCP},
			OnMessage:  func(From, []byte) {},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := send.Start(); err != nil {
			b.Fatal(err)
		}
		defer send.Close()
		senders[i] = send
	}

	var wg sync.WaitGroup
	var errs atomic.Int64
	var nextWorker atomic.Int64
	b.SetBytes(fanoutPayload)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Spread workers across sender endpoints so every inbound
		// connection sees traffic even when GOMAXPROCS < peers.
		i := int(nextWorker.Add(1))
		sem := make(chan struct{}, fanoutWindow)
		for pb.Next() {
			sem <- struct{}{}
			wg.Add(1)
			payload := bufpool.Get(fanoutPayload)
			senders[i%peers].Send(wire.TCP, dest, payload, func(err error) {
				if err != nil {
					errs.Add(1)
				}
				wg.Done()
				<-sem
			})
			i++
		}
	})
	wg.Wait() // every notify fired
	if errs.Load() > 0 {
		b.Fatalf("%d sends failed", errs.Load())
	}
	<-done // every payload received
	b.StopTimer()
}

// BenchmarkFaninReceive measures msgs/sec (1 op = 1 message) from M
// loopback TCP sender endpoints into one receiver endpoint. GOMAXPROCS
// is set per sub-benchmark (instead of -cpu) so each level keeps a
// distinct name in BENCH_fanin.json.
func BenchmarkFaninReceive(b *testing.B) {
	for _, peers := range []int{1, 16} {
		for _, procs := range fanoutProcs() {
			b.Run(fmt.Sprintf("peers=%d/procs=%d", peers, procs), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				benchFaninReceive(b, peers)
			})
		}
	}
}
