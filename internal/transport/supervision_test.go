package transport

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/clock"
	"github.com/kompics/kompicsmessaging-go/internal/faults"
	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// TestQueueOverflowFailFast pins a channel in connecting (dials refused,
// virtual clock never advanced) and checks that the pending queue stops
// at MaxPendingPerPeer: overflowing sends fail immediately with
// ErrQueueFull through notify, queued memory stays bounded, and every
// payload — queued or rejected — returns to the pool on close.
func TestQueueOverflowFailFast(t *testing.T) {
	leakCheck(t)
	inj := faults.New(1)
	inj.Add(faults.Spec{Op: faults.OpDial, Action: faults.Refuse})
	status := make(chan StatusEvent, 64)

	const limit = 4
	col := newEventCollector()
	ep, err := NewEndpoint(Config{
		ListenAddr:        "127.0.0.1:0",
		OnMessage:         col.onMessage,
		Protocols:         []wire.Transport{wire.TCP},
		Faults:            inj,
		Clock:             clock.NewVirtual(), // never advanced: backoff waits forever
		MaxPendingPerPeer: limit,
		MaxDialAttempts:   1000,
		OnStatus:          func(ev StatusEvent) { status <- ev },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Start(); err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	dest := "127.0.0.1:9" // never actually dialed: the injector refuses first
	notify := make(chan error, limit)
	for i := 0; i < limit; i++ {
		ep.Send(wire.TCP, dest, pooled(fmt.Sprintf("m%d", i)), func(err error) { notify <- err })
	}
	// The channel is parked in its (never-ending) backoff once the first
	// refused dial reports a retry.
	expectStatus(t, status, StatusRetry)

	overflow := make(chan error, 2)
	for i := 0; i < 2; i++ {
		ep.Send(wire.TCP, dest, pooled("overflow"), func(err error) { overflow <- err })
		if err := expectNotify(t, overflow); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("overflow send %d: err = %v, want ErrQueueFull", i, err)
		}
	}

	ch := ep.findChannel(wire.TCP, dest)
	if ch == nil {
		t.Fatal("supervised channel left the registry while retrying")
	}
	ch.mu.Lock()
	queued := len(ch.queue)
	st := ch.state
	ch.mu.Unlock()
	if queued != limit {
		t.Fatalf("queue holds %d messages, want exactly %d", queued, limit)
	}
	if st != StateConnecting {
		t.Fatalf("channel state %v, want connecting", st)
	}

	// Closing the endpoint fails the bounded queue; none of the notifies
	// fired yet.
	ep.Close()
	for i := 0; i < limit; i++ {
		if err := expectNotify(t, notify); !errors.Is(err, ErrClosed) {
			t.Fatalf("queued send %d: err = %v, want ErrClosed", i, err)
		}
	}
}

// TestUDTFallbackToTCP exhausts UDT dial attempts against a peer that
// only listens on TCP: the channel must emit a fallback status event,
// hand its queue to a TCP channel at the un-shifted port, and reroute
// later UDT sends for the same destination.
func TestUDTFallbackToTCP(t *testing.T) {
	leakCheck(t)
	inj := faults.New(1)
	inj.Add(faults.Spec{Op: faults.OpDial, Action: faults.Refuse, Proto: wire.UDT})
	status := make(chan StatusEvent, 64)

	// The receiver binds a fixed TCP port so the UDT destination can
	// follow the port+offset convention.
	port := pickFreePort(t)
	tcpAddr := fmt.Sprintf("127.0.0.1:%d", port)
	udtAddr := fmt.Sprintf("127.0.0.1:%d", port+1)
	recv := newEventCollector()
	epB, err := NewEndpoint(Config{ListenAddr: tcpAddr, OnMessage: recv.onMessage,
		Protocols: []wire.Transport{wire.TCP}})
	if err != nil {
		t.Fatal(err)
	}
	if err := epB.Start(); err != nil {
		t.Fatal(err)
	}
	defer epB.Close()

	sender := newEventCollector()
	epA, err := NewEndpoint(Config{
		ListenAddr:      "127.0.0.1:0",
		OnMessage:       sender.onMessage,
		Faults:          inj,
		MaxDialAttempts: 1, // degrade on the first refused dial
		OnStatus:        func(ev StatusEvent) { status <- ev },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := epA.Start(); err != nil {
		t.Fatal(err)
	}
	defer epA.Close()

	notify := make(chan error, 1)
	epA.Send(wire.UDT, udtAddr, pooled("via-fallback"), func(err error) { notify <- err })

	ev := expectStatus(t, status, StatusFallback)
	if ev.Proto != wire.UDT || ev.Dest != udtAddr || ev.To != wire.TCP || ev.ToDest != tcpAddr {
		t.Fatalf("fallback event %+v, want UDT %s → TCP %s", ev, udtAddr, tcpAddr)
	}
	if !errors.Is(ev.Err, faults.ErrDialRefused) {
		t.Fatalf("fallback carries err %v, want the dial failure", ev.Err)
	}
	up := expectStatus(t, status, StatusUp)
	if up.Proto != wire.TCP || up.Dest != tcpAddr {
		t.Fatalf("up event %+v, want the TCP fallback channel", up)
	}
	if err := expectNotify(t, notify); err != nil {
		t.Fatalf("queued message failed across fallback: %v", err)
	}
	expectDelivery(t, recv, "via-fallback")

	// Later UDT sends reroute through the registered fallback.
	epA.Send(wire.UDT, udtAddr, pooled("rerouted"), func(err error) { notify <- err })
	if err := expectNotify(t, notify); err != nil {
		t.Fatalf("rerouted send failed: %v", err)
	}
	expectDelivery(t, recv, "rerouted")

	if st, ok := epA.ChannelState(wire.TCP, tcpAddr); !ok || st != StateUp {
		t.Fatalf("TCP fallback channel state = %v (exists %v), want up", st, ok)
	}
	if _, ok := epA.ChannelState(wire.UDT, udtAddr); ok {
		t.Fatal("dead UDT channel still registered after fallback")
	}
	got := recv.all()
	if len(got) != 2 {
		t.Fatalf("delivered %d messages, want 2 (no duplicates)", len(got))
	}
}

// TestStalledWriteReleases parks an established channel's write on a
// stall rule and confirms removing the rule lets the message through
// unharmed — the injector's third failure mode next to refuse and reset.
func TestStalledWriteReleases(t *testing.T) {
	leakCheck(t)
	inj := faults.New(1)
	recv := newEventCollector()
	epB, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: recv.onMessage,
		Protocols: []wire.Transport{wire.TCP}})
	if err != nil {
		t.Fatal(err)
	}
	if err := epB.Start(); err != nil {
		t.Fatal(err)
	}
	defer epB.Close()

	sender := newEventCollector()
	epA, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: sender.onMessage,
		Protocols: []wire.Transport{wire.TCP}, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := epA.Start(); err != nil {
		t.Fatal(err)
	}
	defer epA.Close()

	addr := epB.Addr(wire.TCP)
	notify := make(chan error, 1)
	epA.Send(wire.TCP, addr, pooled("warmup"), func(err error) { notify <- err })
	if err := expectNotify(t, notify); err != nil {
		t.Fatal(err)
	}
	expectDelivery(t, recv, "warmup")

	stallID := inj.Add(faults.Spec{Op: faults.OpWrite, Action: faults.Stall})
	epA.Send(wire.TCP, addr, pooled("stalled"), func(err error) { notify <- err })
	for inj.Hits(stallID) == 0 {
		runtime.Gosched() // until the writer is parked on the rule
	}
	select {
	case err := <-notify:
		t.Fatalf("stalled write completed prematurely: %v", err)
	default:
	}
	inj.Remove(stallID)
	if err := expectNotify(t, notify); err != nil {
		t.Fatalf("write released from stall failed: %v", err)
	}
	expectDelivery(t, recv, "stalled")
}

// TestBlackholeUDPOneShot drops exactly one outgoing datagram: the
// blackholed message still notifies success (it left this host as far
// as transport knows) but never arrives, and the next one flows.
func TestBlackholeUDPOneShot(t *testing.T) {
	leakCheck(t)
	inj := faults.New(1)
	inj.Add(faults.Spec{Op: faults.OpDatagram, Action: faults.Drop, Proto: wire.UDP, Count: 1})

	recv := newEventCollector()
	epB, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: recv.onMessage,
		Protocols: []wire.Transport{wire.UDP}})
	if err != nil {
		t.Fatal(err)
	}
	if err := epB.Start(); err != nil {
		t.Fatal(err)
	}
	defer epB.Close()

	sender := newEventCollector()
	epA, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: sender.onMessage,
		Protocols: []wire.Transport{wire.UDP}, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := epA.Start(); err != nil {
		t.Fatal(err)
	}
	defer epA.Close()

	addr := epB.Addr(wire.UDP)
	notify := make(chan error, 2)
	epA.Send(wire.UDP, addr, pooled("dropped"), func(err error) { notify <- err })
	if err := expectNotify(t, notify); err != nil {
		t.Fatalf("blackholed datagram must still notify success: %v", err)
	}
	epA.Send(wire.UDP, addr, pooled("arrives"), func(err error) { notify <- err })
	if err := expectNotify(t, notify); err != nil {
		t.Fatal(err)
	}
	expectDelivery(t, recv, "arrives")
	got := recv.all()
	if len(got) != 1 || string(got[0]) != "arrives" {
		strs := make([]string, len(got))
		for i, m := range got {
			strs[i] = string(m)
		}
		t.Fatalf("received %q, want exactly [arrives]", strs)
	}
}

// TestBackoffDelayCapsAndJitters checks the backoff policy directly:
// doubling from the base, clamped at the max, jittered within [d/2, d),
// and reproducible for a fixed seed.
func TestBackoffDelayCapsAndJitters(t *testing.T) {
	mk := func() *outChannel {
		ep, err := NewEndpoint(Config{
			ListenAddr:       "127.0.0.1:0",
			OnMessage:        func(From, []byte) {},
			RedialBackoff:    100 * time.Millisecond,
			RedialBackoffMax: 800 * time.Millisecond,
			BackoffSeed:      42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return newOutChannel(ep, ep.shardFor(wire.TCP, "x"), chanKey{proto: wire.TCP, dest: "x"})
	}
	c1, c2 := mk(), mk()
	var prev time.Duration
	for attempt := 1; attempt <= 6; attempt++ {
		full := 100 * time.Millisecond << (attempt - 1)
		if full > 800*time.Millisecond {
			full = 800 * time.Millisecond
		}
		d1 := c1.backoffDelay(attempt)
		if d1 < full/2 || d1 >= full {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d1, full/2, full)
		}
		if d2 := c2.backoffDelay(attempt); d2 != d1 {
			t.Fatalf("attempt %d: same seed produced %v and %v", attempt, d1, d2)
		}
		if attempt > 4 && d1 < prev/2 {
			t.Fatalf("capped delays collapsed: %v after %v", d1, prev)
		}
		prev = d1
	}
}
