package transport

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// faninCollector records, per origin (From), the sequence numbers it
// receives in arrival order — the receive-side mirror of seqCollector.
type faninCollector struct {
	mu   sync.Mutex
	seqs map[From][]uint32
}

func newFaninCollector() *faninCollector {
	return &faninCollector{seqs: make(map[From][]uint32)}
}

func (c *faninCollector) onMessage(from From, p []byte) {
	c.mu.Lock()
	if len(p) >= 4 {
		c.seqs[from] = append(c.seqs[from], binary.BigEndian.Uint32(p))
	}
	c.mu.Unlock()
	bufpool.Put(p)
}

func (c *faninCollector) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, s := range c.seqs {
		n += len(s)
	}
	return n
}

// snapshot copies the per-origin sequence lists.
func (c *faninCollector) snapshot() map[From][]uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[From][]uint32, len(c.seqs))
	for k, v := range c.seqs {
		out[k] = append([]uint32(nil), v...)
	}
	return out
}

// TestRecvOrderPropertyFanin is the per-peer inbound FIFO property test
// for the striped inbound registry: N concurrent sender endpoints blast
// randomized-size messages at ONE receiver, whose inbound connections
// land in different shards. Every origin must observe its own sequence
// numbers contiguously from 0 in arrival order, the registry's
// accounting must match, and (leakCheck) no pooled buffer may leak. Run
// under -race -count=3 in CI.
func TestRecvOrderPropertyFanin(t *testing.T) {
	leakCheck(t)
	const (
		senders = 6
		perPeer = 200
	)
	col := newFaninCollector()
	recv, err := NewEndpoint(Config{
		ListenAddr: "127.0.0.1:0",
		Protocols:  []wire.Transport{wire.TCP},
		OnMessage:  col.onMessage,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := recv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(recv.Close)
	dest := recv.Addr(wire.TCP)

	eps := make([]*Endpoint, senders)
	for i := range eps {
		ep, err := NewEndpoint(Config{
			ListenAddr: "127.0.0.1:0",
			Protocols:  []wire.Transport{wire.TCP},
			OnMessage:  func(_ From, p []byte) { bufpool.Put(p) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ep.Close)
		eps[i] = ep
	}

	// One goroutine per sender: per-origin submission order is that
	// goroutine's program order; payload sizes are randomized so frames
	// interleave unevenly on the wire.
	var notified sync.WaitGroup
	var mu sync.Mutex
	var sendErrs []error
	for i, ep := range eps {
		notified.Add(perPeer)
		go func(i int, ep *Endpoint) {
			rng := rand.New(rand.NewSource(int64(i)))
			for seq := uint32(0); seq < perPeer; seq++ {
				buf := bufpool.Get(8 + rng.Intn(256))
				binary.BigEndian.PutUint32(buf, seq)
				binary.BigEndian.PutUint32(buf[4:], uint32(i))
				s := seq
				ep.Send(wire.TCP, dest, buf, func(err error) {
					if err != nil {
						mu.Lock()
						sendErrs = append(sendErrs, fmt.Errorf("sender %d seq %d: %w", i, s, err))
						mu.Unlock()
					}
					notified.Done()
				})
			}
		}(i, ep)
	}
	notified.Wait()
	mu.Lock()
	if len(sendErrs) > 0 {
		t.Fatalf("%d sends failed, first: %v", len(sendErrs), sendErrs[0])
	}
	mu.Unlock()

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && col.total() < senders*perPeer {
		time.Sleep(2 * time.Millisecond)
	}
	got := col.snapshot()
	if len(got) != senders {
		t.Fatalf("received from %d origins, want %d", len(got), senders)
	}
	totalFrames := uint64(0)
	for from, seqs := range got {
		if from.Proto != wire.TCP {
			t.Fatalf("origin %v: unexpected protocol", from)
		}
		if len(seqs) != perPeer {
			t.Fatalf("origin %v delivered %d of %d messages", from, len(seqs), perPeer)
		}
		for j, s := range seqs {
			if s != uint32(j) {
				t.Fatalf("origin %v position %d: got seq %d, want %d — per-peer inbound FIFO violated", from, j, s, j)
			}
		}
		// Registry accounting: one live connection per origin, every
		// frame counted, no deaths while the peer is alive.
		conns, frames, bytes := recv.InboundStats(from.Proto, from.Peer)
		if conns != 1 || frames != perPeer || bytes == 0 {
			t.Fatalf("origin %v stats: conns=%d frames=%d bytes=%d, want 1/%d/>0", from, conns, frames, bytes, perPeer)
		}
		if d := recv.InboundDeaths(from.Proto, from.Peer); d != 0 {
			t.Fatalf("origin %v: %d premature deaths", from, d)
		}
		totalFrames += frames
	}
	if totalFrames != senders*perPeer {
		t.Fatalf("registry counted %d frames, want %d", totalFrames, senders*perPeer)
	}
	if n := recv.NumInbound(); n != senders {
		t.Fatalf("NumInbound = %d, want %d", n, senders)
	}

	// Closing one sender is a remote close from the receiver's point of
	// view: its connection deregisters and counts as a peer death.
	eps[0].Close()
	waitForCond(t, "peer death accounted", func() bool { return recv.NumInbound() == senders-1 })
	deaths := uint64(0)
	for from := range got {
		deaths += recv.InboundDeaths(from.Proto, from.Peer)
	}
	if deaths != 1 {
		t.Fatalf("recorded %d inbound deaths after one sender closed, want 1", deaths)
	}
}

func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRecvOrderTeardownNoLeak closes the receiver in the middle of a
// concurrent fan-in: whatever prefix of each origin's stream was
// delivered must still be in order, every send must resolve its notify
// exactly once (success or error), and — the leakCheck teardown — no
// pooled buffer may be left outstanding after both sides close. This is
// the zero-leak half of the inbound-registry property suite.
func TestRecvOrderTeardownNoLeak(t *testing.T) {
	leakCheck(t)
	const (
		senders = 4
		perPeer = 300
	)
	fastFail := Config{
		ListenAddr:       "127.0.0.1:0",
		Protocols:        []wire.Transport{wire.TCP},
		MaxDialAttempts:  1,
		DialTimeout:      500 * time.Millisecond,
		RedialBackoff:    time.Millisecond,
		RedialBackoffMax: 5 * time.Millisecond,
	}
	col := newFaninCollector()
	rcfg := fastFail
	rcfg.OnMessage = col.onMessage
	recv, err := NewEndpoint(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := recv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(recv.Close)
	dest := recv.Addr(wire.TCP)

	eps := make([]*Endpoint, senders)
	for i := range eps {
		scfg := fastFail
		scfg.OnMessage = func(_ From, p []byte) { bufpool.Put(p) }
		ep, err := NewEndpoint(scfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ep.Close)
		eps[i] = ep
	}

	var notified sync.WaitGroup
	for i, ep := range eps {
		notified.Add(perPeer)
		go func(i int, ep *Endpoint) {
			for seq := uint32(0); seq < perPeer; seq++ {
				buf := bufpool.Get(8)
				binary.BigEndian.PutUint32(buf, seq)
				binary.BigEndian.PutUint32(buf[4:], uint32(i))
				ep.Send(wire.TCP, dest, buf, func(error) { notified.Done() })
			}
		}(i, ep)
	}

	// Cut the receiver once the fan-in is demonstrably flowing.
	waitForCond(t, "mid-stream traffic", func() bool { return col.total() >= senders*perPeer/4 })
	recv.Close()
	if n := recv.NumInbound(); n != 0 {
		t.Fatalf("NumInbound = %d after Close, want 0", n)
	}

	// Exactly-once: every send resolves, delivered or failed, or this
	// hangs and the test times out.
	notified.Wait()
	for from, seqs := range col.snapshot() {
		for j, s := range seqs {
			if s != uint32(j) {
				t.Fatalf("origin %v position %d: got seq %d, want %d — delivered prefix out of order", from, j, s, j)
			}
		}
	}
	for _, ep := range eps {
		ep.Close()
	}
}
