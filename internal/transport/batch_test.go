package transport

// Tests for the outChannel write-coalescing semantics: one socket write
// per drained batch, per-message notify ordering, mid-batch failure
// attribution, and queue drain on close.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/codec"
	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// countingWriter records every Write call, standing in for a socket so
// the test can count syscalls.
type countingWriter struct {
	writes int
	buf    bytes.Buffer
	// limit, when > 0, accepts only that many bytes in total and then
	// fails with errSocket (a short write).
	limit int
}

var errSocket = errors.New("socket failed")

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.limit > 0 && w.buf.Len()+len(p) > w.limit {
		n := w.limit - w.buf.Len()
		w.buf.Write(p[:n])
		return n, errSocket
	}
	w.buf.Write(p)
	return len(p), nil
}

func batchOf(payloads ...string) []outMsg {
	batch := make([]outMsg, len(payloads))
	for i, p := range payloads {
		batch[i] = outMsg{payload: []byte(p)}
	}
	return batch
}

func TestWriteCoalescedSingleWritePerBatch(t *testing.T) {
	w := &countingWriter{}
	batch := batchOf("alpha", "bravo", "charlie", "delta")
	sent, err := writeCoalesced(w, batch)
	if err != nil {
		t.Fatalf("writeCoalesced: %v", err)
	}
	if sent != len(batch) {
		t.Fatalf("sent = %d, want %d", sent, len(batch))
	}
	if w.writes != 1 {
		t.Fatalf("writes = %d, want 1 per drained batch", w.writes)
	}
	// The coalesced bytes must still parse as individual frames in order.
	r := bytes.NewReader(w.buf.Bytes())
	for i, m := range batch {
		got, err := codec.ReadFrame(r, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, m.payload) {
			t.Fatalf("frame %d = %q, want %q", i, got, m.payload)
		}
	}
	if _, err := codec.ReadFrame(r, 0); err != io.EOF {
		t.Fatalf("trailing bytes after batch: err = %v", err)
	}
}

func TestWriteCoalescedSplitsOversizedBatch(t *testing.T) {
	// Three payloads of 100 kB against the 256 kB coalescing cap must go
	// out as two writes (200 kB + 100 kB), all messages sent.
	big := string(bytes.Repeat([]byte{0xCD}, 100<<10))
	w := &countingWriter{}
	sent, err := writeCoalesced(w, batchOf(big, big, big))
	if err != nil {
		t.Fatalf("writeCoalesced: %v", err)
	}
	if sent != 3 {
		t.Fatalf("sent = %d, want 3", sent)
	}
	if w.writes != 2 {
		t.Fatalf("writes = %d, want 2 for 300 kB over a 256 kB cap", w.writes)
	}
}

func TestWriteCoalescedMidBatchFailure(t *testing.T) {
	// The writer accepts the first two frames and part of the third:
	// exactly the fully-flushed prefix counts as sent.
	batch := batchOf("first", "second", "third", "fourth")
	frameLen := func(i int) int { return codec.FrameHeaderLen + len(batch[i].payload) }
	w := &countingWriter{limit: frameLen(0) + frameLen(1) + 3}
	sent, err := writeCoalesced(w, batch)
	if !errors.Is(err, errSocket) {
		t.Fatalf("err = %v, want socket failure", err)
	}
	if sent != 2 {
		t.Fatalf("sent = %d, want 2 (only the unsent tail fails)", sent)
	}
}

func TestWriteCoalescedFailureAtBatchStart(t *testing.T) {
	w := &countingWriter{limit: 1} // not even one header fits
	sent, err := writeCoalesced(w, batchOf("first", "second"))
	if !errors.Is(err, errSocket) {
		t.Fatalf("err = %v", err)
	}
	if sent != 0 {
		t.Fatalf("sent = %d, want 0", sent)
	}
}

// TestBatchNotifyOrderingLoopback sends a burst through a real TCP
// loopback channel and checks every notification fires, in send order,
// even as the run loop coalesces the queue into batches.
func TestBatchNotifyOrderingLoopback(t *testing.T) {
	recv := newTestEndpoint(t, wire.TCP)
	send := newTestEndpoint(t, wire.TCP)
	dest := recv.Addr(wire.TCP)

	const total = 500
	var mu sync.Mutex
	var order []int
	done := make(chan struct{})
	for i := 0; i < total; i++ {
		i := i
		send.Send(wire.TCP, dest, []byte(fmt.Sprintf("m-%04d", i)), func(err error) {
			if err != nil {
				t.Errorf("send %d: %v", i, err)
			}
			mu.Lock()
			order = append(order, i)
			if len(order) == total {
				close(done)
			}
			mu.Unlock()
		})
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for notifications")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, got := range order {
		if got != i {
			t.Fatalf("notification %d fired for message %d: order not preserved", i, got)
		}
	}
}

// TestOutChannelDrainOnClose checks that every queued message is failed
// with the closing error, and that sends after close fail immediately.
func TestOutChannelDrainOnClose(t *testing.T) {
	ep, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: func(From, []byte) {}})
	if err != nil {
		t.Fatal(err)
	}
	c := newOutChannel(ep, ep.shardFor(wire.TCP, "127.0.0.1:1"), chanKey{proto: wire.TCP, dest: "127.0.0.1:1"})

	var mu sync.Mutex
	var errs []error
	note := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}
	// No run goroutine: messages stay queued, as they would while a dial
	// is still in flight.
	for i := 0; i < 3; i++ {
		c.enqueue(outMsg{payload: []byte("queued"), notify: note})
	}
	c.close(ErrClosed)
	c.enqueue(outMsg{payload: []byte("late"), notify: note})

	mu.Lock()
	defer mu.Unlock()
	if len(errs) != 4 {
		t.Fatalf("notified %d messages, want 4", len(errs))
	}
	for i, err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("message %d failed with %v, want ErrClosed", i, err)
		}
	}
}

// newTestEndpoint builds and starts a single-protocol endpoint that
// discards inbound messages, closing it on test cleanup.
func newTestEndpoint(t *testing.T, proto wire.Transport) *Endpoint {
	t.Helper()
	ep, err := NewEndpoint(Config{
		ListenAddr: "127.0.0.1:0",
		Protocols:  []wire.Transport{proto},
		OnMessage:  func(From, []byte) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ep.Close)
	return ep
}
