// Package transport implements the wire layer of the middleware — the role
// Netty plays for the JVM implementation (§II-B): listeners and framed
// streams for TCP and UDT, datagrams for UDP, and a registry of outgoing
// channels created lazily per (destination, protocol) pair.
//
// Messages queue while a channel is being established ("messages delayed
// until the requested channels are available", §III-C) and channels stay
// open once created — the paper is deliberately conservative about
// reclaiming them because re-establishment can be expensive.
package transport

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/netip"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
	"github.com/kompics/kompicsmessaging-go/internal/clock"
	"github.com/kompics/kompicsmessaging-go/internal/codec"
	"github.com/kompics/kompicsmessaging-go/internal/faults"
	"github.com/kompics/kompicsmessaging-go/internal/stats"
	"github.com/kompics/kompicsmessaging-go/internal/udt"
	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// Errors returned through send notifications.
var (
	// ErrClosed reports use of a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrTooLarge reports a payload over the frame/datagram limit.
	ErrTooLarge = errors.New("transport: payload too large")
	// ErrUnsupported reports a protocol the endpoint does not listen on
	// or cannot dial.
	ErrUnsupported = errors.New("transport: unsupported protocol")
	// ErrQueueFull reports a message shed because the destination's
	// pending queue was at MaxPendingPerPeer. Which message is shed is
	// the Config.QueuePolicy's call (the arriving one under the default
	// RejectNewest, the queue head under DropOldest), but shedding is
	// always through the normal notify path — never a silent drop — so a
	// peer outage cannot grow memory without bound. Policy drops carry a
	// typed *ErrDropped; queue-pressure ones unwrap to this error.
	ErrQueueFull = errors.New("transport: pending queue full")
)

// maxUDPPayload bounds datagrams; IPv4 UDP caps near 65507 and we leave
// room for middleware headers.
const maxUDPPayload = 63 << 10

// Config parameterises an Endpoint.
type Config struct {
	// ListenAddr is the base "host:port" to bind. The same port number
	// is used for every enabled protocol (TCP, UDP and UDT can share a
	// port number, as UDT runs over UDP).
	ListenAddr string
	// Protocols enables listeners; defaults to TCP, UDP and UDT.
	Protocols []wire.Transport
	// MaxFrame bounds a single message frame (default codec.DefaultMaxFrame).
	MaxFrame int
	// DialTimeout bounds outgoing connection establishment (default 5 s).
	DialTimeout time.Duration
	// UDTPortOffset shifts the UDT listener's port relative to
	// ListenAddr, because raw UDP and UDT (which runs over UDP) cannot
	// share one UDP port (default 1). Ignored when the listen port is 0
	// (ephemeral; tests query Addr for the real binding). Dialers apply
	// the same convention to destinations themselves — core.Network does
	// so with its own UDTPortOffset setting.
	UDTPortOffset int
	// UDT tunes the UDT transport.
	UDT udt.Config
	// MaxPendingPerPeer bounds the messages queued per (protocol,
	// destination) channel while it connects or redials (default 4096).
	// What happens at the bound is QueuePolicy's decision; under the
	// default, overflowing sends fail with ErrQueueFull through notify.
	MaxPendingPerPeer int
	// QueuePolicy selects the overload policy for each channel's pending
	// queue — which messages are shed, and when, once MaxPendingPerPeer
	// bites (default RejectNewest, the original fail-fast behaviour).
	// See policy.go for the built-in policies.
	QueuePolicy QueuePolicy
	// MaxDialAttempts is how many consecutive dial failures a channel
	// tolerates before giving up — failing its queue, or falling back
	// to TCP for UDT destinations (default 3).
	MaxDialAttempts int
	// RedialBackoff is the base delay between dial attempts; each
	// attempt doubles it up to RedialBackoffMax, and the actual wait is
	// jittered to [d/2, d) (defaults 100 ms / 3 s).
	RedialBackoff    time.Duration
	RedialBackoffMax time.Duration
	// BackoffSeed seeds the jitter PRNG so supervision timing replays
	// deterministically (default 1).
	BackoffSeed int64
	// DisableFallback turns off UDT→TCP degradation after dial give-up.
	DisableFallback bool
	// Clock schedules redial backoff (default clock.Real). Tests inject
	// clock.Virtual to script outage/recovery without real waiting.
	Clock clock.Clock
	// Faults, when non-nil, intercepts dials, stream writes and
	// outgoing datagrams for failure testing (see internal/faults).
	Faults *faults.Injector
	// OnStatus, when non-nil, observes channel supervision transitions
	// (up/down/retry/fallback). Called from channel goroutines outside
	// endpoint locks; implementations must be goroutine-safe and fast.
	OnStatus func(StatusEvent)
	// OnMessage receives every inbound payload; required before Start.
	// Both the framed (TCP/UDT) and datagram (UDP) paths funnel through
	// the endpoint's deliver helper into this callback, under one
	// contract:
	//
	//   - It is called from transport goroutines (one read loop per
	//     stream connection, one for the UDP socket); implementations
	//     must be goroutine-safe. A slow callback applies backpressure
	//     to its own connection only — frames from other peers arrive on
	//     other goroutines.
	//   - Ownership of the payload buffer (drawn from bufpool) passes to
	//     the callback at the call: once done with the bytes it must
	//     return them with bufpool.Put exactly once, and it must not
	//     touch the slice after Put. Dropping the buffer is memory-safe
	//     but costs a future allocation.
	//   - from identifies the origin; payloads sharing a From arrive in
	//     wire order, and consumers that process messages concurrently
	//     must preserve that per-(Proto, Peer) FIFO themselves.
	OnMessage func(from From, payload []byte)
	// Logger receives connection-level diagnostics (default slog.Default).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if len(c.Protocols) == 0 {
		c.Protocols = []wire.Transport{wire.TCP, wire.UDP, wire.UDT}
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = codec.DefaultMaxFrame
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.UDTPortOffset == 0 {
		c.UDTPortOffset = 1
	}
	if c.MaxPendingPerPeer <= 0 {
		c.MaxPendingPerPeer = 4096
	}
	if c.QueuePolicy == nil {
		c.QueuePolicy = RejectNewest
	}
	if c.MaxDialAttempts <= 0 {
		c.MaxDialAttempts = 3
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 100 * time.Millisecond
	}
	if c.RedialBackoffMax <= 0 {
		c.RedialBackoffMax = 3 * time.Second
	}
	if c.BackoffSeed == 0 {
		c.BackoffSeed = 1
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Endpoint owns this host's listeners and outgoing channels. One Endpoint
// backs one wire.Network component.
//
// The outgoing registry is striped across sendShards (see shard.go): all
// per-peer state — channel, fallback entry, backoff PRNG — lives in the
// shard its (protocol, destination) key hashes to, so operations on
// different peers never contend. The inbound registry is striped the
// same way across recvShards (see inshard.go), so accept, per-connection
// accounting, and teardown scale with the connection count.
type Endpoint struct {
	cfg Config

	tcpLn   net.Listener
	udtLn   *udt.Listener
	udpSock *net.UDPConn

	// shards hold the outgoing channel registry; the slice is immutable
	// after NewEndpoint and its length is a power of two.
	shards []*sendShard

	// recvShards hold the inbound connection registry (inshard.go);
	// immutable after NewEndpoint, power-of-two length.
	recvShards []*recvShard

	// closing flips exactly once; shard closed flags (set in index order
	// by Close) are what gate the send path.
	closing atomic.Bool

	// dropCounts aggregates queue-policy drops per (class, reason);
	// written by the channels' drop path, read by DropStats.
	dropCounts [wire.NumClasses][numDropReasons]atomic.Uint64

	// dropWarn throttles the drop-path warn log: under sustained
	// overload every shed message would otherwise emit a line.
	dropWarn *stats.LogLimiter

	wg sync.WaitGroup
}

type chanKey struct {
	proto wire.Transport
	dest  string
}

// NewEndpoint validates cfg and prepares an endpoint; call Start to bind.
func NewEndpoint(cfg Config) (*Endpoint, error) {
	if cfg.OnMessage == nil {
		return nil, errors.New("transport: Config.OnMessage is required")
	}
	if cfg.ListenAddr == "" {
		return nil, errors.New("transport: Config.ListenAddr is required")
	}
	for _, p := range cfg.Protocols {
		if !p.Wire() {
			return nil, fmt.Errorf("%w: %v", ErrUnsupported, p)
		}
	}
	cfg = cfg.withDefaults()
	return &Endpoint{
		cfg:        cfg,
		shards:     newSendShards(cfg.BackoffSeed),
		recvShards: newRecvShards(),
		dropWarn:   stats.NewLogLimiter(cfg.Clock, dropWarnBurst, dropWarnRefillPerSec),
	}, nil
}

// Start binds the configured listeners.
func (e *Endpoint) Start() error {
	for _, p := range e.cfg.Protocols {
		var err error
		switch p {
		case wire.TCP:
			err = e.startTCP()
		case wire.UDP:
			err = e.startUDP()
		case wire.UDT:
			err = e.startUDT()
		}
		if err != nil {
			e.Close()
			return fmt.Errorf("transport: starting %v listener: %w", p, err)
		}
	}
	return nil
}

// Addr returns the bound address for proto, or the empty string when the
// protocol is not listening. Useful with port 0 (ephemeral) in tests.
func (e *Endpoint) Addr(proto wire.Transport) string {
	switch proto {
	case wire.TCP:
		if e.tcpLn != nil {
			return e.tcpLn.Addr().String()
		}
	case wire.UDP:
		if e.udpSock != nil {
			return e.udpSock.LocalAddr().String()
		}
	case wire.UDT:
		if e.udtLn != nil {
			return e.udtLn.Addr().String()
		}
	}
	return ""
}

// Close tears down listeners and channels. Pending notifications fail with
// ErrClosed. Both registries quiesce shard by shard in index order — every
// outgoing shard is marked closed (no new channels, sends fail) before any
// channel is torn down, then every inbound shard likewise before its
// connections are closed — so shutdown stays deterministic regardless of
// which peers were active.
func (e *Endpoint) Close() {
	if !e.closing.CompareAndSwap(false, true) {
		return
	}
	var chans []*outChannel
	for _, s := range e.shards {
		s.mu.Lock()
		s.closed = true
		for _, c := range s.channels {
			chans = append(chans, c)
		}
		s.channels = map[chanKey]*outChannel{}
		s.mu.Unlock()
	}

	e.closeInbound()

	if e.tcpLn != nil {
		e.tcpLn.Close()
	}
	if e.udtLn != nil {
		e.udtLn.Close()
	}
	if e.udpSock != nil {
		e.udpSock.Close()
	}
	for _, c := range chans {
		c.close(ErrClosed)
	}
	e.wg.Wait()
}

// Send queues payload for dest over proto. notify, if non-nil, is invoked
// exactly once with the write outcome (nil after the payload reached the
// socket — the middleware's at-most-once "sent" signal, not an
// end-to-end acknowledgement).
//
// Ownership of payload transfers to the endpoint: after the outcome is
// decided (notify fires, or would have) the buffer is recycled into
// bufpool, so callers must not reuse it and must pass a distinct buffer
// per Send (no broadcasting one slice to several destinations).
func (e *Endpoint) Send(proto wire.Transport, dest string, payload []byte, notify func(error)) {
	e.SendQoS(proto, dest, payload, wire.QoS{}, notify)
}

// SendQoS is Send with a per-message QoS annotation. The annotation rides
// with the message into the pending queue, where the configured
// QueuePolicy reads it under overload: Class scopes the drop accounting
// (and coalescing), Key enables latest-value-wins replacement, Deadline
// arms deadline expiry. A zero QoS makes SendQoS exactly Send.
func (e *Endpoint) SendQoS(proto wire.Transport, dest string, payload []byte, qos wire.QoS, notify func(error)) {
	fail := func(err error) {
		if notify != nil {
			notify(err)
		}
		bufpool.Put(payload)
	}
	if !proto.Wire() {
		fail(fmt.Errorf("%w: %v", ErrUnsupported, proto))
		return
	}
	if len(payload) > e.cfg.MaxFrame || (proto == wire.UDP && len(payload) > maxUDPPayload) {
		fail(fmt.Errorf("%w: %d bytes over %v", ErrTooLarge, len(payload), proto))
		return
	}
	s := e.shardFor(proto, dest)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		fail(ErrClosed)
		return
	}
	if proto == wire.UDT {
		if tcpDest, ok := s.fallbacks[dest]; ok {
			// The TCP replacement hashes to its own shard; drop this one
			// and re-enter there.
			s.mu.Unlock()
			proto, dest = wire.TCP, tcpDest
			s = e.shardFor(proto, dest)
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				fail(ErrClosed)
				return
			}
		}
	}
	ch := e.channelLocked(s, proto, dest)
	s.mu.Unlock()
	ch.enqueue(outMsg{payload: payload, qos: qos, notify: notify})
}

// channelLocked returns the out-channel for (proto, dest), creating it
// (and its run goroutine) on first use. Caller holds s.mu, the shard
// (proto, dest) hashes to.
func (e *Endpoint) channelLocked(s *sendShard, proto wire.Transport, dest string) *outChannel {
	key := chanKey{proto: proto, dest: dest}
	ch, ok := s.channels[key]
	if !ok {
		ch = newOutChannel(e, s, key)
		s.channels[key] = ch
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			ch.run()
		}()
	}
	return ch
}

// ChannelState reports the supervision state of the outgoing channel
// for (proto, dest); ok is false when no such channel exists (never
// created, or already torn down).
func (e *Endpoint) ChannelState(proto wire.Transport, dest string) (ChannelState, bool) {
	ch := e.findChannel(proto, dest)
	if ch == nil {
		return StateDown, false
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.state, true
}

// dropChannel removes a failed channel so the next Send redials.
func (c *outChannel) dropChannel() {
	s := c.shard
	s.mu.Lock()
	if s.channels[c.key] == c {
		delete(s.channels, c.key)
	}
	s.mu.Unlock()
}

// --- listeners -----------------------------------------------------------------

func (e *Endpoint) startTCP() error {
	ln, err := net.Listen("tcp", e.cfg.ListenAddr)
	if err != nil {
		return err
	}
	e.tcpLn = ln
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			e.wg.Add(1)
			go func() {
				defer e.wg.Done()
				e.readFrames(wire.TCP, conn)
			}()
		}
	}()
	return nil
}

func (e *Endpoint) startUDT() error {
	addr, err := OffsetPort(e.cfg.ListenAddr, e.cfg.UDTPortOffset)
	if err != nil {
		return err
	}
	ln, err := udt.Listen(addr, e.cfg.UDT)
	if err != nil {
		return err
	}
	e.udtLn = ln
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			e.wg.Add(1)
			go func() {
				defer e.wg.Done()
				e.readFrames(wire.UDT, conn)
			}()
		}
	}()
	return nil
}

func (e *Endpoint) startUDP() error {
	addr, err := net.ResolveUDPAddr("udp", e.cfg.ListenAddr)
	if err != nil {
		return err
	}
	sock, err := net.ListenUDP("udp", addr)
	if err != nil {
		return err
	}
	e.udpSock = sock
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		buf := make([]byte, maxUDPPayload+1)
		// peers caches the source-address string per sender so the hot
		// loop does not re-format (and re-allocate) it per datagram.
		// Owned by this goroutine only; no lock.
		peers := make(map[netip.AddrPort]string)
		for {
			n, src, err := sock.ReadFromUDPAddrPort(buf)
			if err != nil {
				return
			}
			if n == 0 || n > maxUDPPayload {
				continue
			}
			peer, ok := peers[src]
			if !ok {
				peer = src.String()
				if len(peers) >= maxUDPPeerCache {
					peers = make(map[netip.AddrPort]string)
				}
				peers[src] = peer
			}
			// Hand a pooled copy up; the consumer owns it (and returns
			// it to bufpool) while this goroutine reuses buf.
			payload := bufpool.Get(n)
			copy(payload, buf[:n])
			e.deliver(From{Proto: wire.UDP, Peer: peer}, payload)
		}
	}()
	return nil
}

// maxUDPPeerCache bounds the UDP read loop's source-address string cache;
// past it the cache resets, trading one formatting allocation per sender
// for a bounded footprint under address churn.
const maxUDPPeerCache = 1 << 14

// deliver hands one inbound payload to the configured message callback —
// the single funnel for both the framed (readFrames) and the datagram
// (UDP read loop) paths. Ownership of the pooled payload buffer passes
// to cfg.OnMessage at this call, per the contract documented on
// Config.OnMessage; the transport never touches the slice again.
func (e *Endpoint) deliver(from From, payload []byte) {
	e.cfg.OnMessage(from, payload)
}

// readFrames pumps length-prefixed frames from an inbound stream
// connection to the message callback until the stream ends or the
// endpoint closes. The connection lives in its peer's stripe of the
// inbound registry for its whole life, so registration, per-frame
// accounting, and teardown of connections from different peers never
// contend.
func (e *Endpoint) readFrames(proto wire.Transport, conn net.Conn) {
	ic, ok := e.registerInbound(proto, conn)
	if !ok {
		conn.Close()
		return
	}
	defer func() {
		e.dropInbound(ic)
		conn.Close()
	}()
	for {
		// ReadFrame fills a pooled buffer; ownership passes to deliver.
		payload, err := codec.ReadFrame(conn, e.cfg.MaxFrame)
		if err != nil {
			return
		}
		ic.frames.Add(1)
		ic.bytes.Add(uint64(len(payload)))
		e.deliver(ic.from, payload)
	}
}

// --- outgoing channels -----------------------------------------------------------

type outMsg struct {
	payload []byte
	// qos is the message's annotation, read by the queue policy while the
	// message is pending (and echoed in *ErrDropped if it is shed).
	qos    wire.QoS
	notify func(error)
}

// release decides m's outcome: the notification fires (if requested) and
// the payload buffer — owned by the endpoint since Send — returns to the
// pool. Exactly one release happens per queued message.
func (m outMsg) release(err error) {
	if m.notify != nil {
		m.notify(err)
	}
	bufpool.Put(m.payload)
}

// maxCoalesce bounds the bytes packed into one coalesced stream write.
// Larger drained batches go out as several sequential writes. 256 kB
// keeps pool buffers in the top size classes while amortising syscalls
// across dozens of typical 65 kB chunks or thousands of small messages.
const maxCoalesce = 256 << 10

// maxIdleQueueCap bounds the capacity retained by a drained queue or batch
// scratch slice, so one burst does not pin memory forever.
const maxIdleQueueCap = 1024

// outChannel serialises writes to one (destination, protocol) pair on a
// dedicated goroutine, dialing lazily on first use. The run loop drains
// the whole queue per wakeup and coalesces it into as few socket writes
// as possible (Netty-style flush batching), preserving per-message notify
// order.
type outChannel struct {
	ep *Endpoint
	// shard is the registry stripe this channel's key hashes to; the
	// channel deregisters itself there (give-up, fallback).
	shard *sendShard
	key   chanKey

	// udpAddr caches the resolved destination for datagram sends from the
	// shared listening socket; written once by run's dial, read only by
	// the same goroutine.
	udpAddr *net.UDPAddr

	// batch is run's reusable drain scratch, only touched by the run
	// goroutine (under mu inside nextBatch).
	batch []outMsg

	// pq is this channel's queue-policy state; its methods run under mu
	// and operate on queue in place. timed caches the policy's NeedsTime
	// so the default policy's send path never reads the clock.
	pq    PendingQueue
	timed bool

	mu     sync.Mutex //kmlint:guarded
	cond   *sync.Cond
	queue  []outMsg
	state  ChannelState
	closed bool
	err    error
	// redialWake is set by the backoff timer to end a redial wait.
	redialWake bool
	// redirect, when set on a closed channel, forwards late enqueues
	// instead of failing them (used by UDT→TCP fallback so sends racing
	// the switchover are not lost).
	redirect *outChannel
}

func newOutChannel(ep *Endpoint, shard *sendShard, key chanKey) *outChannel {
	c := &outChannel{ep: ep, shard: shard, key: key, state: StateConnecting}
	c.pq = ep.cfg.QueuePolicy.NewQueue(ep.cfg.MaxPendingPerPeer)
	c.timed = ep.cfg.QueuePolicy.NeedsTime()
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *outChannel) enqueue(m outMsg) {
	// Timed policies need a timestamp, read before taking mu:
	// clock.Virtual's Advance holds the clock lock while firing timers
	// whose callbacks take channel locks, so Now() under c.mu would
	// invert that order.
	var now int64
	if c.timed {
		now = c.ep.cfg.Clock.Now().UnixNano()
	}
	c.mu.Lock()
	if c.closed {
		redir, err := c.redirect, c.err
		c.mu.Unlock()
		if redir != nil {
			redir.enqueue(m)
			return
		}
		m.release(err)
		return
	}
	q, displaced, ok := c.pq.Push(c.queue, m, now)
	c.queue = q
	// The displaced slice is policy scratch, valid only under mu: copy
	// what this call must release before unlocking. One displacement
	// (the common case — a coalesce or a head eviction) stays a value
	// copy; only a multi-message sweep allocates.
	var d0 dropped
	var rest []dropped
	switch len(displaced) {
	case 0:
	case 1:
		d0 = displaced[0]
	default:
		rest = append(rest, displaced...)
	}
	c.mu.Unlock()
	if d0.reason != 0 {
		c.dropOne(d0.msg, d0.reason)
	}
	c.dropMsgs(rest)
	if !ok {
		c.dropOne(m, DropQueueFull)
		return
	}
	c.cond.Signal()
}

// nextBatch blocks until at least one message is queued, then drains the
// entire queue into the channel's reusable batch scratch; ok=false means
// the channel closed. Draining everything per wakeup is what lets the
// writer coalesce — senders that outpace the socket accumulate a batch,
// senders that don't get the old one-message behaviour.
//
// Under a timed policy the queue is run through Expire first, so a
// message that out-waited its deadline — including across an outage's
// redial backoff — is shed here instead of written. The timestamp is
// read between two critical sections (same clock lock-order constraint
// as enqueue); that is safe because only this goroutine drains, so the
// queue can only have grown in between.
func (c *outChannel) nextBatch() ([]outMsg, bool) {
	if !c.timed {
		c.mu.Lock()
		defer c.mu.Unlock()
		for len(c.queue) == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed {
			return nil, false
		}
		c.drainLocked()
		return c.batch, true
	}
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return nil, false
		}
		c.mu.Unlock()
		now := c.ep.cfg.Clock.Now().UnixNano()
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, false
		}
		q, expired := c.pq.Expire(c.queue, now)
		c.queue = q
		// Expired is policy scratch, valid only under mu (a concurrent
		// Push may reuse it): copy before unlocking. Expiry sweeps are
		// off the happy path, so the allocation is acceptable.
		var drops []dropped
		if len(expired) > 0 {
			drops = append(drops, expired...)
		}
		if len(c.queue) == 0 {
			// Everything queued had expired; release the casualties and
			// go back to waiting for live messages.
			c.pq.Drained()
			c.mu.Unlock()
			c.dropMsgs(drops)
			continue
		}
		c.drainLocked()
		c.mu.Unlock()
		c.dropMsgs(drops)
		return c.batch, true
	}
}

// drainLocked moves the whole queue into the batch scratch and resets the
// queue (and the policy's index over it). Caller holds c.mu.
func (c *outChannel) drainLocked() {
	c.batch = append(c.batch[:0], c.queue...)
	for i := range c.queue {
		c.queue[i] = outMsg{} // drop payload/notify refs for GC
	}
	if cap(c.queue) > maxIdleQueueCap {
		c.queue = nil
	} else {
		c.queue = c.queue[:0]
	}
	c.pq.Drained()
}

// releaseBatch clears the drain scratch after its messages have been
// released, bounding retained capacity.
func (c *outChannel) releaseBatch() {
	for i := range c.batch {
		c.batch[i] = outMsg{}
	}
	if cap(c.batch) > maxIdleQueueCap {
		c.batch = nil
	} else {
		c.batch = c.batch[:0]
	}
}

// Drop-path warn throttling: under sustained overload a policy can shed
// thousands of messages per second, so the warn log is a token bucket
// (same shape as core's unsendable-message warn) — one line per burst,
// with the suppressed count carried on the next allowed line.
const (
	dropWarnBurst        = 10
	dropWarnRefillPerSec = 1
)

// dropOne settles one policy-dropped message: the per-(class, reason)
// counter is charged exactly once, notify fires with a typed *ErrDropped,
// the payload returns to bufpool (via release), and a rate-limited warn
// records the shed. Never called under channel or shard locks — notify is
// a user callback.
func (c *outChannel) dropOne(m outMsg, reason DropReason) {
	e := c.ep
	cls := m.qos.Class
	if !cls.Valid() {
		cls = wire.ClassReliable
	}
	e.dropCounts[cls][reason-1].Add(1)
	m.release(&ErrDropped{
		Reason: reason,
		Class:  m.qos.Class,
		Proto:  c.key.proto,
		Dest:   c.key.dest,
		Limit:  e.cfg.MaxPendingPerPeer,
	})
	if ok, suppressed := e.dropWarn.Allow(); ok {
		e.cfg.Logger.Warn("transport: queue policy dropped message",
			"policy", e.cfg.QueuePolicy.Name(),
			"reason", reason.String(),
			"class", cls.String(),
			"proto", c.key.proto.String(),
			"dest", c.key.dest,
			"suppressed", suppressed)
	}
}

// dropMsgs settles a batch of policy drops.
func (c *outChannel) dropMsgs(drops []dropped) {
	for _, d := range drops {
		c.dropOne(d.msg, d.reason)
	}
}

// close fails all queued messages and stops the run loop.
func (c *outChannel) close(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = err
	c.state = StateDraining
	pending := c.queue
	c.queue = nil
	c.pq.Drained()
	c.mu.Unlock()
	c.cond.Broadcast()
	for _, m := range pending {
		m.release(err)
	}
	c.setState(StateDown)
}

func (c *outChannel) setState(s ChannelState) {
	c.mu.Lock()
	c.state = s
	c.mu.Unlock()
}

// run supervises the channel: dial under capped exponential backoff,
// pump batches while up, and on a write error fall back to redialing —
// the channel stays in the registry so queued and future sends ride
// through the outage. Only after MaxDialAttempts consecutive dial
// failures does the channel give up: UDT destinations degrade to TCP,
// everything else fails its queue and leaves the registry.
//
// Notify semantics are per message and in queue order: messages that
// fully reached the socket before a mid-batch failure succeed, only the
// unsent tail fails — and a message whose notify already fired is never
// retransmitted across a reconnect (at-most-once is preserved).
func (c *outChannel) run() {
	attempt := 0
	for {
		conn, err := c.dial()
		if err != nil {
			attempt++
			c.ep.cfg.Logger.Warn("transport: dial failed",
				"proto", c.key.proto.String(), "dest", c.key.dest,
				"attempt", attempt, "err", err)
			if attempt < c.ep.cfg.MaxDialAttempts {
				if c.awaitRedial(attempt, err) {
					continue
				}
				return // endpoint closed the channel while it waited
			}
			// Attempts exhausted: degrade UDT to TCP, or give up.
			if c.key.proto == wire.UDT && !c.ep.cfg.DisableFallback && c.ep.fallbackToTCP(c, err) {
				return
			}
			c.dropChannel()
			c.emit(StatusEvent{Kind: StatusDown, Err: err})
			c.close(err)
			return
		}
		attempt = 0
		c.mu.Lock()
		wasClosed := c.closed
		if !wasClosed {
			c.state = StateUp
		}
		c.mu.Unlock()
		if wasClosed { // endpoint shut down mid-dial
			if conn != nil {
				conn.Close()
			}
			return
		}
		c.emit(StatusEvent{Kind: StatusUp})
		err = c.pump(conn)
		if conn != nil {
			conn.Close()
		}
		if err == nil {
			return // channel closed while pumping
		}
		c.ep.cfg.Logger.Warn("transport: write failed",
			"proto", c.key.proto.String(), "dest", c.key.dest, "err", err)
		c.setState(StateConnecting)
		c.emit(StatusEvent{Kind: StatusDown, Err: err})
	}
}

// pump drains batches into conn until the channel closes (returns nil)
// or a write fails (returns the error; the unsent tail of the batch has
// been failed, never to be retransmitted).
func (c *outChannel) pump(conn net.Conn) error {
	for {
		batch, ok := c.nextBatch()
		if !ok {
			return nil
		}
		sent, err := c.writeBatch(conn, batch)
		for i := range batch {
			if i < sent {
				batch[i].release(nil)
			} else {
				batch[i].release(err)
			}
		}
		c.releaseBatch()
		if err != nil {
			return err
		}
	}
}

// awaitRedial parks the channel for the attempt's jittered backoff,
// returning false when the channel closed while waiting. The Retry
// status event is emitted after the timer is armed, so an observer
// driving a virtual clock can Advance(NextDelay) on receipt without
// racing the schedule.
func (c *outChannel) awaitRedial(attempt int, dialErr error) bool {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false
	}
	c.redialWake = false
	c.mu.Unlock()
	delay := c.backoffDelay(attempt)
	t := c.ep.cfg.Clock.AfterFunc(delay, func() {
		c.mu.Lock()
		c.redialWake = true
		c.mu.Unlock()
		c.cond.Broadcast()
	})
	c.emit(StatusEvent{Kind: StatusRetry, Attempt: attempt, NextDelay: delay, Err: dialErr})
	c.mu.Lock()
	for !c.redialWake && !c.closed {
		c.cond.Wait()
	}
	closed := c.closed
	c.mu.Unlock()
	t.Stop()
	return !closed
}

// backoffDelay computes the capped exponential backoff for the given
// 1-based attempt — base·2^(attempt-1) clamped to RedialBackoffMax —
// then jitters it to [d/2, d) with the endpoint's seeded PRNG so
// simultaneous redial storms decorrelate.
func (c *outChannel) backoffDelay(attempt int) time.Duration {
	d := c.ep.cfg.RedialBackoff
	for i := 1; i < attempt && d < c.ep.cfg.RedialBackoffMax; i++ {
		d *= 2
	}
	if d > c.ep.cfg.RedialBackoffMax {
		d = c.ep.cfg.RedialBackoffMax
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + c.shard.jitter(half)
}

// fallbackToTCP reroutes a UDT channel whose dial attempts are
// exhausted onto the TCP channel for the same host: the destination
// port is un-shifted by UDTPortOffset (reversing the dialer
// convention), pending messages move across in queue order — none has
// been notified, so at-most-once holds — and future Sends to the UDT
// destination follow until the endpoint restarts. Returns false when no
// fallback is possible (endpoint closed, or unparseable destination).
//
// The fallback entry lives in the UDT key's shard; the TCP channel lives
// in its own. The two shards are locked one after the other, never
// nested, so no cross-shard lock order exists. A Send that reads the
// fallback entry before the TCP channel exists simply creates it.
func (e *Endpoint) fallbackToTCP(c *outChannel, dialErr error) bool {
	tcpDest, err := OffsetPort(c.key.dest, -e.cfg.UDTPortOffset)
	if err != nil {
		return false
	}
	us := c.shard
	us.mu.Lock()
	if us.closed {
		us.mu.Unlock()
		return false
	}
	if us.channels[c.key] == c {
		delete(us.channels, c.key)
	}
	us.fallbacks[c.key.dest] = tcpDest
	us.mu.Unlock()

	ts := e.shardFor(wire.TCP, tcpDest)
	ts.mu.Lock()
	if ts.closed {
		// Endpoint shut down between the two shard sections; the caller
		// fails the queue, which is where a closing endpoint ends up
		// anyway.
		ts.mu.Unlock()
		return false
	}
	tcp := e.channelLocked(ts, wire.TCP, tcpDest)
	ts.mu.Unlock()

	c.setState(StateDraining)
	c.emit(StatusEvent{Kind: StatusFallback, To: wire.TCP, ToDest: tcpDest, Err: dialErr})
	c.mu.Lock()
	c.closed = true
	c.err = ErrClosed
	c.redirect = tcp
	pending := c.queue
	c.queue = nil
	c.pq.Drained()
	c.state = StateDown
	c.mu.Unlock()
	c.cond.Broadcast()
	for _, m := range pending {
		tcp.enqueue(m)
	}
	return true
}

// dial opens the stream connection; UDP needs none (nil conn) but resolves
// and caches the destination address once, instead of per datagram. The
// fault injector, when configured, can refuse the dial outright; stream
// connections come back wrapped with its write seam.
func (c *outChannel) dial() (net.Conn, error) {
	c.setState(StateConnecting)
	inj := c.ep.cfg.Faults
	if err := inj.Dial(c.key.proto, c.key.dest); err != nil {
		return nil, err
	}
	switch c.key.proto {
	case wire.TCP:
		conn, err := net.DialTimeout("tcp", c.key.dest, c.ep.cfg.DialTimeout)
		if err != nil {
			return nil, err
		}
		return c.wrapFaults(conn), nil
	case wire.UDT:
		cfg := c.ep.cfg.UDT
		if cfg.HandshakeTimeout <= 0 {
			cfg.HandshakeTimeout = c.ep.cfg.DialTimeout
		}
		if inj != nil {
			// Blackhole rules apply to UDT's own data packets: merge the
			// injector into the connection's loss hook.
			dest, prev := c.key.dest, cfg.LossInjector
			cfg.LossInjector = func() bool {
				return (prev != nil && prev()) || inj.DropDatagram(wire.UDT, dest)
			}
		}
		conn, err := udt.Dial(c.key.dest, cfg)
		if err != nil {
			return nil, err
		}
		return c.wrapFaults(conn), nil
	case wire.UDP:
		if c.ep.udpSock != nil {
			addr, err := net.ResolveUDPAddr("udp", c.key.dest)
			if err != nil {
				return nil, err
			}
			c.udpAddr = addr
			return nil, nil // send from the listening socket
		}
		conn, err := net.DialTimeout("udp", c.key.dest, c.ep.cfg.DialTimeout)
		if err != nil {
			return nil, err
		}
		return c.wrapFaults(conn), nil
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnsupported, c.key.proto)
	}
}

// wrapFaults installs the injector's write seam on a dialed connection.
// With no injector the connection is returned untouched, preserving the
// *net.TCPConn vectored-write fast path.
func (c *outChannel) wrapFaults(conn net.Conn) net.Conn {
	if c.ep.cfg.Faults == nil {
		return conn
	}
	return c.ep.cfg.Faults.WrapConn(conn, c.key.proto, c.key.dest)
}

// writeBatch sends a drained batch and returns how many of its messages
// fully reached the socket, with the error that stopped the rest (if any).
// Datagram sends stay one syscall per message to preserve message
// boundaries; stream sends are coalesced.
func (c *outChannel) writeBatch(conn net.Conn, batch []outMsg) (int, error) {
	if c.key.proto == wire.UDP {
		inj := c.ep.cfg.Faults
		for i := range batch {
			if inj.DropDatagram(wire.UDP, c.key.dest) {
				continue // blackholed: "sent" as far as this host knows
			}
			var err error
			if conn != nil {
				_, err = conn.Write(batch[i].payload)
			} else {
				_, err = c.ep.udpSock.WriteToUDP(batch[i].payload, c.udpAddr)
			}
			if err != nil {
				return i, err
			}
		}
		return len(batch), nil
	}
	// A lone large frame on TCP goes out as one writev of header+payload,
	// skipping the staging copy; everything else is coalesced.
	if len(batch) == 1 {
		if tc, ok := conn.(*net.TCPConn); ok {
			if _, err := codec.WriteFrameVectored(tc, batch[0].payload, c.ep.cfg.MaxFrame); err != nil {
				return 0, err
			}
			return 1, nil
		}
	}
	return writeCoalesced(conn, batch)
}

// writeCoalesced packs the batch's frames into pooled staging buffers of
// at most maxCoalesce bytes and issues one Write per buffer — one syscall
// per drained batch in the common case. On a short or failed write the
// count of fully-flushed messages is reconstructed from the byte count.
// Frame sizes are pre-validated by Send against MaxFrame.
func writeCoalesced(w io.Writer, batch []outMsg) (int, error) {
	sent := 0
	for sent < len(batch) {
		end, size := sent, 0
		for end < len(batch) {
			fs := codec.FrameHeaderLen + len(batch[end].payload)
			if end > sent && size+fs > maxCoalesce {
				break
			}
			size += fs
			end++
		}
		buf := bufpool.Get(size)[:0]
		for i := sent; i < end; i++ {
			buf = codec.AppendFrame(buf, batch[i].payload)
		}
		n, err := w.Write(buf)
		bufpool.Put(buf)
		if err != nil {
			for i := sent; i < end; i++ {
				fs := codec.FrameHeaderLen + len(batch[i].payload)
				if n < fs {
					break
				}
				n -= fs
				sent++
			}
			return sent, err
		}
		sent = end
	}
	return sent, nil
}

// OffsetPort shifts the port of "host:port" by delta; port 0 (ephemeral)
// is left untouched so tests can bind anywhere and query the real address.
func OffsetPort(addr string, delta int) (string, error) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("transport: bad address %q: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("transport: bad port in %q: %w", addr, err)
	}
	if port == 0 {
		return addr, nil
	}
	return net.JoinHostPort(host, strconv.Itoa(port+delta)), nil
}
