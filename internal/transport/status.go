package transport

import (
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// ChannelState is the supervision state of one outgoing channel.
//
//	connecting ──dial ok──▶ up ──write error──▶ connecting (redial w/ backoff)
//	connecting ──attempts exhausted──▶ draining ──pending resolved──▶ down
//
// A channel leaves the registry only when it reaches down (give-up or
// fallback) or the endpoint closes; transient write failures keep it
// registered so queued and future sends ride through the redial.
type ChannelState int

const (
	// StateConnecting: dialing, or waiting out a redial backoff. Sends
	// queue (up to MaxPendingPerPeer).
	StateConnecting ChannelState = iota + 1
	// StateUp: established; the run loop is draining the queue.
	StateUp
	// StateDraining: the channel is resolving its pending queue on the
	// way down (failing it, or handing it to a fallback channel).
	StateDraining
	// StateDown: terminal; the channel is out of the registry.
	StateDown
)

func (s ChannelState) String() string {
	switch s {
	case StateConnecting:
		return "connecting"
	case StateUp:
		return "up"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	default:
		return "unknown"
	}
}

// StatusKind discriminates StatusEvent.
type StatusKind int

const (
	// StatusUp: the channel established (first dial or a redial).
	StatusUp StatusKind = iota + 1
	// StatusDown: the channel lost its connection (Err says why). If
	// redial attempts remain a StatusRetry follows; otherwise the
	// channel is gone and queued sends have failed.
	StatusDown
	// StatusRetry: a dial attempt failed; the next one runs after
	// NextDelay. Emitted only after the backoff timer is armed, so a
	// test driving a virtual clock can Advance(NextDelay) on receipt
	// without racing the schedule.
	StatusRetry
	// StatusFallback: dial attempts to a UDT destination are exhausted
	// and the channel's queue moved to TCP (To/ToDest). Future sends to
	// the original destination are rerouted until the endpoint restarts.
	StatusFallback
)

func (k StatusKind) String() string {
	switch k {
	case StatusUp:
		return "up"
	case StatusDown:
		return "down"
	case StatusRetry:
		return "retry"
	case StatusFallback:
		return "fallback"
	default:
		return "unknown"
	}
}

// StatusEvent reports a supervision transition on one outgoing channel.
// Events are emitted outside endpoint and channel locks, in order per
// channel; the OnStatus callback must be goroutine-safe.
type StatusEvent struct {
	Kind  StatusKind
	Proto wire.Transport
	Dest  string
	// At is the event's timestamp, read from the endpoint's injectable
	// clock (Config.Clock) at emit time — never from the wall clock — so
	// recovery latency (Down → Up) is measurable in tests that drive a
	// virtual clock: the difference equals exactly the advanced backoff.
	At time.Time
	// Attempt counts consecutive failed dials (1-based), NextDelay is
	// the backoff before the next; set on StatusRetry.
	Attempt   int
	NextDelay time.Duration
	// To/ToDest name the replacement channel on StatusFallback.
	To     wire.Transport
	ToDest string
	// Err is the triggering failure on Down/Retry/Fallback.
	Err error
}

// emit delivers ev (stamped with the channel's identity) to the
// endpoint's OnStatus callback, if any. Must be called without holding
// c.mu or the endpoint mutex.
func (c *outChannel) emit(ev StatusEvent) {
	if c.ep.cfg.OnStatus == nil {
		return
	}
	ev.Proto = c.key.proto
	ev.Dest = c.key.dest
	ev.At = c.ep.cfg.Clock.Now()
	c.ep.cfg.OnStatus(ev)
}
