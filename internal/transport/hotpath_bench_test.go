package transport

// Loopback benchmarks for the wire hot path: real sockets, real syscalls,
// measuring the per-message cost of Endpoint.Send → outChannel →
// readFrames/UDP reader → OnMessage. Run via
//
//	make bench-hotpath
//
// which also regenerates BENCH_hotpath.json.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
	"github.com/kompics/kompicsmessaging-go/internal/udt"
	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// benchLoopback pumps b.N payloads of the given size through a pair of
// endpoints on the OS loopback and waits for full receipt (TCP) or for the
// final write to complete (UDP, where the loopback may drop datagrams under
// benchmark load, but the send path is what we measure).
func benchLoopback(b *testing.B, proto wire.Transport, size int) {
	b.Helper()
	var received atomic.Int64
	done := make(chan struct{}, 1)
	target := int64(b.N)
	benchUDT := udt.Config{MaxRate: 1 << 30}
	recv, err := NewEndpoint(Config{
		ListenAddr: "127.0.0.1:0",
		Protocols:  []wire.Transport{proto},
		UDT:        benchUDT,
		OnMessage: func(_ From, payload []byte) {
			bufpool.Put(payload) // receiver owns the buffer; recycle it
			if received.Add(1) == target {
				select {
				case done <- struct{}{}:
				default:
				}
			}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := recv.Start(); err != nil {
		b.Fatal(err)
	}
	defer recv.Close()

	send, err := NewEndpoint(Config{
		ListenAddr: "127.0.0.1:0",
		Protocols:  []wire.Transport{proto},
		UDT:        benchUDT,
		OnMessage:  func(From, []byte) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := send.Start(); err != nil {
		b.Fatal(err)
	}
	defer send.Close()

	dest := recv.Addr(proto)
	sent := make(chan error, 1)
	lastNotify := func(err error) { sent <- err }

	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := bufpool.Get(size)
		var notify func(error)
		if i == b.N-1 {
			notify = lastNotify
		}
		send.Send(proto, dest, payload, notify)
	}
	if err := <-sent; err != nil {
		b.Fatal(err)
	}
	if proto != wire.UDP {
		<-done // reliable streams (TCP, UDT) wait for full receipt
	}
	b.StopTimer()
}

// BenchmarkWirePathTCPLoopback measures framed, batched stream sends over
// real TCP loopback sockets, end to end to OnMessage.
func BenchmarkWirePathTCPLoopback(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			benchLoopback(b, wire.TCP, size)
		})
	}
}

// BenchmarkWirePathUDTLoopback measures framed sends over the userspace
// UDT stream (paced, ACKed, reassembled), end to end to OnMessage — the
// per-message cost of the paper's bulk-data transport choice.
func BenchmarkWirePathUDTLoopback(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			benchLoopback(b, wire.UDT, size)
		})
	}
}

// BenchmarkWirePathUDPLoopback measures the datagram send path (routing
// resolution + socket write) over the real UDP loopback socket.
func BenchmarkWirePathUDPLoopback(b *testing.B) {
	for _, size := range []int{1 << 10, 32 << 10} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			benchLoopback(b, wire.UDP, size)
		})
	}
}
