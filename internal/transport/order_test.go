package transport

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// seqCollector records the per-peer sequence numbers it receives, in
// arrival order.
type seqCollector struct {
	mu   sync.Mutex
	seqs []uint32
}

func (c *seqCollector) onMessage(_ From, p []byte) {
	c.mu.Lock()
	if len(p) >= 4 {
		c.seqs = append(c.seqs, binary.BigEndian.Uint32(p))
	}
	c.mu.Unlock()
	bufpool.Put(p)
}

func (c *seqCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.seqs)
}

// TestSendOrderPropertyAcrossShards is the per-peer FIFO property test for
// the striped registry: concurrent producers blast interleaved sends at K
// peers (whose channels land in different shards), and every peer must
// observe its own messages in submission order with exactly one notify per
// send. Run under -race -count=3 in CI.
func TestSendOrderPropertyAcrossShards(t *testing.T) {
	leakCheck(t)
	const (
		peers   = 6
		perPeer = 200
	)
	// One receiver endpoint per peer so each (proto, dest) key is a
	// distinct shard entry on the sender.
	recv := make([]*seqCollector, peers)
	dests := make([]string, peers)
	for i := range recv {
		col := &seqCollector{}
		ep, err := NewEndpoint(Config{
			ListenAddr: "127.0.0.1:0",
			Protocols:  []wire.Transport{wire.TCP},
			OnMessage:  col.onMessage,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ep.Close)
		recv[i] = col
		dests[i] = ep.Addr(wire.TCP)
	}
	sender, err := NewEndpoint(Config{
		ListenAddr: "127.0.0.1:0",
		Protocols:  []wire.Transport{wire.TCP},
		OnMessage:  func(_ From, p []byte) { bufpool.Put(p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sender.Close)

	// Each producer goroutine owns two peers, so per-peer submission order
	// is that producer's program order while the shards themselves see
	// concurrent traffic.
	var notified sync.WaitGroup
	var mu sync.Mutex
	var sendErrs []error
	var producers sync.WaitGroup
	for p := 0; p < peers/2; p++ {
		producers.Add(1)
		go func(p int) {
			defer producers.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			mine := []int{2 * p, 2*p + 1}
			next := make(map[int]uint32)
			for n := 0; n < 2*perPeer; n++ {
				peer := mine[rng.Intn(len(mine))]
				if next[peer] == perPeer {
					peer = mine[0] + mine[1] - peer
				}
				seq := next[peer]
				next[peer]++
				buf := bufpool.Get(8)
				binary.BigEndian.PutUint32(buf, seq)
				binary.BigEndian.PutUint32(buf[4:], uint32(peer))
				notified.Add(1)
				sender.Send(wire.TCP, dests[peer], buf, func(err error) {
					if err != nil {
						mu.Lock()
						sendErrs = append(sendErrs, fmt.Errorf("peer %d seq %d: %w", peer, seq, err))
						mu.Unlock()
					}
					notified.Done()
				})
			}
		}(p)
	}
	producers.Wait()
	notified.Wait() // exactly-once: Done must fire once per Send or this hangs
	mu.Lock()
	if len(sendErrs) > 0 {
		t.Fatalf("%d sends failed, first: %v", len(sendErrs), sendErrs[0])
	}
	mu.Unlock()

	deadline := time.Now().Add(15 * time.Second)
	for _, col := range recv {
		for time.Now().Before(deadline) && col.count() < perPeer {
			time.Sleep(2 * time.Millisecond)
		}
	}
	for i, col := range recv {
		col.mu.Lock()
		seqs := append([]uint32(nil), col.seqs...)
		col.mu.Unlock()
		if len(seqs) != perPeer {
			t.Fatalf("peer %d received %d of %d messages", i, len(seqs), perPeer)
		}
		for j, s := range seqs {
			if s != uint32(j) {
				t.Fatalf("peer %d position %d: got seq %d, want %d — per-peer FIFO violated", i, j, s, j)
			}
		}
	}
}
