package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
	"github.com/kompics/kompicsmessaging-go/internal/clock"
	"github.com/kompics/kompicsmessaging-go/internal/faults"
	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// TestQoSPolicyByName pins the CLI names and the error for unknown ones.
func TestQoSPolicyByName(t *testing.T) {
	for _, p := range Policies() {
		got, err := PolicyByName(p.Name())
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", p.Name(), err)
		}
		if got.Name() != p.Name() {
			t.Fatalf("PolicyByName(%q) resolved %q", p.Name(), got.Name())
		}
	}
	if _, err := PolicyByName("coin-flip"); err == nil || !strings.Contains(err.Error(), "latest-value") {
		t.Fatalf("unknown policy error should list the choices, got %v", err)
	}
}

// TestQoSDefaultPolicyIsReject checks that a Config without an explicit
// QueuePolicy gets the behaviour-identical fail-fast default.
func TestQoSDefaultPolicyIsReject(t *testing.T) {
	ep, err := NewEndpoint(Config{
		ListenAddr: "127.0.0.1:0",
		OnMessage:  func(_ From, p []byte) { bufpool.Put(p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if name := ep.cfg.QueuePolicy.Name(); name != "reject" {
		t.Fatalf("default queue policy is %q, want reject", name)
	}
}

// TestQoSErrDroppedMessages pins the error contract: queue-pressure drops
// name the protocol and unwrap to ErrQueueFull; value/deadline sheds are
// distinct conditions and unwrap to nothing.
func TestQoSErrDroppedMessages(t *testing.T) {
	full := &ErrDropped{Reason: DropQueueFull, Class: wire.ClassControl, Proto: wire.UDT, Dest: "10.0.0.7:99", Limit: 64}
	if !errors.Is(full, ErrQueueFull) {
		t.Fatal("queue-full drop does not unwrap to ErrQueueFull")
	}
	for _, want := range []string{"UDT", "64", "10.0.0.7:99"} {
		if !strings.Contains(full.Error(), want) {
			t.Fatalf("queue-full message %q missing %q", full.Error(), want)
		}
	}

	coalesced := &ErrDropped{Reason: DropCoalesced, Class: wire.ClassTelemetry, Proto: wire.TCP, Dest: "d"}
	expired := &ErrDropped{Reason: DropExpired, Class: wire.ClassTelemetry, Proto: wire.TCP, Dest: "d"}
	for _, e := range []*ErrDropped{coalesced, expired} {
		if errors.Is(e, ErrQueueFull) {
			t.Fatalf("%v drop must not report queue pressure", e.Reason)
		}
		var de *ErrDropped
		if !errors.As(error(e), &de) || de.Reason != e.Reason {
			t.Fatalf("errors.As lost the drop reason for %v", e.Reason)
		}
	}
	if !strings.Contains(coalesced.Error(), "coalesced") || !strings.Contains(expired.Error(), "deadline") {
		t.Fatalf("drop messages not descriptive: %q / %q", coalesced.Error(), expired.Error())
	}
}

// qosMsg builds an unpooled outMsg carrying seq in its payload for the
// policy-level tests (policies never release, so no pooling needed).
func qosMsg(seq uint32, q wire.QoS) outMsg {
	p := make([]byte, 4)
	binary.BigEndian.PutUint32(p, seq)
	return outMsg{payload: p, qos: q}
}

func qosSeq(m outMsg) uint32 { return binary.BigEndian.Uint32(m.payload) }

// TestQoSLatestValueDistinctKeysKeepOrder drives latestValueQueue
// directly: coalescing replaces in place, so distinct keys keep their
// original relative order and the refreshed key keeps its slot.
func TestQoSLatestValueDistinctKeysKeepOrder(t *testing.T) {
	pq := LatestValueWins.NewQueue(8)
	var q []outMsg
	for i := uint32(0); i < 3; i++ {
		var d []dropped
		var ok bool
		q, d, ok = pq.Push(q, qosMsg(i, wire.QoS{Key: fmt.Sprintf("k%d", i)}), 0)
		if !ok || len(d) != 0 {
			t.Fatalf("fresh key %d: ok=%v displaced=%d", i, ok, len(d))
		}
	}
	// Refresh k0: same slot, old message displaced as coalesced.
	q, d, ok := pq.Push(q, qosMsg(100, wire.QoS{Key: "k0"}), 0)
	if !ok || len(d) != 1 || d[0].reason != DropCoalesced || qosSeq(d[0].msg) != 0 {
		t.Fatalf("coalesce: ok=%v displaced=%+v", ok, d)
	}
	want := []uint32{100, 1, 2}
	if len(q) != len(want) {
		t.Fatalf("queue length %d, want %d", len(q), len(want))
	}
	for i, w := range want {
		if got := qosSeq(q[i]); got != w {
			t.Fatalf("slot %d holds seq %d, want %d (reordered)", i, got, w)
		}
	}
	// Same key, different class: a distinct coalesce scope, appends.
	q, d, ok = pq.Push(q, qosMsg(200, wire.QoS{Class: wire.ClassControl, Key: "k0"}), 0)
	if !ok || len(d) != 0 || len(q) != 4 || qosSeq(q[3]) != 200 {
		t.Fatalf("cross-class push coalesced: ok=%v displaced=%d len=%d", ok, len(d), len(q))
	}
	// Keyless messages never coalesce.
	q, d, ok = pq.Push(q, qosMsg(300, wire.QoS{}), 0)
	if !ok || len(d) != 0 || len(q) != 5 {
		t.Fatalf("keyless push coalesced: ok=%v displaced=%d len=%d", ok, len(d), len(q))
	}
	_ = q
}

// TestQoSDeadlineBornDead checks that a message whose deadline already
// passed at enqueue is shed as DropExpired (through displaced, ok=true),
// not mischarged as queue pressure.
func TestQoSDeadlineBornDead(t *testing.T) {
	pq := DeadlineExpiry.NewQueue(4)
	var q []outMsg
	q, d, ok := pq.Push(q, qosMsg(1, wire.QoS{Deadline: 50}), 100)
	if !ok {
		t.Fatal("born-dead message charged as queue-full (ok=false)")
	}
	if len(q) != 0 || len(d) != 1 || d[0].reason != DropExpired || qosSeq(d[0].msg) != 1 {
		t.Fatalf("born-dead: queue=%d displaced=%+v", len(q), d)
	}
	// At the limit, expired slots are reclaimed before rejecting.
	for i := uint32(2); i < 6; i++ {
		q, _, _ = pq.Push(q, qosMsg(i, wire.QoS{Deadline: 200}), 100)
	}
	if len(q) != 4 {
		t.Fatalf("queue length %d, want 4", len(q))
	}
	q, d, ok = pq.Push(q, qosMsg(9, wire.QoS{Deadline: 400}), 300) // all four queued expired at t=300
	if !ok || len(d) != 4 || len(q) != 1 || qosSeq(q[0]) != 9 {
		t.Fatalf("sweep-at-limit: ok=%v displaced=%d queue=%d", ok, len(d), len(q))
	}
	for _, dr := range d {
		if dr.reason != DropExpired {
			t.Fatalf("swept message charged %v, want expired", dr.reason)
		}
	}
}

// TestQoSPerClassFIFOProperty is the randomized ordering property over
// every built-in policy: simulate the channel's push/expire/drain cycle
// and assert (1) the queue never exceeds its bound, (2) every message is
// accounted exactly once — delivered or dropped, (3) delivery order is
// FIFO per (peer, class); for LatestValueWins, FIFO per (class, key),
// since coalescing re-fills a key's existing slot.
func TestQoSPerClassFIFOProperty(t *testing.T) {
	for _, pol := range Policies() {
		t.Run(pol.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			const limit = 8
			pq := pol.NewQueue(limit)
			var q []outMsg
			now := int64(1_000)
			next := uint32(0)

			type meta struct {
				qos wire.QoS
			}
			pushed := map[uint32]meta{}
			outcome := map[uint32]string{} // "delivered" or the drop reason
			var delivered []uint32

			account := func(seq uint32, what string) {
				if prev, dup := outcome[seq]; dup {
					t.Fatalf("seq %d accounted twice: %s then %s", seq, prev, what)
				}
				outcome[seq] = what
			}
			drops := func(ds []dropped) {
				for _, d := range ds {
					account(qosSeq(d.msg), d.reason.String())
				}
			}
			drain := func() {
				var exp []dropped
				q, exp = pq.Expire(q, now)
				drops(exp)
				for _, m := range q {
					seq := qosSeq(m)
					account(seq, "delivered")
					delivered = append(delivered, seq)
				}
				q = q[:0]
				pq.Drained()
			}

			for i := 0; i < 3_000; i++ {
				switch op := rng.Intn(10); {
				case op < 7: // push
					qos := wire.QoS{Class: wire.Class(rng.Intn(wire.NumClasses))}
					if rng.Intn(2) == 0 {
						qos.Key = fmt.Sprintf("k%d", rng.Intn(4))
					}
					if rng.Intn(3) == 0 {
						qos.Deadline = now + int64(rng.Intn(200)) - 60
					}
					seq := next
					next++
					pushed[seq] = meta{qos: qos}
					var ds []dropped
					var ok bool
					q, ds, ok = pq.Push(q, qosMsg(seq, qos), now)
					drops(ds)
					if !ok {
						account(seq, DropQueueFull.String())
					}
					if len(q) > limit {
						t.Fatalf("queue grew to %d, bound is %d", len(q), limit)
					}
				case op < 8: // time passes
					now += int64(rng.Intn(150))
				case op < 9: // dequeue-time expiry without a full drain
					var exp []dropped
					q, exp = pq.Expire(q, now)
					drops(exp)
				default:
					drain()
				}
			}
			drain()

			for seq := range pushed {
				if _, ok := outcome[seq]; !ok {
					t.Fatalf("seq %d vanished: neither delivered nor dropped", seq)
				}
			}
			// FIFO: delivered seqs strictly increase per class — per
			// (class, key) for the coalescing policy.
			last := map[coalesceKey]uint32{}
			for _, seq := range delivered {
				scope := coalesceKey{class: pushed[seq].qos.Class}
				if pol.Name() == "latest-value" {
					scope.key = pushed[seq].qos.Key
				}
				if prev, seen := last[scope]; seen && seq <= prev {
					t.Fatalf("%s: scope %+v delivered seq %d after %d (reordered)",
						pol.Name(), scope, seq, prev)
				}
				last[scope] = seq
			}
		})
	}
}

// TestQoSDropOldestEvictsHead pins a channel in connecting (supervision
// pattern: dials refused, virtual clock never advanced) under DropOldest:
// overflowing sends evict the oldest queued messages — notified oldest
// first with ErrQueueFull-compatible ErrDropped — and the per-class drop
// counters match the notify accounting exactly.
func TestQoSDropOldestEvictsHead(t *testing.T) {
	leakCheck(t)
	inj := faults.New(1)
	inj.Add(faults.Spec{Op: faults.OpDial, Action: faults.Refuse})
	status := make(chan StatusEvent, 64)

	const limit = 4
	col := newEventCollector()
	ep, err := NewEndpoint(Config{
		ListenAddr:        "127.0.0.1:0",
		OnMessage:         col.onMessage,
		Protocols:         []wire.Transport{wire.TCP},
		Faults:            inj,
		Clock:             clock.NewVirtual(), // never advanced: backoff waits forever
		MaxPendingPerPeer: limit,
		MaxDialAttempts:   1000,
		QueuePolicy:       DropOldest,
		OnStatus:          func(ev StatusEvent) { status <- ev },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Start(); err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	dest := "127.0.0.1:9" // never actually dialed: the injector refuses first
	type result struct {
		i   int
		err error
	}
	results := make(chan result, limit+2)
	for i := 0; i < limit+2; i++ {
		i := i
		ep.SendQoS(wire.TCP, dest, pooled(fmt.Sprintf("m%d", i)), wire.QoS{Class: wire.ClassControl},
			func(err error) { results <- result{i, err} })
	}
	expectStatus(t, status, StatusRetry)

	// Sends 4 and 5 each evicted the then-oldest message: m0, then m1,
	// notified in eviction order before any later outcome.
	for want := 0; want < 2; want++ {
		select {
		case r := <-results:
			if r.i != want {
				t.Fatalf("eviction %d hit message %d, want the oldest (m%d)", want, r.i, want)
			}
			if !errors.Is(r.err, ErrQueueFull) {
				t.Fatalf("evicted m%d: err = %v, want ErrQueueFull compatibility", r.i, r.err)
			}
			var de *ErrDropped
			if !errors.As(r.err, &de) || de.Reason != DropQueueFull || de.Class != wire.ClassControl || de.Limit != limit {
				t.Fatalf("evicted m%d: err = %#v, want queue-full ErrDropped for control class", r.i, r.err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for eviction notify")
		}
	}

	ch := ep.findChannel(wire.TCP, dest)
	if ch == nil {
		t.Fatal("channel left the registry while retrying")
	}
	ch.mu.Lock()
	queued := len(ch.queue)
	ch.mu.Unlock()
	if queued != limit {
		t.Fatalf("queue holds %d messages, want exactly %d", queued, limit)
	}

	ds := ep.DropStats()
	if got := ds.PerClass[wire.ClassControl].Full; got != 2 {
		t.Fatalf("control-class full drops = %d, want 2", got)
	}
	if got := ep.QueueStats().Drops; got.Total() != 2 || got.Full != 2 {
		t.Fatalf("QueueStats drops = %+v, want 2 full", got)
	}

	ep.Close()
	for i := 0; i < limit; i++ {
		select {
		case r := <-results:
			if r.i < 2 || !errors.Is(r.err, ErrClosed) {
				t.Fatalf("surviving m%d: err = %v, want ErrClosed", r.i, r.err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for close notify")
		}
	}
}

// TestQoSLatestValueWinsEndToEnd is the acceptance scenario: an outage
// pins the channel while a telemetry workload keeps updating a handful of
// keys. LatestValueWins must shed by value — when the link comes back,
// exactly the freshest update per key reaches the peer, every stale one
// is notified as coalesced, the per-class counters match the notify
// accounting exactly, and no displaced payload leaks (leakCheck).
func TestQoSLatestValueWinsEndToEnd(t *testing.T) {
	leakCheck(t)
	inj := faults.New(1)
	refuseID := inj.Add(faults.Spec{Op: faults.OpDial, Action: faults.Refuse})

	col := &collector{}
	recv, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: col.onMessage})
	if err != nil {
		t.Fatal(err)
	}
	if err := recv.Start(); err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	send, err := NewEndpoint(Config{
		ListenAddr:        "127.0.0.1:0",
		OnMessage:         func(_ From, p []byte) { bufpool.Put(p) },
		Faults:            inj,
		QueuePolicy:       LatestValueWins,
		MaxPendingPerPeer: 8,
		MaxDialAttempts:   1 << 20,
		RedialBackoff:     5 * time.Millisecond,
		RedialBackoffMax:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := send.Start(); err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	const keys, rounds = 4, 50
	dest := recv.Addr(wire.TCP)
	notifies := make(chan error, keys*rounds)
	for r := 0; r < rounds; r++ {
		for k := 0; k < keys; k++ {
			send.SendQoS(wire.TCP, dest, pooled(fmt.Sprintf("k%d=%d", k, r)),
				wire.QoS{Class: wire.ClassTelemetry, Key: fmt.Sprintf("k%d", k)},
				func(err error) { notifies <- err })
		}
	}
	inj.Remove(refuseID) // outage over; the backlog drains
	waitCount(t, col, keys)

	var deliveredN, coalescedN int
	for i := 0; i < keys*rounds; i++ {
		err := expectNotify(t, notifies)
		if err == nil {
			deliveredN++
			continue
		}
		var de *ErrDropped
		if !errors.As(err, &de) || de.Reason != DropCoalesced {
			t.Fatalf("notify %d: %v, want coalesced ErrDropped", i, err)
		}
		if errors.Is(err, ErrQueueFull) {
			t.Fatal("coalesced drop reported as queue pressure")
		}
		coalescedN++
	}
	if deliveredN != keys || coalescedN != keys*(rounds-1) {
		t.Fatalf("delivered=%d coalesced=%d, want %d and %d", deliveredN, coalescedN, keys, keys*(rounds-1))
	}

	// Freshest value per key, nothing else.
	got := map[string]bool{}
	for _, p := range col.all() {
		got[string(p)] = true
	}
	for k := 0; k < keys; k++ {
		want := fmt.Sprintf("k%d=%d", k, rounds-1)
		if !got[want] {
			t.Fatalf("freshest update %q not delivered; got %v", want, got)
		}
	}
	if len(got) != keys {
		t.Fatalf("delivered %d distinct payloads, want %d (stale values leaked through)", len(got), keys)
	}

	// Counters match the notify accounting exactly.
	ds := send.DropStats()
	if got := ds.PerClass[wire.ClassTelemetry].Coalesced; got != uint64(coalescedN) {
		t.Fatalf("telemetry coalesced counter = %d, notify accounting saw %d", got, coalescedN)
	}
	if total := ds.Sum(); total.Total() != uint64(coalescedN) {
		t.Fatalf("drop totals %+v, want exactly %d coalesced", total, coalescedN)
	}
	if qd := send.QueueStats().Drops; qd.Coalesced != uint64(coalescedN) {
		t.Fatalf("QueueStats.Drops.Coalesced = %d, want %d", qd.Coalesced, coalescedN)
	}
}

// TestQoSDeadlineExpiryReconnectDrain holds a channel down past a
// telemetry deadline: the first drain after the reconnect must shed the
// expired backlog (DropExpired, counted per class) and deliver only the
// messages without a lapsed deadline — in order.
func TestQoSDeadlineExpiryReconnectDrain(t *testing.T) {
	leakCheck(t)
	inj := faults.New(1)
	refuseID := inj.Add(faults.Spec{Op: faults.OpDial, Action: faults.Refuse})

	col := &collector{}
	recv, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: col.onMessage})
	if err != nil {
		t.Fatal(err)
	}
	if err := recv.Start(); err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	send, err := NewEndpoint(Config{
		ListenAddr:       "127.0.0.1:0",
		OnMessage:        func(_ From, p []byte) { bufpool.Put(p) },
		Faults:           inj,
		QueuePolicy:      DeadlineExpiry,
		MaxDialAttempts:  1 << 20,
		RedialBackoff:    5 * time.Millisecond,
		RedialBackoffMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := send.Start(); err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	const n = 3
	dest := recv.Addr(wire.TCP)
	deadline := time.Now().Add(50 * time.Millisecond).UnixNano()
	notifies := make(chan error, 2*n)
	for i := 0; i < n; i++ {
		send.SendQoS(wire.TCP, dest, pooled(fmt.Sprintf("doomed%d", i)),
			wire.QoS{Class: wire.ClassTelemetry, Deadline: deadline},
			func(err error) { notifies <- err })
		send.SendQoS(wire.TCP, dest, pooled(fmt.Sprintf("durable%d", i)),
			wire.QoS{}, func(err error) { notifies <- err })
	}

	time.Sleep(150 * time.Millisecond) // the outage outlives the deadline
	inj.Remove(refuseID)
	waitCount(t, col, n)

	var deliveredN, expiredN int
	for i := 0; i < 2*n; i++ {
		err := expectNotify(t, notifies)
		if err == nil {
			deliveredN++
			continue
		}
		var de *ErrDropped
		if !errors.As(err, &de) || de.Reason != DropExpired || de.Class != wire.ClassTelemetry {
			t.Fatalf("notify %d: %v, want expired telemetry ErrDropped", i, err)
		}
		expiredN++
	}
	if deliveredN != n || expiredN != n {
		t.Fatalf("delivered=%d expired=%d, want %d and %d", deliveredN, expiredN, n, n)
	}
	for i, p := range col.all() {
		if want := fmt.Sprintf("durable%d", i); string(p) != want {
			t.Fatalf("delivery %d = %q, want %q (expired message leaked or order broke)", i, p, want)
		}
	}
	if got := send.DropStats().PerClass[wire.ClassTelemetry].Expired; got != uint64(expiredN) {
		t.Fatalf("telemetry expired counter = %d, notify accounting saw %d", got, expiredN)
	}
}
