package transport

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// The inbound registry is the receive-side mirror of the striped
// outgoing registry (shard.go): connections from different peers live in
// different shards, so accept, per-connection accounting, teardown, and
// peer-death bookkeeping for different peers never contend on one mutex.
// Before this existed, every accept and every connection teardown
// serialised on a single endpoint-wide mutex — harmless at ten
// connections, a global choke point at ten thousand.

// From identifies the origin of one inbound payload: the wire protocol
// it arrived over and the remote socket address it came from. For
// stream transports (TCP, UDT) Peer is the remote address of the
// inbound connection, so all payloads read from one connection carry
// the same From; for UDP it is the datagram's source address. From is
// the per-peer FIFO key: consumers that re-order work internally (the
// core decode stage) must preserve arrival order per (Proto, Peer).
type From struct {
	Proto wire.Transport
	Peer  string
}

// inKey mirrors chanKey for the inbound side.
type inKey struct {
	proto wire.Transport
	peer  string
}

// inConn is the endpoint's state for one inbound stream connection. The
// conn and from fields are immutable after registration; the counters
// are atomics so the read loop never takes the shard lock per frame.
type inConn struct {
	conn  net.Conn
	shard *recvShard
	from  From

	frames atomic.Uint64
	bytes  atomic.Uint64
}

// recvShard is one stripe of the endpoint's inbound registry. The mutex
// guards every container field declared after it; Close quiesces shards
// in index order so shutdown stays deterministic.
type recvShard struct {
	mu    sync.Mutex //kmlint:guarded
	conns map[*inConn]struct{}
	// deaths counts inbound connections per (proto, peer) that ended
	// from the remote side or a read error — endpoint-initiated
	// teardown (Close) is not a peer death. The count survives the
	// connections it describes; supervision-style consumers can watch
	// it for flapping peers.
	deaths map[inKey]uint64
	closed bool
}

// newRecvShards builds the inbound stripes with the same geometry as the
// send side: N = max(8, GOMAXPROCS) rounded up to a power of two.
func newRecvShards() []*recvShard {
	n := shardCount(runtime.GOMAXPROCS(0))
	shards := make([]*recvShard, n)
	for i := range shards {
		shards[i] = &recvShard{
			conns:  make(map[*inConn]struct{}),
			deaths: make(map[inKey]uint64),
		}
	}
	return shards
}

// recvShardFor hashes (proto, peer) onto an inbound stripe with FNV-1a —
// the same hash the send side uses, over the same key shape, so a
// bidirectional peer relationship maps symmetrically.
func (e *Endpoint) recvShardFor(proto wire.Transport, peer string) *recvShard {
	return e.recvShards[shardIndex(proto, peer)&uint32(len(e.recvShards)-1)]
}

// registerInbound records a freshly accepted stream connection in its
// peer's shard. ok=false means the endpoint is closing and the caller
// must drop the connection.
func (e *Endpoint) registerInbound(proto wire.Transport, conn net.Conn) (*inConn, bool) {
	from := From{Proto: proto, Peer: conn.RemoteAddr().String()}
	s := e.recvShardFor(proto, from.Peer)
	ic := &inConn{conn: conn, shard: s, from: from}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false
	}
	s.conns[ic] = struct{}{}
	s.mu.Unlock()
	return ic, true
}

// dropInbound removes a finished connection from its shard. A
// connection still present in the shard ended on its own (remote close
// or read error) and counts as a peer death; one already removed was
// torn down by Close and does not.
func (e *Endpoint) dropInbound(ic *inConn) {
	s := ic.shard
	s.mu.Lock()
	if _, ok := s.conns[ic]; ok {
		delete(s.conns, ic)
		s.deaths[inKey{proto: ic.from.Proto, peer: ic.from.Peer}]++
	}
	s.mu.Unlock()
}

// closeInbound quiesces the inbound registry: every shard is marked
// closed in index order (no further registrations) while its
// connections are collected, and only then are the connections closed —
// which unblocks their read loops. Run once, from Close.
func (e *Endpoint) closeInbound() {
	var conns []net.Conn
	for _, s := range e.recvShards {
		s.mu.Lock()
		s.closed = true
		for ic := range s.conns {
			conns = append(conns, ic.conn)
		}
		s.conns = map[*inConn]struct{}{}
		s.mu.Unlock()
	}
	for _, c := range conns {
		c.Close()
	}
}

// NumInbound counts registered inbound stream connections across all
// shards.
func (e *Endpoint) NumInbound() int {
	n := 0
	for _, s := range e.recvShards {
		s.mu.Lock()
		n += len(s.conns)
		s.mu.Unlock()
	}
	return n
}

// InboundDeaths reports how many inbound connections from (proto, peer)
// have died (remote close or read error) over the endpoint's lifetime.
func (e *Endpoint) InboundDeaths(proto wire.Transport, peer string) uint64 {
	s := e.recvShardFor(proto, peer)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deaths[inKey{proto: proto, peer: peer}]
}

// InboundSummary aggregates the whole inbound registry: live stream
// connections, the frames and bytes they have delivered, and lifetime
// peer deaths — the receive-side feed for the stats registry.
type InboundSummary struct {
	Conns  int
	Frames uint64
	Bytes  uint64
	Deaths uint64
}

// InboundTotals sums every shard's live-connection counters and death
// counts. Per-connection counters are atomics, so the only locking is
// one pass over the shard mutexes.
func (e *Endpoint) InboundTotals() InboundSummary {
	var t InboundSummary
	for _, s := range e.recvShards {
		s.mu.Lock()
		t.Conns += len(s.conns)
		for ic := range s.conns {
			t.Frames += ic.frames.Load()
			t.Bytes += ic.bytes.Load()
		}
		for _, d := range s.deaths {
			t.Deaths += d
		}
		s.mu.Unlock()
	}
	return t
}

// InboundStats sums live-connection counters for (proto, peer): the
// number of currently registered connections and the frames and bytes
// they have delivered so far.
func (e *Endpoint) InboundStats(proto wire.Transport, peer string) (conns int, frames, bytes uint64) {
	s := e.recvShardFor(proto, peer)
	s.mu.Lock()
	defer s.mu.Unlock()
	for ic := range s.conns {
		if ic.from.Proto == proto && ic.from.Peer == peer {
			conns++
			frames += ic.frames.Load()
			bytes += ic.bytes.Load()
		}
	}
	return conns, frames, bytes
}
