package transport

import (
	"encoding/binary"
	"fmt"
	"testing"

	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// BenchmarkQueuePolicy measures the per-push cost of each queue policy on
// a saturated channel — the policy hot path under overload, where every
// Push runs the shed logic (reject, head eviction, key coalesce, or
// expiry sweep). The workload mixes keyed telemetry (16 keys, so the
// coalescing policy mostly replaces in place), keyless reliable traffic,
// and deadlines that lapse mid-run for the expiry policy. Steady-state
// drop handling must not allocate: the displaced-message scratch is
// policy-owned and reused.
func BenchmarkQueuePolicy(b *testing.B) {
	const limit = 64
	msgs := make([]outMsg, 256)
	for i := range msgs {
		p := make([]byte, 4)
		binary.BigEndian.PutUint32(p, uint32(i))
		qos := wire.QoS{}
		switch i % 4 {
		case 0, 1: // keyed telemetry: the latest-value coalesce target
			qos = wire.QoS{Class: wire.ClassTelemetry, Key: fmt.Sprintf("k%d", i%16)}
		case 2: // deadline traffic: lapses partway through the run
			qos = wire.QoS{Class: wire.ClassTelemetry, Deadline: int64(i%2)*1_000_000 + 1}
		}
		msgs[i] = outMsg{payload: p, qos: qos}
	}

	for _, pol := range Policies() {
		b.Run(pol.Name(), func(b *testing.B) {
			pq := pol.NewQueue(limit)
			q := make([]outMsg, 0, limit)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var ds []dropped
				var ok bool
				q, ds, ok = pq.Push(q, msgs[i&255], int64(i))
				_, _ = ds, ok
				if len(q) >= limit && i&1023 == 0 {
					// Occasional drain, as a reconnect or a briefly keeping-up
					// writer would: the steady state stays saturated.
					q, ds = pq.Expire(q, int64(i))
					_ = ds
					q = q[:0]
					pq.Drained()
				}
			}
		})
	}
}
