package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// collector gathers inbound payloads.
type collector struct {
	mu   sync.Mutex
	msgs [][]byte
}

func (c *collector) onMessage(_ From, p []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dup := make([]byte, len(p))
	copy(dup, p)
	c.msgs = append(c.msgs, dup)
	// OnMessage owns p; returning it keeps the endpoints' pooled buffers
	// cycling, which the leakCheck teardown asserts.
	bufpool.Put(p)
}

// leakCheck arms bufpool's debug accounting for the test and asserts at
// teardown that every pooled buffer taken on the wire path came back. It
// must be registered before the endpoints' own Cleanup so that (LIFO) the
// assertion runs after Close has drained and recycled in-flight buffers.
func leakCheck(t *testing.T) {
	t.Helper()
	bufpool.ResetStats()
	bufpool.SetDebug(true)
	t.Cleanup(func() {
		bufpool.SetDebug(false)
		if n := bufpool.Outstanding(); n != 0 {
			t.Errorf("bufpool leak: %d buffer(s) outstanding after endpoint close", n)
		}
	})
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func (c *collector) all() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]byte, len(c.msgs))
	copy(out, c.msgs)
	return out
}

func newEndpointPair(t *testing.T) (a, b *Endpoint, ca, cb *collector) {
	t.Helper()
	leakCheck(t)
	ca, cb = &collector{}, &collector{}
	mk := func(col *collector) *Endpoint {
		ep, err := NewEndpoint(Config{
			ListenAddr: "127.0.0.1:0",
			OnMessage:  col.onMessage,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Start(); err != nil {
			t.Fatal(err)
		}
		return ep
	}
	a = mk(ca)
	b = mk(cb)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, ca, cb
}

// pooled copies s into a pool-owned buffer. Send recycles its payload
// once the outcome is decided, so test payloads must come from the pool
// for leakCheck's Get/Put accounting to balance.
func pooled(s string) []byte {
	b := bufpool.Get(len(s))
	copy(b, s)
	return b
}

func waitCount(t *testing.T, c *collector, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.count() >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out: received %d of %d messages", c.count(), n)
}

func TestNewEndpointValidation(t *testing.T) {
	if _, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0"}); err == nil {
		t.Fatal("missing OnMessage accepted")
	}
	if _, err := NewEndpoint(Config{OnMessage: func(From, []byte) {}}); err == nil {
		t.Fatal("missing ListenAddr accepted")
	}
	_, err := NewEndpoint(Config{
		ListenAddr: "127.0.0.1:0",
		OnMessage:  func(From, []byte) {},
		Protocols:  []wire.Transport{wire.DATA},
	})
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("DATA listener accepted: %v", err)
	}
}

func TestSendReceiveEachProtocol(t *testing.T) {
	for _, proto := range []wire.Transport{wire.TCP, wire.UDP, wire.UDT} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			a, b, _, cb := newEndpointPair(t)
			_ = a
			want := "hello over " + proto.String()
			done := make(chan error, 1)
			a.Send(proto, b.Addr(proto), pooled(want), func(err error) { done <- err })
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("notify error: %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("no send notification")
			}
			waitCount(t, cb, 1)
			if !bytes.Equal(cb.all()[0], []byte(want)) {
				t.Fatalf("received %q", cb.all()[0])
			}
		})
	}
}

func TestManyMessagesKeepOrderOnStreams(t *testing.T) {
	for _, proto := range []wire.Transport{wire.TCP, wire.UDT} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			a, b, _, cb := newEndpointPair(t)
			const n = 200
			for i := 0; i < n; i++ {
				a.Send(proto, b.Addr(proto), pooled(fmt.Sprintf("msg-%04d", i)), nil)
			}
			waitCount(t, cb, n)
			for i, m := range cb.all() {
				if want := fmt.Sprintf("msg-%04d", i); string(m) != want {
					t.Fatalf("message %d = %q, want %q (FIFO per channel)", i, m, want)
				}
			}
		})
	}
}

func TestChannelReuse(t *testing.T) {
	a, b, _, cb := newEndpointPair(t)
	for i := 0; i < 5; i++ {
		a.Send(wire.TCP, b.Addr(wire.TCP), pooled(string(rune(i))), nil)
	}
	waitCount(t, cb, 5)
	if nchan := a.numChannels(); nchan != 1 {
		t.Fatalf("5 sends created %d channels, want 1", nchan)
	}
}

func TestNotifyFailureOnDeadDestination(t *testing.T) {
	a, _, _, _ := newEndpointPair(t)
	done := make(chan error, 1)
	// TCP dial to a port that is not listening fails fast on loopback.
	a.Send(wire.TCP, "127.0.0.1:1", pooled("x"), func(err error) { done <- err })
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("send to dead port notified success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no failure notification")
	}
}

func TestRedialAfterFailure(t *testing.T) {
	// After a failed dial the channel is dropped; a later send to a live
	// destination on the same key must work... here we emulate by first
	// sending to b's port after closing b, then restarting a fresh
	// endpoint on a new port.
	a, b, _, cb := newEndpointPair(t)
	addr := b.Addr(wire.TCP)
	b.Close()

	failed := make(chan error, 1)
	a.Send(wire.TCP, addr, pooled("x"), func(err error) { failed <- err })
	select {
	case <-failed:
	case <-time.After(10 * time.Second):
		t.Fatal("no notification for send to closed endpoint")
	}
	_ = cb

	// New destination endpoint; the channel registry must not be
	// poisoned for other keys.
	c2 := &collector{}
	ep2, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: c2.onMessage})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep2.Start(); err != nil {
		t.Fatal(err)
	}
	defer ep2.Close()
	ok := make(chan error, 1)
	a.Send(wire.TCP, ep2.Addr(wire.TCP), pooled("y"), func(err error) { ok <- err })
	select {
	case err := <-ok:
		if err != nil {
			t.Fatalf("send after prior failure: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no notification")
	}
	waitCount(t, c2, 1)
}

func TestOversizePayloadRejected(t *testing.T) {
	a, b, _, _ := newEndpointPair(t)
	big := bufpool.Get(a.cfg.MaxFrame + 1)
	done := make(chan error, 1)
	a.Send(wire.TCP, b.Addr(wire.TCP), big, func(err error) { done <- err })
	if err := <-done; !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}

	udpBig := bufpool.Get(maxUDPPayload + 1)
	a.Send(wire.UDP, b.Addr(wire.UDP), udpBig, func(err error) { done <- err })
	if err := <-done; !errors.Is(err, ErrTooLarge) {
		t.Fatalf("udp err = %v, want ErrTooLarge", err)
	}
}

func TestSendUnsupportedProtocol(t *testing.T) {
	a, b, _, _ := newEndpointPair(t)
	done := make(chan error, 1)
	a.Send(wire.DATA, b.Addr(wire.TCP), pooled("x"), func(err error) { done <- err })
	if err := <-done; !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestSendAfterClose(t *testing.T) {
	a, b, _, _ := newEndpointPair(t)
	addr := b.Addr(wire.TCP)
	a.Close()
	a.Close() // idempotent
	done := make(chan error, 1)
	a.Send(wire.TCP, addr, pooled("x"), func(err error) { done <- err })
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestConcurrentSenders(t *testing.T) {
	a, b, _, cb := newEndpointPair(t)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Send(wire.TCP, b.Addr(wire.TCP), pooled("m"), nil)
			}
		}()
	}
	wg.Wait()
	waitCount(t, cb, workers*per)
}

func TestBidirectionalTraffic(t *testing.T) {
	a, b, ca, cb := newEndpointPair(t)
	a.Send(wire.TCP, b.Addr(wire.TCP), pooled("a->b"), nil)
	b.Send(wire.TCP, a.Addr(wire.TCP), pooled("b->a"), nil)
	waitCount(t, cb, 1)
	waitCount(t, ca, 1)
}

func TestAddrForDisabledProtocol(t *testing.T) {
	col := &collector{}
	ep, err := NewEndpoint(Config{
		ListenAddr: "127.0.0.1:0",
		Protocols:  []wire.Transport{wire.TCP},
		OnMessage:  col.onMessage,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Start(); err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if ep.Addr(wire.UDP) != "" || ep.Addr(wire.UDT) != "" {
		t.Fatal("disabled protocols report addresses")
	}
	if ep.Addr(wire.TCP) == "" {
		t.Fatal("enabled protocol reports no address")
	}
}
