package transport

import (
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// TestPeerDeathMidStreamThenRevival kills the receiving endpoint while a
// stream of sends is in flight, then revives it on the same port: sends
// during the outage must fail (at-most-once — never silently retried) and
// sends after revival must flow again through a fresh channel.
func TestPeerDeathMidStreamThenRevival(t *testing.T) {
	sender := &collector{}
	epA, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: sender.onMessage})
	if err != nil {
		t.Fatal(err)
	}
	if err := epA.Start(); err != nil {
		t.Fatal(err)
	}
	defer epA.Close()

	// Receiver on a fixed port so it can be revived at the same address.
	port := pickFreePort(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	recv1 := &collector{}
	epB, err := NewEndpoint(Config{ListenAddr: addr, OnMessage: recv1.onMessage,
		Protocols: []wire.Transport{wire.TCP}})
	if err != nil {
		t.Fatal(err)
	}
	if err := epB.Start(); err != nil {
		t.Fatal(err)
	}

	okCh := make(chan error, 1)
	epA.Send(wire.TCP, addr, []byte("before"), func(err error) { okCh <- err })
	if err := <-okCh; err != nil {
		t.Fatalf("send before outage: %v", err)
	}
	waitCount(t, recv1, 1)

	// Kill the receiver.
	epB.Close()

	// Sends during the outage eventually fail (the first write may be
	// buffered by the kernel before the RST arrives, so push until an
	// error surfaces).
	deadline := time.Now().Add(10 * time.Second)
	failed := false
	for time.Now().Before(deadline) && !failed {
		errCh := make(chan error, 1)
		epA.Send(wire.TCP, addr, []byte("during"), func(err error) { errCh <- err })
		select {
		case err := <-errCh:
			failed = err != nil
		case <-time.After(5 * time.Second):
			t.Fatal("no notification during outage")
		}
	}
	if !failed {
		t.Fatal("sends to a dead peer never reported failure")
	}

	// Revive on the same port; a fresh send must establish a new channel.
	recv2 := &collector{}
	epB2, err := NewEndpoint(Config{ListenAddr: addr, OnMessage: recv2.onMessage,
		Protocols: []wire.Transport{wire.TCP}})
	if err != nil {
		t.Fatal(err)
	}
	if err := epB2.Start(); err != nil {
		t.Fatal(err)
	}
	defer epB2.Close()

	var sent bool
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && !sent {
		errCh := make(chan error, 1)
		epA.Send(wire.TCP, addr, []byte("after"), func(err error) { errCh <- err })
		sent = <-errCh == nil
	}
	if !sent {
		t.Fatal("sends never recovered after revival")
	}
	waitCount(t, recv2, 1)
}

func pickFreePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// TestInboundGarbageFramesDropped feeds a raw TCP connection with garbage
// and oversized frames: the endpoint must drop the connection without
// disturbing other traffic.
func TestInboundGarbageFramesDropped(t *testing.T) {
	col := &collector{}
	ep, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: col.onMessage,
		Protocols: []wire.Transport{wire.TCP}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Start(); err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	// A frame header claiming 512 MB (over MaxFrame) must abort the
	// connection.
	rogue, err := net.Dial("tcp", ep.Addr(wire.TCP))
	if err != nil {
		t.Fatal(err)
	}
	rogue.Write([]byte{0x20, 0x00, 0x00, 0x00})
	rogue.Write([]byte("some payload that will never complete"))
	buf := make([]byte, 1)
	rogue.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := rogue.Read(buf); err == nil {
		t.Fatal("endpoint kept a connection after an oversized frame")
	}
	rogue.Close()

	// Normal traffic still flows afterwards.
	other := &collector{}
	ep2, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: other.onMessage})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep2.Start(); err != nil {
		t.Fatal(err)
	}
	defer ep2.Close()
	done := make(chan error, 1)
	ep2.Send(wire.TCP, ep.Addr(wire.TCP), []byte("legit"), func(err error) { done <- err })
	if err := <-done; err != nil {
		t.Fatalf("legit send failed after rogue connection: %v", err)
	}
	waitCount(t, col, 1)
}

// TestManyChannelsManyPeers exercises the channel registry with several
// destinations concurrently.
func TestManyChannelsManyPeers(t *testing.T) {
	const peers = 5
	sender := &collector{}
	epA, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: sender.onMessage})
	if err != nil {
		t.Fatal(err)
	}
	if err := epA.Start(); err != nil {
		t.Fatal(err)
	}
	defer epA.Close()

	cols := make([]*collector, peers)
	addrs := make([]string, peers)
	for i := range cols {
		cols[i] = &collector{}
		ep, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: cols[i].onMessage,
			Protocols: []wire.Transport{wire.TCP}})
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Start(); err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		addrs[i] = ep.Addr(wire.TCP)
	}

	const per = 50
	for round := 0; round < per; round++ {
		for i := range addrs {
			epA.Send(wire.TCP, addrs[i], []byte{byte(i), byte(round)}, nil)
		}
	}
	for i, col := range cols {
		waitCount(t, col, per)
		for j, m := range col.all() {
			if m[0] != byte(i) || m[1] != byte(j) {
				t.Fatalf("peer %d message %d corrupted or out of order: %v", i, j, m)
			}
		}
	}
	epA.mu.Lock()
	n := len(epA.channels)
	epA.mu.Unlock()
	if n != peers {
		t.Fatalf("registry has %d channels, want %d", n, peers)
	}
}
