package transport

import (
	"errors"
	"net"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
	"github.com/kompics/kompicsmessaging-go/internal/clock"
	"github.com/kompics/kompicsmessaging-go/internal/faults"
	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// eventCollector is a collector whose deliveries can be awaited on a
// channel, so failure tests synchronize on events instead of polling.
type eventCollector struct {
	collector
	ch chan []byte
}

func newEventCollector() *eventCollector {
	return &eventCollector{ch: make(chan []byte, 256)}
}

func (c *eventCollector) onMessage(_ From, p []byte) {
	dup := make([]byte, len(p))
	copy(dup, p)
	c.mu.Lock()
	c.msgs = append(c.msgs, dup)
	c.mu.Unlock()
	bufpool.Put(p)
	select {
	case c.ch <- dup:
	default:
	}
}

// expectDelivery waits for the next inbound message and asserts its
// contents.
func expectDelivery(t *testing.T, c *eventCollector, want string) {
	t.Helper()
	select {
	case got := <-c.ch:
		if string(got) != want {
			t.Fatalf("delivered %q, want %q", got, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for delivery of %q", want)
	}
}

// expectStatus waits for the next status event and asserts its kind.
func expectStatus(t *testing.T, ch <-chan StatusEvent, want StatusKind) StatusEvent {
	t.Helper()
	select {
	case ev := <-ch:
		if ev.Kind != want {
			t.Fatalf("status event %v (%+v), want %v", ev.Kind, ev, want)
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for %v status event", want)
		return StatusEvent{}
	}
}

func expectNotify(t *testing.T, ch <-chan error) error {
	t.Helper()
	select {
	case err := <-ch:
		return err
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for send notification")
		return nil
	}
}

// TestPeerDeathMidStreamThenRevival scripts a peer outage with the fault
// injector instead of killing a real listener: the established channel
// is reset mid-stream, redials back off under a virtual clock, and the
// exact Up / Down / Retry / Retry / Up supervision sequence is observed.
// Sends during the outage fail fast (at-most-once — never silently
// retried across the reconnect) and sends after revival flow again over
// the same supervised channel.
func TestPeerDeathMidStreamThenRevival(t *testing.T) {
	leakCheck(t)
	inj := faults.New(1)
	vc := clock.NewVirtual()
	status := make(chan StatusEvent, 64)

	recv := newEventCollector()
	epB, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: recv.onMessage,
		Protocols: []wire.Transport{wire.TCP}})
	if err != nil {
		t.Fatal(err)
	}
	if err := epB.Start(); err != nil {
		t.Fatal(err)
	}
	defer epB.Close()

	sender := newEventCollector()
	epA, err := NewEndpoint(Config{
		ListenAddr:      "127.0.0.1:0",
		OnMessage:       sender.onMessage,
		Protocols:       []wire.Transport{wire.TCP},
		Faults:          inj,
		Clock:           vc,
		MaxDialAttempts: 5,
		OnStatus:        func(ev StatusEvent) { status <- ev },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := epA.Start(); err != nil {
		t.Fatal(err)
	}
	defer epA.Close()

	addr := epB.Addr(wire.TCP)
	notify := make(chan error, 1)

	epA.Send(wire.TCP, addr, pooled("before"), func(err error) { notify <- err })
	if err := expectNotify(t, notify); err != nil {
		t.Fatalf("send before outage: %v", err)
	}
	expectStatus(t, status, StatusUp)
	expectDelivery(t, recv, "before")

	// Kill the peer: established writes reset, redials refused.
	resetID := inj.Add(faults.Spec{Op: faults.OpWrite, Action: faults.Reset})
	refuseID := inj.Add(faults.Spec{Op: faults.OpDial, Action: faults.Refuse})

	epA.Send(wire.TCP, addr, pooled("during"), func(err error) { notify <- err })
	if err := expectNotify(t, notify); !errors.Is(err, faults.ErrConnReset) {
		t.Fatalf("send during outage: err = %v, want ErrConnReset", err)
	}
	expectStatus(t, status, StatusDown)

	// Two refused redials under the virtual clock; each Retry event is
	// emitted after its backoff timer is armed, so advancing by the
	// reported delay deterministically triggers the next attempt.
	ev := expectStatus(t, status, StatusRetry)
	if ev.Attempt != 1 {
		t.Fatalf("first retry reports attempt %d", ev.Attempt)
	}
	vc.Advance(ev.NextDelay)
	ev = expectStatus(t, status, StatusRetry)
	if ev.Attempt != 2 {
		t.Fatalf("second retry reports attempt %d", ev.Attempt)
	}

	// Revive the peer and release the third attempt.
	inj.Remove(resetID)
	inj.Remove(refuseID)
	vc.Advance(ev.NextDelay)
	expectStatus(t, status, StatusUp)

	if st, ok := epA.ChannelState(wire.TCP, addr); !ok || st != StateUp {
		t.Fatalf("channel state after revival = %v (exists %v), want up", st, ok)
	}

	epA.Send(wire.TCP, addr, pooled("after"), func(err error) { notify <- err })
	if err := expectNotify(t, notify); err != nil {
		t.Fatalf("send after revival: %v", err)
	}
	expectDelivery(t, recv, "after")

	// At-most-once across the outage: exactly "before" and "after"
	// arrived, and the reset "during" message — whose failure notify
	// already fired — was never retransmitted.
	got := recv.all()
	if len(got) != 2 || string(got[0]) != "before" || string(got[1]) != "after" {
		strs := make([]string, len(got))
		for i, m := range got {
			strs[i] = string(m)
		}
		t.Fatalf("delivered %q, want exactly [before after]", strs)
	}
}

func pickFreePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// TestInboundGarbageFramesDropped feeds a raw TCP connection with garbage
// and oversized frames: the endpoint must drop the connection without
// disturbing other traffic.
func TestInboundGarbageFramesDropped(t *testing.T) {
	col := &collector{}
	ep, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: col.onMessage,
		Protocols: []wire.Transport{wire.TCP}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Start(); err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	// A frame header claiming 512 MB (over MaxFrame) must abort the
	// connection.
	rogue, err := net.Dial("tcp", ep.Addr(wire.TCP))
	if err != nil {
		t.Fatal(err)
	}
	rogue.Write([]byte{0x20, 0x00, 0x00, 0x00})
	rogue.Write([]byte("some payload that will never complete"))
	buf := make([]byte, 1)
	rogue.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := rogue.Read(buf); err == nil {
		t.Fatal("endpoint kept a connection after an oversized frame")
	}
	rogue.Close()

	// Normal traffic still flows afterwards.
	other := &collector{}
	ep2, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: other.onMessage})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep2.Start(); err != nil {
		t.Fatal(err)
	}
	defer ep2.Close()
	done := make(chan error, 1)
	ep2.Send(wire.TCP, ep.Addr(wire.TCP), []byte("legit"), func(err error) { done <- err })
	if err := <-done; err != nil {
		t.Fatalf("legit send failed after rogue connection: %v", err)
	}
	waitCount(t, col, 1)
}

// TestManyChannelsManyPeers exercises the channel registry with several
// destinations concurrently.
func TestManyChannelsManyPeers(t *testing.T) {
	const peers = 5
	sender := &collector{}
	epA, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: sender.onMessage})
	if err != nil {
		t.Fatal(err)
	}
	if err := epA.Start(); err != nil {
		t.Fatal(err)
	}
	defer epA.Close()

	cols := make([]*collector, peers)
	addrs := make([]string, peers)
	for i := range cols {
		cols[i] = &collector{}
		ep, err := NewEndpoint(Config{ListenAddr: "127.0.0.1:0", OnMessage: cols[i].onMessage,
			Protocols: []wire.Transport{wire.TCP}})
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Start(); err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		addrs[i] = ep.Addr(wire.TCP)
	}

	const per = 50
	for round := 0; round < per; round++ {
		for i := range addrs {
			epA.Send(wire.TCP, addrs[i], []byte{byte(i), byte(round)}, nil)
		}
	}
	for i, col := range cols {
		waitCount(t, col, per)
		for j, m := range col.all() {
			if m[0] != byte(i) || m[1] != byte(j) {
				t.Fatalf("peer %d message %d corrupted or out of order: %v", i, j, m)
			}
		}
	}
	if n := epA.numChannels(); n != peers {
		t.Fatalf("registry has %d channels, want %d", n, peers)
	}
}
