package kompics

import "testing"

// TestRunQueueFIFO exercises order and wraparound across growth.
func TestRunQueueFIFO(t *testing.T) {
	var q ring[*Component]
	comps := make([]*Component, 100)
	for i := range comps {
		comps[i] = &Component{}
	}
	// Interleave pushes and pops so head wraps around the ring.
	next := 0
	for i, c := range comps {
		q.push(c)
		if i%3 == 2 {
			if got := q.pop(); got != comps[next] {
				t.Fatalf("pop %d: wrong component", next)
			}
			next++
		}
	}
	for q.n > 0 {
		if got := q.pop(); got != comps[next] {
			t.Fatalf("pop %d: wrong component", next)
		}
		next++
	}
	if next != len(comps) {
		t.Fatalf("popped %d of %d", next, len(comps))
	}
}

// TestRunQueueNoGrowthAtSteadyState is the regression test for the old
// slice-shift queue: `queue = queue[1:]` slid down its backing array and
// re-allocated forever under steady traffic. The ring must reach a fixed
// capacity and stay there no matter how many operations flow through.
func TestRunQueueNoGrowthAtSteadyState(t *testing.T) {
	var q ring[*Component]
	c := &Component{}
	// Steady state: bounded occupancy (≤ 8), many operations.
	for i := 0; i < 100000; i++ {
		for j := 0; j < 8; j++ {
			q.push(c)
		}
		for j := 0; j < 8; j++ {
			q.pop()
		}
	}
	if cap(q.buf) > 16 {
		t.Fatalf("ring grew to %d slots for ≤8 queued components", cap(q.buf))
	}
}

// TestRunQueuePopZeroesSlot checks popped slots are cleared so finished
// components are not pinned by the queue's backing array.
func TestRunQueuePopZeroesSlot(t *testing.T) {
	var q ring[*Component]
	q.push(&Component{})
	head := q.head
	q.pop()
	if q.buf[head] != nil {
		t.Fatal("vacated slot still references the component")
	}
}
