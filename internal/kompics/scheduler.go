package kompics

import "sync"

// scheduler runs components on a fixed pool of workers. Components that
// have queued events wait in a FIFO run queue; a component is in the queue
// at most once (the scheduled flag in Component guards admission), which
// gives the one-thread-at-a-time execution guarantee.
type scheduler struct {
	maxEvents int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Component
	closed bool

	// busy counts components currently executing on a worker; together
	// with an empty queue it defines quiescence.
	busy    int
	idleCnd *sync.Cond

	wg sync.WaitGroup
}

func newScheduler(workers, maxEvents int) *scheduler {
	s := &scheduler{maxEvents: maxEvents}
	s.cond = sync.NewCond(&s.mu)
	s.idleCnd = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// ready places a component at the tail of the run queue.
func (s *scheduler) ready(c *Component) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.queue = append(s.queue, c)
	s.mu.Unlock()
	s.cond.Signal()
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		c := s.queue[0]
		s.queue = s.queue[1:]
		s.busy++
		s.mu.Unlock()

		again := c.execute(s.maxEvents)

		s.mu.Lock()
		s.busy--
		if again && !s.closed {
			s.queue = append(s.queue, c)
			s.cond.Signal()
		}
		if s.busy == 0 && len(s.queue) == 0 {
			s.idleCnd.Broadcast()
		}
		s.mu.Unlock()
	}
}

// close stops all workers. Queued work is abandoned.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.idleCnd.Broadcast()
	s.wg.Wait()
}

// awaitIdle blocks until the run queue is empty and no component is
// executing, or the scheduler is closed. Note that quiescence is momentary:
// external goroutines (timers, sockets) may enqueue new work afterwards.
func (s *scheduler) awaitIdle() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for (len(s.queue) > 0 || s.busy > 0) && !s.closed {
		s.idleCnd.Wait()
	}
}
