package kompics

// scheduler runs components on a fixed pool of workers — a thin
// specialisation of WorkPool. Components that have queued events wait in
// the pool's FIFO run queue; a component is in the queue at most once (the
// scheduled flag in Component guards admission), which gives the
// one-thread-at-a-time execution guarantee. A component whose execute
// reports runnable work left is requeued by the pool, atomically with the
// worker going idle, so AwaitQuiescence cannot observe a gap.
type scheduler struct {
	pool *WorkPool[*Component]
}

func newScheduler(workers, maxEvents int) *scheduler {
	return &scheduler{
		pool: NewWorkPool(workers, func(c *Component) bool {
			return c.execute(maxEvents)
		}),
	}
}

// ready places a component at the tail of the run queue.
func (s *scheduler) ready(c *Component) { s.pool.Submit(c) }

// close stops all workers. Queued work is abandoned.
func (s *scheduler) close() { s.pool.Close() }

// awaitIdle blocks until the run queue is empty and no component is
// executing, or the scheduler is closed. Note that quiescence is momentary:
// external goroutines (timers, sockets) may enqueue new work afterwards.
func (s *scheduler) awaitIdle() { s.pool.AwaitIdle() }
