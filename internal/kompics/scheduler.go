package kompics

import "sync"

// runQueue is a growable FIFO ring buffer of components. The previous
// slice-based queue popped with `queue = queue[1:]`, which both kept the
// vacated slot reachable (pinning the Component for GC) and slid the
// window down the backing array so that steady traffic forced endless
// reallocation; the ring reuses its buffer in place.
type runQueue struct {
	buf  []*Component
	head int // index of the front element
	n    int // number of queued elements
}

// push appends c at the tail, growing the ring when full.
func (q *runQueue) push(c *Component) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = c
	q.n++
}

// pop removes and returns the front element, zeroing the vacated slot so
// the component is not pinned. Callers check q.n > 0 first.
func (q *runQueue) pop() *Component {
	c := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return c
}

func (q *runQueue) grow() {
	next := make([]*Component, max(16, 2*len(q.buf)))
	for i := 0; i < q.n; i++ {
		next[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = next
	q.head = 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// scheduler runs components on a fixed pool of workers. Components that
// have queued events wait in a FIFO run queue; a component is in the queue
// at most once (the scheduled flag in Component guards admission), which
// gives the one-thread-at-a-time execution guarantee.
type scheduler struct {
	maxEvents int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  runQueue
	closed bool

	// busy counts components currently executing on a worker; together
	// with an empty queue it defines quiescence.
	busy    int
	idleCnd *sync.Cond

	wg sync.WaitGroup
}

func newScheduler(workers, maxEvents int) *scheduler {
	s := &scheduler{maxEvents: maxEvents}
	s.cond = sync.NewCond(&s.mu)
	s.idleCnd = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// ready places a component at the tail of the run queue.
func (s *scheduler) ready(c *Component) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.queue.push(c)
	s.mu.Unlock()
	s.cond.Signal()
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queue.n == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		c := s.queue.pop()
		s.busy++
		s.mu.Unlock()

		again := c.execute(s.maxEvents)

		s.mu.Lock()
		s.busy--
		if again && !s.closed {
			s.queue.push(c)
			s.cond.Signal()
		}
		if s.busy == 0 && s.queue.n == 0 {
			s.idleCnd.Broadcast()
		}
		s.mu.Unlock()
	}
}

// close stops all workers. Queued work is abandoned.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.idleCnd.Broadcast()
	s.wg.Wait()
}

// awaitIdle blocks until the run queue is empty and no component is
// executing, or the scheduler is closed. Note that quiescence is momentary:
// external goroutines (timers, sockets) may enqueue new work afterwards.
func (s *scheduler) awaitIdle() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for (s.queue.n > 0 || s.busy > 0) && !s.closed {
		s.idleCnd.Wait()
	}
}
