package kompics

import "fmt"

// ChannelSelector filters which events cross a channel towards a given
// endpoint. Returning false drops the event for that endpoint only (the
// silent drop is correct Kompics behaviour).
type ChannelSelector func(Event) bool

// Channel connects the provided side of a port to a required side of the
// same PortType. Indications travel provider→requirer; requests travel
// requirer→provider. Delivery is FIFO and exactly-once per receiver.
type Channel struct {
	provided *Port
	required *Port

	// selectors filter events per travel direction; nil means pass-all.
	toRequired ChannelSelector // filters indications
	toProvided ChannelSelector // filters requests

	disconnected bool
}

// ChannelOption configures a channel at Connect time.
type ChannelOption func(*Channel)

// WithIndicationSelector filters indications travelling provider→requirer.
func WithIndicationSelector(s ChannelSelector) ChannelOption {
	return func(c *Channel) { c.toRequired = s }
}

// WithRequestSelector filters requests travelling requirer→provider.
func WithRequestSelector(s ChannelSelector) ChannelOption {
	return func(c *Channel) { c.toProvided = s }
}

// Connect wires a provided port to a required port. Both ports must share
// the same PortType and be on opposite sides.
func Connect(provided, required *Port, opts ...ChannelOption) (*Channel, error) {
	if provided == nil || required == nil {
		return nil, fmt.Errorf("kompics: Connect requires non-nil ports")
	}
	if provided.ptype != required.ptype {
		return nil, fmt.Errorf("kompics: port type mismatch: %q vs %q",
			provided.ptype.name, required.ptype.name)
	}
	if !provided.provided {
		return nil, fmt.Errorf("kompics: first argument to Connect must be a provided port")
	}
	if required.provided {
		return nil, fmt.Errorf("kompics: second argument to Connect must be a required port")
	}
	c := &Channel{provided: provided, required: required}
	for _, opt := range opts {
		opt(c)
	}
	provided.addChannel(c)
	required.addChannel(c)
	return c, nil
}

// MustConnect is Connect that panics on error; convenient in wiring code
// where a failure is a programming bug.
func MustConnect(provided, required *Port, opts ...ChannelOption) *Channel {
	c, err := Connect(provided, required, opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// Disconnect detaches the channel from both ports. In-flight events that
// were already enqueued at the destination are still handled.
func (c *Channel) Disconnect() {
	if c.disconnected {
		return
	}
	c.disconnected = true
	c.provided.removeChannel(c)
	c.required.removeChannel(c)
}

// forward routes an event published at endpoint from to the opposite
// endpoint, applying the direction's selector.
func (c *Channel) forward(from *Port, e Event) {
	switch from {
	case c.provided:
		if c.toRequired != nil && !c.toRequired(e) {
			return
		}
		c.required.deliver(e)
	case c.required:
		if c.toProvided != nil && !c.toProvided(e) {
			return
		}
		c.provided.deliver(e)
	}
}
