package kompics

import "fmt"

// Event is the marker interface for everything that travels on channels.
// Any value can be an event; typed ports restrict which events a channel
// carries.
type Event interface{}

// Direction distinguishes the two ways events flow across a port.
type Direction int

// Port directions. An indication flows out of the component providing the
// port; a request flows into it.
const (
	Indication Direction = iota + 1
	Request
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Indication:
		return "indication"
	case Request:
		return "request"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Lifecycle events, delivered on every component's control port.
type (
	// Start requests that a component begin operating.
	Start struct{}
	// Started indicates that a component has processed Start.
	Started struct{ ID ComponentID }
	// Stop requests that a component cease operating.
	Stop struct{}
	// Stopped indicates that a component has processed Stop.
	Stopped struct{ ID ComponentID }
	// Kill requests permanent removal of a component.
	Kill struct{}
)

// Fault is published on the control port when a handler panics. The
// component is halted after a fault.
type Fault struct {
	// ID identifies the faulty component.
	ID ComponentID
	// Err carries the recovered panic value.
	Err error
	// Event is the event whose handler panicked.
	Event Event
}

// Error implements the error interface so faults can be wrapped.
func (f *Fault) Error() string {
	return fmt.Sprintf("kompics: component %d faulted handling %T: %v", f.ID, f.Event, f.Err)
}
