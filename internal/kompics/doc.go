// Package kompics is a Go implementation of the Kompics component model
// (Arad, Dowling, Haridi — Middleware 2012): protocols are programmed as
// event-driven components that declare typed ports and are connected by
// channels.
//
// Semantics implemented here, following §II-A of the ICDCS'17 paper:
//
//   - Ports are typed by a PortType, which declares which event types travel
//     in which direction (indications flow from the providing component,
//     requests flow towards it).
//   - Channels connect a provided port to a required port of the same
//     PortType and deliver events FIFO, exactly once per receiver. Events
//     are published on all connected channels (broadcast), optionally
//     filtered by channel selectors; components ignore events they have no
//     handler for (silent drop is correct in Kompics).
//   - A component is scheduled on at most one worker at a time and thus has
//     exclusive access to its state. When scheduled it handles up to
//     MaxEvents queued events before being re-queued, trading throughput
//     (cache reuse) against fairness.
//
// Components are defined by implementing Definition; the runtime calls
// Init once with a Context used to declare ports and subscribe handlers.
package kompics
