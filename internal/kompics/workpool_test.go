package kompics

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestWorkPoolRunsEverySubmission checks FIFO admission and completion of
// every submitted item across concurrent producers.
func TestWorkPoolRunsEverySubmission(t *testing.T) {
	var ran atomic.Int64
	pool := NewWorkPool(4, func(int) bool {
		ran.Add(1)
		return false
	})
	const producers, per = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if !pool.Submit(j) {
					t.Error("submit refused on open pool")
					return
				}
			}
		}()
	}
	wg.Wait()
	pool.AwaitIdle()
	if got := ran.Load(); got != producers*per {
		t.Fatalf("ran %d of %d items", got, producers*per)
	}
	pool.Close()
	if pool.Submit(1) {
		t.Fatal("submit accepted after Close")
	}
}

// TestWorkPoolRequeue checks that run's requeue result re-admits the item
// until it reports done, and that AwaitIdle only returns once the requeue
// chain is exhausted.
func TestWorkPoolRequeue(t *testing.T) {
	var steps atomic.Int64
	pool := NewWorkPool(2, func(int) bool {
		return steps.Add(1) < 10
	})
	defer pool.Close()
	pool.Submit(0)
	pool.AwaitIdle()
	if got := steps.Load(); got != 10 {
		t.Fatalf("item executed %d times, want 10", got)
	}
}

// TestWorkPoolSingleWorkerOrder checks items run in submission order on a
// one-worker pool — the property the codec sequencer's release path and
// the scheduler's FIFO fairness both lean on.
func TestWorkPoolSingleWorkerOrder(t *testing.T) {
	var mu sync.Mutex
	var got []int
	pool := NewWorkPool(1, func(i int) bool {
		mu.Lock()
		got = append(got, i)
		mu.Unlock()
		return false
	})
	defer pool.Close()
	for i := 0; i < 100; i++ {
		pool.Submit(i)
	}
	pool.AwaitIdle()
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d ran item %d; order violated", i, v)
		}
	}
}
