package kompics

import (
	"fmt"
	"reflect"
	"sync"
)

// ComponentID uniquely identifies a component within a System.
type ComponentID uint64

// Definition is implemented by user components. Init is called exactly once
// when the component is created; it declares ports and subscribes handlers
// through the Context. State owned by the definition is only ever touched
// by one worker at a time, so no synchronisation is needed inside handlers.
type Definition interface {
	Init(ctx *Context)
}

// ControlPort is the port type every component implicitly provides. Start,
// Stop and Kill are requests; Started, Stopped and Fault are indications.
var ControlPort = NewPortType("Control").
	Request(Start{}).
	Request(Stop{}).
	Request(Kill{}).
	Indication(Started{}).
	Indication(Stopped{}).
	Indication((*Fault)(nil))

// queuedEvent pairs an event with the port it arrived on.
type queuedEvent struct {
	port  *Port
	event Event
}

type handlerEntry struct {
	etype reflect.Type
	fn    func(Event)
}

// Component is the runtime core of a component instance. It owns the
// mailbox, handler table and scheduling state; user logic lives in the
// Definition.
type Component struct {
	id      ComponentID
	sys     *System
	def     Definition
	control *Port
	self    *Port // loopback for thread-safe self-triggering

	mu        sync.Mutex
	controlq  []queuedEvent // control events take priority and bypass gating
	mailbox   []queuedEvent
	scheduled bool
	started   bool
	halted    bool

	handlers map[*Port][]handlerEntry
	ports    []*Port
	onStart  []func()
	onStop   []func()
	onKill   []func()
}

// ID returns the component's identifier.
func (c *Component) ID() ComponentID { return c.id }

// Definition returns the user definition backing this component.
func (c *Component) Definition() Definition { return c.def }

// Control returns the component's provided control port. Supervisors can
// connect a required ControlPort to observe Started/Stopped/Fault
// indications.
func (c *Component) Control() *Port { return c.control }

// SelfTrigger enqueues an event to the component itself from any
// goroutine. The event is handled by handlers registered with
// Context.SubscribeSelf, with the usual exclusive-state guarantee. This is
// how I/O callbacks hand results back into component context.
func (c *Component) SelfTrigger(e Event) {
	c.enqueue(c.self, e)
}

// enqueue adds an event arriving at port p to the component's mailbox and
// schedules the component if necessary.
func (c *Component) enqueue(p *Port, e Event) {
	c.mu.Lock()
	if c.halted {
		c.mu.Unlock()
		return
	}
	if p == c.control {
		c.controlq = append(c.controlq, queuedEvent{port: p, event: e})
	} else {
		c.mailbox = append(c.mailbox, queuedEvent{port: p, event: e})
	}
	schedule := !c.scheduled
	if schedule {
		c.scheduled = true
	}
	c.mu.Unlock()
	if schedule {
		c.sys.sched.ready(c)
	}
}

// next pops the next runnable event honouring control priority and the
// started gate: until the component is started, only control events run;
// everything else stays queued (Kompics queues events at ports until the
// component is scheduled and running).
func (c *Component) next() (queuedEvent, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.controlq) > 0 {
		qe := c.controlq[0]
		c.controlq = c.controlq[1:]
		return qe, true
	}
	if !c.started || c.halted {
		return queuedEvent{}, false
	}
	if len(c.mailbox) > 0 {
		qe := c.mailbox[0]
		c.mailbox = c.mailbox[1:]
		return qe, true
	}
	return queuedEvent{}, false
}

// execute runs up to max events. It reports whether the component must be
// rescheduled because runnable work remains.
func (c *Component) execute(max int) bool {
	for i := 0; i < max; i++ {
		qe, ok := c.next()
		if !ok {
			break
		}
		c.dispatch(qe)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	runnable := len(c.controlq) > 0 || (c.started && !c.halted && len(c.mailbox) > 0)
	if !runnable {
		c.scheduled = false
	}
	return runnable
}

// dispatch runs all matching handlers for one event, with fault isolation.
func (c *Component) dispatch(qe queuedEvent) {
	defer func() {
		if r := recover(); r != nil {
			c.fault(r, qe.event)
		}
	}()

	if qe.port == c.control {
		c.handleControl(qe.event)
		return
	}
	c.runHandlers(qe)
}

func (c *Component) runHandlers(qe queuedEvent) {
	et := reflect.TypeOf(qe.event)
	for _, h := range c.handlers[qe.port] {
		if typeMatches(et, h.etype) {
			h.fn(qe.event)
		}
	}
	// Unmatched events are silently dropped: with broadcast channels it is
	// normal for components to ignore most traffic.
}

func (c *Component) handleControl(e Event) {
	switch e.(type) {
	case Start:
		if c.started {
			return
		}
		c.started = true
		for _, f := range c.onStart {
			f()
		}
		c.control.publish(Started{ID: c.id})
	case Stop:
		if !c.started {
			return
		}
		c.started = false
		for _, f := range c.onStop {
			f()
		}
		c.control.publish(Stopped{ID: c.id})
	case Kill:
		for _, f := range c.onKill {
			f()
		}
		c.halt()
	default:
		// User-defined control traffic (e.g. supervisors subscribe to
		// Started on their required side); nothing to run on the provider.
	}
}

func (c *Component) fault(r interface{}, during Event) {
	err, ok := r.(error)
	if !ok {
		err = fmt.Errorf("%v", r)
	}
	f := &Fault{ID: c.id, Err: err, Event: during}
	c.halt()
	c.control.publish(f)
	c.sys.reportFault(f)
}

// halt permanently disables the component: pending and future events are
// dropped.
func (c *Component) halt() {
	c.mu.Lock()
	c.halted = true
	c.mailbox = nil
	c.controlq = nil
	c.mu.Unlock()
}

// Halted reports whether the component has been killed or has faulted.
func (c *Component) Halted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.halted
}

// Context is handed to Definition.Init to declare ports and handlers. It
// must not be retained for use outside Init, except through the methods
// that are documented as goroutine-safe (Trigger, SelfTrigger).
type Context struct {
	c *Component
}

// ID returns the owning component's identifier.
func (ctx *Context) ID() ComponentID { return ctx.c.id }

// Component returns the runtime component under construction.
func (ctx *Context) Component() *Component { return ctx.c }

// System returns the component system.
func (ctx *Context) System() *System { return ctx.c.sys }

// Provides declares that the component provides a port of type pt: the
// component will trigger indications and handle requests on it.
func (ctx *Context) Provides(pt *PortType) *Port {
	p := &Port{owner: ctx.c, ptype: pt, provided: true}
	ctx.c.ports = append(ctx.c.ports, p)
	return p
}

// Requires declares that the component requires a port of type pt: the
// component will trigger requests and handle indications on it.
func (ctx *Context) Requires(pt *PortType) *Port {
	p := &Port{owner: ctx.c, ptype: pt, provided: false}
	ctx.c.ports = append(ctx.c.ports, p)
	return p
}

// Subscribe registers fn for events of proto's type arriving at port p.
// The port must belong to this component, and proto's type must be a
// declared incoming event of the port (requests on provided ports,
// indications on required ports). Interface types are declared with a nil
// pointer, e.g. (*Msg)(nil).
func (ctx *Context) Subscribe(p *Port, proto Event, fn func(Event)) {
	if p.owner != ctx.c {
		panic("kompics: Subscribe on a port owned by another component")
	}
	et := eventType(proto)
	if !allowsType(p.ptype, p.incoming(), et) {
		panic(fmt.Sprintf("kompics: %v is not a declared %s of port type %q",
			et, p.incoming(), p.ptype.name))
	}
	if ctx.c.handlers == nil {
		ctx.c.handlers = make(map[*Port][]handlerEntry)
	}
	ctx.c.handlers[p] = append(ctx.c.handlers[p], handlerEntry{etype: et, fn: fn})
}

// allowsType is PortType.Allows on a declared reflect.Type instead of a
// concrete event instance.
func allowsType(pt *PortType, d Direction, et reflect.Type) bool {
	var declared []reflect.Type
	switch d {
	case Indication:
		declared = pt.indications
	case Request:
		declared = pt.requests
	}
	for _, dt := range declared {
		if et == dt {
			return true
		}
		if dt.Kind() == reflect.Interface && et.Kind() != reflect.Interface && et.Implements(dt) {
			return true
		}
		if dt.Kind() == reflect.Interface && et.Kind() == reflect.Interface && et.Implements(dt) {
			return true
		}
	}
	return false
}

// SubscribeSelf registers fn for events injected with
// Component.SelfTrigger.
func (ctx *Context) SubscribeSelf(proto Event, fn func(Event)) {
	et := eventType(proto)
	if ctx.c.handlers == nil {
		ctx.c.handlers = make(map[*Port][]handlerEntry)
	}
	self := ctx.c.self
	ctx.c.handlers[self] = append(ctx.c.handlers[self], handlerEntry{etype: et, fn: fn})
}

// Trigger publishes an event on one of the component's ports. Safe from
// any goroutine; the event is enqueued at all connected peers.
func (ctx *Context) Trigger(e Event, p *Port) {
	if p.owner != ctx.c {
		panic("kompics: Trigger on a port owned by another component")
	}
	p.publish(e)
}

// OnStart registers fn to run when the component handles Start.
func (ctx *Context) OnStart(fn func()) { ctx.c.onStart = append(ctx.c.onStart, fn) }

// OnStop registers fn to run when the component handles Stop.
func (ctx *Context) OnStop(fn func()) { ctx.c.onStop = append(ctx.c.onStop, fn) }

// OnKill registers fn to run when the component is killed.
func (ctx *Context) OnKill(fn func()) { ctx.c.onKill = append(ctx.c.onKill, fn) }
