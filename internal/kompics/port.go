package kompics

import (
	"fmt"
	"reflect"
	"sync"
)

// PortType is the "service specification" of a port: it declares which
// event types may travel as indications and which as requests. Event types
// may be concrete types or interface types; an interface type admits every
// implementation (the paper's "subtypes").
//
// Declare interface types with a nil pointer, e.g.
//
//	pt.Indication((*Msg)(nil))
//
// and concrete types with a zero value, e.g. pt.Request(Ping{}).
type PortType struct {
	name        string
	indications []reflect.Type
	requests    []reflect.Type
}

// NewPortType creates an empty port type with a diagnostic name.
func NewPortType(name string) *PortType {
	return &PortType{name: name}
}

// Name returns the diagnostic name of the port type.
func (pt *PortType) Name() string { return pt.name }

// Indication declares that events of proto's type flow from the provider.
// It returns pt for chaining.
func (pt *PortType) Indication(proto Event) *PortType {
	pt.indications = append(pt.indications, eventType(proto))
	return pt
}

// Request declares that events of proto's type flow towards the provider.
// It returns pt for chaining.
func (pt *PortType) Request(proto Event) *PortType {
	pt.requests = append(pt.requests, eventType(proto))
	return pt
}

// Allows reports whether an event of type t may travel in direction d.
func (pt *PortType) Allows(d Direction, e Event) bool {
	var declared []reflect.Type
	switch d {
	case Indication:
		declared = pt.indications
	case Request:
		declared = pt.requests
	}
	t := reflect.TypeOf(e)
	for _, dt := range declared {
		if typeMatches(t, dt) {
			return true
		}
	}
	return false
}

// eventType resolves the declared type of a prototype value. A nil pointer
// to an interface declares the interface type itself.
func eventType(proto Event) reflect.Type {
	t := reflect.TypeOf(proto)
	if t == nil {
		panic("kompics: cannot declare untyped nil as an event type")
	}
	if t.Kind() == reflect.Ptr && t.Elem().Kind() == reflect.Interface {
		return t.Elem()
	}
	return t
}

// typeMatches reports whether a concrete event type t satisfies declared
// type dt (equality, or interface implementation).
func typeMatches(t, dt reflect.Type) bool {
	if t == dt {
		return true
	}
	if dt.Kind() == reflect.Interface {
		return t.Implements(dt)
	}
	return false
}

// Port is a runtime port instance owned by a component. A provided port is
// the service side: its owner triggers indications and handles requests.
// A required port is the client side: its owner triggers requests and
// handles indications.
type Port struct {
	owner    *Component
	ptype    *PortType
	provided bool

	mu       sync.Mutex
	channels []*Channel
}

// Type returns the port's PortType.
func (p *Port) Type() *PortType { return p.ptype }

// IsProvided reports whether this is the providing side of the port.
func (p *Port) IsProvided() bool { return p.provided }

// Owner returns the component that owns this port.
func (p *Port) Owner() *Component { return p.owner }

// outgoing returns the direction in which the owner sends on this port.
func (p *Port) outgoing() Direction {
	if p.provided {
		return Indication
	}
	return Request
}

// incoming returns the direction in which the owner receives on this port.
func (p *Port) incoming() Direction {
	if p.provided {
		return Request
	}
	return Indication
}

func (p *Port) addChannel(c *Channel) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.channels = append(p.channels, c)
}

func (p *Port) removeChannel(c *Channel) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, ch := range p.channels {
		if ch == c {
			p.channels = append(p.channels[:i], p.channels[i+1:]...)
			return
		}
	}
}

// snapshotChannels returns a copy of the channel list for lock-free
// publication.
func (p *Port) snapshotChannels() []*Channel {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Channel, len(p.channels))
	copy(out, p.channels)
	return out
}

// publish sends e on every channel connected to this port, in the
// direction the owner is allowed to send.
func (p *Port) publish(e Event) {
	dir := p.outgoing()
	if !p.ptype.Allows(dir, e) {
		panic(fmt.Sprintf("kompics: event %T is not a declared %s of port type %q",
			e, dir, p.ptype.name))
	}
	for _, c := range p.snapshotChannels() {
		c.forward(p, e)
	}
}

// deliver enqueues e at this port for handling by the owner component.
func (p *Port) deliver(e Event) {
	p.owner.enqueue(p, e)
}
