package kompics

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/kompics/kompicsmessaging-go/internal/clock"
)

// selfPort is the pseudo port type backing Component.SelfTrigger. Events on
// it bypass the port type system; they never cross channels.
var selfPort = NewPortType("Self")

// Option configures a System.
type Option func(*System)

// WithWorkers sets the number of scheduler workers (default: GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(s *System) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithMaxEvents sets how many events a component handles per scheduling
// before yielding — the paper's throughput/fairness knob (default: 16).
func WithMaxEvents(n int) Option {
	return func(s *System) {
		if n > 0 {
			s.maxEvents = n
		}
	}
}

// WithClock injects the clock used by components (default: the OS clock).
func WithClock(c clock.Clock) Option {
	return func(s *System) { s.clock = c }
}

// WithFaultHandler installs a callback invoked whenever a component
// handler panics. The default keeps faults silent (they are also published
// as Fault indications on the component's control port).
func WithFaultHandler(fn func(*Fault)) Option {
	return func(s *System) { s.onFault = fn }
}

// System owns a set of components and the scheduler that runs them.
type System struct {
	workers   int
	maxEvents int
	clock     clock.Clock
	onFault   func(*Fault)

	sched  *scheduler
	nextID atomic.Uint64

	mu         sync.Mutex
	components map[ComponentID]*Component
	closed     bool
}

// NewSystem creates and starts a component system.
func NewSystem(opts ...Option) *System {
	s := &System{
		workers:    runtime.GOMAXPROCS(0),
		maxEvents:  16,
		clock:      clock.Real{},
		components: make(map[ComponentID]*Component),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.sched = newScheduler(s.workers, s.maxEvents)
	return s
}

// Clock returns the system clock.
func (s *System) Clock() clock.Clock { return s.clock }

// Create instantiates a component from def. Init runs synchronously on the
// calling goroutine; the component is created stopped and must be started
// with Start.
func (s *System) Create(def Definition) *Component {
	c := &Component{
		id:  ComponentID(s.nextID.Add(1)),
		sys: s,
		def: def,
	}
	c.control = &Port{owner: c, ptype: ControlPort, provided: true}
	c.self = &Port{owner: c, ptype: selfPort, provided: true}
	c.ports = append(c.ports, c.control, c.self)
	def.Init(&Context{c: c})

	s.mu.Lock()
	s.components[c.id] = c
	s.mu.Unlock()
	return c
}

// Start delivers a Start request to the component's control port.
func (s *System) Start(c *Component) { c.enqueue(c.control, Start{}) }

// Stop delivers a Stop request to the component's control port.
func (s *System) Stop(c *Component) { c.enqueue(c.control, Stop{}) }

// Kill delivers a Kill request; the component is halted permanently.
func (s *System) Kill(c *Component) { c.enqueue(c.control, Kill{}) }

// AwaitQuiescence blocks until no component has runnable work. It is a
// momentary condition intended for tests and synchronous drivers; external
// event sources can re-activate the system immediately afterwards.
func (s *System) AwaitQuiescence() { s.sched.awaitIdle() }

// Shutdown stops the scheduler. Components are not notified; callers that
// need orderly teardown should Stop/Kill components and AwaitQuiescence
// first.
func (s *System) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.sched.close()
}

func (s *System) reportFault(f *Fault) {
	if s.onFault != nil {
		s.onFault(f)
	}
}
