package kompics

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// --- test fixtures -------------------------------------------------------

type ping struct{ Seq int }
type pong struct{ Seq int }

// pingPongPort is shared: port types are identities, like Java classes.
var pingPongPort = NewPortType("PingPong").
	Request(ping{}).
	Indication(pong{})

func testPortType() *PortType { return pingPongPort }

// ponger provides the port: handles ping requests, answers pong.
type ponger struct {
	port *Port
	got  []int
}

func (p *ponger) Init(ctx *Context) {
	p.port = ctx.Provides(testPortType())
	ctx.Subscribe(p.port, ping{}, func(e Event) {
		pg := e.(ping)
		p.got = append(p.got, pg.Seq)
		ctx.Trigger(pong{Seq: pg.Seq}, p.port)
	})
}

// pinger requires the port: sends pings, collects pongs.
type pinger struct {
	port *Port
	mu   sync.Mutex
	got  []int
	done chan struct{}
	want int
}

func (p *pinger) Init(ctx *Context) {
	p.port = ctx.Requires(testPortType())
	ctx.Subscribe(p.port, pong{}, func(e Event) {
		pg := e.(pong)
		p.mu.Lock()
		p.got = append(p.got, pg.Seq)
		n := len(p.got)
		p.mu.Unlock()
		if n == p.want && p.done != nil {
			close(p.done)
		}
	})
}

func (p *pinger) received() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.got))
	copy(out, p.got)
	return out
}

func newTestSystem(t *testing.T, opts ...Option) *System {
	t.Helper()
	sys := NewSystem(opts...)
	t.Cleanup(sys.Shutdown)
	return sys
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// --- PortType ------------------------------------------------------------

func TestPortTypeAllows(t *testing.T) {
	pt := testPortType()
	tests := []struct {
		name string
		dir  Direction
		e    Event
		want bool
	}{
		{"ping is a request", Request, ping{}, true},
		{"ping is not an indication", Indication, ping{}, false},
		{"pong is an indication", Indication, pong{}, true},
		{"pong is not a request", Request, pong{}, false},
		{"undeclared type", Request, "other", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := pt.Allows(tt.dir, tt.e); got != tt.want {
				t.Fatalf("Allows(%v, %T) = %v, want %v", tt.dir, tt.e, got, tt.want)
			}
		})
	}
}

type animal interface{ Sound() string }
type dog struct{}

func (dog) Sound() string { return "woof" }

func TestPortTypeInterfaceSubtyping(t *testing.T) {
	pt := NewPortType("Zoo").Indication((*animal)(nil))
	if !pt.Allows(Indication, dog{}) {
		t.Fatal("concrete implementation of declared interface must be allowed")
	}
	if pt.Allows(Indication, 42) {
		t.Fatal("non-implementation must not be allowed")
	}
}

func TestPortTypeNilPrototypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("declaring untyped nil must panic")
		}
	}()
	NewPortType("bad").Indication(nil)
}

func TestDirectionString(t *testing.T) {
	if Indication.String() != "indication" || Request.String() != "request" {
		t.Fatal("Direction.String mismatch")
	}
	if Direction(99).String() != "Direction(99)" {
		t.Fatal("unknown direction should format numerically")
	}
}

// --- wiring and delivery --------------------------------------------------

func TestConnectErrors(t *testing.T) {
	sys := newTestSystem(t)
	po := &ponger{}
	pi := &pinger{}
	pc := sys.Create(po)
	_ = pc
	sys.Create(pi)

	otherType := NewPortType("Other").Request(ping{})
	other := &struct {
		Definition
		port *Port
	}{}

	// Build a component with a mismatching port type.
	var mismatched *Port
	sys.Create(definitionFunc(func(ctx *Context) {
		mismatched = ctx.Provides(otherType)
	}))
	_ = other

	tests := []struct {
		name     string
		provided *Port
		required *Port
	}{
		{"nil ports", nil, nil},
		{"type mismatch", mismatched, pi.port},
		{"two required", pi.port, pi.port},
		{"two provided", po.port, po.port},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Connect(tt.provided, tt.required); err == nil {
				t.Fatal("Connect succeeded, want error")
			}
		})
	}
}

// definitionFunc adapts a func to Definition for compact test components.
type definitionFunc func(ctx *Context)

func (f definitionFunc) Init(ctx *Context) { f(ctx) }

func TestMustConnectPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustConnect must panic on invalid wiring")
		}
	}()
	MustConnect(nil, nil)
}

func TestRequestIndicationRoundTrip(t *testing.T) {
	sys := newTestSystem(t)
	po := &ponger{}
	pi := &pinger{want: 1, done: make(chan struct{})}
	pgc := sys.Create(po)
	pic := sys.Create(pi)
	MustConnect(po.port, pi.port)
	sys.Start(pgc)
	sys.Start(pic)

	pi.port.publish(ping{Seq: 7})
	select {
	case <-pi.done:
	case <-time.After(5 * time.Second):
		t.Fatal("no pong received")
	}
	if got := pi.received(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("received %v, want [7]", got)
	}
}

func TestFIFOPerChannel(t *testing.T) {
	sys := newTestSystem(t)
	po := &ponger{}
	pi := &pinger{want: 500, done: make(chan struct{})}
	pgc := sys.Create(po)
	pic := sys.Create(pi)
	MustConnect(po.port, pi.port)
	sys.Start(pgc)
	sys.Start(pic)

	for i := 0; i < 500; i++ {
		pi.port.publish(ping{Seq: i})
	}
	select {
	case <-pi.done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d pongs received", len(pi.received()))
	}
	got := pi.received()
	for i, v := range got {
		if v != i {
			t.Fatalf("pong %d has seq %d; FIFO order violated (%v...)", i, v, got[:min(10, len(got))])
		}
	}
}

func TestBroadcastToAllChannels(t *testing.T) {
	// One provider, three requirers: every indication reaches each
	// requirer exactly once.
	sys := newTestSystem(t)
	po := &ponger{}
	pgc := sys.Create(po)
	const n = 3
	pingers := make([]*pinger, n)
	for i := range pingers {
		pingers[i] = &pinger{want: 1, done: make(chan struct{})}
		pic := sys.Create(pingers[i])
		MustConnect(po.port, pingers[i].port)
		sys.Start(pic)
	}
	sys.Start(pgc)

	pingers[0].port.publish(ping{Seq: 9})
	for i, pi := range pingers {
		select {
		case <-pi.done:
		case <-time.After(5 * time.Second):
			t.Fatalf("pinger %d got no pong", i)
		}
		if got := pi.received(); len(got) != 1 || got[0] != 9 {
			t.Fatalf("pinger %d received %v, want exactly [9]", i, got)
		}
	}
}

func TestChannelSelectorFilters(t *testing.T) {
	sys := newTestSystem(t)
	po := &ponger{}
	even := &pinger{}
	odd := &pinger{}
	pgc := sys.Create(po)
	evc := sys.Create(even)
	odc := sys.Create(odd)
	MustConnect(po.port, even.port, WithIndicationSelector(func(e Event) bool {
		return e.(pong).Seq%2 == 0
	}))
	MustConnect(po.port, odd.port, WithIndicationSelector(func(e Event) bool {
		return e.(pong).Seq%2 == 1
	}))
	sys.Start(pgc)
	sys.Start(evc)
	sys.Start(odc)

	for i := 0; i < 10; i++ {
		even.port.publish(ping{Seq: i})
	}
	waitFor(t, "selector delivery", func() bool {
		return len(even.received())+len(odd.received()) == 10
	})
	for _, v := range even.received() {
		if v%2 != 0 {
			t.Fatalf("even pinger received odd seq %d", v)
		}
	}
	for _, v := range odd.received() {
		if v%2 != 1 {
			t.Fatalf("odd pinger received even seq %d", v)
		}
	}
	if len(even.received()) != 5 || len(odd.received()) != 5 {
		t.Fatalf("split = %d/%d, want 5/5", len(even.received()), len(odd.received()))
	}
}

func TestRequestSelector(t *testing.T) {
	sys := newTestSystem(t)
	po := &ponger{}
	pi := &pinger{}
	pgc := sys.Create(po)
	pic := sys.Create(pi)
	MustConnect(po.port, pi.port, WithRequestSelector(func(e Event) bool {
		return e.(ping).Seq >= 5
	}))
	sys.Start(pgc)
	sys.Start(pic)

	for i := 0; i < 10; i++ {
		pi.port.publish(ping{Seq: i})
	}
	waitFor(t, "filtered pings", func() bool { return len(pi.received()) == 5 })
	time.Sleep(10 * time.Millisecond) // allow over-delivery to surface
	if got := len(pi.received()); got != 5 {
		t.Fatalf("received %d pongs, want 5", got)
	}
}

func TestDisconnectStopsDelivery(t *testing.T) {
	sys := newTestSystem(t)
	po := &ponger{}
	pi := &pinger{}
	pgc := sys.Create(po)
	pic := sys.Create(pi)
	ch := MustConnect(po.port, pi.port)
	sys.Start(pgc)
	sys.Start(pic)

	pi.port.publish(ping{Seq: 1})
	waitFor(t, "first pong", func() bool { return len(pi.received()) == 1 })
	ch.Disconnect()
	ch.Disconnect() // idempotent
	pi.port.publish(ping{Seq: 2})
	sys.AwaitQuiescence()
	if got := len(pi.received()); got != 1 {
		t.Fatalf("received %d pongs after disconnect, want 1", got)
	}
}

func TestTriggerUndeclaredEventPanics(t *testing.T) {
	sys := newTestSystem(t)
	po := &ponger{}
	sys.Create(po)
	defer func() {
		if recover() == nil {
			t.Fatal("publishing an undeclared event type must panic")
		}
	}()
	po.port.publish(ping{}) // ping is a request; provider may only send indications
}

func TestSubscribeWrongDirectionPanics(t *testing.T) {
	sys := newTestSystem(t)
	defer func() {
		if recover() == nil {
			t.Fatal("subscribing for an outgoing event type must panic")
		}
	}()
	sys.Create(definitionFunc(func(ctx *Context) {
		p := ctx.Provides(testPortType())
		// pong is outgoing (indication) for the provider; handler invalid.
		ctx.Subscribe(p, pong{}, func(Event) {})
	}))
}

func TestSubscribeForeignPortPanics(t *testing.T) {
	sys := newTestSystem(t)
	po := &ponger{}
	sys.Create(po)
	defer func() {
		if recover() == nil {
			t.Fatal("subscribing on a foreign port must panic")
		}
	}()
	sys.Create(definitionFunc(func(ctx *Context) {
		ctx.Subscribe(po.port, ping{}, func(Event) {})
	}))
}

// --- scheduling ------------------------------------------------------------

func TestExclusiveExecution(t *testing.T) {
	// A component must never run on two workers at once even under heavy
	// concurrent load.
	sys := newTestSystem(t, WithWorkers(8), WithMaxEvents(4))
	var inside atomic.Int32
	var violations atomic.Int32
	var handled atomic.Int32

	comp := &ponger{}
	pc := sys.Create(definitionFunc(func(ctx *Context) {
		comp.port = ctx.Provides(testPortType())
		ctx.Subscribe(comp.port, ping{}, func(Event) {
			if inside.Add(1) != 1 {
				violations.Add(1)
			}
			//kmlint:ignore handlerblock this handler blocks on purpose to widen the race window the exclusivity test probes
			time.Sleep(50 * time.Microsecond)
			inside.Add(-1)
			handled.Add(1)
		})
	}))
	pi := &pinger{}
	pic := sys.Create(pi)
	MustConnect(comp.port, pi.port)
	sys.Start(pc)
	sys.Start(pic)

	const total = 400
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/4; i++ {
				pi.port.publish(ping{Seq: i})
			}
		}()
	}
	wg.Wait()
	waitFor(t, "all pings handled", func() bool { return handled.Load() == total })
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d exclusive-execution violations", v)
	}
}

func TestMaxEventsFairness(t *testing.T) {
	// With one worker and two busy components, neither may starve: batches
	// of MaxEvents must interleave.
	sys := newTestSystem(t, WithWorkers(1), WithMaxEvents(8))

	var order []ComponentID
	var mu sync.Mutex
	mk := func() (*Port, *Component) {
		var port *Port
		c := sys.Create(definitionFunc(func(ctx *Context) {
			port = ctx.Provides(testPortType())
			id := ctx.ID()
			ctx.Subscribe(port, ping{}, func(Event) {
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
			})
		}))
		return port, c
	}
	portA, ca := mk()
	portB, cb := mk()

	// Requirer components to legally inject requests.
	reqA := &pinger{}
	reqB := &pinger{}
	rac := sys.Create(reqA)
	rbc := sys.Create(reqB)
	MustConnect(portA, reqA.port)
	MustConnect(portB, reqB.port)

	const n = 64
	// Queue work before starting so both are backlogged.
	for i := 0; i < n; i++ {
		reqA.port.publish(ping{Seq: i})
		reqB.port.publish(ping{Seq: i})
	}
	sys.Start(ca)
	sys.Start(cb)
	sys.Start(rac)
	sys.Start(rbc)

	waitFor(t, "all events handled", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 2*n
	})

	// Check that no component ran more than MaxEvents consecutively.
	mu.Lock()
	defer mu.Unlock()
	run := 1
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			run++
			if run > 8 {
				t.Fatalf("component %d ran %d consecutive events, max 8", order[i], run)
			}
		} else {
			run = 1
		}
	}
}

func TestEventsQueuedUntilStart(t *testing.T) {
	sys := newTestSystem(t)
	po := &ponger{}
	pi := &pinger{}
	pgc := sys.Create(po)
	pic := sys.Create(pi)
	MustConnect(po.port, pi.port)
	sys.Start(pic)

	pi.port.publish(ping{Seq: 1}) // ponger not started yet
	sys.AwaitQuiescence()
	if len(pi.received()) != 0 {
		t.Fatal("event handled before Start")
	}
	sys.Start(pgc)
	waitFor(t, "deferred event", func() bool { return len(pi.received()) == 1 })
}

func TestStopHaltsHandlingUntilRestart(t *testing.T) {
	sys := newTestSystem(t)
	po := &ponger{}
	pi := &pinger{}
	pgc := sys.Create(po)
	pic := sys.Create(pi)
	MustConnect(po.port, pi.port)
	sys.Start(pgc)
	sys.Start(pic)

	pi.port.publish(ping{Seq: 1})
	waitFor(t, "first pong", func() bool { return len(pi.received()) == 1 })

	sys.Stop(pgc)
	sys.AwaitQuiescence()
	pi.port.publish(ping{Seq: 2})
	sys.AwaitQuiescence()
	if len(pi.received()) != 1 {
		t.Fatal("stopped component handled an event")
	}

	sys.Start(pgc) // restart releases the queued event
	waitFor(t, "queued event after restart", func() bool { return len(pi.received()) == 2 })
}

func TestKillDropsEvents(t *testing.T) {
	sys := newTestSystem(t)
	po := &ponger{}
	pi := &pinger{}
	pgc := sys.Create(po)
	pic := sys.Create(pi)
	MustConnect(po.port, pi.port)
	sys.Start(pgc)
	sys.Start(pic)
	sys.Kill(pgc)
	waitFor(t, "halt", pgc.Halted)
	pi.port.publish(ping{Seq: 1})
	sys.AwaitQuiescence()
	if len(pi.received()) != 0 {
		t.Fatal("killed component handled an event")
	}
}

func TestLifecycleCallbacksAndIndications(t *testing.T) {
	sys := newTestSystem(t)
	var events []string
	var mu sync.Mutex
	record := func(s string) { mu.Lock(); events = append(events, s); mu.Unlock() }

	c := sys.Create(definitionFunc(func(ctx *Context) {
		ctx.OnStart(func() { record("start") })
		ctx.OnStop(func() { record("stop") })
		ctx.OnKill(func() { record("kill") })
	}))

	// Supervisor observing lifecycle indications.
	started := make(chan struct{})
	stopped := make(chan struct{})
	sup := sys.Create(definitionFunc(func(ctx *Context) {
		cp := ctx.Requires(ControlPort)
		MustConnect(c.Control(), cp)
		ctx.Subscribe(cp, Started{}, func(Event) { close(started) })
		ctx.Subscribe(cp, Stopped{}, func(Event) { close(stopped) })
	}))
	sys.Start(sup)
	sys.Start(c)
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("no Started indication")
	}
	sys.Stop(c)
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("no Stopped indication")
	}
	sys.Kill(c)
	waitFor(t, "kill", c.Halted)

	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(events) != "[start stop kill]" {
		t.Fatalf("lifecycle callbacks = %v, want [start stop kill]", events)
	}
}

func TestDoubleStartIsIdempotent(t *testing.T) {
	sys := newTestSystem(t)
	var starts atomic.Int32
	c := sys.Create(definitionFunc(func(ctx *Context) {
		ctx.OnStart(func() { starts.Add(1) })
	}))
	sys.Start(c)
	sys.Start(c)
	sys.AwaitQuiescence()
	if got := starts.Load(); got != 1 {
		t.Fatalf("OnStart ran %d times, want 1", got)
	}
}

// --- faults -----------------------------------------------------------------

func TestHandlerPanicFaultsComponent(t *testing.T) {
	faults := make(chan *Fault, 1)
	sys := newTestSystem(t, WithFaultHandler(func(f *Fault) { faults <- f }))

	po := &ponger{}
	var port *Port
	pc := sys.Create(definitionFunc(func(ctx *Context) {
		port = ctx.Provides(testPortType())
		ctx.Subscribe(port, ping{}, func(Event) { panic(errors.New("boom")) })
	}))
	_ = po
	pi := &pinger{}
	pic := sys.Create(pi)
	MustConnect(port, pi.port)
	sys.Start(pc)
	sys.Start(pic)

	pi.port.publish(ping{Seq: 1})
	select {
	case f := <-faults:
		if f.Err == nil || f.Err.Error() != "boom" {
			t.Fatalf("fault err = %v, want boom", f.Err)
		}
		if _, ok := f.Event.(ping); !ok {
			t.Fatalf("fault event = %T, want ping", f.Event)
		}
		if f.Error() == "" {
			t.Fatal("Fault.Error() empty")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no fault reported")
	}
	waitFor(t, "halt after fault", pc.Halted)
}

func TestNonErrorPanicWrapped(t *testing.T) {
	faults := make(chan *Fault, 1)
	sys := newTestSystem(t, WithFaultHandler(func(f *Fault) { faults <- f }))
	var port *Port
	pc := sys.Create(definitionFunc(func(ctx *Context) {
		port = ctx.Provides(testPortType())
		ctx.Subscribe(port, ping{}, func(Event) { panic("not an error") })
	}))
	pi := &pinger{}
	pic := sys.Create(pi)
	MustConnect(port, pi.port)
	sys.Start(pc)
	sys.Start(pic)
	pi.port.publish(ping{Seq: 1})
	select {
	case f := <-faults:
		if f.Err.Error() != "not an error" {
			t.Fatalf("fault err = %q", f.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no fault reported")
	}
}

// --- self trigger ------------------------------------------------------------

func TestSelfTrigger(t *testing.T) {
	sys := newTestSystem(t)
	got := make(chan int, 1)
	var comp *Component
	c := sys.Create(definitionFunc(func(ctx *Context) {
		ctx.SubscribeSelf(ping{}, func(e Event) { got <- e.(ping).Seq })
	}))
	comp = c
	sys.Start(c)
	comp.SelfTrigger(ping{Seq: 42})
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("self event seq = %d, want 42", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("self event not delivered")
	}
}

func TestSelfTriggerGatedUntilStart(t *testing.T) {
	sys := newTestSystem(t)
	var handled atomic.Int32
	c := sys.Create(definitionFunc(func(ctx *Context) {
		ctx.SubscribeSelf(ping{}, func(Event) { handled.Add(1) })
	}))
	c.SelfTrigger(ping{})
	sys.AwaitQuiescence()
	if handled.Load() != 0 {
		t.Fatal("self event handled before Start")
	}
	sys.Start(c)
	waitFor(t, "gated self event", func() bool { return handled.Load() == 1 })
}

// --- system ---------------------------------------------------------------

func TestShutdownIdempotent(t *testing.T) {
	sys := NewSystem()
	sys.Shutdown()
	sys.Shutdown()
}

func TestSystemClockDefault(t *testing.T) {
	sys := newTestSystem(t)
	if sys.Clock() == nil {
		t.Fatal("system clock is nil")
	}
}

func TestComponentAccessors(t *testing.T) {
	sys := newTestSystem(t)
	def := &ponger{}
	c := sys.Create(def)
	if c.ID() == 0 {
		t.Fatal("component ID must be nonzero")
	}
	if c.Definition() != def {
		t.Fatal("Definition() does not round-trip")
	}
	if !def.port.IsProvided() {
		t.Fatal("provided port reports IsProvided() = false")
	}
	if def.port.Owner() != c {
		t.Fatal("port owner mismatch")
	}
	if def.port.Type().Name() != "PingPong" {
		t.Fatalf("port type name = %q", def.port.Type().Name())
	}
}

// --- property tests -----------------------------------------------------------

func TestPropertyFIFOExactlyOnce(t *testing.T) {
	// For any batch of sequence numbers sent through a channel, the
	// receiver observes exactly that sequence, in order.
	f := func(seqs []int16) bool {
		if len(seqs) > 256 {
			seqs = seqs[:256]
		}
		sys := NewSystem(WithWorkers(4))
		defer sys.Shutdown()
		po := &ponger{}
		pi := &pinger{want: len(seqs), done: make(chan struct{})}
		pgc := sys.Create(po)
		pic := sys.Create(pi)
		MustConnect(po.port, pi.port)
		sys.Start(pgc)
		sys.Start(pic)
		for _, s := range seqs {
			pi.port.publish(ping{Seq: int(s)})
		}
		if len(seqs) > 0 {
			select {
			case <-pi.done:
			case <-time.After(10 * time.Second):
				return false
			}
		}
		sys.AwaitQuiescence()
		got := pi.received()
		if len(got) != len(seqs) {
			return false
		}
		for i := range got {
			if got[i] != int(seqs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStressManyComponents(t *testing.T) {
	// 50 ponger components behind one port each, 20 pingers hammering
	// them: the scheduler must deliver everything exactly once with no
	// starvation.
	sys := newTestSystem(t, WithWorkers(8), WithMaxEvents(4))
	const pongers, pingers, per = 50, 20, 40

	pongPorts := make([]*Port, pongers)
	for i := range pongPorts {
		i := i
		c := sys.Create(definitionFunc(func(ctx *Context) {
			p := ctx.Provides(testPortType())
			pongPorts[i] = p
			ctx.Subscribe(p, ping{}, func(e Event) {
				ctx.Trigger(pong{Seq: e.(ping).Seq}, p)
			})
		}))
		sys.Start(c)
	}

	var received atomic.Int64
	pingPorts := make([]*Port, pingers)
	comps := make([]*Component, pingers)
	for i := range pingPorts {
		i := i
		c := sys.Create(definitionFunc(func(ctx *Context) {
			p := ctx.Requires(testPortType())
			pingPorts[i] = p
			ctx.Subscribe(p, pong{}, func(Event) { received.Add(1) })
			ctx.SubscribeSelf(ping{}, func(e Event) { ctx.Trigger(e.(ping), p) })
		}))
		comps[i] = c
		// Each pinger connects to one ponger (round robin).
		MustConnect(pongPorts[i%pongers], pingPorts[i])
		sys.Start(c)
	}

	for round := 0; round < per; round++ {
		for i := range comps {
			comps[i].SelfTrigger(ping{Seq: round})
		}
	}
	want := int64(pingers * per)
	waitFor(t, "all pongs", func() bool { return received.Load() == want })
	sys.AwaitQuiescence()
	if got := received.Load(); got != want {
		t.Fatalf("received %d pongs, want exactly %d (no duplicates)", got, want)
	}
}

func TestDisconnectDuringTraffic(t *testing.T) {
	// Disconnecting a channel while traffic flows must not panic or
	// deliver to the disconnected endpoint afterwards.
	sys := newTestSystem(t, WithWorkers(4))
	po := &ponger{}
	pi := &pinger{}
	pgc := sys.Create(po)
	pic := sys.Create(pi)
	ch := MustConnect(po.port, pi.port)
	sys.Start(pgc)
	sys.Start(pic)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				pi.port.publish(ping{Seq: i})
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	ch.Disconnect()
	close(stop)
	wg.Wait()
	sys.AwaitQuiescence()
	countAtDisconnect := len(pi.received())
	sys.AwaitQuiescence()
	if got := len(pi.received()); got != countAtDisconnect {
		t.Fatalf("deliveries continued after disconnect: %d → %d", countAtDisconnect, got)
	}
}
