package kompics

import "sync"

// ring is a growable FIFO ring buffer. The previous slice-based queue
// popped with `queue = queue[1:]`, which both kept the vacated slot
// reachable (pinning the element for GC) and slid the window down the
// backing array so that steady traffic forced endless reallocation; the
// ring reuses its buffer in place.
type ring[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // number of queued elements
}

// push appends v at the tail, growing the ring when full.
func (q *ring[T]) push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
}

// pop removes and returns the front element, zeroing the vacated slot so
// the element is not pinned. Callers check q.n > 0 first.
func (q *ring[T]) pop() T {
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v
}

func (q *ring[T]) grow() {
	next := make([]T, max(16, 2*len(q.buf)))
	for i := 0; i < q.n; i++ {
		next[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = next
	q.head = 0
}

// WorkPool is the scheduler's worker-pool core, extracted so that other
// pipeline stages (the network's parallel codec stage) reuse it instead of
// hand-rolling a second pool: a fixed set of worker goroutines draining a
// growable FIFO ring under one mutex/cond, with a busy count that defines
// quiescence for AwaitIdle.
//
// run executes one item and reports whether the item must be requeued
// (the scheduler requeues components that still have runnable events).
// The requeue happens atomically with the worker going idle, so AwaitIdle
// cannot observe a false quiescence between "worker done" and "item back
// in the queue".
type WorkPool[T any] struct {
	run func(T) (requeue bool)

	mu     sync.Mutex
	cond   *sync.Cond
	queue  ring[T]
	closed bool

	// busy counts items currently executing on a worker; together with an
	// empty queue it defines quiescence.
	busy    int
	idleCnd *sync.Cond

	wg sync.WaitGroup
}

// NewWorkPool starts a pool of workers goroutines (at least one) applying
// run to submitted items in FIFO admission order.
func NewWorkPool[T any](workers int, run func(T) bool) *WorkPool[T] {
	p := &WorkPool[T]{run: run}
	p.cond = sync.NewCond(&p.mu)
	p.idleCnd = sync.NewCond(&p.mu)
	if workers < 1 {
		workers = 1
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Submit places item at the tail of the queue; it reports false when the
// pool is closed (the item is dropped).
func (p *WorkPool[T]) Submit(item T) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	p.queue.push(item)
	p.mu.Unlock()
	p.cond.Signal()
	return true
}

func (p *WorkPool[T]) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for p.queue.n == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		item := p.queue.pop()
		p.busy++
		p.mu.Unlock()

		again := p.run(item)

		p.mu.Lock()
		p.busy--
		if again && !p.closed {
			p.queue.push(item)
			p.cond.Signal()
		}
		if p.busy == 0 && p.queue.n == 0 {
			p.idleCnd.Broadcast()
		}
		p.mu.Unlock()
	}
}

// Close stops all workers. Queued work is abandoned.
func (p *WorkPool[T]) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.idleCnd.Broadcast()
	p.wg.Wait()
}

// AwaitIdle blocks until the queue is empty and no item is executing, or
// the pool is closed. Quiescence is momentary: other goroutines may submit
// new work afterwards.
func (p *WorkPool[T]) AwaitIdle() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for (p.queue.n > 0 || p.busy > 0) && !p.closed {
		p.idleCnd.Wait()
	}
}
