// Package clock abstracts time so that the same middleware logic can run
// against the operating-system clock in production and against a virtual
// clock inside the netsim discrete-event simulator.
//
// Only the small surface the middleware actually needs is abstracted:
// reading the current instant and scheduling one-shot timers. Timers fired
// by a virtual clock run synchronously inside the simulation loop, which is
// what makes experiment runs deterministic.
package clock

import (
	"sync"
	"time"
)

// Timer is a handle to a scheduled callback. Stop prevents the callback
// from running if it has not run yet.
type Timer interface {
	// Stop cancels the timer. It reports whether the timer was stopped
	// before firing.
	Stop() bool
}

// Clock provides the current time and one-shot timers.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// AfterFunc schedules f to run after d. The callback must not block;
	// on a virtual clock it executes inline in the simulation loop.
	AfterFunc(d time.Duration, f func()) Timer
}

// Real is a Clock backed by the operating-system clock.
// The zero value is ready to use.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{t: time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }

// Virtual is a manually advanced Clock for deterministic tests and
// simulations. Time only moves when Advance or AdvanceTo is called; due
// timers fire synchronously, in timestamp order, on the advancing
// goroutine. The zero value starts at the zero time; NewVirtual starts at
// an arbitrary fixed epoch to make timestamps readable.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	nextID int64
	timers timerHeap
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock positioned at a fixed, non-zero epoch.
func NewVirtual() *Virtual {
	return &Virtual{now: time.Unix(0, 0).UTC()}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// AfterFunc implements Clock. The callback runs during a future Advance
// call, on the goroutine calling Advance.
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.nextID++
	vt := &virtualTimer{
		clock: v,
		id:    v.nextID,
		when:  v.now.Add(d),
		f:     f,
	}
	v.timers.push(vt)
	return vt
}

// Advance moves the clock forward by d, firing every timer that becomes
// due, in order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	v.mu.Unlock()
	v.AdvanceTo(target)
}

// AdvanceTo moves the clock forward to instant t, firing every timer due at
// or before t in timestamp order (ties break in creation order). Timers
// scheduled by fired callbacks are honoured if they fall within the window.
func (v *Virtual) AdvanceTo(t time.Time) {
	for {
		v.mu.Lock()
		if t.Before(v.now) {
			v.mu.Unlock()
			return
		}
		vt := v.timers.peek()
		if vt == nil || vt.when.After(t) {
			v.now = t
			v.mu.Unlock()
			return
		}
		v.timers.pop()
		if vt.stopped {
			v.mu.Unlock()
			continue
		}
		v.now = vt.when
		vt.fired = true
		v.mu.Unlock()
		vt.f()
	}
}

// PendingTimers reports how many timers are scheduled and not yet fired or
// stopped. Useful in tests.
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, t := range v.timers {
		if !t.stopped && !t.fired {
			n++
		}
	}
	return n
}

// NextDeadline returns the due time of the earliest pending timer. The
// boolean result is false when no timer is pending.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, t := range v.timers {
		if !t.stopped && !t.fired {
			// The heap root is the earliest, but stopped entries may
			// linger; scan is fine at test scale.
			best := t.when
			for _, u := range v.timers {
				if !u.stopped && !u.fired && u.when.Before(best) {
					best = u.when
				}
			}
			return best, true
		}
	}
	return time.Time{}, false
}

type virtualTimer struct {
	clock   *Virtual
	id      int64
	when    time.Time
	f       func()
	stopped bool
	fired   bool
	index   int
}

func (t *virtualTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// timerHeap is a binary min-heap ordered by (when, id).
type timerHeap []*virtualTimer

func (h timerHeap) less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].id < h[j].id
}

func (h *timerHeap) push(t *virtualTimer) {
	*h = append(*h, t)
	i := len(*h) - 1
	(*h)[i].index = i
	h.up(i)
}

func (h timerHeap) peek() *virtualTimer {
	if len(h) == 0 {
		return nil
	}
	return h[0]
}

func (h *timerHeap) pop() *virtualTimer {
	old := *h
	n := len(old)
	if n == 0 {
		return nil
	}
	top := old[0]
	old[0] = old[n-1]
	old[0].index = 0
	*h = old[:n-1]
	if len(*h) > 0 {
		h.down(0)
	}
	return top
}

func (h timerHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h timerHeap) down(i int) {
	n := len(h)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(left, smallest) {
			smallest = left
		}
		if right < n && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h timerHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
