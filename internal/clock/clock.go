// Package clock abstracts time so that the same middleware logic can run
// against the operating-system clock in production and against a virtual
// clock inside the netsim discrete-event simulator.
//
// Only the small surface the middleware actually needs is abstracted:
// reading the current instant and scheduling one-shot timers. Timers fired
// by a virtual clock run synchronously inside the simulation loop, which is
// what makes experiment runs deterministic.
//
// Two virtual implementations exist. Virtual is the production event core:
// a hierarchical timer wheel with an overflow heap, O(1) scheduling and
// cancellation, and pooled timer nodes, built for simulations with 10⁵-10⁶
// concurrently pending timers. VirtualHeap is the original binary-heap
// implementation, kept as the A/B baseline and as the oracle for the
// wheel's determinism property tests: both fire timers in exactly
// (deadline, creation-id) order, so identical seeds must produce
// byte-identical event traces on either.
package clock

import "time"

// Timer is a handle to a scheduled callback. Stop prevents the callback
// from running if it has not run yet.
type Timer interface {
	// Stop cancels the timer. It reports whether the timer was stopped
	// before firing.
	Stop() bool
}

// Clock provides the current time and one-shot timers.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// AfterFunc schedules f to run after d. The callback must not block;
	// on a virtual clock it executes inline in the simulation loop.
	AfterFunc(d time.Duration, f func()) Timer
}

// SimClock is the surface shared by the wheel-backed Virtual and the
// heap-backed VirtualHeap oracle. The simulator (internal/netsim) drives
// either implementation through this interface, which is what makes the
// event-core A/B benchmark (make sim-campaign) a one-flag swap.
type SimClock interface {
	Clock

	// Post schedules f like AfterFunc but returns no handle, so the
	// implementation may recycle the timer node the moment it fires. This
	// is the simulator's hot path: a posted event costs no allocation on
	// the wheel once the node pool is warm.
	Post(d time.Duration, f func())

	// PostArg is Post for callbacks that need one argument. Passing the
	// argument through the timer node instead of a fresh closure lets
	// callers reuse a single func value for millions of events.
	PostArg(d time.Duration, f func(arg any), arg any)

	// NowNanos reports the current instant in nanoseconds since the Unix
	// epoch, readable without taking the clock lock. Event callbacks that
	// only need a timestamp (per-event trace marks, delivery stamps) use
	// this instead of Now, which would otherwise be the hottest lock in a
	// million-event campaign.
	NowNanos() int64

	// Advance moves the clock forward by d, firing every timer that
	// becomes due, in (deadline, creation-id) order.
	Advance(d time.Duration)

	// AdvanceTo moves the clock forward to instant t, firing every timer
	// due at or before t. Timers scheduled by fired callbacks are honoured
	// if they fall within the window.
	AdvanceTo(t time.Time)

	// PendingTimers reports how many timers are scheduled and not yet
	// fired or stopped. O(1).
	PendingTimers() int

	// NextDeadline returns the due time of the earliest pending timer.
	// The boolean result is false when no timer is pending.
	NextDeadline() (time.Time, bool)

	// HighWaterTimers reports the maximum number of concurrently pending
	// timers observed since the clock was created — the live-timer
	// high-water mark campaign reports track.
	HighWaterTimers() int

	// FiredTimers reports the total number of timer callbacks executed —
	// the event count campaign throughput is measured against.
	FiredTimers() uint64
}

// Real is a Clock backed by the operating-system clock.
// The zero value is ready to use.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{t: time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }
