package clock

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Virtual is a manually advanced Clock for deterministic tests and
// simulations. Time only moves when Advance or AdvanceTo is called; due
// timers fire synchronously, in (deadline, creation-id) order, on the
// advancing goroutine. The zero value starts at the zero time; NewVirtual
// starts at the Unix epoch to make timestamps readable.
//
// Internally Virtual is a hierarchical timer wheel: wheelLevels levels of
// wheelSlots buckets each, at a base granularity of one tick
// (2^tickShift ns ≈ 1 µs), backed by per-level occupancy bitmaps. A timer
// is bucketed by the highest tick digit in which its deadline differs from
// the cursor, which keeps every level's buckets in strictly increasing
// deadline order from the cursor outward — so "earliest pending timer" is
// the cheapest entry of each level's first occupied bucket, found by a
// bitmap scan instead of a heap walk. Deadlines beyond the wheel span
// (~2.4 virtual hours) go to an overflow min-heap and are fired straight
// from it; cancellation is lazy (Stop flips a flag and the node is
// recycled when next encountered), and a live counter makes PendingTimers
// O(1). Timer nodes come from a per-clock free list, so a steady event
// flow through Post/PostArg allocates nothing once the pool is warm.
// Deadlines are carried as int64 Unix nanoseconds throughout, so the hot
// comparison paths never touch time.Time.
//
// Exact (deadline, creation-id) firing order — including ties and
// callbacks that schedule into the current instant — is property-tested
// against VirtualHeap, the original binary-heap implementation, as an
// oracle.
type Virtual struct {
	mu       sync.Mutex
	now      time.Time
	nowNS    int64
	nowCheap atomic.Int64 // mirror of nowNS for the lock-free NowNanos
	baseNS   int64        // tick origin; set on first use
	baseSet  bool
	nextID   int64
	curTick  int64

	levels   [wheelLevels]wheelLevel
	cand     [wheelLevels]*wnode                // cached per-level minimum; nil = rescan
	spares   [wheelLevels][wheelSpares][]*wnode // recycled oversized bucket arrays; see dropBucket
	overflow wheelOverflow

	free []*wnode // recycled timer nodes

	live  int
	hwm   int
	fired uint64
}

var _ Clock = (*Virtual)(nil)
var _ SimClock = (*Virtual)(nil)

const (
	// tickShift sets the base granularity: 2^10 ns = 1.024 µs per tick.
	// Deadlines within one tick are ordered exactly by (time, id) when the
	// bucket drains, so granularity affects bucketing, never firing order.
	tickShift = 10
	// wheelBits slots-per-level exponent: 2048 buckets per level. Wide
	// levels keep common timer horizons (heartbeats, retransmission
	// timeouts, detector periods — milliseconds to seconds) one level
	// deep, so most nodes cascade once instead of twice on their way to
	// firing.
	wheelBits  = 11
	wheelSlots = 1 << wheelBits
	wheelMask  = wheelSlots - 1
	// wheelLevels levels cover 2^(11*3) ticks ≈ 2.4 hours of virtual
	// time; anything farther out lives in the overflow heap until it
	// comes due.
	wheelLevels = 3

	// node location markers (wnode.lvl) outside the wheel levels.
	lvlOverflow = -1
	lvlFree     = -2

	// bucketRetainCap bounds the backing array kept by an emptied bucket.
	// Top-level buckets concentrate huge node populations (every timer
	// with the same coarse deadline digit — easily 10⁵ nodes each at
	// campaign scale), so retaining their grown slices across the cursor
	// wrap would pin hundreds of MB of pointer arrays the GC must also
	// scan every cycle; those are dropped when emptied. Buckets at or
	// below the cap (level 0's constantly churning ones and level 1's
	// steady-state ones) keep their arrays, so the per-wrap refill cycle
	// allocates nothing — without this, bucket reallocation was the
	// wheel's entire steady-state allocation rate.
	bucketRetainCap = 32768

	// wheelSpares is how many dropped oversized arrays each level parks
	// for reuse. Several top-level buckets fill concurrently (one per
	// distinct timer horizon crossing the level's digit boundary), so a
	// single spare would leave the others reallocating every wrap.
	wheelSpares = 3
)

// wnode is one scheduled event. Nodes are owned by the clock and recycled
// through the free list; gen disambiguates a recycled node from the timer
// a caller still holds a handle to.
type wnode struct {
	id      int64
	gen     uint32
	lvl     int8 // wheel level, lvlOverflow, or lvlFree
	stopped bool
	slot    int16 // bucket index while on a wheel level
	hx      int32 // heap index while in overflow
	tick    int64 // deadline in ticks since base (wheel levels only)
	whenNS  int64 // deadline, Unix nanoseconds
	f       func()
	fa      func(any)
	arg     any
}

// wheelLevel is one ring of buckets plus its occupancy bitmap.
type wheelLevel struct {
	slots [wheelSlots][]*wnode
	occ   [wheelSlots / 64]uint64
}

func (l *wheelLevel) setBit(i int)   { l.occ[i>>6] |= 1 << (uint(i) & 63) }
func (l *wheelLevel) clearBit(i int) { l.occ[i>>6] &^= 1 << (uint(i) & 63) }

// nextSet returns the first occupied bucket index in [from, upto), or -1.
func (l *wheelLevel) nextSet(from, upto int) int {
	for i := from; i < upto; {
		w := l.occ[i>>6] >> (uint(i) & 63)
		if w != 0 {
			j := i + bits.TrailingZeros64(w)
			if j >= upto {
				return -1
			}
			return j
		}
		i = (i &^ 63) + 64
	}
	return -1
}

// NewVirtual returns a virtual clock positioned at the Unix epoch.
func NewVirtual() *Virtual {
	v := &Virtual{now: time.Unix(0, 0).UTC(), baseSet: true}
	return v
}

// initLocked anchors the tick origin for zero-value clocks.
func (v *Virtual) initLocked() {
	if !v.baseSet {
		v.nowNS = v.now.UnixNano()
		v.nowCheap.Store(v.nowNS)
		v.baseNS = v.nowNS
		v.baseSet = true
	}
}

// setNowLocked moves the cursor; t is when's time.Time form when the
// caller has it (saving a reconstruction), or the zero Time.
func (v *Virtual) setNowLocked(whenNS int64, t time.Time) {
	v.nowNS = whenNS
	v.nowCheap.Store(whenNS)
	if t.IsZero() {
		v.now = time.Unix(0, whenNS).UTC()
	} else {
		v.now = t
	}
	v.curTick = v.tickOf(whenNS)
}

// tickOf converts Unix nanoseconds to ticks since base, saturating on
// overflow so absurdly distant deadlines route into the overflow heap
// (compared there by whenNS, so ordering stays exact).
func (v *Virtual) tickOf(ns int64) int64 {
	d := ns - v.baseNS
	if d < 0 && ns > v.baseNS {
		d = math.MaxInt64
	}
	return d >> tickShift
}

// nodeLess is the global firing order: deadline, then creation id.
func nodeLess(a, b *wnode) bool {
	if a.whenNS != b.whenNS {
		return a.whenNS < b.whenNS
	}
	return a.id < b.id
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// NowNanos implements SimClock: the current instant in Unix nanoseconds,
// readable without taking the clock lock. Hot simulation paths (per-event
// timestamping) use this instead of Now.
func (v *Virtual) NowNanos() int64 { return v.nowCheap.Load() }

// AfterFunc implements Clock. The callback runs during a future Advance
// call, on the goroutine calling Advance. The returned handle pins the
// node's generation, so Stop on an already-recycled node safely reports
// false.
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := v.scheduleLocked(d, f, nil, nil)
	return &wheelTimer{v: v, n: n, gen: n.gen}
}

// Post implements SimClock: schedule without a handle, enabling immediate
// node recycling on fire.
func (v *Virtual) Post(d time.Duration, f func()) {
	v.mu.Lock()
	v.scheduleLocked(d, f, nil, nil)
	v.mu.Unlock()
}

// PostArg implements SimClock.
func (v *Virtual) PostArg(d time.Duration, f func(any), arg any) {
	v.mu.Lock()
	v.scheduleLocked(d, nil, f, arg)
	v.mu.Unlock()
}

// scheduleLocked allocates (or recycles) a node and places it in the
// wheel or the overflow heap.
func (v *Virtual) scheduleLocked(d time.Duration, f func(), fa func(any), arg any) *wnode {
	v.initLocked()
	if d < 0 {
		d = 0
	}
	var n *wnode
	if k := len(v.free); k > 0 {
		n = v.free[k-1]
		v.free[k-1] = nil
		v.free = v.free[:k-1]
	} else {
		n = new(wnode)
	}
	v.nextID++
	n.id = v.nextID
	n.stopped = false
	n.whenNS = v.nowNS + int64(d)
	if n.whenNS < v.nowNS { // duration overflow: saturate
		n.whenNS = math.MaxInt64
	}
	n.f, n.fa, n.arg = f, fa, arg
	v.live++
	if v.live > v.hwm {
		v.hwm = v.live
	}
	v.placeLocked(n)
	return n
}

// placeLocked buckets n by the highest tick digit in which its deadline
// differs from the cursor. Digits above the chosen level equal the
// cursor's, which is the invariant that keeps each level's occupied
// buckets in strictly increasing deadline order from the cursor outward.
func (v *Virtual) placeLocked(n *wnode) {
	tick := v.tickOf(n.whenNS)
	if tick < v.curTick {
		tick = v.curTick // due immediately; keep cursor invariants intact
	}
	n.tick = tick
	lvl := levelOf(tick ^ v.curTick)
	if lvl >= wheelLevels {
		n.lvl = lvlOverflow
		v.overflow.push(n)
		return
	}
	v.insertAt(n, lvl)
}

// levelOf maps a tick XOR to the wheel level of the highest differing
// digit (0 for "same tick").
func levelOf(xor int64) int {
	if xor == 0 {
		return 0
	}
	return (bits.Len64(uint64(xor)) - 1) / wheelBits
}

func (v *Virtual) insertAt(n *wnode, lvl int) {
	slot := int((n.tick >> (uint(lvl) * wheelBits)) & wheelMask)
	n.lvl = int8(lvl)
	n.slot = int16(slot)
	lev := &v.levels[lvl]
	s := lev.slots[slot]
	if s == nil {
		// A previously dropped oversized array restarts this bucket with
		// its full capacity, so the coarse-level fill/drain cycle reuses
		// a few big arrays per level instead of reallocating every pass.
		sp := &v.spares[lvl]
		best := -1
		for i := range sp {
			if sp[i] != nil && (best < 0 || cap(sp[i]) > cap(sp[best])) {
				best = i
			}
		}
		if best >= 0 {
			s = sp[best]
			sp[best] = nil
		}
	}
	lev.slots[slot] = append(s, n)
	lev.setBit(slot)
	if c := v.cand[lvl]; c != nil && nodeLess(n, c) {
		v.cand[lvl] = n
	}
}

// dropBucket disposes of an emptied bucket's backing array: small arrays
// stay in place for reuse, oversized ones are parked in the level's spare
// set (evicting the smallest) so the next filling buckets can take them
// over.
func (v *Virtual) dropBucket(lvl int, s []*wnode) []*wnode {
	if cap(s) <= bucketRetainCap {
		return s
	}
	sp := &v.spares[lvl]
	min := 0
	for i := 1; i < len(sp); i++ {
		if cap(sp[i]) < cap(sp[min]) {
			min = i
		}
	}
	if cap(s) > cap(sp[min]) {
		sp[min] = s[:0]
	}
	return nil
}

// nextLocked returns the earliest live timer, or nil. Levels are scanned
// top-down because pruning a high level can relocate entries into lower
// levels (the lazy cascade); by the time low levels are read their caches
// reflect every relocation.
func (v *Virtual) nextLocked() *wnode {
	v.initLocked()
	var best *wnode
	for l := wheelLevels - 1; l >= 0; l-- {
		c := v.cand[l]
		if c == nil {
			c = v.scanLevel(l)
			v.cand[l] = c
		}
		if c != nil && (best == nil || nodeLess(c, best)) {
			best = c
		}
	}
	if o := v.overflowPeekLocked(); o != nil && (best == nil || nodeLess(o, best)) {
		best = o
	}
	return best
}

// scanLevel finds the level's minimum live entry: the cheapest entry of
// the first occupied bucket in circular order from the cursor's digit.
// Along the way it recycles stopped nodes (lazy deletion) and relocates
// entries whose deadline digit now matches the cursor at this level into
// lower levels — the classic wheel cascade, performed lazily on access so
// each node moves at most wheelLevels times over its life.
func (v *Virtual) scanLevel(l int) *wnode {
	lev := &v.levels[l]
	start := int((v.curTick >> (uint(l) * wheelBits)) & wheelMask)
	segs := [2][2]int{{start, wheelSlots}, {0, start}}
	for _, seg := range segs {
		for i := seg[0]; ; i++ {
			i = lev.nextSet(i, seg[1])
			if i < 0 {
				break
			}
			if min := v.pruneSlot(l, i); min != nil {
				return min
			}
			// Bucket emptied by pruning; bit already cleared.
		}
	}
	return nil
}

// pruneSlot drops stopped entries, relocates entries that belong below
// level l, and returns the minimum of what remains (nil if the bucket
// emptied).
func (v *Virtual) pruneSlot(l, slot int) *wnode {
	lev := &v.levels[l]
	s := lev.slots[slot]
	var min *wnode
	for j := 0; j < len(s); {
		n := s[j]
		if n.stopped {
			s[j] = s[len(s)-1]
			s[len(s)-1] = nil
			s = s[:len(s)-1]
			v.recycleLocked(n)
			continue
		}
		if nl := levelOf(n.tick ^ v.curTick); nl < l {
			s[j] = s[len(s)-1]
			s[len(s)-1] = nil
			s = s[:len(s)-1]
			v.insertAt(n, nl)
			continue
		}
		if min == nil || nodeLess(n, min) {
			min = n
		}
		j++
	}
	if len(s) == 0 {
		lev.clearBit(slot)
		s = v.dropBucket(l, s)
	}
	lev.slots[slot] = s
	return min
}

// overflowPeekLocked returns the earliest live overflow entry, recycling
// stopped entries that have bubbled to the root.
func (v *Virtual) overflowPeekLocked() *wnode {
	for {
		n := v.overflow.peek()
		if n == nil || !n.stopped {
			return n
		}
		v.overflow.pop()
		v.recycleLocked(n)
	}
}

// removeForFireLocked detaches the (already located) global minimum from
// its container.
func (v *Virtual) removeForFireLocked(n *wnode) {
	if n.lvl == lvlOverflow {
		v.overflow.pop() // n is the pruned root
		return
	}
	lvl, slot := int(n.lvl), int(n.slot)
	lev := &v.levels[lvl]
	s := lev.slots[slot]
	for j := range s {
		if s[j] == n {
			s[j] = s[len(s)-1]
			s[len(s)-1] = nil
			lev.slots[slot] = s[:len(s)-1]
			break
		}
	}
	if s := lev.slots[slot]; len(s) == 0 {
		lev.clearBit(slot)
		lev.slots[slot] = v.dropBucket(lvl, s)
	}
	if v.cand[lvl] == n {
		v.cand[lvl] = nil
	}
}

// recycleLocked returns a node to the free list. Bumping gen invalidates
// any outstanding Stop handle.
func (v *Virtual) recycleLocked(n *wnode) {
	n.gen++
	n.f, n.fa, n.arg = nil, nil, nil
	n.lvl = lvlFree
	v.free = append(v.free, n)
}

// Advance moves the clock forward by d, firing every timer that becomes
// due, in order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	v.mu.Unlock()
	v.AdvanceTo(target)
}

// AdvanceTo moves the clock forward to instant t, firing every timer due
// at or before t in timestamp order (ties break in creation order). Timers
// scheduled by fired callbacks are honoured if they fall within the
// window.
func (v *Virtual) AdvanceTo(t time.Time) {
	tNS := t.UnixNano()
	for {
		v.mu.Lock()
		v.initLocked()
		if tNS < v.nowNS {
			v.mu.Unlock()
			return
		}
		n := v.nextLocked()
		if n == nil || n.whenNS > tNS {
			v.setNowLocked(tNS, t)
			v.mu.Unlock()
			return
		}
		v.removeForFireLocked(n)
		v.setNowLocked(n.whenNS, time.Time{})
		v.live--
		v.fired++
		f, fa, arg := n.f, n.fa, n.arg
		v.recycleLocked(n)
		v.mu.Unlock()
		if fa != nil {
			fa(arg)
		} else {
			f()
		}
	}
}

// PendingTimers reports how many timers are scheduled and not yet fired or
// stopped. O(1) — the wheel maintains a live counter.
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.live
}

// NextDeadline returns the due time of the earliest pending timer. The
// boolean result is false when no timer is pending. Amortized O(1): the
// per-level minima are cached and lazily rebuilt.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if n := v.nextLocked(); n != nil {
		return time.Unix(0, n.whenNS).UTC(), true
	}
	return time.Time{}, false
}

// HighWaterTimers implements SimClock.
func (v *Virtual) HighWaterTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.hwm
}

// FiredTimers implements SimClock.
func (v *Virtual) FiredTimers() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.fired
}

// wheelTimer is the Stop handle returned by AfterFunc. It captures the
// node's generation at schedule time so a handle kept past the fire (and
// the node's recycling) stays inert.
type wheelTimer struct {
	v   *Virtual
	n   *wnode
	gen uint32
}

func (t *wheelTimer) Stop() bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	n := t.n
	if n.gen != t.gen || n.stopped {
		return false
	}
	n.stopped = true
	t.v.live--
	if n.lvl >= 0 && t.v.cand[n.lvl] == n {
		t.v.cand[n.lvl] = nil
	}
	return true
}

// wheelOverflow is a binary min-heap ordered by (whenNS, id) holding
// timers beyond the wheel span. It is the slow path: far-future deadlines
// are rare, and entries fire straight from the heap when they become the
// global minimum.
type wheelOverflow struct {
	ns []*wnode
}

func (h *wheelOverflow) less(i, j int) bool { return nodeLess(h.ns[i], h.ns[j]) }

func (h *wheelOverflow) swap(i, j int) {
	h.ns[i], h.ns[j] = h.ns[j], h.ns[i]
	h.ns[i].hx = int32(i)
	h.ns[j].hx = int32(j)
}

func (h *wheelOverflow) push(n *wnode) {
	h.ns = append(h.ns, n)
	i := len(h.ns) - 1
	n.hx = int32(i)
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *wheelOverflow) peek() *wnode {
	if len(h.ns) == 0 {
		return nil
	}
	return h.ns[0]
}

func (h *wheelOverflow) pop() *wnode {
	n := len(h.ns)
	if n == 0 {
		return nil
	}
	top := h.ns[0]
	h.swap(0, n-1)
	h.ns[n-1] = nil
	h.ns = h.ns[:n-1]
	i, n := 0, n-1
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return top
}
