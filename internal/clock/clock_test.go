package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockNow(t *testing.T) {
	var c Real
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v, want within [%v, %v]", got, before, after)
	}
}

func TestRealClockAfterFunc(t *testing.T) {
	var c Real
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("real timer never fired")
	}
}

func TestRealClockStop(t *testing.T) {
	var c Real
	fired := make(chan struct{}, 1)
	tm := c.AfterFunc(time.Hour, func() { fired <- struct{}{} })
	if !tm.Stop() {
		t.Fatal("Stop() = false, want true for unfired timer")
	}
	select {
	case <-fired:
		t.Fatal("stopped timer fired")
	case <-time.After(10 * time.Millisecond):
	}
}

func TestVirtualNowStartsAtEpoch(t *testing.T) {
	v := NewVirtual()
	if got, want := v.Now(), time.Unix(0, 0).UTC(); !got.Equal(want) {
		t.Fatalf("NewVirtual().Now() = %v, want %v", got, want)
	}
}

func TestVirtualAdvanceMovesTime(t *testing.T) {
	v := NewVirtual()
	start := v.Now()
	v.Advance(42 * time.Second)
	if got, want := v.Now(), start.Add(42*time.Second); !got.Equal(want) {
		t.Fatalf("after Advance Now() = %v, want %v", got, want)
	}
}

func TestVirtualTimerFiresAtDeadline(t *testing.T) {
	v := NewVirtual()
	var firedAt time.Time
	v.AfterFunc(10*time.Second, func() { firedAt = v.Now() })

	v.Advance(9 * time.Second)
	if !firedAt.IsZero() {
		t.Fatal("timer fired before its deadline")
	}
	v.Advance(2 * time.Second)
	want := time.Unix(10, 0).UTC()
	if !firedAt.Equal(want) {
		t.Fatalf("timer fired at %v, want %v", firedAt, want)
	}
}

func TestVirtualTimersFireInOrder(t *testing.T) {
	v := NewVirtual()
	var order []int
	v.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	v.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	v.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	v.Advance(5 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestVirtualTiesFireInCreationOrder(t *testing.T) {
	v := NewVirtual()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		v.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	v.Advance(time.Second)
	for i, got := range order {
		if got != i {
			t.Fatalf("tie order = %v, want ascending creation order", order)
		}
	}
}

func TestVirtualStopPreventsFiring(t *testing.T) {
	v := NewVirtual()
	fired := false
	tm := v.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false, want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	v.Advance(2 * time.Second)
	if fired {
		t.Fatal("stopped virtual timer fired")
	}
}

func TestVirtualStopAfterFire(t *testing.T) {
	v := NewVirtual()
	tm := v.AfterFunc(time.Second, func() {})
	v.Advance(time.Second)
	if tm.Stop() {
		t.Fatal("Stop() after firing = true, want false")
	}
}

func TestVirtualNestedTimers(t *testing.T) {
	// A timer scheduled by a firing callback must still fire inside the
	// same Advance window if due.
	v := NewVirtual()
	var events []string
	v.AfterFunc(1*time.Second, func() {
		events = append(events, "outer")
		v.AfterFunc(1*time.Second, func() {
			events = append(events, "inner")
		})
	})
	v.Advance(3 * time.Second)
	if len(events) != 2 || events[0] != "outer" || events[1] != "inner" {
		t.Fatalf("events = %v, want [outer inner]", events)
	}
	if got, want := v.Now(), time.Unix(3, 0).UTC(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestVirtualCallbackSeesDeadlineTime(t *testing.T) {
	// When a timer fires mid-window, Now() inside the callback must be the
	// timer's deadline, not the window end.
	v := NewVirtual()
	var seen time.Time
	v.AfterFunc(2*time.Second, func() { seen = v.Now() })
	v.Advance(10 * time.Second)
	if want := time.Unix(2, 0).UTC(); !seen.Equal(want) {
		t.Fatalf("callback saw Now() = %v, want %v", seen, want)
	}
}

func TestVirtualZeroDelayFiresOnNextAdvance(t *testing.T) {
	v := NewVirtual()
	fired := false
	v.AfterFunc(0, func() { fired = true })
	v.Advance(0)
	if !fired {
		t.Fatal("zero-delay timer did not fire on Advance(0)")
	}
}

func TestVirtualNegativeDelayClamped(t *testing.T) {
	v := NewVirtual()
	fired := false
	v.AfterFunc(-time.Second, func() { fired = true })
	v.Advance(0)
	if !fired {
		t.Fatal("negative-delay timer did not fire immediately")
	}
}

func TestVirtualPendingTimers(t *testing.T) {
	v := NewVirtual()
	if got := v.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers() = %d, want 0", got)
	}
	t1 := v.AfterFunc(time.Second, func() {})
	v.AfterFunc(2*time.Second, func() {})
	if got := v.PendingTimers(); got != 2 {
		t.Fatalf("PendingTimers() = %d, want 2", got)
	}
	t1.Stop()
	if got := v.PendingTimers(); got != 1 {
		t.Fatalf("PendingTimers() after stop = %d, want 1", got)
	}
	v.Advance(3 * time.Second)
	if got := v.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers() after advance = %d, want 0", got)
	}
}

func TestVirtualNextDeadline(t *testing.T) {
	v := NewVirtual()
	if _, ok := v.NextDeadline(); ok {
		t.Fatal("NextDeadline() ok = true on empty clock")
	}
	v.AfterFunc(5*time.Second, func() {})
	v.AfterFunc(2*time.Second, func() {})
	dl, ok := v.NextDeadline()
	if !ok {
		t.Fatal("NextDeadline() ok = false, want true")
	}
	if want := time.Unix(2, 0).UTC(); !dl.Equal(want) {
		t.Fatalf("NextDeadline() = %v, want %v", dl, want)
	}
}

func TestVirtualAdvanceToPast(t *testing.T) {
	v := NewVirtual()
	v.Advance(10 * time.Second)
	v.AdvanceTo(time.Unix(5, 0).UTC()) // must be a no-op
	if got, want := v.Now(), time.Unix(10, 0).UTC(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v (AdvanceTo past must not rewind)", got, want)
	}
}

func TestVirtualConcurrentAfterFunc(t *testing.T) {
	// AfterFunc must be safe to call from multiple goroutines (components
	// schedule timers concurrently even though Advance is single-threaded).
	v := NewVirtual()
	var wg sync.WaitGroup
	var mu sync.Mutex
	count := 0
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.AfterFunc(time.Second, func() {
				mu.Lock()
				count++
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	v.Advance(2 * time.Second)
	if count != 50 {
		t.Fatalf("fired %d timers, want 50", count)
	}
}

func TestVirtualManyTimersHeapOrder(t *testing.T) {
	v := NewVirtual()
	const n = 1000
	var fired []time.Time
	// Insert in a scrambled deterministic order.
	for i := 0; i < n; i++ {
		d := time.Duration((i*7919)%n) * time.Millisecond
		v.AfterFunc(d, func() { fired = append(fired, v.Now()) })
	}
	v.Advance(time.Duration(n) * time.Millisecond)
	if len(fired) != n {
		t.Fatalf("fired %d timers, want %d", len(fired), n)
	}
	for i := 1; i < n; i++ {
		if fired[i].Before(fired[i-1]) {
			t.Fatalf("timer %d fired at %v before previous %v", i, fired[i], fired[i-1])
		}
	}
}
