package clock

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// simClockOps drives a SimClock through a deterministic random schedule —
// interleaved scheduling, stopping, nested scheduling from callbacks,
// far-future deadlines (wheel overflow), exact ties, and windowed
// advances — and returns the full fire trace. Both implementations must
// produce identical traces for identical seeds: that is the determinism
// contract the netsim campaigns rely on when swapping the heap for the
// wheel.
func simClockOps(c SimClock, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	var trace []string
	note := func(tag string, id int) func() {
		return func() {
			trace = append(trace, fmt.Sprintf("%s/%d@%d", tag, id, c.Now().UnixNano()))
		}
	}
	var handles []Timer
	id := 0
	for round := 0; round < 40; round++ {
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			id++
			d := time.Duration(rng.Int63n(int64(3 * time.Second)))
			switch rng.Intn(6) {
			case 0: // exact tie with a sibling
				c.Post(d, note("tie-a", id))
				c.Post(d, note("tie-b", id))
			case 1: // far future: exercises the wheel's overflow heap
				far := d + time.Duration(1+rng.Intn(4))*2*time.Hour
				handles = append(handles, c.AfterFunc(far, note("far", id)))
			case 2: // stoppable
				handles = append(handles, c.AfterFunc(d, note("h", id)))
			case 3: // nested scheduling from inside a callback
				nid := id
				nd := time.Duration(rng.Int63n(int64(500 * time.Millisecond)))
				c.Post(d, func() {
					trace = append(trace, fmt.Sprintf("outer/%d@%d", nid, c.Now().UnixNano()))
					c.Post(nd, note("nested", nid))
					c.Post(0, note("nested0", nid))
				})
			case 4: // PostArg path
				c.PostArg(d, func(a any) {
					trace = append(trace, fmt.Sprintf("arg/%d@%d", a.(int), c.Now().UnixNano()))
				}, id)
			default:
				c.Post(d, note("p", id))
			}
		}
		// Stop a random prefix of outstanding handles (some already fired).
		for len(handles) > 0 && rng.Intn(3) == 0 {
			h := handles[len(handles)-1]
			handles = handles[:len(handles)-1]
			trace = append(trace, fmt.Sprintf("stop=%v", h.Stop()))
		}
		if dl, ok := c.NextDeadline(); ok {
			trace = append(trace, fmt.Sprintf("next@%d pending=%d", dl.UnixNano(), c.PendingTimers()))
		}
		c.Advance(time.Duration(rng.Int63n(int64(2 * time.Second))))
		trace = append(trace, fmt.Sprintf("now@%d pending=%d", c.Now().UnixNano(), c.PendingTimers()))
	}
	// Drain what remains (including overflow residents) far into the future.
	c.Advance(13 * time.Hour)
	trace = append(trace, fmt.Sprintf("end@%d pending=%d fired=%d", c.Now().UnixNano(), c.PendingTimers(), c.FiredTimers()))
	return trace
}

// TestWheelMatchesHeapOracle is the determinism property test: for many
// seeds, the wheel-backed Virtual and the heap-backed VirtualHeap oracle
// must produce byte-identical event traces, deadline reports, and pending
// counts.
func TestWheelMatchesHeapOracle(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		wheel := simClockOps(NewVirtual(), seed)
		heap := simClockOps(NewVirtualHeap(), seed)
		if len(wheel) != len(heap) {
			t.Fatalf("seed %d: trace lengths differ: wheel %d vs heap %d", seed, len(wheel), len(heap))
		}
		for i := range wheel {
			if wheel[i] != heap[i] {
				t.Fatalf("seed %d: traces diverge at entry %d:\n  wheel: %s\n  heap:  %s", seed, i, wheel[i], heap[i])
			}
		}
	}
}

// TestWheelOverflowFarFuture pins the overflow slow path: a deadline
// beyond the wheel span must fire at its exact instant and in id order
// against near timers.
func TestWheelOverflowFarFuture(t *testing.T) {
	v := NewVirtual()
	var order []string
	v.Post(90*time.Minute, func() { order = append(order, "far") }) // beyond the ~73 min span
	v.Post(time.Second, func() { order = append(order, "near") })
	v.Advance(time.Hour)
	if len(order) != 1 || order[0] != "near" {
		t.Fatalf("after 1h order = %v, want [near]", order)
	}
	v.Advance(time.Hour)
	if len(order) != 2 || order[1] != "far" {
		t.Fatalf("after 2h order = %v, want [near far]", order)
	}
	if got, want := v.Now(), time.Unix(0, 0).UTC().Add(2*time.Hour); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

// TestWheelOverflowStop covers lazy deletion inside the overflow heap.
func TestWheelOverflowStop(t *testing.T) {
	v := NewVirtual()
	fired := false
	tm := v.AfterFunc(100*time.Hour, func() { fired = true })
	if v.PendingTimers() != 1 {
		t.Fatalf("PendingTimers() = %d, want 1", v.PendingTimers())
	}
	if !tm.Stop() {
		t.Fatal("Stop() = false, want true")
	}
	if v.PendingTimers() != 0 {
		t.Fatalf("PendingTimers() after stop = %d, want 0", v.PendingTimers())
	}
	if _, ok := v.NextDeadline(); ok {
		t.Fatal("NextDeadline() ok = true after stopping the only timer")
	}
	v.Advance(200 * time.Hour)
	if fired {
		t.Fatal("stopped overflow timer fired")
	}
}

// TestWheelNodeRecyclingHandleSafety pins the generation check: a Stop
// handle kept past the fire must stay inert even after its node has been
// recycled into a new timer.
func TestWheelNodeRecyclingHandleSafety(t *testing.T) {
	v := NewVirtual()
	h1 := v.AfterFunc(time.Second, func() {})
	v.Advance(2 * time.Second) // fires and recycles the node
	fired2 := false
	h2 := v.AfterFunc(time.Second, func() { fired2 = true }) // reuses the node
	if h1.Stop() {
		t.Fatal("stale handle Stop() = true; must not cancel the recycled node's new timer")
	}
	v.Advance(2 * time.Second)
	if !fired2 {
		t.Fatal("second timer did not fire — cancelled through a stale handle")
	}
	if h2.Stop() {
		t.Fatal("Stop() after fire = true, want false")
	}
}

// TestWheelPostAllocFree verifies the pooled hot path: once the free list
// is warm, a Post→fire cycle performs no heap allocation.
func TestWheelPostAllocFree(t *testing.T) {
	v := NewVirtual()
	f := func() {}
	// Warm the node pool.
	for i := 0; i < 100; i++ {
		v.Post(time.Millisecond, f)
	}
	v.Advance(time.Second)
	allocs := testing.AllocsPerRun(1000, func() {
		v.Post(time.Millisecond, f)
		v.Advance(time.Millisecond)
	})
	if allocs > 0.1 {
		t.Fatalf("warm Post→fire cycle allocates %.2f objects/op, want 0", allocs)
	}
}

// TestWheelCounters covers the campaign metrics surface.
func TestWheelCounters(t *testing.T) {
	for _, c := range []SimClock{NewVirtual(), NewVirtualHeap()} {
		for i := 0; i < 10; i++ {
			c.Post(time.Duration(i)*time.Millisecond, func() {})
		}
		if got := c.HighWaterTimers(); got != 10 {
			t.Fatalf("%T: HighWaterTimers() = %d, want 10", c, got)
		}
		c.Advance(time.Second)
		if got := c.FiredTimers(); got != 10 {
			t.Fatalf("%T: FiredTimers() = %d, want 10", c, got)
		}
		if got := c.HighWaterTimers(); got != 10 {
			t.Fatalf("%T: HighWaterTimers() after drain = %d, want 10", c, got)
		}
		if got := c.PendingTimers(); got != 0 {
			t.Fatalf("%T: PendingTimers() = %d, want 0", c, got)
		}
	}
}

// TestWheelManyTimersSpread stresses bucket relocation (the lazy cascade):
// timers spread across all wheel levels must fire in exact global order.
func TestWheelManyTimersSpread(t *testing.T) {
	v := NewVirtual()
	const n = 5000
	var fired []time.Time
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		// Mix sub-tick, level-0..3, and overflow deadlines.
		var d time.Duration
		switch i % 5 {
		case 0:
			d = time.Duration(rng.Int63n(int64(time.Microsecond)))
		case 1:
			d = time.Duration(rng.Int63n(int64(200 * time.Microsecond)))
		case 2:
			d = time.Duration(rng.Int63n(int64(50 * time.Millisecond)))
		case 3:
			d = time.Duration(rng.Int63n(int64(10 * time.Second)))
		default:
			d = time.Duration(rng.Int63n(int64(3 * time.Hour)))
		}
		v.Post(d, func() { fired = append(fired, v.Now()) })
	}
	v.Advance(4 * time.Hour)
	if len(fired) != n {
		t.Fatalf("fired %d timers, want %d", len(fired), n)
	}
	for i := 1; i < n; i++ {
		if fired[i].Before(fired[i-1]) {
			t.Fatalf("timer %d fired at %v before previous %v", i, fired[i], fired[i-1])
		}
	}
	if got := v.HighWaterTimers(); got != n {
		t.Fatalf("HighWaterTimers() = %d, want %d", got, n)
	}
}

// BenchmarkClockPending measures the event core alone: schedule→fire
// churn with `pending` timers resident, the regime a 10⁵-endpoint
// campaign puts the clock in. The heap pays O(log n) sift cost plus a
// node allocation per event; the wheel buckets in O(1) from its pool.
func BenchmarkClockPending(b *testing.B) {
	for _, impl := range []struct {
		name string
		mk   func() SimClock
	}{
		{"wheel", func() SimClock { return NewVirtual() }},
		{"heap", func() SimClock { return NewVirtualHeap() }},
	} {
		for _, pending := range []int{1000, 100000} {
			b.Run(fmt.Sprintf("%s/pending=%d", impl.name, pending), func(b *testing.B) {
				c := impl.mk()
				f := func() {}
				// Resident long-lived timers (heartbeats of idle endpoints).
				for i := 0; i < pending; i++ {
					c.Post(time.Hour+time.Duration(i)*time.Microsecond, f)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Post(50*time.Microsecond, f)
					c.Advance(time.Microsecond)
				}
			})
		}
	}
}
