package clock

import (
	"sync"
	"sync/atomic"
	"time"
)

// VirtualHeap is the original binary-heap virtual clock, kept for two
// jobs: it is the oracle the timer wheel's determinism property tests
// compare against (both fire in exact (deadline, creation-id) order), and
// it is the "binary-heap baseline" leg of the event-core A/B benchmark
// (make sim-campaign). Its only changes since it was the production
// implementation are the removal of the O(n) scans NextDeadline and
// PendingTimers used to do: a stopped-entry counter makes PendingTimers
// O(1), and NextDeadline lazily pops stopped entries off the heap root
// instead of scanning, keeping the oracle honest in A/B runs — the wheel
// must beat a *fast* heap, not a strawman.
type VirtualHeap struct {
	mu       sync.Mutex
	now      time.Time
	nowCheap atomic.Int64 // UnixNano mirror of now for the lock-free NowNanos
	nextID   int64
	timers   timerHeap
	stopped  int // stopped-but-not-yet-popped entries still in the heap
	hwm      int
	fired    uint64
}

var _ Clock = (*VirtualHeap)(nil)
var _ SimClock = (*VirtualHeap)(nil)

// NewVirtualHeap returns a heap-backed virtual clock positioned at the
// same fixed epoch as NewVirtual.
func NewVirtualHeap() *VirtualHeap {
	return &VirtualHeap{now: time.Unix(0, 0).UTC()}
}

// Now implements Clock.
func (v *VirtualHeap) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// NowNanos implements SimClock. Like the wheel's, it reads an atomic
// mirror maintained under the lock, so the baseline pays the same (zero)
// per-read locking cost in A/B runs — the benchmark compares timer data
// structures, not incidental lock traffic.
func (v *VirtualHeap) NowNanos() int64 { return v.nowCheap.Load() }

// AfterFunc implements Clock. The callback runs during a future Advance
// call, on the goroutine calling Advance.
func (v *VirtualHeap) AfterFunc(d time.Duration, f func()) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.scheduleLocked(d, f, nil, nil)
}

// Post implements SimClock. The heap baseline does not pool nodes — that
// per-event allocation is part of what the wheel's pooled fast path is
// measured against.
func (v *VirtualHeap) Post(d time.Duration, f func()) {
	v.mu.Lock()
	v.scheduleLocked(d, f, nil, nil)
	v.mu.Unlock()
}

// PostArg implements SimClock.
func (v *VirtualHeap) PostArg(d time.Duration, f func(any), arg any) {
	v.mu.Lock()
	v.scheduleLocked(d, nil, f, arg)
	v.mu.Unlock()
}

func (v *VirtualHeap) scheduleLocked(d time.Duration, f func(), fa func(any), arg any) *virtualTimer {
	if d < 0 {
		d = 0
	}
	v.nextID++
	vt := &virtualTimer{
		clock: v,
		id:    v.nextID,
		when:  v.now.Add(d),
		f:     f,
		fa:    fa,
		arg:   arg,
	}
	v.timers.push(vt)
	if live := len(v.timers) - v.stopped; live > v.hwm {
		v.hwm = live
	}
	return vt
}

// Advance moves the clock forward by d, firing every timer that becomes
// due, in order.
func (v *VirtualHeap) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	v.mu.Unlock()
	v.AdvanceTo(target)
}

// AdvanceTo moves the clock forward to instant t, firing every timer due at
// or before t in timestamp order (ties break in creation order). Timers
// scheduled by fired callbacks are honoured if they fall within the window.
func (v *VirtualHeap) AdvanceTo(t time.Time) {
	for {
		v.mu.Lock()
		if t.Before(v.now) {
			v.mu.Unlock()
			return
		}
		vt := v.timers.peek()
		if vt == nil || vt.when.After(t) {
			v.now = t
			v.nowCheap.Store(t.UnixNano())
			v.mu.Unlock()
			return
		}
		v.timers.pop()
		if vt.stopped {
			v.stopped--
			v.mu.Unlock()
			continue
		}
		v.now = vt.when
		v.nowCheap.Store(vt.when.UnixNano())
		vt.fired = true
		v.fired++
		v.mu.Unlock()
		if vt.fa != nil {
			vt.fa(vt.arg)
		} else {
			vt.f()
		}
	}
}

// PendingTimers reports how many timers are scheduled and not yet fired or
// stopped. O(1): fired timers are popped eagerly and stopped ones are
// counted as they accumulate.
func (v *VirtualHeap) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.timers) - v.stopped
}

// NextDeadline returns the due time of the earliest pending timer. The
// boolean result is false when no timer is pending. Stopped entries
// lingering at the root are popped here (amortized against their Stop),
// so the reported deadline is always a live timer's.
func (v *VirtualHeap) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for {
		vt := v.timers.peek()
		if vt == nil {
			return time.Time{}, false
		}
		if !vt.stopped {
			return vt.when, true
		}
		v.timers.pop()
		v.stopped--
	}
}

// HighWaterTimers implements SimClock.
func (v *VirtualHeap) HighWaterTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.hwm
}

// FiredTimers implements SimClock.
func (v *VirtualHeap) FiredTimers() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.fired
}

type virtualTimer struct {
	clock   *VirtualHeap
	id      int64
	when    time.Time
	f       func()
	fa      func(any)
	arg     any
	stopped bool
	fired   bool
	index   int
}

func (t *virtualTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	t.clock.stopped++
	return true
}

// timerHeap is a binary min-heap ordered by (when, id).
type timerHeap []*virtualTimer

func (h timerHeap) less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].id < h[j].id
}

func (h *timerHeap) push(t *virtualTimer) {
	*h = append(*h, t)
	i := len(*h) - 1
	(*h)[i].index = i
	h.up(i)
}

func (h timerHeap) peek() *virtualTimer {
	if len(h) == 0 {
		return nil
	}
	return h[0]
}

func (h *timerHeap) pop() *virtualTimer {
	old := *h
	n := len(old)
	if n == 0 {
		return nil
	}
	top := old[0]
	old[0] = old[n-1]
	old[0].index = 0
	old[n-1] = nil
	*h = old[:n-1]
	if len(*h) > 0 {
		h.down(0)
	}
	return top
}

func (h timerHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h timerHeap) down(i int) {
	n := len(h)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(left, smallest) {
			smallest = left
		}
		if right < n && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h timerHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
