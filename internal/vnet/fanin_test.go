//kmlint:ignore-file simdet this file deliberately crosses the sim boundary: it validates fan-in ordering against real OS sockets and wall-clock pacing

package vnet

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

// TestVNodeFaninAcrossDecodeStage audits the vnet layer against the
// parallel receive path: M sender hosts fan in to one receiver whose
// decode stage runs several workers behind a tight inflight bound, and
// whose two vnodes share every inbound connection's decode lane (the
// lane key is the origin socket, not the vnode ID). Each (sender, vnode)
// stream must arrive in submission order even while frames from
// different senders decode concurrently. Run under -race in CI.
func TestVNodeFaninAcrossDecodeStage(t *testing.T) {
	const (
		senders  = 3
		perVNode = 80
	)
	reg := core.NewRegistry()
	if err := Register(reg); err != nil {
		t.Fatal(err)
	}

	mkNet := func(port int, cfg core.NetworkConfig) (*core.Network, *kompics.System) {
		cfg.Self = core.MustParseAddress(fmt.Sprintf("127.0.0.1:%d", port))
		cfg.Registry = reg
		netDef, err := core.NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys := kompics.NewSystem()
		t.Cleanup(sys.Shutdown)
		netComp := sys.Create(netDef)
		sys.Start(netComp)
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) && netDef.Addr(core.TCP) == "" {
			time.Sleep(time.Millisecond)
		}
		if netDef.Addr(core.TCP) == "" {
			t.Fatal("listeners did not come up")
		}
		return netDef, sys
	}

	recvPort := freeTestPort(t)
	recvNet, recvSys := mkNet(recvPort, core.NetworkConfig{
		DecodeWorkers:  4,
		DecodeInflight: 8,
	})
	vA, vB := &vnodeApp{}, &vnodeApp{}
	aComp, bComp := recvSys.Create(vA), recvSys.Create(vB)
	kompics.MustConnect(recvNet.Port(), vA.port,
		kompics.WithIndicationSelector(Selector([]byte("a"))))
	kompics.MustConnect(recvNet.Port(), vB.port,
		kompics.WithIndicationSelector(Selector([]byte("b"))))
	recvSys.Start(aComp)
	recvSys.Start(bComp)
	recvHost := core.MustParseAddress(fmt.Sprintf("127.0.0.1:%d", recvPort))

	srcs := make([]core.BasicAddress, senders)
	for i := 0; i < senders; i++ {
		port := freeTestPort(t)
		sendNet, sendSys := mkNet(port, core.NetworkConfig{CodecWorkers: 2})
		app := &vnodeApp{}
		comp := sendSys.Create(app)
		kompics.MustConnect(sendNet.Port(), app.port)
		sendSys.Start(comp)
		src := core.MustParseAddress(fmt.Sprintf("127.0.0.1:%d", port))
		srcs[i] = src

		go func(app *vnodeApp, src core.BasicAddress) {
			for seq := uint32(0); seq < perVNode; seq++ {
				for _, id := range []string{"a", "b"} {
					payload := make([]byte, 64)
					binary.BigEndian.PutUint32(payload, seq)
					app.comp.SelfTrigger(vnodeSend{e: &Msg{
						Src:     NewAddress(src, nil),
						Dst:     NewAddress(recvHost, []byte(id)),
						Proto:   core.TCP,
						Payload: payload,
					}})
				}
			}
		}(app, src)
	}

	total := senders * perVNode
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && (vA.count() < total || vB.count() < total) {
		time.Sleep(2 * time.Millisecond)
	}
	for name, app := range map[string]*vnodeApp{"a": vA, "b": vB} {
		app.mu.Lock()
		got := append([]*Msg(nil), app.received...)
		app.mu.Unlock()
		if len(got) != total {
			t.Fatalf("vnode %s received %d of %d messages", name, len(got), total)
		}
		bySender := make(map[string][]uint32)
		for _, m := range got {
			key := m.Src.AsSocket()
			bySender[key] = append(bySender[key], binary.BigEndian.Uint32(m.Payload))
		}
		if len(bySender) != senders {
			t.Fatalf("vnode %s saw %d senders, want %d", name, len(bySender), senders)
		}
		for src, seqs := range bySender {
			if len(seqs) != perVNode {
				t.Fatalf("vnode %s sender %s: %d of %d messages", name, src, len(seqs), perVNode)
			}
			for j, s := range seqs {
				if s != uint32(j) {
					t.Fatalf("vnode %s sender %s position %d: got seq %d, want %d — per-(sender, vnode) order violated across decode stage", name, src, j, s, j)
				}
			}
		}
	}
}
