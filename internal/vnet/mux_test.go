package vnet

import "testing"

func TestHostMuxDispatch(t *testing.T) {
	var got []uint64
	var fellBack []uint64
	m := NewHostMux(func(v uint64, _ any) { fellBack = append(fellBack, v) })
	m.Bind(7, func(v uint64, msg any) {
		if msg != "hello" {
			t.Fatalf("handler got %v, want hello", msg)
		}
		got = append(got, v)
	})
	if !m.Bound(7) || m.Bound(8) {
		t.Fatalf("Bound() wrong: 7=%v 8=%v", m.Bound(7), m.Bound(8))
	}
	if !m.Dispatch(7, "hello") {
		t.Fatal("Dispatch(7) = false, want true")
	}
	if m.Dispatch(8, "stray") {
		t.Fatal("Dispatch(8) = true for unbound vnode")
	}
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("handler calls = %v, want [7]", got)
	}
	if len(fellBack) != 1 || fellBack[0] != 8 {
		t.Fatalf("fallback calls = %v, want [8]", fellBack)
	}
}

func TestHostMuxUnbindAndNilFallback(t *testing.T) {
	m := NewHostMux(nil)
	calls := 0
	m.Bind(1, func(uint64, any) { calls++ })
	if m.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", m.Len())
	}
	m.Dispatch(1, nil)
	m.Unbind(1)
	if m.Dispatch(1, nil) { // dropped silently, no panic with nil fallback
		t.Fatal("Dispatch after Unbind = true")
	}
	if calls != 1 || m.Len() != 0 {
		t.Fatalf("calls = %d Len = %d, want 1 and 0", calls, m.Len())
	}
}

func TestDenseHostMux(t *testing.T) {
	const hosts = 4
	var got, dead []uint64
	// Host 1 of 4: owns ids 1, 5, 9, … with slot id/hosts.
	m := NewDenseHostMux(3, func(v uint64) int { return int(v / hosts) },
		func(v uint64, _ any) { dead = append(dead, v) })
	h := func(v uint64, _ any) { got = append(got, v) }
	m.Bind(1, h)
	m.Bind(5, h)
	if m.Len() != 2 || !m.Bound(5) || m.Bound(9) {
		t.Fatalf("Len=%d Bound(5)=%v Bound(9)=%v", m.Len(), m.Bound(5), m.Bound(9))
	}
	if !m.Dispatch(5, nil) || m.Dispatch(9, nil) {
		t.Fatal("Dispatch bound/unbound mismatch")
	}
	if m.Dispatch(13, nil) { // slot 3: out of range, falls back
		t.Fatal("out-of-range Dispatch = true")
	}
	m.Unbind(5)
	m.Unbind(5) // idempotent
	if m.Len() != 1 || m.Dispatch(5, nil) {
		t.Fatalf("after Unbind: Len=%d Bound(5)=%v", m.Len(), m.Bound(5))
	}
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("handler calls = %v, want [5]", got)
	}
	if len(dead) != 3 || dead[0] != 9 || dead[1] != 13 || dead[2] != 5 {
		t.Fatalf("fallback calls = %v, want [9 13 5]", dead)
	}
}

func TestHostMuxRebindReplaces(t *testing.T) {
	m := NewHostMux(nil)
	which := 0
	m.Bind(3, func(uint64, any) { which = 1 })
	m.Bind(3, func(uint64, any) { which = 2 })
	m.Dispatch(3, nil)
	if which != 2 {
		t.Fatalf("dispatched to handler %d, want 2", which)
	}
}
