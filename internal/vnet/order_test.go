//kmlint:ignore-file simdet this file deliberately crosses the sim boundary: it validates ordering against real OS sockets and wall-clock pacing

package vnet

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

// TestVNodeOrderAcrossCodecStage audits the vnet layer against the
// parallel send path: two vnodes behind one remote endpoint share a codec
// lane (the lane key is the host socket, not the vnode ID), so interleaved
// traffic to both vnodes must arrive in per-vnode submission order even
// while encode runs on multiple workers. Run under -race in CI.
func TestVNodeOrderAcrossCodecStage(t *testing.T) {
	const perVNode = 120
	reg := core.NewRegistry()
	if err := Register(reg); err != nil {
		t.Fatal(err)
	}

	mkNet := func(port int, workers int) (*core.Network, *kompics.System) {
		self := core.MustParseAddress(fmt.Sprintf("127.0.0.1:%d", port))
		netDef, err := core.NewNetwork(core.NetworkConfig{
			Self:         self,
			Registry:     reg,
			CodecWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		sys := kompics.NewSystem()
		t.Cleanup(sys.Shutdown)
		netComp := sys.Create(netDef)
		sys.Start(netComp)
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) && netDef.Addr(core.TCP) == "" {
			time.Sleep(time.Millisecond)
		}
		if netDef.Addr(core.TCP) == "" {
			t.Fatal("listeners did not come up")
		}
		return netDef, sys
	}

	sendPort, recvPort := freeTestPort(t), freeTestPort(t)
	sendNet, sendSys := mkNet(sendPort, 4)
	recvNet, recvSys := mkNet(recvPort, 1)

	sender := &vnodeApp{}
	sendComp := sendSys.Create(sender)
	kompics.MustConnect(sendNet.Port(), sender.port)
	sendSys.Start(sendComp)

	vA, vB := &vnodeApp{}, &vnodeApp{}
	aComp, bComp := recvSys.Create(vA), recvSys.Create(vB)
	kompics.MustConnect(recvNet.Port(), vA.port,
		kompics.WithIndicationSelector(Selector([]byte("a"))))
	kompics.MustConnect(recvNet.Port(), vB.port,
		kompics.WithIndicationSelector(Selector([]byte("b"))))
	recvSys.Start(aComp)
	recvSys.Start(bComp)

	src := core.MustParseAddress(fmt.Sprintf("127.0.0.1:%d", sendPort))
	recvHost := core.MustParseAddress(fmt.Sprintf("127.0.0.1:%d", recvPort))
	for seq := uint32(0); seq < perVNode; seq++ {
		for _, id := range []string{"a", "b"} {
			payload := make([]byte, 16)
			binary.BigEndian.PutUint32(payload, seq)
			sender.comp.SelfTrigger(vnodeSend{e: &Msg{
				Src:     NewAddress(src, nil),
				Dst:     NewAddress(recvHost, []byte(id)),
				Proto:   core.TCP,
				Payload: payload,
			}})
		}
	}

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && (vA.count() < perVNode || vB.count() < perVNode) {
		time.Sleep(2 * time.Millisecond)
	}
	for name, app := range map[string]*vnodeApp{"a": vA, "b": vB} {
		app.mu.Lock()
		got := append([]*Msg(nil), app.received...)
		app.mu.Unlock()
		if len(got) != perVNode {
			t.Fatalf("vnode %s received %d of %d messages", name, len(got), perVNode)
		}
		for j, m := range got {
			if s := binary.BigEndian.Uint32(m.Payload); s != uint32(j) {
				t.Fatalf("vnode %s position %d: got seq %d, want %d — per-vnode order violated", name, j, s, j)
			}
		}
	}
}
