// Package vnet implements virtual nodes (§III-B): multiple addressable
// Kompics subtrees ("vnodes") behind one network endpoint. A vnode address
// is a host address plus an opaque identifier; messages between vnodes on
// the same host are reflected by the network component without
// serialisation, and a VirtualNetworkChannel — realised here as channel
// selectors — delivers each message only to its destination vnode.
package vnet

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"io"
	"net"

	"github.com/kompics/kompicsmessaging-go/internal/codec"
	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

// Identified is implemented by addresses carrying a vnode identifier.
type Identified interface {
	core.Address
	// VNodeID returns the vnode identifier; empty means "the host
	// itself".
	VNodeID() []byte
}

// Address is a host endpoint plus a vnode identifier. It satisfies
// core.Address; SameHostAs deliberately ignores the ID, which is what
// makes the network component reflect intra-host vnode traffic locally.
type Address struct {
	// Host is the underlying network endpoint.
	Host core.BasicAddress
	// ID identifies the vnode within the host.
	ID []byte
}

var _ Identified = Address{}

// NewAddress builds a vnode address. The id slice is copied.
func NewAddress(host core.BasicAddress, id []byte) Address {
	dup := make([]byte, len(id))
	copy(dup, id)
	return Address{Host: host, ID: dup}
}

// IP implements core.Address.
func (a Address) IP() net.IP { return a.Host.IP() }

// Port implements core.Address.
func (a Address) Port() int { return a.Host.Port() }

// AsSocket implements core.Address.
func (a Address) AsSocket() string { return a.Host.AsSocket() }

// SameHostAs implements core.Address (host comparison only).
func (a Address) SameHostAs(other core.Address) bool { return a.Host.SameHostAs(other) }

// VNodeID implements Identified.
func (a Address) VNodeID() []byte { return a.ID }

// SameVNodeAs reports whether other denotes the same vnode on the same
// host.
func (a Address) SameVNodeAs(other Identified) bool {
	return a.SameHostAs(other) && bytes.Equal(a.ID, other.VNodeID())
}

// String implements fmt.Stringer.
func (a Address) String() string {
	if len(a.ID) == 0 {
		return a.Host.String()
	}
	return fmt.Sprintf("%s/%s", a.Host, hex.EncodeToString(a.ID))
}

// Msg is a payload message between vnodes. It implements core.Msg and the
// DATA interceptor's ProtocolReplaceable contract.
type Msg struct {
	Src, Dst Address
	Proto    core.Transport
	Payload  []byte
}

var _ core.Msg = &Msg{}

// Header implements core.Msg.
func (m *Msg) Header() core.Header { return header{m: m} }

// Size returns the payload length.
func (m *Msg) Size() int { return len(m.Payload) }

// WithWireProtocol implements data.ProtocolReplaceable.
func (m *Msg) WithWireProtocol(t core.Transport) core.Msg {
	return &Msg{Src: m.Src, Dst: m.Dst, Proto: t, Payload: m.Payload}
}

// header is the Header view of a Msg.
type header struct{ m *Msg }

var _ core.Header = header{}

func (h header) Source() core.Address      { return h.m.Src }
func (h header) Destination() core.Address { return h.m.Dst }
func (h header) Protocol() core.Transport  { return h.m.Proto }

// SerializerID is the wire identifier of the vnet message serialiser
// (within the middleware-reserved range).
const SerializerID codec.SerializerID = 2

// MsgSerializer is the wire codec for vnet messages.
type MsgSerializer struct{}

var _ codec.Serializer = MsgSerializer{}

// ID implements codec.Serializer.
func (MsgSerializer) ID() codec.SerializerID { return SerializerID }

// Serialize implements codec.Serializer.
func (MsgSerializer) Serialize(w io.Writer, v interface{}) error {
	m, ok := v.(*Msg)
	if !ok {
		return fmt.Errorf("vnet: MsgSerializer cannot encode %T", v)
	}
	if err := writeAddress(w, m.Src); err != nil {
		return err
	}
	if err := writeAddress(w, m.Dst); err != nil {
		return err
	}
	if err := codec.WriteUvarint(w, uint64(m.Proto)); err != nil {
		return err
	}
	return codec.WriteBytes(w, m.Payload)
}

// Deserialize implements codec.Serializer.
func (MsgSerializer) Deserialize(r io.Reader) (interface{}, error) {
	src, err := readAddress(r)
	if err != nil {
		return nil, err
	}
	dst, err := readAddress(r)
	if err != nil {
		return nil, err
	}
	proto, err := codec.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	t := core.Transport(proto)
	if !t.Valid() {
		return nil, fmt.Errorf("vnet: invalid transport %d on wire", proto)
	}
	payload, err := codec.ReadBytes(r)
	if err != nil {
		return nil, err
	}
	return &Msg{Src: src, Dst: dst, Proto: t, Payload: payload}, nil
}

func writeAddress(w io.Writer, a Address) error {
	if err := core.WriteAddress(w, a.Host); err != nil {
		return err
	}
	return codec.WriteBytes(w, a.ID)
}

func readAddress(r io.Reader) (Address, error) {
	host, err := core.ReadAddress(r)
	if err != nil {
		return Address{}, err
	}
	id, err := codec.ReadBytes(r)
	if err != nil {
		return Address{}, err
	}
	return Address{Host: host, ID: id}, nil
}

// Register adds the vnet serialisers to a registry (call once per
// registry at setup).
func Register(reg *codec.Registry) error {
	return reg.Register(MsgSerializer{}, (*Msg)(nil))
}

// Selector returns a channel selector passing network indications
// addressed to the vnode id — the VirtualNetworkChannel of the paper.
// Notification responses always pass (they carry no destination).
func Selector(id []byte) kompics.ChannelSelector {
	dup := make([]byte, len(id))
	copy(dup, id)
	return func(e kompics.Event) bool {
		msg, ok := e.(core.Msg)
		if !ok {
			return true // NotifyResp and friends pass through
		}
		ident, ok := msg.Header().Destination().(Identified)
		if !ok {
			return false // plain host traffic is not for a vnode
		}
		return bytes.Equal(ident.VNodeID(), dup)
	}
}

// HostSelector passes network indications that are NOT addressed to any
// vnode — the default channel for plain host traffic.
func HostSelector() kompics.ChannelSelector {
	return func(e kompics.Event) bool {
		msg, ok := e.(core.Msg)
		if !ok {
			return true
		}
		ident, ok := msg.Header().Destination().(Identified)
		return !ok || len(ident.VNodeID()) == 0
	}
}
