package vnet

// HostMux multiplexes many logical vnodes onto one host endpoint, keyed by
// a dense uint64 vnode identifier. It is the campaign-scale counterpart of
// the byte-slice Selector machinery: where vnet.Address carries opaque
// []byte IDs through the real channel-selector path, a simulated host
// carrying thousands of vnodes needs an O(1) integer-keyed dispatch table
// with no per-message allocation. The netsim campaigns bind ~10³ vnodes
// per simulated host to reach 10⁶ logical endpoints on 10³ hosts.
//
// HostMux is not safe for concurrent use; campaign code confines each mux
// to the simulation goroutine.
type HostMux struct {
	handlers map[uint64]func(vnode uint64, msg any)
	fallback func(vnode uint64, msg any)
}

// NewHostMux returns an empty mux. Messages for unbound vnodes go to the
// fallback handler; a nil fallback silently drops them (the same fate an
// unmatched channel-selector message meets).
func NewHostMux(fallback func(vnode uint64, msg any)) *HostMux {
	return &HostMux{
		handlers: make(map[uint64]func(vnode uint64, msg any)),
		fallback: fallback,
	}
}

// Bind installs the handler for a vnode id, replacing any previous one.
func (m *HostMux) Bind(vnode uint64, h func(vnode uint64, msg any)) {
	m.handlers[vnode] = h
}

// Unbind removes the binding for a vnode id. Subsequent messages for it
// fall back like any other unbound id.
func (m *HostMux) Unbind(vnode uint64) {
	delete(m.handlers, vnode)
}

// Bound reports whether a handler is bound for the vnode id.
func (m *HostMux) Bound(vnode uint64) bool {
	_, ok := m.handlers[vnode]
	return ok
}

// Len reports the number of bound vnodes.
func (m *HostMux) Len() int { return len(m.handlers) }

// Dispatch routes msg to the handler bound for vnode, or to the fallback.
// It reports whether a bound handler received the message.
func (m *HostMux) Dispatch(vnode uint64, msg any) bool {
	if h, ok := m.handlers[vnode]; ok {
		h(vnode, msg)
		return true
	}
	if m.fallback != nil {
		m.fallback(vnode, msg)
	}
	return false
}

// DenseHostMux is HostMux for the common campaign case where every vnode
// id on a host maps to a small dense slot range (ids are assigned
// round-robin across hosts, so host h carries ids h, h+H, h+2H, … and
// id/H is a perfect dense index). A slice lookup replaces the hash map:
// at millions of dispatches per second across ~10³ host muxes the map's
// hashing and cold-bucket probes were the single largest delivery cost.
type DenseHostMux struct {
	index    func(vnode uint64) int
	slots    []func(vnode uint64, msg any)
	bound    int
	fallback func(vnode uint64, msg any)
}

// NewDenseHostMux builds a dense mux with the given slot count. index
// maps a vnode id to its slot and must return a stable value in [0,
// slots) for every id the host owns; out-of-range results fall back.
func NewDenseHostMux(slots int, index func(vnode uint64) int, fallback func(vnode uint64, msg any)) *DenseHostMux {
	return &DenseHostMux{
		index:    index,
		slots:    make([]func(vnode uint64, msg any), slots),
		fallback: fallback,
	}
}

// Bind installs the handler for a vnode id.
func (m *DenseHostMux) Bind(vnode uint64, h func(vnode uint64, msg any)) {
	i := m.index(vnode)
	if m.slots[i] == nil {
		m.bound++
	}
	m.slots[i] = h
}

// Unbind removes the binding for a vnode id.
func (m *DenseHostMux) Unbind(vnode uint64) {
	if i := m.index(vnode); m.slots[i] != nil {
		m.slots[i] = nil
		m.bound--
	}
}

// Bound reports whether a handler is bound for the vnode id.
func (m *DenseHostMux) Bound(vnode uint64) bool {
	i := m.index(vnode)
	return i >= 0 && i < len(m.slots) && m.slots[i] != nil
}

// Len reports the number of bound vnodes.
func (m *DenseHostMux) Len() int { return m.bound }

// Dispatch routes msg to the handler in the vnode's slot, or to the
// fallback. It reports whether a bound handler received the message.
func (m *DenseHostMux) Dispatch(vnode uint64, msg any) bool {
	if i := m.index(vnode); i >= 0 && i < len(m.slots) {
		if h := m.slots[i]; h != nil {
			h(vnode, msg)
			return true
		}
	}
	if m.fallback != nil {
		m.fallback(vnode, msg)
	}
	return false
}
