//kmlint:ignore-file simdet this file deliberately crosses the sim boundary: it validates vnet against real OS sockets and wall-clock pacing

package vnet

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

func hostAddr(s string) core.BasicAddress { return core.MustParseAddress(s) }

func TestAddressSemantics(t *testing.T) {
	h1 := hostAddr("10.0.0.1:100")
	a := NewAddress(h1, []byte("vnode-a"))
	b := NewAddress(h1, []byte("vnode-b"))
	other := NewAddress(hostAddr("10.0.0.2:100"), []byte("vnode-a"))

	if !a.SameHostAs(b) {
		t.Fatal("vnodes on one host must be SameHostAs")
	}
	if a.SameVNodeAs(b) {
		t.Fatal("different vnodes considered equal")
	}
	if !a.SameVNodeAs(NewAddress(h1, []byte("vnode-a"))) {
		t.Fatal("identical vnode not equal")
	}
	if a.SameVNodeAs(other) {
		t.Fatal("same id on another host considered equal")
	}
	if a.Port() != 100 || !a.IP().Equal(net.IPv4(10, 0, 0, 1)) {
		t.Fatal("address delegation broken")
	}
	if a.AsSocket() != "10.0.0.1:100" {
		t.Fatalf("AsSocket = %q", a.AsSocket())
	}
	if a.String() == "" || NewAddress(h1, nil).String() != h1.String() {
		t.Fatal("String() formatting broken")
	}
}

func TestNewAddressCopiesID(t *testing.T) {
	id := []byte{1, 2, 3}
	a := NewAddress(hostAddr("1.1.1.1:1"), id)
	id[0] = 9
	if a.ID[0] != 1 {
		t.Fatal("NewAddress aliased the id slice")
	}
}

func TestMsgHeaderAndReplacement(t *testing.T) {
	src := NewAddress(hostAddr("10.0.0.1:1"), []byte("a"))
	dst := NewAddress(hostAddr("10.0.0.2:2"), []byte("b"))
	m := &Msg{Src: src, Dst: dst, Proto: core.DATA, Payload: []byte("x")}
	h := m.Header()
	if !h.Source().SameHostAs(src.Host) || !h.Destination().SameHostAs(dst.Host) {
		t.Fatal("header endpoints wrong")
	}
	if h.Protocol() != core.DATA || m.Size() != 1 {
		t.Fatal("header basics wrong")
	}
	m2 := m.WithWireProtocol(core.UDT)
	if m.Proto != core.DATA {
		t.Fatal("WithWireProtocol mutated original")
	}
	if m2.Header().Protocol() != core.UDT {
		t.Fatal("WithWireProtocol did not restamp")
	}
	if ident, ok := m2.Header().Destination().(Identified); !ok ||
		!bytes.Equal(ident.VNodeID(), []byte("b")) {
		t.Fatal("restamped message lost vnode identity")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	reg := core.NewRegistry()
	if err := Register(reg); err != nil {
		t.Fatal(err)
	}
	in := &Msg{
		Src:     NewAddress(hostAddr("10.0.0.1:5000"), []byte{1, 2}),
		Dst:     NewAddress(hostAddr("10.0.0.2:6000"), []byte{3}),
		Proto:   core.TCP,
		Payload: []byte("payload"),
	}
	var buf bytes.Buffer
	if err := reg.Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	v, err := reg.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := v.(*Msg)
	if !out.Src.SameVNodeAs(in.Src) || !out.Dst.SameVNodeAs(in.Dst) {
		t.Fatal("vnode addresses corrupted")
	}
	if out.Proto != core.TCP || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatal("message corrupted")
	}
}

func TestSerializerRejectsWrongType(t *testing.T) {
	var buf bytes.Buffer
	if err := (MsgSerializer{}).Serialize(&buf, 3); err == nil {
		t.Fatal("serialized a non-vnet message")
	}
}

func TestPropertySerializationRoundTrip(t *testing.T) {
	reg := core.NewRegistry()
	if err := Register(reg); err != nil {
		t.Fatal(err)
	}
	f := func(srcID, dstID, payload []byte, proto uint8) bool {
		in := &Msg{
			Src:     NewAddress(hostAddr("1.2.3.4:1"), srcID),
			Dst:     NewAddress(hostAddr("5.6.7.8:2"), dstID),
			Proto:   core.Transport(int(proto)%4 + 1),
			Payload: payload,
		}
		var buf bytes.Buffer
		if reg.Encode(&buf, in) != nil {
			return false
		}
		v, err := reg.Decode(&buf)
		if err != nil {
			return false
		}
		out := v.(*Msg)
		return bytes.Equal(out.Src.ID, srcID) && bytes.Equal(out.Dst.ID, dstID) &&
			bytes.Equal(out.Payload, payload) && out.Proto == in.Proto
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectors(t *testing.T) {
	host := hostAddr("10.0.0.1:100")
	toA := &Msg{Dst: NewAddress(host, []byte("a"))}
	toB := &Msg{Dst: NewAddress(host, []byte("b"))}
	toHost := &core.DataMsg{Hdr: core.NewHeader(host, host, core.TCP)}

	selA := Selector([]byte("a"))
	if !selA(toA) || selA(toB) || selA(toHost) {
		t.Fatal("vnode selector misroutes")
	}
	hostSel := HostSelector()
	if hostSel(toA) || !hostSel(toHost) {
		t.Fatal("host selector misroutes")
	}
	// Non-message events (notify responses) always pass.
	if !selA(core.NotifyResp{}) || !hostSel(core.NotifyResp{}) {
		t.Fatal("selectors must pass non-message events")
	}
}

func TestSelectorCopiesID(t *testing.T) {
	id := []byte{7}
	sel := Selector(id)
	id[0] = 8
	if !sel(&Msg{Dst: NewAddress(hostAddr("1.1.1.1:1"), []byte{7})}) {
		t.Fatal("selector did not copy its id")
	}
}

// --- end-to-end: two vnodes behind one real network component -----------------

// vnodeApp receives messages for one vnode.
type vnodeApp struct {
	port *kompics.Port
	comp *kompics.Component

	mu       sync.Mutex
	received []*Msg
}

type vnodeSend struct{ e kompics.Event }

func (a *vnodeApp) Init(ctx *kompics.Context) {
	a.comp = ctx.Component()
	a.port = ctx.Requires(core.NetworkPort)
	ctx.Subscribe(a.port, (*core.Msg)(nil), func(e kompics.Event) {
		if m, ok := e.(*Msg); ok {
			a.mu.Lock()
			a.received = append(a.received, m)
			a.mu.Unlock()
		}
	})
	ctx.SubscribeSelf(vnodeSend{}, func(e kompics.Event) {
		ctx.Trigger(e.(vnodeSend).e, a.port)
	})
}

func (a *vnodeApp) count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.received)
}

func TestVNodeReflectionWithoutSerialization(t *testing.T) {
	// Two vnodes behind one network endpoint exchange messages that are
	// reflected locally (never serialised) and routed by selectors.
	port := freeTestPort(t)
	self := core.MustParseAddress(fmt.Sprintf("127.0.0.1:%d", port))
	reg := core.NewRegistry()
	if err := Register(reg); err != nil {
		t.Fatal(err)
	}
	netDef, err := core.NewNetwork(core.NetworkConfig{Self: self, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	sys := kompics.NewSystem()
	t.Cleanup(sys.Shutdown)
	netComp := sys.Create(netDef)

	vA := &vnodeApp{}
	vB := &vnodeApp{}
	aComp := sys.Create(vA)
	bComp := sys.Create(vB)
	kompics.MustConnect(netDef.Port(), vA.port,
		kompics.WithIndicationSelector(Selector([]byte("a"))))
	kompics.MustConnect(netDef.Port(), vB.port,
		kompics.WithIndicationSelector(Selector([]byte("b"))))
	sys.Start(netComp)
	sys.Start(aComp)
	sys.Start(bComp)

	payload := []byte("intra-host")
	msg := &Msg{
		Src:     NewAddress(self, []byte("a")),
		Dst:     NewAddress(self, []byte("b")),
		Proto:   core.TCP,
		Payload: payload,
	}
	vA.comp.SelfTrigger(vnodeSend{e: msg})

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && vB.count() == 0 {
		time.Sleep(time.Millisecond)
	}
	if vB.count() != 1 {
		t.Fatal("vnode b did not receive the message")
	}
	sys.AwaitQuiescence()
	if vA.count() != 0 {
		t.Fatal("selector leaked the message back to vnode a")
	}
	vB.mu.Lock()
	defer vB.mu.Unlock()
	if &vB.received[0].Payload[0] != &payload[0] {
		t.Fatal("reflected vnode message was serialised (copied)")
	}
}

func freeTestPort(t *testing.T) int {
	t.Helper()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for i := 0; i < 200; i++ {
		p := 20000 + 2*rng.Intn(20000)
		if l1, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", p)); err == nil {
			l1.Close()
			if l2, err := net.ListenPacket("udp", fmt.Sprintf("127.0.0.1:%d", p)); err == nil {
				l2.Close()
				if l3, err := net.ListenPacket("udp", fmt.Sprintf("127.0.0.1:%d", p+1)); err == nil {
					l3.Close()
					return p
				}
			}
		}
	}
	t.Fatal("no free port")
	return 0
}
