package bench

import (
	"fmt"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/data"
	"github.com/kompics/kompicsmessaging-go/internal/netsim"
	"github.com/kompics/kompicsmessaging-go/internal/stats"
)

// pingSize is the control-message payload.
const pingSize = 100

// Fig8Scenario is one bar group of figure 8: which protocol carries the
// pings and (optionally) which carries concurrent bulk data.
type Fig8Scenario struct {
	// Name labels the scenario as in the figure legend.
	Name string
	// PingProto carries the control messages.
	PingProto core.Transport
	// DataProto carries concurrent bulk data; zero means pings only.
	DataProto core.Transport
}

// Figure8Scenarios returns the five scenarios of figure 8.
func Figure8Scenarios() []Fig8Scenario {
	return []Fig8Scenario{
		{Name: "TCP pings only", PingProto: core.TCP},
		{Name: "UDT pings only", PingProto: core.UDT},
		{Name: "TCP ping + TCP data", PingProto: core.TCP, DataProto: core.TCP},
		{Name: "TCP ping + UDT data", PingProto: core.TCP, DataProto: core.UDT},
		{Name: "TCP ping + DATA data", PingProto: core.TCP, DataProto: core.DATA},
	}
}

// Fig8Row is one bar of figure 8.
type Fig8Row struct {
	Setup    string
	Scenario string
	// MeanRTT and CI95 summarise the ping round trips.
	MeanRTT time.Duration
	CI95    time.Duration
	Pings   int
}

// Fig8Options tunes the figure-8 reproduction.
type Fig8Options struct {
	// Pings per cell (default 30) at Interval (default 100 ms).
	Pings    int
	Interval time.Duration
	// Warmup lets the data stream reach steady state before probing
	// (default 30 s).
	Warmup time.Duration
	// Setups lists the paths (default netsim.Setups()).
	Setups []netsim.PathConfig
	// Seed bases the per-cell seeds.
	Seed int64
}

func (o *Fig8Options) applyDefaults() {
	if o.Pings <= 0 {
		o.Pings = 30
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.Warmup <= 0 {
		o.Warmup = 30 * time.Second
	}
	if len(o.Setups) == 0 {
		o.Setups = netsim.Setups()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Figure8 reproduces figure 8: mean control-message RTT per setup and
// scenario, with bulk data (where configured) running concurrently.
func Figure8(opts Fig8Options) ([]Fig8Row, error) {
	opts.applyDefaults()
	var rows []Fig8Row
	for _, setup := range opts.Setups {
		for i, sc := range Figure8Scenarios() {
			sample, err := runPingScenario(setup, sc, opts, opts.Seed+int64(i)*7919)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s: %w", setup.Name, sc.Name, err)
			}
			rows = append(rows, Fig8Row{
				Setup:    setup.Name,
				Scenario: sc.Name,
				MeanRTT:  time.Duration(sample.Mean() * float64(time.Second)),
				CI95:     time.Duration(sample.CI95() * float64(time.Second)),
				Pings:    sample.N(),
			})
		}
	}
	return rows, nil
}

// runPingScenario measures ping RTTs for one cell.
func runPingScenario(cfg netsim.PathConfig, sc Fig8Scenario, opts Fig8Options, seed int64) (*stats.Sample, error) {
	sim := netsim.NewSim(seed)
	path := sim.NewPath(cfg)

	// Control-plane state.
	var sample stats.Sample
	sentAt := make(map[uint64]time.Time)
	var pingConn *netsim.Conn // the conn carrying pings A→B and pongs B→A

	// onControlDelivered handles control messages at both ends.
	onControl := func(m *netsim.Message) {
		if m.Meta == "ping" {
			pingConn.Send(netsim.BtoA, &netsim.Message{
				ID: m.ID, Size: pingSize, Kind: netsim.ControlKind, Meta: "pong",
			})
			return
		}
		if at, ok := sentAt[m.ID]; ok {
			delete(sentAt, m.ID)
			sample.Add(sim.Now().Sub(at).Seconds())
		}
	}

	// Data plane.
	switch sc.DataProto {
	case 0:
		// Pings only: a dedicated connection.
		pingConn = path.NewConn(sc.PingProto)

	case core.TCP, core.UDT:
		dataConn := path.NewConn(sc.DataProto, netsim.WithDiskBound())
		keepFed(dataConn)
		if sc.DataProto == sc.PingProto {
			// The middleware multiplexes one channel per (peer,
			// protocol): pings queue behind the data backlog.
			pingConn = dataConn
		} else {
			pingConn = path.NewConn(sc.PingProto)
		}

	case core.DATA:
		prp, err := defaultLearnerPRP(seed)
		if err != nil {
			return nil, err
		}
		ds, err := newDataStream(sim, dataStreamConfig{
			path:      path,
			psp:       data.NewPatternSelection(data.Even),
			prp:       prp,
			episode:   time.Second,
			diskBound: true,
		})
		if err != nil {
			return nil, err
		}
		// Keep the interceptor's queue topped up: one fresh chunk per
		// released chunk, plus an initial backlog.
		backlog := 1024
		for i := 0; i < backlog; i++ {
			ds.enqueue(&netsim.Message{ID: uint64(i), Size: ChunkSize, Kind: netsim.DataKind})
		}
		next := uint64(backlog)
		ds.onDeliver = func(m *netsim.Message) {
			if m.Kind != netsim.DataKind {
				return // control probes share the lane but are not chunks
			}
			ds.enqueue(&netsim.Message{ID: next, Size: ChunkSize, Kind: netsim.DataKind})
			next++
		}
		// Control messages share the interceptor's TCP channel, exactly
		// as in the middleware (one channel per peer and protocol); the
		// interceptor's short socket queues are what protect them.
		if sc.PingProto == core.UDT {
			pingConn = ds.udt
		} else {
			pingConn = ds.tcp
		}

	default:
		return nil, fmt.Errorf("unsupported data protocol %v", sc.DataProto)
	}

	// Deliver control traffic at both ends of the ping connection.
	chainDeliver(pingConn, netsim.AtoB, func(m *netsim.Message) {
		if m.Kind == netsim.ControlKind {
			onControl(m)
		}
	})
	chainDeliver(pingConn, netsim.BtoA, func(m *netsim.Message) {
		if m.Kind == netsim.ControlKind {
			onControl(m)
		}
	})

	sim.RunFor(opts.Warmup)

	// Schedule the probes.
	for i := 0; i < opts.Pings; i++ {
		id := uint64(1 << 32) // control ID space, disjoint from chunks
		id += uint64(i)
		delay := time.Duration(i) * opts.Interval
		sim.Schedule(delay, func() {
			sentAt[id] = sim.Now()
			pingConn.Send(netsim.AtoB, &netsim.Message{
				ID: id, Size: pingSize, Kind: netsim.ControlKind, Meta: "ping",
			})
		})
	}

	want := opts.Pings
	if !sim.RunUntil(func() bool { return sample.N() >= want }, 24*time.Hour) {
		return nil, fmt.Errorf("only %d of %d pings completed", sample.N(), want)
	}
	return &sample, nil
}

// keepFed emulates the asynchronous file sender on a direct connection
// indefinitely: it keeps directWindow chunks queued at the socket, topping
// the backlog up whenever a chunk finishes transmitting.
func keepFed(conn *netsim.Conn) {
	next := uint64(0)
	var top func()
	top = func() {
		for conn.QueuedMessages(netsim.AtoB) < directWindow {
			conn.Send(netsim.AtoB, &netsim.Message{
				ID: next, Size: ChunkSize, Kind: netsim.DataKind,
			})
			next++
		}
	}
	conn.OnSent(netsim.AtoB, func(*netsim.Message) { top() })
	top()
}

// chainDeliver appends a delivery callback to a lane, preserving any
// callback already installed (e.g. the data stream's accounting).
func chainDeliver(conn *netsim.Conn, dir netsim.Dir, fn func(*netsim.Message)) {
	prev := conn.DeliverCallback(dir)
	conn.OnDeliver(dir, func(m *netsim.Message) {
		if prev != nil {
			prev(m)
		}
		fn(m)
	})
}
