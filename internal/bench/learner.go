package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/data"
	"github.com/kompics/kompicsmessaging-go/internal/netsim"
)

// LearnerPoint is one per-second sample of a learner run: throughput and
// the true (receiver-measured) protocol ratio, both as plotted in figures
// 2 and 4–6.
type LearnerPoint struct {
	// T is time since the run began.
	T time.Duration
	// Throughput is bytes/second over the last second.
	Throughput float64
	// TrueRatio is the receiver-side balance in [−1, 1]; NaN-free: when
	// no message arrived in the window the previous value is carried.
	TrueRatio float64
	// Target is the ratio currently prescribed by the PRP.
	Target float64
	// Epsilon is the learner's exploration rate (0 for static policies).
	Epsilon float64
}

// LearnerSeries is one curve of a learner figure.
type LearnerSeries struct {
	// Label names the curve (e.g. "approx", "TCP", "Pattern/Learner").
	Label  string
	Points []LearnerPoint
}

// RatioPolicyKind selects the PRP of a learner run.
type RatioPolicyKind int

// Ratio policies available to LearnerRun.
const (
	// StaticTCP and StaticUDT are the reference curves.
	StaticTCP RatioPolicyKind = iota + 1
	StaticUDT
	// LearnerMatrix, LearnerModel and LearnerApprox are the TD learner
	// with the three value backends (figures 4, 5, 6).
	LearnerMatrix
	LearnerModel
	LearnerApprox
)

// String implements fmt.Stringer.
func (k RatioPolicyKind) String() string {
	switch k {
	case StaticTCP:
		return "TCP"
	case StaticUDT:
		return "UDT"
	case LearnerMatrix:
		return "matrix"
	case LearnerModel:
		return "model"
	case LearnerApprox:
		return "approx"
	default:
		return fmt.Sprintf("RatioPolicyKind(%d)", int(k))
	}
}

// SelectionPolicyKind selects the PSP of a learner run.
type SelectionPolicyKind int

// Selection policies available to LearnerRun (figure 2 compares them).
const (
	PatternPolicy SelectionPolicyKind = iota + 1
	RandomPolicy
)

// String implements fmt.Stringer.
func (k SelectionPolicyKind) String() string {
	if k == RandomPolicy {
		return "Random"
	}
	return "Pattern"
}

// LearnerRunConfig parameterises LearnerRun.
type LearnerRunConfig struct {
	// Path is the simulated environment (default netsim.SetupLearner —
	// the TCP-strong link of the learner figures).
	Path netsim.PathConfig
	// Ratio picks the PRP; Selection the PSP (default PatternPolicy).
	Ratio     RatioPolicyKind
	Selection SelectionPolicyKind
	// Duration of the run (default 120 s, as in figures 4–6).
	Duration time.Duration
	// EpsMax/EpsMin/EpsDecay override the learner's exploration schedule
	// when non-zero. Figure 4 uses 0.8/0.1/0.01; figures 5–6 use
	// εmax = 0.3.
	EpsMax, EpsMin, EpsDecay float64
	// Seed drives all randomness.
	Seed int64
}

func (c *LearnerRunConfig) applyDefaults() {
	if c.Path.Name == "" {
		c.Path = netsim.SetupLearner
	}
	if c.Selection == 0 {
		c.Selection = PatternPolicy
	}
	if c.Duration <= 0 {
		c.Duration = 120 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// LearnerRun drives a continuous DATA stream over a simulated path for
// the configured duration and samples throughput and true ratio once per
// second — the raw series behind figures 2, 4, 5 and 6.
func LearnerRun(cfg LearnerRunConfig) (LearnerSeries, error) {
	cfg.applyDefaults()
	sim := netsim.NewSim(cfg.Seed)
	path := sim.NewPath(cfg.Path)

	prp, learner, err := cfg.buildPRP()
	if err != nil {
		return LearnerSeries{}, err
	}
	psp, err := cfg.buildPSP()
	if err != nil {
		return LearnerSeries{}, err
	}

	ds, err := newDataStream(sim, dataStreamConfig{
		path:    path,
		psp:     psp,
		prp:     prp,
		episode: time.Second,
	})
	if err != nil {
		return LearnerSeries{}, err
	}

	// Continuous stream: keep a deep backlog in the interceptor.
	const backlog = 2048
	next := uint64(0)
	for ; next < backlog; next++ {
		ds.enqueue(&netsim.Message{ID: next, Size: ChunkSize, Kind: netsim.DataKind})
	}
	ds.onDeliver = func(*netsim.Message) {
		ds.enqueue(&netsim.Message{ID: next, Size: ChunkSize, Kind: netsim.DataKind})
		next++
	}

	series := LearnerSeries{Label: cfg.label()}
	var lastBytes int64
	lastTCP, lastUDT := 0, 0
	lastRatio := ds.ic.Ratio().Balance()
	seconds := int(cfg.Duration / time.Second)
	for s := 1; s <= seconds; s++ {
		sim.RunFor(time.Second)
		deltaBytes := ds.deliveredBytes - lastBytes
		lastBytes = ds.deliveredBytes
		ratio, ok := ds.trueRatioSince(lastTCP, lastUDT)
		if !ok {
			ratio = lastRatio
		}
		lastRatio = ratio
		lastTCP, lastUDT = ds.deliveredTCP, ds.deliveredUDT

		point := LearnerPoint{
			T:          time.Duration(s) * time.Second,
			Throughput: float64(deltaBytes),
			TrueRatio:  ratio,
			Target:     ds.ic.Ratio().Balance(),
		}
		if learner != nil {
			point.Epsilon = learner.Epsilon()
		}
		series.Points = append(series.Points, point)
	}
	return series, nil
}

func (c *LearnerRunConfig) buildPRP() (data.ProtocolRatioPolicy, *data.TDRatioLearner, error) {
	switch c.Ratio {
	case StaticTCP:
		return data.StaticRatio{R: data.PureTCP}, nil, nil
	case StaticUDT:
		return data.StaticRatio{R: data.PureUDT}, nil, nil
	case LearnerMatrix, LearnerModel, LearnerApprox:
		kind := map[RatioPolicyKind]data.EstimatorKind{
			LearnerMatrix: data.MatrixEstimator,
			LearnerModel:  data.ModelEstimator,
			LearnerApprox: data.ApproxEstimator,
		}[c.Ratio]
		lcfg := data.LearnerConfig{
			Estimator: kind,
			Initial:   data.Even,
			Rand:      rand.New(rand.NewSource(c.Seed)),
		}
		// Figure 4's schedule for the matrix backend; figures 5–6 use a
		// lower εmax to avoid post-convergence exploration.
		if kind == data.MatrixEstimator {
			lcfg.EpsMax, lcfg.EpsMin, lcfg.EpsDecay = 0.8, 0.1, 0.01
		} else {
			lcfg.EpsMax, lcfg.EpsMin, lcfg.EpsDecay = 0.3, 0.1, 0.01
		}
		if c.EpsMax > 0 {
			lcfg.EpsMax = c.EpsMax
		}
		if c.EpsMin > 0 {
			lcfg.EpsMin = c.EpsMin
		}
		if c.EpsDecay > 0 {
			lcfg.EpsDecay = c.EpsDecay
		}
		l, err := data.NewTDRatioLearner(lcfg)
		if err != nil {
			return nil, nil, err
		}
		return l, l, nil
	default:
		return nil, nil, fmt.Errorf("bench: unknown ratio policy %v", c.Ratio)
	}
}

func (c *LearnerRunConfig) buildPSP() (data.ProtocolSelectionPolicy, error) {
	switch c.Selection {
	case PatternPolicy:
		return data.NewPatternSelection(data.Even), nil
	case RandomPolicy:
		return data.NewRandomSelection(data.Even, rand.New(rand.NewSource(c.Seed+1))), nil
	default:
		return nil, fmt.Errorf("bench: unknown selection policy %v", c.Selection)
	}
}

func (c *LearnerRunConfig) label() string {
	if c.Ratio == StaticTCP || c.Ratio == StaticUDT {
		return c.Ratio.String()
	}
	return fmt.Sprintf("%v/%v", c.Ratio, c.Selection)
}

// Figure2 reproduces figure 2: the approx learner with pattern vs
// probabilistic selection, plus the TCP and UDT references, over 60 s.
func Figure2(seed int64) ([]LearnerSeries, error) {
	return learnerFigure(seed, 60*time.Second, []LearnerRunConfig{
		{Ratio: LearnerApprox, Selection: PatternPolicy},
		{Ratio: LearnerApprox, Selection: RandomPolicy},
		{Ratio: StaticTCP},
		{Ratio: StaticUDT},
	})
}

// Figure4 reproduces figure 4: the matrix-backend learner (which fails to
// converge within 120 s) with TCP and UDT references.
func Figure4(seed int64) ([]LearnerSeries, error) {
	return learnerFigure(seed, 120*time.Second, []LearnerRunConfig{
		{Ratio: LearnerMatrix},
		{Ratio: StaticTCP},
		{Ratio: StaticUDT},
	})
}

// Figure5 reproduces figure 5: the model-based backend (convergence
// ≈ 20 s).
func Figure5(seed int64) ([]LearnerSeries, error) {
	return learnerFigure(seed, 120*time.Second, []LearnerRunConfig{
		{Ratio: LearnerModel},
		{Ratio: StaticTCP},
		{Ratio: StaticUDT},
	})
}

// Figure6 reproduces figure 6: the quadratic-approximation backend
// (convergence within seconds, no significant backtracking).
func Figure6(seed int64) ([]LearnerSeries, error) {
	return learnerFigure(seed, 120*time.Second, []LearnerRunConfig{
		{Ratio: LearnerApprox},
		{Ratio: StaticTCP},
		{Ratio: StaticUDT},
	})
}

func learnerFigure(seed int64, d time.Duration, cfgs []LearnerRunConfig) ([]LearnerSeries, error) {
	out := make([]LearnerSeries, 0, len(cfgs))
	for _, cfg := range cfgs {
		cfg.Seed = seed
		cfg.Duration = d
		s, err := LearnerRun(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
