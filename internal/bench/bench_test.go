package bench

import (
	"math"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/netsim"
)

const mbps = 1 << 20

// --- Figure 1 -------------------------------------------------------------------

func TestFigure1Shape(t *testing.T) {
	rows := Figure1(1)
	// 4 targets × 2 policies × 2 windows.
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	find := func(targetBalance float64, policy, window string) Fig1Row {
		for _, r := range rows {
			if r.Policy == policy && r.Window == window &&
				math.Abs(r.Target.Balance()-targetBalance) < 1e-9 {
				return r
			}
		}
		t.Fatalf("row %v/%s/%s missing", targetBalance, policy, window)
		return Fig1Row{}
	}

	for _, target := range Figure1Targets() {
		b := target.Balance()
		patE := find(b, "Pattern", "Episode")
		rndE := find(b, "Random", "Episode")
		patW := find(b, "Pattern", "Wire")
		rndW := find(b, "Random", "Wire")

		// Means stay near the target for both policies.
		for _, r := range []Fig1Row{patE, rndE, patW, rndW} {
			if math.Abs(r.Box.Mean-b) > 0.05 {
				t.Errorf("%s/%s at %v: mean %.3f far from target",
					r.Policy, r.Window, b, r.Box.Mean)
			}
		}
		// The headline: pattern selection's worst-case deviation is never
		// worse than random's, per window.
		devMax := func(r Fig1Row) float64 {
			return math.Max(math.Abs(r.Box.Max-b), math.Abs(r.Box.Min-b))
		}
		if devMax(patE) > devMax(rndE) {
			t.Errorf("target %v: pattern episode deviation %.3f exceeds random %.3f",
				b, devMax(patE), devMax(rndE))
		}
		if devMax(patW) > devMax(rndW) {
			t.Errorf("target %v: pattern wire deviation %.3f exceeds random %.3f",
				b, devMax(patW), devMax(rndW))
		}
	}

	// Quantitative anchors from §IV-B2: random selection shows ≈0.1 skew
	// over full episodes and ≈0.5 over wire windows at moderate ratios.
	rndE := find(data13Balance(), "Random", "Episode")
	if dev := math.Abs(rndE.Box.Max - rndE.Target.Balance()); dev < 0.02 || dev > 0.25 {
		t.Errorf("random episode max-skew %.3f outside the paper's ≈0.1 regime", dev)
	}
	rndW := find(data13Balance(), "Random", "Wire")
	if dev := math.Abs(rndW.Box.Max - rndW.Target.Balance()); dev < 0.2 {
		t.Errorf("random wire max-skew %.3f; paper reports ≈0.5", dev)
	}
	// Pattern selection is exact over any window multiple of its period
	// — for 1/3 the period (3) divides neither window exactly... but the
	// episode-window deviation must be tiny.
	patE := find(data13Balance(), "Pattern", "Episode")
	if dev := math.Abs(patE.Box.Max - patE.Target.Balance()); dev > 0.01 {
		t.Errorf("pattern episode max-skew %.4f, want ≈0", dev)
	}
}

func data13Balance() float64 { return 2.0/3.0 - 1 } // UDT fraction 1/3

func TestFigure1PatternStrugglesAtExtremeRatios(t *testing.T) {
	// §IV-B4: at r = 3/100 the majority blocks are longer than the wire
	// window, so even the pattern selector shows significant wire-window
	// skew. This is a documented limitation, not a bug.
	rows := Figure1(1)
	for _, r := range rows {
		if r.Policy == "Pattern" && r.Window == "Wire" &&
			math.Abs(r.Target.UDTFraction()-0.03) < 1e-9 {
			if math.Abs(r.Box.Min-r.Target.Balance()) < 0.02 {
				t.Fatal("expected visible wire-window skew at r=3/100")
			}
			return
		}
	}
	t.Fatal("3/100 pattern wire row missing")
}

// --- Figure 9 -------------------------------------------------------------------

// smallFig9 runs figure 9 with the paper's dataset size but fewer
// repetitions. The full size matters: the DATA learner needs several
// 1-second episodes to converge, and the paper's 395 MB transfer is what
// amortises that ramp-up (its documented drawback).
func smallFig9(t *testing.T) []Fig9Row {
	t.Helper()
	rows, err := Figure9(Fig9Options{
		Size: 395 << 20,
		// The paper's stopping rule: at least 10 runs, continue until
		// RSE < 10%. The repetitions matter for DATA: the persistent
		// learner converges over the first few runs.
		MinRuns: 10, MaxRuns: 20,
		RSETarget: 0.10,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func fig9Cell(t *testing.T, rows []Fig9Row, setup string, proto core.Transport) Fig9Row {
	t.Helper()
	for _, r := range rows {
		if r.Setup == setup && r.Proto == proto {
			return r
		}
	}
	t.Fatalf("cell %s/%v missing", setup, proto)
	return Fig9Row{}
}

func TestFigure9Shape(t *testing.T) {
	rows := smallFig9(t)
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12 (4 setups × 3 protocols)", len(rows))
	}

	// TCP: strong at short RTT, collapsing at long RTT.
	tcpLocal := fig9Cell(t, rows, "Local", core.TCP).MeanThroughput
	tcpVPC := fig9Cell(t, rows, "EU-VPC", core.TCP).MeanThroughput
	tcpUS := fig9Cell(t, rows, "EU2US", core.TCP).MeanThroughput
	tcpAU := fig9Cell(t, rows, "EU2AU", core.TCP).MeanThroughput
	if tcpLocal < 90*mbps || tcpVPC < 80*mbps {
		t.Errorf("short-RTT TCP weak: local %.1f, VPC %.1f MB/s",
			tcpLocal/mbps, tcpVPC/mbps)
	}
	if tcpUS > 5*mbps || tcpAU > 3*mbps || tcpAU >= tcpUS {
		t.Errorf("TCP did not collapse with RTT: US %.2f, AU %.2f MB/s",
			tcpUS/mbps, tcpAU/mbps)
	}

	// UDT: pinned near the policer on real networks, regardless of RTT.
	for _, setup := range []string{"EU-VPC", "EU2US", "EU2AU"} {
		u := fig9Cell(t, rows, setup, core.UDT).MeanThroughput
		if u < 7*mbps || u > 11*mbps {
			t.Errorf("%s UDT = %.2f MB/s, want ≈10", setup, u/mbps)
		}
	}

	// Crossover: TCP wins up to the VPC, UDT wins transcontinentally —
	// by roughly an order of magnitude each way, as in the paper.
	udtVPC := fig9Cell(t, rows, "EU-VPC", core.UDT).MeanThroughput
	if tcpVPC < 5*udtVPC {
		t.Errorf("VPC: TCP (%.1f) not ≫ UDT (%.1f)", tcpVPC/mbps, udtVPC/mbps)
	}
	udtAU := fig9Cell(t, rows, "EU2AU", core.UDT).MeanThroughput
	if udtAU < 5*tcpAU {
		t.Errorf("EU2AU: UDT (%.1f) not ≫ TCP (%.2f)", udtAU/mbps, tcpAU/mbps)
	}

	// DATA tracks the better protocol everywhere (within a ramp-up
	// allowance), the paper's headline result.
	for _, setup := range []string{"Local", "EU-VPC", "EU2US", "EU2AU"} {
		best := math.Max(
			fig9Cell(t, rows, setup, core.TCP).MeanThroughput,
			fig9Cell(t, rows, setup, core.UDT).MeanThroughput,
		)
		dataT := fig9Cell(t, rows, setup, core.DATA).MeanThroughput
		if dataT < 0.5*best {
			t.Errorf("%s: DATA %.2f MB/s below half of best single protocol %.2f",
				setup, dataT/mbps, best/mbps)
		}
	}

	// Bookkeeping sanity.
	for _, r := range rows {
		if r.Runs < 10 {
			t.Errorf("%s/%v ran %d times, want ≥10", r.Setup, r.Proto, r.Runs)
		}
		if r.CI95 < 0 {
			t.Errorf("negative CI in %+v", r)
		}
	}
}

func TestRunTransferUnsupportedProto(t *testing.T) {
	if _, err := RunTransfer(netsim.SetupEUVPC, core.UDP, 1<<20, 1); err == nil {
		t.Fatal("UDP transfer accepted (figure 9 has no UDP series)")
	}
}

// --- Figure 8 -------------------------------------------------------------------

func TestFigure8Shape(t *testing.T) {
	rows, err := Figure8(Fig8Options{
		Pings:  15,
		Warmup: 20 * time.Second,
		Setups: []netsim.PathConfig{netsim.SetupEU2US},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(scenario string) Fig8Row {
		for _, r := range rows {
			if r.Scenario == scenario {
				return r
			}
		}
		t.Fatalf("scenario %q missing", scenario)
		return Fig8Row{}
	}

	base := get("TCP pings only").MeanRTT
	tcpData := get("TCP ping + TCP data").MeanRTT
	udtData := get("TCP ping + UDT data").MeanRTT
	dataData := get("TCP ping + DATA data").MeanRTT

	if base < netsim.SetupEU2US.RTT || base > 2*netsim.SetupEU2US.RTT {
		t.Errorf("idle ping RTT %v implausible for 155 ms path", base)
	}
	// TCP data on the shared connection inflates control RTT by orders
	// of magnitude.
	if tcpData < 20*base {
		t.Errorf("TCP+TCP RTT %v not ≫ idle %v", tcpData, base)
	}
	// Data on UDT barely disturbs TCP pings.
	if udtData > 3*base {
		t.Errorf("TCP ping + UDT data RTT %v should stay near base %v", udtData, base)
	}
	// DATA sits between the extremes but far below TCP-on-TCP (the
	// paper: still two orders of magnitude better).
	if dataData >= tcpData/5 {
		t.Errorf("DATA RTT %v not well below TCP-on-TCP %v", dataData, tcpData)
	}
	if dataData < base {
		t.Errorf("DATA RTT %v below idle baseline %v", dataData, base)
	}
}

// --- Figures 2 and 4–6 ------------------------------------------------------------

func tailMean(points []LearnerPoint, n int, f func(LearnerPoint) float64) float64 {
	if n > len(points) {
		n = len(points)
	}
	sum := 0.0
	for _, p := range points[len(points)-n:] {
		sum += f(p)
	}
	return sum / float64(n)
}

func TestFigure6ApproxConvergesToTCP(t *testing.T) {
	series, err := Figure6(3)
	if err != nil {
		t.Fatal(err)
	}
	var approx, tcp, udt LearnerSeries
	for _, s := range series {
		switch s.Label {
		case "approx/Pattern":
			approx = s
		case "TCP":
			tcp = s
		case "UDT":
			udt = s
		}
	}
	if len(approx.Points) != 120 {
		t.Fatalf("approx series has %d points, want 120", len(approx.Points))
	}
	tcpRate := tailMean(tcp.Points, 30, func(p LearnerPoint) float64 { return p.Throughput })
	udtRate := tailMean(udt.Points, 30, func(p LearnerPoint) float64 { return p.Throughput })
	if tcpRate < 5*udtRate {
		t.Fatalf("environment broken: TCP %.1f not ≫ UDT %.1f MB/s",
			tcpRate/mbps, udtRate/mbps)
	}
	gotRate := tailMean(approx.Points, 30, func(p LearnerPoint) float64 { return p.Throughput })
	if gotRate < 0.7*tcpRate {
		t.Fatalf("approx learner tail throughput %.1f MB/s below 70%% of TCP reference %.1f",
			gotRate/mbps, tcpRate/mbps)
	}
	gotRatio := tailMean(approx.Points, 30, func(p LearnerPoint) float64 { return p.TrueRatio })
	if gotRatio > -0.6 {
		t.Fatalf("approx learner tail ratio %.2f, want ≤ -0.6 (near pure TCP)", gotRatio)
	}
}

func TestFigure5ModelConvergesButSlower(t *testing.T) {
	series, err := Figure5(3)
	if err != nil {
		t.Fatal(err)
	}
	var model LearnerSeries
	for _, s := range series {
		if s.Label == "model/Pattern" {
			model = s
		}
	}
	gotRatio := tailMean(model.Points, 30, func(p LearnerPoint) float64 { return p.TrueRatio })
	if gotRatio > -0.5 {
		t.Fatalf("model learner tail ratio %.2f, want ≤ -0.5", gotRatio)
	}
}

func TestFigure4MatrixSlowerThanApprox(t *testing.T) {
	// The paper's claim is comparative: within the same budget the
	// matrix backend explores far less effectively than the model-based
	// ones. Compare time-to-reach a TCP-heavy ratio.
	mat, err := Figure4(3)
	if err != nil {
		t.Fatal(err)
	}
	app, err := Figure6(3)
	if err != nil {
		t.Fatal(err)
	}
	reach := func(series []LearnerSeries, label string) int {
		for _, s := range series {
			if s.Label != label {
				continue
			}
			for i, p := range s.Points {
				if p.Target <= -0.6 {
					return i + 1
				}
			}
			return len(s.Points) + 1
		}
		t.Fatalf("series %q missing", label)
		return 0
	}
	matrixT := reach(mat, "matrix/Pattern")
	approxT := reach(app, "approx/Pattern")
	if approxT > matrixT {
		t.Fatalf("approx reached TCP-heavy ratio after %d s, matrix after %d s; want approx ≤ matrix",
			approxT, matrixT)
	}
	t.Logf("seconds to reach balance ≤ -0.6: approx=%d matrix=%d", approxT, matrixT)
}

func TestFigure2PatternVsRandom(t *testing.T) {
	series, err := Figure2(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d, want 4", len(series))
	}
	var pattern, random LearnerSeries
	for _, s := range series {
		switch s.Label {
		case "approx/Pattern":
			pattern = s
		case "approx/Random":
			random = s
		}
	}
	if len(pattern.Points) != 60 || len(random.Points) != 60 {
		t.Fatal("series length wrong")
	}
	// Both eventually achieve comparable performance (the paper: "both
	// implementations eventually achieve the same performance").
	pRate := tailMean(pattern.Points, 15, func(p LearnerPoint) float64 { return p.Throughput })
	rRate := tailMean(random.Points, 15, func(p LearnerPoint) float64 { return p.Throughput })
	if rRate < 0.4*pRate {
		t.Fatalf("random-PSP learner tail %.1f MB/s far below pattern %.1f",
			rRate/mbps, pRate/mbps)
	}
}

func TestLearnerRunValidation(t *testing.T) {
	if _, err := LearnerRun(LearnerRunConfig{Ratio: RatioPolicyKind(99)}); err == nil {
		t.Fatal("unknown ratio policy accepted")
	}
	if _, err := LearnerRun(LearnerRunConfig{Ratio: StaticTCP, Selection: SelectionPolicyKind(99)}); err == nil {
		t.Fatal("unknown selection policy accepted")
	}
}

func TestRatioAndSelectionKindStrings(t *testing.T) {
	for _, k := range []RatioPolicyKind{StaticTCP, StaticUDT, LearnerMatrix, LearnerModel, LearnerApprox, RatioPolicyKind(42)} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
	if PatternPolicy.String() != "Pattern" || RandomPolicy.String() != "Random" {
		t.Fatal("selection kind strings wrong")
	}
}

// --- extension: RTT sweep -------------------------------------------------------

func TestThroughputSweepCrossover(t *testing.T) {
	rows, err := ThroughputSweep(
		[]time.Duration{3 * time.Millisecond, 50 * time.Millisecond, 320 * time.Millisecond},
		Fig9Options{Size: 96 << 20, MinRuns: 3, MaxRuns: 5, RSETarget: 0.3, Seed: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	get := func(rtt time.Duration, proto core.Transport) float64 {
		for _, r := range rows {
			if r.RTT == rtt && r.Proto == proto {
				return r.MeanThroughput
			}
		}
		t.Fatalf("missing cell %v/%v", rtt, proto)
		return 0
	}
	// TCP wins at 3 ms, loses at 50 ms and beyond: the crossover the
	// sweep exists to locate.
	if get(3*time.Millisecond, core.TCP) < get(3*time.Millisecond, core.UDT) {
		t.Fatal("TCP should win at 3 ms")
	}
	if get(320*time.Millisecond, core.TCP) > get(320*time.Millisecond, core.UDT) {
		t.Fatal("UDT should win at 320 ms")
	}
	// In the mid band the DATA mix can exceed both pure protocols
	// (aggregated bandwidth); at minimum it must not be worse than half
	// the best.
	best := mathMax(get(50*time.Millisecond, core.TCP), get(50*time.Millisecond, core.UDT))
	if get(50*time.Millisecond, core.DATA) < 0.5*best {
		t.Fatal("DATA below half of best in the mid band")
	}
}

func mathMax(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestSweepPathShape(t *testing.T) {
	lan := SweepPath(100 * time.Microsecond)
	if lan.UDPPolicerRate != 0 || lan.UDTMaxRate == 0 {
		t.Fatal("sub-millisecond sweep path should look like loopback")
	}
	wan := SweepPath(100 * time.Millisecond)
	if wan.LossRate < 1e-5 || wan.UDPPolicerRate == 0 {
		t.Fatal("WAN sweep path should have loss and a policer")
	}
	if err := wan.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(DefaultSweepRTTs()) < 5 {
		t.Fatal("sweep axis too sparse")
	}
}
