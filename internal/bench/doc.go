// Package bench regenerates every figure of the paper's evaluation (§IV
// and §V) on the netsim substrate, which stands in for the Amazon EC2
// testbed (see DESIGN.md §4 for the substitution argument):
//
//	Figure 1 — distribution of observed selection ratios for the
//	           probabilistic and pattern selectors, over full episodes
//	           (~1600 messages) and on-the-wire windows (16 messages).
//	Figure 2 — learner convergence with pattern vs probabilistic
//	           selection (throughput and true protocol ratio over time).
//	Figure 4 — TD learner with the matrix Q(s,a) backend (no convergence
//	           within 120 s).
//	Figure 5 — model-based V(s) backend (convergence ≈ 20 s).
//	Figure 6 — quadratic value approximation (convergence in seconds).
//	Figure 8 — control-message RTTs with and without concurrent bulk
//	           data over TCP, UDT and DATA, across the four setups.
//	Figure 9 — disk-to-disk throughput for TCP, UDT and DATA across the
//	           four setups (±95% CI, runs repeated until RSE < 10%).
//
// All experiments run the *production* policy/interceptor code over
// simulated connections with virtual time, so a 120-second learner run
// executes in milliseconds and every result is reproducible per seed.
package bench
