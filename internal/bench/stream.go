package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/data"
	"github.com/kompics/kompicsmessaging-go/internal/filetransfer"
	"github.com/kompics/kompicsmessaging-go/internal/netsim"
)

// ChunkSize is the simulated message payload, matching the paper's 65 kB
// serialisation buffers.
const ChunkSize = 65 << 10

// directWindow is the outstanding-chunk window of the asynchronous file
// sender when writing straight to a transport (no interceptor). The large
// backlog is what delays control messages in figure 8.
const directWindow = 256

// dataStream drives the DATA meta-protocol over a simulated path: the
// production interceptor, selection and ratio policies feeding one TCP and
// one UDT connection.
type dataStream struct {
	sim *netsim.Sim
	tcp *netsim.Conn
	udt *netsim.Conn
	ic  *data.Interceptor

	deliveredBytes int64
	deliveredTCP   int
	deliveredUDT   int
	onDeliver      func(*netsim.Message)
}

// dataStreamConfig configures newDataStream.
type dataStreamConfig struct {
	path      *netsim.Path
	psp       data.ProtocolSelectionPolicy
	prp       data.ProtocolRatioPolicy
	episode   time.Duration
	onEpisode func(stats data.EpisodeStats, next data.Ratio)
	diskBound bool
}

func newDataStream(sim *netsim.Sim, cfg dataStreamConfig) (*dataStream, error) {
	var opts []netsim.ConnOption
	if cfg.diskBound {
		opts = append(opts, netsim.WithDiskBound())
	}
	ds := &dataStream{
		sim: sim,
		tcp: cfg.path.NewConn(core.TCP, opts...),
		udt: cfg.path.NewConn(core.UDT, opts...),
	}
	ic, err := data.NewInterceptor(data.InterceptorConfig{
		PSP:           cfg.psp,
		PRP:           cfg.prp,
		Clock:         sim.Clock(),
		EpisodeLength: cfg.episode,
		Send: func(proto core.Transport, item *data.Item) {
			msg := item.Ctx.(*netsim.Message)
			ds.conn(proto).Send(netsim.AtoB, msg)
		},
		OnEpisode: cfg.onEpisode,
	})
	if err != nil {
		return nil, err
	}
	ds.ic = ic

	for _, proto := range []core.Transport{core.TCP, core.UDT} {
		proto := proto
		conn := ds.conn(proto)
		conn.OnSent(netsim.AtoB, func(*netsim.Message) { ic.OnSent(proto) })
		conn.OnDeliver(netsim.AtoB, func(m *netsim.Message) {
			ds.deliveredBytes += int64(m.Size)
			if proto == core.TCP {
				ds.deliveredTCP++
			} else {
				ds.deliveredUDT++
			}
			if ds.onDeliver != nil {
				ds.onDeliver(m)
			}
		})
	}
	ic.Start()
	return ds, nil
}

func (ds *dataStream) conn(proto core.Transport) *netsim.Conn {
	if proto == core.UDT {
		return ds.udt
	}
	return ds.tcp
}

// enqueue hands one simulated message to the interceptor.
func (ds *dataStream) enqueue(m *netsim.Message) {
	ds.ic.Enqueue(&data.Item{Size: m.Size, Ctx: m})
}

// trueRatioSince returns the receiver-side balance of deliveries since the
// given counters, in the figures' [−1, 1] form.
func (ds *dataStream) trueRatioSince(tcp, udt int) (float64, bool) {
	dt := ds.deliveredTCP - tcp
	du := ds.deliveredUDT - udt
	if dt+du == 0 {
		return 0, false
	}
	return float64(du-dt) / float64(du+dt), true
}

// defaultLearnerPRP builds the DATA learner used where the paper just
// says "DATA": quadratic approximation backend with the figure-6
// exploration schedule.
func defaultLearnerPRP(seed int64) (data.ProtocolRatioPolicy, error) {
	return data.NewTDRatioLearner(data.LearnerConfig{
		Estimator: data.ApproxEstimator,
		EpsMax:    0.3, EpsMin: 0.1, EpsDecay: 0.01,
		Initial: data.Even,
		Rand:    rand.New(rand.NewSource(seed)),
	})
}

// TransferResult is one simulated disk-to-disk transfer.
type TransferResult struct {
	// Elapsed is the virtual transfer duration.
	Elapsed time.Duration
	// Throughput is bytes/second.
	Throughput float64
}

// RunTransfer moves size bytes over one protocol (TCP, UDT or DATA) on a
// fresh simulated path and reports throughput. The transfer is
// disk-bound, like the paper's disk-to-disk measurements. For DATA a
// fresh learner is created; repeated-transfer experiments should use
// RunDataTransfer with a persistent ratio policy instead, mirroring the
// paper's setup where the middleware (and hence the per-destination
// learner) stays up across the ≥10 repetitions.
func RunTransfer(cfg netsim.PathConfig, proto core.Transport, size int64, seed int64) (TransferResult, error) {
	if proto == core.DATA {
		prp, err := defaultLearnerPRP(seed)
		if err != nil {
			return TransferResult{}, err
		}
		return RunDataTransfer(cfg, prp, size, seed)
	}
	sim := netsim.NewSim(seed)
	path := sim.NewPath(cfg)
	chunks := filetransfer.Chunks(size, ChunkSize)

	var delivered int64
	done := func() bool { return delivered >= size }

	switch proto {
	case core.TCP, core.UDT:
		conn := path.NewConn(proto, netsim.WithDiskBound())
		conn.OnDeliver(netsim.AtoB, func(m *netsim.Message) { delivered += int64(m.Size) })
		window := filetransfer.NewWindow(chunks, directWindow)
		var pump func()
		send := func(c filetransfer.Chunk) {
			conn.Send(netsim.AtoB, &netsim.Message{
				ID: uint64(c.Index), Size: c.Size, Kind: netsim.DataKind,
			})
		}
		conn.OnSent(netsim.AtoB, func(*netsim.Message) {
			window.Ack()
			pump()
		})
		pump = func() {
			for {
				c, ok := window.Next()
				if !ok {
					return
				}
				send(c)
			}
		}
		pump()

	default:
		return TransferResult{}, fmt.Errorf("bench: unsupported transfer protocol %v", proto)
	}

	if !sim.RunUntil(done, 48*time.Hour) {
		return TransferResult{}, fmt.Errorf("bench: %v transfer on %s did not finish (%d of %d bytes)",
			proto, cfg.Name, delivered, size)
	}
	elapsed := sim.Elapsed()
	return TransferResult{
		Elapsed:    elapsed,
		Throughput: float64(size) / elapsed.Seconds(),
	}, nil
}

// RunDataTransfer moves size bytes over the DATA meta-protocol using the
// supplied ratio policy, which persists across calls the way the
// middleware's per-destination learner persists across transfer runs.
// Connections (and hence TCP/UDT congestion state) are fresh per run.
func RunDataTransfer(cfg netsim.PathConfig, prp data.ProtocolRatioPolicy, size int64, seed int64) (TransferResult, error) {
	sim := netsim.NewSim(seed)
	path := sim.NewPath(cfg)

	var delivered int64
	ds, err := newDataStream(sim, dataStreamConfig{
		path:      path,
		psp:       data.NewPatternSelection(prp.Initial()),
		prp:       prp,
		episode:   time.Second,
		diskBound: true,
	})
	if err != nil {
		return TransferResult{}, err
	}
	ds.onDeliver = func(m *netsim.Message) { delivered += int64(m.Size) }
	// The DataNetwork queues the whole stream; the interceptor is the
	// throttle.
	for _, c := range filetransfer.Chunks(size, ChunkSize) {
		ds.enqueue(&netsim.Message{ID: uint64(c.Index), Size: c.Size, Kind: netsim.DataKind})
	}
	if !sim.RunUntil(func() bool { return delivered >= size }, 48*time.Hour) {
		return TransferResult{}, fmt.Errorf("bench: DATA transfer on %s did not finish (%d of %d bytes)",
			cfg.Name, delivered, size)
	}
	elapsed := sim.Elapsed()
	return TransferResult{
		Elapsed:    elapsed,
		Throughput: float64(size) / elapsed.Seconds(),
	}, nil
}
