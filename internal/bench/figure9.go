package bench

import (
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/data"
	"github.com/kompics/kompicsmessaging-go/internal/netsim"
	"github.com/kompics/kompicsmessaging-go/internal/stats"
)

// Fig9Row is one point of figure 9: mean disk-to-disk throughput with a
// 95% confidence interval for one (setup, protocol) pair.
type Fig9Row struct {
	// Setup names the path configuration; RTT is its x-coordinate.
	Setup string
	RTT   time.Duration
	// Proto is TCP, UDT or DATA.
	Proto core.Transport
	// MeanThroughput and CI95 are in bytes/second; Runs is the sample
	// size after the RSE stopping rule.
	MeanThroughput float64
	CI95           float64
	Runs           int
}

// Fig9Options tunes the figure-9 reproduction. Zero values take the
// paper's parameters.
type Fig9Options struct {
	// Size is the dataset (default 395 MB as in the paper; tests use
	// less).
	Size int64
	// MinRuns and MaxRuns bound repetitions (defaults 10 and 30); runs
	// continue past MinRuns until RSE < RSETarget.
	MinRuns, MaxRuns int
	// RSETarget is the relative-standard-error stopping threshold
	// (default 0.10).
	RSETarget float64
	// Setups lists the paths (default netsim.Setups()).
	Setups []netsim.PathConfig
	// Seed bases the per-run seeds.
	Seed int64
}

func (o *Fig9Options) applyDefaults() {
	if o.Size <= 0 {
		o.Size = 395 << 20
	}
	if o.MinRuns <= 0 {
		o.MinRuns = 10
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 30
	}
	if o.RSETarget <= 0 {
		o.RSETarget = 0.10
	}
	if len(o.Setups) == 0 {
		o.Setups = netsim.Setups()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Figure9Protocols returns the protocols plotted in figure 9.
func Figure9Protocols() []core.Transport {
	return []core.Transport{core.TCP, core.UDT, core.DATA}
}

// Figure9 reproduces figure 9: repeated transfers per (setup, protocol)
// until the paper's stopping rule is met, reporting mean ± 95% CI.
func Figure9(opts Fig9Options) ([]Fig9Row, error) {
	opts.applyDefaults()
	var rows []Fig9Row
	for _, setup := range opts.Setups {
		for _, proto := range Figure9Protocols() {
			// For DATA, the learner persists across a cell's runs, just
			// as the paper's middleware (and its per-destination
			// learner) stayed up across the repeated transfers. The
			// first run pays the ramp-up; ε-exploration afterwards is
			// the "somewhat higher variance" the paper reports.
			var prp data.ProtocolRatioPolicy
			if proto == core.DATA {
				var err error
				prp, err = defaultLearnerPRP(opts.Seed + int64(proto)*101)
				if err != nil {
					return nil, err
				}
			}
			var sample stats.Sample
			for run := 0; run < opts.MaxRuns; run++ {
				seed := opts.Seed + int64(run)*1009 + int64(proto)*101
				var res TransferResult
				var err error
				if proto == core.DATA {
					res, err = RunDataTransfer(setup, prp, opts.Size, seed)
				} else {
					res, err = RunTransfer(setup, proto, opts.Size, seed)
				}
				if err != nil {
					return nil, err
				}
				sample.Add(res.Throughput)
				if sample.MeetsRSETarget(opts.MinRuns, opts.RSETarget) {
					break
				}
			}
			rows = append(rows, Fig9Row{
				Setup:          setup.Name,
				RTT:            setup.RTT,
				Proto:          proto,
				MeanThroughput: sample.Mean(),
				CI95:           sample.CI95(),
				Runs:           sample.N(),
			})
		}
	}
	return rows, nil
}
