package bench

import (
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/data"
	"github.com/kompics/kompicsmessaging-go/internal/netsim"
)

// TestLearnerReAdaptsToChangingConditions is the scenario the paper's
// introduction motivates but never measures: network conditions change
// mid-stream and the online learner must shift traffic to the newly
// better protocol. The path starts TCP-friendly (low loss: TCP ≈
// 100 MB/s ≫ UDT ≈ 10), then degrades to WAN-grade loss at a long RTT
// (TCP collapses below UDT); the learner has to migrate from balance ≈ −1
// towards UDT.
func TestLearnerReAdaptsToChangingConditions(t *testing.T) {
	sim := netsim.NewSim(9)
	good := netsim.SetupLearner // TCP-strong
	path := sim.NewPath(good)

	prp, err := defaultLearnerPRP(9)
	if err != nil {
		t.Fatal(err)
	}
	var ratios []float64
	ds, err := newDataStream(sim, dataStreamConfig{
		path:    path,
		psp:     data.NewPatternSelection(data.Even),
		prp:     prp,
		episode: time.Second,
		onEpisode: func(_ data.EpisodeStats, next data.Ratio) {
			ratios = append(ratios, next.Balance())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Continuous stream.
	next := uint64(0)
	for ; next < 2048; next++ {
		ds.enqueue(&netsim.Message{ID: next, Size: ChunkSize, Kind: netsim.DataKind})
	}
	ds.onDeliver = func(*netsim.Message) {
		ds.enqueue(&netsim.Message{ID: next, Size: ChunkSize, Kind: netsim.DataKind})
		next++
	}

	// Phase 1: 60 s on the good link — learner should sit near pure TCP.
	sim.RunFor(60 * time.Second)
	phase1 := mean(ratios[40:])
	if phase1 > -0.6 {
		t.Fatalf("phase 1: learner at balance %.2f, want ≤ -0.6 (TCP-strong link)", phase1)
	}

	// Conditions degrade: long RTT with WAN loss; TCP collapses to
	// ~1 MB/s while UDT stays at the 10 MB/s policer.
	bad := good
	bad.RTT = 200 * time.Millisecond
	bad.LossRate = 3e-4
	path.SetConfig(bad)

	// Phase 2: give the learner time to notice and migrate. Exploration
	// is already at its floor (ε = 0.1), so this measures genuine
	// re-adaptation, not initial exploration.
	sim.RunFor(240 * time.Second)
	tail := ratios[len(ratios)-30:]
	phase2 := mean(tail)
	if phase2 < 0.2 {
		t.Fatalf("phase 2: learner stuck at balance %.2f after conditions flipped, want ≥ 0.2 (tail %v)",
			phase2, tail)
	}
	t.Logf("adaptation: phase1 mean balance %.2f → phase2 mean balance %.2f", phase1, phase2)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
