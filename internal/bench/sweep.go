package bench

import (
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/data"
	"github.com/kompics/kompicsmessaging-go/internal/netsim"
	"github.com/kompics/kompicsmessaging-go/internal/stats"
)

// SweepPath builds a path configuration for an arbitrary RTT along figure
// 9's x-axis, interpolating the paper's testbed: datacentre-grade links
// (125 MB/s) with negligible loss at LAN latencies and WAN-grade random
// loss beyond ~10 ms, Amazon's UDP policer throughout, and the same disk
// and serialisation bounds as the canned setups.
func SweepPath(rtt time.Duration) netsim.PathConfig {
	loss := 1e-6
	if rtt >= 10*time.Millisecond {
		loss = 1e-4
	}
	cfg := netsim.PathConfig{
		Name:           "sweep-" + rtt.String(),
		RTT:            rtt,
		LinkRate:       125 * netsim.MBps,
		LossRate:       loss,
		UDPPolicerRate: 10 * netsim.MBps,
		DiskRate:       110 * netsim.MBps,
		AppRate:        150 * netsim.MBps,
	}
	if rtt < time.Millisecond {
		// Loopback-like: no policer, buffer-limited UDT (the Local setup).
		cfg.LinkRate = 1500 * netsim.MBps
		cfg.LossRate = 0
		cfg.UDPPolicerRate = 0
		cfg.UDTMaxRate = 30 * netsim.MBps
	}
	return cfg
}

// DefaultSweepRTTs covers figure 9's x-axis from loopback to EU↔AU.
func DefaultSweepRTTs() []time.Duration {
	return []time.Duration{
		100 * time.Microsecond,
		3 * time.Millisecond,
		10 * time.Millisecond,
		25 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		155 * time.Millisecond,
		225 * time.Millisecond,
		320 * time.Millisecond,
	}
}

// ThroughputSweep runs figure 9's experiment over a continuous RTT axis
// rather than just the four testbed points, exposing the TCP/UDT
// crossover the paper's discussion centres on. Runs per point follow
// opts.MinRuns/MaxRuns/RSETarget; the DATA learner persists across a
// point's runs as in Figure9.
func ThroughputSweep(rtts []time.Duration, opts Fig9Options) ([]Fig9Row, error) {
	opts.applyDefaults()
	if len(rtts) == 0 {
		rtts = DefaultSweepRTTs()
	}
	var rows []Fig9Row
	for _, rtt := range rtts {
		setup := SweepPath(rtt)
		for _, proto := range Figure9Protocols() {
			var prp data.ProtocolRatioPolicy
			if proto == core.DATA {
				var err error
				prp, err = defaultLearnerPRP(opts.Seed + int64(proto)*101)
				if err != nil {
					return nil, err
				}
			}
			var sample stats.Sample
			for run := 0; run < opts.MaxRuns; run++ {
				seed := opts.Seed + int64(run)*1009 + int64(proto)*101
				var res TransferResult
				var err error
				if proto == core.DATA {
					res, err = RunDataTransfer(setup, prp, opts.Size, seed)
				} else {
					res, err = RunTransfer(setup, proto, opts.Size, seed)
				}
				if err != nil {
					return nil, err
				}
				sample.Add(res.Throughput)
				if sample.MeetsRSETarget(opts.MinRuns, opts.RSETarget) {
					break
				}
			}
			rows = append(rows, Fig9Row{
				Setup:          setup.Name,
				RTT:            rtt,
				Proto:          proto,
				MeanThroughput: sample.Mean(),
				CI95:           sample.CI95(),
				Runs:           sample.N(),
			})
		}
	}
	return rows, nil
}
