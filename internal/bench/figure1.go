package bench

import (
	"math/rand"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/data"
	"github.com/kompics/kompicsmessaging-go/internal/stats"
)

// Figure 1 parameters from §IV-B2: on a 100 MB/s link with 10 ms delay and
// 65 kB messages, one 1-second episode holds ~1600 messages and ~16
// messages are on the wire concurrently; each dataset has ~160,000
// entries.
const (
	Fig1EpisodeWindow = 1600
	Fig1WireWindow    = 16
	Fig1Selections    = 160000
)

// Fig1Row is one box of figure 1: the distribution of observed selection
// balances for one (target, policy, window) combination.
type Fig1Row struct {
	// Target is the prescribed ratio.
	Target data.Ratio
	// Policy is "Random" or "Pattern".
	Policy string
	// Window is "Episode" (~1600 msgs) or "Wire" (16 msgs).
	Window string
	// Box summarises the sliding-window balance observations in the
	// figures' [−1, 1] form.
	Box stats.Box
}

// Figure1Targets returns the target ratios on the paper's x-axis
// (expressed as UDT fractions 0, 3/100, 1/3, 4/5).
func Figure1Targets() []data.Ratio {
	return []data.Ratio{
		data.PureTCP,
		data.MustRatio(3, 100),
		data.MustRatio(1, 3),
		data.MustRatio(4, 5),
	}
}

// Figure1 reproduces figure 1: for every target ratio it drives both
// selection policies for Fig1Selections messages and summarises the
// sliding-window observed balance over episode-sized and wire-sized
// windows.
func Figure1(seed int64) []Fig1Row {
	var rows []Fig1Row
	for _, target := range Figure1Targets() {
		policies := []struct {
			name string
			sel  data.ProtocolSelectionPolicy
		}{
			{"Random", data.NewRandomSelection(target, rand.New(rand.NewSource(seed)))},
			{"Pattern", data.NewPatternSelection(target)},
		}
		for _, p := range policies {
			selections := make([]bool, Fig1Selections) // true = UDT
			for i := range selections {
				selections[i] = p.sel.Select() == core.UDT
			}
			for _, w := range []struct {
				name string
				size int
			}{
				{"Episode", Fig1EpisodeWindow},
				{"Wire", Fig1WireWindow},
			} {
				rows = append(rows, Fig1Row{
					Target: target,
					Policy: p.name,
					Window: w.name,
					Box:    stats.NewBox(slidingBalances(selections, w.size)),
				})
			}
		}
	}
	return rows
}

// slidingBalances computes the observed balance (−1 = all TCP, +1 = all
// UDT) over every sliding window of the given size.
func slidingBalances(selections []bool, window int) []float64 {
	if window <= 0 || window > len(selections) {
		return nil
	}
	out := make([]float64, 0, len(selections)-window+1)
	udt := 0
	for i, s := range selections {
		if s {
			udt++
		}
		if i >= window {
			if selections[i-window] {
				udt--
			}
		}
		if i >= window-1 {
			out = append(out, 2*float64(udt)/float64(window)-1)
		}
	}
	return out
}
