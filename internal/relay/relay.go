// Package relay implements multi-hop message forwarding — the use case
// the paper's Header interface design explicitly enables (§III-A,
// listing 5): "messages that can be forwarded through multiple
// intermediary hosts, but finally replied to directly".
//
// A RoutedMsg carries a core.RoutingHeader whose route lists the
// remaining hops. Each Forwarder component advances the route and
// re-sends; the final receiver sees the original sender as the source and
// can reply directly, skipping the intermediaries. Every hop may use its
// own transport (the Transport field travels with the message), so a
// relay chain can mix TCP within datacentres and UDT between them.
package relay

import (
	"fmt"
	"io"

	"github.com/kompics/kompicsmessaging-go/internal/codec"
	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

// RoutedMsg is a payload message with a multi-hop route.
type RoutedMsg struct {
	// Hdr routes the message; its Route lists the remaining hops.
	Hdr core.RoutingHeader
	// Payload is the opaque application content.
	Payload []byte
}

var _ core.Msg = &RoutedMsg{}

// Header implements core.Msg.
func (m *RoutedMsg) Header() core.Header { return m.Hdr }

// Size returns the payload length.
func (m *RoutedMsg) Size() int { return len(m.Payload) }

// WithWireProtocol implements the DATA interceptor contract so routed
// messages can also ride the adaptive protocol.
func (m *RoutedMsg) WithWireProtocol(t core.Transport) core.Msg {
	dup := *m
	dup.Hdr.Base = m.Hdr.Base.WithProtocol(t)
	return &dup
}

// NewRoutedMsg builds a message from origin through hops (the last hop is
// the final destination) over proto.
func NewRoutedMsg(origin core.Address, hops []core.Address, proto core.Transport, payload []byte) (*RoutedMsg, error) {
	if len(hops) == 0 {
		return nil, fmt.Errorf("relay: a routed message needs at least one hop")
	}
	return &RoutedMsg{
		Hdr: core.RoutingHeader{
			Base:  core.BasicHeader{Src: origin, Dst: hops[0], Proto: proto},
			Route: &core.Route{Origin: origin, Hops: hops},
		},
		Payload: payload,
	}, nil
}

// SerializerID is the routed message's wire identifier (middleware
// range).
const SerializerID codec.SerializerID = 3

// MsgSerializer is the wire codec for RoutedMsg.
type MsgSerializer struct{}

var _ codec.Serializer = MsgSerializer{}

// ID implements codec.Serializer.
func (MsgSerializer) ID() codec.SerializerID { return SerializerID }

// Serialize implements codec.Serializer.
func (MsgSerializer) Serialize(w io.Writer, v interface{}) error {
	m, ok := v.(*RoutedMsg)
	if !ok {
		return fmt.Errorf("relay: MsgSerializer cannot encode %T", v)
	}
	if err := core.WriteBasicHeader(w, m.Hdr.Base); err != nil {
		return err
	}
	hops := 0
	var origin core.Address
	if m.Hdr.Route != nil {
		hops = len(m.Hdr.Route.Hops)
		origin = m.Hdr.Route.Origin
	}
	if err := codec.WriteUvarint(w, uint64(hops)); err != nil {
		return err
	}
	if hops > 0 {
		if err := core.WriteAddress(w, origin); err != nil {
			return err
		}
		for _, h := range m.Hdr.Route.Hops {
			if err := core.WriteAddress(w, h); err != nil {
				return err
			}
		}
	}
	return codec.WriteBytes(w, m.Payload)
}

// Deserialize implements codec.Serializer.
func (MsgSerializer) Deserialize(r io.Reader) (interface{}, error) {
	base, err := core.ReadBasicHeader(r)
	if err != nil {
		return nil, err
	}
	nHops, err := codec.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if nHops > 1024 {
		return nil, fmt.Errorf("relay: implausible hop count %d", nHops)
	}
	var route *core.Route
	if nHops > 0 {
		origin, err := core.ReadAddress(r)
		if err != nil {
			return nil, err
		}
		hops := make([]core.Address, 0, int(nHops))
		for i := 0; i < int(nHops); i++ {
			h, err := core.ReadAddress(r)
			if err != nil {
				return nil, err
			}
			hops = append(hops, h)
		}
		route = &core.Route{Origin: origin, Hops: hops}
	}
	payload, err := codec.ReadBytes(r)
	if err != nil {
		return nil, err
	}
	return &RoutedMsg{Hdr: core.RoutingHeader{Base: base, Route: route}, Payload: payload}, nil
}

// Register adds the relay serialiser to a registry.
func Register(reg *codec.Registry) error {
	return reg.Register(MsgSerializer{}, (*RoutedMsg)(nil))
}

// Forwarder relays routed messages that are not for this host: it
// advances the route and re-sends towards the next hop. Messages whose
// final hop is this host pass through untouched (the application behind
// the same network port handles them).
type Forwarder struct {
	self core.Address

	ctx     *kompics.Context
	netPort *kompics.Port

	// Forwarded counts relayed messages (observability).
	forwarded int
}

var _ kompics.Definition = (*Forwarder)(nil)

// NewForwarder builds a forwarder identified as self.
func NewForwarder(self core.Address) *Forwarder {
	return &Forwarder{self: self}
}

// NetPort returns the required network port for wiring.
func (f *Forwarder) NetPort() *kompics.Port { return f.netPort }

// Forwarded reports how many messages this node has relayed. Call after
// quiescence or from a connected component.
func (f *Forwarder) Forwarded() int { return f.forwarded }

// Init implements kompics.Definition.
func (f *Forwarder) Init(ctx *kompics.Context) {
	f.ctx = ctx
	f.netPort = ctx.Requires(core.NetworkPort)
	ctx.Subscribe(f.netPort, (*core.Msg)(nil), func(e kompics.Event) {
		m, ok := e.(*RoutedMsg)
		if !ok {
			return
		}
		f.onRouted(m)
	})
}

func (f *Forwarder) onRouted(m *RoutedMsg) {
	next, ok := m.Hdr.Advance()
	if !ok {
		// This host is the final destination; the application handles
		// the message (it sees it on the same broadcast port).
		return
	}
	// Only forward if the current hop actually addresses us — a
	// mis-routed message is dropped (at-most-once, §III-B).
	if !f.self.SameHostAs(m.Hdr.Destination()) {
		return
	}
	f.forwarded++
	f.ctx.Trigger(&RoutedMsg{Hdr: next, Payload: m.Payload}, f.netPort)
}
