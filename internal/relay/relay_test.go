package relay

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

func addr(s string) core.BasicAddress { return core.MustParseAddress(s) }

func TestNewRoutedMsgValidation(t *testing.T) {
	if _, err := NewRoutedMsg(addr("1.1.1.1:1"), nil, core.TCP, nil); err == nil {
		t.Fatal("empty route accepted")
	}
}

func TestRoutedMsgHeaderSemantics(t *testing.T) {
	origin := addr("10.0.0.1:1")
	hop := addr("10.0.0.2:2")
	final := addr("10.0.0.3:3")
	m, err := NewRoutedMsg(origin, []core.Address{hop, final}, core.UDT, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Header().Destination().SameHostAs(hop) {
		t.Fatal("first destination is not the first hop")
	}
	if !m.Header().Source().SameHostAs(origin) {
		t.Fatal("source is not the origin")
	}
	if m.Header().Protocol() != core.UDT || m.Size() != 1 {
		t.Fatal("header basics wrong")
	}
	m2 := m.WithWireProtocol(core.TCP)
	if m2.Header().Protocol() != core.TCP || m.Header().Protocol() != core.UDT {
		t.Fatal("WithWireProtocol broken")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	reg := core.NewRegistry()
	if err := Register(reg); err != nil {
		t.Fatal(err)
	}
	origin := addr("10.0.0.1:1")
	in, err := NewRoutedMsg(origin,
		[]core.Address{addr("10.0.0.2:2"), addr("10.0.0.3:3")},
		core.TCP, []byte("routed payload"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	v, err := reg.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := v.(*RoutedMsg)
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Fatal("payload corrupted")
	}
	if out.Hdr.Route == nil || len(out.Hdr.Route.Hops) != 2 {
		t.Fatalf("route corrupted: %+v", out.Hdr.Route)
	}
	if !out.Hdr.Route.Origin.SameHostAs(origin) {
		t.Fatal("origin corrupted")
	}
	if !out.Hdr.FinalDestination().SameHostAs(addr("10.0.0.3:3")) {
		t.Fatal("final destination corrupted")
	}
}

func TestSerializationNoRoute(t *testing.T) {
	reg := core.NewRegistry()
	if err := Register(reg); err != nil {
		t.Fatal(err)
	}
	in := &RoutedMsg{
		Hdr:     core.RoutingHeader{Base: core.NewHeader(addr("1.1.1.1:1"), addr("2.2.2.2:2"), core.TCP)},
		Payload: []byte("direct"),
	}
	var buf bytes.Buffer
	if err := reg.Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	v, err := reg.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v.(*RoutedMsg).Hdr.Route != nil {
		t.Fatal("phantom route appeared")
	}
}

func TestSerializerRejectsWrongType(t *testing.T) {
	var buf bytes.Buffer
	if err := (MsgSerializer{}).Serialize(&buf, 1); err == nil {
		t.Fatal("serialized an int")
	}
}

func TestPropertySerializationRoundTrip(t *testing.T) {
	reg := core.NewRegistry()
	if err := Register(reg); err != nil {
		t.Fatal(err)
	}
	f := func(payload []byte, hopPorts []uint16) bool {
		if len(hopPorts) == 0 {
			hopPorts = []uint16{1}
		}
		if len(hopPorts) > 16 {
			hopPorts = hopPorts[:16]
		}
		hops := make([]core.Address, len(hopPorts))
		for i, p := range hopPorts {
			hops[i] = core.NewAddress(net.IPv4(10, 0, 0, byte(i+2)), int(p))
		}
		in, err := NewRoutedMsg(addr("10.0.0.1:1"), hops, core.TCP, payload)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if reg.Encode(&buf, in) != nil {
			return false
		}
		v, err := reg.Decode(&buf)
		if err != nil {
			return false
		}
		out := v.(*RoutedMsg)
		if !bytes.Equal(out.Payload, payload) || len(out.Hdr.Route.Hops) != len(hops) {
			return false
		}
		for i := range hops {
			if !out.Hdr.Route.Hops[i].SameHostAs(hops[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- end-to-end: three real nodes, two hops, direct reply ----------------------

// relayApp is the application at each node: it records routed payloads
// and, when final receiver, replies directly to the origin.
type relayApp struct {
	self core.BasicAddress

	port *kompics.Port
	comp *kompics.Component

	mu       sync.Mutex
	received []*RoutedMsg
}

type appSend struct{ e kompics.Event }

func (a *relayApp) Init(ctx *kompics.Context) {
	a.comp = ctx.Component()
	a.port = ctx.Requires(core.NetworkPort)
	ctx.Subscribe(a.port, (*core.Msg)(nil), func(e kompics.Event) {
		m, ok := e.(*RoutedMsg)
		if !ok {
			return
		}
		// Only consume messages whose final hop is this node.
		if m.Hdr.Route != nil && m.Hdr.Route.HasNext() {
			return // a relay will handle it
		}
		if !a.self.SameHostAs(m.Hdr.Destination()) {
			return
		}
		a.mu.Lock()
		a.received = append(a.received, m)
		a.mu.Unlock()
		if string(m.Payload) != "reply" {
			// Reply DIRECTLY to the origin: no route, one hop.
			reply := &RoutedMsg{
				Hdr: core.RoutingHeader{
					Base: core.NewHeader(a.self, m.Hdr.Source(), core.TCP),
				},
				Payload: []byte("reply"),
			}
			ctx.Trigger(reply, a.port)
		}
	})
	ctx.SubscribeSelf(appSend{}, func(e kompics.Event) {
		ctx.Trigger(e.(appSend).e, a.port)
	})
}

func (a *relayApp) count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.received)
}

type relayNode struct {
	self core.BasicAddress
	sys  *kompics.System
	app  *relayApp
	fwd  *Forwarder
}

func startRelayNode(t *testing.T, port int) *relayNode {
	t.Helper()
	self := addr(fmt.Sprintf("127.0.0.1:%d", port))
	reg := core.NewRegistry()
	if err := Register(reg); err != nil {
		t.Fatal(err)
	}
	netDef, err := core.NewNetwork(core.NetworkConfig{Self: self, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	sys := kompics.NewSystem(kompics.WithFaultHandler(func(f *kompics.Fault) {
		t.Errorf("component fault: %v", f)
	}))
	t.Cleanup(sys.Shutdown)
	netComp := sys.Create(netDef)

	app := &relayApp{self: self}
	appComp := sys.Create(app)
	kompics.MustConnect(netDef.Port(), app.port)

	fwd := NewForwarder(self)
	fwdComp := sys.Create(fwd)
	kompics.MustConnect(netDef.Port(), fwd.NetPort())

	sys.Start(netComp)
	sys.Start(appComp)
	sys.Start(fwdComp)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && netDef.Addr(core.TCP) == "" {
		time.Sleep(time.Millisecond)
	}
	if netDef.Addr(core.TCP) == "" {
		t.Fatal("listeners did not come up")
	}
	return &relayNode{self: self, sys: sys, app: app, fwd: fwd}
}

func freeTestPort(t *testing.T) int {
	t.Helper()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for i := 0; i < 200; i++ {
		p := 20000 + 2*rng.Intn(20000)
		ok := true
		for _, d := range []int{0, 1} {
			l1, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", p+d))
			if err != nil {
				ok = false
				break
			}
			l1.Close()
			l2, err := net.ListenPacket("udp", fmt.Sprintf("127.0.0.1:%d", p+d))
			if err != nil {
				ok = false
				break
			}
			l2.Close()
		}
		if ok {
			return p
		}
	}
	t.Fatal("no free port")
	return 0
}

func TestMultiHopForwardingWithDirectReply(t *testing.T) {
	origin := startRelayNode(t, freeTestPort(t))
	relay1 := startRelayNode(t, freeTestPort(t))
	relay2 := startRelayNode(t, freeTestPort(t))
	final := startRelayNode(t, freeTestPort(t))

	msg, err := NewRoutedMsg(origin.self,
		[]core.Address{relay1.self, relay2.self, final.self},
		core.TCP, []byte("via two relays"))
	if err != nil {
		t.Fatal(err)
	}
	origin.app.comp.SelfTrigger(appSend{e: msg})

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && (final.app.count() == 0 || origin.app.count() == 0) {
		time.Sleep(2 * time.Millisecond)
	}
	t.Logf("counts: origin=%d relay1=%d relay2=%d final=%d fwd1=%d fwd2=%d",
		origin.app.count(), relay1.app.count(), relay2.app.count(), final.app.count(),
		relay1.fwd.Forwarded(), relay2.fwd.Forwarded())
	if final.app.count() != 1 {
		t.Fatal("final node did not receive the routed message")
	}
	if origin.app.count() != 1 {
		t.Fatal("origin did not receive the direct reply")
	}

	final.app.mu.Lock()
	got := final.app.received[0]
	final.app.mu.Unlock()
	if string(got.Payload) != "via two relays" {
		t.Fatalf("payload = %q", got.Payload)
	}
	// The final receiver must see the ORIGIN as source, not the last
	// relay — that is the point of the routing header.
	if !got.Hdr.Source().SameHostAs(origin.self) {
		t.Fatalf("source at final hop = %v, want origin %v", got.Hdr.Source(), origin.self)
	}

	// The reply went directly: the relays each forwarded exactly one
	// message (the outbound one).
	origin.sys.AwaitQuiescence()
	relay1.sys.AwaitQuiescence()
	relay2.sys.AwaitQuiescence()
	if relay1.fwd.Forwarded() != 1 || relay2.fwd.Forwarded() != 1 {
		t.Fatalf("relays forwarded %d/%d messages, want 1/1 (reply must go direct)",
			relay1.fwd.Forwarded(), relay2.fwd.Forwarded())
	}
	// Intermediate apps never consumed the routed message.
	if relay1.app.count() != 0 || relay2.app.count() != 0 {
		t.Fatal("intermediaries consumed a message meant for the final hop")
	}
}

func TestForwarderDropsMisroutedMessages(t *testing.T) {
	// White-box: a routed message whose current hop does not address
	// this host must be dropped (at-most-once), not forwarded.
	node := startRelayNode(t, freeTestPort(t))
	other := addr("127.0.0.9:9") // not us
	msg, err := NewRoutedMsg(addr("127.0.0.8:8"),
		[]core.Address{other, addr("127.0.0.7:7")},
		core.TCP, []byte("lost"))
	if err != nil {
		t.Fatal(err)
	}
	node.fwd.onRouted(msg) // as if it had arrived here by mistake
	if node.fwd.Forwarded() != 0 {
		t.Fatal("forwarder relayed a message not addressed to this host")
	}
}
