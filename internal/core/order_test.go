package core

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

// TestCodecStageOrderProperty is the per-peer FIFO + exactly-once-notify
// property test for the parallel codec stage: concurrent producers publish
// interleaved NotifyReqs to K peers through one Network, whose encode runs
// on several workers with a deliberately tight inflight bound (so both the
// pooled and the inline-saturation encode paths are exercised). Every peer
// must observe its stream in submission order, and every request ID must
// produce exactly one NotifyResp. Run under -race -count=3 in CI.
func TestCodecStageOrderProperty(t *testing.T) {
	const (
		peers   = 4
		perPeer = 150
	)
	ports := freePorts(t, peers+1)
	receivers := make([]*node, peers)
	for i := range receivers {
		receivers[i] = startNode(t, ports[i])
	}

	// Sender with a parallel stage wider than the single component thread
	// and an inflight bound far below the offered load.
	self := MustParseAddress(fmt.Sprintf("127.0.0.1:%d", ports[peers]))
	netDef, err := NewNetwork(NetworkConfig{
		Self:          self,
		CodecWorkers:  4,
		CodecInflight: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := kompics.NewSystem()
	t.Cleanup(sys.Shutdown)
	netComp := sys.Create(netDef)
	app := &appComponent{}
	appComp := sys.Create(app)
	kompics.MustConnect(netDef.Port(), app.net)
	sys.Start(netComp)
	sys.Start(appComp)
	waitFor(t, "sender listeners", func() bool { return netDef.Addr(TCP) != "" })

	// Two producers, two peers each: per-peer submission order is one
	// producer's program order, while the stage sees concurrent traffic.
	total := peers * perPeer
	for p := 0; p < peers/2; p++ {
		go func(p int) {
			rng := rand.New(rand.NewSource(int64(p)))
			mine := []int{2 * p, 2*p + 1}
			next := make(map[int]uint32)
			for n := 0; n < 2*perPeer; n++ {
				peer := mine[rng.Intn(len(mine))]
				if next[peer] == perPeer {
					peer = mine[0] + mine[1] - peer
				}
				seq := next[peer]
				next[peer]++
				payload := make([]byte, 32)
				binary.BigEndian.PutUint32(payload, seq)
				msg := &DataMsg{
					Hdr:     NewHeader(self, receivers[peer].self, TCP),
					Payload: payload,
				}
				id := uint64(peer)<<32 | uint64(seq)
				app.comp.SelfTrigger(sendReq{e: NotifyReq{ID: id, Msg: msg}})
			}
		}(p)
	}

	waitFor(t, "all notify responses", func() bool { return app.notifyCount() == total })
	// Exactly-once: no duplicate or unexpected IDs, every send succeeded.
	app.mu.Lock()
	seen := make(map[uint64]bool, total)
	for _, resp := range app.notifies {
		if seen[resp.ID] {
			app.mu.Unlock()
			t.Fatalf("duplicate NotifyResp for ID %#x", resp.ID)
		}
		seen[resp.ID] = true
		if !resp.Sent() {
			app.mu.Unlock()
			t.Fatalf("send %#x failed: %v", resp.ID, resp.Err)
		}
	}
	app.mu.Unlock()
	for peer := 0; peer < peers; peer++ {
		for seq := uint32(0); seq < perPeer; seq++ {
			if !seen[uint64(peer)<<32|uint64(seq)] {
				t.Fatalf("missing NotifyResp for peer %d seq %d", peer, seq)
			}
		}
	}

	deadline := time.Now().Add(15 * time.Second)
	for _, r := range receivers {
		for time.Now().Before(deadline) && r.app.receivedCount() < perPeer {
			time.Sleep(2 * time.Millisecond)
		}
	}
	for i, r := range receivers {
		r.app.mu.Lock()
		got := append([]*DataMsg(nil), r.app.received...)
		r.app.mu.Unlock()
		if len(got) != perPeer {
			t.Fatalf("peer %d received %d of %d messages", i, len(got), perPeer)
		}
		for j, m := range got {
			if s := binary.BigEndian.Uint32(m.Payload); s != uint32(j) {
				t.Fatalf("peer %d position %d: got seq %d, want %d — per-peer FIFO violated by codec stage", i, j, s, j)
			}
		}
	}
}
