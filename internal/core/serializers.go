package core

import (
	"fmt"
	"io"
	"net"

	"github.com/kompics/kompicsmessaging-go/internal/codec"
)

// Serializer IDs reserved by the middleware; applications should register
// their own serialisers at IDs ≥ 16.
const (
	// SerializerIDDataMsg identifies the built-in DataMsg serialiser.
	SerializerIDDataMsg codec.SerializerID = 1
	// FirstApplicationSerializerID is the lowest ID free for applications.
	FirstApplicationSerializerID codec.SerializerID = 16
)

// WriteAddress encodes an Address (IP, port) for wire headers.
func WriteAddress(w io.Writer, a Address) error {
	ip := a.IP().To16()
	if ip == nil {
		return fmt.Errorf("core: address %v has no IP form", a)
	}
	if err := codec.WriteBytes(w, ip); err != nil {
		return err
	}
	return codec.WriteUvarint(w, uint64(a.Port()))
}

// ReadAddress decodes an address written by WriteAddress.
func ReadAddress(r io.Reader) (BasicAddress, error) {
	ip, err := codec.ReadBytes(r)
	if err != nil {
		return BasicAddress{}, err
	}
	port, err := codec.ReadUvarint(r)
	if err != nil {
		return BasicAddress{}, err
	}
	if port > 65535 {
		return BasicAddress{}, fmt.Errorf("core: port %d out of range", port)
	}
	// ReadBytes already returned a private copy of the IP bytes, so the
	// defensive duplication in NewAddress would be a second allocation for
	// every decoded address.
	return BasicAddress{ip: net.IP(ip), port: int(port)}, nil
}

// qosFlag marks a header whose protocol field is followed by a QoS
// annotation. Transport values (1–4) fit in three bits, so bit 3 of the
// protocol uvarint is free: a zero-QoS header encodes byte-identically to
// the pre-QoS format, and a pre-QoS decoder reading an unflagged header
// sees exactly what it always saw — the annotation is strictly additive.
const qosFlag = 0x8

// WriteBasicHeader encodes a BasicHeader.
func WriteBasicHeader(w io.Writer, h BasicHeader) error {
	if err := WriteAddress(w, h.Src); err != nil {
		return err
	}
	if err := WriteAddress(w, h.Dst); err != nil {
		return err
	}
	if h.QoS.IsZero() {
		return codec.WriteUvarint(w, uint64(h.Proto))
	}
	if err := codec.WriteUvarint(w, uint64(h.Proto)|qosFlag); err != nil {
		return err
	}
	if err := codec.WriteUvarint(w, uint64(h.QoS.Class)); err != nil {
		return err
	}
	if err := codec.WriteString(w, h.QoS.Key); err != nil {
		return err
	}
	return codec.WriteVarint(w, h.QoS.Deadline)
}

// ReadBasicHeader decodes a header written by WriteBasicHeader.
func ReadBasicHeader(r io.Reader) (BasicHeader, error) {
	src, err := ReadAddress(r)
	if err != nil {
		return BasicHeader{}, err
	}
	dst, err := ReadAddress(r)
	if err != nil {
		return BasicHeader{}, err
	}
	proto, err := codec.ReadUvarint(r)
	if err != nil {
		return BasicHeader{}, err
	}
	h := BasicHeader{Src: src, Dst: dst, Proto: Transport(proto &^ qosFlag)}
	if !h.Proto.Valid() {
		return BasicHeader{}, fmt.Errorf("core: invalid transport %d on wire", proto&^qosFlag)
	}
	if proto&qosFlag == 0 {
		return h, nil
	}
	class, err := codec.ReadUvarint(r)
	if err != nil {
		return BasicHeader{}, err
	}
	if !QoSClass(class).Valid() {
		return BasicHeader{}, fmt.Errorf("core: invalid QoS class %d on wire", class)
	}
	key, err := codec.ReadString(r)
	if err != nil {
		return BasicHeader{}, err
	}
	deadline, err := codec.ReadVarint(r)
	if err != nil {
		return BasicHeader{}, err
	}
	h.QoS = QoS{Class: QoSClass(class), Key: key, Deadline: deadline}
	return h, nil
}

// DataMsgSerializer is the wire codec for DataMsg.
type DataMsgSerializer struct{}

var _ codec.Serializer = DataMsgSerializer{}

// ID implements codec.Serializer.
func (DataMsgSerializer) ID() codec.SerializerID { return SerializerIDDataMsg }

// Serialize implements codec.Serializer.
func (DataMsgSerializer) Serialize(w io.Writer, v interface{}) error {
	m, ok := v.(*DataMsg)
	if !ok {
		return fmt.Errorf("core: DataMsgSerializer cannot encode %T", v)
	}
	if err := WriteBasicHeader(w, m.Hdr); err != nil {
		return err
	}
	return codec.WriteBytes(w, m.Payload)
}

// Deserialize implements codec.Serializer.
func (DataMsgSerializer) Deserialize(r io.Reader) (interface{}, error) {
	hdr, err := ReadBasicHeader(r)
	if err != nil {
		return nil, err
	}
	payload, err := codec.ReadBytes(r)
	if err != nil {
		return nil, err
	}
	return &DataMsg{Hdr: hdr, Payload: payload}, nil
}

// NewRegistry returns a codec registry preloaded with the middleware's
// built-in serialisers.
func NewRegistry() *codec.Registry {
	var reg codec.Registry
	reg.MustRegister(DataMsgSerializer{}, (*DataMsg)(nil))
	return &reg
}
