package core

import (
	"context"
	"errors"
	"log/slog"
	"sync"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/clock"
	"github.com/kompics/kompicsmessaging-go/internal/transport"
)

// recordingHandler counts warn records and captures their attributes.
type recordingHandler struct {
	mu      sync.Mutex
	records []map[string]any
}

func (h *recordingHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *recordingHandler) Handle(_ context.Context, r slog.Record) error {
	attrs := map[string]any{}
	r.Attrs(func(a slog.Attr) bool {
		attrs[a.Key] = a.Value.Any()
		return true
	})
	h.mu.Lock()
	h.records = append(h.records, attrs)
	h.mu.Unlock()
	return nil
}
func (h *recordingHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *recordingHandler) WithGroup(string) slog.Handler      { return h }

func (h *recordingHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.records)
}

// TestNotifyWarnRateLimit drives Network.notify directly on a virtual
// clock: a flood of unsendable fire-and-forget messages must produce at
// most warnBurst log lines, and the next line after the clock advances
// must carry the suppressed count.
func TestNotifyWarnRateLimit(t *testing.T) {
	vclk := clock.NewVirtual()
	h := &recordingHandler{}
	netDef, err := NewNetwork(NetworkConfig{
		Self:      MustParseAddress("127.0.0.1:9"),
		Logger:    slog.New(h),
		Transport: transport.Config{Clock: vclk},
	})
	if err != nil {
		t.Fatal(err)
	}

	failure := errors.New("peer unreachable")
	const flood = 500
	for i := 0; i < flood; i++ {
		netDef.notify(0, false, failure)
	}
	if got := h.count(); got != warnBurst {
		t.Fatalf("flood of %d produced %d warn lines, want %d", flood, got, warnBurst)
	}

	// One refill interval buys exactly one more line, which must report
	// everything swallowed during the flood.
	vclk.Advance(time.Second)
	netDef.notify(0, false, failure)
	if got := h.count(); got != warnBurst+1 {
		t.Fatalf("after refill got %d lines, want %d", got, warnBurst+1)
	}
	h.mu.Lock()
	last := h.records[len(h.records)-1]
	h.mu.Unlock()
	if sup, _ := last["suppressed"].(int64); sup != flood-warnBurst {
		t.Fatalf("suppressed attr = %v, want %d", last["suppressed"], flood-warnBurst)
	}

	// Successes and notify-requested failures never consume the logger.
	netDef.notify(0, false, nil)
	if got := h.count(); got != warnBurst+1 {
		t.Fatalf("nil error logged: %d lines", got)
	}
}
