package core

// Hot-path micro-benchmarks: the encode → frame → decode round trip every
// remote message pays (§V of the paper measures the end-to-end effect; these
// isolate the middleware's own per-message overhead). Run via
//
//	make bench-hotpath
//
// which also regenerates BENCH_hotpath.json. The payload is incompressible
// (random) bytes, mirroring the paper's choice of incompressible data so
// the compression stage cannot flatter throughput.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
	"github.com/kompics/kompicsmessaging-go/internal/codec"
)

// benchWirePath drives one full round trip per iteration: serialise +
// compress (Network.encode), frame for a stream transport, unframe, then
// decompress + decode (Network.decodeWire). Buffer ownership follows the
// production contract: the frame writer releases the encoded payload after
// the write (as outChannel does) and decodeWire consumes the inbound
// buffer (as onWirePayload does).
func benchWirePath(b *testing.B, comp codec.Compressor, size int) {
	b.Helper()
	n, err := NewNetwork(NetworkConfig{
		Self:       MustParseAddress("10.0.0.1:1000"),
		Compressor: comp,
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(payload)
	msg := &DataMsg{
		Hdr: NewHeader(
			MustParseAddress("10.0.0.1:1000"),
			MustParseAddress("10.0.0.2:2000"),
			TCP,
		),
		Payload: payload,
	}

	var frame bytes.Buffer
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, err := n.encode(msg)
		if err != nil {
			b.Fatal(err)
		}
		frame.Reset()
		if err := codec.WriteFrame(&frame, wire, 0); err != nil {
			b.Fatal(err)
		}
		bufpool.Put(wire) // the transport's release after a completed write
		inbound, err := codec.ReadFrame(&frame, 0)
		if err != nil {
			b.Fatal(err)
		}
		got, err := n.decodeWire(inbound)
		if err != nil {
			b.Fatal(err)
		}
		if got.(*DataMsg).Payload[size-1] != payload[size-1] {
			b.Fatal("payload corrupted in round trip")
		}
	}
}

// BenchmarkWirePathEncodeFrameDecode measures the full codec round trip
// with the compression stage disabled (framing + serialisation only).
func BenchmarkWirePathEncodeFrameDecode(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("noop/%dB", size), func(b *testing.B) {
			benchWirePath(b, codec.Noop{}, size)
		})
	}
}

// BenchmarkWirePathEncodeFrameDecodeFlate measures the same round trip with
// the default-on DEFLATE stage (incompressible payload: the compressor runs
// but its output is discarded in favour of the raw bytes, the paper's worst
// case).
func BenchmarkWirePathEncodeFrameDecodeFlate(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("flate/%dB", size), func(b *testing.B) {
			benchWirePath(b, codec.NewFlate(-1), size)
		})
	}
}
