package core

import (
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/kompics"
	"github.com/kompics/kompicsmessaging-go/internal/transport"
)

// NetworkStatusPort is the connection-supervision port provided by
// Network next to NetworkPort: applications that require it observe
// channel lifecycle (up, down, redial-with-backoff, transport fallback)
// instead of discovering outages through failed notifies. Addresses in
// the events are wire-level "host:port" destinations as transport sees
// them — for UDT channels that includes the UDTPortOffset shift.
var NetworkStatusPort = kompics.NewPortType("NetworkStatus").
	Indication(ChannelUp{}).
	Indication(ChannelDown{}).
	Indication(ChannelRetry{}).
	Indication(TransportFallback{})

// Status events carry At, the instant the transport emitted them, read
// from the endpoint's injectable clock — so a consumer measures per-peer
// recovery latency (ChannelDown.At → ChannelUp.At) without ever reading
// the wall clock, and tests on a virtual clock get exact arithmetic: the
// gap equals precisely the backoff delays the test advanced through.

// ChannelUp reports an outgoing channel established (first dial or a
// successful redial).
type ChannelUp struct {
	Proto Transport
	Dest  string
	At    time.Time
}

// ChannelDown reports an outgoing channel losing its connection. If
// redial attempts remain, a ChannelRetry follows; otherwise the channel
// is gone and its queued sends have failed.
type ChannelDown struct {
	Proto Transport
	Dest  string
	At    time.Time
	Err   error
}

// ChannelRetry reports a failed dial attempt (1-based) and the backoff
// delay before the next one.
type ChannelRetry struct {
	Proto     Transport
	Dest      string
	Attempt   int
	NextDelay time.Duration
	At        time.Time
	Err       error
}

// TransportFallback reports graceful degradation: dial attempts over
// From (UDT) were exhausted and the channel's traffic — queued and
// future — moved to To (TCP) at ToDest.
type TransportFallback struct {
	From   Transport
	To     Transport
	Dest   string
	ToDest string
	At     time.Time
	Err    error
}

// statusInbound carries a transport status event into component context.
type statusInbound struct{ ev transport.StatusEvent }

// StatusPort returns the provided NetworkStatusPort, for wiring after
// Create.
func (n *Network) StatusPort() *kompics.Port { return n.statusPort }

// publishStatus maps a transport supervision event to its port
// indication. Runs in component context.
func (n *Network) publishStatus(ev transport.StatusEvent) {
	n.countStatus(ev.Kind)
	switch ev.Kind {
	case transport.StatusUp:
		n.ctx.Trigger(ChannelUp{Proto: ev.Proto, Dest: ev.Dest, At: ev.At}, n.statusPort)
	case transport.StatusDown:
		n.ctx.Trigger(ChannelDown{Proto: ev.Proto, Dest: ev.Dest, At: ev.At, Err: ev.Err}, n.statusPort)
	case transport.StatusRetry:
		n.ctx.Trigger(ChannelRetry{
			Proto: ev.Proto, Dest: ev.Dest,
			Attempt: ev.Attempt, NextDelay: ev.NextDelay, At: ev.At, Err: ev.Err,
		}, n.statusPort)
	case transport.StatusFallback:
		n.ctx.Trigger(TransportFallback{
			From: ev.Proto, To: ev.To,
			Dest: ev.Dest, ToDest: ev.ToDest, At: ev.At, Err: ev.Err,
		}, n.statusPort)
	}
}
