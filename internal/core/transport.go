package core

import "github.com/kompics/kompicsmessaging-go/internal/wire"

// Transport re-exports wire.Transport: the per-message protocol selector.
// It lives in the leaf package wire so the transport layer can share the
// type without an import cycle; all middleware code uses core.Transport.
type Transport = wire.Transport

// Supported transports (see wire package for semantics).
const (
	UDP  = wire.UDP
	TCP  = wire.TCP
	UDT  = wire.UDT
	DATA = wire.DATA
)
