package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

// coreLeakCheck arms bufpool's debug accounting and asserts at teardown
// that every pooled buffer taken on the wire path came back. Registered
// before the nodes' own Cleanups so that (LIFO) the assertion runs after
// their systems have shut down and the decode stages drained.
func coreLeakCheck(t *testing.T) {
	t.Helper()
	bufpool.ResetStats()
	bufpool.SetDebug(true)
	t.Cleanup(func() {
		bufpool.SetDebug(false)
		if n := bufpool.Outstanding(); n != 0 {
			t.Errorf("bufpool leak: %d buffer(s) outstanding after shutdown", n)
		}
	})
}

// startDecodeNode builds a receiver whose decode stage runs several
// workers against a deliberately tight inflight bound, so both the
// pooled and the inline-saturation decode paths are exercised.
func startDecodeNode(t *testing.T, port int) *node {
	t.Helper()
	self := MustParseAddress(fmt.Sprintf("127.0.0.1:%d", port))
	netDef, err := NewNetwork(NetworkConfig{
		Self:           self,
		DecodeWorkers:  4,
		DecodeInflight: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := kompics.NewSystem()
	t.Cleanup(sys.Shutdown)
	netComp := sys.Create(netDef)
	app := &appComponent{}
	appComp := sys.Create(app)
	kompics.MustConnect(netDef.Port(), app.net)
	sys.Start(netComp)
	sys.Start(appComp)
	waitFor(t, "receiver listeners", func() bool { return netDef.Addr(TCP) != "" })
	return &node{self: self, sys: sys, net: netDef, netComp: netComp, app: app}
}

// decodePayload builds a compressible payload (so flate survives encode
// and the decode workers actually decompress) carrying seq in its first
// four bytes.
func decodePayload(seq uint32) []byte {
	p := bytes.Repeat([]byte("inbound fan-in payload "), 12)[:256]
	binary.BigEndian.PutUint32(p, seq)
	return p
}

// TestDecodeStageRecvOrderProperty is the per-peer FIFO property test for
// the parallel decode stage: N sender nodes blast interleaved messages at
// ONE receiver whose decode runs on 4 workers behind an inflight bound of
// 8. Every sender's stream must reach the receiving application in
// submission order even though frames decode concurrently and out of
// order, and (coreLeakCheck) no pooled buffer may leak across the
// transport→stage→component handoff. Run under -race -count=3 in CI.
func TestDecodeStageRecvOrderProperty(t *testing.T) {
	coreLeakCheck(t)
	const (
		senders = 4
		perPeer = 150
	)
	ports := freePorts(t, senders+1)
	recv := startDecodeNode(t, ports[senders])
	nodes := make([]*node, senders)
	for i := range nodes {
		nodes[i] = startNode(t, ports[i])
	}

	for i, n := range nodes {
		go func(i int, n *node) {
			for seq := uint32(0); seq < perPeer; seq++ {
				msg := &DataMsg{
					Hdr:     NewHeader(n.self, recv.self, TCP),
					Payload: decodePayload(seq),
				}
				n.appTrigger(msg)
			}
		}(i, n)
	}

	waitFor(t, "all fan-in deliveries", func() bool {
		return recv.app.receivedCount() == senders*perPeer
	})
	recv.app.mu.Lock()
	got := append([]*DataMsg(nil), recv.app.received...)
	recv.app.mu.Unlock()

	bySource := make(map[string][]uint32)
	for _, m := range got {
		src := m.Hdr.Source().AsSocket()
		bySource[src] = append(bySource[src], binary.BigEndian.Uint32(m.Payload))
	}
	if len(bySource) != senders {
		t.Fatalf("received from %d sources, want %d", len(bySource), senders)
	}
	for src, seqs := range bySource {
		if len(seqs) != perPeer {
			t.Fatalf("source %s delivered %d of %d messages — at-most-once or loss violated", src, len(seqs), perPeer)
		}
		for j, s := range seqs {
			if s != uint32(j) {
				t.Fatalf("source %s position %d: got seq %d, want %d — per-peer FIFO violated by decode stage", src, j, s, j)
			}
		}
	}
}

// TestDecodeStageDrainNoLeak shuts the receiver down in the middle of a
// fan-in: the decode stage must fail its undecoded backlog without
// leaking a single pooled buffer, and every sender-side notify must still
// resolve exactly once (delivered or failed). The leak assertion runs
// after both systems are down.
func TestDecodeStageDrainNoLeak(t *testing.T) {
	coreLeakCheck(t)
	const perPeer = 400
	ports := freePorts(t, 2)
	recv := startDecodeNode(t, ports[1])
	sender := startNode(t, ports[0])

	go func() {
		for seq := uint32(0); seq < perPeer; seq++ {
			msg := &DataMsg{
				Hdr:     NewHeader(sender.self, recv.self, TCP),
				Payload: decodePayload(seq),
			}
			sender.appTrigger(NotifyReq{ID: uint64(seq), Msg: msg})
		}
	}()

	// Kill the receiver once the stream is demonstrably flowing; frames
	// already submitted to its decode stage become the drained backlog.
	waitFor(t, "mid-stream traffic", func() bool { return recv.app.receivedCount() >= perPeer/8 })
	recv.sys.Shutdown()

	// Exactly-once on the sender side: every NotifyReq resolves even
	// though the peer died mid-stream.
	waitFor(t, "all notifies resolved", func() bool {
		return sender.app.notifyCount() == perPeer
	})
	sender.app.mu.Lock()
	seen := make(map[uint64]bool, perPeer)
	for _, resp := range sender.app.notifies {
		if seen[resp.ID] {
			sender.app.mu.Unlock()
			t.Fatalf("duplicate NotifyResp for ID %d", resp.ID)
		}
		seen[resp.ID] = true
	}
	sender.app.mu.Unlock()

	// The delivered prefix is still in order.
	recv.app.mu.Lock()
	got := append([]*DataMsg(nil), recv.app.received...)
	recv.app.mu.Unlock()
	for j, m := range got {
		if s := binary.BigEndian.Uint32(m.Payload); s != uint32(j) {
			t.Fatalf("position %d: got seq %d, want %d — delivered prefix out of order", j, s, j)
		}
	}
	sender.sys.Shutdown()
	// Give lingering transport goroutines (failed redials) a moment to
	// release their buffers before the cleanup assertion runs.
	time.Sleep(50 * time.Millisecond)
}
