package core

import (
	"bytes"
	"strings"
	"testing"

	"github.com/kompics/kompicsmessaging-go/internal/codec"
)

func qosHeader(q QoS) BasicHeader {
	return NewHeader(MustParseAddress("1.1.1.1:1"), MustParseAddress("2.2.2.2:2"), TCP).WithQoS(q)
}

func TestQoSHeaderRoundtrip(t *testing.T) {
	cases := []QoS{
		{},
		{Class: ClassControl},
		{Class: ClassTelemetry, Key: "sensor7"},
		{Key: "reliable-but-keyed"},
		{Class: ClassTelemetry, Key: "s", Deadline: 1_234_567_890},
		{Deadline: -5}, // varint: sign survives
	}
	for _, q := range cases {
		in := qosHeader(q)
		var buf bytes.Buffer
		if err := WriteBasicHeader(&buf, in); err != nil {
			t.Fatalf("%+v: %v", q, err)
		}
		out, err := ReadBasicHeader(&buf)
		if err != nil {
			t.Fatalf("%+v: %v", q, err)
		}
		if out.QoS != q {
			t.Fatalf("QoS roundtrip %+v -> %+v", q, out.QoS)
		}
		if out.Proto != TCP || !out.Src.SameHostAs(in.Src) || !out.Dst.SameHostAs(in.Dst) {
			t.Fatalf("header corrupted alongside QoS %+v", q)
		}
		if buf.Len() != 0 {
			t.Fatalf("%+v: %d undecoded bytes", q, buf.Len())
		}
	}
}

// TestQoSHeaderBackwardCompat pins the wire compatibility guarantee: a
// header without QoS encodes byte-identically to the pre-QoS format, so
// old decoders read new zero-QoS traffic and new decoders read old
// traffic (seeing zero QoS).
func TestQoSHeaderBackwardCompat(t *testing.T) {
	h := qosHeader(QoS{})

	var legacy bytes.Buffer // the pre-QoS encoding: src, dst, proto uvarint
	if err := WriteAddress(&legacy, h.Src); err != nil {
		t.Fatal(err)
	}
	if err := WriteAddress(&legacy, h.Dst); err != nil {
		t.Fatal(err)
	}
	if err := codec.WriteUvarint(&legacy, uint64(h.Proto)); err != nil {
		t.Fatal(err)
	}

	var now bytes.Buffer
	if err := WriteBasicHeader(&now, h); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(now.Bytes(), legacy.Bytes()) {
		t.Fatalf("zero-QoS header encoding changed:\n new: %x\n old: %x", now.Bytes(), legacy.Bytes())
	}

	out, err := ReadBasicHeader(bytes.NewReader(legacy.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !out.QoS.IsZero() {
		t.Fatalf("legacy header decoded with QoS %+v", out.QoS)
	}

	// An annotated header must still decode to the same addresses/proto.
	annotated := qosHeader(QoS{Class: ClassTelemetry, Key: "k"})
	var abuf bytes.Buffer
	if err := WriteBasicHeader(&abuf, annotated); err != nil {
		t.Fatal(err)
	}
	if abuf.Len() <= legacy.Len() {
		t.Fatal("annotated header not longer than legacy encoding — flag bit lost?")
	}
}

func TestQoSHeaderRejectsInvalidClass(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBasicHeader(&buf, qosHeader(QoS{Class: ClassControl, Key: "k"})); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Layout: ...addresses..., proto|flag, class, key, deadline. The class
	// byte sits right after the flagged proto byte; clobber it.
	idx := len(raw) - (1 + 1 + len("k") + 1) // class, key len, key bytes, deadline
	raw[idx] = 0x7
	if _, err := ReadBasicHeader(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "QoS class") {
		t.Fatalf("accepted invalid QoS class from wire: %v", err)
	}
}

// bareHeader is a Header that is not a QoSCarrier: pre-QoS application
// header types keep working and read as zero QoS.
type bareHeader struct{ src, dst Address }

func (h bareHeader) Source() Address      { return h.src }
func (h bareHeader) Destination() Address { return h.dst }
func (h bareHeader) Protocol() Transport  { return TCP }

func TestQoSHeaderCarrier(t *testing.T) {
	q := QoS{Class: ClassTelemetry, Key: "k", Deadline: 9}
	h := qosHeader(q)
	if got := HeaderQoS(h); got != q {
		t.Fatalf("HeaderQoS(BasicHeader) = %+v, want %+v", got, q)
	}
	r := RoutingHeader{Base: h}
	if got := HeaderQoS(r); got != q {
		t.Fatalf("HeaderQoS(RoutingHeader) = %+v, want %+v", got, q)
	}
	if got := HeaderQoS(bareHeader{src: h.Src, dst: h.Dst}); !got.IsZero() {
		t.Fatalf("HeaderQoS(non-carrier) = %+v, want zero", got)
	}
	msg := &DataMsg{Hdr: qosHeader(QoS{}), Payload: []byte("p")}
	annotated := msg.WithQoS(q)
	if got := HeaderQoS(annotated.Header()); got != q {
		t.Fatalf("DataMsg.WithQoS lost the annotation: %+v", got)
	}
	if !HeaderQoS(msg.Header()).IsZero() {
		t.Fatal("WithQoS mutated the original message")
	}
}
