package core

// The parallel codec stage lifts encode (serialise + optional compress) —
// the dominant per-message CPU cost on the send path — off the Network
// component's single thread onto a bounded worker pool, the same move the
// Kompics paper makes with multi-core component scheduling [5] and Netty
// with its multi-loop EventLoopGroup. Correctness constraints, preserved
// exactly:
//
//   - FIFO per peer: payloads reach Endpoint.Send in the order sendMsg
//     submitted them for that (protocol, destination) — a per-destination
//     sequencer holds each encoded result until every earlier message to
//     the same peer has been released. Different peers release
//     independently, so one slow encode never head-of-line-blocks the
//     fan-out.
//   - At-most-once notify: every submitted job resolves exactly once —
//     through Endpoint.Send's notify contract, through an encode error, or
//     through the stage failing its backlog on close.
//   - Buffer ownership: encode draws from bufpool; ownership passes to
//     Endpoint.Send on release, or the buffer is recycled here when the
//     release path dies first (endpoint stopped).
//
// Local same-host reflection never enters the stage: sendMsg keeps it
// synchronous on the component thread (§III-B).

import (
	"errors"
	"sync"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

// errNetworkStopped fails sends whose encode or release raced the network
// component stopping.
var errNetworkStopped = errors.New("core: network stopped")

// codecJob is one message's trip through the stage. A job is appended to
// its peer lane on the component thread, encoded on a worker (or inline
// when the stage is saturated), and released by whichever goroutine
// completes the lane's head.
type codecJob struct {
	msg   Msg
	proto Transport
	dest  string
	// qos is the message's annotation, extracted from the header on the
	// component thread and handed to the endpoint with the payload.
	qos  QoS
	id   uint64
	want bool
	lane *peerLane

	// Set under lane.mu when the encode (or failure) completes.
	payload []byte
	err     error
	done    bool
}

// peerLane is the per-destination sequencer: jobs in submission order,
// released from the head only when done. One lane exists per (protocol,
// destination) for the stage's lifetime, mirroring the transport's
// conservative channel retention.
type peerLane struct {
	mu sync.Mutex //kmlint:guarded
	// jobs is the pending FIFO; head release pops index 0 of the window
	// [next:]. The slice is compacted when fully drained.
	jobs []*codecJob
	// draining serialises release: exactly one goroutine pops ready heads
	// at a time, so ep.Send sees submission order even though workers
	// finish out of order.
	draining bool
}

// laneKey identifies a sequencer lane. dest is the final socket address
// (UDT port shift already applied by sendMsg).
type laneKey struct {
	proto Transport
	dest  string
}

// codecStage owns the worker pool and the lane table. One stage lives per
// Network start (like the Endpoint, it is single-use).
type codecStage struct {
	n     *Network
	pool  *kompics.WorkPool[*codecJob]
	limit int

	mu     sync.Mutex //kmlint:guarded
	lanes  map[laneKey]*peerLane
	closed bool
	// inflight counts submitted-but-unreleased jobs; at limit, encode
	// degrades to inline on the component thread (still sequenced), which
	// bounds the pool's queue without blocking the component.
	inflight int
}

func newCodecStage(n *Network, workers, limit int) *codecStage {
	st := &codecStage{
		n:     n,
		limit: limit,
		lanes: make(map[laneKey]*peerLane),
	}
	st.pool = kompics.NewWorkPool(workers, st.runJob)
	return st
}

// submit sequences one outgoing message. Called only from the Network
// component thread, so lane append order IS sendMsg order.
func (st *codecStage) submit(msg Msg, proto Transport, dest string, qos QoS, id uint64, want bool) {
	job := &codecJob{msg: msg, proto: proto, dest: dest, qos: qos, id: id, want: want}
	key := laneKey{proto: proto, dest: dest}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		st.n.notify(id, want, errNetworkStopped)
		return
	}
	lane := st.lanes[key]
	if lane == nil {
		lane = &peerLane{}
		st.lanes[key] = lane
	}
	saturated := st.inflight >= st.limit
	st.inflight++
	st.mu.Unlock()

	job.lane = lane
	lane.mu.Lock()
	lane.jobs = append(lane.jobs, job)
	lane.mu.Unlock()

	if saturated {
		// Backpressure: encode here on the component thread. The job still
		// rides the sequencer, so per-peer order holds even against
		// in-flight worker encodes for the same lane.
		st.runJob(job)
		return
	}
	if !st.pool.Submit(job) {
		st.finish(job, nil, errNetworkStopped)
	}
}

// runJob encodes one job and releases every ready lane head. It is the
// WorkPool run function (always requeue=false) and doubles as the inline
// saturation path.
func (st *codecStage) runJob(job *codecJob) bool {
	payload, err := st.n.encode(job.msg)
	st.finish(job, payload, err)
	return false
}

// finish marks a job resolved and drains its lane.
func (st *codecStage) finish(job *codecJob, payload []byte, err error) {
	lane := job.lane
	lane.mu.Lock()
	job.payload, job.err, job.done = payload, err, true
	lane.mu.Unlock()
	st.drain(lane)
}

// drain releases the lane's done head-run in submission order. The
// draining flag makes the release section single-threaded per lane without
// holding lane.mu across ep.Send.
func (st *codecStage) drain(lane *peerLane) {
	lane.mu.Lock()
	if lane.draining {
		lane.mu.Unlock()
		return
	}
	lane.draining = true
	for {
		var ready []*codecJob
		for len(lane.jobs) > 0 && lane.jobs[0].done {
			ready = append(ready, lane.jobs[0])
			lane.jobs = lane.jobs[1:]
		}
		if len(lane.jobs) == 0 && cap(lane.jobs) > 0 {
			lane.jobs = nil // unpin the drained backing array
		}
		if len(ready) == 0 {
			lane.draining = false
			lane.mu.Unlock()
			return
		}
		lane.mu.Unlock()
		for _, j := range ready {
			st.release(j)
		}
		lane.mu.Lock()
	}
}

// release resolves one sequenced job: hand the payload to the endpoint
// (ownership transfers; its notify fires exactly once), or surface the
// encode/shutdown error.
func (st *codecStage) release(j *codecJob) {
	n := st.n
	st.mu.Lock()
	st.inflight--
	st.mu.Unlock()
	if j.err != nil {
		n.notify(j.id, j.want, j.err)
		return
	}
	ep := n.endpoint()
	if ep == nil {
		bufpool.Put(j.payload)
		n.notify(j.id, j.want, errNetworkStopped)
		return
	}
	var cb func(error)
	if j.want {
		id := j.id
		cb = func(err error) { n.comp.SelfTrigger(sendOutcome{id: id, err: err}) }
	}
	ep.SendQoS(j.proto, j.dest, j.payload, j.qos, cb)
}

// close stops the workers and fails the unencoded backlog. Runs on the
// component thread (OnStop/OnKill) before the endpoint closes, so jobs
// already encoded still reach Endpoint.Send and fail through its ErrClosed
// path — exactly-once either way.
func (st *codecStage) close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	lanes := make([]*peerLane, 0, len(st.lanes))
	for _, l := range st.lanes {
		lanes = append(lanes, l)
	}
	st.mu.Unlock()

	// Workers finish their current encodes (marking jobs done) and exit;
	// queued-but-unstarted jobs stay pending in their lanes.
	st.pool.Close()
	for _, lane := range lanes {
		lane.mu.Lock()
		for _, j := range lane.jobs {
			if !j.done {
				j.err, j.done = errNetworkStopped, true
			}
		}
		lane.mu.Unlock()
		st.drain(lane)
	}
}
