package core

import (
	"sync"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/clock"
)

// Fire-and-forget sends (plain Msg, no NotifyReq) surface their failures
// only through the "dropping unsendable message" warn log. A dead peer
// under fan-out load produces one such failure per message, so the warn is
// throttled by a token bucket: warnBurst immediate logs, refilled at
// warnRefillPerSec. Suppressed occurrences are counted and reported on the
// next allowed log line, so the signal (and its magnitude) survives even
// when the individual lines do not.
const (
	warnBurst        = 10
	warnRefillPerSec = 1
)

// warnLimiter is a token bucket on the injectable clock (the same
// clock.Clock the transport's backoff uses, so netsim runs stay
// deterministic). Safe for concurrent use: notify runs on codec workers
// as well as the component thread.
type warnLimiter struct {
	clk clock.Clock

	// mu guards the bucket state: tokens and last, plus suppressed, the
	// count of denied logs since the last allowed one.
	mu         sync.Mutex
	tokens     float64
	last       time.Time
	suppressed int
}

func newWarnLimiter(clk clock.Clock) *warnLimiter {
	return &warnLimiter{clk: clk, tokens: warnBurst, last: clk.Now()}
}

// allow reports whether a log line may be emitted, and — when it may —
// how many lines were suppressed since the previous allowed one.
func (w *warnLimiter) allow() (ok bool, suppressed int) {
	now := w.clk.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if dt := now.Sub(w.last); dt > 0 {
		w.tokens = min(warnBurst, w.tokens+dt.Seconds()*warnRefillPerSec)
	}
	w.last = now
	if w.tokens < 1 {
		w.suppressed++
		return false, 0
	}
	w.tokens--
	suppressed = w.suppressed
	w.suppressed = 0
	return true, suppressed
}
