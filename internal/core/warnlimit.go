package core

// Fire-and-forget sends (plain Msg, no NotifyReq) surface their failures
// only through the "dropping unsendable message" warn log. A dead peer
// under fan-out load produces one such failure per message, so the warn is
// throttled by a stats.LogLimiter token bucket: warnBurst immediate logs,
// refilled at warnRefillPerSec. Suppressed occurrences are counted and
// reported on the next allowed log line, so the signal (and its magnitude)
// survives even when the individual lines do not. The transport layer's
// drop path throttles its own warn with the same limiter type.
const (
	warnBurst        = 10
	warnRefillPerSec = 1
)
