package core

import (
	"github.com/kompics/kompicsmessaging-go/internal/transport"
	"github.com/kompics/kompicsmessaging-go/internal/wire"
)

// Metrics wiring: when NetworkConfig.Metrics is set, the network feeds a
// stats.Registry with its supervision counters and live transport gauges.
// The registry never touches the transport; the gauges are snapshot-time
// reads through the endpoint's own accessors (QueueStats, InboundTotals),
// so the hot path pays nothing for being observable. Counter names,
// namespaced by MetricsPrefix:
//
//	status_up_total / status_down_total / status_retry_total /
//	status_fallback_total   — supervision transitions published
//	queue_channels / queue_depth / queue_max_depth — outgoing registry
//	drops_<class>_<reason> — queue-policy drops, class ∈ {reliable,
//	control, telemetry}, reason ∈ {full, coalesced, expired}
//	inbound_conns / inbound_frames / inbound_bytes / inbound_deaths
//
// The soak harness layers its own workload metrics (RTT histograms,
// recovery latency) on the same registry under per-node prefixes.

// registerMetrics installs the gauge functions; called once from Init.
// The closures resolve the endpoint at snapshot time, so they stay
// correct across component restarts (each OnStart swaps in a fresh
// endpoint) and report zeros while the network is stopped.
func (n *Network) registerMetrics() {
	reg := n.cfg.Metrics
	if reg == nil {
		return
	}
	pfx := n.cfg.MetricsPrefix
	queue := func(f func(transport.QueueTotals) int64) func() int64 {
		return func() int64 {
			ep := n.endpoint()
			if ep == nil {
				return 0
			}
			return f(ep.QueueStats())
		}
	}
	inbound := func(f func(transport.InboundSummary) int64) func() int64 {
		return func() int64 {
			ep := n.endpoint()
			if ep == nil {
				return 0
			}
			return f(ep.InboundTotals())
		}
	}
	reg.GaugeFunc(pfx+"queue_channels", queue(func(t transport.QueueTotals) int64 { return int64(t.Channels) }))
	reg.GaugeFunc(pfx+"queue_depth", queue(func(t transport.QueueTotals) int64 { return int64(t.Queued) }))
	reg.GaugeFunc(pfx+"queue_max_depth", queue(func(t transport.QueueTotals) int64 { return int64(t.MaxDepth) }))
	for class := QoSClass(0); class < wire.NumClasses; class++ {
		cls := class
		drops := func(f func(transport.PolicyDrops) uint64) func() int64 {
			return func() int64 {
				ep := n.endpoint()
				if ep == nil {
					return 0
				}
				return int64(f(ep.DropStats().PerClass[cls]))
			}
		}
		reg.GaugeFunc(pfx+"drops_"+cls.String()+"_full",
			drops(func(d transport.PolicyDrops) uint64 { return d.Full }))
		reg.GaugeFunc(pfx+"drops_"+cls.String()+"_coalesced",
			drops(func(d transport.PolicyDrops) uint64 { return d.Coalesced }))
		reg.GaugeFunc(pfx+"drops_"+cls.String()+"_expired",
			drops(func(d transport.PolicyDrops) uint64 { return d.Expired }))
	}
	reg.GaugeFunc(pfx+"inbound_conns", inbound(func(t transport.InboundSummary) int64 { return int64(t.Conns) }))
	reg.GaugeFunc(pfx+"inbound_frames", inbound(func(t transport.InboundSummary) int64 { return int64(t.Frames) }))
	reg.GaugeFunc(pfx+"inbound_bytes", inbound(func(t transport.InboundSummary) int64 { return int64(t.Bytes) }))
	reg.GaugeFunc(pfx+"inbound_deaths", inbound(func(t transport.InboundSummary) int64 { return int64(t.Deaths) }))
}

// countStatus charges one supervision transition to its counter.
func (n *Network) countStatus(kind transport.StatusKind) {
	reg := n.cfg.Metrics
	if reg == nil {
		return
	}
	name := "status_unknown_total"
	switch kind {
	case transport.StatusUp:
		name = "status_up_total"
	case transport.StatusDown:
		name = "status_down_total"
	case transport.StatusRetry:
		name = "status_retry_total"
	case transport.StatusFallback:
		name = "status_fallback_total"
	}
	reg.Counter(n.cfg.MetricsPrefix + name).Inc()
}

// QueueStats reports the live endpoint's outgoing-registry totals (zero
// while stopped) — the bounded-queue invariant's read side.
func (n *Network) QueueStats() transport.QueueTotals {
	ep := n.endpoint()
	if ep == nil {
		return transport.QueueTotals{}
	}
	return ep.QueueStats()
}

// DropStats reports the live endpoint's per-(class, reason) queue-policy
// drop counters (zero while stopped).
func (n *Network) DropStats() transport.DropTotals {
	ep := n.endpoint()
	if ep == nil {
		return transport.DropTotals{}
	}
	return ep.DropStats()
}

// InboundTotals reports the live endpoint's inbound-registry totals
// (zero while stopped).
func (n *Network) InboundTotals() transport.InboundSummary {
	ep := n.endpoint()
	if ep == nil {
		return transport.InboundSummary{}
	}
	return ep.InboundTotals()
}
