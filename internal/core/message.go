package core

import "fmt"

// Header carries a message's routing information (listing 3). Headers are
// interfaces so applications can choose implementations — add reply-to
// fields, multi-hop routes, vnode IDs — without runtime casts of a fixed
// class hierarchy.
type Header interface {
	// Source returns the sending endpoint.
	Source() Address
	// Destination returns the receiving endpoint.
	Destination() Address
	// Protocol returns the transport the message should travel over.
	Protocol() Transport
}

// Msg is the interface every network message implements (listing 2).
type Msg interface {
	// Header returns the message's header.
	Header() Header
}

// BasicHeader is the default Header implementation.
type BasicHeader struct {
	Src   Address
	Dst   Address
	Proto Transport
	// QoS optionally annotates the message for overload control (class,
	// latest-value key, deadline). The zero value keeps the pre-QoS
	// semantics and wire encoding.
	QoS QoS
}

var _ Header = BasicHeader{}
var _ QoSCarrier = BasicHeader{}

// NewHeader builds a BasicHeader.
func NewHeader(src, dst Address, proto Transport) BasicHeader {
	return BasicHeader{Src: src, Dst: dst, Proto: proto}
}

// Source implements Header.
func (h BasicHeader) Source() Address { return h.Src }

// Destination implements Header.
func (h BasicHeader) Destination() Address { return h.Dst }

// Protocol implements Header.
func (h BasicHeader) Protocol() Transport { return h.Proto }

// String implements fmt.Stringer.
func (h BasicHeader) String() string {
	return fmt.Sprintf("%v → %v over %v", h.Src, h.Dst, h.Proto)
}

// WithProtocol returns a copy of the header with a different transport.
// Headers are treated as immutable values; the DATA interceptor uses this
// to substitute the concrete protocol for Transport.DATA.
func (h BasicHeader) WithProtocol(t Transport) BasicHeader {
	h.Proto = t
	return h
}

// MessageQoS implements QoSCarrier.
func (h BasicHeader) MessageQoS() QoS { return h.QoS }

// WithQoS returns a copy of the header carrying the annotation.
func (h BasicHeader) WithQoS(q QoS) BasicHeader {
	h.QoS = q
	return h
}

// Route describes the remaining hops of a multi-hop message. Current is
// the hop being taken; the final element is the ultimate destination.
type Route struct {
	// Hops are the remaining intermediate and final destinations.
	Hops []Address
	// Origin is the original sender, preserved across hops so the final
	// receiver can reply directly.
	Origin Address
}

// HasNext reports whether at least one forwarding hop remains after the
// current one.
func (r *Route) HasNext() bool { return r != nil && len(r.Hops) > 1 }

// Next returns the route for the following hop.
func (r *Route) Next() *Route {
	if !r.HasNext() {
		return nil
	}
	return &Route{Hops: r.Hops[1:], Origin: r.Origin}
}

// RoutingHeader is a Header for messages forwarded through intermediary
// hosts but replied to directly (listing 5). While a route is present,
// Source reports the route origin and Destination the next hop; once the
// route is exhausted the base header's values apply.
type RoutingHeader struct {
	Base  BasicHeader
	Route *Route
}

var _ Header = RoutingHeader{}

// Source implements Header: the route origin when routed, else the base
// source.
func (h RoutingHeader) Source() Address {
	if h.Route != nil && h.Route.Origin != nil {
		return h.Route.Origin
	}
	return h.Base.Source()
}

// Destination implements Header: the next hop while one remains, else the
// base destination.
func (h RoutingHeader) Destination() Address {
	if h.Route != nil && len(h.Route.Hops) > 0 {
		return h.Route.Hops[0]
	}
	return h.Base.Destination()
}

// Protocol implements Header.
func (h RoutingHeader) Protocol() Transport { return h.Base.Protocol() }

// MessageQoS implements QoSCarrier: the annotation rides on the base
// header across every hop.
func (h RoutingHeader) MessageQoS() QoS { return h.Base.QoS }

// Advance returns the header for the next hop, or ok=false when the
// current hop is final.
func (h RoutingHeader) Advance() (RoutingHeader, bool) {
	if h.Route == nil || !h.Route.HasNext() {
		return RoutingHeader{}, false
	}
	return RoutingHeader{Base: h.Base, Route: h.Route.Next()}, true
}

// FinalDestination returns the ultimate receiver regardless of remaining
// hops.
func (h RoutingHeader) FinalDestination() Address {
	if h.Route != nil && len(h.Route.Hops) > 0 {
		return h.Route.Hops[len(h.Route.Hops)-1]
	}
	return h.Base.Destination()
}

// DataMsg is a ready-made Msg carrying an opaque payload. Applications
// with richer message types implement Msg themselves and register a codec
// serialiser.
type DataMsg struct {
	Hdr     BasicHeader
	Payload []byte
}

var _ Msg = &DataMsg{}

// Header implements Msg.
func (m *DataMsg) Header() Header { return m.Hdr }

// Size returns the payload length in bytes.
func (m *DataMsg) Size() int { return len(m.Payload) }

// WithWireProtocol returns a copy of the message stamped with a concrete
// transport. The DATA interceptor uses this to substitute TCP or UDT for
// Transport.DATA at release time; the payload is shared, not copied
// (messages are immutable by convention).
func (m *DataMsg) WithWireProtocol(t Transport) Msg {
	return &DataMsg{Hdr: m.Hdr.WithProtocol(t), Payload: m.Payload}
}

// WithQoS returns a copy of the message with its header annotated; the
// payload is shared, not copied.
func (m *DataMsg) WithQoS(q QoS) *DataMsg {
	return &DataMsg{Hdr: m.Hdr.WithQoS(q), Payload: m.Payload}
}
