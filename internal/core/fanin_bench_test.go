package core

// Fan-in benchmark for the component-level receive path: M sender
// Network components over loopback TCP all aimed at ONE receiver
// Network, with producer goroutines injecting into each sender's
// mailbox. Where the transport-level BenchmarkFaninReceive isolates the
// inbound registry and read loops, this one additionally covers the
// decode stage (decompress + decode) that runs on the receiver for
// every inbound frame. Run via
//
//	make bench-fanin
//
// Unlike the fan-out benchmark — whose payload is incompressible so
// flate cannot flatter *encode* throughput — the fan-in payload is
// compressible on purpose: an incompressible payload ships with the
// raw flag and the receiver never decompresses, which would make the
// flate case measure nothing. What the flate rows show is whether
// inbound decompress pipelines with socket reads, not codec ratios.
// The procs=N sub-name keeps GOMAXPROCS runs distinct in
// BENCH_fanin.json.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/codec"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

const faninMsgSize = 1 << 10

// faninPayload is compressible (repeating text) so the sender actually
// ships compressed frames and the receiver's decode path runs inflate.
func faninPayload() []byte {
	p := make([]byte, faninMsgSize)
	pattern := []byte("the quick brown fox jumps over the lazy dog; ")
	for i := range p {
		p[i] = pattern[i%len(pattern)]
	}
	return p
}

func benchFaninNetwork(b *testing.B, peers int, comp func() codec.Compressor) {
	b.Helper()
	var received atomic.Int64
	recvSys, _, recvAddr := benchFanoutNode(b, 1, comp(), &received)
	defer recvSys.Shutdown()
	dest := MustParseAddress(recvAddr)

	// One sender Network per peer, each with its own injection app.
	var wg sync.WaitGroup
	var errs atomic.Int64
	sem := make(chan struct{}, 64*runtime.GOMAXPROCS(0))
	apps := make([]*fanoutSendApp, peers)
	msgs := make([]*DataMsg, peers)
	payload := faninPayload()
	for i := 0; i < peers; i++ {
		self := MustParseAddress(fmt.Sprintf("127.0.0.1:%d", 1000+i))
		sendDef, err := NewNetwork(NetworkConfig{
			Self:       self,
			ListenAddr: "127.0.0.1:0",
			Protocols:  []Transport{TCP},
			Compressor: comp(),
		})
		if err != nil {
			b.Fatal(err)
		}
		sys := kompics.NewSystem()
		defer sys.Shutdown()
		netComp := sys.Create(sendDef)
		app := &fanoutSendApp{wg: &wg, sem: sem, errs: &errs}
		appComp := sys.Create(app)
		kompics.MustConnect(sendDef.Port(), app.net)
		sys.Start(netComp)
		sys.Start(appComp)
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) && sendDef.Addr(TCP) == "" {
			time.Sleep(time.Millisecond)
		}
		if sendDef.Addr(TCP) == "" {
			b.Fatal("sender network did not bind")
		}
		apps[i] = app
		msgs[i] = &DataMsg{Hdr: NewHeader(self, dest, TCP), Payload: payload}
	}

	var nextWorker, nextID atomic.Int64
	b.SetBytes(faninMsgSize)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Spread workers across sender nodes so every inbound connection
		// at the receiver carries traffic even when GOMAXPROCS < peers.
		i := int(nextWorker.Add(1))
		for pb.Next() {
			sem <- struct{}{}
			wg.Add(1)
			apps[i%peers].comp.SelfTrigger(fanoutSendReq{req: NotifyReq{
				ID:  uint64(nextID.Add(1)),
				Msg: msgs[i%peers],
			}})
			i++
		}
	})
	wg.Wait()
	if errs.Load() > 0 {
		b.Fatalf("%d sends failed", errs.Load())
	}
	deadline := time.Now().Add(30 * time.Second)
	for received.Load() < int64(b.N) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()
	if received.Load() < int64(b.N) {
		b.Fatalf("received %d of %d messages", received.Load(), b.N)
	}
}

// BenchmarkFaninReceiveNetwork measures component-level fan-in
// throughput (1 op = 1 message end to end: sender mailbox → encode →
// transport → receiver decode → delivery). GOMAXPROCS is set per
// sub-benchmark (instead of -cpu) so each level keeps a distinct name
// in BENCH_fanin.json.
func BenchmarkFaninReceiveNetwork(b *testing.B) {
	for _, tc := range []struct {
		name string
		comp func() codec.Compressor
	}{
		{"raw", func() codec.Compressor { return codec.Noop{} }},
		{"flate", func() codec.Compressor { return codec.NewFlate(-1) }},
	} {
		for _, procs := range fanoutProcs() {
			b.Run(fmt.Sprintf("peers=16/comp=%s/procs=%d", tc.name, procs), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				benchFaninNetwork(b, 16, tc.comp)
			})
		}
	}
}
