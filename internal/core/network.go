package core

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
	"github.com/kompics/kompicsmessaging-go/internal/clock"
	"github.com/kompics/kompicsmessaging-go/internal/codec"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
	"github.com/kompics/kompicsmessaging-go/internal/stats"
	"github.com/kompics/kompicsmessaging-go/internal/transport"
)

// NetworkPort is the Kompics network port (listing 1): messages travel in
// both directions, and senders may request delivery notifications.
var NetworkPort = kompics.NewPortType("Network").
	Request((*Msg)(nil)).
	Request(NotifyReq{}).
	Indication((*Msg)(nil)).
	Indication(NotifyResp{})

// NotifyReq asks the network to report a message's send status
// (MessageNotify.Req in the paper). ID correlates the response.
type NotifyReq struct {
	// ID is a caller-chosen correlation token.
	ID uint64
	// Msg is the message to send.
	Msg Msg
}

// NotifyResp reports the outcome of a NotifyReq (MessageNotify.Resp).
// A nil Err means the message was handed to the wire successfully —
// at-most-once semantics, not an end-to-end acknowledgement (§III-B).
type NotifyResp struct {
	// ID echoes the request's correlation token.
	ID uint64
	// Err is nil on success.
	Err error
}

// Sent reports whether the message was sent successfully.
func (r NotifyResp) Sent() bool { return r.Err == nil }

// ErrNoSerializer reports an outgoing message type with no registered
// serialiser.
var ErrNoSerializer = errors.New("core: no serializer registered for message")

// compressedFlag precedes every wire payload: 0 = raw, 1 = compressed.
const (
	wireRaw        byte = 0
	wireCompressed byte = 1
)

// NetworkConfig parameterises the Network component.
type NetworkConfig struct {
	// Self is this host's advertised address. Listeners bind to its
	// port on all interfaces unless ListenAddr overrides it.
	Self Address
	// ListenAddr optionally overrides the bind address ("host:port").
	ListenAddr string
	// Protocols enables listeners (default TCP, UDP, UDT).
	Protocols []Transport
	// Registry supplies message serialisers (default NewRegistry()).
	Registry *codec.Registry
	// Compressor wraps wire payloads (default flate, mirroring the
	// paper's default-on Snappy handler). Use codec.Noop to disable.
	Compressor codec.Compressor
	// UDTPortOffset is added to a destination address's port for UDT
	// traffic, matching the listener-side convention that UDT binds at
	// ListenAddr port + offset (default 1; raw UDP and UDT cannot share
	// one UDP port).
	UDTPortOffset int
	// CodecWorkers sizes the parallel encode stage that serialises and
	// compresses outgoing wire messages off the component thread (default
	// GOMAXPROCS). Per-peer send order is preserved regardless of the
	// worker count.
	CodecWorkers int
	// CodecInflight bounds encode jobs submitted but not yet handed to the
	// transport (default 256). At the bound the component thread encodes
	// inline instead of queueing further — backpressure, not blocking.
	CodecInflight int
	// DecodeWorkers sizes the parallel decode stage that decompresses and
	// decodes inbound wire payloads off the transport read goroutines
	// (default GOMAXPROCS). Per-(protocol, peer) arrival order is
	// preserved regardless of the worker count.
	DecodeWorkers int
	// DecodeInflight bounds inbound frames submitted but not yet released
	// to the component (default 256). At the bound the submitting read
	// goroutine decodes inline — backpressure confined to the saturating
	// connection.
	DecodeInflight int
	// Transport tunes the underlying endpoint (UDT config, frame limit).
	Transport transport.Config
	// Metrics, when set, receives this network's runtime metrics: status
	// transition counters and gauges over the transport's queue depths
	// and inbound registry. Several Network instances (one per node in a
	// soak run) may share one registry, distinguished by MetricsPrefix.
	Metrics *stats.Registry
	// MetricsPrefix namespaces this network's metric names (e.g.
	// "node0."). Empty is fine for a single network per registry.
	MetricsPrefix string
	// Logger receives diagnostics (default slog.Default()).
	Logger *slog.Logger
}

// Network is the middleware component bridging the Kompics runtime and the
// transport layer. It provides NetworkPort; apps connect a required
// NetworkPort to it.
//
// Messages whose destination is the local host are "reflected" back up
// without serialisation (§III-B); everything else is serialised,
// optionally compressed, and handed to the per-(destination, protocol)
// channel, created lazily on first use.
type Network struct {
	cfg        NetworkConfig
	tcfg       transport.Config
	port       *kompics.Port
	statusPort *kompics.Port
	ep         *transport.Endpoint
	comp       *kompics.Component
	ctx        *kompics.Context
	epsMu      sync.Mutex // guards ep swaps across restarts
	// stage is the parallel codec stage; accessed only on the component
	// thread (created in OnStart, torn down in OnStop/OnKill, consulted in
	// sendMsg), so it needs no lock of its own.
	stage *codecStage
	// dstage is the parallel decode stage. The field is touched only on
	// the component thread (OnStart/OnStop/OnKill); the hot path never
	// reads it — each Endpoint's OnMessage closure captures its own
	// stage, so inbound delivery is lock-free at the Network level and a
	// restart cannot race frames onto a stale stage.
	dstage *decodeStage
	// warnLimit throttles the dropping-unsendable-message warn.
	warnLimit *stats.LogLimiter
}

var _ kompics.Definition = (*Network)(nil)

// NewNetwork validates cfg and creates the component definition; hand it
// to kompics.System.Create.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.Self == nil {
		return nil, errors.New("core: NetworkConfig.Self is required")
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = cfg.Self.AsSocket()
	}
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	if cfg.Compressor == nil {
		cfg.Compressor = codec.NewFlate(-1)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.UDTPortOffset == 0 {
		cfg.UDTPortOffset = 1
	}
	if cfg.CodecWorkers <= 0 {
		cfg.CodecWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.CodecInflight <= 0 {
		cfg.CodecInflight = 256
	}
	if cfg.DecodeWorkers <= 0 {
		cfg.DecodeWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.DecodeInflight <= 0 {
		cfg.DecodeInflight = 256
	}
	if cfg.Transport.Clock == nil {
		cfg.Transport.Clock = clock.Real{}
	}
	return &Network{cfg: cfg, warnLimit: stats.NewLogLimiter(cfg.Transport.Clock, warnBurst, warnRefillPerSec)}, nil
}

// Port returns the provided network port, for wiring after Create.
func (n *Network) Port() *kompics.Port { return n.port }

// Addr reports the bound listener address for proto (useful with
// ephemeral ports in tests); empty when not listening.
func (n *Network) Addr(proto Transport) string {
	ep := n.endpoint()
	if ep == nil {
		return ""
	}
	return ep.Addr(proto)
}

func (n *Network) endpoint() *transport.Endpoint {
	n.epsMu.Lock()
	defer n.epsMu.Unlock()
	return n.ep
}

func (n *Network) setEndpoint(ep *transport.Endpoint) {
	n.epsMu.Lock()
	n.ep = ep
	n.epsMu.Unlock()
}

// inbound is the self-event carrying a received message into component
// context.
type inbound struct{ msg Msg }

// sendOutcome is the self-event carrying a transport notification back
// into component context.
type sendOutcome struct {
	id  uint64
	err error
}

// Init implements kompics.Definition.
func (n *Network) Init(ctx *kompics.Context) {
	n.ctx = ctx
	n.comp = ctx.Component()
	n.port = ctx.Provides(NetworkPort)
	n.statusPort = ctx.Provides(NetworkStatusPort)

	n.tcfg = n.cfg.Transport
	n.tcfg.ListenAddr = n.cfg.ListenAddr
	n.tcfg.UDTPortOffset = n.cfg.UDTPortOffset
	if len(n.cfg.Protocols) > 0 {
		n.tcfg.Protocols = n.cfg.Protocols
	}
	n.tcfg.Logger = n.cfg.Logger
	n.tcfg.OnMessage = n.onWirePayload
	// Supervision events are raised on transport goroutines; hop into
	// component context before publishing them on the status port.
	n.tcfg.OnStatus = func(ev transport.StatusEvent) {
		n.comp.SelfTrigger(statusInbound{ev: ev})
	}
	if _, err := transport.NewEndpoint(n.tcfg); err != nil {
		panic(fmt.Sprintf("core: invalid transport config: %v", err))
	}

	ctx.Subscribe(n.port, (*Msg)(nil), func(e kompics.Event) {
		n.sendMsg(e.(Msg), 0, false)
	})
	ctx.Subscribe(n.port, NotifyReq{}, func(e kompics.Event) {
		req := e.(NotifyReq)
		n.sendMsg(req.Msg, req.ID, true)
	})
	ctx.SubscribeSelf(inbound{}, func(e kompics.Event) {
		ctx.Trigger(e.(inbound).msg, n.port)
	})
	ctx.SubscribeSelf(sendOutcome{}, func(e kompics.Event) {
		o := e.(sendOutcome)
		ctx.Trigger(NotifyResp{ID: o.id, Err: o.err}, n.port)
	})
	ctx.SubscribeSelf(statusInbound{}, func(e kompics.Event) {
		n.publishStatus(e.(statusInbound).ev)
	})
	n.registerMetrics()

	// Endpoints are single-use: each Start builds a fresh one, so the
	// component can be stopped and restarted (listeners re-bind). The
	// decode stage is born with its endpoint: the OnMessage closure binds
	// inbound frames to exactly this start's stage, with no lock or
	// indirection on the per-frame path.
	ctx.OnStart(func() {
		dst := newDecodeStage(n, n.cfg.DecodeWorkers, n.cfg.DecodeInflight)
		tcfg := n.tcfg
		tcfg.OnMessage = dst.submit
		ep, err := transport.NewEndpoint(tcfg)
		if err != nil {
			panic(fmt.Sprintf("core: transport config: %v", err))
		}
		if err := ep.Start(); err != nil {
			dst.close()
			n.cfg.Logger.Error("core: network listeners failed", "err", err)
			panic(err) // faults the component; supervisors see it
		}
		n.setEndpoint(ep)
		n.dstage = dst
		n.stage = newCodecStage(n, n.cfg.CodecWorkers, n.cfg.CodecInflight)
	})
	stop := func() {
		// Codec stage first: its close waits for in-flight encodes, whose
		// releases still reach the live endpoint and resolve through its
		// notify contract; then the endpoint (read loops drain and exit);
		// the decode stage last, once no read loop can submit — it fails
		// the undecoded backlog and recycles its pooled buffers.
		if st := n.stage; st != nil {
			n.stage = nil
			st.close()
		}
		if ep := n.endpoint(); ep != nil {
			ep.Close()
		}
		if dst := n.dstage; dst != nil {
			n.dstage = nil
			dst.close()
		}
	}
	ctx.OnStop(stop)
	ctx.OnKill(stop)
}

// sendMsg routes one outgoing message: local reflection, or serialise +
// transport.
func (n *Network) sendMsg(msg Msg, notifyID uint64, wantNotify bool) {
	hdr := msg.Header()
	dst := hdr.Destination()
	if dst == nil {
		n.notify(notifyID, wantNotify, errors.New("core: message has no destination"))
		return
	}
	if n.cfg.Self.SameHostAs(dst) {
		// Local vnode communication: reflect without serialisation. The
		// receiver gets the same message instance — Kompics messages are
		// immutable by convention.
		n.ctx.Trigger(msg, n.port)
		n.notify(notifyID, wantNotify, nil)
		return
	}
	proto := hdr.Protocol()
	if !proto.Wire() {
		n.notify(notifyID, wantNotify,
			fmt.Errorf("core: cannot send %v message without a DATA interceptor", proto))
		return
	}
	dest := dst.AsSocket()
	if proto == UDT {
		shifted, err := transport.OffsetPort(dest, n.cfg.UDTPortOffset)
		if err != nil {
			n.notify(notifyID, wantNotify, err)
			return
		}
		dest = shifted
	}
	if n.stage == nil {
		n.notify(notifyID, wantNotify, errors.New("core: network not started"))
		return
	}
	// The stage encodes off the component thread and hands the payload to
	// Endpoint.SendQoS in per-(proto, dest) submission order, carrying the
	// header's QoS annotation to the transport's queue policy.
	n.stage.submit(msg, proto, dest, HeaderQoS(hdr), notifyID, wantNotify)
}

// notify resolves one send: a NotifyResp on the port when the sender
// asked for one, otherwise a rate-limited warn on failure (a dead peer
// under fan-out load fails every message; the token bucket keeps the
// logger out of the hot path while the suppressed count preserves the
// failure's magnitude). Callable from codec workers as well as the
// component thread — Trigger is goroutine-safe and the limiter locks.
func (n *Network) notify(id uint64, want bool, err error) {
	if !want {
		if err != nil {
			if ok, suppressed := n.warnLimit.Allow(); ok {
				if suppressed > 0 {
					n.cfg.Logger.Warn("core: dropping unsendable message",
						"err", err, "suppressed", suppressed)
				} else {
					n.cfg.Logger.Warn("core: dropping unsendable message", "err", err)
				}
			}
		}
		return
	}
	n.ctx.Trigger(NotifyResp{ID: id, Err: err}, n.port)
}

// encode serialises and optionally compresses a message into a buffer
// drawn from bufpool. Ownership of the returned slice passes to the
// caller — sendMsg hands it to transport.Send, which recycles it once the
// write outcome is decided.
func (n *Network) encode(msg Msg) ([]byte, error) {
	scratch := bufpool.GetBuffer()
	scratch.WriteByte(wireRaw)
	if err := n.cfg.Registry.Encode(scratch, msg); err != nil {
		bufpool.PutBuffer(scratch)
		return nil, fmt.Errorf("%w: %T (%v)", ErrNoSerializer, msg, err)
	}
	raw := scratch.Bytes()
	if _, isNoop := n.cfg.Compressor.(codec.Noop); !isNoop {
		if packed, ok := n.compress(raw); ok {
			bufpool.PutBuffer(scratch)
			return packed, nil
		}
	}
	// Ship raw: copy out of the pooled scratch so it can be recycled now.
	out := bufpool.Get(len(raw))
	copy(out, raw)
	bufpool.PutBuffer(scratch)
	return out, nil
}

// compress attempts to shrink an encoded payload (raw, including its
// leading flag byte). The compressed bytes are written in place after the
// wireCompressed flag in a pooled buffer — no prepend copy. ok=false means
// compression failed or did not help; ship raw.
func (n *Network) compress(raw []byte) ([]byte, bool) {
	ac, fast := n.cfg.Compressor.(codec.AppendCompressor)
	if !fast {
		packed, err := n.cfg.Compressor.Compress(raw[1:])
		if err != nil || len(packed)+1 >= len(raw) {
			return nil, false
		}
		out := bufpool.Get(len(packed) + 1)
		out[0] = wireCompressed
		copy(out[1:], packed)
		return out, true
	}
	dst := bufpool.Get(len(raw))[:1]
	dst[0] = wireCompressed
	out, err := ac.AppendCompress(dst, raw[1:])
	if err != nil || len(out) >= len(raw) {
		// Recycle whichever backing array we ended up with; if the
		// append outgrew dst, dst's original buffer was already dropped
		// by the compressor's internal append.
		if out != nil {
			bufpool.Put(out)
		} else {
			bufpool.Put(dst)
		}
		return nil, false
	}
	if &out[0] != &dst[0] {
		// The compressed form outgrew the initial buffer and was
		// reallocated; return the now-unused original to the pool.
		bufpool.Put(dst)
	}
	return out, true
}

// onWirePayload decodes one inbound frame inline and hands the message
// into component context. It is the stage-less fallback kept for the
// config the Init-time validation endpoint sees (and for fuzzing the
// decode path directly); live endpoints deliver through the decode
// stage's submit instead.
func (n *Network) onWirePayload(_ transport.From, payload []byte) {
	msg, err := n.decodeWire(payload)
	if err != nil {
		n.cfg.Logger.Warn("core: dropping inbound message", "err", err)
		return
	}
	if msg == nil {
		return
	}
	n.comp.SelfTrigger(inbound{msg: msg})
}

// wireReaderPool recycles the bytes.Reader each inbound decode reads
// through, instead of allocating one per message.
var wireReaderPool = sync.Pool{New: func() interface{} { return new(bytes.Reader) }}

// decodeWire decompresses and decodes one wire payload. A (nil, nil) return
// means an empty payload, which is silently ignored.
//
// Ownership: decodeWire consumes the buffer — this is the "core returns
// transport's pooled buffers after decode" half of the wire-path contract
// (serialisers copy what they keep, so nothing aliases the buffer once
// Decode returns).
func (n *Network) decodeWire(payload []byte) (Msg, error) {
	if len(payload) == 0 {
		bufpool.Put(payload)
		return nil, nil
	}
	body := payload[1:]
	if payload[0] == wireCompressed {
		raw, err := n.cfg.Compressor.Decompress(body)
		if err != nil {
			bufpool.Put(payload)
			return nil, fmt.Errorf("core: undecompressable message: %w", err)
		}
		if len(raw) == 0 || len(body) == 0 || &raw[0] != &body[0] {
			// Fresh buffer from the compressor (Flate draws from
			// bufpool): the wire buffer can be recycled immediately and
			// the decompressed one after decoding. A pass-through
			// compressor aliases body instead, keeping payload live.
			bufpool.Put(payload)
			payload = raw
		}
		body = raw
	}
	r := wireReaderPool.Get().(*bytes.Reader)
	r.Reset(body)
	v, err := n.cfg.Registry.Decode(r)
	r.Reset(nil)
	wireReaderPool.Put(r)
	bufpool.Put(payload)
	if err != nil {
		return nil, fmt.Errorf("core: undecodable message: %w", err)
	}
	msg, ok := v.(Msg)
	if !ok {
		return nil, fmt.Errorf("core: decoded value is not a Msg but %T", v)
	}
	return msg, nil
}
