package core

import (
	"bytes"
	"net"
	"testing"
	"testing/quick"
)

// --- Transport -----------------------------------------------------------------

func TestTransportStringAndPredicates(t *testing.T) {
	tests := []struct {
		tr    Transport
		str   string
		valid bool
		wire  bool
	}{
		{UDP, "UDP", true, true},
		{TCP, "TCP", true, true},
		{UDT, "UDT", true, true},
		{DATA, "DATA", true, false},
		{Transport(0), "Transport(0)", false, false},
		{Transport(9), "Transport(9)", false, false},
	}
	for _, tt := range tests {
		if got := tt.tr.String(); got != tt.str {
			t.Errorf("String() = %q, want %q", got, tt.str)
		}
		if got := tt.tr.Valid(); got != tt.valid {
			t.Errorf("%v.Valid() = %v", tt.tr, got)
		}
		if got := tt.tr.Wire(); got != tt.wire {
			t.Errorf("%v.Wire() = %v", tt.tr, got)
		}
	}
}

// --- Address ---------------------------------------------------------------------

func TestParseAddress(t *testing.T) {
	a, err := ParseAddress("127.0.0.1:8080")
	if err != nil {
		t.Fatal(err)
	}
	if a.Port() != 8080 || !a.IP().Equal(net.IPv4(127, 0, 0, 1)) {
		t.Fatalf("parsed %v", a)
	}
	if a.AsSocket() != "127.0.0.1:8080" {
		t.Fatalf("AsSocket() = %q", a.AsSocket())
	}
	if a.String() != a.AsSocket() || a.Key() != a.AsSocket() {
		t.Fatal("String/Key disagree with AsSocket")
	}
	if _, err := ParseAddress("nonsense"); err == nil {
		t.Fatal("parsed nonsense address")
	}
	if _, err := ParseAddress("1.2.3.4:99999"); err == nil {
		t.Fatal("parsed out-of-range port")
	}
}

func TestMustParseAddressPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseAddress did not panic")
		}
	}()
	MustParseAddress("bad")
}

func TestSameHostAs(t *testing.T) {
	a := MustParseAddress("10.0.0.1:100")
	b := MustParseAddress("10.0.0.1:100")
	c := MustParseAddress("10.0.0.1:101")
	d := MustParseAddress("10.0.0.2:100")
	if !a.SameHostAs(b) {
		t.Fatal("identical addresses not same host")
	}
	if a.SameHostAs(c) || a.SameHostAs(d) {
		t.Fatal("different addresses considered same host")
	}
	if a.SameHostAs(nil) {
		t.Fatal("nil considered same host")
	}
}

func TestAddressEqualIPv4vsIPv6Form(t *testing.T) {
	v4 := NewAddress(net.IPv4(1, 2, 3, 4), 9)
	v4in16 := NewAddress(net.IPv4(1, 2, 3, 4).To16(), 9)
	if !v4.Equal(v4in16) {
		t.Fatal("IPv4 in 4- and 16-byte form not equal")
	}
	if !v4.SameHostAs(v4in16) {
		t.Fatal("SameHostAs fails across IP forms")
	}
}

func TestNewAddressCopiesIP(t *testing.T) {
	ip := net.IPv4(9, 9, 9, 9)
	a := NewAddress(ip, 1)
	ip[len(ip)-1] = 8
	if a.IP().Equal(net.IPv4(9, 9, 9, 8)) {
		t.Fatal("NewAddress aliased the caller's IP slice")
	}
}

// --- headers ---------------------------------------------------------------------

func TestBasicHeader(t *testing.T) {
	src := MustParseAddress("10.0.0.1:1")
	dst := MustParseAddress("10.0.0.2:2")
	h := NewHeader(src, dst, TCP)
	if !h.Source().SameHostAs(src) || !h.Destination().SameHostAs(dst) {
		t.Fatal("header endpoints wrong")
	}
	if h.Protocol() != TCP {
		t.Fatal("protocol wrong")
	}
	h2 := h.WithProtocol(UDT)
	if h.Protocol() != TCP || h2.Protocol() != UDT {
		t.Fatal("WithProtocol must not mutate the original")
	}
	if h.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestRoutingHeaderDirectWhenNoRoute(t *testing.T) {
	src := MustParseAddress("10.0.0.1:1")
	dst := MustParseAddress("10.0.0.2:2")
	h := RoutingHeader{Base: NewHeader(src, dst, TCP)}
	if !h.Source().SameHostAs(src) || !h.Destination().SameHostAs(dst) {
		t.Fatal("routing header without route must behave like base")
	}
	if _, ok := h.Advance(); ok {
		t.Fatal("Advance succeeded without route")
	}
	if !h.FinalDestination().SameHostAs(dst) {
		t.Fatal("FinalDestination wrong")
	}
}

func TestRoutingHeaderMultiHop(t *testing.T) {
	origin := MustParseAddress("10.0.0.1:1")
	hop1 := MustParseAddress("10.0.0.2:2")
	hop2 := MustParseAddress("10.0.0.3:3")
	final := MustParseAddress("10.0.0.4:4")

	h := RoutingHeader{
		Base: NewHeader(origin, hop1, TCP),
		Route: &Route{
			Origin: origin,
			Hops:   []Address{hop1, hop2, final},
		},
	}
	// First hop: destination is hop1; source stays the origin so the
	// final receiver can reply directly (listing 5's replyTo idea).
	if !h.Destination().SameHostAs(hop1) {
		t.Fatalf("first destination = %v", h.Destination())
	}
	if !h.Source().SameHostAs(origin) {
		t.Fatalf("source = %v, want origin", h.Source())
	}
	if !h.FinalDestination().SameHostAs(final) {
		t.Fatal("final destination wrong")
	}

	h2, ok := h.Advance()
	if !ok {
		t.Fatal("Advance failed with hops remaining")
	}
	if !h2.Destination().SameHostAs(hop2) || !h2.Source().SameHostAs(origin) {
		t.Fatalf("second hop routing wrong: %v from %v", h2.Destination(), h2.Source())
	}
	h3, ok := h2.Advance()
	if !ok || !h3.Destination().SameHostAs(final) {
		t.Fatal("third hop routing wrong")
	}
	if _, ok := h3.Advance(); ok {
		t.Fatal("Advance past the final hop succeeded")
	}
}

func TestDataMsg(t *testing.T) {
	m := &DataMsg{
		Hdr:     NewHeader(MustParseAddress("1.1.1.1:1"), MustParseAddress("2.2.2.2:2"), UDP),
		Payload: []byte{1, 2, 3},
	}
	if m.Size() != 3 {
		t.Fatalf("Size() = %d", m.Size())
	}
	if m.Header().Protocol() != UDP {
		t.Fatal("header accessor broken")
	}
}

// --- serialisation ---------------------------------------------------------------

func TestAddressSerialization(t *testing.T) {
	for _, addr := range []string{"127.0.0.1:80", "[::1]:9000", "10.1.2.3:65535"} {
		a := MustParseAddress(addr)
		var buf bytes.Buffer
		if err := WriteAddress(&buf, a); err != nil {
			t.Fatalf("%s: %v", addr, err)
		}
		got, err := ReadAddress(&buf)
		if err != nil {
			t.Fatalf("%s: %v", addr, err)
		}
		if !got.SameHostAs(a) {
			t.Fatalf("%s round-tripped to %v", addr, got)
		}
	}
}

func TestReadAddressRejectsBadPort(t *testing.T) {
	var buf bytes.Buffer
	a := MustParseAddress("1.2.3.4:5")
	if err := WriteAddress(&buf, a); err != nil {
		t.Fatal(err)
	}
	// Manually write an oversized port.
	var bad bytes.Buffer
	bad.Write(buf.Bytes()[:1+16]) // length prefix + ip
	bad.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F})
	if _, err := ReadAddress(&bad); err == nil {
		t.Fatal("accepted port > 65535")
	}
}

func TestDataMsgSerialization(t *testing.T) {
	reg := NewRegistry()
	in := &DataMsg{
		Hdr:     NewHeader(MustParseAddress("10.0.0.1:100"), MustParseAddress("10.0.0.2:200"), UDT),
		Payload: bytes.Repeat([]byte{0xAB}, 1000),
	}
	var buf bytes.Buffer
	if err := reg.Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	v, err := reg.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := v.(*DataMsg)
	if !ok {
		t.Fatalf("decoded %T", v)
	}
	if !out.Hdr.Src.SameHostAs(in.Hdr.Src) || !out.Hdr.Dst.SameHostAs(in.Hdr.Dst) {
		t.Fatal("header corrupted")
	}
	if out.Hdr.Proto != UDT || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatal("message corrupted")
	}
}

func TestDataMsgSerializerRejectsWrongType(t *testing.T) {
	var buf bytes.Buffer
	if err := (DataMsgSerializer{}).Serialize(&buf, 42); err == nil {
		t.Fatal("serialized non-DataMsg")
	}
}

func TestHeaderSerializationRejectsInvalidTransport(t *testing.T) {
	var buf bytes.Buffer
	h := NewHeader(MustParseAddress("1.1.1.1:1"), MustParseAddress("2.2.2.2:2"), TCP)
	if err := WriteBasicHeader(&buf, h); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] = 0x7F // clobber the transport byte
	if _, err := ReadBasicHeader(bytes.NewReader(raw)); err == nil {
		t.Fatal("accepted invalid transport from wire")
	}
}

func TestPropertyDataMsgRoundTrip(t *testing.T) {
	reg := NewRegistry()
	f := func(payload []byte, srcPort, dstPort uint16, proto uint8) bool {
		tr := Transport(int(proto)%3 + 1) // UDP, TCP or UDT
		in := &DataMsg{
			Hdr: NewHeader(
				NewAddress(net.IPv4(1, 2, 3, 4), int(srcPort)),
				NewAddress(net.IPv4(5, 6, 7, 8), int(dstPort)),
				tr,
			),
			Payload: payload,
		}
		var buf bytes.Buffer
		if reg.Encode(&buf, in) != nil {
			return false
		}
		v, err := reg.Decode(&buf)
		if err != nil {
			return false
		}
		out := v.(*DataMsg)
		return out.Hdr.Proto == tr &&
			out.Hdr.Src.Port() == int(srcPort) &&
			out.Hdr.Dst.Port() == int(dstPort) &&
			bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
