package core

import "github.com/kompics/kompicsmessaging-go/internal/wire"

// QoS is the per-message quality-of-service annotation (see
// internal/wire): a traffic class, an optional latest-value-wins key, and
// an optional absolute deadline. It is declared in the leaf wire package
// so the transport's queue policies and the core message types share one
// definition; core re-exports it the way it re-exports Transport.
type QoS = wire.QoS

// QoSClass is a message's traffic class.
type QoSClass = wire.Class

// The QoS classes, re-exported from internal/wire.
const (
	// ClassReliable is the default: ordinary at-most-once messages.
	ClassReliable = wire.ClassReliable
	// ClassControl marks traffic that should be shed last.
	ClassControl = wire.ClassControl
	// ClassTelemetry marks value-of-update state where freshness beats
	// completeness.
	ClassTelemetry = wire.ClassTelemetry
)

// QoSCarrier is the optional Header extension for QoS-annotated
// messages. Like Header itself it is an interface, so applications with
// custom header types opt in by adding one method; headers that do not
// implement it get the zero QoS — exactly today's semantics.
type QoSCarrier interface {
	// MessageQoS returns the message's QoS annotation.
	MessageQoS() QoS
}

// HeaderQoS extracts h's QoS annotation, or the zero QoS when h does not
// carry one.
func HeaderQoS(h Header) QoS {
	if c, ok := h.(QoSCarrier); ok {
		return c.MessageQoS()
	}
	return QoS{}
}
