package core

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

// freePorts reserves n distinct even base ports whose +1 neighbour is also
// free, so TCP/UDP can use the base and UDT base+1.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	var out []int
	for attempts := 0; len(out) < n && attempts < 400; attempts++ {
		base := 20000 + 2*rng.Intn(20000)
		if portsFree(base) && portsFree(base+1) {
			out = append(out, base)
		}
	}
	if len(out) < n {
		t.Fatal("could not find free ports")
	}
	return out
}

func portsFree(p int) bool {
	tl, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", p))
	if err != nil {
		return false
	}
	tl.Close()
	ul, err := net.ListenPacket("udp", fmt.Sprintf("127.0.0.1:%d", p))
	if err != nil {
		return false
	}
	ul.Close()
	return true
}

// appComponent is a test application that records received messages and
// notify responses. Outgoing traffic is injected with SelfTrigger so that
// all port publishing happens in component context, as the model requires.
type appComponent struct {
	net  *kompics.Port
	comp *kompics.Component

	mu       sync.Mutex
	received []*DataMsg
	notifies []NotifyResp
}

// sendReq is the self-event asking the app component to publish e on its
// network port.
type sendReq struct{ e kompics.Event }

func (a *appComponent) Init(ctx *kompics.Context) {
	a.comp = ctx.Component()
	a.net = ctx.Requires(NetworkPort)
	ctx.Subscribe(a.net, (*Msg)(nil), func(e kompics.Event) {
		if m, ok := e.(*DataMsg); ok {
			a.mu.Lock()
			a.received = append(a.received, m)
			a.mu.Unlock()
		}
	})
	ctx.Subscribe(a.net, NotifyResp{}, func(e kompics.Event) {
		a.mu.Lock()
		a.notifies = append(a.notifies, e.(NotifyResp))
		a.mu.Unlock()
	})
	ctx.SubscribeSelf(sendReq{}, func(e kompics.Event) {
		ctx.Trigger(e.(sendReq).e, a.net)
	})
}

func (a *appComponent) receivedCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.received)
}

func (a *appComponent) notifyCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.notifies)
}

// node bundles one middleware instance.
type node struct {
	self    Address
	sys     *kompics.System
	net     *Network
	netComp *kompics.Component
	app     *appComponent
}

func startNode(t *testing.T, port int) *node {
	t.Helper()
	self := MustParseAddress(fmt.Sprintf("127.0.0.1:%d", port))
	netDef, err := NewNetwork(NetworkConfig{Self: self})
	if err != nil {
		t.Fatal(err)
	}
	sys := kompics.NewSystem()
	t.Cleanup(sys.Shutdown)
	netComp := sys.Create(netDef)
	app := &appComponent{}
	appComp := sys.Create(app)
	kompics.MustConnect(netDef.Port(), app.net)
	sys.Start(netComp)
	sys.Start(appComp)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && netDef.Addr(TCP) == "" {
		time.Sleep(time.Millisecond)
	}
	if netDef.Addr(TCP) == "" {
		t.Fatal("listeners did not come up")
	}
	return &node{self: self, sys: sys, net: netDef, netComp: netComp, app: app}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestNetworkConfigValidation(t *testing.T) {
	if _, err := NewNetwork(NetworkConfig{}); err == nil {
		t.Fatal("NewNetwork accepted nil Self")
	}
}

func TestNetworkEndToEndAllProtocols(t *testing.T) {
	ports := freePorts(t, 2)
	a := startNode(t, ports[0])
	b := startNode(t, ports[1])

	for i, proto := range []Transport{TCP, UDP, UDT} {
		msg := &DataMsg{
			Hdr:     NewHeader(a.self, b.self, proto),
			Payload: []byte("hello " + proto.String()),
		}
		want := i + 1
		// Trigger from the app component's required port.
		a.appTrigger(msg)
		waitFor(t, "delivery over "+proto.String(), func() bool {
			return b.app.receivedCount() >= want
		})
	}

	b.app.mu.Lock()
	defer b.app.mu.Unlock()
	for _, m := range b.app.received {
		if !m.Hdr.Src.SameHostAs(a.self) {
			t.Fatalf("message source = %v, want %v", m.Hdr.Src, a.self)
		}
	}
}

// appTrigger asks the app component to publish e on its network port.
func (n *node) appTrigger(e kompics.Event) {
	n.app.comp.SelfTrigger(sendReq{e: e})
}

func TestNetworkNotifySuccess(t *testing.T) {
	ports := freePorts(t, 2)
	a := startNode(t, ports[0])
	b := startNode(t, ports[1])

	msg := &DataMsg{Hdr: NewHeader(a.self, b.self, TCP), Payload: []byte("notify me")}
	a.appTrigger(NotifyReq{ID: 77, Msg: msg})
	waitFor(t, "notify response", func() bool { return a.app.notifyCount() == 1 })
	a.app.mu.Lock()
	resp := a.app.notifies[0]
	a.app.mu.Unlock()
	if resp.ID != 77 || !resp.Sent() {
		t.Fatalf("notify = %+v", resp)
	}
	waitFor(t, "delivery", func() bool { return b.app.receivedCount() == 1 })
}

func TestNetworkNotifyFailure(t *testing.T) {
	ports := freePorts(t, 1)
	a := startNode(t, ports[0])
	dead := MustParseAddress("127.0.0.1:1")
	msg := &DataMsg{Hdr: NewHeader(a.self, dead, TCP), Payload: []byte("x")}
	a.appTrigger(NotifyReq{ID: 5, Msg: msg})
	waitFor(t, "failure notify", func() bool { return a.app.notifyCount() == 1 })
	a.app.mu.Lock()
	resp := a.app.notifies[0]
	a.app.mu.Unlock()
	if resp.Sent() {
		t.Fatal("send to dead port reported success")
	}
}

func TestNetworkLocalReflection(t *testing.T) {
	ports := freePorts(t, 1)
	a := startNode(t, ports[0])
	payload := make([]byte, 8)
	msg := &DataMsg{Hdr: NewHeader(a.self, a.self, TCP), Payload: payload}
	a.appTrigger(NotifyReq{ID: 1, Msg: msg})
	waitFor(t, "reflected delivery", func() bool { return a.app.receivedCount() == 1 })
	waitFor(t, "reflected notify", func() bool { return a.app.notifyCount() == 1 })

	a.app.mu.Lock()
	defer a.app.mu.Unlock()
	// Reflection must not serialise: the exact same instance arrives.
	if &a.app.received[0].Payload[0] != &payload[0] {
		t.Fatal("reflected message was copied (serialised)")
	}
	if !a.app.notifies[0].Sent() {
		t.Fatal("reflection notify failed")
	}
}

func TestNetworkRejectsDataProtocolWithoutInterceptor(t *testing.T) {
	ports := freePorts(t, 2)
	a := startNode(t, ports[0])
	b := startNode(t, ports[1])
	msg := &DataMsg{Hdr: NewHeader(a.self, b.self, DATA), Payload: []byte("x")}
	a.appTrigger(NotifyReq{ID: 9, Msg: msg})
	waitFor(t, "notify", func() bool { return a.app.notifyCount() == 1 })
	a.app.mu.Lock()
	defer a.app.mu.Unlock()
	if a.app.notifies[0].Sent() {
		t.Fatal("DATA message sent without an interceptor")
	}
}

func TestNetworkManyMessagesFIFOOverTCP(t *testing.T) {
	ports := freePorts(t, 2)
	a := startNode(t, ports[0])
	b := startNode(t, ports[1])
	const n = 100
	for i := 0; i < n; i++ {
		a.appTrigger(&DataMsg{
			Hdr:     NewHeader(a.self, b.self, TCP),
			Payload: []byte{byte(i)},
		})
	}
	waitFor(t, "all messages", func() bool { return b.app.receivedCount() == n })
	b.app.mu.Lock()
	defer b.app.mu.Unlock()
	for i, m := range b.app.received {
		if m.Payload[0] != byte(i) {
			t.Fatalf("message %d out of order (payload %d)", i, m.Payload[0])
		}
	}
}

func TestNetworkLargeCompressibleMessage(t *testing.T) {
	ports := freePorts(t, 2)
	a := startNode(t, ports[0])
	b := startNode(t, ports[1])
	// 65 kB of compressible data exercises the flate path end to end.
	payload := make([]byte, 65<<10)
	for i := range payload {
		payload[i] = byte(i % 7)
	}
	a.appTrigger(&DataMsg{Hdr: NewHeader(a.self, b.self, TCP), Payload: payload})
	waitFor(t, "large delivery", func() bool { return b.app.receivedCount() == 1 })
	b.app.mu.Lock()
	defer b.app.mu.Unlock()
	got := b.app.received[0].Payload
	if len(got) != len(payload) {
		t.Fatalf("payload length %d, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestNetworkAddrReporting(t *testing.T) {
	ports := freePorts(t, 1)
	a := startNode(t, ports[0])
	waitFor(t, "listeners", func() bool { return a.net.Addr(TCP) != "" })
	if a.net.Addr(UDP) == "" || a.net.Addr(UDT) == "" {
		t.Fatal("listeners not reported")
	}
}

func TestEncodeSkipsUselessCompression(t *testing.T) {
	// Incompressible payloads must ship raw (flag byte 0) — compressing
	// them would only add CPU and bytes; compressible ones ship with the
	// compressed flag.
	ports := freePorts(t, 1)
	n := startNode(t, ports[0]).net

	incompressible := make([]byte, 32<<10)
	rnd := rand.New(rand.NewSource(5))
	rnd.Read(incompressible)
	msg := &DataMsg{Hdr: NewHeader(n.cfg.Self.(BasicAddress), MustParseAddress("9.9.9.9:9"), TCP), Payload: incompressible}
	raw, err := n.encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] != wireRaw {
		t.Fatal("incompressible payload was shipped compressed")
	}

	msg.Payload = make([]byte, 32<<10) // zeros compress perfectly
	packed, err := n.encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if packed[0] != wireCompressed {
		t.Fatal("compressible payload was not compressed")
	}
	if len(packed) >= len(raw) {
		t.Fatal("compressed frame not smaller")
	}
}
