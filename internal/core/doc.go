// Package core is KompicsMessaging's public messaging API — the paper's
// primary contribution (§III). It defines:
//
//   - the Transport enumeration with per-message protocol selection,
//     including the DATA pseudo-protocol resolved at runtime by the
//     adaptive interceptor (§IV);
//   - the Msg, Header and Address interfaces (listings 2–4) with default
//     implementations (BasicAddress, BasicHeader) and the multi-hop
//     RoutingHeader (listing 5);
//   - the Network port type (listing 1) carrying Msg traffic and
//     MessageNotify requests/responses;
//   - the Network component which bridges the Kompics runtime and the
//     transport drivers, manages per-(peer, protocol) channels lazily, and
//     reflects messages between virtual nodes on the same host without
//     serialisation.
//
// Network-message semantics differ deliberately from Kompics channel
// semantics: delivery is at-most-once, and FIFO order only holds on
// connection-oriented transports (TCP, UDT). See §III-B of the paper.
package core
