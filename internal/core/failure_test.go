package core

import (
	"net"
	"testing"

	"github.com/kompics/kompicsmessaging-go/internal/transport"
)

// TestRoguePeerGarbageIgnored connects raw sockets to a running node and
// sends undecodable junk over TCP and UDP: the middleware must drop it
// and keep serving legitimate traffic.
func TestRoguePeerGarbageIgnored(t *testing.T) {
	ports := freePorts(t, 2)
	a := startSupervisedNode(t, ports[0], transport.Config{})
	b := startSupervisedNode(t, ports[1], transport.Config{})

	// Valid frame envelope, garbage payload: decode must fail gracefully.
	tcpConn, err := net.Dial("tcp", a.net.Addr(TCP))
	if err != nil {
		t.Fatal(err)
	}
	// 4-byte length prefix (8) + 8 junk bytes (flag byte 0 = raw, then a
	// serializer id that is not registered).
	tcpConn.Write([]byte{0, 0, 0, 8, 0, 0x7F, 1, 2, 3, 4, 5, 6})
	// Compressed flag with garbage body.
	tcpConn.Write([]byte{0, 0, 0, 4, 1, 0xFF, 0x00, 0x11})
	tcpConn.Close()

	udpConn, err := net.Dial("udp", a.net.Addr(UDP))
	if err != nil {
		t.Fatal(err)
	}
	udpConn.Write([]byte{0, 0x7F, 9, 9})
	udpConn.Write([]byte{}) // empty datagram
	udpConn.Close()

	// Legitimate traffic still works.
	b.send(&DataMsg{Hdr: NewHeader(b.self, a.self, TCP), Payload: []byte("ok")})
	awaitDelivery(t, a.app.recvCh, "ok")
}

// TestStopThenRestartNetwork stops the network component (listeners come
// down) and restarts it (listeners come back on the same ports). All
// synchronization is event-driven: AwaitQuiescence brackets the
// lifecycle transitions — OnStop/OnStart close and rebind listeners in
// component context — and redelivery is confirmed through notify
// responses, never by sleeping.
func TestStopThenRestartNetwork(t *testing.T) {
	ports := freePorts(t, 2)
	a := startSupervisedNode(t, ports[0], transport.Config{})
	b := startSupervisedNode(t, ports[1], transport.Config{})
	msg := func(s string) *DataMsg {
		return &DataMsg{Hdr: NewHeader(b.self, a.self, TCP), Payload: []byte(s)}
	}

	b.send(NotifyReq{ID: 1, Msg: msg("1")})
	if r := awaitNotify(t, b.app.notifyCh); r.ID != 1 || !r.Sent() {
		t.Fatalf("first send: %+v", r)
	}
	awaitDelivery(t, a.app.recvCh, "1")
	awaitStatus[ChannelUp](t, b.status.ch)

	// Stop node a's network; OnStop ran before AwaitQuiescence returned,
	// so its port is free immediately.
	a.sys.Stop(a.netComp)
	a.sys.AwaitQuiescence()
	l, err := net.Listen("tcp", a.self.AsSocket())
	if err != nil {
		t.Fatalf("listener not released after stop: %v", err)
	}
	l.Close()

	// Restart: OnStart rebinds the listeners before quiescence. Node b
	// only discovers the outage when a write fails (a probe written into
	// the dead socket's buffer may still notify success and be lost —
	// at-most-once, not end-to-end delivery), so probe until a notify
	// fails, then let b's supervisor report the redial on its status port.
	a.sys.Start(a.netComp)
	a.sys.AwaitQuiescence()
	if a.net.Addr(TCP) == "" {
		t.Fatal("listeners did not come back")
	}
	probed := false
	for id := uint64(2); id < 64; id++ {
		b.send(NotifyReq{ID: id, Msg: msg("probe")})
		if r := awaitNotify(t, b.app.notifyCh); !r.Sent() {
			probed = true
			break
		}
	}
	if !probed {
		t.Fatal("writes into the dead connection never failed")
	}
	for { // drain Down (and any Retry) until the channel is up again
		if _, ok := awaitAnyStatus(t, b.status.ch).(ChannelUp); ok {
			break
		}
	}

	b.send(NotifyReq{ID: 100, Msg: msg("2")})
	if r := awaitNotify(t, b.app.notifyCh); r.ID != 100 || !r.Sent() {
		t.Fatalf("send after restart: %+v", r)
	}
	for { // probes that survived the reconnect may arrive first
		m := awaitAnyDelivery(t, a.app.recvCh)
		if string(m.Payload) == "2" {
			break
		}
		if string(m.Payload) != "probe" {
			t.Fatalf("unexpected delivery %q", m.Payload)
		}
	}
}
