package core

import (
	"net"
	"testing"
	"time"
)

// TestRoguePeerGarbageIgnored connects raw sockets to a running node and
// sends undecodable junk over TCP and UDP: the middleware must drop it
// and keep serving legitimate traffic.
func TestRoguePeerGarbageIgnored(t *testing.T) {
	ports := freePorts(t, 2)
	a := startNode(t, ports[0])
	b := startNode(t, ports[1])
	waitFor(t, "listeners", func() bool { return a.net.Addr(TCP) != "" })

	// Valid frame envelope, garbage payload: decode must fail gracefully.
	tcpConn, err := net.Dial("tcp", a.net.Addr(TCP))
	if err != nil {
		t.Fatal(err)
	}
	// 4-byte length prefix (8) + 8 junk bytes (flag byte 0 = raw, then a
	// serializer id that is not registered).
	tcpConn.Write([]byte{0, 0, 0, 8, 0, 0x7F, 1, 2, 3, 4, 5, 6})
	// Compressed flag with garbage body.
	tcpConn.Write([]byte{0, 0, 0, 4, 1, 0xFF, 0x00, 0x11})
	tcpConn.Close()

	udpConn, err := net.Dial("udp", a.net.Addr(UDP))
	if err != nil {
		t.Fatal(err)
	}
	udpConn.Write([]byte{0, 0x7F, 9, 9})
	udpConn.Write([]byte{}) // empty datagram
	udpConn.Close()

	// Legitimate traffic still works.
	b.appTrigger(&DataMsg{Hdr: NewHeader(b.self, a.self, TCP), Payload: []byte("ok")})
	waitFor(t, "legit delivery after garbage", func() bool { return a.app.receivedCount() == 1 })
}

// TestStopThenRestartNetwork stops the network component (listeners come
// down) and restarts it (listeners come back on the same ports).
func TestStopThenRestartNetwork(t *testing.T) {
	ports := freePorts(t, 2)
	a := startNode(t, ports[0])
	b := startNode(t, ports[1])

	b.appTrigger(&DataMsg{Hdr: NewHeader(b.self, a.self, TCP), Payload: []byte("1")})
	waitFor(t, "first delivery", func() bool { return a.app.receivedCount() == 1 })

	// Stop node a's network; its port must become free again.
	a.sys.Stop(a.netComp)
	a.sys.AwaitQuiescence()
	waitFor(t, "listener released", func() bool {
		l, err := net.Listen("tcp", a.self.AsSocket())
		if err != nil {
			return false
		}
		l.Close()
		return true
	})

	// Restart; traffic must flow again (b redials after its channel
	// failed).
	a.sys.Start(a.netComp)
	waitFor(t, "listener back", func() bool {
		c, err := net.DialTimeout("tcp", a.self.AsSocket(), time.Second)
		if err != nil {
			return false
		}
		c.Close()
		return true
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && a.app.receivedCount() < 2 {
		b.appTrigger(&DataMsg{Hdr: NewHeader(b.self, a.self, TCP), Payload: []byte("2")})
		time.Sleep(50 * time.Millisecond)
	}
	if a.app.receivedCount() < 2 {
		t.Fatal("no delivery after network restart")
	}
}
