package core

import (
	"testing"
	"testing/quick"

	"github.com/kompics/kompicsmessaging-go/internal/transport"
)

// TestPropertyWirePayloadNeverPanics injects arbitrary bytes through the
// network component's inbound payload path (the surface a hostile peer
// controls): garbage is logged and dropped, never a crash.
func TestPropertyWirePayloadNeverPanics(t *testing.T) {
	ports := freePorts(t, 1)
	n := startNode(t, ports[0]).net
	f := func(b []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("onWirePayload panicked on %v: %v", b, r)
				ok = false
			}
		}()
		n.onWirePayload(transport.From{}, b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
