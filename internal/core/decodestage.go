package core

// The parallel decode stage is the inbound mirror of the codec stage
// (codecstage.go): it lifts decodeWire (decompress + decode) — the
// dominant per-message CPU cost on the receive path — off the transport
// read goroutines and the Network component's single thread onto a
// bounded worker pool. Before this stage existed, every inbound frame
// was decoded inline on its connection's read goroutine and the decoded
// message then funneled through the one component thread; with it, a
// frame from peer A is never blocked by decode work for peer B.
// Correctness constraints, preserved exactly:
//
//   - FIFO per peer: messages reach the component (via SelfTrigger) in
//     the order their frames arrived for that (protocol, peer) — a
//     per-origin sequencer holds each decoded message until every
//     earlier frame from the same peer has been released. Different
//     peers release independently, so one slow decompress never
//     head-of-line-blocks the fan-in.
//   - At-most-once delivery: every submitted frame resolves exactly
//     once — as a delivered message, a logged decode error, or a
//     silently dropped empty payload; the stage failing its backlog on
//     close delivers nothing twice.
//   - Buffer ownership: the pooled payload arrives owned by the stage
//     (transport's deliver contract), passes to decodeWire — which
//     consumes it — on a worker, or is recycled by the close path when
//     the frame never reaches a decoder. No path leaks a buffer.
//
// Backpressure: at the inflight bound the submitting read goroutine
// decodes inline. The frame still rides its lane, so order holds, and
// the stall is confined to that one connection — which is exactly the
// flow control a stream transport wants.

import (
	"sync"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
	"github.com/kompics/kompicsmessaging-go/internal/transport"
)

// decodeJob is one inbound frame's trip through the stage. A job is
// appended to its origin lane by the submitting transport goroutine,
// decoded on a worker (or inline when the stage is saturated), and
// released by whichever goroutine completes the lane's head.
type decodeJob struct {
	lane *recvLane

	// payload is owned by the job until decodeWire consumes it (or the
	// close path recycles it); all three result fields are set under
	// lane.mu when the decode (or failure) completes.
	payload []byte
	msg     Msg
	err     error
	done    bool
}

// recvLane is the per-origin sequencer: jobs in frame-arrival order,
// released from the head only when done. One lane exists per (protocol,
// peer) for the stage's lifetime, mirroring the send side's peerLane.
type recvLane struct {
	mu sync.Mutex //kmlint:guarded
	// jobs is the pending FIFO; head release pops index 0. The slice is
	// compacted when fully drained.
	jobs []*decodeJob
	// draining serialises release: exactly one goroutine pops ready
	// heads at a time, so SelfTrigger sees arrival order even though
	// workers finish out of order.
	draining bool
}

// decodeStage owns the worker pool and the lane table. One stage lives
// per Network start, created together with the Endpoint whose OnMessage
// feeds it (like the Endpoint, it is single-use).
type decodeStage struct {
	n     *Network
	pool  *kompics.WorkPool[*decodeJob]
	limit int

	mu sync.Mutex //kmlint:guarded
	// lanes is keyed by laneKey with dest carrying the peer address —
	// the same key shape the codec stage uses for destinations.
	lanes  map[laneKey]*recvLane
	closed bool
	// inflight counts submitted-but-unreleased jobs; at limit, decode
	// degrades to inline on the submitting read goroutine (still
	// sequenced), which bounds the pool's queue while stalling only the
	// saturating connection.
	inflight int
}

func newDecodeStage(n *Network, workers, limit int) *decodeStage {
	st := &decodeStage{
		n:     n,
		limit: limit,
		lanes: make(map[laneKey]*recvLane),
	}
	st.pool = kompics.NewWorkPool(workers, st.runJob)
	return st
}

// submit sequences one inbound frame. It is the transport endpoint's
// OnMessage callback: ownership of the pooled payload passes to the
// stage here. Frames sharing a From arrive from one read goroutine, so
// lane append order IS wire order.
func (st *decodeStage) submit(from transport.From, payload []byte) {
	job := &decodeJob{payload: payload}
	key := laneKey{proto: from.Proto, dest: from.Peer}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		bufpool.Put(payload)
		return
	}
	lane := st.lanes[key]
	if lane == nil {
		lane = &recvLane{}
		st.lanes[key] = lane
	}
	saturated := st.inflight >= st.limit
	st.inflight++
	st.mu.Unlock()

	job.lane = lane
	lane.mu.Lock()
	lane.jobs = append(lane.jobs, job)
	lane.mu.Unlock()

	if saturated {
		// Backpressure: decode here on the connection's read goroutine.
		// The job still rides the sequencer, so per-peer order holds
		// even against in-flight worker decodes for the same lane.
		st.runJob(job)
		return
	}
	if !st.pool.Submit(job) {
		// The stage closed between the closed check and the submit; the
		// close path may already have drained this lane, so fail the
		// job ourselves (idempotently, under lane.mu) and re-drain.
		st.failUndone(job)
	}
}

// runJob decodes one job and releases every ready lane head. It is the
// WorkPool run function (always requeue=false) and doubles as the
// inline saturation path. decodeWire consumes the payload buffer on
// every outcome.
func (st *decodeStage) runJob(job *decodeJob) bool {
	msg, err := st.n.decodeWire(job.payload)
	lane := job.lane
	lane.mu.Lock()
	job.payload = nil
	job.msg, job.err, job.done = msg, err, true
	lane.mu.Unlock()
	st.drain(lane)
	return false
}

// failUndone resolves a job that will never reach a decoder: its pooled
// payload is recycled and the lane re-drained. Safe against a
// concurrent close() marking the same job, because both mark under
// lane.mu and only the first marker recycles the buffer.
func (st *decodeStage) failUndone(job *decodeJob) {
	lane := job.lane
	lane.mu.Lock()
	if !job.done {
		bufpool.Put(job.payload)
		job.payload = nil
		job.err, job.done = errNetworkStopped, true
	}
	lane.mu.Unlock()
	st.drain(lane)
}

// drain releases the lane's done head-run in arrival order. The
// draining flag makes the release section single-threaded per lane
// without holding lane.mu across SelfTrigger.
func (st *decodeStage) drain(lane *recvLane) {
	lane.mu.Lock()
	if lane.draining {
		lane.mu.Unlock()
		return
	}
	lane.draining = true
	for {
		var ready []*decodeJob
		for len(lane.jobs) > 0 && lane.jobs[0].done {
			ready = append(ready, lane.jobs[0])
			lane.jobs = lane.jobs[1:]
		}
		if len(lane.jobs) == 0 && cap(lane.jobs) > 0 {
			lane.jobs = nil // unpin the drained backing array
		}
		if len(ready) == 0 {
			lane.draining = false
			lane.mu.Unlock()
			return
		}
		lane.mu.Unlock()
		for _, j := range ready {
			st.release(j)
		}
		lane.mu.Lock()
	}
}

// release resolves one sequenced job: hand the decoded message into
// component context (SelfTrigger is goroutine-safe and a no-op on a
// halted component), or surface the decode error. Empty payloads decode
// to (nil, nil) and are silently ignored, as before the stage existed.
func (st *decodeStage) release(j *decodeJob) {
	st.mu.Lock()
	st.inflight--
	st.mu.Unlock()
	if j.err != nil {
		if j.err != errNetworkStopped {
			st.n.cfg.Logger.Warn("core: dropping inbound message", "err", j.err)
		}
		return
	}
	if j.msg == nil {
		return
	}
	st.n.comp.SelfTrigger(inbound{msg: j.msg})
}

// close stops the workers and fails the undecoded backlog, recycling its
// pooled payloads. Runs on the component thread (OnStop/OnKill) after
// the endpoint closes — the read loops are gone, so no new submissions
// race the teardown (a straggler that lost the Submit race resolves
// itself through failUndone). Jobs already decoded still release; their
// SelfTrigger lands in a halting component's mailbox or is dropped
// there, never delivered twice.
func (st *decodeStage) close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	lanes := make([]*recvLane, 0, len(st.lanes))
	for _, l := range st.lanes {
		lanes = append(lanes, l)
	}
	st.mu.Unlock()

	// Workers finish their current decodes (marking jobs done) and
	// exit; queued-but-unstarted jobs stay pending in their lanes.
	st.pool.Close()
	for _, lane := range lanes {
		lane.mu.Lock()
		for _, j := range lane.jobs {
			if !j.done {
				bufpool.Put(j.payload)
				j.payload = nil
				j.err, j.done = errNetworkStopped, true
			}
		}
		lane.mu.Unlock()
		st.drain(lane)
	}
}
