package core

import (
	"bytes"
	"fmt"
	"net"
	"net/netip"
)

// Address identifies a network endpoint (listing 4 of the paper).
// Implementations may add richer identity — the vnet package adds a
// virtual-node ID — as long as these minimum features hold.
type Address interface {
	// IP returns the endpoint's IP address.
	IP() net.IP
	// Port returns the endpoint's port.
	Port() int
	// AsSocket renders the address as ip:port for dialing and listening.
	AsSocket() string
	// SameHostAs reports whether other designates the same network host
	// (IP and port), ignoring any higher-level identity. The Network
	// component uses it to reflect local messages without serialisation.
	SameHostAs(other Address) bool
}

// BasicAddress is the default Address implementation: an IP and port.
// The zero value is not useful; construct with NewAddress.
type BasicAddress struct {
	ip   net.IP
	port int
}

var _ Address = BasicAddress{}

// NewAddress creates a BasicAddress. The ip slice is copied.
func NewAddress(ip net.IP, port int) BasicAddress {
	dup := make(net.IP, len(ip))
	copy(dup, ip)
	return BasicAddress{ip: dup, port: port}
}

// ParseAddress parses "ip:port" into a BasicAddress.
func ParseAddress(s string) (BasicAddress, error) {
	ap, err := netip.ParseAddrPort(s)
	if err != nil {
		return BasicAddress{}, fmt.Errorf("core: parse address %q: %w", s, err)
	}
	ip := ap.Addr().AsSlice()
	return NewAddress(ip, int(ap.Port())), nil
}

// MustParseAddress is ParseAddress that panics on error; for tests and
// wiring code with literal addresses.
func MustParseAddress(s string) BasicAddress {
	a, err := ParseAddress(s)
	if err != nil {
		panic(err)
	}
	return a
}

// IP implements Address. The returned slice must not be mutated.
func (a BasicAddress) IP() net.IP { return a.ip }

// Port implements Address.
func (a BasicAddress) Port() int { return a.port }

// AsSocket implements Address.
func (a BasicAddress) AsSocket() string {
	return net.JoinHostPort(a.ip.String(), fmt.Sprint(a.port))
}

// SameHostAs implements Address.
func (a BasicAddress) SameHostAs(other Address) bool {
	if other == nil {
		return false
	}
	return a.port == other.Port() && a.ip.Equal(other.IP())
}

// Equal reports whether two BasicAddresses are identical.
func (a BasicAddress) Equal(b BasicAddress) bool {
	return a.port == b.port && bytes.Equal(a.ip.To16(), b.ip.To16())
}

// String implements fmt.Stringer.
func (a BasicAddress) String() string { return a.AsSocket() }

// Key returns a map key uniquely identifying the host endpoint. Useful for
// channel registries.
func (a BasicAddress) Key() string { return a.AsSocket() }

// AddressKey normalises any Address into a registry key.
func AddressKey(a Address) string {
	return a.AsSocket()
}
