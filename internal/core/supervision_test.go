package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/clock"
	"github.com/kompics/kompicsmessaging-go/internal/faults"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
	"github.com/kompics/kompicsmessaging-go/internal/transport"
)

// statusApp observes a node's NetworkStatusPort and forwards every
// supervision indication to a channel so tests can assert the exact
// event sequence without polling.
type statusApp struct {
	port *kompics.Port
	ch   chan kompics.Event
}

func newStatusApp() *statusApp { return &statusApp{ch: make(chan kompics.Event, 64)} }

func (s *statusApp) Init(ctx *kompics.Context) {
	s.port = ctx.Requires(NetworkStatusPort)
	record := func(e kompics.Event) { s.ch <- e }
	ctx.Subscribe(s.port, ChannelUp{}, record)
	ctx.Subscribe(s.port, ChannelDown{}, record)
	ctx.Subscribe(s.port, ChannelRetry{}, record)
	ctx.Subscribe(s.port, TransportFallback{}, record)
}

// supApp mirrors appComponent but hands deliveries and notifies to
// channels, so the supervision tests synchronize on events instead of
// sleeping.
type supApp struct {
	net      *kompics.Port
	comp     *kompics.Component
	recvCh   chan *DataMsg
	notifyCh chan NotifyResp
}

func newSupApp() *supApp {
	return &supApp{recvCh: make(chan *DataMsg, 64), notifyCh: make(chan NotifyResp, 64)}
}

func (a *supApp) Init(ctx *kompics.Context) {
	a.comp = ctx.Component()
	a.net = ctx.Requires(NetworkPort)
	ctx.Subscribe(a.net, (*Msg)(nil), func(e kompics.Event) {
		if m, ok := e.(*DataMsg); ok {
			a.recvCh <- m
		}
	})
	ctx.Subscribe(a.net, NotifyResp{}, func(e kompics.Event) {
		a.notifyCh <- e.(NotifyResp)
	})
	ctx.SubscribeSelf(sendReq{}, func(e kompics.Event) {
		ctx.Trigger(e.(sendReq).e, a.net)
	})
}

// supNode bundles one middleware instance with channel-driven app and
// status observers.
type supNode struct {
	self    Address
	sys     *kompics.System
	net     *Network
	netComp *kompics.Component
	app     *supApp
	status  *statusApp
}

func (n *supNode) send(e kompics.Event) { n.app.comp.SelfTrigger(sendReq{e: e}) }

// startSupervisedNode boots a node whose transport is tuned by tcfg
// (fault injector, virtual clock, dial budget). OnStart binds listeners
// synchronously in component context, so AwaitQuiescence doubles as the
// "listeners up" barrier — no sleeping.
func startSupervisedNode(t *testing.T, port int, tcfg transport.Config) *supNode {
	t.Helper()
	self := MustParseAddress(fmt.Sprintf("127.0.0.1:%d", port))
	netDef, err := NewNetwork(NetworkConfig{Self: self, Transport: tcfg})
	if err != nil {
		t.Fatal(err)
	}
	sys := kompics.NewSystem()
	t.Cleanup(sys.Shutdown)
	netComp := sys.Create(netDef)
	app := newSupApp()
	appComp := sys.Create(app)
	status := newStatusApp()
	statusComp := sys.Create(status)
	kompics.MustConnect(netDef.Port(), app.net)
	kompics.MustConnect(netDef.StatusPort(), status.port)
	sys.Start(netComp)
	sys.Start(appComp)
	sys.Start(statusComp)
	sys.AwaitQuiescence()
	if netDef.Addr(TCP) == "" {
		t.Fatal("listeners did not come up")
	}
	return &supNode{self: self, sys: sys, net: netDef, netComp: netComp, app: app, status: status}
}

// awaitStatus pops the next supervision event and requires it to be a T:
// the tests assert the exact event sequence, so an unexpected kind is a
// failure, not something to skip past.
func awaitStatus[T kompics.Event](t *testing.T, ch <-chan kompics.Event) T {
	t.Helper()
	var want T
	select {
	case e := <-ch:
		v, ok := e.(T)
		if !ok {
			t.Fatalf("status event %T (%+v), want %T", e, e, want)
		}
		return v
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for %T status event", want)
	}
	return want
}

// awaitAnyStatus pops the next supervision event of whatever kind.
func awaitAnyStatus(t *testing.T, ch <-chan kompics.Event) kompics.Event {
	t.Helper()
	select {
	case e := <-ch:
		return e
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a status event")
	}
	return nil
}

func awaitNotify(t *testing.T, ch <-chan NotifyResp) NotifyResp {
	t.Helper()
	select {
	case r := <-ch:
		return r
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for notify response")
	}
	return NotifyResp{}
}

func awaitDelivery(t *testing.T, ch <-chan *DataMsg, want string) {
	t.Helper()
	if m := awaitAnyDelivery(t, ch); string(m.Payload) != want {
		t.Fatalf("delivered %q, want %q", m.Payload, want)
	}
}

func awaitAnyDelivery(t *testing.T, ch <-chan *DataMsg) *DataMsg {
	t.Helper()
	select {
	case m := <-ch:
		return m
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a delivery")
	}
	return nil
}

// TestNetworkStatusOutageAndRecovery scripts a full peer outage at the
// middleware level: the app on node a watches its NetworkStatusPort see
// exactly ChannelUp, ChannelDown, ChannelRetry(1), ChannelRetry(2),
// ChannelUp while the fault injector kills and revives the path to b
// under a virtual clock. At-most-once holds across the reconnect: the
// message whose failure notify fired during the outage never reappears.
func TestNetworkStatusOutageAndRecovery(t *testing.T) {
	ports := freePorts(t, 2)
	inj := faults.New(1)
	vc := clock.NewVirtual()
	a := startSupervisedNode(t, ports[0], transport.Config{
		Faults:          inj,
		Clock:           vc,
		MaxDialAttempts: 5,
	})
	b := startSupervisedNode(t, ports[1], transport.Config{})
	msg := func(s string) *DataMsg {
		return &DataMsg{Hdr: NewHeader(a.self, b.self, TCP), Payload: []byte(s)}
	}

	a.send(NotifyReq{ID: 1, Msg: msg("before")})
	if r := awaitNotify(t, a.app.notifyCh); r.ID != 1 || !r.Sent() {
		t.Fatalf("send before outage: %+v", r)
	}
	up := awaitStatus[ChannelUp](t, a.status.ch)
	if up.Proto != TCP || up.Dest != b.self.AsSocket() {
		t.Fatalf("up event %+v, want TCP to %v", up, b.self)
	}
	awaitDelivery(t, b.app.recvCh, "before")

	// Kill the path to b: the established connection resets on the next
	// write, redials are refused.
	resetID := inj.Add(faults.Spec{Op: faults.OpWrite, Action: faults.Reset})
	refuseID := inj.Add(faults.Spec{Op: faults.OpDial, Action: faults.Refuse})

	a.send(NotifyReq{ID: 2, Msg: msg("during")})
	if r := awaitNotify(t, a.app.notifyCh); r.ID != 2 || !errors.Is(r.Err, faults.ErrConnReset) {
		t.Fatalf("send during outage: %+v, want ErrConnReset", r)
	}
	down := awaitStatus[ChannelDown](t, a.status.ch)
	if !errors.Is(down.Err, faults.ErrConnReset) {
		t.Fatalf("down event carries %v, want the reset", down.Err)
	}

	// Each ChannelRetry is published after its backoff timer is armed, so
	// advancing the virtual clock by the reported delay deterministically
	// fires the next dial attempt.
	r1 := awaitStatus[ChannelRetry](t, a.status.ch)
	if r1.Attempt != 1 || r1.NextDelay <= 0 {
		t.Fatalf("first retry %+v", r1)
	}
	vc.Advance(r1.NextDelay)
	r2 := awaitStatus[ChannelRetry](t, a.status.ch)
	if r2.Attempt != 2 {
		t.Fatalf("second retry %+v", r2)
	}

	// Revive the peer and release the third attempt.
	inj.Remove(resetID)
	inj.Remove(refuseID)
	vc.Advance(r2.NextDelay)
	up = awaitStatus[ChannelUp](t, a.status.ch)
	if up.Dest != b.self.AsSocket() {
		t.Fatalf("revival up event %+v", up)
	}

	// Status events are stamped from the injectable clock, so on a
	// virtual clock recovery latency is exact arithmetic: the down→up gap
	// equals precisely the two backoff delays the test advanced through.
	if up.At.IsZero() || down.At.IsZero() {
		t.Fatalf("status events missing timestamps: down=%v up=%v", down.At, up.At)
	}
	if got, want := up.At.Sub(down.At), r1.NextDelay+r2.NextDelay; got != want {
		t.Fatalf("recovery latency = %v, want the advanced backoffs %v", got, want)
	}

	a.send(NotifyReq{ID: 3, Msg: msg("after")})
	if r := awaitNotify(t, a.app.notifyCh); r.ID != 3 || !r.Sent() {
		t.Fatalf("send after revival: %+v", r)
	}
	awaitDelivery(t, b.app.recvCh, "after")

	// At-most-once across the outage: "during" failed its notify and must
	// never have been retransmitted by the reconnect.
	select {
	case m := <-b.app.recvCh:
		t.Fatalf("extra delivery %q after recovery", m.Payload)
	default:
	}
}

// TestNetworkStatusUDTFallback exhausts UDT dialing (refused by the
// injector) and watches the middleware degrade the destination to TCP: a
// TransportFallback indication on the status port, then ChannelUp for
// the TCP channel, with the queued message delivered exactly once.
func TestNetworkStatusUDTFallback(t *testing.T) {
	ports := freePorts(t, 2)
	inj := faults.New(1)
	inj.Add(faults.Spec{Op: faults.OpDial, Action: faults.Refuse, Proto: UDT})
	a := startSupervisedNode(t, ports[0], transport.Config{
		Faults:          inj,
		MaxDialAttempts: 1, // degrade on the first refused dial
	})
	b := startSupervisedNode(t, ports[1], transport.Config{})

	a.send(NotifyReq{ID: 1, Msg: &DataMsg{
		Hdr: NewHeader(a.self, b.self, UDT), Payload: []byte("via-fallback"),
	}})

	// UDT traffic targets b's port+1 by the offset convention; fallback
	// un-shifts back to the TCP listener.
	udtDest := fmt.Sprintf("127.0.0.1:%d", ports[1]+1)
	fb := awaitStatus[TransportFallback](t, a.status.ch)
	if fb.From != UDT || fb.To != TCP || fb.Dest != udtDest || fb.ToDest != b.self.AsSocket() {
		t.Fatalf("fallback event %+v, want UDT %s → TCP %s", fb, udtDest, b.self)
	}
	if !errors.Is(fb.Err, faults.ErrDialRefused) {
		t.Fatalf("fallback carries %v, want the dial failure", fb.Err)
	}
	up := awaitStatus[ChannelUp](t, a.status.ch)
	if up.Proto != TCP || up.Dest != b.self.AsSocket() {
		t.Fatalf("up event %+v, want the TCP fallback channel", up)
	}

	if r := awaitNotify(t, a.app.notifyCh); r.ID != 1 || !r.Sent() {
		t.Fatalf("queued message across fallback: %+v", r)
	}
	awaitDelivery(t, b.app.recvCh, "via-fallback")

	// Later UDT sends reroute through the registered fallback.
	a.send(NotifyReq{ID: 2, Msg: &DataMsg{
		Hdr: NewHeader(a.self, b.self, UDT), Payload: []byte("rerouted"),
	}})
	if r := awaitNotify(t, a.app.notifyCh); r.ID != 2 || !r.Sent() {
		t.Fatalf("rerouted send: %+v", r)
	}
	awaitDelivery(t, b.app.recvCh, "rerouted")
	select {
	case m := <-b.app.recvCh:
		t.Fatalf("duplicate delivery %q across fallback", m.Payload)
	default:
	}
}
