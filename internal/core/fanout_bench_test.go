package core

// Fan-out benchmark for the component-level send path: one sender Network
// component fanning NotifyReq messages out to N receiver Network nodes
// over loopback TCP, with GOMAXPROCS producer goroutines injecting into
// the sender's mailbox. Where the transport-level BenchmarkFanoutSend
// isolates registry contention, this one additionally covers the encode
// stage (serialise + optional compress) that the parallel codec stage
// lifts off the component thread. Run via
//
//	make bench-shard
//
// The payload is incompressible so flate cannot flatter throughput; the
// procs=N sub-name keeps -cpu 1,4,… runs distinct in BENCH_shard.json.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/codec"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

const fanoutMsgSize = 1 << 10

// fanoutRecvApp counts inbound messages on a receiver node.
type fanoutRecvApp struct {
	net      *kompics.Port
	received *atomic.Int64
}

func (a *fanoutRecvApp) Init(ctx *kompics.Context) {
	a.net = ctx.Requires(NetworkPort)
	ctx.Subscribe(a.net, (*Msg)(nil), func(e kompics.Event) {
		a.received.Add(1)
	})
}

// fanoutSendApp publishes NotifyReq events injected via SelfTrigger and
// releases one window slot per NotifyResp.
type fanoutSendApp struct {
	net  *kompics.Port
	comp *kompics.Component
	wg   *sync.WaitGroup
	sem  chan struct{}
	errs *atomic.Int64
}

type fanoutSendReq struct{ req NotifyReq }

func (a *fanoutSendApp) Init(ctx *kompics.Context) {
	a.comp = ctx.Component()
	a.net = ctx.Requires(NetworkPort)
	ctx.Subscribe(a.net, NotifyResp{}, func(e kompics.Event) {
		if e.(NotifyResp).Err != nil {
			a.errs.Add(1)
		}
		a.wg.Done()
		<-a.sem
	})
	ctx.SubscribeSelf(fanoutSendReq{}, func(e kompics.Event) {
		ctx.Trigger(e.(fanoutSendReq).req, a.net)
	})
}

// benchNode starts one Network on an ephemeral loopback port and returns
// its bound TCP address.
func benchFanoutNode(b *testing.B, selfPort int, comp codec.Compressor, recvCount *atomic.Int64) (*kompics.System, *Network, string) {
	b.Helper()
	self := MustParseAddress(fmt.Sprintf("127.0.0.1:%d", selfPort))
	netDef, err := NewNetwork(NetworkConfig{
		Self:       self,
		ListenAddr: "127.0.0.1:0",
		Protocols:  []Transport{TCP},
		Compressor: comp,
	})
	if err != nil {
		b.Fatal(err)
	}
	sys := kompics.NewSystem()
	netComp := sys.Create(netDef)
	if recvCount != nil {
		app := &fanoutRecvApp{received: recvCount}
		appComp := sys.Create(app)
		kompics.MustConnect(netDef.Port(), app.net)
		sys.Start(appComp)
	}
	sys.Start(netComp)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && netDef.Addr(TCP) == "" {
		time.Sleep(time.Millisecond)
	}
	addr := netDef.Addr(TCP)
	if addr == "" {
		sys.Shutdown()
		b.Fatal("network did not bind")
	}
	return sys, netDef, addr
}

func benchFanoutNetwork(b *testing.B, peers int, comp func() codec.Compressor) {
	b.Helper()
	var received atomic.Int64
	dests := make([]Address, peers)
	for i := 0; i < peers; i++ {
		sys, _, addr := benchFanoutNode(b, 1, comp(), &received)
		defer sys.Shutdown()
		dests[i] = MustParseAddress(addr)
	}

	self := MustParseAddress("127.0.0.1:2")
	sendDef, err := NewNetwork(NetworkConfig{
		Self:       self,
		ListenAddr: "127.0.0.1:0",
		Protocols:  []Transport{TCP},
		Compressor: comp(),
	})
	if err != nil {
		b.Fatal(err)
	}
	sendSys := kompics.NewSystem()
	defer sendSys.Shutdown()
	sendComp := sendSys.Create(sendDef)
	var wg sync.WaitGroup
	var errs atomic.Int64
	sem := make(chan struct{}, 64*runtime.GOMAXPROCS(0))
	app := &fanoutSendApp{wg: &wg, sem: sem, errs: &errs}
	appComp := sendSys.Create(app)
	kompics.MustConnect(sendDef.Port(), app.net)
	sendSys.Start(sendComp)
	sendSys.Start(appComp)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && sendDef.Addr(TCP) == "" {
		time.Sleep(time.Millisecond)
	}
	if sendDef.Addr(TCP) == "" {
		b.Fatal("sender network did not bind")
	}
	payload := make([]byte, fanoutMsgSize)
	rand.New(rand.NewSource(1)).Read(payload)
	msgs := make([]*DataMsg, peers)
	for i, d := range dests {
		msgs[i] = &DataMsg{Hdr: NewHeader(self, d, TCP), Payload: payload}
	}

	var nextWorker, nextID atomic.Int64
	b.SetBytes(fanoutMsgSize)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(nextWorker.Add(1))
		for pb.Next() {
			sem <- struct{}{}
			wg.Add(1)
			app.comp.SelfTrigger(fanoutSendReq{req: NotifyReq{
				ID:  uint64(nextID.Add(1)),
				Msg: msgs[i%peers],
			}})
			i++
		}
	})
	wg.Wait()
	if errs.Load() > 0 {
		b.Fatalf("%d sends failed", errs.Load())
	}
	deadline = time.Now().Add(30 * time.Second)
	for received.Load() < int64(b.N) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()
	if received.Load() < int64(b.N) {
		b.Fatalf("received %d of %d messages", received.Load(), b.N)
	}
}

// fanoutProcs returns the deduplicated GOMAXPROCS levels the scaling table
// records: 1, 4 and NumCPU.
func fanoutProcs() []int {
	out := []int{1}
	for _, p := range []int{4, runtime.NumCPU()} {
		if p > out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// BenchmarkFanoutSendNetwork measures component-level fan-out throughput
// (1 op = 1 message end to end: mailbox → encode → transport → decode).
// GOMAXPROCS is set per sub-benchmark (instead of -cpu) so each level
// keeps a distinct name in BENCH_shard.json.
func BenchmarkFanoutSendNetwork(b *testing.B) {
	for _, tc := range []struct {
		name string
		comp func() codec.Compressor
	}{
		{"noop", func() codec.Compressor { return codec.Noop{} }},
		{"flate", func() codec.Compressor { return codec.NewFlate(-1) }},
	} {
		for _, procs := range fanoutProcs() {
			b.Run(fmt.Sprintf("peers=16/comp=%s/procs=%d", tc.name, procs), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				benchFanoutNetwork(b, 16, tc.comp)
			})
		}
	}
}
