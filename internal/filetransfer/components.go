package filetransfer

import (
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/codec"
	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

// ChunkMsg carries one chunk on the wire. It supports per-message
// protocol selection including the DATA pseudo-protocol.
type ChunkMsg struct {
	Src, Dst core.BasicAddress
	Proto    core.Transport
	// TransferID distinguishes concurrent transfers.
	TransferID uint32
	// Index is the chunk number; Total the chunk count; TotalBytes the
	// dataset size.
	Index      uint32
	Total      uint32
	TotalBytes int64
	Body       []byte
}

var _ core.Msg = &ChunkMsg{}

// Header implements core.Msg.
func (m *ChunkMsg) Header() core.Header {
	return core.NewHeader(m.Src, m.Dst, m.Proto)
}

// Size returns the body length, for interceptor statistics.
func (m *ChunkMsg) Size() int { return len(m.Body) }

// WithWireProtocol implements the DATA interceptor's contract.
func (m *ChunkMsg) WithWireProtocol(t core.Transport) core.Msg {
	dup := *m
	dup.Proto = t
	return &dup
}

// SerializerID is the chunk message's wire identifier.
const SerializerID codec.SerializerID = 16

// ChunkSerializer is the wire codec for ChunkMsg.
type ChunkSerializer struct{}

var _ codec.Serializer = ChunkSerializer{}

// ID implements codec.Serializer.
func (ChunkSerializer) ID() codec.SerializerID { return SerializerID }

// Serialize implements codec.Serializer.
func (ChunkSerializer) Serialize(w io.Writer, v interface{}) error {
	m, ok := v.(*ChunkMsg)
	if !ok {
		return fmt.Errorf("filetransfer: ChunkSerializer cannot encode %T", v)
	}
	if err := core.WriteBasicHeader(w, core.NewHeader(m.Src, m.Dst, m.Proto)); err != nil {
		return err
	}
	for _, u := range []uint64{uint64(m.TransferID), uint64(m.Index), uint64(m.Total)} {
		if err := codec.WriteUvarint(w, u); err != nil {
			return err
		}
	}
	if err := codec.WriteVarint(w, m.TotalBytes); err != nil {
		return err
	}
	return codec.WriteBytes(w, m.Body)
}

// Deserialize implements codec.Serializer.
func (ChunkSerializer) Deserialize(r io.Reader) (interface{}, error) {
	hdr, err := core.ReadBasicHeader(r)
	if err != nil {
		return nil, err
	}
	var vals [3]uint64
	for i := range vals {
		if vals[i], err = codec.ReadUvarint(r); err != nil {
			return nil, err
		}
	}
	totalBytes, err := codec.ReadVarint(r)
	if err != nil {
		return nil, err
	}
	body, err := codec.ReadBytes(r)
	if err != nil {
		return nil, err
	}
	src, _ := hdr.Src.(core.BasicAddress)
	dst, _ := hdr.Dst.(core.BasicAddress)
	return &ChunkMsg{
		Src: src, Dst: dst, Proto: hdr.Proto,
		TransferID: uint32(vals[0]), Index: uint32(vals[1]), Total: uint32(vals[2]),
		TotalBytes: totalBytes, Body: body,
	}, nil
}

// Register adds the chunk serialiser to a registry.
func Register(reg *codec.Registry) error {
	return reg.Register(ChunkSerializer{}, (*ChunkMsg)(nil))
}

// TransferPort reports transfer progress to interested components.
var TransferPort = kompics.NewPortType("FileTransfer").
	Indication(Complete{}).
	Request(StartTransfer{})

// StartTransfer asks a Sender to begin a transfer.
type StartTransfer struct {
	// TransferID labels the transfer.
	TransferID uint32
}

// Complete indicates a finished transfer.
type Complete struct {
	// TransferID labels the transfer.
	TransferID uint32
	// Bytes is the payload volume moved.
	Bytes int64
	// Elapsed is the sender-observed or receiver-observed duration.
	Elapsed time.Duration
}

// SenderConfig parameterises a Sender component.
type SenderConfig struct {
	// Self and Dest are the endpoints.
	Self, Dest core.BasicAddress
	// Proto selects the transport (may be DATA when a DataNetwork sits
	// below).
	Proto core.Transport
	// Data is the dataset to send; required.
	Data *Dataset
	// ChunkSize defaults to DefaultChunkSize.
	ChunkSize int
	// WindowSize bounds outstanding chunks (default 256 — the
	// asynchronous sender of the paper keeps the socket well fed, which
	// is precisely what delays control traffic in figure 8).
	WindowSize int
}

// Sender streams a dataset to a receiver, keeping WindowSize chunks in
// flight using notify responses. It requires the network port and
// provides TransferPort.
type Sender struct {
	cfg SenderConfig

	ctx      *kompics.Context
	netPort  *kompics.Port
	xferPort *kompics.Port

	window    *Window
	transfer  uint32
	startedAt time.Time
	running   bool
}

var _ kompics.Definition = (*Sender)(nil)

// NewSender validates cfg and builds the component definition.
func NewSender(cfg SenderConfig) (*Sender, error) {
	if cfg.Data == nil {
		return nil, errors.New("filetransfer: SenderConfig.Data is required")
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 256
	}
	if !cfg.Proto.Valid() {
		return nil, fmt.Errorf("filetransfer: invalid protocol %v", cfg.Proto)
	}
	return &Sender{cfg: cfg}, nil
}

// NetPort returns the required network port for wiring.
func (s *Sender) NetPort() *kompics.Port { return s.netPort }

// Port returns the provided transfer port.
func (s *Sender) Port() *kompics.Port { return s.xferPort }

// Init implements kompics.Definition.
func (s *Sender) Init(ctx *kompics.Context) {
	s.ctx = ctx
	s.netPort = ctx.Requires(core.NetworkPort)
	s.xferPort = ctx.Provides(TransferPort)

	ctx.Subscribe(s.xferPort, StartTransfer{}, func(e kompics.Event) {
		s.begin(e.(StartTransfer).TransferID)
	})
	ctx.Subscribe(s.netPort, core.NotifyResp{}, func(e kompics.Event) {
		s.onNotify(e.(core.NotifyResp))
	})
}

func (s *Sender) begin(id uint32) {
	if s.running {
		return
	}
	s.running = true
	s.transfer = id
	s.window = NewWindow(Chunks(s.cfg.Data.Size(), s.cfg.ChunkSize), s.cfg.WindowSize)
	s.startedAt = s.ctx.System().Clock().Now()
	s.fill()
}

// fill pumps chunks while the window has room.
func (s *Sender) fill() {
	if s.window == nil {
		return
	}
	total := uint32(len(Chunks(s.cfg.Data.Size(), s.cfg.ChunkSize)))
	for {
		chunk, ok := s.window.Next()
		if !ok {
			break
		}
		body := make([]byte, chunk.Size)
		if _, err := s.cfg.Data.ReadAt(body, chunk.Offset); err != nil && err != io.EOF {
			panic(fmt.Sprintf("filetransfer: dataset read: %v", err))
		}
		msg := &ChunkMsg{
			Src: s.cfg.Self, Dst: s.cfg.Dest, Proto: s.cfg.Proto,
			TransferID: s.transfer, Index: uint32(chunk.Index), Total: total,
			TotalBytes: s.cfg.Data.Size(), Body: body,
		}
		s.ctx.Trigger(core.NotifyReq{ID: uint64(chunk.Index), Msg: msg}, s.netPort)
	}
}

func (s *Sender) onNotify(core.NotifyResp) {
	if s.window == nil {
		return
	}
	s.window.Ack()
	if s.window.Done() {
		elapsed := s.ctx.System().Clock().Now().Sub(s.startedAt)
		s.ctx.Trigger(Complete{
			TransferID: s.transfer,
			Bytes:      s.cfg.Data.Size(),
			Elapsed:    elapsed,
		}, s.xferPort)
		s.window = nil
		s.running = false
		return
	}
	s.fill()
}

// Receiver accumulates chunks and reports completion on TransferPort.
type Receiver struct {
	ctx      *kompics.Context
	netPort  *kompics.Port
	xferPort *kompics.Port

	trackers map[uint32]*Tracker
	started  map[uint32]time.Time
}

var _ kompics.Definition = (*Receiver)(nil)

// NewReceiver builds the component definition.
func NewReceiver() *Receiver {
	return &Receiver{
		trackers: make(map[uint32]*Tracker),
		started:  make(map[uint32]time.Time),
	}
}

// NetPort returns the required network port for wiring.
func (r *Receiver) NetPort() *kompics.Port { return r.netPort }

// Port returns the provided transfer port.
func (r *Receiver) Port() *kompics.Port { return r.xferPort }

// Init implements kompics.Definition.
func (r *Receiver) Init(ctx *kompics.Context) {
	r.ctx = ctx
	r.netPort = ctx.Requires(core.NetworkPort)
	r.xferPort = ctx.Provides(TransferPort)

	ctx.Subscribe(r.netPort, (*core.Msg)(nil), func(e kompics.Event) {
		m, ok := e.(*ChunkMsg)
		if !ok {
			return // other traffic on a shared port is not for us
		}
		r.onChunk(m)
	})
}

func (r *Receiver) onChunk(m *ChunkMsg) {
	tr, ok := r.trackers[m.TransferID]
	if !ok {
		tr = NewTracker(m.TotalBytes)
		r.trackers[m.TransferID] = tr
		r.started[m.TransferID] = r.ctx.System().Clock().Now()
	}
	tr.Add(int(m.Index), len(m.Body))
	if tr.Complete() {
		elapsed := r.ctx.System().Clock().Now().Sub(r.started[m.TransferID])
		r.ctx.Trigger(Complete{
			TransferID: m.TransferID,
			Bytes:      tr.Received(),
			Elapsed:    elapsed,
		}, r.xferPort)
		delete(r.trackers, m.TransferID)
		delete(r.started, m.TransferID)
	}
}
