package filetransfer

import (
	"bytes"
	"compress/flate"
	"io"
	"testing"
	"testing/quick"

	"github.com/kompics/kompicsmessaging-go/internal/core"
)

func TestChunks(t *testing.T) {
	tests := []struct {
		name      string
		total     int64
		chunkSize int
		want      int
		lastSize  int
	}{
		{"exact", 100, 10, 10, 10},
		{"remainder", 105, 10, 11, 5},
		{"single", 5, 10, 1, 5},
		{"zero", 0, 10, 0, 0},
		{"bad chunk", 10, 0, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cs := Chunks(tt.total, tt.chunkSize)
			if len(cs) != tt.want {
				t.Fatalf("len = %d, want %d", len(cs), tt.want)
			}
			if tt.want == 0 {
				return
			}
			if cs[len(cs)-1].Size != tt.lastSize {
				t.Fatalf("last size = %d, want %d", cs[len(cs)-1].Size, tt.lastSize)
			}
			var sum int64
			for i, c := range cs {
				if c.Index != i {
					t.Fatalf("chunk %d has index %d", i, c.Index)
				}
				if c.Offset != int64(i)*int64(tt.chunkSize) {
					t.Fatalf("chunk %d offset %d", i, c.Offset)
				}
				sum += int64(c.Size)
			}
			if sum != tt.total {
				t.Fatalf("chunk sizes sum to %d, want %d", sum, tt.total)
			}
		})
	}
}

func TestWindow(t *testing.T) {
	w := NewWindow(Chunks(50, 10), 2)
	c1, ok := w.Next()
	if !ok || c1.Index != 0 {
		t.Fatal("first chunk wrong")
	}
	if _, ok := w.Next(); !ok {
		t.Fatal("second chunk refused")
	}
	if _, ok := w.Next(); ok {
		t.Fatal("window overfilled")
	}
	if w.Outstanding() != 2 || w.Remaining() != 3 {
		t.Fatalf("outstanding=%d remaining=%d", w.Outstanding(), w.Remaining())
	}
	w.Ack()
	if _, ok := w.Next(); !ok {
		t.Fatal("window did not reopen after ack")
	}
	for !w.Done() {
		w.Ack()
		w.Next()
	}
	if !w.Done() {
		t.Fatal("window never completed")
	}
}

func TestWindowZeroMax(t *testing.T) {
	w := NewWindow(Chunks(10, 10), 0)
	if _, ok := w.Next(); !ok {
		t.Fatal("zero max must clamp to 1")
	}
}

func TestDatasetDeterministicAndSeedSensitive(t *testing.T) {
	d1, err := NewDataset(42, 4096)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := NewDataset(42, 4096)
	d3, _ := NewDataset(43, 4096)

	b1 := make([]byte, 4096)
	b2 := make([]byte, 4096)
	b3 := make([]byte, 4096)
	if _, err := d1.ReadAt(b1, 0); err != nil {
		t.Fatal(err)
	}
	d2.ReadAt(b2, 0)
	d3.ReadAt(b3, 0)
	if !bytes.Equal(b1, b2) {
		t.Fatal("same seed produced different data")
	}
	if bytes.Equal(b1, b3) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestDatasetOffsetsConsistent(t *testing.T) {
	d, _ := NewDataset(7, 1<<20)
	full := make([]byte, 1000)
	d.ReadAt(full, 500)
	part := make([]byte, 100)
	d.ReadAt(part, 700)
	if !bytes.Equal(part, full[200:300]) {
		t.Fatal("overlapping reads disagree")
	}
}

func TestDatasetBoundaries(t *testing.T) {
	d, _ := NewDataset(1, 100)
	buf := make([]byte, 50)
	n, err := d.ReadAt(buf, 80)
	if n != 20 || err != io.EOF {
		t.Fatalf("tail read = %d, %v", n, err)
	}
	if _, err := d.ReadAt(buf, 100); err != io.EOF {
		t.Fatal("read past end must return EOF")
	}
	if _, err := d.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := NewDataset(1, -1); err == nil {
		t.Fatal("negative size accepted")
	}
	if d.Size() != 100 {
		t.Fatal("Size() wrong")
	}
}

func TestDatasetIncompressible(t *testing.T) {
	// The stand-in must share the NetCDF file's key property: DEFLATE
	// should not shrink it meaningfully.
	d, _ := NewDataset(99, 256<<10)
	buf := make([]byte, d.Size())
	d.ReadAt(buf, 0)
	var packed bytes.Buffer
	fw, _ := flate.NewWriter(&packed, flate.BestCompression)
	fw.Write(buf)
	fw.Close()
	if float64(packed.Len()) < 0.99*float64(len(buf)) {
		t.Fatalf("dataset compressed to %.1f%%; not incompressible",
			100*float64(packed.Len())/float64(len(buf)))
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker(100)
	tr.Add(0, 60)
	if tr.Complete() {
		t.Fatal("complete too early")
	}
	tr.Add(0, 60) // duplicate ignored
	if tr.Received() != 60 {
		t.Fatalf("duplicate counted: %d", tr.Received())
	}
	tr.Add(1, 40)
	if !tr.Complete() || tr.Received() != 100 {
		t.Fatalf("not complete: %d", tr.Received())
	}
}

func TestChunkMsgSerialization(t *testing.T) {
	reg := core.NewRegistry()
	if err := Register(reg); err != nil {
		t.Fatal(err)
	}
	in := &ChunkMsg{
		Src:   core.MustParseAddress("10.0.0.1:1"),
		Dst:   core.MustParseAddress("10.0.0.2:2"),
		Proto: core.UDT, TransferID: 3, Index: 4, Total: 5,
		TotalBytes: 395 << 20,
		Body:       bytes.Repeat([]byte{7}, 1000),
	}
	var buf bytes.Buffer
	if err := reg.Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	v, err := reg.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := v.(*ChunkMsg)
	if out.TransferID != 3 || out.Index != 4 || out.Total != 5 ||
		out.TotalBytes != 395<<20 || !bytes.Equal(out.Body, in.Body) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestChunkMsgProtocolReplacement(t *testing.T) {
	m := &ChunkMsg{Proto: core.DATA, Body: []byte{1}}
	m2 := m.WithWireProtocol(core.TCP)
	if m.Proto != core.DATA {
		t.Fatal("original mutated")
	}
	if m2.Header().Protocol() != core.TCP {
		t.Fatal("protocol not replaced")
	}
	if m.Size() != 1 {
		t.Fatal("Size wrong")
	}
}

func TestNewSenderValidation(t *testing.T) {
	if _, err := NewSender(SenderConfig{Proto: core.TCP}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	d, _ := NewDataset(1, 10)
	if _, err := NewSender(SenderConfig{Data: d}); err == nil {
		t.Fatal("invalid protocol accepted")
	}
}

func TestPropertyWindowConservation(t *testing.T) {
	// Regardless of interleaving, every chunk is handed out exactly once
	// and Done holds exactly when all are acked.
	f := func(totalKB uint8, max uint8) bool {
		total := int64(totalKB)*1024 + 1
		w := NewWindow(Chunks(total, 1024), int(max%16)+1)
		handed := 0
		for !w.Done() {
			if _, ok := w.Next(); ok {
				handed++
				continue
			}
			if w.Outstanding() == 0 {
				return false // stuck
			}
			w.Ack()
		}
		return handed == len(Chunks(total, 1024))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
