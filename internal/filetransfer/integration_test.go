package filetransfer

import (
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/core"
	"github.com/kompics/kompicsmessaging-go/internal/data"
	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

func freeTestPort(t *testing.T) int {
	t.Helper()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for i := 0; i < 200; i++ {
		p := 20000 + 2*rng.Intn(20000)
		ok := true
		for _, d := range []int{0, 1} {
			if l, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", p+d)); err == nil {
				l.Close()
			} else {
				ok = false
				break
			}
			if l, err := net.ListenPacket("udp", fmt.Sprintf("127.0.0.1:%d", p+d)); err == nil {
				l.Close()
			} else {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
	t.Fatal("no free port")
	return 0
}

// completionWatcher records Complete indications.
type completionWatcher struct {
	port *kompics.Port
	done chan Complete
}

func (w *completionWatcher) Init(ctx *kompics.Context) {
	w.port = ctx.Requires(TransferPort)
	ctx.Subscribe(w.port, Complete{}, func(e kompics.Event) {
		select {
		case w.done <- e.(Complete):
		default:
		}
	})
}

// starter kicks off the transfer from component context.
type starter struct {
	port *kompics.Port
	comp *kompics.Component
}

type kick struct{ id uint32 }

func (s *starter) Init(ctx *kompics.Context) {
	s.comp = ctx.Component()
	s.port = ctx.Requires(TransferPort)
	ctx.SubscribeSelf(kick{}, func(e kompics.Event) {
		ctx.Trigger(StartTransfer{TransferID: e.(kick).id}, s.port)
	})
}

// runTransfer moves size bytes over the real middleware on loopback using
// proto, optionally through a DataNetwork, and returns the receiver-side
// completion.
func runTransfer(t *testing.T, proto core.Transport, size int64, withDataNet bool) Complete {
	t.Helper()
	portA := freeTestPort(t)
	portB := freeTestPort(t)
	selfA := core.MustParseAddress(fmt.Sprintf("127.0.0.1:%d", portA))
	selfB := core.MustParseAddress(fmt.Sprintf("127.0.0.1:%d", portB))

	mkReg := func() *core.Network {
		return nil
	}
	_ = mkReg

	newNode := func(self core.BasicAddress) (*kompics.System, *core.Network) {
		reg := core.NewRegistry()
		if err := Register(reg); err != nil {
			t.Fatal(err)
		}
		netDef, err := core.NewNetwork(core.NetworkConfig{Self: self, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		sys := kompics.NewSystem()
		t.Cleanup(sys.Shutdown)
		comp := sys.Create(netDef)
		sys.Start(comp)
		return sys, netDef
	}

	sysA, netA := newNode(selfA)
	sysB, netB := newNode(selfB)

	dataset, err := NewDataset(11, size)
	if err != nil {
		t.Fatal(err)
	}
	senderDef, err := NewSender(SenderConfig{
		Self: selfA, Dest: selfB, Proto: proto,
		Data: dataset, ChunkSize: 16 << 10, WindowSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	senderComp := sysA.Create(senderDef)

	// Optionally interpose a DataNetwork on the sender side.
	if withDataNet {
		dn, err := data.NewDataNetwork(data.NetworkConfig{
			NewPRP: func() data.ProtocolRatioPolicy { return data.StaticRatio{R: data.Even} },
		})
		if err != nil {
			t.Fatal(err)
		}
		dnComp := sysA.Create(dn)
		kompics.MustConnect(netA.Port(), dn.Required())
		kompics.MustConnect(dn.Provided(), senderDef.NetPort())
		sysA.Start(dnComp)
	} else {
		kompics.MustConnect(netA.Port(), senderDef.NetPort())
	}

	recvDef := NewReceiver()
	recvComp := sysB.Create(recvDef)
	kompics.MustConnect(netB.Port(), recvDef.NetPort())

	watch := &completionWatcher{done: make(chan Complete, 1)}
	watchComp := sysB.Create(watch)
	kompics.MustConnect(recvDef.Port(), watch.port)

	st := &starter{}
	stComp := sysA.Create(st)
	kompics.MustConnect(senderDef.Port(), st.port)

	sysA.Start(senderComp)
	sysB.Start(recvComp)
	sysB.Start(watchComp)
	sysA.Start(stComp)

	st.comp.SelfTrigger(kick{id: 1})

	select {
	case c := <-watch.done:
		return c
	case <-time.After(60 * time.Second):
		t.Fatalf("transfer over %v did not complete", proto)
		return Complete{}
	}
}

func TestTransferOverTCP(t *testing.T) {
	c := runTransfer(t, core.TCP, 2<<20, false)
	if c.Bytes != 2<<20 {
		t.Fatalf("received %d bytes", c.Bytes)
	}
}

func TestTransferOverUDT(t *testing.T) {
	c := runTransfer(t, core.UDT, 1<<20, false)
	if c.Bytes != 1<<20 {
		t.Fatalf("received %d bytes", c.Bytes)
	}
}

func TestTransferOverDATA(t *testing.T) {
	// The DATA pseudo-protocol routes through the interceptor, which
	// splits chunks between real TCP and UDT connections.
	c := runTransfer(t, core.DATA, 1<<20, true)
	if c.Bytes != 1<<20 {
		t.Fatalf("received %d bytes", c.Bytes)
	}
}
