// Package filetransfer implements the bulk-data workload of §V-A: a large
// dataset is split into chunks that fit the middleware's serialisation
// buffers (65 kB in the paper) and streamed from a sender to a receiver
// with a bounded window of outstanding sends, using MessageNotify
// responses as the pacing signal. Delivery is at-most-once end to end —
// exactly the middleware semantics — and completion is tracked by the
// receiver.
//
// The paper transferred a 395 MB NetCDF climate file, chosen for its size
// and incompressibility; Dataset generates a deterministic pseudorandom
// (hence equally incompressible) stand-in of any size.
package filetransfer

import (
	"fmt"
	"io"
)

// DefaultChunkSize matches the paper's 65 kB serialisation buffers.
const DefaultChunkSize = 65 << 10

// DefaultDatasetSize matches the paper's 395 MB dataset.
const DefaultDatasetSize = 395 << 20

// Chunk describes one piece of a transfer.
type Chunk struct {
	// Index is the zero-based chunk number.
	Index int
	// Offset is the byte offset within the dataset.
	Offset int64
	// Size is the chunk length in bytes.
	Size int
}

// Chunks splits a total size into chunkSize pieces (the last may be
// short).
func Chunks(total int64, chunkSize int) []Chunk {
	if total <= 0 || chunkSize <= 0 {
		return nil
	}
	n := int((total + int64(chunkSize) - 1) / int64(chunkSize))
	out := make([]Chunk, 0, n)
	for i := 0; i < n; i++ {
		off := int64(i) * int64(chunkSize)
		size := chunkSize
		if rem := total - off; rem < int64(size) {
			size = int(rem)
		}
		out = append(out, Chunk{Index: i, Offset: off, Size: size})
	}
	return out
}

// Window is the sender-side sliding window over a chunk list: it hands out
// chunks while fewer than max are outstanding and retires them as send
// notifications arrive.
type Window struct {
	chunks      []Chunk
	next        int
	outstanding int
	max         int
	acked       int
}

// NewWindow creates a window of capacity max over the chunk list.
func NewWindow(chunks []Chunk, max int) *Window {
	if max <= 0 {
		max = 1
	}
	return &Window{chunks: chunks, max: max}
}

// Next returns the next chunk to send, if the window has room and chunks
// remain.
func (w *Window) Next() (Chunk, bool) {
	if w.outstanding >= w.max || w.next >= len(w.chunks) {
		return Chunk{}, false
	}
	c := w.chunks[w.next]
	w.next++
	w.outstanding++
	return c, true
}

// Ack retires one outstanding chunk (a send notification arrived).
func (w *Window) Ack() {
	if w.outstanding > 0 {
		w.outstanding--
		w.acked++
	}
}

// Outstanding reports chunks sent but not yet acknowledged by the
// transport.
func (w *Window) Outstanding() int { return w.outstanding }

// Remaining reports chunks not yet handed out.
func (w *Window) Remaining() int { return len(w.chunks) - w.next }

// Done reports whether every chunk has been handed out and acknowledged.
func (w *Window) Done() bool {
	return w.next == len(w.chunks) && w.outstanding == 0
}

// Dataset is a deterministic pseudorandom dataset of a given size,
// readable at arbitrary offsets. Equal seeds yield equal bytes, so sender
// and verifier can agree without sharing memory. The content is
// incompressible, like the paper's NetCDF file.
type Dataset struct {
	seed int64
	size int64
}

var _ io.ReaderAt = (*Dataset)(nil)

// NewDataset creates a dataset of the given size.
func NewDataset(seed, size int64) (*Dataset, error) {
	if size < 0 {
		return nil, fmt.Errorf("filetransfer: negative dataset size %d", size)
	}
	return &Dataset{seed: seed, size: size}, nil
}

// Size returns the dataset length in bytes.
func (d *Dataset) Size() int64 { return d.size }

// ReadAt implements io.ReaderAt with deterministic content.
func (d *Dataset) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("filetransfer: negative offset")
	}
	if off >= d.size {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > d.size-off {
		n = int(d.size - off)
	}
	for i := 0; i < n; i++ {
		pos := off + int64(i)
		block := uint64(pos) / 8
		shift := (uint64(pos) % 8) * 8
		p[i] = byte(splitmix64(uint64(d.seed)+block*0x9E3779B97F4A7C15) >> shift)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// splitmix64 is the SplitMix64 mixing function; excellent avalanche makes
// the dataset incompressible.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Tracker is receiver-side completion accounting for one transfer.
type Tracker struct {
	total    int64
	received int64
	chunks   int
	seen     map[int]bool
}

// NewTracker creates a tracker expecting total bytes.
func NewTracker(total int64) *Tracker {
	return &Tracker{total: total, seen: make(map[int]bool)}
}

// Add records a received chunk; duplicates (impossible on TCP/UDT,
// possible on UDP) are counted once.
func (t *Tracker) Add(index, size int) {
	if t.seen[index] {
		return
	}
	t.seen[index] = true
	t.received += int64(size)
	t.chunks++
}

// Received reports unique payload bytes so far.
func (t *Tracker) Received() int64 { return t.received }

// Complete reports whether every byte has arrived.
func (t *Tracker) Complete() bool { return t.received >= t.total }
