// Package lint is kmlint's analyzer framework: a deliberately small,
// stdlib-only stand-in for golang.org/x/tools/go/analysis (which this
// environment cannot fetch). It exists because the invariants that make
// the middleware fast are invisible to the compiler: the pooled-buffer
// ownership contract (DESIGN.md "Hot path and buffer ownership"), the
// cooperative scheduler's no-blocking-handler rule, and the seeded
// determinism that lets internal/netsim stand in for the paper's EC2
// testbed. Each analyzer turns one of those documented contracts into a
// build-time diagnostic.
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics through its Pass. Suppressions are explicit and audited:
// a `//kmlint:ignore <check> <reason>` comment on (or directly above) the
// offending line silences one finding, and
// `//kmlint:ignore-file <check> <reason>` silences a whole file — see
// ignore.go. The driver lives in cmd/kmlint.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects the package behind the Pass
// and reports findings; it must not retain the Pass.
type Analyzer struct {
	// Name is the check identifier used in diagnostics ("[name]") and in
	// kmlint:ignore directives.
	Name string
	// Doc describes the invariant the check enforces and where that
	// invariant is load-bearing.
	Doc string
	// Run performs the analysis.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees (including in-package test
	// files when analyzing a package under test).
	Files []*ast.File
	// Pkg and Info are the type-checker's results for Files.
	Pkg  *types.Package
	Info *types.Info
	// PkgPath is the package's import path (or a testdata-relative
	// pseudo-path for fixtures).
	PkgPath string
	// Facts holds the module-wide interprocedural summaries (facts.go),
	// computed once per Run over every loaded package and its
	// module-internal dependencies. May be nil under RunPackage without
	// facts; Facts accessors are nil-safe.
	Facts *Facts

	diags *[]Diagnostic
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
	// Suppressed marks a finding covered by a kmlint:ignore directive;
	// such findings are dropped unless RunOptions.KeepSuppressed asks for
	// them (the -json driver mode reports them annotated instead).
	Suppressed bool
	// IgnoredBy identifies the suppressing directive: "file:line (reason)".
	IgnoredBy string
}

// String formats the diagnostic in the driver's file:line: [check] message
// form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Check, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full kmlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{BufLeak, SimDet, HandlerBlock, LockSend, ShardLock, LockOrder, GoroLife}
}

// AnalyzerByName resolves a check name, for the driver's -check flag and
// for fixture tests.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunPackage applies the given analyzers to one loaded package with the
// given facts store (nil disables interprocedural checks) and returns the
// raw (unsuppressed) diagnostics.
func RunPackage(pkg *Package, analyzers []*Analyzer, facts *Facts) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			PkgPath:  pkg.Path,
			Facts:    facts,
			diags:    &diags,
		}
		a.Run(pass)
	}
	return diags
}

// RunOptions configures a Run.
type RunOptions struct {
	// ReportUnused reports kmlint:ignore directives that suppressed
	// nothing. Set it only when the full suite ran, since an ignore for an
	// analyzer that did not run always looks unused.
	ReportUnused bool
	// KeepSuppressed returns suppressed findings (marked, with IgnoredBy
	// set) instead of dropping them — the -json mode's audit trail.
	KeepSuppressed bool
}

// Run is the driver: it loads every directory, computes the
// interprocedural facts over the whole universe — the loaded packages
// plus every module-internal dependency the loader pulled in, ordered
// bottom-up over call-graph SCCs — then applies the analyzers one
// package at a time, filters suppressed findings and appends directive
// hygiene problems (malformed or unused ignores). Diagnostics come back
// sorted by position.
func Run(loader *Loader, dirs []string, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, error) {
	var units []*Package
	var all []Diagnostic
	for _, dir := range dirs {
		pkgs, err := loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		units = append(units, pkgs...)
	}

	universe := append([]*Package{}, units...)
	universe = append(universe, loader.DepPackages()...)
	facts := ComputeFacts(loader.Fset, universe)

	for _, pkg := range units {
		for _, terr := range pkg.TypeErrors {
			all = append(all, Diagnostic{
				Pos:     terr.Fset.Position(terr.Pos),
				Check:   "typecheck",
				Message: terr.Msg,
			})
		}
		diags := RunPackage(pkg, analyzers, facts)
		directives := collectDirectives(pkg.Fset, pkg.Files)
		all = append(all, applySuppressions(diags, directives, opts.KeepSuppressed)...)
		all = append(all, directiveProblems(directives, opts.ReportUnused)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Check < all[j].Check
	})
	return all, nil
}

// --- shared type-resolution helpers ------------------------------------------

// calleeFunc resolves the statically-known function or method a call
// invokes, or nil for calls of function values, conversions and builtins.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	return calleeFuncOf(p.Info, call)
}

// calleeVar resolves the function-valued variable (local, parameter or
// struct field) a call invokes, or nil when the callee is a declared
// function, method, conversion or builtin. Calls through such values are
// what locksend means by "callback".
func (p *Pass) calleeVar(call *ast.CallExpr) *types.Var {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	v, _ := p.Info.Uses[id].(*types.Var)
	if v == nil {
		return nil
	}
	if _, ok := v.Type().Underlying().(*types.Signature); !ok {
		return nil
	}
	return v
}

// funcIs reports whether fn is the package-level function pkgSuffix.name,
// where pkgSuffix is matched against the end of the defining package's
// import path ("time" matches "time", "internal/bufpool" matches the
// module-qualified path).
func funcIs(fn *types.Func, pkgSuffix, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return pathHasSuffix(fn.Pkg().Path(), pkgSuffix)
}

// methodIs reports whether fn is a method named name whose receiver's
// named type is recvName, defined in a package whose path ends in
// pkgSuffix.
func methodIs(fn *types.Func, pkgSuffix, recvName, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name {
		return false
	}
	if !pathHasSuffix(fn.Pkg().Path(), pkgSuffix) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedTypeName(sig.Recv().Type()) == recvName
}

// recvPkgPath returns the import path of the package defining fn's
// receiver type, or "" for package-level functions.
func recvPkgPath(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		if t.Obj().Pkg() != nil {
			return t.Obj().Pkg().Path()
		}
	case *types.Interface:
		// Interface method sets carry no package; fall back to the
		// method's own package (where the interface is declared).
		if fn.Pkg() != nil {
			return fn.Pkg().Path()
		}
	}
	return ""
}

// namedTypeName unwraps pointers and returns the named type's name, or "".
func namedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// pathHasSuffix matches whole trailing path elements: "net" matches "net"
// but not "internal/testnet".
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// pkgPathElems splits an import path into its elements.
func pkgPathElems(path string) []string {
	return strings.Split(path, "/")
}
