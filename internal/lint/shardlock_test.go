package lint

import "testing"

func TestShardLockSeededBugs(t *testing.T) {
	runFixture(t, "testdata/shardlock/bad", []*Analyzer{ShardLock}, false)
}

func TestShardLockCleanPatterns(t *testing.T) {
	runFixture(t, "testdata/shardlock/clean", []*Analyzer{ShardLock}, false)
}
