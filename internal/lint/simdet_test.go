package lint

import "testing"

func TestSimDetFlagsConePackages(t *testing.T) {
	runFixture(t, "testdata/simdet/netsim", []*Analyzer{SimDet}, false)
}

func TestSimDetIgnoresNonConePackages(t *testing.T) {
	runFixture(t, "testdata/simdet/app", []*Analyzer{SimDet}, false)
}

func TestSimDetFlagsFaultsPackage(t *testing.T) {
	runFixture(t, "testdata/simdet/faults", []*Analyzer{SimDet}, false)
}

func TestInSimCone(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"github.com/kompics/kompicsmessaging-go/internal/netsim", true},
		{"github.com/kompics/kompicsmessaging-go/internal/rl", true},
		{"github.com/kompics/kompicsmessaging-go/internal/vnet", true},
		// External test packages are held to the same standard.
		{"github.com/kompics/kompicsmessaging-go/internal/vnet_test", true},
		{"github.com/kompics/kompicsmessaging-go/internal/stats/quantile", true},
		{"github.com/kompics/kompicsmessaging-go/internal/faults", true},
		{"github.com/kompics/kompicsmessaging-go/internal/faults_test", true},
		{"github.com/kompics/kompicsmessaging-go/internal/transport", false},
		// Matching is per path element, not substring.
		{"github.com/kompics/kompicsmessaging-go/internal/benchmark", false},
		{"github.com/kompics/kompicsmessaging-go/internal/vnetx", false},
	}
	for _, c := range cases {
		if got := inSimCone(c.path); got != c.want {
			t.Errorf("inSimCone(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
