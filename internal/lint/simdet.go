package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SimDet enforces seeded determinism in the simulation cone. The packages
// that stand in for the paper's EC2 testbed (§V) — netsim, rl, bench,
// stats, vnet — must produce bit-identical runs for a given seed, which is
// what makes their figures reproducible. Three stdlib conveniences break
// that silently:
//
//   - time.Now / time.Sleep read the wall clock; simulation code takes an
//     internal/clock.Clock (Virtual in tests) instead.
//   - top-level math/rand functions draw from the global, racily-shared
//     source; simulation code threads an explicitly seeded *rand.Rand.
//   - net.Dial* / net.Listen* open real sockets; simulated topologies go
//     through internal/vnet or internal/netsim links.
//
// Methods on a *rand.Rand value are fine — the point is the seed, not the
// package.
var SimDet = &Analyzer{
	Name: "simdet",
	Doc:  "simulation-cone packages must not use wall clocks, global rand, or real sockets",
	Run:  runSimDet,
}

// simCone lists the package-path elements that mark a package as part of
// the deterministic simulation cone.
var simCone = map[string]bool{
	"netsim": true,
	"rl":     true,
	"bench":  true,
	"stats":  true,
	"vnet":   true,
	// faults powers the scripted-outage tests: an injector that consulted
	// the wall clock or the global rand would make failure scenarios (and
	// their status-event sequences) unreproducible.
	"faults": true,
}

// inSimCone reports whether the import path has a cone element. The
// "_test" suffix of external test packages is stripped so they are held to
// the same standard as the package they test.
func inSimCone(pkgPath string) bool {
	for _, elem := range pkgPathElems(strings.TrimSuffix(pkgPath, "_test")) {
		if simCone[elem] {
			return true
		}
	}
	return false
}

func runSimDet(pass *Pass) {
	if !inSimCone(pass.PkgPath) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.calleeFunc(call)
			if fn == nil {
				return true
			}
			switch {
			case funcIs(fn, "time", "Now"):
				pass.Reportf(call.Pos(),
					"time.Now in simulation cone breaks determinism; take an internal/clock.Clock and call its Now")
			case funcIs(fn, "time", "Sleep"):
				pass.Reportf(call.Pos(),
					"time.Sleep in simulation cone breaks determinism; advance an internal/clock.Virtual instead")
			case isGlobalRand(fn):
				pass.Reportf(call.Pos(),
					"global math/rand.%s in simulation cone is unseeded and racy; thread a seeded *rand.Rand", fn.Name())
			case isRealSocket(fn):
				pass.Reportf(call.Pos(),
					"net.%s opens a real socket in the simulation cone; route through internal/vnet or netsim links", fn.Name())
			}
			return true
		})
	}
}

// isGlobalRand matches top-level math/rand functions (the global source).
// Methods on *rand.Rand have a receiver and pass, as do rand.New and the
// source constructors, which exist precisely to escape the global source.
func isGlobalRand(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || !pathHasSuffix(fn.Pkg().Path(), "math/rand") {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}

// isRealSocket matches the package-level net dialers and listeners.
func isRealSocket(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	name := fn.Name()
	return strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen")
}
