package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BufLeak enforces the pooled-buffer ownership contract from DESIGN.md
// ("Hot path and buffer ownership"): a buffer obtained from bufpool.Get or
// bufpool.GetBuffer must, on every control-flow path, reach one of
//
//   - bufpool.Put / bufpool.PutBuffer,
//   - a return statement (ownership passes to the caller),
//   - a documented ownership-transfer sink (an OnMessage callback, a
//     channel send, storage into a struct/map/variable, or capture by a
//     closure or goroutine that outlives the statement).
//
// Dropping a pooled buffer is memory-safe but silently reverts the wire
// hot path to one allocation per message — the -62% allocs/op recorded in
// BENCH_hotpath.json depends on buffers cycling. The classic bug this
// catches is an early error return between Get and Put.
//
// The analysis is per-function and syntactic over the statement tree:
// loops are assumed to run at least once, a release anywhere in a branch
// construct counts for the paths that reach it, and passing the buffer to
// an ordinary function is a borrow, not a transfer. Ownership decided by
// pointer aliasing (e.g. "the callee's return value shares dst's backing
// array") is invisible here; such audited cases carry a
// //kmlint:ignore bufleak annotation.
var BufLeak = &Analyzer{
	Name: "bufleak",
	Doc:  "pooled buffers must reach Put, a return, or an ownership-transfer sink on every path",
	Run:  runBufLeak,
}

const bufpoolPkg = "internal/bufpool"

// Transfer sinks are inferred, not listed. Until PR 7 this file carried a
// hand-maintained name table (OnMessage/deliver/submit/storeOwned/release)
// of call targets that take ownership of a buffer argument; the facts
// layer (facts.go) now derives the same property from the callee's own
// body — a parameter is a transfer sink when its value provably reaches
// bufpool.Put, a store, a channel, or another inferred sink — and exports
// it across packages, so Endpoint.deliver, decodeStage.submit,
// pktRing.storeOwned, outMsg.release and Endpoint.Send all classify
// themselves. The one name that survives is OnMessage: transport.Config's
// function-field callback whose handoff is documented API, with no body
// behind the field for inference to read.

func runBufLeak(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				bufLeakScanBody(pass, body)
			}
			return true // nested literals are analyzed independently
		})
	}
}

// bufLeakScanBody finds every tracked Get assignment in the function body
// (without descending into nested function literals) and path-checks the
// remainder of its enclosing statement list.
func bufLeakScanBody(pass *Pass, body *ast.BlockStmt) {
	var walkList func(list []ast.Stmt)
	walkList = func(list []ast.Stmt) {
		for i, s := range list {
			if obj, name, pos := trackedGetAssign(pass, s); obj != nil {
				lk := &leakScan{pass: pass, obj: obj, getPos: pos, getName: name}
				st := lk.scanStmts(list[i+1:], pathState{})
				if !st.terminated && !st.released {
					pass.Reportf(pos,
						"buffer from bufpool.%s is dropped when this block ends: missing bufpool.Put, return, or ownership transfer",
						name)
				}
			}
			for _, sub := range subLists(s) {
				walkList(sub)
			}
		}
	}
	walkList(body.List)
}

// subLists returns the statement lists nested directly inside s (not
// crossing into function literals).
func subLists(s ast.Stmt) [][]ast.Stmt {
	switch t := s.(type) {
	case *ast.BlockStmt:
		return [][]ast.Stmt{t.List}
	case *ast.IfStmt:
		out := [][]ast.Stmt{t.Body.List}
		if t.Else != nil {
			out = append(out, subLists(t.Else)...)
		}
		return out
	case *ast.ForStmt:
		return [][]ast.Stmt{t.Body.List}
	case *ast.RangeStmt:
		return [][]ast.Stmt{t.Body.List}
	case *ast.SwitchStmt:
		return clauseLists(t.Body)
	case *ast.TypeSwitchStmt:
		return clauseLists(t.Body)
	case *ast.SelectStmt:
		return clauseLists(t.Body)
	case *ast.LabeledStmt:
		return subLists(t.Stmt)
	}
	return nil
}

func clauseLists(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		switch cl := c.(type) {
		case *ast.CaseClause:
			out = append(out, cl.Body)
		case *ast.CommClause:
			out = append(out, cl.Body)
		}
	}
	return out
}

// trackedGetAssign matches `v := bufpool.Get(n)` (also GetBuffer, also a
// slicing of the call like Get(n)[:0]) with a single plain identifier on
// the left, and returns the variable's object, the Get function's name and
// the call position.
func trackedGetAssign(pass *Pass, s ast.Stmt) (types.Object, string, token.Pos) {
	as, ok := s.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, "", token.NoPos
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, "", token.NoPos
	}
	call := unwrapToCall(as.Rhs[0])
	if call == nil {
		return nil, "", token.NoPos
	}
	fn := pass.calleeFunc(call)
	name := ""
	switch {
	case funcIs(fn, bufpoolPkg, "Get"):
		name = "Get"
	case funcIs(fn, bufpoolPkg, "GetBuffer"):
		name = "GetBuffer"
	default:
		return nil, "", token.NoPos
	}
	obj := pass.Info.Defs[id]
	if obj == nil {
		obj = pass.Info.Uses[id] // plain `=` to an existing variable
	}
	if obj == nil {
		return nil, "", token.NoPos
	}
	return obj, name, call.Pos()
}

// unwrapToCall strips parens and slice expressions: bufpool.Get(n)[:0] is
// still the Get's buffer.
func unwrapToCall(e ast.Expr) *ast.CallExpr {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.CallExpr:
			return t
		default:
			return nil
		}
	}
}

// pathState tracks one buffer along one path.
type pathState struct {
	released   bool // Put/transfer/return-with-value happened
	terminated bool // control left the function (or this scan's scope)
}

// leakScan path-checks one tracked buffer variable.
type leakScan struct {
	pass    *Pass
	obj     types.Object
	getPos  token.Pos
	getName string
}

func (lk *leakScan) getLine() int {
	return lk.pass.Fset.Position(lk.getPos).Line
}

func (lk *leakScan) scanStmts(list []ast.Stmt, st pathState) pathState {
	for _, s := range list {
		st = lk.scanStmt(s, st)
		if st.terminated {
			return st
		}
	}
	return st
}

func (lk *leakScan) scanStmt(s ast.Stmt, st pathState) pathState {
	switch t := s.(type) {
	case *ast.AssignStmt:
		return lk.scanAssign(t, st)

	case *ast.ReturnStmt:
		if lk.usesNode(t) {
			return pathState{released: true, terminated: true}
		}
		if !st.released {
			lk.pass.Reportf(t.Pos(),
				"buffer from bufpool.%s (line %d) can escape here without bufpool.Put, return, or ownership transfer",
				lk.getName, lk.getLine())
		}
		return pathState{released: st.released, terminated: true}

	case *ast.DeferStmt:
		if lk.exprReleases(t.Call) {
			st.released = true
		}
		return st

	case *ast.GoStmt:
		// A goroutine capturing or receiving the buffer owns it from here.
		if lk.exprReleases(t.Call) || lk.usesNode(t.Call) {
			st.released = true
		}
		return st

	case *ast.SendStmt:
		if lk.usesNode(t.Value) {
			st.released = true
		}
		return st

	case *ast.ExprStmt:
		if lk.exprReleases(t.X) {
			st.released = true
		}
		if isPanicCall(t.X) {
			st.terminated = true
		}
		return st

	case *ast.IfStmt:
		if t.Init != nil {
			st = lk.scanStmt(t.Init, st)
		}
		if lk.exprReleases(t.Cond) {
			st.released = true
		}
		thenSt := lk.scanStmts(t.Body.List, st)
		elseSt := st
		if t.Else != nil {
			elseSt = lk.scanStmt(t.Else, st)
		}
		return mergeStates(thenSt, elseSt)

	case *ast.BlockStmt:
		return lk.scanStmts(t.List, st)

	case *ast.LabeledStmt:
		return lk.scanStmt(t.Stmt, st)

	case *ast.ForStmt:
		if t.Init != nil {
			st = lk.scanStmt(t.Init, st)
		}
		if t.Cond != nil && lk.exprReleases(t.Cond) {
			st.released = true
		}
		bodySt := lk.scanStmts(t.Body.List, st)
		// Optimistic: assume the body runs; a release inside counts.
		st.released = st.released || bodySt.released
		if t.Cond == nil && !hasLoopBreak(t.Body) {
			st.terminated = true
		}
		return st

	case *ast.RangeStmt:
		bodySt := lk.scanStmts(t.Body.List, st)
		st.released = st.released || bodySt.released
		return st

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return lk.scanClauses(t, st)

	case *ast.BranchStmt:
		// break/continue/goto: this linear path ends here with its current
		// state; the loop-level merge is optimistic anyway.
		return pathState{released: st.released, terminated: true}

	case *ast.DeclStmt:
		if lk.usesNode(t) {
			// var x = v — aliased into another name; hand off tracking.
			st.released = true
		}
		return st

	default:
		if lk.stmtReleases(s) {
			st.released = true
		}
		return st
	}
}

// scanAssign handles releases via and reassignment of the tracked variable.
func (lk *leakScan) scanAssign(t *ast.AssignStmt, st pathState) pathState {
	rhsUses := false
	for _, rhs := range t.Rhs {
		if lk.exprReleases(rhs) {
			st.released = true
		}
		if lk.usesNode(rhs) {
			rhsUses = true
		}
	}
	// Storage into a field, element or another variable transfers
	// ownership to the destination's owner: x.f = v, m[k] = v, w = v.
	// A blank discard (_ = v) stores nowhere and transfers nothing.
	lhsIsObj := false
	for _, lhs := range t.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if lk.identIsObj(id) {
				lhsIsObj = true
				continue
			}
			if id.Name == "_" {
				continue
			}
		}
		if rhsUses {
			st.released = true
		}
	}
	if lhsIsObj {
		if rhsUses {
			// v = append(v, ...) / v = v[:n]: same buffer, keep tracking.
			return st
		}
		// v = something-else: the original buffer is gone.
		if !st.released {
			lk.pass.Reportf(t.Pos(),
				"buffer from bufpool.%s (line %d) is overwritten before bufpool.Put, return, or ownership transfer",
				lk.getName, lk.getLine())
		}
		// The variable now holds an untracked value; stop following it.
		st.released = true
	}
	return st
}

func (lk *leakScan) scanClauses(s ast.Stmt, st pathState) pathState {
	var body *ast.BlockStmt
	switch t := s.(type) {
	case *ast.SwitchStmt:
		if t.Init != nil {
			st = lk.scanStmt(t.Init, st)
		}
		if t.Tag != nil && lk.exprReleases(t.Tag) {
			st.released = true
		}
		body = t.Body
	case *ast.TypeSwitchStmt:
		if t.Init != nil {
			st = lk.scanStmt(t.Init, st)
		}
		body = t.Body
	case *ast.SelectStmt:
		body = t.Body
	}
	merged := pathState{released: true, terminated: true}
	sawClause, hasDefault := false, false
	for _, c := range body.List {
		var stmts []ast.Stmt
		clauseSt := st
		switch cl := c.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				clauseSt = lk.scanStmt(cl.Comm, clauseSt)
			}
			stmts = cl.Body
		default:
			continue
		}
		sawClause = true
		merged = mergeStates(merged, lk.scanStmts(stmts, clauseSt))
	}
	if !sawClause {
		return st
	}
	if !hasDefault {
		// Without a default the zero-matches path falls through carrying
		// the incoming state (selects always block, but stay conservative
		// there too).
		merged = mergeStates(merged, st)
	}
	return merged
}

// mergeStates joins two path states at a control-flow merge point.
func mergeStates(a, b pathState) pathState {
	switch {
	case a.terminated && b.terminated:
		return pathState{released: a.released && b.released, terminated: true}
	case a.terminated:
		return b
	case b.terminated:
		return a
	default:
		return pathState{released: a.released && b.released}
	}
}

// exprReleases reports whether evaluating e transfers ownership of the
// tracked buffer: a bufpool.Put/PutBuffer call, a documented sink call, a
// composite literal embedding the buffer, or a function literal capturing
// it.
func (lk *leakScan) exprReleases(e ast.Expr) bool {
	released := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.CallExpr:
			if lk.callReleases(t) {
				released = true
			}
		case *ast.CompositeLit:
			for _, elt := range t.Elts {
				if lk.usesNode(elt) {
					released = true
				}
			}
		case *ast.FuncLit:
			if lk.usesNode(t.Body) {
				released = true
			}
			return false // captures counted; don't double-scan the body
		}
		return true
	})
	return released
}

// stmtReleases applies exprReleases to every expression hanging off an
// otherwise-unmodeled statement.
func (lk *leakScan) stmtReleases(s ast.Stmt) bool {
	released := false
	ast.Inspect(s, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && lk.exprReleases(e) {
			released = true
			return false
		}
		return true
	})
	return released
}

// callReleases reports whether one call takes ownership of the buffer:
// bufpool recycling, an inferred transfer parameter, an inferred
// receiver-position sink (newOutMsg(v).release(err) recycles the buffer
// the value was built around even though v is not among the arguments),
// or the documented OnMessage function-field contract.
func (lk *leakScan) callReleases(call *ast.CallExpr) bool {
	var argUses []int
	for i, arg := range call.Args {
		if lk.usesNode(arg) {
			argUses = append(argUses, i)
		}
	}
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if fn := lk.pass.calleeFunc(call); fn != nil {
		if len(argUses) > 0 &&
			(funcIs(fn, bufpoolPkg, "Put") || funcIs(fn, bufpoolPkg, "PutBuffer")) {
			return true
		}
		ft := lk.pass.Facts.Summary(fn)
		if ft == nil {
			return false // external or unsummarized code borrows
		}
		sig, _ := fn.Type().(*types.Signature)
		for _, i := range argUses {
			pi := i
			if sig != nil && sig.Variadic() && pi >= sig.Params().Len()-1 {
				pi = sig.Params().Len() - 1
			}
			if pi < len(ft.TransferParams) && ft.TransferParams[pi] {
				return true
			}
		}
		return ft.RecvTransfer && sel != nil && lk.usesNode(sel.X)
	}
	if len(argUses) == 0 {
		return false
	}
	// Callee is a function value; only the documented OnMessage contract
	// transfers ownership (transport.Config.OnMessage is a func field —
	// fixtures and core bind it under both spellings).
	name := ""
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	}
	return strings.EqualFold(name, "onmessage")
}

// usesNode reports whether any identifier under n resolves to the tracked
// variable.
func (lk *leakScan) usesNode(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && lk.identIsObj(id) {
			found = true
		}
		return !found
	})
	return found
}

func (lk *leakScan) identIsObj(id *ast.Ident) bool {
	if obj := lk.pass.Info.Uses[id]; obj != nil && obj == lk.obj {
		return true
	}
	return lk.pass.Info.Defs[id] == lk.obj
}

// isPanicCall matches a direct panic(...) statement.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// hasLoopBreak reports whether the loop body contains a break exiting this
// loop: an unlabeled break not nested in an inner loop/switch/select, or
// any labeled break (conservatively assumed to target this loop).
func hasLoopBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node, nested bool)
	walk = func(n ast.Node, nested bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if found || m == nil {
				return false
			}
			if m == n {
				return true
			}
			switch t := m.(type) {
			case *ast.BranchStmt:
				if t.Tok == token.BREAK && (!nested || t.Label != nil) {
					found = true
				}
				return false
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				walk(m, true)
				return false
			case *ast.FuncLit:
				return false
			}
			return true
		})
	}
	walk(body, false)
	return found
}
