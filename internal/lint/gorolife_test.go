package lint

import "testing"

func TestGoroLifeBadFixtures(t *testing.T) {
	runFixture(t, "testdata/gorolife/bad", []*Analyzer{GoroLife}, false)
}

func TestGoroLifeCleanFixtures(t *testing.T) {
	runFixture(t, "testdata/gorolife/clean", []*Analyzer{GoroLife}, false)
}
