package lint

import "testing"

func TestLockSendSeededBugs(t *testing.T) {
	runFixture(t, "testdata/locksend/bad", []*Analyzer{LockSend}, false)
}

func TestLockSendCleanPatterns(t *testing.T) {
	runFixture(t, "testdata/locksend/clean", []*Analyzer{LockSend}, false)
}
