package lint

// The fixture harness is kmlint's stand-in for x/tools' analysistest:
// fixture files under testdata/<check>/ carry `// want "regex"` comments
// on the lines where the check must fire (several regexes on one line mean
// several findings), and the harness fails on any unmatched expectation or
// unexpected diagnostic. Expectations match against "[check] message", so
// fixtures can pin the check name as well as the wording. Fixtures
// type-check against the real module packages (bufpool, kompics, clock)
// through the loader, so a fixture that drifts from the real API fails
// loudly as a typecheck diagnostic.

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var (
	loaderOnce   sync.Once
	sharedLoader *Loader
	loaderErr    error
)

// fixtureLoader returns a process-wide loader so module dependencies
// (bufpool, kompics, the stdlib) are type-checked once across all fixture
// tests.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		sharedLoader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("building loader: %v", loaderErr)
	}
	return sharedLoader
}

// expectation is one `// want` entry: a diagnostic that must appear on
// file:line matching re.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// parseExpectations scans fixture sources for // want comments. Each
// quoted string after "want" is one expected diagnostic on that line.
func parseExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var out []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", path, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range splitQuoted(t, path, pos.Line, m[1]) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %q: %v", path, pos.Line, q, err)
					}
					out = append(out, &expectation{file: path, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// splitQuoted extracts the double-quoted strings from a want payload.
func splitQuoted(t *testing.T, file string, line int, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		if s[0] != '"' {
			t.Fatalf("%s:%d: malformed want clause at %q", file, line, s)
		}
		end := strings.Index(s[1:], `"`)
		if end < 0 {
			t.Fatalf("%s:%d: unterminated want string %q", file, line, s)
		}
		out = append(out, s[1:1+end])
		s = s[end+2:]
	}
}

// runFixture applies the named analyzers to one testdata directory and
// checks every diagnostic against the fixture's want comments.
func runFixture(t *testing.T, dir string, analyzers []*Analyzer, reportUnused bool) {
	t.Helper()
	loader := fixtureLoader(t)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(loader, []string{abs}, analyzers, RunOptions{ReportUnused: reportUnused})
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	// The loader records absolute file names; parse expectations from the
	// same paths so they compare equal.
	expects := parseExpectations(t, abs)
	for _, d := range diags {
		tagged := fmt.Sprintf("[%s] %s", d.Check, d.Message)
		found := false
		for _, ex := range expects {
			if ex.matched || ex.file != d.Pos.Filename || ex.line != d.Pos.Line {
				continue
			}
			if ex.re.MatchString(tagged) {
				ex.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic %s:%d: %s", d.Pos.Filename, d.Pos.Line, tagged)
		}
	}
	for _, ex := range expects {
		if !ex.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", ex.file, ex.line, ex.re)
		}
	}
}
