package lint

import "testing"

func TestBufLeakSeededBugs(t *testing.T) {
	runFixture(t, "testdata/bufleak/leak", []*Analyzer{BufLeak}, false)
}

func TestBufLeakCleanPatterns(t *testing.T) {
	runFixture(t, "testdata/bufleak/clean", []*Analyzer{BufLeak}, false)
}
