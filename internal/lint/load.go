package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader parses and type-checks packages for analysis without
// golang.org/x/tools. Standard-library imports resolve through the
// compiler's source importer; imports inside this module resolve by
// type-checking the target directory's non-test sources recursively
// (memoized). That is exactly the slice of the import universe the
// repository can reach — go.mod declares no external dependencies, and
// kmlint is one of the guards keeping it that way.
type Loader struct {
	Fset *token.FileSet
	// ModulePath and ModuleDir come from the enclosing go.mod.
	ModulePath string
	ModuleDir  string

	std   types.Importer
	cache map[string]*types.Package
	// deps retains the full analysis view (syntax + Info) of every
	// module-internal package type-checked through Import, so the facts
	// layer can compute summaries for dependency code the analyzers never
	// run over directly.
	deps map[string]*Package
}

// Package is one type-checked unit of analysis: either a directory's
// package (with its in-package test files) or the directory's external
// _test package.
type Package struct {
	Dir   string
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-checking failures; analysis proceeds
	// on the partial information the checker could recover.
	TypeErrors []TypeError
}

// TypeError is a type-checking failure with its position still in Fset
// coordinates.
type TypeError struct {
	Fset *token.FileSet
	Pos  token.Pos
	Msg  string
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  modDir,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      map[string]*types.Package{},
		deps:       map[string]*Package{},
	}, nil
}

// findModule walks up from dir to the first go.mod and returns its
// directory and module path.
func findModule(dir string) (string, string, error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Import implements types.Importer: module-internal paths type-check from
// source (non-test files only, mirroring the go tool), everything else is
// delegated to the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")))
		files, _, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("lint: no Go source in %s", dir)
		}
		pkg, info, errs := l.typeCheck(path, files)
		if len(errs) > 0 {
			return nil, fmt.Errorf("lint: type-checking dependency %s: %s", path, errs[0].Msg)
		}
		l.cache[path] = pkg
		l.deps[path] = &Package{
			Dir: dir, Path: path, Name: files[0].Name.Name,
			Fset: l.Fset, Files: files, Types: pkg, Info: info,
		}
		return pkg, nil
	}
	return l.std.Import(path)
}

// DepPackages returns every module-internal dependency package Import has
// type-checked so far, sorted by import path. Together with the packages
// under analysis they form the facts universe: the call graph spans them,
// so a summary computed for transport.Endpoint.Send is visible while
// analyzing internal/core.
func (l *Loader) DepPackages() []*Package {
	paths := make([]string, 0, len(l.deps))
	for p := range l.deps {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, l.deps[p])
	}
	return out
}

// parseDir parses a directory's .go files (ParseComments, so kmlint
// directives and // want expectations survive), split into non-test files
// and test files.
func (l *Loader) parseDir(dir string) (base, tests []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		if !matchFileName(name, runtime.GOOS, runtime.GOARCH) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		if !matchBuildTags(f) {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			tests = append(tests, f)
		} else {
			base = append(base, f)
		}
	}
	return base, tests, nil
}

// Build-constraint filtering: packages under analysis may carry
// platform-specific files (e.g. internal/udt's sendmmsg fast path), and
// type-checking two mutually exclusive variants together produces
// redeclaration errors. Selection mirrors the go tool for the host
// platform — filename GOOS/GOARCH suffixes plus //go:build lines.

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// matchFileName applies go's implicit filename constraints: a trailing
// _GOOS, _GOARCH, or _GOOS_GOARCH component restricts the file to that
// platform. The first component never counts ("linux.go" is unconstrained).
func matchFileName(name, goos, goarch string) bool {
	name = strings.TrimSuffix(name, ".go")
	name = strings.TrimSuffix(name, "_test")
	parts := strings.Split(name, "_")
	if len(parts) >= 3 && knownOS[parts[len(parts)-2]] && knownArch[parts[len(parts)-1]] {
		return parts[len(parts)-2] == goos && parts[len(parts)-1] == goarch
	}
	if len(parts) >= 2 {
		last := parts[len(parts)-1]
		if knownOS[last] {
			return last == goos
		}
		if knownArch[last] {
			return last == goarch
		}
	}
	return true
}

// matchBuildTags evaluates a file's //go:build line (if any) for the host
// platform. Only comments above the package clause are considered.
func matchBuildTags(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			return expr.Eval(func(tag string) bool {
				switch tag {
				case runtime.GOOS, runtime.GOARCH, "gc":
					return true
				case "unix":
					return knownOS[runtime.GOOS] && runtime.GOOS != "windows" &&
						runtime.GOOS != "plan9" && runtime.GOOS != "js" && runtime.GOOS != "wasip1"
				}
				return strings.HasPrefix(tag, "go1.")
			})
		}
	}
	return true
}

// typeCheck runs go/types over files with soft error handling: analysis
// wants whatever partial Info the checker can produce.
func (l *Loader) typeCheck(path string, files []*ast.File) (*types.Package, *types.Info, []TypeError) {
	var errs []TypeError
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if terr, ok := err.(types.Error); ok {
				errs = append(errs, TypeError{Fset: l.Fset, Pos: terr.Pos, Msg: terr.Msg})
				return
			}
			errs = append(errs, TypeError{Fset: l.Fset, Msg: err.Error()})
		},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	return pkg, info, errs
}

// PathFor maps an absolute directory inside the module to its import
// path. Directories outside any package tree (testdata fixtures) still
// get a deterministic pseudo-path, which the simdet cone matching relies
// on.
func (l *Loader) PathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleDir)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir parses and type-checks one directory for analysis. It returns
// up to two packages: the directory's package including its in-package
// test files, and the external _test package when one exists. An empty
// directory yields no packages and no error.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	base, tests, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(base) == 0 && len(tests) == 0 {
		return nil, nil
	}
	path, err := l.PathFor(dir)
	if err != nil {
		return nil, err
	}

	baseName := ""
	if len(base) > 0 {
		baseName = base[0].Name.Name
	}
	var inPkg, external []*ast.File
	inPkg = append(inPkg, base...)
	for _, f := range tests {
		if baseName != "" && f.Name.Name == baseName {
			inPkg = append(inPkg, f)
		} else if strings.HasSuffix(f.Name.Name, "_test") {
			external = append(external, f)
		} else {
			// Test files for a package with no non-test sources.
			inPkg = append(inPkg, f)
		}
	}

	var pkgs []*Package
	if len(inPkg) > 0 {
		tpkg, info, errs := l.typeCheck(path, inPkg)
		pkgs = append(pkgs, &Package{
			Dir: dir, Path: path, Name: inPkg[0].Name.Name,
			Fset: l.Fset, Files: inPkg, Types: tpkg, Info: info, TypeErrors: errs,
		})
	}
	if len(external) > 0 {
		tpkg, info, errs := l.typeCheck(path+"_test", external)
		pkgs = append(pkgs, &Package{
			Dir: dir, Path: path + "_test", Name: external[0].Name.Name,
			Fset: l.Fset, Files: external, Types: tpkg, Info: info, TypeErrors: errs,
		})
	}
	return pkgs, nil
}
