package lint

import (
	"strings"
	"testing"
)

// FuzzParseDirective hammers the directive parser with arbitrary comment
// text and checks the invariants the suppression machinery depends on:
// directive-prefixed text always parses (possibly as malformed), a
// well-formed result always names a real check and carries a reason, and
// trailing carriage returns — CRLF files, or their absence on a
// directive sitting on the last line of a file with no final newline —
// never change the outcome.
func FuzzParseDirective(f *testing.F) {
	seeds := []string{
		"// ordinary comment",
		"// kmlint:ignore bufleak prose not a directive",
		"//kmlint:ignore bufleak audited because reasons",
		"//kmlint:ignore-file simdet drives real sockets on purpose",
		"//kmlint:ignore",
		"//kmlint:ignore-file",
		"//kmlint:ignore bufleak",
		"//kmlint:ignore nosuchcheck with a reason",
		"//kmlint:ignore bufleak reason with trailing CR\r",
		"//kmlint:ignore-file simdet CRLF file\r\r",
		"//kmlint:ignoreXbufleak smashed separator",
		"//kmlint:ignore  bufleak   double spaced reason",
		"//kmlint:ignore gorolife last line without trailing newline",
		"//kmlint:ignore buf\rleak interior CR stays",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d := parseDirective(text)
		trimmed := strings.TrimRight(text, "\r")

		// Trailing CRs are presentation, not content.
		dt := parseDirective(trimmed)
		if (d == nil) != (dt == nil) {
			t.Fatalf("CR-sensitive parse: %q -> %v, %q -> %v", text, d, trimmed, dt)
		}
		if d != nil && *d != *dt {
			t.Fatalf("CR-sensitive parse: %q -> %+v, %q -> %+v", text, *d, trimmed, *dt)
		}

		if d == nil {
			// Nil means "not a directive at all"; anything carrying the
			// exact prefix must instead come back malformed, or a typo'd
			// suppression would be silently skipped.
			if strings.HasPrefix(trimmed, linePrefix) || strings.HasPrefix(trimmed, filePrefix) ||
				trimmed == strings.TrimSuffix(linePrefix, " ") ||
				trimmed == strings.TrimSuffix(filePrefix, " ") {
				t.Fatalf("parseDirective(%q) = nil for directive-prefixed text", text)
			}
			return
		}
		if d.malformed == "" {
			if AnalyzerByName(d.check) == nil {
				t.Fatalf("well-formed directive %q names unknown check %q", text, d.check)
			}
			if d.reason == "" {
				t.Fatalf("well-formed directive %q has no reason", text)
			}
		}
		if d.reason != strings.TrimSpace(d.reason) {
			t.Fatalf("reason %q not trimmed (from %q)", d.reason, text)
		}
	})
}
