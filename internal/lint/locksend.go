package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockSend flags channel operations and function-value callbacks performed
// between a mu.Lock() and its Unlock when the unlock is not deferred — the
// UDT conn/mux deadlock class. A send on an unbuffered (or full) channel
// parks the goroutine while it holds the mutex; if the receiver needs that
// same mutex to drain the channel, both sides wait forever. Calling a
// caller-supplied function value under the lock is the same bug one hop
// out: the callback may block, or reenter and self-deadlock.
//
// `mu.Lock(); defer mu.Unlock()` is exempt: with a deferred unlock a
// parked send still holds the lock, but panics and early returns cannot
// leave it held, and the pattern signals the critical section spans the
// whole function by design. The fix kmlint pushes toward is the one
// udt.Conn.dispatch uses: copy what you need under the lock, Unlock, then
// send or call.
var LockSend = &Analyzer{
	Name: "locksend",
	Doc:  "no channel sends or function-value callbacks while holding a non-deferred mutex lock",
	Run:  runLockSend,
}

func runLockSend(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				ls := &lockScan{pass: pass}
				ls.scanList(body.List, map[string]bool{})
			}
			return true // nested literals get their own scan
		})
	}
}

// lockScan walks one function's statements tracking which mutexes are
// held. Mutexes are identified by the printed form of the receiver
// expression ("c.mu"), which is exact within one function for the
// field-or-local receivers the codebase uses.
type lockScan struct {
	pass *Pass
}

// scanList processes statements in order against the set of held locks,
// reporting whether the list terminates control flow (return/panic). The
// set is mutated in place; branch constructs scan each arm with a copy and
// then reconcile optimistically (a lock released in any live arm is
// treated as released — false negatives over false positives at merge
// points). Crucially, arms that terminate do not participate in the merge:
// the common `if cond { mu.Unlock(); return }` early-exit must not mark
// the lock released on the fall-through path.
func (ls *lockScan) scanList(list []ast.Stmt, held map[string]bool) bool {
	for _, s := range list {
		if ls.scanStmt(s, held) {
			return true
		}
	}
	return false
}

func (ls *lockScan) scanStmt(s ast.Stmt, held map[string]bool) (terminated bool) {
	switch t := s.(type) {
	case *ast.ExprStmt:
		if mu, isLock, _ := lockCall(ls.pass, t.X); mu != "" {
			if isLock {
				held[mu] = true
			} else {
				delete(held, mu)
			}
			return false
		}
		ls.checkExpr(t.X, held)
		return isPanicCall(t.X)

	case *ast.DeferStmt:
		if mu, isLock, _ := lockCall(ls.pass, t.Call); mu != "" && !isLock {
			// Deferred unlock: the critical section is panic- and
			// return-safe; stop tracking this mutex.
			delete(held, mu)
		}
		// Deferred calls run at return, outside any still-held critical
		// section from this scan's perspective; don't check them.
		return false

	case *ast.SendStmt:
		ls.reportIfHeld(t.Pos(), held, "channel send")
		ls.checkExpr(t.Value, held)
		return false

	case *ast.GoStmt:
		// The spawned goroutine does not hold this goroutine's locks;
		// check only the argument expressions evaluated here.
		for _, arg := range t.Call.Args {
			ls.checkExpr(arg, held)
		}
		return false

	case *ast.AssignStmt:
		for _, rhs := range t.Rhs {
			ls.checkExpr(rhs, held)
		}
		return false

	case *ast.ReturnStmt:
		for _, r := range t.Results {
			ls.checkExpr(r, held)
		}
		return true

	case *ast.BranchStmt:
		// break/continue/goto leave this linear path; treat like
		// termination so the enclosing merge ignores this arm's state.
		return true

	case *ast.IfStmt:
		if t.Init != nil {
			ls.scanStmt(t.Init, held)
		}
		ls.checkExpr(t.Cond, held)
		thenHeld := copyHeld(held)
		thenTerm := ls.scanList(t.Body.List, thenHeld)
		elseHeld := copyHeld(held)
		elseTerm := false
		if t.Else != nil {
			elseTerm = ls.scanStmt(t.Else, elseHeld)
		}
		var arms []map[string]bool
		if !thenTerm {
			arms = append(arms, thenHeld)
		}
		if !elseTerm {
			arms = append(arms, elseHeld)
		}
		if len(arms) == 0 {
			return true // both branches terminate and there is an else
		}
		reconcile(held, arms...)
		return false

	case *ast.BlockStmt:
		return ls.scanList(t.List, held)

	case *ast.LabeledStmt:
		return ls.scanStmt(t.Stmt, held)

	case *ast.ForStmt:
		if t.Init != nil {
			ls.scanStmt(t.Init, held)
		}
		if t.Cond != nil {
			ls.checkExpr(t.Cond, held)
		}
		bodyHeld := copyHeld(held)
		if !ls.scanList(t.Body.List, bodyHeld) {
			reconcile(held, bodyHeld)
		}
		return false

	case *ast.RangeStmt:
		ls.checkExpr(t.X, held)
		bodyHeld := copyHeld(held)
		if !ls.scanList(t.Body.List, bodyHeld) {
			reconcile(held, bodyHeld)
		}
		return false

	case *ast.SwitchStmt:
		if t.Init != nil {
			ls.scanStmt(t.Init, held)
		}
		if t.Tag != nil {
			ls.checkExpr(t.Tag, held)
		}
		ls.scanClauses(t.Body, held)
		return false

	case *ast.TypeSwitchStmt:
		if t.Init != nil {
			ls.scanStmt(t.Init, held)
		}
		ls.scanClauses(t.Body, held)
		return false

	case *ast.SelectStmt:
		for _, c := range t.Body.List {
			cl, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cl.Comm.(*ast.SendStmt); ok {
				ls.reportIfHeld(send.Pos(), held, "channel send")
			}
		}
		ls.scanClauses(t.Body, held)
		return false
	}
	return false
}

func (ls *lockScan) scanClauses(body *ast.BlockStmt, held map[string]bool) {
	var arms []map[string]bool
	for _, c := range body.List {
		armHeld := copyHeld(held)
		var term bool
		switch cl := c.(type) {
		case *ast.CaseClause:
			term = ls.scanList(cl.Body, armHeld)
		case *ast.CommClause:
			term = ls.scanList(cl.Body, armHeld)
		default:
			continue
		}
		if !term {
			arms = append(arms, armHeld)
		}
	}
	if len(arms) > 0 {
		reconcile(held, arms...)
	}
}

// checkExpr flags function-value calls made under a held lock anywhere in
// the expression, without descending into function literals (their bodies
// run later).
func (ls *lockScan) checkExpr(e ast.Expr, held map[string]bool) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v := ls.pass.calleeVar(call); v != nil {
			ls.reportIfHeld(call.Pos(), held, "callback through function value "+v.Name())
		}
		return true
	})
}

func (ls *lockScan) reportIfHeld(pos token.Pos, held map[string]bool, what string) {
	for _, mu := range sortedKeys(held) {
		ls.pass.Reportf(pos,
			"%s while holding %s.Lock() without a deferred unlock can deadlock; unlock first or defer the unlock",
			what, mu)
		return // one report per site, even if multiple locks are held
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// lockCall matches mu.Lock/RLock (isLock=true) and mu.Unlock/RUnlock
// (false) on sync.Mutex/RWMutex receivers, returning the receiver's
// printed form.
func lockCall(pass *Pass, e ast.Expr) (mu string, isLock, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	fn := pass.calleeFunc(call)
	if fn == nil {
		return "", false, false
	}
	switch {
	case methodIs(fn, "sync", "Mutex", "Lock"),
		methodIs(fn, "sync", "RWMutex", "Lock"),
		methodIs(fn, "sync", "RWMutex", "RLock"):
		isLock = true
	case methodIs(fn, "sync", "Mutex", "Unlock"),
		methodIs(fn, "sync", "RWMutex", "Unlock"),
		methodIs(fn, "sync", "RWMutex", "RUnlock"):
		isLock = false
	default:
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	return types.ExprString(sel.X), isLock, true
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// reconcile keeps a lock held only if every scanned arm still holds it —
// optimistic at merges, which avoids false positives after
// lock-in-one-branch patterns.
func reconcile(held map[string]bool, arms ...map[string]bool) {
	for mu := range held {
		for _, arm := range arms {
			if !arm[mu] {
				delete(held, mu)
				break
			}
		}
	}
	// A lock acquired in every arm is treated as held afterwards.
	if len(arms) == 0 {
		return
	}
	for mu := range arms[0] {
		if held[mu] {
			continue
		}
		all := true
		for _, arm := range arms {
			if !arm[mu] {
				all = false
				break
			}
		}
		if all {
			held[mu] = true
		}
	}
}
