package lint

import "testing"

func TestLockOrderBadFixtures(t *testing.T) {
	runFixture(t, "testdata/lockorder/bad", []*Analyzer{LockOrder}, false)
}

func TestLockOrderCleanFixtures(t *testing.T) {
	runFixture(t, "testdata/lockorder/clean", []*Analyzer{LockOrder}, false)
}

// TestLockOrderCrossPackage loads a fixture whose cycle only closes
// across a package boundary: each package's nesting is one-directional,
// and the reverse edge exists solely in the facts exported for the
// dependency package's Acquire/Release pair.
func TestLockOrderCrossPackage(t *testing.T) {
	runFixture(t, "testdata/lockorder/xpkg", []*Analyzer{LockOrder}, false)
}
