package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroLife enforces the goroutine-lifecycle contract: every `go`
// statement in non-test code must be tied to a shutdown path, or the
// goroutine outlives Stop() — the leak class a soak run multiplies by
// hours. A goroutine counts as tied when its body (or, through the facts
// store, any function it runs) does one of:
//
//   - signal a sync.WaitGroup.Done — the Add/Done pairs every transport
//     read loop and the WorkPool workers use, which Close/Stop waits on;
//   - receive from a channel — a quit-channel select (`case <-c.done:`),
//     a bare `<-done`, or a range over a channel that closing drains.
//
// Receiving from *any* channel is accepted deliberately: distinguishing
// quit channels from data channels statically is guesswork, and a
// goroutine blocked on a channel its owner closes has a shutdown path by
// construction. What the check hunts is the fire-and-forget loop — a
// read or retry loop with no signal in and no Done out — which is
// exactly the shape of leaks that survive until process exit. A
// goroutine that provably terminates on its own but touches no channel
// and no WaitGroup still needs a //kmlint:ignore gorolife audit: short
// lifetime is a claim the analyzer cannot check.
var GoroLife = &Analyzer{
	Name: "gorolife",
	Doc:  "every go statement must tie to a shutdown path: a WaitGroup.Done, a worker-pool exit, or a quit-channel receive",
	Run:  runGoroLife,
}

func runGoroLife(pass *Pass) {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goCovered(pass, g.Call) {
				pass.Reportf(g.Pos(),
					"goroutine has no shutdown path: no WaitGroup.Done, no channel receive, and no summarized callee providing either; it leaks at Stop()")
			}
			return true
		})
	}
}

// goCovered reports whether the spawned call ties to a shutdown path.
func goCovered(pass *Pass, call *ast.CallExpr) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return litCovered(pass, lit.Body)
	}
	ft := pass.Facts.Summary(pass.calleeFunc(call))
	return ft != nil && (ft.WGDone || ft.QuitRecv)
}

// litCovered scans a go'd literal's own body (nested literals spawn or
// run under their own statements) for a Done call, a channel receive in
// any form, or a call into a summarized function providing one.
func litCovered(pass *Pass, body *ast.BlockStmt) bool {
	covered := false
	goTargets := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if covered {
			return false
		}
		switch t := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			// An inner spawn's shutdown path belongs to the inner
			// goroutine; it is checked at its own go statement.
			goTargets[t.Call] = true
		case *ast.UnaryExpr:
			if t.Op == token.ARROW {
				covered = true
			}
		case *ast.RangeStmt:
			if typ := pass.Info.TypeOf(t.X); typ != nil {
				if _, ok := typ.Underlying().(*types.Chan); ok {
					covered = true
				}
			}
		case *ast.CallExpr:
			if goTargets[t] {
				return true
			}
			fn := pass.calleeFunc(t)
			if methodIs(fn, "sync", "WaitGroup", "Done") {
				covered = true
				return false
			}
			if ft := pass.Facts.Summary(fn); ft != nil && (ft.WGDone || ft.QuitRecv) {
				covered = true
				return false
			}
		}
		return true
	})
	return covered
}
