package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ShardLock enforces the striped-registry locking contract (DESIGN.md
// "Sharded send path"): in a struct whose sync.Mutex/RWMutex field is
// marked with a //kmlint:guarded comment, every map, slice, or channel
// field declared after the mutex is guarded by it — the convention the
// transport's sendShard, the codec stage's peerLane, and the endpoint's
// inbound table all declare. Any read or write of a guarded field in code
// where that receiver's mutex is not held is flagged.
//
// The marker is opt-in on purpose: mutex-then-container is also the shape
// of structs protected by other disciplines (Kompics components are
// single-threaded by the scheduler guarantee, not by their mutex), and
// the check's claim — "this container is touched only under this lock" —
// is exactly what the marked structs document and the unmarked ones
// don't.
//
// Held tracking mirrors locksend's linear scan, with one deliberate
// difference: `mu.Lock(); defer mu.Unlock()` keeps the mutex held to the
// end of the function (for locksend the deferred unlock ends the hazard;
// here it is precisely what makes the accesses safe). Two escapes exist:
// functions whose name ends in "Locked" assert the documented caller-
// holds-the-lock convention and are skipped, and constructor-local values
// (composite literals not yet shared) can use //kmlint:ignore like any
// other finding.
var ShardLock = &Analyzer{
	Name: "shardlock",
	Doc:  "map/slice/chan struct fields declared after a mutex are accessed only with that mutex held",
	Run:  runShardLock,
}

func runShardLock(pass *Pass) {
	guarded := guardedFields(pass)
	if len(guarded) == 0 {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var name string
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body, name = fn.Body, fn.Name.Name
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			if hasSuffixLocked(name) {
				// "...Locked" functions assert the documented caller-
				// holds-the-lock convention; skip them (and their
				// literals) — the caller's own scan covers the call site.
				return false
			}
			ss := &shardScan{pass: pass, guarded: guarded}
			ss.scanList(body.List, map[string]bool{})
			return true // nested literals get their own scan
		})
	}
}

func hasSuffixLocked(name string) bool {
	return len(name) >= 6 && name[len(name)-6:] == "Locked"
}

// guardedFields maps each guarded field object to the name of the mutex
// field that guards it: within one struct declaration, a sync.Mutex or
// sync.RWMutex field carrying a //kmlint:guarded marker opens a guarded
// region covering every map/slice/chan field after it (a later mutex
// field starts a new region — unmarked, it ends the previous one).
func guardedFields(pass *Pass) map[*types.Var]string {
	out := map[*types.Var]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			mu := ""
			for _, f := range st.Fields.List {
				ft := pass.Info.TypeOf(f.Type)
				if isSyncMutex(ft) {
					mu = ""
					if len(f.Names) > 0 && hasGuardedMarker(f) {
						mu = f.Names[len(f.Names)-1].Name
					}
					continue
				}
				if mu == "" || !isContainer(ft) {
					continue
				}
				for _, id := range f.Names {
					if v, ok := pass.Info.Defs[id].(*types.Var); ok {
						out[v] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

// hasGuardedMarker reports whether the field's doc or trailing comment
// carries the //kmlint:guarded directive.
func hasGuardedMarker(f *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, "kmlint:guarded") {
				return true
			}
		}
	}
	return false
}

func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func isContainer(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice, *types.Chan:
		return true
	}
	return false
}

// shardScan walks one function's statements tracking held mutexes (printed
// receiver form, as in locksend) and flags guarded-field accesses outside
// their mutex's critical section.
type shardScan struct {
	pass    *Pass
	guarded map[*types.Var]string
}

func (ss *shardScan) scanList(list []ast.Stmt, held map[string]bool) bool {
	for _, s := range list {
		if ss.scanStmt(s, held) {
			return true
		}
	}
	return false
}

func (ss *shardScan) scanStmt(s ast.Stmt, held map[string]bool) (terminated bool) {
	switch t := s.(type) {
	case *ast.ExprStmt:
		if mu, isLock, _ := lockCall(ss.pass, t.X); mu != "" {
			if isLock {
				held[mu] = true
			} else {
				delete(held, mu)
			}
			return false
		}
		ss.checkExpr(t.X, held)
		return isPanicCall(t.X)

	case *ast.DeferStmt:
		// Unlike locksend, a deferred unlock leaves the mutex held for
		// the remainder of the function — that is the safe pattern here.
		// Other deferred calls run after this scan's critical sections;
		// their bodies (function literals) get their own scan.
		if mu, isLock, _ := lockCall(ss.pass, t.Call); mu == "" || isLock {
			for _, arg := range t.Call.Args {
				ss.checkExpr(arg, held)
			}
		}
		return false

	case *ast.SendStmt:
		ss.checkExpr(t.Chan, held)
		ss.checkExpr(t.Value, held)
		return false

	case *ast.IncDecStmt:
		ss.checkExpr(t.X, held)
		return false

	case *ast.GoStmt:
		// The goroutine body is scanned separately with nothing held;
		// only argument expressions evaluate here.
		for _, arg := range t.Call.Args {
			ss.checkExpr(arg, held)
		}
		return false

	case *ast.AssignStmt:
		for _, lhs := range t.Lhs {
			ss.checkExpr(lhs, held)
		}
		for _, rhs := range t.Rhs {
			ss.checkExpr(rhs, held)
		}
		return false

	case *ast.ReturnStmt:
		for _, r := range t.Results {
			ss.checkExpr(r, held)
		}
		return true

	case *ast.BranchStmt:
		return true

	case *ast.IfStmt:
		if t.Init != nil {
			ss.scanStmt(t.Init, held)
		}
		ss.checkExpr(t.Cond, held)
		thenHeld := copyHeld(held)
		thenTerm := ss.scanList(t.Body.List, thenHeld)
		elseHeld := copyHeld(held)
		elseTerm := false
		if t.Else != nil {
			elseTerm = ss.scanStmt(t.Else, elseHeld)
		}
		var arms []map[string]bool
		if !thenTerm {
			arms = append(arms, thenHeld)
		}
		if !elseTerm {
			arms = append(arms, elseHeld)
		}
		if len(arms) == 0 {
			return true
		}
		reconcile(held, arms...)
		return false

	case *ast.BlockStmt:
		return ss.scanList(t.List, held)

	case *ast.LabeledStmt:
		return ss.scanStmt(t.Stmt, held)

	case *ast.ForStmt:
		if t.Init != nil {
			ss.scanStmt(t.Init, held)
		}
		if t.Cond != nil {
			ss.checkExpr(t.Cond, held)
		}
		bodyHeld := copyHeld(held)
		if !ss.scanList(t.Body.List, bodyHeld) {
			reconcile(held, bodyHeld)
		}
		return false

	case *ast.RangeStmt:
		ss.checkExpr(t.X, held)
		bodyHeld := copyHeld(held)
		if !ss.scanList(t.Body.List, bodyHeld) {
			reconcile(held, bodyHeld)
		}
		return false

	case *ast.SwitchStmt:
		if t.Init != nil {
			ss.scanStmt(t.Init, held)
		}
		if t.Tag != nil {
			ss.checkExpr(t.Tag, held)
		}
		ss.scanClauses(t.Body, held)
		return false

	case *ast.TypeSwitchStmt:
		if t.Init != nil {
			ss.scanStmt(t.Init, held)
		}
		ss.scanClauses(t.Body, held)
		return false

	case *ast.SelectStmt:
		ss.scanClauses(t.Body, held)
		return false
	}
	return false
}

func (ss *shardScan) scanClauses(body *ast.BlockStmt, held map[string]bool) {
	var arms []map[string]bool
	for _, c := range body.List {
		armHeld := copyHeld(held)
		var term bool
		switch cl := c.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				ss.checkExpr(e, armHeld)
			}
			term = ss.scanList(cl.Body, armHeld)
		case *ast.CommClause:
			term = ss.scanList(cl.Body, armHeld)
		default:
			continue
		}
		if !term {
			arms = append(arms, armHeld)
		}
	}
	if len(arms) > 0 {
		reconcile(held, arms...)
	}
}

// checkExpr flags guarded-field selectors anywhere in the expression
// whose guarding mutex is not currently held, without descending into
// function literals (their bodies run under their own locking).
func (ss *shardScan) checkExpr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := ss.pass.Info.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		mu, guardedField := ss.guarded[v]
		if !guardedField {
			return true
		}
		need := types.ExprString(sel.X) + "." + mu
		if !held[need] {
			ss.report(sel.Pos(), sel.Sel.Name, need)
		}
		return true
	})
}

func (ss *shardScan) report(pos token.Pos, field, mu string) {
	ss.pass.Reportf(pos,
		"access to guarded field %s without holding %s; lock the shard's mutex first",
		field, mu)
}
