package lint

import "testing"

func TestHandlerBlockFixtures(t *testing.T) {
	runFixture(t, "testdata/handlerblock/handlers", []*Analyzer{HandlerBlock}, false)
}
