package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestLoaderResolvesModulePackages(t *testing.T) {
	loader := fixtureLoader(t)
	if loader.ModulePath != "github.com/kompics/kompicsmessaging-go" {
		t.Fatalf("module path = %q", loader.ModulePath)
	}
	dir := filepath.Join(loader.ModuleDir, "internal", "wire")
	pkgs, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(internal/wire): %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadDir(internal/wire) returned no packages")
	}
	pkg := pkgs[0]
	if pkg.Name != "wire" {
		t.Errorf("package name = %q, want wire", pkg.Name)
	}
	if !strings.HasSuffix(pkg.Path, "internal/wire") {
		t.Errorf("package path = %q", pkg.Path)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("unexpected type error: %s: %s", terr.Fset.Position(terr.Pos), terr.Msg)
	}
}

// TestLoaderTypeChecksDependencies exercises the recursive module-internal
// importer: internal/transport pulls in codec, wire, bufpool, and udt.
func TestLoaderTypeChecksDependencies(t *testing.T) {
	loader := fixtureLoader(t)
	dir := filepath.Join(loader.ModuleDir, "internal", "transport")
	pkgs, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(internal/transport): %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: unexpected type error: %s: %s", pkg.Path, terr.Fset.Position(terr.Pos), terr.Msg)
		}
	}
}

// TestLoaderRetainsDepPackages: Import keeps the full analysis view
// (syntax + type info) of every module-internal dependency, sorted, so
// the facts layer can summarize code the analyzers never run over.
func TestLoaderRetainsDepPackages(t *testing.T) {
	loader := fixtureLoader(t)
	if _, err := loader.LoadDir(filepath.Join(loader.ModuleDir, "internal", "transport")); err != nil {
		t.Fatalf("LoadDir(internal/transport): %v", err)
	}
	deps := loader.DepPackages()
	byPath := map[string]*Package{}
	for i, p := range deps {
		byPath[p.Path] = p
		if i > 0 && deps[i-1].Path >= p.Path {
			t.Errorf("DepPackages not sorted: %q before %q", deps[i-1].Path, p.Path)
		}
	}
	for _, want := range []string{"internal/wire", "internal/bufpool", "internal/udt"} {
		p := byPath[loader.ModulePath+"/"+want]
		if p == nil {
			t.Errorf("DepPackages missing %s", want)
			continue
		}
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Errorf("%s: dep package retained without its full analysis view", want)
		}
	}
}

// TestLoaderImportsTestdataPackages: fixture directories resolve through
// the module importer like any other package, which is what the
// cross-package fixtures (testdata/lockorder/xpkg) rely on.
func TestLoaderImportsTestdataPackages(t *testing.T) {
	loader := fixtureLoader(t)
	path := loader.ModulePath + "/internal/lint/testdata/lockorder/xpkg/locks"
	pkg, err := loader.Import(path)
	if err != nil {
		t.Fatalf("Import(%s): %v", path, err)
	}
	if pkg.Name() != "locks" {
		t.Errorf("imported package name = %q, want locks", pkg.Name())
	}
	found := false
	for _, p := range loader.DepPackages() {
		found = found || p.Path == path
	}
	if !found {
		t.Error("imported fixture package not retained in DepPackages")
	}
}

func TestPathForRejectsOutsideModule(t *testing.T) {
	loader := fixtureLoader(t)
	if _, err := loader.PathFor(filepath.Dir(loader.ModuleDir)); err == nil {
		t.Fatal("PathFor outside the module succeeded, want error")
	}
}
