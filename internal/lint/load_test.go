package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestLoaderResolvesModulePackages(t *testing.T) {
	loader := fixtureLoader(t)
	if loader.ModulePath != "github.com/kompics/kompicsmessaging-go" {
		t.Fatalf("module path = %q", loader.ModulePath)
	}
	dir := filepath.Join(loader.ModuleDir, "internal", "wire")
	pkgs, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(internal/wire): %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadDir(internal/wire) returned no packages")
	}
	pkg := pkgs[0]
	if pkg.Name != "wire" {
		t.Errorf("package name = %q, want wire", pkg.Name)
	}
	if !strings.HasSuffix(pkg.Path, "internal/wire") {
		t.Errorf("package path = %q", pkg.Path)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("unexpected type error: %s: %s", terr.Fset.Position(terr.Pos), terr.Msg)
	}
}

// TestLoaderTypeChecksDependencies exercises the recursive module-internal
// importer: internal/transport pulls in codec, wire, bufpool, and udt.
func TestLoaderTypeChecksDependencies(t *testing.T) {
	loader := fixtureLoader(t)
	dir := filepath.Join(loader.ModuleDir, "internal", "transport")
	pkgs, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(internal/transport): %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: unexpected type error: %s: %s", pkg.Path, terr.Fset.Position(terr.Pos), terr.Msg)
		}
	}
}

func TestPathForRejectsOutsideModule(t *testing.T) {
	loader := fixtureLoader(t)
	if _, err := loader.PathFor(filepath.Dir(loader.ModuleDir)); err == nil {
		t.Fatal("PathFor outside the module succeeded, want error")
	}
}
