package lint

import (
	"strings"
	"testing"
)

// TestIgnoreFixtures runs the full suite with unused-directive reporting:
// audited suppressions (line, trailing, file-wide) silence findings, and
// stale or unknown-check directives become findings themselves.
func TestIgnoreFixtures(t *testing.T) {
	runFixture(t, "testdata/ignore", Analyzers(), true)
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text      string
		nil_      bool
		fileWide  bool
		check     string
		malformed string // substring of the expected problem, "" if well-formed
	}{
		{text: "// ordinary comment", nil_: true},
		// A space after // makes it prose, matching //go: directive rules.
		{text: "// kmlint:ignore bufleak looks like a directive but is prose", nil_: true},
		{text: "//kmlint:ignore bufleak audited because reasons", check: "bufleak"},
		{text: "//kmlint:ignore-file simdet drives real sockets on purpose", check: "simdet", fileWide: true},
		// CRLF files hand the parser comments with a trailing \r; a
		// directive on the last unterminated line comes without one.
		{text: "//kmlint:ignore bufleak trailing CR is presentation\r", check: "bufleak"},
		{text: "//kmlint:ignore bufleak\r", malformed: "needs a reason"},
		{text: "//kmlint:ignore", malformed: "needs a check name"},
		{text: "//kmlint:ignore bufleak", malformed: "needs a reason"},
		{text: "//kmlint:ignore nosuchcheck with a reason", malformed: "unknown check"},
	}
	for _, c := range cases {
		d := parseDirective(c.text)
		if c.nil_ {
			if d != nil {
				t.Errorf("parseDirective(%q) = %+v, want nil", c.text, d)
			}
			continue
		}
		if d == nil {
			t.Errorf("parseDirective(%q) = nil, want a directive", c.text)
			continue
		}
		if c.malformed != "" {
			if !strings.Contains(d.malformed, c.malformed) {
				t.Errorf("parseDirective(%q).malformed = %q, want substring %q", c.text, d.malformed, c.malformed)
			}
			continue
		}
		if d.malformed != "" {
			t.Errorf("parseDirective(%q) unexpectedly malformed: %s", c.text, d.malformed)
		}
		if d.check != c.check || d.fileWide != c.fileWide {
			t.Errorf("parseDirective(%q) = {check: %q, fileWide: %v}, want {%q, %v}",
				c.text, d.check, d.fileWide, c.check, c.fileWide)
		}
	}
}
