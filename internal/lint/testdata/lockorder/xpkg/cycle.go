// Package xpkg closes a lock-order cycle across a package boundary: each
// direction is innocuous on its own, and neither shows a Lock call on
// the foreign mutex — only the facts exported for locks.Registry.Acquire
// (held at exit, acquires r.mu) make the cycle visible.
package xpkg

import (
	"sync"

	"github.com/kompics/kompicsmessaging-go/internal/lint/testdata/lockorder/xpkg/locks"
)

type table struct {
	mu   sync.Mutex
	rows int
}

// aThenB holds the registry (via the summarized Acquire) around the
// table's critical section.
func aThenB(r *locks.Registry, t *table) {
	r.Acquire()
	t.mu.Lock() // want "lock-order cycle: xpkg.table.mu acquired while holding locks.Registry.mu"
	t.rows++
	t.mu.Unlock()
	r.Release()
}

// bThenA nests the same pair the other way; the edge appears at the
// Acquire call because the acquisition happens inside the callee.
func bThenA(r *locks.Registry, t *table) {
	t.mu.Lock()
	r.Acquire() // want "lock-order cycle: locks.Registry.mu acquired while holding xpkg.table.mu"
	t.rows++
	r.Release()
	t.mu.Unlock()
}
