// Package locks is the dependency half of the cross-package lockorder
// fixture. Acquire returns holding r.mu; only the function fact exported
// across the package boundary lets the importing package's nesting close
// a cycle.
package locks

import "sync"

// Registry is a lock-protected counter whose critical sections span
// Acquire/Release call pairs in the importing package.
type Registry struct {
	mu sync.Mutex
	n  int
}

// Acquire locks the registry and leaves it held for the caller.
func (r *Registry) Acquire() {
	r.mu.Lock()
	r.n++
}

// Release unlocks a registry previously locked by Acquire.
func (r *Registry) Release() {
	r.n--
	r.mu.Unlock()
}
