// Package bad holds lock-order violations: a two-class cycle split
// across functions (one direction hidden behind a helper that returns
// holding its lock), and same-class stripe nesting that no ascending
// sweep justifies.
package bad

import "sync"

type a struct {
	mu sync.Mutex
	n  int
}

type b struct {
	mu sync.Mutex
	n  int
}

// abNest is one half of the two-class cycle.
func abNest(x *a, y *b) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock() // want "lock-order cycle: bad.b.mu acquired while holding bad.a.mu"
	y.n = x.n
	y.mu.Unlock()
}

// baNest is the reverse half: innocuous alone, fatal with abNest.
func baNest(x *a, y *b) {
	y.mu.Lock()
	defer y.mu.Unlock()
	x.mu.Lock() // want "lock-order cycle: bad.a.mu acquired while holding bad.b.mu"
	x.n = y.n
	x.mu.Unlock()
}

// lockA returns holding x.mu, so the facts layer carries the held set
// into every caller.
func lockA(x *a) {
	x.mu.Lock()
	x.n++
}

func unlockA(x *a) {
	x.mu.Unlock()
}

// viaHelper recreates the a-then-b direction with no Lock call on the
// held class anywhere in the function.
func viaHelper(x *a, y *b) {
	lockA(x)
	y.mu.Lock() // want "lock-order cycle: bad.b.mu acquired while holding bad.a.mu"
	y.n++
	y.mu.Unlock()
	unlockA(x)
}

type striped struct {
	shards map[int]*a
}

// lockAll accumulates every shard lock across a map range: iteration
// order is unspecified, so the same-class nesting has no provable order
// and two concurrent sweeps can deadlock.
func (s *striped) lockAll() {
	for _, sh := range s.shards {
		sh.mu.Lock() // want "same-class lock nesting: bad.a.mu acquired while another bad.a.mu is held"
	}
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}

// pairNest nests two locks of one class in a straight line; two callers
// passing the arguments swapped deadlock.
func pairNest(x, y *a) {
	x.mu.Lock()
	y.mu.Lock() // want "same-class lock nesting: bad.a.mu acquired while another bad.a.mu is held"
	x.n, y.n = y.n, x.n
	y.mu.Unlock()
	x.mu.Unlock()
}
