// Package clean holds the canonical lock patterns lockorder must stay
// quiet about: sequential sweeps, ascending lock-alls, deferred-unlock
// getters, acyclic two-class nesting, and Locked-suffix helpers.
package clean

import "sync"

type shard struct {
	mu sync.Mutex
	n  int
}

// sweep mirrors fallbackToTCP: each stripe's critical section closes
// before the next opens, so no two stripes are ever held together.
func sweep(shards []*shard) {
	for _, s := range shards {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

// quiesce mirrors closeInbound: an ascending slice sweep may accumulate
// stripes, because the acquisition order is provable.
func quiesce(shards []*shard) {
	for _, s := range shards {
		s.mu.Lock()
	}
	for _, s := range shards {
		s.mu.Unlock()
	}
}

// quiesceIndexed is the same sweep with an explicit ascending index.
func quiesceIndexed(shards []*shard) {
	for i := 0; i < len(shards); i++ {
		shards[i].mu.Lock()
	}
	for i := 0; i < len(shards); i++ {
		shards[i].mu.Unlock()
	}
}

type registry struct {
	mu sync.Mutex
	m  map[string]int
}

// get is the deferred-unlock getter: its critical section ends at
// return, before any caller takes its next lock.
func (r *registry) get(k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[k]
}

// oneWay nests registry inside shard; with no reverse direction in the
// package the edge is acyclic and clean.
func oneWay(s *shard, r *registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = r.get("n")
}

// bumpLocked documents with its suffix that r.mu is already held; the
// facts layer seeds the assumption instead of inventing an acquisition.
func (r *registry) bumpLocked(k string) {
	r.m[k]++
}

func (r *registry) bump(k string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bumpLocked(k)
}
