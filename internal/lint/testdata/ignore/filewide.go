//kmlint:ignore-file bufleak fixture proves a file-wide directive covers every finding in the file

package ignore

import (
	"errors"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
)

var errFixture = errors.New("fixture")

func leakOne() {
	b := bufpool.Get(8)
	b[0] = 1
}

func leakTwo(fail bool) error {
	b := bufpool.Get(8)
	if fail {
		return errFixture
	}
	bufpool.Put(b)
	return nil
}
