// Package ignore exercises the suppression directives: an audited line
// ignore silences the finding on the next line, while malformed and stale
// directives are themselves findings.
package ignore

import "github.com/kompics/kompicsmessaging-go/internal/bufpool"

// suppressedLeak drops a buffer on purpose; the audited directive keeps
// bufleak quiet.
func suppressedLeak() {
	//kmlint:ignore bufleak fixture proves an audited suppression silences the line below
	b := bufpool.Get(8)
	b[0] = 1
}

// sameLineSuppression puts the directive on the flagged line itself.
func sameLineSuppression() {
	b := bufpool.Get(8) //kmlint:ignore bufleak fixture proves a trailing suppression works too
	b[0] = 1
}

// cleanWithStaleIgnore releases correctly, so its directive suppresses
// nothing and must be reported as stale.
func cleanWithStaleIgnore() {
	//kmlint:ignore bufleak stale: nothing fires below anymore // want "unused kmlint:ignore bufleak directive"
	b := bufpool.Get(8)
	bufpool.Put(b)
}

// unknownCheck names a check that does not exist.
func unknownCheck() {
	//kmlint:ignore nosuchcheck reasons do not save an unknown name // want "unknown check"
	b := bufpool.Get(8)
	bufpool.Put(b)
}
