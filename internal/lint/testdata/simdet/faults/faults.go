// Package faults (a fixture, not the real internal/faults) carries the
// same path element as the fault-injection package, which joined the
// simulation cone: injectors script outages for deterministic tests, so
// wall clocks, the global rand and real sockets are all off limits.
package faults

import (
	"math/rand"
	"net"
	"time"
)

// badProbability rolls the global generator: two runs of the same outage
// script would drop different packets.
func badProbability(p float64) bool {
	return rand.Float64() < p // want "global math/rand.Float64 in simulation cone"
}

// goodProbability threads the injector's seeded source instead.
func goodProbability(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// badStall times a stall with the wall clock instead of a released
// channel or an injected clock.
func badStall() {
	time.Sleep(10 * time.Millisecond) // want "time.Sleep in simulation cone"
}

// badProbe opens a real socket; injectors decide outcomes by rule, never
// by touching the network.
func badProbe(dest string) bool {
	c, err := net.Dial("tcp", dest) // want "net.Dial opens a real socket"
	if err != nil {
		return false
	}
	c.Close()
	return true
}
