// Package app is outside the simulation cone (no cone element in its
// path), so wall-clock and socket use is out of simdet's scope here.
package app

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	time.Sleep(time.Microsecond)
	return time.Now()
}

func globalRand() int {
	return rand.Intn(10)
}
