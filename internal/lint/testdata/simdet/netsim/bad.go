// Package netsim (a fixture, not the real internal/netsim) sits inside the
// simulation cone by virtue of its path element, so every wall-clock,
// global-rand and real-socket call below must be flagged.
package netsim

import (
	"math/rand"
	"net"
	"time"
)

func badClock() time.Time {
	time.Sleep(time.Millisecond) // want "time.Sleep in simulation cone"
	return time.Now()            // want "time.Now in simulation cone"
}

func badRand() int {
	return rand.Intn(10) // want "global math/rand.Intn in simulation cone"
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle"
}

func badSockets() {
	if c, err := net.Dial("udp", "127.0.0.1:9"); err == nil { // want "net.Dial opens a real socket"
		c.Close()
	}
	if l, err := net.Listen("tcp", "127.0.0.1:0"); err == nil { // want "net.Listen opens a real socket"
		l.Close()
	}
}
