package netsim

import (
	"math/rand"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/clock"
)

// goodClock reads time through the injected clock — Virtual in tests.
func goodClock(c clock.Clock) time.Time {
	return c.Now()
}

// goodRand threads an explicitly seeded source; rand.New/NewSource are the
// escape hatch from the global generator, and *rand.Rand methods are fine.
func goodRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
