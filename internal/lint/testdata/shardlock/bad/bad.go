// Package bad seeds the shardlock class: reads and writes of a marked
// shard's containers without holding the shard's mutex.
package bad

import "sync"

type shard struct {
	mu       sync.Mutex //kmlint:guarded
	channels map[string]int
	queue    []int
}

func readWithoutLock(s *shard, key string) int {
	return s.channels[key] // want "access to guarded field channels without holding s.mu"
}

func writeWithoutLock(s *shard, key string) {
	s.channels[key] = 1 // want "access to guarded field channels without holding s.mu"
}

// appendAfterUnlock is the classic shard bug: the critical section ends
// one statement too early.
func appendAfterUnlock(s *shard, v int) {
	s.mu.Lock()
	n := len(s.queue)
	s.mu.Unlock()
	if n < 64 {
		s.queue = append(s.queue, v) // want "access to guarded field queue without holding s.mu" "access to guarded field queue without holding s.mu"
	}
}

// earlyExitStillUnlocked mirrors locksend's merge regression the other way
// round: the lock is only taken in one branch, so the fall-through access
// is unguarded.
func earlyExitStillUnlocked(s *shard, fast bool) {
	if !fast {
		s.mu.Lock()
	}
	delete(s.channels, "x") // want "access to guarded field channels without holding s.mu"
	if !fast {
		s.mu.Unlock()
	}
}

// wrongShard locks one stripe and touches another — exactly the aliasing
// mistake striping introduces.
func wrongShard(a, b *shard) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.queue = nil // want "access to guarded field queue without holding b.mu"
}

// goroutineEscapes: the literal runs without the spawner's lock.
func goroutineEscapes(s *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.queue = s.queue[:0] // want "access to guarded field queue without holding s.mu" "access to guarded field queue without holding s.mu"
	}()
}

// rangeWithoutLock iterates a guarded map lock-free.
func rangeWithoutLock(s *shard) int {
	n := 0
	for _, v := range s.channels { // want "access to guarded field channels without holding s.mu"
		n += v
	}
	return n
}
