// recv.go seeds shardlock bugs in the inbound-registry shape: a striped
// connection set plus per-peer death accounting, the receive-side mirror
// of the outgoing channel table.
package bad

import "sync"

type conn struct{ addr string }

type recvStripe struct {
	mu     sync.Mutex //kmlint:guarded
	conns  map[*conn]struct{}
	deaths map[string]uint64
}

// registerRacy inserts an accepted connection without the stripe lock —
// the accept-path race striping is supposed to make cheap to avoid, not
// optional.
func registerRacy(s *recvStripe, c *conn) {
	s.conns[c] = struct{}{} // want "access to guarded field conns without holding s.mu"
}

// countDeathAfterUnlock is the teardown bug: membership is checked under
// the lock, but the death counter is bumped after the critical section,
// racing a concurrent Close that resets the map.
func countDeathAfterUnlock(s *recvStripe, c *conn) {
	s.mu.Lock()
	_, present := s.conns[c]
	delete(s.conns, c)
	s.mu.Unlock()
	if present {
		s.deaths[c.addr]++ // want "access to guarded field deaths without holding s.mu"
	}
}

// quiesceCollectsUnlocked is Close's shape done wrong: the stripe's
// connection set is iterated outside the critical section while read
// loops are still deregistering.
func quiesceCollectsUnlocked(stripes []*recvStripe) []*conn {
	var out []*conn
	for _, s := range stripes {
		for c := range s.conns { // want "access to guarded field conns without holding s.mu"
			out = append(out, c)
		}
	}
	return out
}
