// Package clean holds the corrected counterparts of the shardlock
// fixtures plus the deliberate exemptions; the analyzer must stay silent
// on all of them.
package clean

import "sync"

type shard struct {
	mu       sync.Mutex //kmlint:guarded
	channels map[string]int
	queue    []int
}

// unmarked has the same shape but no marker: its containers follow some
// other discipline (single-threaded owner, scheduler guarantee) and are
// not shardlock's business.
type unmarked struct {
	mu    sync.Mutex
	items []int
}

func unmarkedIsExempt(u *unmarked) int { return len(u.items) }

// lockedAccess is the contract: every touch inside the critical section.
func lockedAccess(s *shard, key string, v int) {
	s.mu.Lock()
	s.channels[key] = v
	s.queue = append(s.queue, v)
	s.mu.Unlock()
}

// deferredUnlock keeps the mutex held to the end of the function — the
// safe pattern, unlike locksend where the defer is what ends the hazard.
func deferredUnlock(s *shard, key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.channels[key] + len(s.queue)
}

// copyOutThenUse snapshots under the lock and works on the copy.
func copyOutThenUse(s *shard) []int {
	s.mu.Lock()
	out := append([]int(nil), s.queue...)
	s.mu.Unlock()
	return out
}

// relockLoop is the codec sequencer's drain shape: the lock is dropped
// mid-loop and retaken before the guarded fields are touched again.
func relockLoop(s *shard) {
	s.mu.Lock()
	for {
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		v := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		use(v)
		s.mu.Lock()
	}
}

// drainLocked asserts the caller-holds-the-lock convention by its name
// and is exempt; its call sites are scanned instead.
func drainLocked(s *shard) {
	s.queue = s.queue[:0]
}

func callsLockedHelper(s *shard) {
	s.mu.Lock()
	drainLocked(s)
	s.mu.Unlock()
}

// goroutineLocksItself: a spawned literal takes the shard lock before
// touching guarded state.
func goroutineLocksItself(s *shard) {
	go func() {
		s.mu.Lock()
		s.queue = nil
		s.mu.Unlock()
	}()
}

func use(int) {}
