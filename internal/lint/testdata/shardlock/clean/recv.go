// recv.go holds the corrected inbound-registry shapes: the striped
// connection set and per-peer death accounting accessed only inside
// their stripe's critical section. The analyzer must stay silent.
package clean

import "sync"

type conn struct{ addr string }

type recvStripe struct {
	mu     sync.Mutex //kmlint:guarded
	conns  map[*conn]struct{}
	deaths map[string]uint64
}

// register is the accept-path contract: closed-check and insert in one
// critical section.
func register(s *recvStripe, c *conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conns == nil {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

// drop is teardown done right: membership check, removal, and the death
// increment all under the stripe lock.
func drop(s *recvStripe, c *conn) {
	s.mu.Lock()
	if _, ok := s.conns[c]; ok {
		delete(s.conns, c)
		s.deaths[c.addr]++
	}
	s.mu.Unlock()
}

// quiesce is Close's shape: collect each stripe's connections and swap
// the map under that stripe's lock, in index order, then work on the
// snapshot lock-free.
func quiesce(stripes []*recvStripe) []*conn {
	var out []*conn
	for _, s := range stripes {
		s.mu.Lock()
		for c := range s.conns {
			out = append(out, c)
		}
		s.conns = map[*conn]struct{}{}
		s.mu.Unlock()
	}
	return out
}

// deathsFor reads the per-peer counter under the lock and returns the
// copy.
func deathsFor(s *recvStripe, peer string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deaths[peer]
}
