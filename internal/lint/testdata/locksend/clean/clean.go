// Package clean holds the corrected counterparts of the locksend
// fixtures; the analyzer must stay silent on all of them.
package clean

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
	cb func()
}

// deferredUnlock is exempt by design: a parked send still holds the lock,
// but the deferred unlock survives panics and early returns, and the
// pattern declares the critical section spans the whole function.
func deferredUnlock(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 1
}

// unlockThenSend is the fix kmlint pushes toward: copy under the lock,
// unlock, then communicate.
func unlockThenSend(b *box) {
	b.mu.Lock()
	v := len(b.ch)
	b.mu.Unlock()
	b.ch <- v
}

// unlockThenCallback snapshots the function value under the lock and
// invokes it outside the critical section (udt.Conn.dispatch's shape).
func unlockThenCallback(b *box) {
	b.mu.Lock()
	cb := b.cb
	b.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// branchUnlock releases on both arms before any send.
func branchUnlock(b *box, fast bool) {
	b.mu.Lock()
	if fast {
		b.mu.Unlock()
		b.ch <- 1
		return
	}
	b.mu.Unlock()
	b.ch <- 2
}

// goroutineSend does not run under this goroutine's lock.
func goroutineSend(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() { b.ch <- 1 }()
}
