// Package bad seeds the locksend deadlock class: channel operations and
// caller-supplied callbacks executed while a mutex is held without a
// deferred unlock.
package bad

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
	cb func()
}

func sendUnderLock(b *box) {
	b.mu.Lock()
	b.ch <- 1 // want "channel send while holding b.mu"
	b.mu.Unlock()
}

func callbackUnderLock(b *box) {
	b.mu.Lock()
	if b.cb != nil {
		b.cb() // want "callback through function value cb"
	}
	b.mu.Unlock()
}

// earlyExitStillHeld is the regression case for merge handling: the
// early-return arm unlocks, but the fall-through path still holds the
// lock when it sends.
func earlyExitStillHeld(b *box, done bool) {
	b.mu.Lock()
	if done {
		b.mu.Unlock()
		return
	}
	b.ch <- 2 // want "channel send while holding b.mu"
	b.mu.Unlock()
}

func selectSendUnderLock(b *box) {
	b.mu.Lock()
	select {
	case b.ch <- 3: // want "channel send while holding b.mu"
	default:
	}
	b.mu.Unlock()
}

func rlockSend(mu *sync.RWMutex, ch chan int) {
	mu.RLock()
	ch <- 1 // want "channel send while holding mu"
	mu.RUnlock()
}
