// Package handlers exercises the handlerblock check: function literals
// passed to Subscribe/SubscribeSelf run on the cooperative scheduler and
// must not park their worker goroutine.
package handlers

import (
	"net"
	"sync"
	"time"

	"github.com/kompics/kompicsmessaging-go/internal/kompics"
)

type tick struct{}

func sleepy(ctx *kompics.Context, p *kompics.Port) {
	ctx.Subscribe(p, tick{}, func(kompics.Event) {
		time.Sleep(time.Millisecond) // want "time.Sleep inside a Subscribe handler"
	})
}

func waity(ctx *kompics.Context, wg *sync.WaitGroup) {
	ctx.SubscribeSelf(tick{}, func(kompics.Event) {
		wg.Wait() // want "sync.WaitGroup.Wait inside a Subscribe handler"
	})
}

func socketBound(ctx *kompics.Context, p *kompics.Port, conn net.Conn, buf []byte) {
	ctx.Subscribe(p, tick{}, func(kompics.Event) {
		conn.Read(buf) // want "network Read inside a Subscribe handler"
	})
}

func dialer(ctx *kompics.Context, p *kompics.Port) {
	ctx.Subscribe(p, tick{}, func(kompics.Event) {
		if c, err := net.Dial("tcp", "127.0.0.1:1"); err == nil { // want "net.Dial inside a Subscribe handler"
			c.Close()
		}
	})
}

// offloaded is the corrected shape: the handler returns immediately and a
// spawned goroutine (off the scheduler) does the blocking work.
func offloaded(ctx *kompics.Context, p *kompics.Port, wg *sync.WaitGroup) {
	ctx.Subscribe(p, tick{}, func(kompics.Event) {
		go func() {
			time.Sleep(time.Millisecond)
			wg.Wait()
		}()
	})
}

// short is an ordinary non-blocking handler.
func short(ctx *kompics.Context, p *kompics.Port, counter *int) {
	ctx.Subscribe(p, tick{}, func(kompics.Event) {
		*counter++
	})
}

// elsewhere shows the check is scoped to subscription sites: a plain
// function literal may block.
func elsewhere() func() {
	return func() { time.Sleep(time.Millisecond) }
}
