// recv.go covers the receive-path handoff sinks: the transport endpoint's
// deliver funnel and the core decode stage's submit, both documented
// ownership transfers. The analyzer must stay silent.
package clean

import "github.com/kompics/kompicsmessaging-go/internal/bufpool"

// endpointLike mimics transport.Endpoint: deliver funnels every inbound
// payload (framed and datagram alike) into the configured callback,
// forwarding ownership.
type endpointLike struct {
	onMessage func(from string, payload []byte)
}

func (e *endpointLike) deliver(from string, payload []byte) {
	e.onMessage(from, payload)
}

// readLoopShape is readFrames' pattern: a pooled buffer per frame, handed
// off through deliver.
func readLoopShape(e *endpointLike, from string, frame []byte) {
	b := bufpool.Get(len(frame))
	copy(b, frame)
	e.deliver(from, b)
}

// stageLike mimics core's decodeStage: submit takes ownership of the
// payload for the lane sequencer, recycling immediately when closed.
type stageLike struct {
	closed bool
	lanes  map[string][][]byte
}

func (s *stageLike) submit(from string, payload []byte) {
	if s.closed {
		bufpool.Put(payload)
		return
	}
	s.lanes[from] = append(s.lanes[from], payload)
}

// datagramShape is the UDP reader's pattern: copy the datagram out of the
// socket buffer into a pooled payload and submit it to the stage.
func datagramShape(s *stageLike, from string, dgram []byte) {
	b := bufpool.Get(len(dgram))
	copy(b, dgram)
	s.submit(from, b)
}
