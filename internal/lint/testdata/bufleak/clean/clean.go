// Package clean holds the corrected counterparts of the bufleak fixtures:
// every pooled buffer reaches Put, a return, or a documented transfer
// sink, so the analyzer must stay silent.
package clean

import (
	"errors"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
)

var errBoom = errors.New("boom")

// errorPathPut is codec.ReadFrame's shape: recycle on the error path,
// hand the buffer to the caller on success.
func errorPathPut(ok bool) ([]byte, error) {
	b := bufpool.Get(32)
	if !ok {
		bufpool.Put(b)
		return nil, errBoom
	}
	return b, nil
}

// deferredPut covers the GetBuffer/PutBuffer pair through defer.
func deferredPut() int {
	w := bufpool.GetBuffer()
	defer bufpool.PutBuffer(w)
	w.WriteByte(1)
	return w.Len()
}

// channelHandoff transfers ownership to the receiver.
func channelHandoff(ch chan []byte) {
	b := bufpool.Get(4)
	b[0] = 1
	ch <- b
}

type delivery struct {
	OnMessage func([]byte)
}

// sinkCall transfers ownership through the documented OnMessage callback,
// the transport inbound path's contract.
func sinkCall(d delivery) {
	b := bufpool.Get(4)
	d.OnMessage(b)
}

// growAlias is transport.writeCoalesced's shape: append may reallocate,
// but the result is rebound to the same variable and returned.
func growAlias(extra []byte) []byte {
	b := bufpool.Get(len(extra))[:0]
	b = append(b, extra...)
	return b
}

// storeField parks the buffer in a struct whose owner releases it later.
type pending struct{ buf []byte }

func storeField(p *pending) {
	b := bufpool.Get(8)
	p.buf = b
}

// switchAllArms releases on every arm including default.
func switchAllArms(mode int, ch chan []byte) {
	b := bufpool.Get(16)
	switch mode {
	case 0:
		bufpool.Put(b)
	case 1:
		ch <- b
	default:
		bufpool.Put(b)
	}
}

// goroutineHandoff gives the buffer to a goroutine that finishes with it.
func goroutineHandoff() {
	b := bufpool.Get(8)
	go func() {
		b[0] = 1
		bufpool.Put(b)
	}()
}

// ringLike mimics udt's pktRing: storeOwned is a documented transfer sink,
// so parking a pooled payload in the ring satisfies the contract.
type ringLike struct{ slots [][]byte }

func (r *ringLike) storeOwned(seq uint32, buf []byte) bool {
	i := int(seq) % len(r.slots)
	if r.slots[i] != nil {
		return false
	}
	r.slots[i] = buf
	return true
}

// ringStore is udt handleData's shape: copy the datagram payload into a
// pooled buffer and hand it to the receive window.
func ringStore(r *ringLike, seq uint32, payload []byte) {
	b := bufpool.Get(len(payload))
	copy(b, payload)
	r.storeOwned(seq, b)
}

// queued mimics transport's outMsg: release fires the notify and recycles
// the payload the value was built around, exactly once.
type queued struct{ payload []byte }

func (q queued) release(err error) {
	_ = err
	bufpool.Put(q.payload)
}

// rejectOverflow is the queue-overflow fail-fast shape: the buffer sits in
// receiver position of the release sink, not among its arguments.
func rejectOverflow(full bool, ch chan queued) {
	b := bufpool.Get(32)
	m := queued{payload: b}
	if full {
		m.release(errBoom)
		return
	}
	ch <- m
}
