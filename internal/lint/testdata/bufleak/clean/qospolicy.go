package clean

import "github.com/kompics/kompicsmessaging-go/internal/bufpool"

// The queue-policy fixtures mirror the transport's displaced-payload
// ownership contract: a policy push may displace a queued message (a
// latest-value coalesce, a head eviction), and the displaced pooled
// payload must go back to bufpool through the drop path exactly once.

// lvwQueue mimics a latest-value-wins pending queue keyed by application
// key. push stores the admitted payload (a transfer sink, inferred from
// the body) and hands any displaced payload back to the caller.
type lvwQueue struct {
	idx   map[string]int
	queue [][]byte
	limit int
}

func (q *lvwQueue) push(key string, payload []byte) (displaced []byte, ok bool) {
	if i, hit := q.idx[key]; hit {
		old := q.queue[i]
		q.queue[i] = payload
		return old, true
	}
	if len(q.queue) >= q.limit {
		return nil, false
	}
	q.idx[key] = len(q.queue)
	q.queue = append(q.queue, payload)
	return nil, true
}

// coalesceSend is the correct enqueue shape: the queue owns admitted
// payloads, and both a rejected buffer and a displaced stale one are
// repooled by the drop path.
func coalesceSend(q *lvwQueue, key string, reading []byte) {
	b := bufpool.Get(len(reading))
	copy(b, reading)
	displaced, ok := q.push(key, b)
	if !ok {
		bufpool.Put(b)
		return
	}
	if displaced != nil {
		bufpool.Put(displaced)
	}
}

// lvwLike coalesces by copying into the queued slot's existing bytes:
// coalesceInPlace borrows fresh (no store), so the caller keeps
// ownership of the source buffer.
type lvwLike struct {
	idx   map[string]int
	queue [][]byte
	limit int
}

func (q *lvwLike) coalesceInPlace(key string, fresh []byte) bool {
	i, hit := q.idx[key]
	if !hit {
		return false
	}
	copy(q.queue[i], fresh)
	return true
}

// coalesceThenRepool repools the borrowed source after an in-place
// coalesce, and transfers it to the queue otherwise — released on every
// path.
func coalesceThenRepool(q *lvwLike, key string, reading []byte) {
	b := bufpool.Get(len(reading))
	copy(b, reading)
	if q.coalesceInPlace(key, b) {
		bufpool.Put(b)
		return
	}
	q.idx[key] = len(q.queue)
	q.queue = append(q.queue, b)
}
