// recv.go seeds receive-path leaks around the deliver/submit handoff
// sinks: a sink call only credits the path it is on, and only when the
// tracked buffer is actually among its arguments.
package leak

import "github.com/kompics/kompicsmessaging-go/internal/bufpool"

type stageLike struct {
	lanes map[string][][]byte
}

func (s *stageLike) submit(from string, payload []byte) {
	s.lanes[from] = append(s.lanes[from], payload)
}

// submitConditional hands off on one arm only; the drop path leaks the
// pooled frame.
func submitConditional(s *stageLike, from string, frame []byte, drop bool) {
	b := bufpool.Get(len(frame)) // want "dropped when this block ends"
	copy(b, frame)
	if !drop {
		s.submit(from, b)
	}
}

type endpointLike struct {
	onMessage func(string, []byte)
}

func (e *endpointLike) deliver(from string, payload []byte) {
	e.onMessage(from, payload)
}

// deliverOtherBuffer calls the sink with a different slice: the tracked
// buffer never transfers, so it is still dropped.
func deliverOtherBuffer(e *endpointLike, from string, other []byte) {
	b := bufpool.Get(16) // want "dropped when this block ends"
	b[0] = 1
	e.deliver(from, other)
}
