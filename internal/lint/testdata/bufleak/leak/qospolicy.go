package leak

import "github.com/kompics/kompicsmessaging-go/internal/bufpool"

// Queue-policy shapes that violate the displaced-payload ownership
// contract: a policy (or its caller) forgetting to repool a pooled
// buffer it still owns after a coalesce or a rejection.

// lvwLike coalesces by copying into the queued slot's existing bytes.
// coalesceInPlace only reads fresh (copy is a borrow, not a store), so
// ownership of the source buffer stays with the caller.
type lvwLike struct {
	idx   map[string]int
	queue [][]byte
	limit int
}

func (q *lvwLike) coalesceInPlace(key string, fresh []byte) bool {
	i, hit := q.idx[key]
	if !hit {
		return false
	}
	copy(q.queue[i], fresh)
	return true
}

// coalesceForgetsRepool copies the update over the queued slot but never
// repools the still-owned source buffer — the exact bug the contract
// exists to prevent.
func coalesceForgetsRepool(q *lvwLike, key string, reading []byte) {
	b := bufpool.Get(len(reading)) // want "dropped when this block ends"
	copy(b, reading)
	q.coalesceInPlace(key, b)
}

// pushRejectLeaks draws the buffer before checking the bound, then
// forgets it on the rejection path. The success path transfers to the
// queue, so only the early return is flagged.
func pushRejectLeaks(q *lvwLike, key string, reading []byte) {
	b := bufpool.Get(len(reading))
	if len(q.queue) >= q.limit {
		return // want "can escape here without bufpool.Put"
	}
	copy(b, reading)
	q.idx[key] = len(q.queue)
	q.queue = append(q.queue, b)
}
