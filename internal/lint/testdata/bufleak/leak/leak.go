// Package leak seeds the bufleak bugs the analyzer must catch: each
// function drops a pooled buffer on at least one path.
package leak

import (
	"errors"

	"github.com/kompics/kompicsmessaging-go/internal/bufpool"
)

var errBoom = errors.New("boom")

// earlyReturn is the classic wire-path bug: an error return between Get
// and Put.
func earlyReturn(fail bool) error {
	b := bufpool.Get(64)
	if fail {
		return errBoom // want "can escape here without bufpool.Put"
	}
	bufpool.Put(b)
	return nil
}

// dropped never releases at all; the finding lands on the Get.
func dropped() {
	b := bufpool.Get(8) // want "dropped when this block ends"
	b[0] = 1
}

// overwritten loses the pooled buffer by rebinding the variable.
func overwritten() []byte {
	b := bufpool.Get(8)
	b = make([]byte, 8) // want "overwritten before bufpool.Put"
	return b
}

// partialSwitch releases on only one arm; the missing default leaks.
func partialSwitch(mode int) {
	b := bufpool.Get(16) // want "dropped when this block ends"
	switch mode {
	case 0:
		bufpool.Put(b)
	}
}

// discard shows that a blank assignment is not a transfer.
func discard() {
	b := bufpool.Get(4) // want "dropped when this block ends"
	_ = b
}

// bufferVariant leaks a GetBuffer result the same way.
func bufferVariant(fail bool) error {
	w := bufpool.GetBuffer()
	if fail {
		return errBoom // want "can escape here without bufpool.Put"
	}
	w.WriteByte(1)
	bufpool.PutBuffer(w)
	return nil
}

// ringLike mirrors the clean fixture's ring type.
type ringLike struct{ slots [][]byte }

func (r *ringLike) storeOwned(seq uint32, buf []byte) bool {
	i := int(seq) % len(r.slots)
	if r.slots[i] != nil {
		return false
	}
	r.slots[i] = buf
	return true
}

// ringStoreConditional transfers on only one arm; the other drops the
// pooled buffer on the floor.
func ringStoreConditional(r *ringLike, seq uint32, payload []byte, dup bool) {
	b := bufpool.Get(len(payload)) // want "dropped when this block ends"
	copy(b, payload)
	if !dup {
		r.storeOwned(seq, b)
	}
}

// queued mirrors the clean fixture's release sink.
type queued struct{ payload []byte }

func (q queued) release(err error) {
	_ = err
	bufpool.Put(q.payload)
}

// releaseWrongReceiver calls the release sink on a value unrelated to the
// tracked buffer: the receiver-position rule must not credit it.
func releaseWrongReceiver(other queued) {
	b := bufpool.Get(16) // want "dropped when this block ends"
	b[0] = 1
	other.release(errBoom)
}
