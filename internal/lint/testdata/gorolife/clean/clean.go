// Package clean ties every goroutine to a shutdown path: a
// WaitGroup.Done that Stop waits on, a quit-channel select, or a channel
// drain — directly in the spawned literal or through a summarized
// callee.
package clean

import "sync"

type svc struct {
	wg   sync.WaitGroup
	done chan struct{}
	work chan int
	n    int
}

// loop is the worker shape: Done on exit, quit channel in the select.
func (s *svc) loop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case v := <-s.work:
			s.n += v
		}
	}
}

func (s *svc) start() {
	s.wg.Add(1)
	go s.loop()
}

// startLit inlines the same contract in a literal.
func (s *svc) startLit() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for v := range s.work {
			s.n += v
		}
	}()
}

// drain ranges a channel; closing s.work shuts it down by construction.
func (s *svc) drain() {
	for v := range s.work {
		s.n += v
	}
}

func (s *svc) startDrain() {
	go s.drain()
}

// startWaiter blocks on the quit channel directly.
func (s *svc) startWaiter() {
	go func() {
		<-s.done
		s.n = 0
	}()
}

// startWrapped reaches the shutdown path only through loop's summary.
func (s *svc) startWrapped() {
	s.wg.Add(1)
	go func() {
		s.loop()
	}()
}
