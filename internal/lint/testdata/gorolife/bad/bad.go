// Package bad spawns goroutines with no shutdown path: no
// WaitGroup.Done, no channel receive, directly or through any
// summarized callee. Each one outlives Stop until process exit.
package bad

// pump produces forever and never listens: receivers can stop, the pump
// cannot.
func pump(ch chan<- int) {
	for i := 0; ; i++ {
		ch <- i
	}
}

func startPump(ch chan int) {
	go pump(ch) // want "goroutine has no shutdown path"
}

// startSpinner's literal retries forever; with no signal in and no Done
// out it is the canonical fire-and-forget leak.
func startSpinner() {
	go func() { // want "goroutine has no shutdown path"
		for {
			step()
		}
	}()
}

func step() {}

// run only forwards to pump, so the missing shutdown path is visible
// only through pump's summary.
func run(ch chan int) {
	pump(ch)
}

func startIndirect(ch chan int) {
	go run(ch) // want "goroutine has no shutdown path"
}
