package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The facts layer is kmlint's interprocedural backbone. Every analyzer up
// to PR 6 reasoned about one function at a time, which made the exact bug
// class the sharded registries invite — a lock taken here, a second lock
// taken in a callee, a cycle that only closes across a package boundary —
// structurally invisible. ComputeFacts builds a module-wide static call
// graph over every package the loader has seen (the packages under
// analysis plus the module-internal dependencies Import type-checked for
// them), condenses it with Tarjan's SCC algorithm, and computes a
// per-function summary bottom-up so each function's fact is available to
// its callers. Inside a strongly connected component (mutual recursion)
// the members iterate to a fixpoint; all facts are monotone unions, so
// the fixpoint exists and is reached in a handful of rounds.
//
// Three fact families are computed:
//
//   - Ownership transfer: which parameters (and receivers) a function
//     consumes under the pooled-buffer contract. This replaces bufleak's
//     hand-listed sink table (deliver/submit/storeOwned/release): a
//     parameter is a transfer sink because its value provably reaches
//     bufpool.Put, escapes into a store, channel, or closure, or is
//     passed on to another inferred sink — not because of its name.
//   - Locks: which mutex classes a function acquires (transitively),
//     which it leaves held on exit, and every "B acquired while A held"
//     edge, resolved through ...Locked caller-holds helpers. lockorder
//     builds the module's lock graph from these.
//   - Goroutine lifecycle: whether running the function signals a
//     sync.WaitGroup.Done or receives from a channel (quit-channel /
//     Close select / range-over-channel). gorolife uses these to tie
//     every `go` statement to a shutdown path.

// MutexClass identifies a mutex by declaration site rather than instance:
// "pkgpath.Type.field" for a struct field, "pkgpath.var" for a
// package-level mutex, "pkgpath.func.var" for a local. All stripes of a
// striped registry share one class — which is what lock-order reasoning
// wants, since the stripes are interchangeable members of one lock domain
// and nesting two of them is exactly the hazard.
type MutexClass string

// short renders the class without the module path prefix for messages.
func (c MutexClass) short() string {
	s := string(c)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// LockEdge records that To was acquired at Pos while From was held.
type LockEdge struct {
	From, To MutexClass
	Pos      token.Pos
}

// FuncFact is one function's interprocedural summary.
type FuncFact struct {
	// TransferParams[i] reports that the i-th parameter's value is
	// consumed by the function (pooled-buffer ownership transfer).
	TransferParams []bool
	// RecvTransfer reports the same for the method receiver —
	// outMsg.release recycles the payload its receiver was built around.
	RecvTransfer bool

	// Acquires holds every mutex class locked by the function or any
	// callee reachable from it on the same goroutine.
	Acquires map[MutexClass]bool
	// HeldAtExit holds the classes still locked when the function
	// returns normally (LockB-style helpers). Deferred unlocks and
	// ...Locked caller-holds assumptions are excluded.
	HeldAtExit map[MutexClass]bool
	// Edges are the "To acquired while From held" pairs observed in the
	// function body, including those induced by calls into summarized
	// callees. From == To marks same-class (stripe) nesting.
	Edges []LockEdge

	// WGDone: running the function (not a goroutine it spawns) calls
	// sync.WaitGroup.Done, directly or transitively.
	WGDone bool
	// QuitRecv: running the function receives from a channel — a
	// quit-channel select, <-done, or range over a channel.
	QuitRecv bool
}

func newFuncFact(fn *types.Func) *FuncFact {
	n := 0
	if sig, ok := fn.Type().(*types.Signature); ok {
		n = sig.Params().Len()
	}
	return &FuncFact{
		TransferParams: make([]bool, n),
		Acquires:       map[MutexClass]bool{},
		HeldAtExit:     map[MutexClass]bool{},
	}
}

// funcRec is one node of the call graph.
type funcRec struct {
	fn       *types.Func
	decl     *ast.FuncDecl
	pkg      *Package
	fact     *FuncFact
	callees  []*funcRec
	testFile bool

	// Tarjan bookkeeping.
	index, lowlink int
	onStack        bool
}

// Facts is the store of per-function summaries, keyed by the
// type-checker's *types.Func objects. A source function type-checked in
// two instances (as a dependency and again as the package under analysis,
// with its test files) has two keys carrying equal summaries; lookups are
// by whichever instance the querying package's Info resolves to.
type Facts struct {
	fset  *token.FileSet
	fns   map[*types.Func]*funcRec
	order []*funcRec
}

// Summary returns fn's fact, or nil when fn is unknown (external code,
// interface methods, nil). Safe on a nil Facts.
func (f *Facts) Summary(fn *types.Func) *FuncFact {
	if rec := f.lookup(fn); rec != nil {
		return rec.fact
	}
	return nil
}

// lookup resolves fn to its record. Instantiated generic methods
// (WorkPool[*codecJob].worker at a call site) resolve through Origin to
// the generic declaration the record was built from.
func (f *Facts) lookup(fn *types.Func) *funcRec {
	if f == nil || fn == nil {
		return nil
	}
	if rec := f.fns[fn]; rec != nil {
		return rec
	}
	return f.fns[fn.Origin()]
}

// ComputeFacts builds the call graph over universe and computes every
// function's summary bottom-up over its SCC condensation. Ordering is
// deterministic: records sort by source position before graph
// construction, and SCCs are emitted callees-first.
func ComputeFacts(fset *token.FileSet, universe []*Package) *Facts {
	f := &Facts{fset: fset, fns: map[*types.Func]*funcRec{}}
	for _, pkg := range universe {
		if pkg == nil || pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			test := strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go")
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if _, dup := f.fns[fn]; dup {
					continue
				}
				rec := &funcRec{fn: fn, decl: fd, pkg: pkg, fact: newFuncFact(fn), testFile: test}
				f.fns[fn] = rec
				f.order = append(f.order, rec)
			}
		}
	}
	sort.SliceStable(f.order, func(i, j int) bool {
		a := f.fset.Position(f.order[i].decl.Pos())
		b := f.fset.Position(f.order[j].decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, rec := range f.order {
		rec.callees = f.collectCallees(rec)
	}
	for _, scc := range f.sccs() {
		// Monotone union facts: iterate members to a fixpoint. Singleton
		// SCCs converge on the first pass; mutual recursion in a few.
		for range [8]struct{}{} {
			changed := false
			for _, rec := range scc {
				if f.computeFact(rec) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return f
}

// calleeFuncOf resolves the statically-known function or method a call
// invokes within info, or nil for function values, conversions and
// builtins. Pass.calleeFunc is the per-pass wrapper.
func calleeFuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// collectCallees gathers the in-universe functions rec calls on its own
// goroutine: nested function literals are skipped (they run when invoked,
// not here) and so are the direct targets of `go` statements (they run on
// the spawned goroutine — their locks and Done calls are not this
// function's).
func (f *Facts) collectCallees(rec *funcRec) []*funcRec {
	var out []*funcRec
	seen := map[*funcRec]bool{}
	goTargets := map[*ast.CallExpr]bool{}
	ast.Inspect(rec.decl.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			goTargets[t.Call] = true
		case *ast.CallExpr:
			if goTargets[t] {
				return true
			}
			if callee := f.lookup(calleeFuncOf(rec.pkg.Info, t)); callee != nil && !seen[callee] {
				seen[callee] = true
				out = append(out, callee)
			}
		}
		return true
	})
	return out
}

// sccs runs Tarjan's algorithm over the call graph and returns the
// strongly connected components in callees-before-callers order (Tarjan
// pops a component only after everything reachable from it).
func (f *Facts) sccs() [][]*funcRec {
	var (
		out   [][]*funcRec
		stack []*funcRec
		next  = 1
	)
	var strongconnect func(v *funcRec)
	strongconnect = func(v *funcRec) {
		v.index, v.lowlink = next, next
		next++
		stack = append(stack, v)
		v.onStack = true
		for _, w := range v.callees {
			if w.index == 0 {
				strongconnect(w)
				v.lowlink = min(v.lowlink, w.lowlink)
			} else if w.onStack {
				v.lowlink = min(v.lowlink, w.index)
			}
		}
		if v.lowlink == v.index {
			var scc []*funcRec
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, rec := range f.order {
		if rec.index == 0 {
			strongconnect(rec)
		}
	}
	return out
}

// computeFact (re)derives rec's summary from its body and the current
// facts of its callees, reporting whether anything changed.
func (f *Facts) computeFact(rec *funcRec) bool {
	nf := newFuncFact(rec.fn)

	sig, _ := rec.fn.Type().(*types.Signature)
	if sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			nf.TransferParams[i] = f.taintTransfers(rec, sig.Params().At(i))
		}
		if recv := sig.Recv(); recv != nil {
			nf.RecvTransfer = f.taintTransfers(rec, recv)
		}
	}

	// Lock facts come from non-test code only: tests lock freely across
	// domains to set up scenarios, and the module invariant is about
	// production goroutines.
	if !rec.testFile {
		f.lockFacts(rec, nf)
	}

	nf.WGDone, nf.QuitRecv = f.goroFacts(rec)

	changed := !factEqual(rec.fact, nf)
	rec.fact = nf
	return changed
}

func factEqual(a, b *FuncFact) bool {
	if len(a.TransferParams) != len(b.TransferParams) ||
		a.RecvTransfer != b.RecvTransfer ||
		a.WGDone != b.WGDone || a.QuitRecv != b.QuitRecv ||
		len(a.Acquires) != len(b.Acquires) ||
		len(a.HeldAtExit) != len(b.HeldAtExit) ||
		len(a.Edges) != len(b.Edges) {
		return false
	}
	for i, v := range a.TransferParams {
		if b.TransferParams[i] != v {
			return false
		}
	}
	for c := range a.Acquires {
		if !b.Acquires[c] {
			return false
		}
	}
	for c := range a.HeldAtExit {
		if !b.HeldAtExit[c] {
			return false
		}
	}
	for i, e := range a.Edges {
		if b.Edges[i] != e {
			return false
		}
	}
	return true
}

// LockEdges returns every lock-acquisition edge in the universe in
// deterministic order, deduplicated by (From, To, file position) — the
// same source function summarized under two type-check instances
// contributes its edges once.
func (f *Facts) LockEdges() []LockEdge {
	if f == nil {
		return nil
	}
	type key struct {
		from, to MutexClass
		file     string
		line     int
		col      int
	}
	seen := map[key]bool{}
	var out []LockEdge
	for _, rec := range f.order {
		for _, e := range rec.fact.Edges {
			p := f.fset.Position(e.Pos)
			k := key{e.From, e.To, p.Filename, p.Line, p.Column}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := f.fset.Position(out[i].Pos), f.fset.Position(out[j].Pos)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// --- ownership-transfer inference --------------------------------------------

// taintTransfers reports whether seed's value escapes rec on some path:
// into bufpool.Put/PutBuffer, a store (field, element, package-level
// variable, or local alias that itself escapes — conservatively, any
// local alias counts, matching bufleak's own storage rule), a channel
// send, a closure or goroutine capture, or a call position another
// summary already marks as a transfer sink.
func (f *Facts) taintTransfers(rec *funcRec, seed types.Object) bool {
	ts := &taintScan{
		facts:   f,
		info:    rec.pkg.Info,
		tainted: map[types.Object]bool{seed: true},
	}
	ast.Inspect(rec.decl.Body, func(n ast.Node) bool {
		if ts.transferred {
			return false
		}
		switch t := n.(type) {
		case *ast.FuncLit:
			// Capture by a closure: the closure's lifetime owns the value.
			if ts.usesTainted(t.Body) {
				ts.transferred = true
			}
			return false
		case *ast.AssignStmt:
			ts.assign(t)
		case *ast.DeclStmt:
			ts.declare(t)
		case *ast.SendStmt:
			if ts.exprTaints(t.Value) {
				ts.transferred = true
			}
		case *ast.GoStmt:
			// A goroutine receiving the value as an argument owns it.
			for _, a := range t.Call.Args {
				if ts.exprTaints(a) {
					ts.transferred = true
				}
			}
		case *ast.CallExpr:
			ts.call(t)
		}
		return true
	})
	return ts.transferred
}

type taintScan struct {
	facts       *Facts
	info        *types.Info
	tainted     map[types.Object]bool
	transferred bool
}

// exprTaints reports whether any identifier under e resolves to a tainted
// object.
func (ts *taintScan) exprTaints(e ast.Expr) bool {
	return e != nil && ts.usesTainted(e)
}

func (ts *taintScan) usesTainted(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := ts.info.Uses[id]; obj != nil && ts.tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// assign propagates taint through local aliases (m := queued{payload: b})
// and detects stores: writing a tainted value through a selector, index,
// dereference, or into a package-level variable hands ownership to the
// destination's owner.
func (ts *taintScan) assign(t *ast.AssignStmt) {
	pairwise := len(t.Lhs) == len(t.Rhs)
	any := false
	for _, r := range t.Rhs {
		if ts.exprTaints(r) {
			any = true
		}
	}
	if !any {
		return
	}
	for i, l := range t.Lhs {
		if pairwise && !ts.exprTaints(t.Rhs[i]) {
			continue
		}
		switch lhs := ast.Unparen(l).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			obj := ts.info.Defs[lhs]
			if obj == nil {
				obj = ts.info.Uses[lhs]
			}
			v, ok := obj.(*types.Var)
			if !ok {
				continue
			}
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				ts.transferred = true // store into a package-level variable
			} else {
				ts.tainted[v] = true // local alias: follow it too
			}
		default:
			ts.transferred = true
		}
	}
}

// declare handles `var m = tainted` alias declarations.
func (ts *taintScan) declare(t *ast.DeclStmt) {
	gd, ok := t.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		any := false
		for _, v := range vs.Values {
			if ts.exprTaints(v) {
				any = true
			}
		}
		if !any {
			continue
		}
		for _, name := range vs.Names {
			if obj := ts.info.Defs[name]; obj != nil {
				ts.tainted[obj] = true
			}
		}
	}
}

// call applies the transfer rules at a call site: bufpool recycling,
// summarized transfer parameters/receivers, and the one contract that
// stays name-based — OnMessage, transport.Config's function-field
// callback, whose ownership handoff is documented API, not inferable
// from a body the analyzer can see.
func (ts *taintScan) call(call *ast.CallExpr) {
	var taintedArgs []int
	for i, a := range call.Args {
		if ts.exprTaints(a) {
			taintedArgs = append(taintedArgs, i)
		}
	}
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if fn := calleeFuncOf(ts.info, call); fn != nil {
		if len(taintedArgs) > 0 &&
			(funcIs(fn, bufpoolPkg, "Put") || funcIs(fn, bufpoolPkg, "PutBuffer")) {
			ts.transferred = true
			return
		}
		ft := ts.facts.Summary(fn)
		if ft == nil {
			return // external code: a borrow
		}
		sig, _ := fn.Type().(*types.Signature)
		for _, i := range taintedArgs {
			pi := i
			if sig != nil && sig.Variadic() && pi >= sig.Params().Len()-1 {
				pi = sig.Params().Len() - 1
			}
			if pi < len(ft.TransferParams) && ft.TransferParams[pi] {
				ts.transferred = true
				return
			}
		}
		if ft.RecvTransfer && sel != nil && ts.exprTaints(sel.X) {
			ts.transferred = true
		}
		return
	}
	if len(taintedArgs) == 0 {
		return
	}
	name := ""
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	}
	if strings.EqualFold(name, "onmessage") {
		ts.transferred = true
	}
}

// --- goroutine-lifecycle facts -----------------------------------------------

// goroFacts scans rec's body (not nested literals, not `go` targets) for
// the two shutdown-path signals gorolife accepts: a sync.WaitGroup.Done
// call and a channel receive in any form.
func (f *Facts) goroFacts(rec *funcRec) (wgDone, quitRecv bool) {
	info := rec.pkg.Info
	goTargets := map[*ast.CallExpr]bool{}
	ast.Inspect(rec.decl.Body, func(n ast.Node) bool {
		if wgDone && quitRecv {
			return false
		}
		switch t := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			goTargets[t.Call] = true
		case *ast.UnaryExpr:
			if t.Op == token.ARROW {
				quitRecv = true
			}
		case *ast.RangeStmt:
			if typ := info.TypeOf(t.X); typ != nil {
				if _, ok := typ.Underlying().(*types.Chan); ok {
					quitRecv = true
				}
			}
		case *ast.CallExpr:
			if goTargets[t] {
				return true
			}
			fn := calleeFuncOf(info, t)
			if methodIs(fn, "sync", "WaitGroup", "Done") {
				wgDone = true
				return true
			}
			if ft := f.Summary(fn); ft != nil {
				wgDone = wgDone || ft.WGDone
				quitRecv = quitRecv || ft.QuitRecv
			}
		}
		return true
	})
	return wgDone, quitRecv
}
