package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HandlerBlock enforces the cooperative scheduler's no-blocking-handler
// rule (internal/kompics/component.go): a component executes at most one
// handler at a time on a shared worker pool, so a handler that parks its
// goroutine — time.Sleep, WaitGroup.Wait, raw socket I/O — stalls every
// event queued behind it and, with enough stalled components, the whole
// scheduler. The paper's throughput numbers assume handlers are short and
// non-blocking; this check makes that assumption explicit at the
// subscription site.
//
// Only function literals passed directly to Subscribe/SubscribeSelf are
// inspected (handlers named elsewhere would need interprocedural
// analysis); nested literals inside the handler — e.g. a goroutine the
// handler spawns — may block freely, since they run off the scheduler.
var HandlerBlock = &Analyzer{
	Name: "handlerblock",
	Doc:  "handlers passed to Subscribe/SubscribeSelf must not block the cooperative scheduler",
	Run:  runHandlerBlock,
}

const kompicsPkg = "internal/kompics"

func runHandlerBlock(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.calleeFunc(call)
			if !methodIs(fn, kompicsPkg, "Context", "Subscribe") &&
				!methodIs(fn, kompicsPkg, "Context", "SubscribeSelf") {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkHandlerBody(pass, lit)
				}
			}
			return true
		})
	}
}

// checkHandlerBody flags blocking calls made directly by the handler,
// skipping nested function literals (goroutines the handler hands work to).
func checkHandlerBody(pass *Pass, handler *ast.FuncLit) {
	ast.Inspect(handler.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if reason := blockingCall(pass, call); reason != "" {
			pass.Reportf(call.Pos(),
				"%s inside a Subscribe handler blocks the cooperative scheduler; hand the work to a goroutine or use a timer event", reason)
		}
		return true
	})
}

// blockingCall classifies a call as scheduler-blocking, returning a short
// description or "".
func blockingCall(pass *Pass, call *ast.CallExpr) string {
	fn := pass.calleeFunc(call)
	if fn == nil {
		return ""
	}
	switch {
	case funcIs(fn, "time", "Sleep"):
		return "time.Sleep"
	case methodIs(fn, "sync", "WaitGroup", "Wait"):
		return "sync.WaitGroup.Wait"
	case methodIs(fn, "sync", "Cond", "Wait"):
		return "sync.Cond.Wait"
	case isRealSocket(fn):
		return "net." + fn.Name()
	case isNetIOMethod(fn):
		return "network " + fn.Name()
	}
	return ""
}

// isNetIOMethod matches the Read/Write/Accept-family methods on net (and
// internal/udt) connection types — synchronous socket I/O.
func isNetIOMethod(fn *types.Func) bool {
	path := recvPkgPath(fn)
	if path != "net" && !pathHasSuffix(path, "internal/udt") {
		return false
	}
	name := fn.Name()
	return name == "Accept" || name == "AcceptUDT" ||
		strings.HasPrefix(name, "Read") || strings.HasPrefix(name, "Write")
}
